// Tests for the observability layer (kamino/obs/): metrics registry
// concurrency and merge determinism, span nesting/parenting, capacity
// bounds, well-formedness of the exported JSON, and the engine-level
// span tree a fit + async synthesize is expected to produce.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "kamino/core/kamino.h"
#include "kamino/data/generators.h"
#include "kamino/obs/metrics.h"
#include "kamino/obs/trace.h"
#include "kamino/runtime/thread_pool.h"
#include "kamino/service/engine.h"

namespace kamino {
namespace {

/// Minimal recursive-descent JSON validator: accepts exactly the RFC 8259
/// grammar (objects, arrays, strings with escapes, numbers, true/false/
/// null) and nothing else. Enough to assert the exported metrics/trace
/// documents are loadable by any real parser.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Valid() {
    pos_ = 0;
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    if (!Digits()) return false;
    if (Peek() == '.') {
      ++pos_;
      if (!Digits()) return false;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!Digits()) return false;
    }
    return pos_ > start;
  }

  bool Digits() {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* word) {
    for (const char* p = word; *p; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) return false;
    }
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

/// Restores the global recorder to a pristine disabled state when a trace
/// test scope ends (tests may share a process when the binary runs
/// directly rather than under ctest's per-test discovery).
class ScopedGlobalTracing {
 public:
  ScopedGlobalTracing() {
    obs::TraceRecorder::Global().Clear();
    obs::TraceRecorder::Global().SetEnabled(true);
  }
  ~ScopedGlobalTracing() {
    obs::TraceRecorder::Global().SetEnabled(false);
    obs::TraceRecorder::Global().SetCapacity(size_t{1} << 20);
    obs::TraceRecorder::Global().Clear();
  }
};

class ScopedGlobalMetrics {
 public:
  ScopedGlobalMetrics() {
    obs::MetricsRegistry::Global().Reset();
    obs::MetricsRegistry::Global().SetEnabled(true);
  }
  ~ScopedGlobalMetrics() {
    obs::MetricsRegistry::Global().SetEnabled(false);
    obs::MetricsRegistry::Global().Reset();
  }
};

TEST(MetricsRegistryTest, ConcurrentIncrementsSumExactly) {
  obs::MetricsRegistry registry;
  registry.SetEnabled(true);
  obs::Counter* counter = registry.counter("test.hits");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kPerThread; ++i) counter->Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter->Value(), int64_t{kThreads} * kPerThread);
  EXPECT_EQ(registry.Snapshot().counters.at("test.hits"),
            int64_t{kThreads} * kPerThread);
}

TEST(MetricsRegistryTest, DisabledRegistryDropsWrites) {
  obs::MetricsRegistry registry;  // disabled by default
  registry.counter("test.c")->Increment(5);
  registry.histogram("test.h", {1.0, 2.0})->Record(1.5);
  registry.gauge("test.g")->Add(3);
  EXPECT_EQ(registry.counter("test.c")->Value(), 0);
  EXPECT_EQ(registry.histogram("test.h", {})->Snapshot().count, 0);
  EXPECT_EQ(registry.gauge("test.g")->Value(), 0);
  // Absolute Set is the exception: a level written while disabled must be
  // correct in the first snapshot, not stuck at a stale zero.
  registry.gauge("test.g")->Set(7);
  EXPECT_EQ(registry.gauge("test.g")->Value(), 7);
}

TEST(MetricsRegistryTest, HistogramBucketsSamplesByUpperBound) {
  obs::MetricsRegistry registry;
  registry.SetEnabled(true);
  obs::Histogram* hist = registry.histogram("test.h", {1.0, 10.0, 100.0});
  for (const double v : {0.5, 1.0, 5.0, 10.0, 42.0, 1000.0}) hist->Record(v);
  const obs::HistogramSnapshot snap = hist->Snapshot();
  ASSERT_EQ(snap.bounds.size(), 3u);
  ASSERT_EQ(snap.buckets.size(), 4u);
  EXPECT_EQ(snap.buckets[0], 2);  // 0.5, 1.0 (bucket counts <= bound)
  EXPECT_EQ(snap.buckets[1], 2);  // 5.0, 10.0
  EXPECT_EQ(snap.buckets[2], 1);  // 42.0
  EXPECT_EQ(snap.buckets[3], 1);  // 1000.0 -> +inf bucket
  EXPECT_EQ(snap.count, 6);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.0 + 5.0 + 10.0 + 42.0 + 1000.0);
}

TEST(MetricsRegistryTest, HistogramMergeIsDeterministic) {
  // The same recorded multiset must snapshot to the same struct no matter
  // which threads recorded which samples: concurrent writers land in
  // different stripes, the merge walks stripes in fixed order.
  auto run = [](int rotate) {
    obs::MetricsRegistry registry;
    registry.SetEnabled(true);
    obs::Histogram* hist = registry.histogram("test.h", {1.0, 10.0});
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([hist, t, rotate] {
        for (int i = 0; i < 1000; ++i) {
          hist->Record(static_cast<double>((i + t + rotate) % 20));
        }
      });
    }
    for (std::thread& t : threads) t.join();
    return hist->Snapshot();
  };
  const obs::HistogramSnapshot a = run(0);
  const obs::HistogramSnapshot b = run(0);
  EXPECT_EQ(a.buckets, b.buckets);
  EXPECT_EQ(a.count, b.count);
  EXPECT_DOUBLE_EQ(a.sum, b.sum);
}

TEST(MetricsRegistryTest, FirstHistogramRegistrationBoundsWin) {
  obs::MetricsRegistry registry;
  obs::Histogram* first = registry.histogram("test.h", {1.0, 2.0});
  obs::Histogram* again = registry.histogram("test.h", {9.0});
  EXPECT_EQ(first, again);
  EXPECT_EQ(again->Snapshot().bounds, (std::vector<double>{1.0, 2.0}));
}

TEST(MetricsRegistryTest, SnapshotJsonIsWellFormed) {
  obs::MetricsRegistry registry;
  registry.SetEnabled(true);
  registry.counter("test.counter \"quoted\\name\"")->Increment(3);
  registry.gauge("test.gauge")->Set(-4);
  registry.histogram("test.hist", {0.5, 1.5})->Record(1.0);
  const std::string json = registry.ToJson();
  JsonChecker checker(json);
  EXPECT_TRUE(checker.Valid()) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(MetricsRegistryTest, ResetZeroesEveryMetricAndKeepsHandles) {
  obs::MetricsRegistry registry;
  registry.SetEnabled(true);
  obs::Counter* counter = registry.counter("test.c");
  obs::Histogram* hist = registry.histogram("test.h", {1.0});
  counter->Increment(9);
  hist->Record(0.5);
  registry.Reset();
  EXPECT_EQ(counter->Value(), 0);
  EXPECT_EQ(hist->Snapshot().count, 0);
  counter->Increment();  // handle still live after Reset
  EXPECT_EQ(counter->Value(), 1);
}

TEST(TraceRecorderTest, SpansRecordNestingAndParentage) {
  ScopedGlobalTracing tracing;
  {
    obs::TraceSpan outer("outer");
    {
      obs::TraceSpan inner("inner");
      obs::TraceInstant("tick");
    }
    obs::TraceSpan sibling("sibling");
  }
  const std::vector<obs::TraceEvent> events =
      obs::TraceRecorder::Global().Snapshot();
  ASSERT_EQ(events.size(), 4u);
  const obs::TraceEvent* outer = nullptr;
  const obs::TraceEvent* inner = nullptr;
  const obs::TraceEvent* sibling = nullptr;
  const obs::TraceEvent* tick = nullptr;
  for (const obs::TraceEvent& e : events) {
    if (e.name == "outer") outer = &e;
    if (e.name == "inner") inner = &e;
    if (e.name == "sibling") sibling = &e;
    if (e.name == "tick") tick = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(sibling, nullptr);
  ASSERT_NE(tick, nullptr);
  EXPECT_EQ(outer->parent, 0u);
  EXPECT_EQ(inner->parent, outer->id);
  EXPECT_EQ(sibling->parent, outer->id);
  EXPECT_EQ(tick->parent, inner->id);
  EXPECT_EQ(tick->ph, 'i');
  // The inner span's [ts, ts+dur] range nests inside the outer's.
  EXPECT_GE(inner->ts_us, outer->ts_us);
  EXPECT_LE(inner->ts_us + inner->dur_us, outer->ts_us + outer->dur_us);
}

TEST(TraceRecorderTest, FinishReturnsElapsedEvenWhenDisabled) {
  ASSERT_FALSE(obs::TraceRecorder::Global().enabled());
  obs::TraceRecorder::Global().Clear();
  obs::TraceSpan span("unrecorded");
  const double seconds = span.Finish();
  EXPECT_GE(seconds, 0.0);
  EXPECT_EQ(span.Finish(), seconds);  // idempotent
  EXPECT_TRUE(obs::TraceRecorder::Global().Snapshot().empty());
}

TEST(TraceRecorderTest, CapacityBoundsBufferAndCountsDrops) {
  ScopedGlobalTracing tracing;
  obs::TraceRecorder::Global().SetCapacity(8);
  for (int i = 0; i < 50; ++i) {
    obs::TraceSpan span("tiny");
  }
  EXPECT_LE(obs::TraceRecorder::Global().Snapshot().size(), 8u);
  EXPECT_GT(obs::TraceRecorder::Global().dropped(), 0u);
}

TEST(TraceRecorderTest, ConcurrentSpansFromManyThreadsAllRecorded) {
  ScopedGlobalTracing tracing;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        obs::TraceSpan span("worker");
        span.AddArg("i", i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const std::vector<obs::TraceEvent> events =
      obs::TraceRecorder::Global().Snapshot();
  EXPECT_EQ(events.size(), size_t{kThreads} * kPerThread);
  // Span ids are unique across threads.
  std::vector<uint64_t> ids;
  ids.reserve(events.size());
  for (const obs::TraceEvent& e : events) ids.push_back(e.id);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}

TEST(TraceRecorderTest, TraceJsonIsWellFormed) {
  ScopedGlobalTracing tracing;
  {
    obs::TraceSpan span("outer \"escaped\\name\"");
    span.AddArg("rows", 150);
    obs::TraceInstant("tick");
  }
  const std::string json = obs::TraceRecorder::Global().ToJson();
  JsonChecker checker(json);
  EXPECT_TRUE(checker.Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
}

TEST(ObsEngineTest, FitAndAsyncSynthesizeProduceExpectedSpanTree) {
  ScopedGlobalTracing tracing;
  ScopedGlobalMetrics metrics;
  runtime::SetGlobalNumThreads(2);

  BenchmarkDataset ds = MakeAdultLike(80, 13);
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema()).TakeValue();
  KaminoConfig config;
  config.options.non_private = true;
  config.options.iterations = 6;
  config.options.seed = 11;
  config.options.enable_tracing = true;
  config.options.enable_metrics = true;

  KaminoEngine engine;
  auto model = engine.Fit(ds.table, constraints, config);
  ASSERT_TRUE(model.ok()) << model.status();

  class CountingSink : public RowSink {
   public:
    Status OnChunk(const TableChunk& chunk) override {
      rows += chunk.num_rows();
      ++chunks;
      return Status::OK();
    }
    size_t rows = 0;
    size_t chunks = 0;
  };
  CountingSink sink;
  SynthesisRequest request;
  request.seed = 5;
  request.num_shards = 3;
  request.sink = &sink;
  auto job = engine.Submit(model.value(), request);
  ASSERT_GT(job->id(), 0u);
  auto result = job->Wait();
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(sink.rows, 80u);
  EXPECT_EQ(sink.chunks, 3u);

  const std::string trace = engine.DumpTrace();
  JsonChecker checker(trace);
  EXPECT_TRUE(checker.Valid());
  for (const char* name :
       {"\"fit\"", "\"fit/sequencing\"", "\"fit/parameter_search\"",
        "\"fit/training\"", "\"fit/weights\"", "\"service/job\"",
        "\"synthesize\"", "\"sampler/shard\"", "\"sampler/shard_merge\"",
        "\"sampler/chunk\""}) {
    EXPECT_NE(trace.find(name), std::string::npos)
        << "span " << name << " missing from the exported trace";
  }

  // The per-shard sampling and chunk delivery nest under the job span.
  const std::vector<obs::TraceEvent> events =
      obs::TraceRecorder::Global().Snapshot();
  uint64_t job_span = 0;
  for (const obs::TraceEvent& e : events) {
    if (e.name == "service/job") job_span = e.id;
  }
  ASSERT_NE(job_span, 0u);
  bool synthesize_under_job = false;
  for (const obs::TraceEvent& e : events) {
    if (e.name == "synthesize" && e.parent == job_span) {
      synthesize_under_job = true;
    }
  }
  EXPECT_TRUE(synthesize_under_job);

  const std::string metrics_json = engine.DumpMetrics();
  JsonChecker metrics_checker(metrics_json);
  EXPECT_TRUE(metrics_checker.Valid());
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  EXPECT_GE(reg.counter("kamino.service.jobs_submitted")->Value(), 1);
  EXPECT_GE(reg.counter("kamino.service.jobs_done")->Value(), 1);
  EXPECT_GE(reg.counter("kamino.service.rows_delivered")->Value(), 80);
  EXPECT_GE(reg.counter("kamino.sampler.rows_sampled")->Value(), 80);
  EXPECT_EQ(reg.counter("kamino.sampler.shards_sampled")->Value(), 3);
  EXPECT_GE(reg.counter("kamino.jobqueue.done")->Value(), 1);

  runtime::SetGlobalNumThreads(0);
}

TEST(ObsEngineTest, ValidateRejectsTracingWithZeroCapacity) {
  KaminoOptions options;
  options.enable_tracing = true;
  options.trace_capacity_events = 0;
  const Status status = options.Validate();
  EXPECT_FALSE(status.ok());
  options.trace_capacity_events = 1;
  EXPECT_TRUE(options.Validate().ok());
}

}  // namespace
}  // namespace kamino
