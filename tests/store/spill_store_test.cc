// Tests for the frozen-slice spill store (src/kamino/store/): framed
// round trips through the chunk codec, fully validating reads (magic,
// version, row count, length, digest — truncation and bit flips must
// surface as a Status, never as silently wrong rows), the append-time
// row-count cross-check, and the temp-file lifecycle (unique mkdtemp
// naming, unlink on destruction, clear errors on an unusable parent).

#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "kamino/common/logging.h"
#include "kamino/data/chunk_codec.h"
#include "kamino/data/table.h"
#include "kamino/store/spill_store.h"

namespace kamino {
namespace {

/// A small mixed-kind schema: one categorical, two numeric columns.
Schema TestSchema() {
  std::vector<std::string> cats;
  for (int i = 0; i < 8; ++i) cats.push_back("c" + std::to_string(i));
  return Schema({Attribute::MakeCategorical("kind", std::move(cats)),
                 Attribute::MakeNumeric("x", 0.0, 100.0, 16),
                 Attribute::MakeNumeric("y", -50.0, 50.0, 16)});
}

/// Deterministic slice: `rows` rows whose cells are functions of `salt`.
Table TestSlice(const Schema& schema, size_t rows, int salt) {
  Table t(schema);
  for (size_t r = 0; r < rows; ++r) {
    Row row;
    row.push_back(Value::Categorical(static_cast<int32_t>((r + salt) % 8)));
    row.push_back(Value::Numeric(static_cast<double>(r) * 1.5 + salt));
    row.push_back(Value::Numeric(static_cast<double>(salt) - 0.25 * r));
    KAMINO_CHECK(t.AppendRow(std::move(row)).ok());
  }
  return t;
}

void ExpectSameTable(const Table& a, const Table& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_columns(), b.num_columns());
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.num_columns(); ++c) {
      ASSERT_TRUE(a.at(r, c) == b.at(r, c))
          << "cell (" << r << ", " << c << ") diverged";
    }
  }
}

bool PathExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

/// Flips one bit of the spill file at `offset` (read-modify-write).
void FlipByteAt(const std::string& path, uint64_t offset) {
  const int fd = ::open(path.c_str(), O_RDWR);
  ASSERT_GE(fd, 0);
  uint8_t byte = 0;
  ASSERT_EQ(::pread(fd, &byte, 1, static_cast<off_t>(offset)), 1);
  byte ^= 0x40;
  ASSERT_EQ(::pwrite(fd, &byte, 1, static_cast<off_t>(offset)), 1);
  ::close(fd);
}

TEST(SpillStoreTest, MultiBlockRoundTripIsBitExact) {
  const Schema schema = TestSchema();
  auto store = store::SpillStore::Create("").TakeValue();
  std::vector<Table> slices;
  for (int b = 0; b < 3; ++b) {
    slices.push_back(TestSlice(schema, 20 + 7 * b, b));
    const std::vector<uint8_t> payload = EncodeChunkColumns(slices.back());
    ASSERT_TRUE(store->AppendBlock(payload, slices.back().num_rows()).ok());
  }
  ASSERT_EQ(store->block_count(), 3u);
  EXPECT_EQ(store->spilled_rows(), 20u + 27u + 34u);
  EXPECT_GT(store->spilled_bytes(), 0u);
  // Read back out of order: blocks are independent.
  for (size_t b : {size_t{2}, size_t{0}, size_t{1}}) {
    Table decoded = store->ReadBlock(b, schema).TakeValue();
    ExpectSameTable(decoded, slices[b]);
    EXPECT_EQ(store->block(b).rows, slices[b].num_rows());
  }
}

TEST(SpillStoreTest, ReadBlockPayloadReturnsTheExactCodecBytes) {
  const Schema schema = TestSchema();
  auto store = store::SpillStore::Create("").TakeValue();
  const Table slice = TestSlice(schema, 15, 3);
  const std::vector<uint8_t> payload = EncodeChunkColumns(slice);
  ASSERT_TRUE(store->AppendBlock(payload, slice.num_rows()).ok());
  std::vector<uint8_t> read = store->ReadBlockPayload(0).TakeValue();
  EXPECT_EQ(read, payload);
}

TEST(SpillStoreTest, AppendRejectsMismatchedRowCount) {
  const Schema schema = TestSchema();
  auto store = store::SpillStore::Create("").TakeValue();
  const Table slice = TestSlice(schema, 10, 1);
  const std::vector<uint8_t> payload = EncodeChunkColumns(slice);
  const Status st = store->AppendBlock(payload, slice.num_rows() + 1);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(store->block_count(), 0u);
}

TEST(SpillStoreTest, TruncatedFileFailsTheRead) {
  const Schema schema = TestSchema();
  auto store = store::SpillStore::Create("").TakeValue();
  const Table slice = TestSlice(schema, 40, 2);
  ASSERT_TRUE(
      store->AppendBlock(EncodeChunkColumns(slice), slice.num_rows()).ok());
  // Force the bytes to disk, then chop the frame's tail off.
  ASSERT_TRUE(store->ReadBlock(0, schema).ok());
  const uint64_t full = store->block(0).offset + store->block(0).length;
  ASSERT_EQ(::truncate(store->file_path().c_str(),
                       static_cast<off_t>(full - 5)),
            0);
  const auto result = store->ReadBlock(0, schema);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("short read"), std::string::npos)
      << result.status();
}

TEST(SpillStoreTest, PayloadBitFlipIsCaughtByTheDigest) {
  const Schema schema = TestSchema();
  auto store = store::SpillStore::Create("").TakeValue();
  const Table slice = TestSlice(schema, 40, 5);
  ASSERT_TRUE(
      store->AppendBlock(EncodeChunkColumns(slice), slice.num_rows()).ok());
  ASSERT_TRUE(store->ReadBlock(0, schema).ok());  // flush + sanity
  // Flip a byte in the middle of the payload region.
  const uint64_t payload_start = store->block(0).offset + 4 + 4 + 8 + 8;
  FlipByteAt(store->file_path(), payload_start + 3);
  const auto result = store->ReadBlock(0, schema);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("digest mismatch"),
            std::string::npos)
      << result.status();
}

TEST(SpillStoreTest, DigestBitFlipIsCaughtToo) {
  const Schema schema = TestSchema();
  auto store = store::SpillStore::Create("").TakeValue();
  const Table slice = TestSlice(schema, 12, 9);
  ASSERT_TRUE(
      store->AppendBlock(EncodeChunkColumns(slice), slice.num_rows()).ok());
  ASSERT_TRUE(store->ReadBlock(0, schema).ok());
  // The trailing 8 bytes of the frame are the digest itself.
  const uint64_t digest_byte =
      store->block(0).offset + store->block(0).length - 2;
  FlipByteAt(store->file_path(), digest_byte);
  const auto result = store->ReadBlock(0, schema);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("digest mismatch"),
            std::string::npos)
      << result.status();
}

TEST(SpillStoreTest, OutOfRangeBlockIndexIsInvalidArgument) {
  auto store = store::SpillStore::Create("").TakeValue();
  const auto result = store->ReadBlockPayload(0);
  EXPECT_FALSE(result.ok());
}

TEST(SpillStoreTest, UnusableParentDirIsAClearIoError) {
  const auto result =
      store::SpillStore::Create("/nonexistent-kamino-parent/sub");
  ASSERT_FALSE(result.ok());
  EXPECT_FALSE(result.status().message().empty());
}

TEST(SpillStoreTest, DestructionRemovesFileAndDirectory) {
  std::string file_path;
  std::string dir_path;
  {
    const Schema schema = TestSchema();
    auto store = store::SpillStore::Create("").TakeValue();
    const Table slice = TestSlice(schema, 25, 4);
    ASSERT_TRUE(
        store->AppendBlock(EncodeChunkColumns(slice), slice.num_rows()).ok());
    file_path = store->file_path();
    dir_path = store->dir_path();
    EXPECT_TRUE(PathExists(file_path));
    EXPECT_TRUE(PathExists(dir_path));
  }
  EXPECT_FALSE(PathExists(file_path));
  EXPECT_FALSE(PathExists(dir_path));
}

TEST(SpillStoreTest, StoresGetUniqueDirectories) {
  auto a = store::SpillStore::Create("").TakeValue();
  auto b = store::SpillStore::Create("").TakeValue();
  EXPECT_NE(a->dir_path(), b->dir_path());
  EXPECT_NE(a->file_path(), b->file_path());
}

}  // namespace
}  // namespace kamino
