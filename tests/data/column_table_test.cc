#include "kamino/data/column.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kamino/common/rng.h"
#include "kamino/data/table.h"

namespace kamino {
namespace {

Schema RandomSchema(Rng* rng) {
  const size_t num_cols = static_cast<size_t>(rng->UniformInt(1, 6));
  std::vector<Attribute> attrs;
  for (size_t c = 0; c < num_cols; ++c) {
    const std::string name = "a" + std::to_string(c);
    if (rng->Bernoulli(0.5)) {
      const int64_t k = rng->UniformInt(2, 9);
      std::vector<std::string> cats;
      for (int64_t i = 0; i < k; ++i) cats.push_back("v" + std::to_string(i));
      attrs.push_back(Attribute::MakeCategorical(name, std::move(cats)));
    } else {
      attrs.push_back(Attribute::MakeNumeric(name, -1000.0, 1000.0, 100));
    }
  }
  return Schema(attrs);
}

Value RandomCell(const Attribute& attr, Rng* rng) {
  if (attr.is_categorical()) {
    return Value::Categorical(static_cast<int32_t>(
        rng->UniformInt(0, attr.DomainSize() - 1)));
  }
  return Value::Numeric(rng->Gaussian(0.0, 100.0));
}

Row RandomRow(const Schema& schema, Rng* rng) {
  Row row;
  for (size_t c = 0; c < schema.size(); ++c) {
    row.push_back(RandomCell(schema.attribute(c), rng));
  }
  return row;
}

void ExpectMatchesShadow(const Table& table, const std::vector<Row>& shadow) {
  ASSERT_EQ(table.num_rows(), shadow.size());
  Row scratch;
  for (size_t r = 0; r < shadow.size(); ++r) {
    const Row& materialized = table.row(r);
    table.CopyRowInto(r, &scratch);
    ASSERT_EQ(materialized.size(), shadow[r].size());
    for (size_t c = 0; c < shadow[r].size(); ++c) {
      // Kind and payload must both survive the columnar round trip.
      EXPECT_EQ(table.at(r, c).kind(), shadow[r][c].kind());
      EXPECT_TRUE(table.at(r, c) == shadow[r][c])
          << "cell (" << r << ", " << c << ")";
      EXPECT_TRUE(materialized[c] == shadow[r][c]);
      EXPECT_TRUE(scratch[c] == shadow[r][c]);
    }
  }
}

// Property suite: a Table over the columnar core behaves exactly like the
// row-major shadow model under randomized schemas and mutation sequences.
TEST(ColumnTableTest, MatchesRowMajorShadowUnderRandomMutations) {
  Rng rng(20240807);
  for (int trial = 0; trial < 25; ++trial) {
    const Schema schema = RandomSchema(&rng);
    Table table(schema);
    std::vector<Row> shadow;
    const int ops = 120;
    for (int op = 0; op < ops; ++op) {
      const int64_t action = rng.UniformInt(0, 3);
      if (action <= 1 || shadow.empty()) {
        Row row = RandomRow(schema, &rng);
        table.AppendRowUnchecked(row);
        shadow.push_back(std::move(row));
      } else if (action == 2) {
        const size_t r =
            static_cast<size_t>(rng.UniformInt(0, shadow.size() - 1));
        const size_t c =
            static_cast<size_t>(rng.UniformInt(0, schema.size() - 1));
        const Value v = RandomCell(schema.attribute(c), &rng);
        table.set(r, c, v);
        shadow[r][c] = v;
      } else {
        // Exercise the block-copy append against per-row semantics.
        const size_t lo =
            static_cast<size_t>(rng.UniformInt(0, shadow.size() - 1));
        const size_t count = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(shadow.size() - lo)));
        table.AppendRowsFrom(table, lo, count);
        for (size_t r = lo; r < lo + count; ++r) {
          shadow.push_back(shadow[r]);
        }
      }
    }
    ExpectMatchesShadow(table, shadow);

    // Slice agrees with the shadow's sub-range.
    const size_t lo =
        static_cast<size_t>(rng.UniformInt(0, shadow.size() - 1));
    const size_t count = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(shadow.size() - lo)));
    const Table slice = table.Slice(lo, count);
    std::vector<Row> shadow_slice(shadow.begin() + lo,
                                  shadow.begin() + lo + count);
    ExpectMatchesShadow(slice, shadow_slice);
  }
}

TEST(ColumnTableTest, TypedSpansExposeColumnData) {
  std::vector<Attribute> attrs = {
      Attribute::MakeCategorical("cat", {"a", "b", "c"}),
      Attribute::MakeNumeric("num", 0.0, 10.0, 10),
  };
  Table table((Schema(attrs)));
  table.AppendRowUnchecked({Value::Categorical(2), Value::Numeric(1.5)});
  table.AppendRowUnchecked({Value::Categorical(0), Value::Numeric(-2.25)});
  ASSERT_EQ(table.code_data(0).size(), 2u);
  EXPECT_EQ(table.code_data(0)[0], 2);
  EXPECT_EQ(table.code_data(0)[1], 0);
  ASSERT_EQ(table.numeric_data(1).size(), 2u);
  EXPECT_EQ(table.numeric_data(1)[0], 1.5);
  EXPECT_EQ(table.numeric_data(1)[1], -2.25);
  EXPECT_TRUE(table.columns().column(0).is_categorical());
  EXPECT_TRUE(table.columns().column(1).is_numeric());
}

TEST(ColumnTableTest, ResizeRowsFillsColumnTypedZeros) {
  std::vector<Attribute> attrs = {
      Attribute::MakeCategorical("cat", {"a", "b"}),
      Attribute::MakeNumeric("num", 0.0, 10.0, 10),
  };
  Table table((Schema(attrs)));
  table.ResizeRows(3);
  ASSERT_EQ(table.num_rows(), 3u);
  for (size_t r = 0; r < 3; ++r) {
    // Blank cells carry the *column's* kind (dictionary code 0 / 0.0),
    // not a default-constructed Value — the documented columnar contract.
    EXPECT_TRUE(table.at(r, 0).is_categorical());
    EXPECT_EQ(table.at(r, 0).category(), 0);
    EXPECT_TRUE(table.at(r, 1).is_numeric());
    EXPECT_EQ(table.at(r, 1).numeric(), 0.0);
  }
  // ResizeRows has assign semantics: prior content is discarded.
  table.set(0, 0, Value::Categorical(1));
  table.ResizeRows(2);
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.at(0, 0).category(), 0);
}

TEST(ColumnTableTest, ZeroColumnSchemaTracksCardinality) {
  Table table((Schema(std::vector<Attribute>{})));
  EXPECT_EQ(table.num_rows(), 0u);
  table.ResizeRows(5);
  EXPECT_EQ(table.num_rows(), 5u);
  table.AppendRowUnchecked({});
  EXPECT_EQ(table.num_rows(), 6u);
  EXPECT_EQ(table.Slice(2, 3).num_rows(), 3u);
}

}  // namespace
}  // namespace kamino
