#include "kamino/data/table.h"

#include <gtest/gtest.h>

namespace kamino {
namespace {

Schema TestSchema() {
  return Schema({Attribute::MakeCategorical("c", {"a", "b"}),
                 Attribute::MakeNumeric("n", 0, 10, 11)});
}

TEST(TableTest, AppendRowValidates) {
  Table t(TestSchema());
  EXPECT_TRUE(t.AppendRow({Value::Categorical(0), Value::Numeric(5)}).ok());
  // Wrong arity.
  EXPECT_FALSE(t.AppendRow({Value::Categorical(0)}).ok());
  // Out of domain.
  EXPECT_FALSE(t.AppendRow({Value::Categorical(9), Value::Numeric(5)}).ok());
  EXPECT_FALSE(t.AppendRow({Value::Categorical(0), Value::Numeric(99)}).ok());
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TableTest, ResizeAndSet) {
  Table t(TestSchema());
  t.ResizeRows(3);
  EXPECT_EQ(t.num_rows(), 3u);
  t.set(1, 0, Value::Categorical(1));
  EXPECT_EQ(t.at(1, 0).category(), 1);
}

TEST(TableTest, TypedColumnSpans) {
  Table t(TestSchema());
  ASSERT_TRUE(t.AppendRow({Value::Categorical(0), Value::Numeric(1)}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Categorical(1), Value::Numeric(2)}).ok());
  const std::vector<double>& nums = t.numeric_data(1);
  ASSERT_EQ(nums.size(), 2u);
  EXPECT_DOUBLE_EQ(nums[1], 2.0);
  const std::vector<int32_t>& codes = t.code_data(0);
  ASSERT_EQ(codes.size(), 2u);
  EXPECT_EQ(codes[1], 1);
}

TEST(TableTest, HeadTruncates) {
  Table t(TestSchema());
  for (int i = 0; i < 5; ++i) {
    t.AppendRowUnchecked({Value::Categorical(0), Value::Numeric(i)});
  }
  EXPECT_EQ(t.Head(3).num_rows(), 3u);
  EXPECT_EQ(t.Head(99).num_rows(), 5u);
}

TEST(TableTest, SampleRowsExpectedFraction) {
  Table t(TestSchema());
  for (int i = 0; i < 2000; ++i) {
    t.AppendRowUnchecked({Value::Categorical(0), Value::Numeric(i % 10)});
  }
  Rng rng(17);
  Table s = t.SampleRows(0.25, &rng);
  EXPECT_NEAR(static_cast<double>(s.num_rows()), 500.0, 80.0);
}

TEST(TableTest, CellToString) {
  Table t(TestSchema());
  t.AppendRowUnchecked({Value::Categorical(1), Value::Numeric(3.5)});
  EXPECT_EQ(t.CellToString(0, 0), "b");
  EXPECT_EQ(t.CellToString(0, 1), "3.5");
}

}  // namespace
}  // namespace kamino
