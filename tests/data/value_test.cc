#include "kamino/data/value.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_set>

namespace kamino {
namespace {

// Regression: the old hash only XORed (kind << 1) into the payload hash,
// so Categorical(i) and Numeric(double(i)) — which share an OrderKey —
// differed in exactly one bit and collapsed into the same power-of-two
// hash bucket half the time. The kinds must land in unrelated buckets.
TEST(ValueHashTest, KindIsMixedThroughAllBits) {
  ValueHash hash;
  int identical = 0;
  uint64_t or_of_diffs = 0;
  for (int32_t i = 0; i < 4096; ++i) {
    const uint64_t hc = hash(Value::Categorical(i));
    const uint64_t hn = hash(Value::Numeric(static_cast<double>(i)));
    if (hc == hn) ++identical;
    or_of_diffs |= hc ^ hn;
  }
  EXPECT_EQ(identical, 0);
  // Across the sweep, the kind flip must reach high and low bits alike —
  // a shifted-XOR scheme leaves all but one bit position untouched.
  EXPECT_EQ(or_of_diffs, ~uint64_t{0});
}

TEST(ValueHashTest, MixedKindKeysSpreadAcrossBuckets) {
  // The failure mode in the field: an FD LHS whose values mix kinds (e.g.
  // a category index next to its numeric re-encoding). With the low-bit
  // XOR, every (Categorical(i), Numeric(i)) pair shared bucket i mod B for
  // every even bucket count B; the pairs must now spread independently.
  constexpr uint64_t kBuckets = 1024;  // power of two: masks low bits
  ValueHash hash;
  int same_bucket = 0;
  for (int32_t i = 0; i < 4096; ++i) {
    const uint64_t bc = hash(Value::Categorical(i)) % kBuckets;
    const uint64_t bn = hash(Value::Numeric(static_cast<double>(i))) % kBuckets;
    if (bc == bn) ++same_bucket;
  }
  // Independent placement collides ~ 4096/1024 = 4 times in expectation;
  // allow generous slack while still catching the old always-adjacent
  // behavior (which put 100% of pairs in the same bucket once the XOR bit
  // was masked off, and 0% otherwise — both far outside this band).
  EXPECT_LT(same_bucket, 64);
}

TEST(ValueHashTest, EqualValuesHashEqual) {
  ValueHash hash;
  EXPECT_EQ(hash(Value::Categorical(7)), hash(Value::Categorical(7)));
  EXPECT_EQ(hash(Value::Numeric(7.25)), hash(Value::Numeric(7.25)));
  // Distinct payloads of one kind should (overwhelmingly) differ too.
  std::unordered_set<uint64_t> seen;
  for (int32_t i = 0; i < 1024; ++i) seen.insert(hash(Value::Categorical(i)));
  EXPECT_GT(seen.size(), 1000u);
}

}  // namespace
}  // namespace kamino
