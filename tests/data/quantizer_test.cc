#include "kamino/data/quantizer.h"

#include <gtest/gtest.h>

namespace kamino {
namespace {

TEST(QuantizerTest, RequiresNumericAttribute) {
  Attribute cat = Attribute::MakeCategorical("c", {"a"});
  EXPECT_FALSE(Quantizer::Make(cat, 4).ok());
  Attribute num = Attribute::MakeNumeric("n", 0, 8, 9);
  EXPECT_FALSE(Quantizer::Make(num, 0).ok());
  EXPECT_TRUE(Quantizer::Make(num, 4).ok());
}

TEST(QuantizerTest, BinEdges) {
  Attribute num = Attribute::MakeNumeric("n", 0, 8, 9);
  Quantizer q = Quantizer::Make(num, 4).value();
  EXPECT_EQ(q.num_bins(), 4);
  EXPECT_DOUBLE_EQ(q.bin_width(), 2.0);
  EXPECT_EQ(q.BinOf(0.0), 0);
  EXPECT_EQ(q.BinOf(1.99), 0);
  EXPECT_EQ(q.BinOf(2.0), 1);
  EXPECT_EQ(q.BinOf(7.99), 3);
  EXPECT_EQ(q.BinOf(8.0), 3);  // max clamps into last bin
}

TEST(QuantizerTest, OutOfRangeClamps) {
  Attribute num = Attribute::MakeNumeric("n", 0, 8, 9);
  Quantizer q = Quantizer::Make(num, 4).value();
  EXPECT_EQ(q.BinOf(-100), 0);
  EXPECT_EQ(q.BinOf(100), 3);
}

TEST(QuantizerTest, MidpointWithinBin) {
  Attribute num = Attribute::MakeNumeric("n", 0, 10, 11);
  Quantizer q = Quantizer::Make(num, 5).value();
  for (int b = 0; b < 5; ++b) {
    EXPECT_GE(q.Midpoint(b), q.BinLow(b));
    EXPECT_LE(q.Midpoint(b), q.BinHigh(b));
    EXPECT_EQ(q.BinOf(q.Midpoint(b)), b);
  }
}

TEST(QuantizerTest, SampleWithinStaysInBin) {
  Attribute num = Attribute::MakeNumeric("n", -5, 5, 11);
  Quantizer q = Quantizer::Make(num, 7).value();
  Rng rng(3);
  for (int b = 0; b < 7; ++b) {
    for (int i = 0; i < 50; ++i) {
      double v = q.SampleWithin(b, &rng);
      EXPECT_GE(v, q.BinLow(b));
      EXPECT_LE(v, q.BinHigh(b));
    }
  }
}

TEST(QuantizerTest, DegenerateDomain) {
  Attribute num = Attribute::MakeNumeric("n", 5, 5, 1);
  Quantizer q = Quantizer::Make(num, 3).value();
  EXPECT_EQ(q.BinOf(5.0), 0);
}

}  // namespace
}  // namespace kamino
