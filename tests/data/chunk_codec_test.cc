#include "kamino/data/chunk_codec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "kamino/common/rng.h"
#include "kamino/data/table.h"

namespace kamino {
namespace {

uint64_t BitsOf(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// Bit-exact cell comparison: kind, codes, and numeric *bit patterns*
/// (so NaN payloads and -0.0 count as differences).
void ExpectBitIdentical(const Table& a, const Table& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_columns(), b.num_columns());
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.num_columns(); ++c) {
      const Value va = a.at(r, c);
      const Value vb = b.at(r, c);
      ASSERT_EQ(va.kind(), vb.kind()) << "cell (" << r << ", " << c << ")";
      if (va.is_categorical()) {
        EXPECT_EQ(va.category(), vb.category())
            << "cell (" << r << ", " << c << ")";
      } else {
        EXPECT_EQ(BitsOf(va.numeric()), BitsOf(vb.numeric()))
            << "cell (" << r << ", " << c << ")";
      }
    }
  }
}

Schema MixedSchema() {
  std::vector<Attribute> attrs = {
      Attribute::MakeCategorical("c0", {"a", "b", "c", "d", "e"}),
      Attribute::MakeCategorical("c1", {"x", "y"}),
      Attribute::MakeNumeric("n0", -1e9, 1e9, 1000),
      Attribute::MakeNumeric("n1", -1e9, 1e9, 1000),
  };
  return Schema(attrs);
}

TEST(ChunkCodecTest, RoundTripFuzz) {
  Rng rng(97);
  const Schema schema = MixedSchema();
  for (int trial = 0; trial < 40; ++trial) {
    const size_t n = static_cast<size_t>(rng.UniformInt(0, 300));
    Table table(schema);
    for (size_t i = 0; i < n; ++i) {
      // A mix of regimes per trial: constant stretches (RLE), small
      // dictionary codes (bit-packing), integral numerics (frame of
      // reference), and arbitrary doubles (raw bit patterns).
      const int64_t regime = rng.UniformInt(0, 3);
      double num0 = 0.0;
      double num1 = 0.0;
      switch (regime) {
        case 0:
          num0 = 5.0;  // constant / long runs
          num1 = static_cast<double>(rng.UniformInt(0, 3));
          break;
        case 1:
          num0 = static_cast<double>(rng.UniformInt(-100, 100));
          num1 = static_cast<double>(rng.UniformInt(0, 1000000));
          break;
        case 2:
          num0 = rng.Gaussian(0.0, 1.0);  // fractional: raw path
          num1 = rng.Gaussian(1e6, 1e3);
          break;
        default:
          num0 = static_cast<double>(rng.UniformInt(0, 1));
          num1 = rng.Bernoulli(0.5) ? 0.25 : 1e300;
          break;
      }
      table.AppendRowUnchecked(
          {Value::Categorical(static_cast<int32_t>(rng.UniformInt(0, 4))),
           Value::Categorical(static_cast<int32_t>(rng.UniformInt(0, 1))),
           Value::Numeric(num0), Value::Numeric(num1)});
    }
    const std::vector<uint8_t> bytes = EncodeChunkColumns(table);
    Result<Table> decoded = DecodeChunkColumns(schema, bytes);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    ExpectBitIdentical(table, decoded.value());
  }
}

TEST(ChunkCodecTest, RoundTripPreservesSpecialBitPatterns) {
  std::vector<Attribute> attrs = {
      Attribute::MakeNumeric("n", -1e308, 1e308, 1000),
  };
  Table table((Schema(attrs)));
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  for (double v :
       {0.0, -0.0, 1.0, -1.0, qnan, std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::denorm_min(),
        std::numeric_limits<double>::max(), 4503599627370496.0,
        -4503599627370497.0}) {
    table.AppendRowUnchecked({Value::Numeric(v)});
  }
  const std::vector<uint8_t> bytes = EncodeChunkColumns(table);
  Result<Table> decoded = DecodeChunkColumns(table.schema(), bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectBitIdentical(table, decoded.value());
  // -0.0 specifically must come back with its sign bit.
  EXPECT_TRUE(std::signbit(decoded.value().at(1, 0).numeric()));
}

TEST(ChunkCodecTest, DictionaryHeavySweepCompressesAtLeastFourX) {
  // The acceptance sweep: small categorical domains plus integral
  // numerics, the shape synthetic instances actually have.
  Rng rng(7);
  std::vector<Attribute> attrs = {
      Attribute::MakeCategorical("dept", {"eng", "sales", "hr", "ops"}),
      Attribute::MakeCategorical("level", {"junior", "senior", "staff"}),
      Attribute::MakeCategorical("flag", {"n", "y"}),
      Attribute::MakeNumeric("salary", 40000, 200000, 1000),
      Attribute::MakeNumeric("bonus", 0, 40000, 100),
  };
  Table table((Schema(attrs)));
  for (size_t i = 0; i < 2000; ++i) {
    table.AppendRowUnchecked(
        {Value::Categorical(static_cast<int32_t>(rng.UniformInt(0, 3))),
         Value::Categorical(static_cast<int32_t>(rng.UniformInt(0, 2))),
         Value::Categorical(static_cast<int32_t>(rng.UniformInt(0, 1))),
         Value::Numeric(static_cast<double>(rng.UniformInt(40, 200)) * 1000.0),
         Value::Numeric(static_cast<double>(rng.UniformInt(0, 400)) * 100.0)});
  }
  const std::vector<uint8_t> bytes = EncodeChunkColumns(table);
  Result<Table> decoded = DecodeChunkColumns(table.schema(), bytes);
  ASSERT_TRUE(decoded.ok());
  ExpectBitIdentical(table, decoded.value());
  const size_t raw = RawChunkBytes(table);
  EXPECT_GE(raw, 4 * bytes.size())
      << "encoded " << bytes.size() << " bytes vs raw " << raw;
}

TEST(ChunkCodecTest, EmptyTableRoundTrips) {
  const Schema schema = MixedSchema();
  Table table(schema);
  const std::vector<uint8_t> bytes = EncodeChunkColumns(table);
  Result<Table> decoded = DecodeChunkColumns(schema, bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().num_rows(), 0u);
  EXPECT_EQ(decoded.value().num_columns(), schema.size());
}

TEST(ChunkCodecTest, RejectsTruncatedAndMismatchedPayloads) {
  const Schema schema = MixedSchema();
  Rng rng(13);
  Table table(schema);
  for (size_t i = 0; i < 50; ++i) {
    table.AppendRowUnchecked(
        {Value::Categorical(static_cast<int32_t>(rng.UniformInt(0, 4))),
         Value::Categorical(static_cast<int32_t>(rng.UniformInt(0, 1))),
         Value::Numeric(rng.Gaussian()), Value::Numeric(rng.Gaussian())});
  }
  const std::vector<uint8_t> bytes = EncodeChunkColumns(table);

  // Every strict prefix must fail cleanly, never crash or mis-decode.
  for (size_t cut : {size_t{0}, size_t{4}, size_t{11}, size_t{13},
                     bytes.size() / 2, bytes.size() - 1}) {
    std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + cut);
    EXPECT_FALSE(DecodeChunkColumns(schema, truncated).ok())
        << "prefix of " << cut << " bytes decoded";
  }

  // Wrong arity.
  std::vector<Attribute> narrow = {
      Attribute::MakeCategorical("c0", {"a", "b", "c", "d", "e"}),
  };
  EXPECT_FALSE(DecodeChunkColumns(Schema(narrow), bytes).ok());

  // Kind flip: numeric payload decoded against a categorical column (and
  // vice versa) must be rejected by the block tags.
  std::vector<Attribute> flipped = {
      Attribute::MakeNumeric("c0", 0, 10, 10),
      Attribute::MakeCategorical("c1", {"x", "y"}),
      Attribute::MakeNumeric("n0", -1e9, 1e9, 1000),
      Attribute::MakeNumeric("n1", -1e9, 1e9, 1000),
  };
  EXPECT_FALSE(DecodeChunkColumns(Schema(flipped), bytes).ok());

  // Trailing garbage after a well-formed payload.
  std::vector<uint8_t> padded = bytes;
  padded.push_back(0);
  EXPECT_FALSE(DecodeChunkColumns(schema, padded).ok());
}

}  // namespace
}  // namespace kamino
