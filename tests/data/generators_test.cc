#include "kamino/data/generators.h"

#include <gtest/gtest.h>

#include "kamino/dc/constraint.h"
#include "kamino/dc/violations.h"

namespace kamino {
namespace {

class GeneratorsTest : public ::testing::TestWithParam<int> {
 protected:
  BenchmarkDataset Make() const {
    switch (GetParam()) {
      case 0:
        return MakeAdultLike(300, 11);
      case 1:
        return MakeBr2000Like(300, 11);
      case 2:
        return MakeTaxLike(300, 11);
      default:
        return MakeTpchLike(300, 11);
    }
  }
};

TEST_P(GeneratorsTest, ShapeAndDomains) {
  BenchmarkDataset ds = Make();
  EXPECT_EQ(ds.table.num_rows(), 300u);
  EXPECT_EQ(ds.dc_specs.size(), ds.hardness.size());
  // Every cell must lie inside its declared domain.
  for (size_t r = 0; r < ds.table.num_rows(); ++r) {
    for (size_t c = 0; c < ds.table.num_columns(); ++c) {
      EXPECT_TRUE(ds.table.schema().attribute(c).Contains(ds.table.at(r, c)))
          << ds.name << " row " << r << " col " << c;
    }
  }
}

TEST_P(GeneratorsTest, DcSpecsParse) {
  BenchmarkDataset ds = Make();
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema());
  ASSERT_TRUE(constraints.ok()) << constraints.status();
  EXPECT_EQ(constraints.value().size(), ds.dc_specs.size());
}

TEST_P(GeneratorsTest, HardDcsHoldExactly) {
  BenchmarkDataset ds = Make();
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema()).TakeValue();
  for (size_t l = 0; l < constraints.size(); ++l) {
    if (!constraints[l].hard) continue;
    EXPECT_EQ(CountViolations(constraints[l].dc, ds.table), 0)
        << ds.name << " hard DC " << l << " violated in generated truth";
  }
}

TEST_P(GeneratorsTest, Deterministic) {
  BenchmarkDataset a = Make();
  BenchmarkDataset b = Make();
  ASSERT_EQ(a.table.num_rows(), b.table.num_rows());
  for (size_t r = 0; r < a.table.num_rows(); ++r) {
    for (size_t c = 0; c < a.table.num_columns(); ++c) {
      EXPECT_TRUE(a.table.at(r, c) == b.table.at(r, c));
    }
  }
}

std::string DatasetName(const ::testing::TestParamInfo<int>& info) {
  static const char* const kNames[] = {"adult", "br2000", "tax", "tpch"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, GeneratorsTest,
                         ::testing::Values(0, 1, 2, 3), DatasetName);

TEST(GeneratorsTest2, Br2000SoftDcsHaveSmallViolationRates) {
  BenchmarkDataset ds = MakeBr2000Like(500, 3);
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema()).TakeValue();
  for (const WeightedConstraint& wc : constraints) {
    const double rate = ViolationRatePercent(wc.dc, ds.table);
    EXPECT_GT(rate, 0.0);   // soft: some violations exist
    EXPECT_LT(rate, 10.0);  // but rare
  }
}

TEST(GeneratorsTest2, MakeAllBenchmarksReturnsFour) {
  auto all = MakeAllBenchmarks(50, 1);
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].name, "adult");
  EXPECT_EQ(all[3].name, "tpch");
}

}  // namespace
}  // namespace kamino
