#include "kamino/data/schema.h"

#include <gtest/gtest.h>

#include <cmath>

namespace kamino {
namespace {

TEST(AttributeTest, CategoricalBasics) {
  Attribute a = Attribute::MakeCategorical("color", {"red", "green", "blue"});
  EXPECT_TRUE(a.is_categorical());
  EXPECT_EQ(a.DomainSize(), 3);
  auto idx = a.CategoryIndex("green");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(idx.value(), 1);
  auto label = a.CategoryLabel(2);
  ASSERT_TRUE(label.ok());
  EXPECT_EQ(label.value(), "blue");
}

TEST(AttributeTest, CategoricalLookupErrors) {
  Attribute a = Attribute::MakeCategorical("color", {"red"});
  EXPECT_FALSE(a.CategoryIndex("pink").ok());
  EXPECT_FALSE(a.CategoryLabel(5).ok());
  EXPECT_FALSE(a.CategoryLabel(-1).ok());
}

TEST(AttributeTest, NumericBasics) {
  Attribute a = Attribute::MakeNumeric("age", 0, 100, 101);
  EXPECT_TRUE(a.is_numeric());
  EXPECT_EQ(a.DomainSize(), 101);
  EXPECT_DOUBLE_EQ(a.min_value(), 0.0);
  EXPECT_DOUBLE_EQ(a.max_value(), 100.0);
}

TEST(AttributeTest, ContainsChecksKindAndRange) {
  Attribute num = Attribute::MakeNumeric("age", 0, 100, 101);
  EXPECT_TRUE(num.Contains(Value::Numeric(50)));
  EXPECT_FALSE(num.Contains(Value::Numeric(101)));
  EXPECT_FALSE(num.Contains(Value::Categorical(1)));

  Attribute cat = Attribute::MakeCategorical("c", {"a", "b"});
  EXPECT_TRUE(cat.Contains(Value::Categorical(1)));
  EXPECT_FALSE(cat.Contains(Value::Categorical(2)));
  EXPECT_FALSE(cat.Contains(Value::Numeric(0)));
}

TEST(SchemaTest, IndexOf) {
  Schema schema({Attribute::MakeCategorical("a", {"x"}),
                 Attribute::MakeNumeric("b", 0, 1, 2)});
  auto i = schema.IndexOf("b");
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(i.value(), 1u);
  EXPECT_FALSE(schema.IndexOf("missing").ok());
}

TEST(SchemaTest, Log2DomainSize) {
  Schema schema({Attribute::MakeCategorical("a", {"x", "y"}),
                 Attribute::MakeCategorical("b", {"1", "2", "3", "4"})});
  EXPECT_NEAR(schema.Log2DomainSize(), 3.0, 1e-9);  // log2(2*4)
}

TEST(ValueTest, ComparisonSemantics) {
  EXPECT_EQ(Value::Numeric(1.5), Value::Numeric(1.5));
  EXPECT_NE(Value::Numeric(1.5), Value::Numeric(2.5));
  EXPECT_NE(Value::Numeric(1.0), Value::Categorical(1));
  EXPECT_LT(Value::Numeric(1.0), Value::Numeric(2.0));
  EXPECT_GE(Value::Categorical(3), Value::Categorical(3));
  EXPECT_GT(Value::Categorical(4), Value::Categorical(3));
}

TEST(ValueTest, HashEqualValuesSame) {
  ValueHash h;
  EXPECT_EQ(h(Value::Numeric(7)), h(Value::Numeric(7)));
  EXPECT_EQ(h(Value::Categorical(7)), h(Value::Categorical(7)));
  EXPECT_NE(h(Value::Numeric(7)), h(Value::Categorical(7)));
}

}  // namespace
}  // namespace kamino
