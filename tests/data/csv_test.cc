#include "kamino/data/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace kamino {
namespace {

Schema TestSchema() {
  return Schema({Attribute::MakeCategorical("c", {"a", "b"}),
                 Attribute::MakeNumeric("n", 0, 10, 11)});
}

class CsvTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "/kamino_csv_test.csv";
};

TEST_F(CsvTest, RoundTrip) {
  Table t(TestSchema());
  ASSERT_TRUE(t.AppendRow({Value::Categorical(0), Value::Numeric(1.5)}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Categorical(1), Value::Numeric(9)}).ok());
  ASSERT_TRUE(WriteCsv(t, path_).ok());

  auto back = ReadCsv(TestSchema(), path_);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back.value().num_rows(), 2u);
  EXPECT_EQ(back.value().at(0, 0).category(), 0);
  EXPECT_DOUBLE_EQ(back.value().at(0, 1).numeric(), 1.5);
  EXPECT_EQ(back.value().at(1, 0).category(), 1);
}

TEST_F(CsvTest, RejectsHeaderMismatch) {
  std::ofstream out(path_);
  out << "wrong,n\na,1\n";
  out.close();
  EXPECT_FALSE(ReadCsv(TestSchema(), path_).ok());
}

TEST_F(CsvTest, RejectsUnknownCategory) {
  std::ofstream out(path_);
  out << "c,n\nzz,1\n";
  out.close();
  EXPECT_FALSE(ReadCsv(TestSchema(), path_).ok());
}

TEST_F(CsvTest, RejectsBadNumber) {
  std::ofstream out(path_);
  out << "c,n\na,xyz\n";
  out.close();
  EXPECT_FALSE(ReadCsv(TestSchema(), path_).ok());
}

TEST_F(CsvTest, MissingFileIsIoError) {
  auto r = ReadCsv(TestSchema(), "/nonexistent/path.csv");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST_F(CsvTest, SkipsBlankLines) {
  std::ofstream out(path_);
  out << "c,n\na,1\n\nb,2\n";
  out.close();
  auto r = ReadCsv(TestSchema(), path_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().num_rows(), 2u);
}

}  // namespace
}  // namespace kamino
