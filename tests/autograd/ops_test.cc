#include "kamino/autograd/ops.h"

#include <gtest/gtest.h>

#include <cmath>

#include "kamino/common/rng.h"

namespace kamino {
namespace {

constexpr double kTol = 1e-6;

TEST(TensorTest, Basics) {
  Tensor t(2, 3, 1.5);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.size(), 6u);
  t.at(1, 2) = 7.0;
  EXPECT_DOUBLE_EQ(t.at(1, 2), 7.0);
  Tensor u(2, 3, 0.5);
  t.Add(u);
  EXPECT_DOUBLE_EQ(t.at(0, 0), 2.0);
  t.Axpy(2.0, u);
  EXPECT_DOUBLE_EQ(t.at(0, 0), 3.0);
  t.Scale(2.0);
  EXPECT_DOUBLE_EQ(t.at(0, 0), 6.0);
}

TEST(TensorTest, SquaredL2) {
  Tensor t = Tensor::RowVector({3.0, 4.0});
  EXPECT_DOUBLE_EQ(t.SquaredL2(), 25.0);
}

TEST(OpsTest, AddForwardBackward) {
  Var a = MakeLeaf(Tensor::RowVector({1, 2}));
  Var b = MakeLeaf(Tensor::RowVector({3, 4}));
  Var s = Sum(Add(a, b));
  EXPECT_DOUBLE_EQ(s->value[0], 10.0);
  Backward(s);
  EXPECT_DOUBLE_EQ(a->grad[0], 1.0);
  EXPECT_DOUBLE_EQ(b->grad[1], 1.0);
}

TEST(OpsTest, MatMulForward) {
  Var a = MakeConstant(Tensor::RowVector({1, 2}));       // 1x2
  Tensor bt(2, 2);
  bt.at(0, 0) = 1;
  bt.at(0, 1) = 2;
  bt.at(1, 0) = 3;
  bt.at(1, 1) = 4;
  Var b = MakeConstant(bt);
  Var c = MatMul(a, b);
  EXPECT_DOUBLE_EQ(c->value[0], 7.0);   // 1*1 + 2*3
  EXPECT_DOUBLE_EQ(c->value[1], 10.0);  // 1*2 + 2*4
}

TEST(OpsTest, ConstantsGetNoGradient) {
  Var a = MakeConstant(Tensor::RowVector({1, 2}));
  Var b = MakeLeaf(Tensor::RowVector({3, 4}));
  Var s = Sum(Mul(a, b));
  Backward(s);
  EXPECT_DOUBLE_EQ(b->grad[0], 1.0);
  EXPECT_DOUBLE_EQ(b->grad[1], 2.0);
  EXPECT_DOUBLE_EQ(a->grad[0], 0.0);
}

TEST(OpsTest, CrossEntropyValue) {
  Var logits = MakeLeaf(Tensor::RowVector({0.0, 0.0}));
  Var loss = CrossEntropyWithLogits(logits, 0);
  EXPECT_NEAR(loss->value[0], std::log(2.0), 1e-12);
  Backward(loss);
  EXPECT_NEAR(logits->grad[0], 0.5 - 1.0, 1e-12);
  EXPECT_NEAR(logits->grad[1], 0.5, 1e-12);
}

TEST(OpsTest, SoftmaxRowsSumToOne) {
  Rng rng(5);
  Var a = MakeConstant(Tensor::Randn(3, 4, 2.0, &rng));
  Var s = Softmax(a);
  for (size_t r = 0; r < 3; ++r) {
    double total = 0.0;
    for (size_t c = 0; c < 4; ++c) total += s->value.at(r, c);
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(OpsTest, ReusedNodeAccumulatesGradient) {
  // y = x + x => dy/dx = 2.
  Var x = MakeLeaf(Tensor::RowVector({5.0}));
  Var y = Sum(Add(x, x));
  Backward(y);
  EXPECT_DOUBLE_EQ(x->grad[0], 2.0);
}

TEST(OpsTest, DiamondGraphGradient) {
  // y = sum(relu(x) * x): both branches feed the product.
  Var x = MakeLeaf(Tensor::RowVector({2.0, -3.0}));
  Var y = Sum(Mul(Relu(x), x));
  Backward(y);
  // For x=2: d/dx (x*x) = 2x = 4. For x=-3: relu = 0 region, only the
  // second factor path: relu(x)=0 contributes 0, derivative of relu is 0.
  EXPECT_DOUBLE_EQ(x->grad[0], 4.0);
  EXPECT_DOUBLE_EQ(x->grad[1], 0.0);
}

// ---------------------------------------------------------------------------
// Property-style finite-difference gradient checks for every composite op.
// ---------------------------------------------------------------------------

class GradCheckTest : public ::testing::TestWithParam<int> {};

TEST_P(GradCheckTest, MatMulChainMatchesFiniteDifference) {
  Rng rng(100 + GetParam());
  Tensor a_val = Tensor::Randn(2, 3, 1.0, &rng);
  Tensor b_val = Tensor::Randn(3, 2, 1.0, &rng);
  auto loss_fn = [&]() {
    Var a = MakeLeaf(a_val);
    Var b = MakeLeaf(b_val);
    return Sum(Relu(MatMul(a, b)))->value[0];
  };
  Var a = MakeLeaf(a_val);
  Var b = MakeLeaf(b_val);
  Var loss = Sum(Relu(MatMul(a, b)));
  Backward(loss);
  EXPECT_LT(MaxGradError(&a_val, a->grad, loss_fn), kTol);
  EXPECT_LT(MaxGradError(&b_val, b->grad, loss_fn), kTol);
}

TEST_P(GradCheckTest, SoftmaxAttentionMatchesFiniteDifference) {
  Rng rng(200 + GetParam());
  Tensor q_val = Tensor::Randn(1, 4, 1.0, &rng);
  Tensor keys_val = Tensor::Randn(3, 4, 1.0, &rng);
  auto build = [&](const Tensor& qv, const Tensor& kv) {
    Var q = MakeLeaf(qv);
    Var keys = MakeLeaf(kv);
    Var alpha = Softmax(MatMul(q, Transpose(keys)));
    Var ctx = MatMul(alpha, keys);
    return std::make_tuple(q, keys, Sum(Mul(ctx, ctx)));
  };
  auto [q, keys, loss] = build(q_val, keys_val);
  Backward(loss);
  auto loss_fn = [&]() {
    auto [q2, k2, l2] = build(q_val, keys_val);
    return l2->value[0];
  };
  EXPECT_LT(MaxGradError(&q_val, q->grad, loss_fn), kTol);
  EXPECT_LT(MaxGradError(&keys_val, keys->grad, loss_fn), kTol);
}

TEST_P(GradCheckTest, CrossEntropyMatchesFiniteDifference) {
  Rng rng(300 + GetParam());
  Tensor logits_val = Tensor::Randn(1, 5, 2.0, &rng);
  const size_t target = GetParam() % 5;
  auto loss_fn = [&]() {
    return CrossEntropyWithLogits(MakeLeaf(logits_val), target)->value[0];
  };
  Var logits = MakeLeaf(logits_val);
  Var loss = CrossEntropyWithLogits(logits, target);
  Backward(loss);
  EXPECT_LT(MaxGradError(&logits_val, logits->grad, loss_fn), kTol);
}

TEST_P(GradCheckTest, GaussianNllMatchesFiniteDifference) {
  Rng rng(400 + GetParam());
  Tensor out_val = Tensor::Randn(1, 2, 1.0, &rng);
  const double target = rng.Gaussian();
  auto loss_fn = [&]() {
    return GaussianNll(MakeLeaf(out_val), target)->value[0];
  };
  Var out = MakeLeaf(out_val);
  Var loss = GaussianNll(out, target);
  Backward(loss);
  EXPECT_LT(MaxGradError(&out_val, out->grad, loss_fn), 1e-5);
}

TEST_P(GradCheckTest, TanhConcatSelectMatchesFiniteDifference) {
  Rng rng(500 + GetParam());
  Tensor a_val = Tensor::Randn(1, 3, 1.0, &rng);
  Tensor b_val = Tensor::Randn(1, 3, 1.0, &rng);
  Tensor table_val = Tensor::Randn(4, 3, 1.0, &rng);
  auto build = [&]() {
    Var a = MakeLeaf(a_val);
    Var b = MakeLeaf(b_val);
    Var table = MakeLeaf(table_val);
    Var row = SelectRow(table, 2);
    Var stacked = ConcatRows({Tanh(a), b, row});
    return std::make_tuple(a, b, table, Mean(Mul(stacked, stacked)));
  };
  auto [a, b, table, loss] = build();
  Backward(loss);
  auto loss_fn = [&]() { return std::get<3>(build())->value[0]; };
  EXPECT_LT(MaxGradError(&a_val, a->grad, loss_fn), kTol);
  EXPECT_LT(MaxGradError(&b_val, b->grad, loss_fn), kTol);
  EXPECT_LT(MaxGradError(&table_val, table->grad, loss_fn), kTol);
}

TEST_P(GradCheckTest, SubScaleMatchesFiniteDifference) {
  Rng rng(600 + GetParam());
  Tensor a_val = Tensor::Randn(2, 2, 1.0, &rng);
  Tensor b_val = Tensor::Randn(2, 2, 1.0, &rng);
  auto build = [&]() {
    Var a = MakeLeaf(a_val);
    Var b = MakeLeaf(b_val);
    Var diff = Sub(Scale(a, 3.0), b);
    return std::make_tuple(a, b, Sum(Mul(diff, diff)));
  };
  auto [a, b, loss] = build();
  Backward(loss);
  auto loss_fn = [&]() { return std::get<2>(build())->value[0]; };
  EXPECT_LT(MaxGradError(&a_val, a->grad, loss_fn), kTol);
  EXPECT_LT(MaxGradError(&b_val, b->grad, loss_fn), kTol);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GradCheckTest, ::testing::Range(0, 5));

}  // namespace
}  // namespace kamino
