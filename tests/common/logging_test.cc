// Tests for the mutex-protected logging sink (kamino/common/logging.h):
// sink capture, severity filtering, and the guarantee that concurrent
// writers never interleave mid-line.

#include <gtest/gtest.h>

#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "kamino/common/logging.h"

namespace kamino {
namespace {

using internal_logging::LogLevel;
using internal_logging::LogSink;
using internal_logging::MinLogLevel;
using internal_logging::SetLogSink;
using internal_logging::SetMinLogLevel;

/// Captures every delivered line. Writes are serialized by the logging
/// mutex per the LogSink contract, but the accessor takes its own lock so
/// tests can read while other threads still log.
class CapturingSink : public LogSink {
 public:
  void Write(LogLevel level, const std::string& line) override {
    std::lock_guard<std::mutex> lock(mu_);
    lines_.push_back(line);
    levels_.push_back(level);
  }

  std::vector<std::string> lines() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lines_;
  }
  std::vector<LogLevel> levels() const {
    std::lock_guard<std::mutex> lock(mu_);
    return levels_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::string> lines_;
  std::vector<LogLevel> levels_;
};

/// Installs a capturing sink for the scope and restores the previous sink
/// and threshold on exit.
class ScopedCapture {
 public:
  ScopedCapture() : previous_(SetLogSink(&sink_)), level_(MinLogLevel()) {}
  ~ScopedCapture() {
    SetLogSink(previous_);
    SetMinLogLevel(level_);
  }

  CapturingSink& sink() { return sink_; }

 private:
  CapturingSink sink_;
  LogSink* previous_;
  LogLevel level_;
};

TEST(LoggingTest, SinkCapturesFormattedLines) {
  ScopedCapture capture;
  SetMinLogLevel(LogLevel::kInfo);
  KAMINO_LOG(Info) << "hello " << 42;
  KAMINO_LOG(Warning) << "careful";
  const std::vector<std::string> lines = capture.sink().lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("hello 42"), std::string::npos);
  EXPECT_NE(lines[0].find("[INFO "), std::string::npos);
  EXPECT_EQ(lines[0].back(), '\n');
  EXPECT_NE(lines[1].find("careful"), std::string::npos);
  EXPECT_EQ(capture.sink().levels()[1], LogLevel::kWarning);
}

TEST(LoggingTest, MinLevelFiltersLowerSeverities) {
  ScopedCapture capture;
  SetMinLogLevel(LogLevel::kError);
  KAMINO_LOG(Info) << "dropped";
  KAMINO_LOG(Warning) << "dropped too";
  KAMINO_LOG(Error) << "kept";
  const std::vector<std::string> lines = capture.sink().lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("kept"), std::string::npos);
  EXPECT_EQ(MinLogLevel(), LogLevel::kError);
}

TEST(LoggingTest, ConcurrentWritersNeverInterleaveMidLine) {
  ScopedCapture capture;
  SetMinLogLevel(LogLevel::kInfo);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        KAMINO_LOG(Info) << "writer=" << t << " message=" << i << " end";
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const std::vector<std::string> lines = capture.sink().lines();
  ASSERT_EQ(lines.size(), size_t{kThreads} * kPerThread);
  for (const std::string& line : lines) {
    // Every delivered line is exactly one message: a single terminating
    // newline and an intact "writer=T message=I end" payload.
    EXPECT_EQ(line.find('\n'), line.size() - 1) << line;
    EXPECT_NE(line.find("writer="), std::string::npos) << line;
    EXPECT_NE(line.find(" end\n"), std::string::npos) << line;
  }
}

TEST(LoggingTest, NullSinkRestoresDefaultStderr) {
  CapturingSink sink;
  LogSink* previous = SetLogSink(&sink);
  SetLogSink(nullptr);  // back to the default stderr sink
  // Re-install and verify the previous pointer round-trips.
  LogSink* before = SetLogSink(previous);
  EXPECT_EQ(before, nullptr);
}

}  // namespace
}  // namespace kamino
