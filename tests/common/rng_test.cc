#include "kamino/common/rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace kamino {
namespace {

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformInt(0, 1 << 30) == b.UniformInt(0, 1 << 30)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(42);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Gaussian(2.0, 3.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

TEST(RngTest, DiscreteProportionalToWeights) {
  Rng rng(9);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[rng.Discrete(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / double(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / double(n), 0.3, 0.02);
  EXPECT_NEAR(counts[3] / double(n), 0.6, 0.02);
}

TEST(RngTest, DiscreteAllZeroFallsBackToUniform) {
  Rng rng(5);
  std::vector<double> weights = {0.0, 0.0, 0.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 3000; ++i) ++counts[rng.Discrete(weights)];
  for (int c : counts) EXPECT_GT(c, 700);
}

TEST(RngTest, DiscreteIgnoresNegativeWeights) {
  Rng rng(6);
  std::vector<double> weights = {-5.0, 1.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Discrete(weights), 1u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(11);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

}  // namespace
}  // namespace kamino
