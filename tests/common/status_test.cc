#include "kamino/common/status.h"

#include <gtest/gtest.h>

namespace kamino {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad thing");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kInternal,
        StatusCode::kIoError, StatusCode::kNotImplemented}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, TakeValueMoves) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  std::string v = r.TakeValue();
  EXPECT_EQ(v, "payload");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  KAMINO_ASSIGN_OR_RETURN(int h, Half(x));
  KAMINO_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);
  Result<int> err = Quarter(6);  // 6/2 = 3, odd -> error
  EXPECT_FALSE(err.ok());
}

}  // namespace
}  // namespace kamino
