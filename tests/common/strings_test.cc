#include "kamino/common/strings.h"

#include <gtest/gtest.h>

namespace kamino {
namespace {

TEST(StringsTest, SplitBasic) {
  std::vector<std::string> parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  std::vector<std::string> parts = Split(",x,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
}

TEST(StringsTest, SplitNoDelimiter) {
  std::vector<std::string> parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("\tz\n"), "z");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(StringsTest, ParseDoubleValid) {
  auto r = ParseDouble(" 3.25 ");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value(), 3.25);
}

TEST(StringsTest, ParseDoubleRejectsGarbage) {
  EXPECT_FALSE(ParseDouble("3.25x").ok());
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
}

TEST(StringsTest, ParseIntValid) {
  auto r = ParseInt("-42");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), -42);
}

TEST(StringsTest, ParseIntRejectsGarbage) {
  EXPECT_FALSE(ParseInt("4.2").ok());
  EXPECT_FALSE(ParseInt("").ok());
  EXPECT_FALSE(ParseInt("12x").ok());
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("t1.age", "t1."));
  EXPECT_FALSE(StartsWith("t2.age", "t1."));
  EXPECT_FALSE(StartsWith("t", "t1."));
}

}  // namespace
}  // namespace kamino
