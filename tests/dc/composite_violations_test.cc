// Property suites for the composite (mixed-shape) violation engine: every
// binary DC with a kComposite decomposition — !=-only, equality + !=,
// equality + order + !=, non-strict order mixes — must be bit-identical
// to the naive pair scan in full counts, incremental CountNew, shard
// Merge/CountAgainst, and violation-matrix columns.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "kamino/common/logging.h"
#include "kamino/common/rng.h"
#include "kamino/dc/violations.h"

namespace kamino {
namespace {

Schema TestSchema() {
  return Schema({
      Attribute::MakeCategorical("a", {"p", "q", "r"}),
      Attribute::MakeCategorical("b", {"s", "t", "u"}),
      Attribute::MakeNumeric("u", 0, 100, 101),
      Attribute::MakeNumeric("v", 0, 100, 101),
      Attribute::MakeNumeric("w", 0, 100, 101),
  });
}

Row RandomRow(Rng* rng) {
  return {Value::Categorical(static_cast<int>(rng->UniformInt(0, 2))),
          Value::Categorical(static_cast<int>(rng->UniformInt(0, 2))),
          Value::Numeric(static_cast<double>(rng->UniformInt(0, 6))),
          Value::Numeric(static_cast<double>(rng->UniformInt(0, 6))),
          Value::Numeric(static_cast<double>(rng->UniformInt(0, 6)))};
}

std::vector<Row> RandomRows(size_t n, Rng* rng) {
  std::vector<Row> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) rows.push_back(RandomRow(rng));
  return rows;
}

int64_t CrossPairs(const DenialConstraint& dc, const std::vector<Row>& a,
                   const std::vector<Row>& b) {
  int64_t count = 0;
  for (const Row& ra : a) {
    for (const Row& rb : b) {
      if (dc.ViolatesPair(ra, rb)) ++count;
    }
  }
  return count;
}

/// The mixed-shape DC zoo: every spec must decompose to kComposite (and
/// none is caught by the FD / grouped-order syntactic matchers, except
/// where noted — the point is exercising the composite plans).
std::vector<const char*> CompositeSpecs() {
  return {
      // !=-only (single and multiple residuals, with and without scope).
      "!(t1.u != t2.u)",
      "!(t1.a == t2.a & t1.u != t2.u & t1.v != t2.v)",
      "!(t1.u != t2.u & t1.v != t2.v & t1.w != t2.w)",
      // equality + strict order pair + !=.
      "!(t1.a == t2.a & t1.u > t2.u & t1.v < t2.v & t1.b != t2.b)",
      "!(t1.u > t2.u & t1.v > t2.v & t1.a != t2.a)",
      "!(t1.u < t2.u & t2.v < t1.v & t1.a != t2.a & t1.b != t2.b)",
      // non-strict order pairs (alone and with !=).
      "!(t1.a == t2.a & t1.u >= t2.u & t1.v <= t2.v)",
      "!(t1.u >= t2.u & t1.v >= t2.v & t1.b != t2.b)",
      // strict + non-strict mix.
      "!(t1.u >= t2.u & t1.v < t2.v & t1.b != t2.b)",
      "!(t1.a == t2.a & t1.u > t2.u & t1.v <= t2.v)",
      // lone order residuals: strict becomes an inequation, non-strict is
      // vacuous for unordered pairs.
      "!(t1.u > t2.u & t1.b != t2.b)",
      "!(t1.u >= t2.u & t1.b != t2.b)",
      "!(t1.a == t2.a & t1.u <= t2.u)",
      // scope-only.
      "!(t1.a == t2.a & t1.b == t2.b)",
  };
}

std::vector<DenialConstraint> CompositeDcs(const Schema& schema) {
  std::vector<DenialConstraint> dcs;
  for (const char* spec : CompositeSpecs()) {
    auto dc = DenialConstraint::Parse(spec, schema);
    EXPECT_TRUE(dc.ok()) << spec;
    EXPECT_EQ(dc.value().Decompose().shape,
              PredicateDecomposition::Shape::kComposite)
        << spec;
    dcs.push_back(dc.value());
  }
  return dcs;
}

TEST(CompositeViolationsTest, FullCountsMatchNaiveOnRandomTables) {
  Schema schema = TestSchema();
  Rng rng(101);
  for (const DenialConstraint& dc : CompositeDcs(schema)) {
    for (int trial = 0; trial < 3; ++trial) {
      Table t(schema);
      for (const Row& r : RandomRows(50 + trial * 35, &rng)) {
        t.AppendRowUnchecked(r);
      }
      EXPECT_EQ(CountViolations(dc, t), CountViolationsNaive(dc, t))
          << dc.ToString(schema) << " trial " << trial;
    }
  }
}

TEST(CompositeViolationIndexTest, CountNewMatchesNaiveIncrementally) {
  Schema schema = TestSchema();
  Rng rng(103);
  for (const DenialConstraint& dc : CompositeDcs(schema)) {
    auto fast = MakeViolationIndex(dc);
    auto naive = MakeNaiveViolationIndex(dc);
    for (int i = 0; i < 150; ++i) {
      Row row = RandomRow(&rng);
      ASSERT_EQ(fast->CountNew(row), naive->CountNew(row))
          << dc.ToString(schema) << " at row " << i;
      fast->AddRow(row);
      naive->AddRow(row);
    }
    EXPECT_EQ(fast->size(), naive->size());
  }
}

TEST(CompositeViolationIndexTest, MergeAndCountAgainstMatchNaive) {
  Schema schema = TestSchema();
  Rng rng(107);
  for (const DenialConstraint& dc : CompositeDcs(schema)) {
    for (int trial = 0; trial < 2; ++trial) {
      const std::vector<Row> shard_a = RandomRows(35 + trial * 20, &rng);
      const std::vector<Row> shard_b = RandomRows(25, &rng);
      const std::vector<Row> probes = RandomRows(15, &rng);
      auto index_a = MakeViolationIndex(dc);
      auto index_b = MakeViolationIndex(dc);
      for (const Row& r : shard_a) index_a->AddRow(r);
      for (const Row& r : shard_b) index_b->AddRow(r);
      EXPECT_EQ(index_a->CountAgainst(*index_b),
                CrossPairs(dc, shard_a, shard_b))
          << dc.ToString(schema) << " trial " << trial;
      EXPECT_EQ(index_a->CountAgainst(*index_b),
                index_b->CountAgainst(*index_a));
      auto merged = MakeViolationIndex(dc);
      merged->Merge(*index_a);
      merged->Merge(*index_b);
      auto reference = MakeNaiveViolationIndex(dc);
      for (const Row& r : shard_a) reference->AddRow(r);
      for (const Row& r : shard_b) reference->AddRow(r);
      ASSERT_EQ(merged->size(), reference->size());
      for (const Row& probe : probes) {
        EXPECT_EQ(merged->CountNew(probe), reference->CountNew(probe))
            << dc.ToString(schema) << " trial " << trial;
      }
    }
  }
}

TEST(CompositeViolationsTest, MatrixColumnsMatchPairScan) {
  Schema schema = TestSchema();
  Rng rng(109);
  Table t(schema);
  for (const Row& r : RandomRows(120, &rng)) t.AppendRowUnchecked(r);
  std::vector<std::string> specs;
  std::vector<bool> hardness;
  for (const char* spec : CompositeSpecs()) {
    specs.emplace_back(spec);
    hardness.push_back(false);
  }
  std::vector<WeightedConstraint> constraints =
      ParseConstraints(specs, hardness, schema).TakeValue();
  const auto matrix = BuildViolationMatrix(t, constraints);
  for (size_t l = 0; l < constraints.size(); ++l) {
    const DenialConstraint& dc = constraints[l].dc;
    for (size_t i = 0; i < t.num_rows(); ++i) {
      int64_t expected = 0;
      for (size_t j = 0; j < t.num_rows(); ++j) {
        if (j != i && dc.ViolatesPair(t.row(i), t.row(j))) ++expected;
      }
      ASSERT_DOUBLE_EQ(matrix[i][l], static_cast<double>(expected))
          << dc.ToString(schema) << " row " << i;
    }
  }
}

TEST(CompositeViolationsTest, UnsatisfiableConjunctionsNeverViolate) {
  Schema schema = TestSchema();
  Rng rng(113);
  Table t(schema);
  for (const Row& r : RandomRows(60, &rng)) t.AppendRowUnchecked(r);
  for (const char* spec : {
           "!(t1.u > t2.u & t1.u < t2.u)",          // opposite strict orders
           "!(t1.a == t2.a & t1.a != t2.a)",        // == with !=
           "!(t1.u == t2.u & t1.u > t2.u & t1.v < t2.v)",  // == with strict
       }) {
    auto dc = DenialConstraint::Parse(spec, schema).TakeValue();
    EXPECT_EQ(dc.Decompose().shape,
              PredicateDecomposition::Shape::kNeverFires)
        << spec;
    EXPECT_EQ(CountViolations(dc, t), 0) << spec;
    EXPECT_EQ(CountViolationsNaive(dc, t), 0) << spec;
    auto index = MakeViolationIndex(dc);
    for (size_t i = 0; i < 20; ++i) {
      EXPECT_EQ(index->CountNew(t.row(i)), 0) << spec;
      index->AddRow(t.row(i));
    }
    EXPECT_EQ(index->size(), 20u);
    auto other = MakeViolationIndex(dc);
    other->AddRow(t.row(0));
    EXPECT_EQ(index->CountAgainst(*other), 0) << spec;
    index->Merge(*other);
    EXPECT_EQ(index->size(), 21u);
  }
}

/// Draws a random binary DC over the test schema: random equality scope,
/// inequations, and up to two order predicates with random operators and
/// tuple orientations. Roughly all of these decompose to kComposite (the
/// builder only emits cross-tuple same-attribute predicates), so this
/// fuzzes the decomposition normalizer and every composite plan shape.
DenialConstraint RandomCompositeDc(const Schema& schema, Rng* rng) {
  while (true) {
    std::string body;
    auto append = [&body](const std::string& pred) {
      if (!body.empty()) body += " & ";
      body += pred;
    };
    const char* names[5] = {"a", "b", "u", "v", "w"};
    auto cross_pred = [&](size_t attr, const char* op, bool swap) {
      const std::string lhs = swap ? "t2." : "t1.";
      const std::string rhs = swap ? "t1." : "t2.";
      return lhs + names[attr] + " " + op + " " + rhs + names[attr];
    };
    // Each attribute independently draws a role (possibly several
    // predicates, exercising dedup and contradiction pruning).
    const char* order_ops[4] = {"<", ">", "<=", ">="};
    for (size_t attr = 0; attr < 5; ++attr) {
      const int64_t role = rng->UniformInt(0, 5);
      const bool swap = rng->UniformInt(0, 1) == 1;
      if (role == 1) {
        append(cross_pred(attr, "==", swap));
      } else if (role == 2) {
        append(cross_pred(attr, "!=", swap));
      } else if (role == 3) {
        append(cross_pred(
            attr, order_ops[rng->UniformInt(0, 3)], swap));
      } else if (role == 4) {
        // Two predicates on the same attribute.
        append(cross_pred(attr, order_ops[rng->UniformInt(0, 3)], swap));
        append(cross_pred(attr,
                          rng->UniformInt(0, 1) == 0
                              ? "!="
                              : order_ops[rng->UniformInt(0, 3)],
                          rng->UniformInt(0, 1) == 1));
      }
    }
    if (body.empty()) continue;
    auto dc = DenialConstraint::Parse("!(" + body + ")", schema);
    KAMINO_CHECK(dc.ok()) << body;
    if (dc.value().is_unary()) continue;
    return dc.value();
  }
}

TEST(CompositeViolationsTest, RandomizedDcsMatchNaiveEverywhere) {
  // Fuzz over randomized DC shapes: whatever the decomposition decides
  // (composite, never-fires, or general fallback), full counts and the
  // incremental index must agree with the naive reference.
  Schema schema = TestSchema();
  Rng rng(127);
  int composite_seen = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const DenialConstraint dc = RandomCompositeDc(schema, &rng);
    if (dc.Decompose().shape == PredicateDecomposition::Shape::kComposite) {
      ++composite_seen;
    }
    Table t(schema);
    for (const Row& r : RandomRows(60, &rng)) t.AppendRowUnchecked(r);
    ASSERT_EQ(CountViolations(dc, t), CountViolationsNaive(dc, t))
        << "trial " << trial << ": " << dc.ToString(schema);
    auto fast = MakeViolationIndex(dc);
    auto naive = MakeNaiveViolationIndex(dc);
    for (size_t i = 0; i < t.num_rows(); ++i) {
      ASSERT_EQ(fast->CountNew(t.row(i)), naive->CountNew(t.row(i)))
          << "trial " << trial << " row " << i << ": "
          << dc.ToString(schema);
      fast->AddRow(t.row(i));
      naive->AddRow(t.row(i));
    }
  }
  // The fuzzer must actually exercise the composite engine, not just the
  // fallback.
  EXPECT_GE(composite_seen, 10);
}

}  // namespace
}  // namespace kamino
