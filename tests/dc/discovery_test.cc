#include "kamino/dc/discovery.h"

#include <gtest/gtest.h>

#include "kamino/data/generators.h"
#include "kamino/dc/constraint.h"
#include "kamino/dc/violations.h"

namespace kamino {
namespace {

TEST(DiscoveryTest, FindsPlantedFd) {
  // zip -> state is deterministic in the Tax-like generator; discovery
  // must surface FD-shaped DCs that hold.
  BenchmarkDataset ds = MakeTaxLike(300, 21);
  Rng rng(1);
  DiscoveryOptions options;
  options.max_constraints = 128;
  std::vector<std::string> found =
      DiscoverApproximateDcs(ds.table, options, &rng);
  EXPECT_FALSE(found.empty());
  bool has_zip_state = false;
  for (const std::string& spec : found) {
    if (spec.find("t1.zip == t2.zip") != std::string::npos &&
        spec.find("t1.state != t2.state") != std::string::npos) {
      has_zip_state = true;
    }
  }
  EXPECT_TRUE(has_zip_state);
}

TEST(DiscoveryTest, AllFoundDcsParseAndApproximatelyHold) {
  BenchmarkDataset ds = MakeAdultLike(300, 22);
  Rng rng(2);
  DiscoveryOptions options;
  options.max_violation_rate = 0.01;
  std::vector<std::string> found =
      DiscoverApproximateDcs(ds.table, options, &rng);
  for (const std::string& spec : found) {
    auto dc = DenialConstraint::Parse(spec, ds.table.schema());
    ASSERT_TRUE(dc.ok()) << spec;
    // Rate on the sample used for discovery must be within the bound
    // (evaluate on the same prefix the discovery used).
    Table sample = ds.table.Head(options.sample_rows);
    EXPECT_LE(ViolationRatePercent(dc.value(), sample), 1.0 + 1e-9) << spec;
  }
}

TEST(DiscoveryTest, RespectsMaxConstraints) {
  BenchmarkDataset ds = MakeTpchLike(200, 23);
  Rng rng(3);
  DiscoveryOptions options;
  options.max_constraints = 5;
  EXPECT_LE(DiscoverApproximateDcs(ds.table, options, &rng).size(), 5u);
}

}  // namespace
}  // namespace kamino
