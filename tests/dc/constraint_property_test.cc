// Property tests for the DC engine: operator semantics against a
// reference, parser round-trip stability on every generator DC, and
// consistency between the pairwise evaluator and the predicate list.

#include <gtest/gtest.h>

#include "kamino/data/generators.h"
#include "kamino/dc/constraint.h"

namespace kamino {
namespace {

TEST(CompareOpPropertyTest, MatchesReferenceOnNumericGrid) {
  const double values[] = {-2.0, -0.5, 0.0, 0.5, 2.0};
  for (double a : values) {
    for (double b : values) {
      const Value va = Value::Numeric(a);
      const Value vb = Value::Numeric(b);
      EXPECT_EQ(EvalCompare(va, CompareOp::kEq, vb), a == b);
      EXPECT_EQ(EvalCompare(va, CompareOp::kNe, vb), a != b);
      EXPECT_EQ(EvalCompare(va, CompareOp::kLt, vb), a < b);
      EXPECT_EQ(EvalCompare(va, CompareOp::kLe, vb), a <= b);
      EXPECT_EQ(EvalCompare(va, CompareOp::kGt, vb), a > b);
      EXPECT_EQ(EvalCompare(va, CompareOp::kGe, vb), a >= b);
    }
  }
}

TEST(CompareOpPropertyTest, TrichotomyOnCategoricals) {
  for (int32_t a = 0; a < 4; ++a) {
    for (int32_t b = 0; b < 4; ++b) {
      const Value va = Value::Categorical(a);
      const Value vb = Value::Categorical(b);
      int holds = 0;
      if (EvalCompare(va, CompareOp::kLt, vb)) ++holds;
      if (EvalCompare(va, CompareOp::kEq, vb)) ++holds;
      if (EvalCompare(va, CompareOp::kGt, vb)) ++holds;
      EXPECT_EQ(holds, 1) << a << " vs " << b;
    }
  }
}

TEST(ParserPropertyTest, EveryGeneratorDcRoundTripsStably) {
  for (const BenchmarkDataset& ds : MakeAllBenchmarks(10, 1)) {
    for (const std::string& spec : ds.dc_specs) {
      auto dc = DenialConstraint::Parse(spec, ds.table.schema());
      ASSERT_TRUE(dc.ok()) << spec << ": " << dc.status();
      const std::string printed = dc.value().ToString(ds.table.schema());
      auto reparsed = DenialConstraint::Parse(printed, ds.table.schema());
      ASSERT_TRUE(reparsed.ok()) << printed;
      // Printing is a fixed point after one round.
      EXPECT_EQ(reparsed.value().ToString(ds.table.schema()), printed);
      // Structural equivalence.
      EXPECT_EQ(reparsed.value().is_unary(), dc.value().is_unary());
      EXPECT_EQ(reparsed.value().attributes(), dc.value().attributes());
      EXPECT_EQ(reparsed.value().predicates().size(),
                dc.value().predicates().size());
    }
  }
}

TEST(ParserPropertyTest, FiresOrderedEqualsPredicateConjunction) {
  // FiresOrdered must be exactly the conjunction of Predicate::Eval.
  BenchmarkDataset ds = MakeAdultLike(40, 2);
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema()).TakeValue();
  for (const WeightedConstraint& wc : constraints) {
    for (size_t i = 0; i < ds.table.num_rows(); i += 7) {
      for (size_t j = 0; j < ds.table.num_rows(); j += 5) {
        const Row& a = ds.table.row(i);
        const Row& b = ds.table.row(j);
        bool conjunction = true;
        for (const Predicate& p : wc.dc.predicates()) {
          conjunction = conjunction && p.Eval(a, b);
        }
        EXPECT_EQ(wc.dc.FiresOrdered(a, b), conjunction);
      }
    }
  }
}

TEST(ParserPropertyTest, WhitespaceInsensitive) {
  Schema schema({Attribute::MakeNumeric("a", 0, 9, 10),
                 Attribute::MakeNumeric("b", 0, 9, 10)});
  auto tight = DenialConstraint::Parse("!(t1.a>t2.a&t1.b<t2.b)", schema);
  auto loose =
      DenialConstraint::Parse("!(  t1.a  >  t2.a  &  t1.b  <  t2.b  )", schema);
  ASSERT_TRUE(tight.ok()) << tight.status();
  ASSERT_TRUE(loose.ok()) << loose.status();
  EXPECT_EQ(tight.value().ToString(schema), loose.value().ToString(schema));
}

TEST(ParserPropertyTest, UnaryDetectionExactness) {
  Schema schema({Attribute::MakeNumeric("a", 0, 9, 10),
                 Attribute::MakeNumeric("b", 0, 9, 10)});
  // Mentions only t1 -> unary.
  EXPECT_TRUE(DenialConstraint::Parse("!(t1.a > 5 & t1.b < 3)", schema)
                  .value()
                  .is_unary());
  // Mentions t2 anywhere -> binary.
  EXPECT_FALSE(DenialConstraint::Parse("!(t1.a > 5 & t2.b < 3)", schema)
                   .value()
                   .is_unary());
  EXPECT_FALSE(DenialConstraint::Parse("!(t1.a > t2.a)", schema)
                   .value()
                   .is_unary());
}

}  // namespace
}  // namespace kamino
