#include "kamino/dc/violations.h"

#include <gtest/gtest.h>

#include <cmath>

#include "kamino/data/generators.h"

namespace kamino {
namespace {

Schema TestSchema() {
  return Schema({
      Attribute::MakeCategorical("x", {"a", "b", "c"}),
      Attribute::MakeCategorical("y", {"p", "q", "r"}),
      Attribute::MakeNumeric("u", 0, 100, 101),
      Attribute::MakeNumeric("v", 0, 100, 101),
  });
}

Row MakeRow(int x, int y, double u, double v) {
  return {Value::Categorical(x), Value::Categorical(y), Value::Numeric(u),
          Value::Numeric(v)};
}

DenialConstraint Fd(const Schema& schema) {
  return DenialConstraint::Parse("!(t1.x == t2.x & t1.y != t2.y)", schema)
      .TakeValue();
}

DenialConstraint Order(const Schema& schema) {
  return DenialConstraint::Parse("!(t1.u > t2.u & t1.v < t2.v)", schema)
      .TakeValue();
}

TEST(ViolationsTest, FdCountExact) {
  Schema schema = TestSchema();
  Table t(schema);
  // Group x=0: y values {p, p, q} -> violating pairs = C(3,2) - C(2,2) = 2.
  t.AppendRowUnchecked(MakeRow(0, 0, 0, 0));
  t.AppendRowUnchecked(MakeRow(0, 0, 0, 0));
  t.AppendRowUnchecked(MakeRow(0, 1, 0, 0));
  // Group x=1: consistent.
  t.AppendRowUnchecked(MakeRow(1, 2, 0, 0));
  t.AppendRowUnchecked(MakeRow(1, 2, 0, 0));
  EXPECT_EQ(CountViolations(Fd(schema), t), 2);
  EXPECT_EQ(CountViolationsNaive(Fd(schema), t), 2);
}

TEST(ViolationsTest, FastPathMatchesNaiveOnRandomData) {
  // Property test: the FD group-counting fast path must agree with the
  // quadratic reference on arbitrary instances.
  Schema schema = TestSchema();
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    Table t(schema);
    const int n = 40 + trial * 10;
    for (int i = 0; i < n; ++i) {
      t.AppendRowUnchecked(MakeRow(
          static_cast<int>(rng.UniformInt(0, 2)),
          static_cast<int>(rng.UniformInt(0, 2)),
          static_cast<double>(rng.UniformInt(0, 5)),
          static_cast<double>(rng.UniformInt(0, 5))));
    }
    EXPECT_EQ(CountViolations(Fd(schema), t),
              CountViolationsNaive(Fd(schema), t))
        << "trial " << trial;
  }
}

TEST(ViolationsTest, OrderDcCount) {
  Schema schema = TestSchema();
  Table t(schema);
  t.AppendRowUnchecked(MakeRow(0, 0, 10, 10));
  t.AppendRowUnchecked(MakeRow(0, 0, 20, 5));  // higher u, lower v than row 0
  t.AppendRowUnchecked(MakeRow(0, 0, 30, 3));  // violates rows 0 and 1
  EXPECT_EQ(CountViolations(Order(schema), t), 3);
  EXPECT_EQ(CountViolationsNaive(Order(schema), t), 3);
}

TEST(ViolationsTest, UnaryCountsTuples) {
  Schema schema = TestSchema();
  auto dc =
      DenialConstraint::Parse("!(t1.u > 50)", schema).TakeValue();
  Table t(schema);
  t.AppendRowUnchecked(MakeRow(0, 0, 60, 0));
  t.AppendRowUnchecked(MakeRow(0, 0, 40, 0));
  t.AppendRowUnchecked(MakeRow(0, 0, 70, 0));
  EXPECT_EQ(CountViolations(dc, t), 2);
  EXPECT_DOUBLE_EQ(ViolationRatePercent(dc, t), 100.0 * 2 / 3);
}

TEST(ViolationsTest, RatePercentBinary) {
  Schema schema = TestSchema();
  Table t(schema);
  t.AppendRowUnchecked(MakeRow(0, 0, 0, 0));
  t.AppendRowUnchecked(MakeRow(0, 1, 0, 0));
  t.AppendRowUnchecked(MakeRow(1, 0, 0, 0));
  // 1 violating pair out of C(3,2)=3.
  EXPECT_NEAR(ViolationRatePercent(Fd(schema), t), 100.0 / 3, 1e-9);
}

TEST(ViolationsTest, EmptyTableIsZero) {
  Schema schema = TestSchema();
  Table t(schema);
  EXPECT_EQ(CountViolations(Fd(schema), t), 0);
  EXPECT_DOUBLE_EQ(ViolationRatePercent(Fd(schema), t), 0.0);
}

TEST(ViolationsTest, IncrementalDecompositionSumsToTotal) {
  // Eqn (3): |V(phi, D)| = sum_i |V(phi, t_i | D_:i)|.
  Schema schema = TestSchema();
  Rng rng(7);
  for (const DenialConstraint& dc : {Fd(schema), Order(schema)}) {
    Table t(schema);
    for (int i = 0; i < 60; ++i) {
      t.AppendRowUnchecked(MakeRow(
          static_cast<int>(rng.UniformInt(0, 2)),
          static_cast<int>(rng.UniformInt(0, 2)),
          static_cast<double>(rng.UniformInt(0, 8)),
          static_cast<double>(rng.UniformInt(0, 8))));
    }
    int64_t incremental = 0;
    for (size_t i = 0; i < t.num_rows(); ++i) {
      incremental += CountNewViolations(dc, t.row(i), t, i);
    }
    EXPECT_EQ(incremental, CountViolations(dc, t));
  }
}

TEST(ViolationIndexTest, FdIndexMatchesIncremental) {
  Schema schema = TestSchema();
  DenialConstraint dc = Fd(schema);
  auto index = MakeViolationIndex(dc);
  Rng rng(13);
  Table t(schema);
  for (int i = 0; i < 80; ++i) {
    Row row = MakeRow(static_cast<int>(rng.UniformInt(0, 2)),
                      static_cast<int>(rng.UniformInt(0, 2)), 0, 0);
    EXPECT_EQ(index->CountNew(row), CountNewViolations(dc, row, t, i))
        << "row " << i;
    index->AddRow(row);
    t.AppendRowUnchecked(row);
  }
  EXPECT_EQ(index->size(), 80u);
}

TEST(ViolationIndexTest, NaiveIndexMatchesIncremental) {
  Schema schema = TestSchema();
  DenialConstraint dc = Order(schema);
  auto index = MakeViolationIndex(dc);
  Rng rng(29);
  Table t(schema);
  for (int i = 0; i < 60; ++i) {
    Row row = MakeRow(0, 0, static_cast<double>(rng.UniformInt(0, 9)),
                      static_cast<double>(rng.UniformInt(0, 9)));
    EXPECT_EQ(index->CountNew(row), CountNewViolations(dc, row, t, i));
    index->AddRow(row);
    t.AppendRowUnchecked(row);
  }
}

TEST(ViolationIndexTest, UnaryIndex) {
  Schema schema = TestSchema();
  auto dc = DenialConstraint::Parse("!(t1.u > 50)", schema).TakeValue();
  auto index = MakeViolationIndex(dc);
  EXPECT_EQ(index->CountNew(MakeRow(0, 0, 60, 0)), 1);
  EXPECT_EQ(index->CountNew(MakeRow(0, 0, 40, 0)), 0);
}

TEST(ViolationIndexTest, FdForcedValueReportsGroupValue) {
  Schema schema = TestSchema();
  auto index = MakeViolationIndex(Fd(schema));
  EXPECT_FALSE(index->FdForcedValue(MakeRow(0, 0, 0, 0)).has_value());
  index->AddRow(MakeRow(0, 2, 0, 0));
  auto forced = index->FdForcedValue(MakeRow(0, 0, 0, 0));
  ASSERT_TRUE(forced.has_value());
  EXPECT_EQ(forced->category(), 2);
  // Different group still unseen.
  EXPECT_FALSE(index->FdForcedValue(MakeRow(1, 0, 0, 0)).has_value());
}

// Brute-force cross-shard violation count: unordered pairs with one row
// from each set.
int64_t CrossPairs(const DenialConstraint& dc, const std::vector<Row>& a,
                   const std::vector<Row>& b) {
  int64_t count = 0;
  for (const Row& ra : a) {
    for (const Row& rb : b) {
      if (dc.ViolatesPair(ra, rb)) ++count;
    }
  }
  return count;
}

std::vector<Row> RandomRows(size_t n, Rng* rng) {
  std::vector<Row> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    rows.push_back(MakeRow(static_cast<int>(rng->UniformInt(0, 2)),
                           static_cast<int>(rng->UniformInt(0, 2)),
                           static_cast<double>(rng->UniformInt(0, 6)),
                           static_cast<double>(rng->UniformInt(0, 6))));
  }
  return rows;
}

TEST(ViolationIndexTest, MergeMatchesSequentialAdds) {
  // For all three implementations: merging shard indices in order must be
  // indistinguishable (CountNew on arbitrary probes, size) from adding
  // every row through one index.
  Schema schema = TestSchema();
  Rng rng(41);
  const std::vector<Row> shard_a = RandomRows(30, &rng);
  const std::vector<Row> shard_b = RandomRows(20, &rng);
  const std::vector<Row> probes = RandomRows(25, &rng);
  const std::vector<DenialConstraint> dcs = {
      Fd(schema), Order(schema),
      // Fires for roughly half the random rows (u ranges over [0, 6]).
      DenialConstraint::Parse("!(t1.u > 3)", schema).TakeValue()};
  for (const DenialConstraint& dc : dcs) {
    auto index_a = MakeViolationIndex(dc);
    auto index_b = MakeViolationIndex(dc);
    auto reference = MakeViolationIndex(dc);
    for (const Row& r : shard_a) {
      index_a->AddRow(r);
      reference->AddRow(r);
    }
    for (const Row& r : shard_b) {
      index_b->AddRow(r);
      reference->AddRow(r);
    }
    auto merged = MakeViolationIndex(dc);
    merged->Merge(*index_a);
    merged->Merge(*index_b);
    EXPECT_EQ(merged->size(), reference->size());
    for (const Row& probe : probes) {
      EXPECT_EQ(merged->CountNew(probe), reference->CountNew(probe));
    }
  }
}

TEST(ViolationIndexTest, MergePreservesFdForcedValue) {
  Schema schema = TestSchema();
  auto index_a = MakeViolationIndex(Fd(schema));
  auto index_b = MakeViolationIndex(Fd(schema));
  index_a->AddRow(MakeRow(0, 2, 0, 0));
  index_b->AddRow(MakeRow(1, 1, 0, 0));
  auto merged = MakeViolationIndex(Fd(schema));
  merged->Merge(*index_a);
  merged->Merge(*index_b);
  ASSERT_TRUE(merged->FdForcedValue(MakeRow(0, 0, 0, 0)).has_value());
  EXPECT_EQ(merged->FdForcedValue(MakeRow(0, 0, 0, 0))->category(), 2);
  ASSERT_TRUE(merged->FdForcedValue(MakeRow(1, 0, 0, 0)).has_value());
  EXPECT_EQ(merged->FdForcedValue(MakeRow(1, 0, 0, 0))->category(), 1);
}

TEST(ViolationIndexTest, CountAgainstMatchesPairScan) {
  // Property test: CountAgainst must equal the brute-force count of
  // violating unordered cross pairs for both the hash-group FD index and
  // the prefix-scan binary index, on arbitrary data.
  Schema schema = TestSchema();
  Rng rng(43);
  for (int trial = 0; trial < 5; ++trial) {
    const std::vector<Row> shard_a = RandomRows(25 + trial * 5, &rng);
    const std::vector<Row> shard_b = RandomRows(35, &rng);
    for (const DenialConstraint& dc : {Fd(schema), Order(schema)}) {
      auto index_a = MakeViolationIndex(dc);
      auto index_b = MakeViolationIndex(dc);
      for (const Row& r : shard_a) index_a->AddRow(r);
      for (const Row& r : shard_b) index_b->AddRow(r);
      EXPECT_EQ(index_a->CountAgainst(*index_b),
                CrossPairs(dc, shard_a, shard_b))
          << "trial " << trial;
      // Symmetric by construction of unordered pairs.
      EXPECT_EQ(index_a->CountAgainst(*index_b),
                index_b->CountAgainst(*index_a));
    }
  }
}

TEST(ViolationIndexTest, CountAgainstUnaryIsZero) {
  Schema schema = TestSchema();
  auto dc = DenialConstraint::Parse("!(t1.u > 50)", schema).TakeValue();
  auto index_a = MakeViolationIndex(dc);
  auto index_b = MakeViolationIndex(dc);
  index_a->AddRow(MakeRow(0, 0, 60, 0));
  index_b->AddRow(MakeRow(0, 0, 70, 0));
  EXPECT_EQ(index_a->CountAgainst(*index_b), 0);
}

TEST(ViolationIndexTest, CountAgainstEmptyIndexIsZero) {
  Schema schema = TestSchema();
  for (const DenialConstraint& dc : {Fd(schema), Order(schema)}) {
    auto index_a = MakeViolationIndex(dc);
    auto empty = MakeViolationIndex(dc);
    index_a->AddRow(MakeRow(0, 0, 10, 10));
    EXPECT_EQ(index_a->CountAgainst(*empty), 0);
    EXPECT_EQ(empty->CountAgainst(*index_a), 0);
    auto merged = MakeViolationIndex(dc);
    merged->Merge(*empty);
    EXPECT_EQ(merged->size(), 0u);
  }
}

TEST(ViolationMatrixTest, FdHashPartitionMatchesPairScan) {
  // The O(n) hash-partitioned FD column must match a brute-force per-row
  // pair count exactly (both are integer counts).
  Schema schema = TestSchema();
  Rng rng(47);
  Table t(schema);
  for (int i = 0; i < 120; ++i) {
    t.AppendRowUnchecked(MakeRow(static_cast<int>(rng.UniformInt(0, 2)),
                                 static_cast<int>(rng.UniformInt(0, 2)),
                                 static_cast<double>(rng.UniformInt(0, 5)),
                                 static_cast<double>(rng.UniformInt(0, 5))));
  }
  std::vector<WeightedConstraint> constraints =
      ParseConstraints({"!(t1.x == t2.x & t1.y != t2.y)"}, {false}, schema)
          .TakeValue();
  const auto matrix = BuildViolationMatrix(t, constraints);
  const DenialConstraint& dc = constraints[0].dc;
  for (size_t i = 0; i < t.num_rows(); ++i) {
    int64_t expected = 0;
    for (size_t j = 0; j < t.num_rows(); ++j) {
      if (j != i && dc.ViolatesPair(t.row(i), t.row(j))) ++expected;
    }
    ASSERT_DOUBLE_EQ(matrix[i][0], static_cast<double>(expected))
        << "row " << i;
  }
}

TEST(ViolationMatrixTest, CountsPerTupleViolations) {
  Schema schema = TestSchema();
  std::vector<WeightedConstraint> constraints =
      ParseConstraints({"!(t1.x == t2.x & t1.y != t2.y)", "!(t1.u > 50)"},
                       {false, false}, schema)
          .TakeValue();
  Table t(schema);
  t.AppendRowUnchecked(MakeRow(0, 0, 60, 0));
  t.AppendRowUnchecked(MakeRow(0, 1, 40, 0));
  t.AppendRowUnchecked(MakeRow(1, 0, 40, 0));
  auto matrix = BuildViolationMatrix(t, constraints);
  ASSERT_EQ(matrix.size(), 3u);
  // FD: rows 0 and 1 violate each other (x=0, y differs).
  EXPECT_DOUBLE_EQ(matrix[0][0], 1.0);
  EXPECT_DOUBLE_EQ(matrix[1][0], 1.0);
  EXPECT_DOUBLE_EQ(matrix[2][0], 0.0);
  // Unary: only row 0 has u > 50.
  EXPECT_DOUBLE_EQ(matrix[0][1], 1.0);
  EXPECT_DOUBLE_EQ(matrix[1][1], 0.0);
}

TEST(ViolationsTest, PairsOfExactWithoutIntermediateOverflow) {
  EXPECT_EQ(PairsOf(0), 0);
  EXPECT_EQ(PairsOf(1), 0);
  EXPECT_EQ(PairsOf(2), 1);
  EXPECT_EQ(PairsOf(5), 10);
  // From m ~ 3.04e9 the textbook m * (m - 1) / 2 overflows its int64
  // intermediate; the halved form must stay exact through m = 2^32, where
  // the pair count itself approaches INT64_MAX.
  for (int64_t m : {int64_t{3037000500}, int64_t{4000000001},
                    int64_t{1} << 32}) {
    const auto wide =
        static_cast<__int128>(m) * (m - 1) / 2;
    EXPECT_EQ(PairsOf(m), static_cast<int64_t>(wide)) << "m=" << m;
  }
}

TEST(ViolationsTest, PairsOfDoubleExactBelowPrecisionBoundary) {
  // Below 2^53 pairs the double count is the exact integer; past it the
  // value is documented-approximate but finite and monotone.
  for (int64_t m : {int64_t{3}, int64_t{100000}, int64_t{1} << 26}) {
    EXPECT_EQ(PairsOfDouble(m), static_cast<double>(PairsOf(m))) << m;
  }
  const double big = PairsOfDouble(int64_t{1} << 40);
  EXPECT_TRUE(std::isfinite(big));
  EXPECT_GT(big, 9e15);  // past 2^53: double territory, deliberately
  EXPECT_LT(PairsOfDouble((int64_t{1} << 40) - 1), big);
}

TEST(ViolationIndexTest, FdForcedValueBreaksTiesByValueOrder) {
  // Equal RHS counts must resolve by the Value ordering (smallest wins),
  // not by unordered_map iteration order, which differs across standard
  // libraries and would make forced-value repair non-deterministic.
  Schema schema = TestSchema();
  auto index = MakeViolationIndex(Fd(schema));
  index->AddRow(MakeRow(0, 2, 0, 0));
  index->AddRow(MakeRow(0, 1, 0, 0));  // counts now tied 1-1
  auto forced = index->FdForcedValue(MakeRow(0, 0, 0, 0));
  ASSERT_TRUE(forced.has_value());
  EXPECT_EQ(forced->category(), 1);
  index->AddRow(MakeRow(0, 2, 0, 0));  // majority beats the tie-break
  EXPECT_EQ(index->FdForcedValue(MakeRow(0, 0, 0, 0))->category(), 2);
}

/// The four order-predicate orientations (two co-monotone, two
/// anti-monotone spellings), plain and equality-scoped.
std::vector<DenialConstraint> AllOrderOrientations(const Schema& schema) {
  std::vector<DenialConstraint> dcs;
  for (const char* spec : {
           "!(t1.u > t2.u & t1.v < t2.v)",  // co-monotone
           "!(t1.u < t2.u & t1.v > t2.v)",  // co-monotone, mirrored
           "!(t1.u > t2.u & t1.v > t2.v)",  // anti-monotone
           "!(t1.u < t2.u & t1.v < t2.v)",  // anti-monotone, mirrored
           "!(t1.x == t2.x & t1.u > t2.u & t1.v < t2.v)",   // grouped co
           "!(t1.x == t2.x & t1.u > t2.u & t1.v > t2.v)",   // grouped anti
       }) {
    auto dc = DenialConstraint::Parse(spec, schema);
    EXPECT_TRUE(dc.ok()) << spec;
    EXPECT_TRUE(dc.value().AsGroupedOrderPair(nullptr, nullptr, nullptr,
                                              nullptr))
        << spec;
    dcs.push_back(dc.value());
  }
  return dcs;
}

TEST(OrderViolationIndexTest, CountNewMatchesNaiveOnRandomTables) {
  // Property test: for every orientation, the sorted index must agree
  // with the prefix-scan reference at every step of an incremental build
  // (small value ranges force plenty of x/y ties, where the strict-order
  // semantics are easiest to get wrong).
  Schema schema = TestSchema();
  Rng rng(71);
  for (const DenialConstraint& dc : AllOrderOrientations(schema)) {
    auto sorted = MakeViolationIndex(dc);
    auto naive = MakeNaiveViolationIndex(dc);
    for (int i = 0; i < 200; ++i) {
      Row row = MakeRow(static_cast<int>(rng.UniformInt(0, 2)),
                        static_cast<int>(rng.UniformInt(0, 2)),
                        static_cast<double>(rng.UniformInt(0, 7)),
                        static_cast<double>(rng.UniformInt(0, 7)));
      ASSERT_EQ(sorted->CountNew(row), naive->CountNew(row))
          << dc.ToString(schema) << " at row " << i;
      sorted->AddRow(row);
      naive->AddRow(row);
    }
    EXPECT_EQ(sorted->size(), naive->size());
  }
}

TEST(OrderViolationIndexTest, MergeAndCountAgainstMatchNaive) {
  // Property test over all orientations: CountAgainst must equal the
  // brute-force cross-pair count, and a merged index must be
  // indistinguishable from sequential adds on arbitrary probes.
  Schema schema = TestSchema();
  Rng rng(73);
  for (const DenialConstraint& dc : AllOrderOrientations(schema)) {
    for (int trial = 0; trial < 3; ++trial) {
      const std::vector<Row> shard_a = RandomRows(40 + trial * 15, &rng);
      const std::vector<Row> shard_b = RandomRows(30, &rng);
      const std::vector<Row> probes = RandomRows(20, &rng);
      auto index_a = MakeViolationIndex(dc);
      auto index_b = MakeViolationIndex(dc);
      for (const Row& r : shard_a) index_a->AddRow(r);
      for (const Row& r : shard_b) index_b->AddRow(r);
      EXPECT_EQ(index_a->CountAgainst(*index_b),
                CrossPairs(dc, shard_a, shard_b))
          << dc.ToString(schema) << " trial " << trial;
      EXPECT_EQ(index_a->CountAgainst(*index_b),
                index_b->CountAgainst(*index_a));
      auto merged = MakeViolationIndex(dc);
      merged->Merge(*index_a);
      merged->Merge(*index_b);
      auto reference = MakeNaiveViolationIndex(dc);
      for (const Row& r : shard_a) reference->AddRow(r);
      for (const Row& r : shard_b) reference->AddRow(r);
      ASSERT_EQ(merged->size(), reference->size());
      for (const Row& probe : probes) {
        EXPECT_EQ(merged->CountNew(probe), reference->CountNew(probe))
            << dc.ToString(schema) << " trial " << trial;
      }
    }
  }
}

TEST(OrderViolationIndexTest, CountViolationsMatchesNaiveOnRandomTables) {
  // The O(n log n) sort + Fenwick full count must agree with the pair
  // scan for every orientation.
  Schema schema = TestSchema();
  Rng rng(79);
  for (const DenialConstraint& dc : AllOrderOrientations(schema)) {
    for (int trial = 0; trial < 3; ++trial) {
      Table t(schema);
      for (const Row& r : RandomRows(60 + trial * 30, &rng)) {
        t.AppendRowUnchecked(r);
      }
      EXPECT_EQ(CountViolations(dc, t), CountViolationsNaive(dc, t))
          << dc.ToString(schema) << " trial " << trial;
    }
  }
}

TEST(ViolationMatrixTest, OrderColumnsMatchPairScan) {
  // The two-BIT-pass sorted columns must match a brute-force per-row pair
  // count exactly (both are integer counts, so exact equality).
  Schema schema = TestSchema();
  Rng rng(83);
  Table t(schema);
  for (const Row& r : RandomRows(150, &rng)) t.AppendRowUnchecked(r);
  std::vector<WeightedConstraint> constraints =
      ParseConstraints({"!(t1.u > t2.u & t1.v < t2.v)",
                        "!(t1.x == t2.x & t1.u > t2.u & t1.v < t2.v)",
                        "!(t1.u > t2.u & t1.v > t2.v)"},
                       {false, false, false}, schema)
          .TakeValue();
  const auto matrix = BuildViolationMatrix(t, constraints);
  for (size_t l = 0; l < constraints.size(); ++l) {
    const DenialConstraint& dc = constraints[l].dc;
    for (size_t i = 0; i < t.num_rows(); ++i) {
      int64_t expected = 0;
      for (size_t j = 0; j < t.num_rows(); ++j) {
        if (j != i && dc.ViolatesPair(t.row(i), t.row(j))) ++expected;
      }
      ASSERT_DOUBLE_EQ(matrix[i][l], static_cast<double>(expected))
          << "dc " << l << " row " << i;
    }
  }
}

TEST(ViolationsTest, GeneratorCrossCheck) {
  // The Adult-like generator's hard DCs must also agree between fast and
  // naive counting (mixed FD + order shapes on realistic data).
  BenchmarkDataset ds = MakeAdultLike(150, 5);
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema()).TakeValue();
  for (const WeightedConstraint& wc : constraints) {
    EXPECT_EQ(CountViolations(wc.dc, ds.table),
              CountViolationsNaive(wc.dc, ds.table));
  }
}

}  // namespace
}  // namespace kamino
