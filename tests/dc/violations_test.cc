#include "kamino/dc/violations.h"

#include <gtest/gtest.h>

#include "kamino/data/generators.h"

namespace kamino {
namespace {

Schema TestSchema() {
  return Schema({
      Attribute::MakeCategorical("x", {"a", "b", "c"}),
      Attribute::MakeCategorical("y", {"p", "q", "r"}),
      Attribute::MakeNumeric("u", 0, 100, 101),
      Attribute::MakeNumeric("v", 0, 100, 101),
  });
}

Row MakeRow(int x, int y, double u, double v) {
  return {Value::Categorical(x), Value::Categorical(y), Value::Numeric(u),
          Value::Numeric(v)};
}

DenialConstraint Fd(const Schema& schema) {
  return DenialConstraint::Parse("!(t1.x == t2.x & t1.y != t2.y)", schema)
      .TakeValue();
}

DenialConstraint Order(const Schema& schema) {
  return DenialConstraint::Parse("!(t1.u > t2.u & t1.v < t2.v)", schema)
      .TakeValue();
}

TEST(ViolationsTest, FdCountExact) {
  Schema schema = TestSchema();
  Table t(schema);
  // Group x=0: y values {p, p, q} -> violating pairs = C(3,2) - C(2,2) = 2.
  t.AppendRowUnchecked(MakeRow(0, 0, 0, 0));
  t.AppendRowUnchecked(MakeRow(0, 0, 0, 0));
  t.AppendRowUnchecked(MakeRow(0, 1, 0, 0));
  // Group x=1: consistent.
  t.AppendRowUnchecked(MakeRow(1, 2, 0, 0));
  t.AppendRowUnchecked(MakeRow(1, 2, 0, 0));
  EXPECT_EQ(CountViolations(Fd(schema), t), 2);
  EXPECT_EQ(CountViolationsNaive(Fd(schema), t), 2);
}

TEST(ViolationsTest, FastPathMatchesNaiveOnRandomData) {
  // Property test: the FD group-counting fast path must agree with the
  // quadratic reference on arbitrary instances.
  Schema schema = TestSchema();
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    Table t(schema);
    const int n = 40 + trial * 10;
    for (int i = 0; i < n; ++i) {
      t.AppendRowUnchecked(MakeRow(
          static_cast<int>(rng.UniformInt(0, 2)),
          static_cast<int>(rng.UniformInt(0, 2)),
          static_cast<double>(rng.UniformInt(0, 5)),
          static_cast<double>(rng.UniformInt(0, 5))));
    }
    EXPECT_EQ(CountViolations(Fd(schema), t),
              CountViolationsNaive(Fd(schema), t))
        << "trial " << trial;
  }
}

TEST(ViolationsTest, OrderDcCount) {
  Schema schema = TestSchema();
  Table t(schema);
  t.AppendRowUnchecked(MakeRow(0, 0, 10, 10));
  t.AppendRowUnchecked(MakeRow(0, 0, 20, 5));  // higher u, lower v than row 0
  t.AppendRowUnchecked(MakeRow(0, 0, 30, 3));  // violates rows 0 and 1
  EXPECT_EQ(CountViolations(Order(schema), t), 3);
  EXPECT_EQ(CountViolationsNaive(Order(schema), t), 3);
}

TEST(ViolationsTest, UnaryCountsTuples) {
  Schema schema = TestSchema();
  auto dc =
      DenialConstraint::Parse("!(t1.u > 50)", schema).TakeValue();
  Table t(schema);
  t.AppendRowUnchecked(MakeRow(0, 0, 60, 0));
  t.AppendRowUnchecked(MakeRow(0, 0, 40, 0));
  t.AppendRowUnchecked(MakeRow(0, 0, 70, 0));
  EXPECT_EQ(CountViolations(dc, t), 2);
  EXPECT_DOUBLE_EQ(ViolationRatePercent(dc, t), 100.0 * 2 / 3);
}

TEST(ViolationsTest, RatePercentBinary) {
  Schema schema = TestSchema();
  Table t(schema);
  t.AppendRowUnchecked(MakeRow(0, 0, 0, 0));
  t.AppendRowUnchecked(MakeRow(0, 1, 0, 0));
  t.AppendRowUnchecked(MakeRow(1, 0, 0, 0));
  // 1 violating pair out of C(3,2)=3.
  EXPECT_NEAR(ViolationRatePercent(Fd(schema), t), 100.0 / 3, 1e-9);
}

TEST(ViolationsTest, EmptyTableIsZero) {
  Schema schema = TestSchema();
  Table t(schema);
  EXPECT_EQ(CountViolations(Fd(schema), t), 0);
  EXPECT_DOUBLE_EQ(ViolationRatePercent(Fd(schema), t), 0.0);
}

TEST(ViolationsTest, IncrementalDecompositionSumsToTotal) {
  // Eqn (3): |V(phi, D)| = sum_i |V(phi, t_i | D_:i)|.
  Schema schema = TestSchema();
  Rng rng(7);
  for (const DenialConstraint& dc : {Fd(schema), Order(schema)}) {
    Table t(schema);
    for (int i = 0; i < 60; ++i) {
      t.AppendRowUnchecked(MakeRow(
          static_cast<int>(rng.UniformInt(0, 2)),
          static_cast<int>(rng.UniformInt(0, 2)),
          static_cast<double>(rng.UniformInt(0, 8)),
          static_cast<double>(rng.UniformInt(0, 8))));
    }
    int64_t incremental = 0;
    for (size_t i = 0; i < t.num_rows(); ++i) {
      incremental += CountNewViolations(dc, t.row(i), t, i);
    }
    EXPECT_EQ(incremental, CountViolations(dc, t));
  }
}

TEST(ViolationIndexTest, FdIndexMatchesIncremental) {
  Schema schema = TestSchema();
  DenialConstraint dc = Fd(schema);
  auto index = MakeViolationIndex(dc);
  Rng rng(13);
  Table t(schema);
  for (int i = 0; i < 80; ++i) {
    Row row = MakeRow(static_cast<int>(rng.UniformInt(0, 2)),
                      static_cast<int>(rng.UniformInt(0, 2)), 0, 0);
    EXPECT_EQ(index->CountNew(row), CountNewViolations(dc, row, t, i))
        << "row " << i;
    index->AddRow(row);
    t.AppendRowUnchecked(row);
  }
  EXPECT_EQ(index->size(), 80u);
}

TEST(ViolationIndexTest, NaiveIndexMatchesIncremental) {
  Schema schema = TestSchema();
  DenialConstraint dc = Order(schema);
  auto index = MakeViolationIndex(dc);
  Rng rng(29);
  Table t(schema);
  for (int i = 0; i < 60; ++i) {
    Row row = MakeRow(0, 0, static_cast<double>(rng.UniformInt(0, 9)),
                      static_cast<double>(rng.UniformInt(0, 9)));
    EXPECT_EQ(index->CountNew(row), CountNewViolations(dc, row, t, i));
    index->AddRow(row);
    t.AppendRowUnchecked(row);
  }
}

TEST(ViolationIndexTest, UnaryIndex) {
  Schema schema = TestSchema();
  auto dc = DenialConstraint::Parse("!(t1.u > 50)", schema).TakeValue();
  auto index = MakeViolationIndex(dc);
  EXPECT_EQ(index->CountNew(MakeRow(0, 0, 60, 0)), 1);
  EXPECT_EQ(index->CountNew(MakeRow(0, 0, 40, 0)), 0);
}

TEST(ViolationIndexTest, FdForcedValueReportsGroupValue) {
  Schema schema = TestSchema();
  auto index = MakeViolationIndex(Fd(schema));
  EXPECT_FALSE(index->FdForcedValue(MakeRow(0, 0, 0, 0)).has_value());
  index->AddRow(MakeRow(0, 2, 0, 0));
  auto forced = index->FdForcedValue(MakeRow(0, 0, 0, 0));
  ASSERT_TRUE(forced.has_value());
  EXPECT_EQ(forced->category(), 2);
  // Different group still unseen.
  EXPECT_FALSE(index->FdForcedValue(MakeRow(1, 0, 0, 0)).has_value());
}

TEST(ViolationMatrixTest, CountsPerTupleViolations) {
  Schema schema = TestSchema();
  std::vector<WeightedConstraint> constraints =
      ParseConstraints({"!(t1.x == t2.x & t1.y != t2.y)", "!(t1.u > 50)"},
                       {false, false}, schema)
          .TakeValue();
  Table t(schema);
  t.AppendRowUnchecked(MakeRow(0, 0, 60, 0));
  t.AppendRowUnchecked(MakeRow(0, 1, 40, 0));
  t.AppendRowUnchecked(MakeRow(1, 0, 40, 0));
  auto matrix = BuildViolationMatrix(t, constraints);
  ASSERT_EQ(matrix.size(), 3u);
  // FD: rows 0 and 1 violate each other (x=0, y differs).
  EXPECT_DOUBLE_EQ(matrix[0][0], 1.0);
  EXPECT_DOUBLE_EQ(matrix[1][0], 1.0);
  EXPECT_DOUBLE_EQ(matrix[2][0], 0.0);
  // Unary: only row 0 has u > 50.
  EXPECT_DOUBLE_EQ(matrix[0][1], 1.0);
  EXPECT_DOUBLE_EQ(matrix[1][1], 0.0);
}

TEST(ViolationsTest, GeneratorCrossCheck) {
  // The Adult-like generator's hard DCs must also agree between fast and
  // naive counting (mixed FD + order shapes on realistic data).
  BenchmarkDataset ds = MakeAdultLike(150, 5);
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema()).TakeValue();
  for (const WeightedConstraint& wc : constraints) {
    EXPECT_EQ(CountViolations(wc.dc, ds.table),
              CountViolationsNaive(wc.dc, ds.table));
  }
}

}  // namespace
}  // namespace kamino
