#include "kamino/dc/constraint.h"

#include <gtest/gtest.h>

namespace kamino {
namespace {

Schema TestSchema() {
  return Schema({
      Attribute::MakeCategorical("edu", {"hs", "bs", "ms"}),
      Attribute::MakeNumeric("edu_num", 1, 3, 3),
      Attribute::MakeNumeric("gain", 0, 100, 101),
      Attribute::MakeNumeric("loss", 0, 100, 101),
      Attribute::MakeNumeric("age", 0, 120, 121),
  });
}

Row MakeRow(int edu, double edu_num, double gain, double loss, double age) {
  return {Value::Categorical(edu), Value::Numeric(edu_num),
          Value::Numeric(gain), Value::Numeric(loss), Value::Numeric(age)};
}

TEST(ConstraintParseTest, FdShape) {
  auto dc = DenialConstraint::Parse(
      "!(t1.edu == t2.edu & t1.edu_num != t2.edu_num)", TestSchema());
  ASSERT_TRUE(dc.ok()) << dc.status();
  EXPECT_FALSE(dc.value().is_unary());
  EXPECT_EQ(dc.value().predicates().size(), 2u);
  std::vector<size_t> lhs;
  size_t rhs = 0;
  ASSERT_TRUE(dc.value().AsFd(&lhs, &rhs));
  EXPECT_EQ(lhs, std::vector<size_t>{0});
  EXPECT_EQ(rhs, 1u);
}

TEST(ConstraintParseTest, OrderShape) {
  auto dc = DenialConstraint::Parse(
      "!(t1.gain > t2.gain & t1.loss < t2.loss)", TestSchema());
  ASSERT_TRUE(dc.ok());
  EXPECT_FALSE(dc.value().AsFd(nullptr, nullptr));
  size_t x = 0, y = 0;
  ASSERT_TRUE(dc.value().AsOrderPair(&x, &y));
  EXPECT_EQ(x, 2u);
  EXPECT_EQ(y, 3u);
}

TEST(ConstraintParseTest, GroupedOrderShape) {
  // Per-group order dependency: equality scope + two order predicates.
  auto dc = DenialConstraint::Parse(
      "!(t1.edu == t2.edu & t1.gain > t2.gain & t1.loss < t2.loss)",
      TestSchema());
  ASSERT_TRUE(dc.ok());
  EXPECT_FALSE(dc.value().AsOrderPair(nullptr, nullptr));  // 3 predicates
  std::vector<size_t> group;
  size_t x = 0, y = 0;
  bool co = false;
  ASSERT_TRUE(dc.value().AsGroupedOrderPair(&group, &x, &y, &co));
  EXPECT_EQ(group, std::vector<size_t>{0});
  EXPECT_EQ(x, 2u);
  EXPECT_EQ(y, 3u);
  EXPECT_TRUE(co);
}

TEST(ConstraintParseTest, GroupedOrderDirectionAndPlainForm) {
  // The plain pair form matches with an empty group, and the normalized
  // direction flag distinguishes co-monotone from anti-monotone DCs.
  auto co_dc = DenialConstraint::Parse(
      "!(t1.gain > t2.gain & t1.loss < t2.loss)", TestSchema());
  ASSERT_TRUE(co_dc.ok());
  std::vector<size_t> group;
  size_t x = 0, y = 0;
  bool co = false;
  ASSERT_TRUE(co_dc.value().AsGroupedOrderPair(&group, &x, &y, &co));
  EXPECT_TRUE(group.empty());
  EXPECT_TRUE(co);

  // Mirrored tuple orientation on the second predicate: t2.loss > t1.loss
  // is the same co-monotone constraint.
  auto mirrored = DenialConstraint::Parse(
      "!(t1.gain > t2.gain & t2.loss > t1.loss)", TestSchema());
  ASSERT_TRUE(mirrored.ok());
  ASSERT_TRUE(mirrored.value().AsGroupedOrderPair(&group, &x, &y, &co));
  EXPECT_TRUE(co);

  // Anti-monotone: both predicates point the same way.
  auto anti = DenialConstraint::Parse(
      "!(t1.gain > t2.gain & t1.loss > t2.loss)", TestSchema());
  ASSERT_TRUE(anti.ok());
  ASSERT_TRUE(anti.value().AsGroupedOrderPair(&group, &x, &y, &co));
  EXPECT_FALSE(co);

  // FD shape is not an order constraint.
  auto fd = DenialConstraint::Parse(
      "!(t1.edu == t2.edu & t1.edu_num != t2.edu_num)", TestSchema());
  ASSERT_TRUE(fd.ok());
  EXPECT_FALSE(fd.value().AsGroupedOrderPair(&group, &x, &y, &co));
}

TEST(ConstraintParseTest, UnaryWithConstants) {
  auto dc = DenialConstraint::Parse("!(t1.age < 10 & t1.gain > 50)",
                                    TestSchema());
  ASSERT_TRUE(dc.ok());
  EXPECT_TRUE(dc.value().is_unary());
  EXPECT_TRUE(dc.value().ViolatesUnary(MakeRow(0, 1, 60, 0, 5)));
  EXPECT_FALSE(dc.value().ViolatesUnary(MakeRow(0, 1, 60, 0, 50)));
  EXPECT_FALSE(dc.value().ViolatesUnary(MakeRow(0, 1, 10, 0, 5)));
}

TEST(ConstraintParseTest, CategoricalLabelConstant) {
  auto dc = DenialConstraint::Parse("!(t1.edu == 'bs' & t1.age < 18)",
                                    TestSchema());
  ASSERT_TRUE(dc.ok()) << dc.status();
  EXPECT_TRUE(dc.value().ViolatesUnary(MakeRow(1, 2, 0, 0, 10)));
  EXPECT_FALSE(dc.value().ViolatesUnary(MakeRow(0, 1, 0, 0, 10)));
}

TEST(ConstraintParseTest, OperatorCharactersInsideQuotedLabels) {
  // Regression: the operator search used to probe candidates in fixed
  // priority order over the whole predicate text, so `t1.occ != 'a==b'`
  // split at the `==` inside the quoted label and parsed as kEq with
  // garbage operands. The scan must find the leftmost operator *outside*
  // quotes.
  Schema schema({
      Attribute::MakeCategorical("occ", {"a==b", "x<y", "p>=q", "plain"}),
      Attribute::MakeNumeric("age", 0, 120, 121),
  });
  auto ne = DenialConstraint::Parse("!(t1.occ != 'a==b' & t1.age < 18)",
                                    schema);
  ASSERT_TRUE(ne.ok()) << ne.status();
  ASSERT_EQ(ne.value().predicates().size(), 2u);
  EXPECT_EQ(ne.value().predicates()[0].op, CompareOp::kNe);
  ASSERT_TRUE(ne.value().predicates()[0].rhs_is_constant);
  EXPECT_EQ(ne.value().predicates()[0].rhs_constant.category(), 0);
  // Violates for a minor whose occ is anything but 'a==b'.
  EXPECT_TRUE(ne.value().ViolatesUnary(
      {Value::Categorical(3), Value::Numeric(10)}));
  EXPECT_FALSE(ne.value().ViolatesUnary(
      {Value::Categorical(0), Value::Numeric(10)}));

  // One-character operators inside labels must not match either.
  auto lt = DenialConstraint::Parse("!(t1.occ == 'x<y' & t1.age < 18)",
                                    schema);
  ASSERT_TRUE(lt.ok()) << lt.status();
  EXPECT_EQ(lt.value().predicates()[0].op, CompareOp::kEq);
  EXPECT_EQ(lt.value().predicates()[0].rhs_constant.category(), 1);

  // Two-character operators inside labels, with a real >= outside.
  auto ge = DenialConstraint::Parse("!(t1.occ == 'p>=q' & t1.age >= 65)",
                                    schema);
  ASSERT_TRUE(ge.ok()) << ge.status();
  EXPECT_EQ(ge.value().predicates()[0].rhs_constant.category(), 2);
  EXPECT_EQ(ge.value().predicates()[1].op, CompareOp::kGe);

  // Such labels survive the print/re-parse round trip.
  auto reparsed =
      DenialConstraint::Parse(ne.value().ToString(schema), schema);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(reparsed.value().ToString(schema), ne.value().ToString(schema));
}

TEST(ConstraintParseTest, AmpersandInsideQuotedLabels) {
  // The predicate splitter must also be quote-aware: a label like 'R&D'
  // must not end its predicate at the '&'.
  Schema schema({
      Attribute::MakeCategorical("dept", {"R&D", "sales"}),
      Attribute::MakeNumeric("age", 0, 120, 121),
  });
  auto dc = DenialConstraint::Parse("!(t1.dept == 'R&D' & t1.age < 18)",
                                    schema);
  ASSERT_TRUE(dc.ok()) << dc.status();
  ASSERT_EQ(dc.value().predicates().size(), 2u);
  EXPECT_EQ(dc.value().predicates()[0].op, CompareOp::kEq);
  EXPECT_EQ(dc.value().predicates()[0].rhs_constant.category(), 0);
  EXPECT_TRUE(dc.value().ViolatesUnary(
      {Value::Categorical(0), Value::Numeric(10)}));
  EXPECT_FALSE(dc.value().ViolatesUnary(
      {Value::Categorical(1), Value::Numeric(10)}));
  auto reparsed = DenialConstraint::Parse(dc.value().ToString(schema), schema);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(reparsed.value().ToString(schema), dc.value().ToString(schema));
}

TEST(ConstraintParseTest, MalformedInputs) {
  const Schema schema = TestSchema();
  EXPECT_FALSE(DenialConstraint::Parse("t1.a == t2.a", schema).ok());
  EXPECT_FALSE(DenialConstraint::Parse("!()", schema).ok());
  EXPECT_FALSE(DenialConstraint::Parse("!(t1.unknown == t2.edu)", schema).ok());
  EXPECT_FALSE(DenialConstraint::Parse("!(t1.edu ~ t2.edu)", schema).ok());
  // Kind mismatch: categorical vs numeric.
  EXPECT_FALSE(DenialConstraint::Parse("!(t1.edu == t2.age)", schema).ok());
  // Categorical vs numeric constant.
  EXPECT_FALSE(DenialConstraint::Parse("!(t1.edu == 3)", schema).ok());
  // Numeric vs label constant.
  EXPECT_FALSE(DenialConstraint::Parse("!(t1.age == 'bs')", schema).ok());
  // Unknown label.
  EXPECT_FALSE(DenialConstraint::Parse("!(t1.edu == 'phd')", schema).ok());
}

TEST(ConstraintParseTest, RoundTripToString) {
  const Schema schema = TestSchema();
  const std::string spec = "!(t1.edu == t2.edu & t1.edu_num != t2.edu_num)";
  auto dc = DenialConstraint::Parse(spec, schema);
  ASSERT_TRUE(dc.ok());
  auto reparsed = DenialConstraint::Parse(dc.value().ToString(schema), schema);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(reparsed.value().ToString(schema), dc.value().ToString(schema));
}

TEST(ConstraintTest, ViolatesPairIsSymmetricInInputs) {
  auto dc = DenialConstraint::Parse(
      "!(t1.gain > t2.gain & t1.loss < t2.loss)", TestSchema()).TakeValue();
  Row a = MakeRow(0, 1, 50, 0, 30);
  Row b = MakeRow(0, 1, 10, 20, 30);
  // a has higher gain and lower loss than b: violation in one orientation.
  EXPECT_TRUE(dc.ViolatesPair(a, b));
  EXPECT_TRUE(dc.ViolatesPair(b, a));
  // Ties never violate a strict order DC.
  EXPECT_FALSE(dc.ViolatesPair(a, a));
}

TEST(ConstraintTest, AttributesSetIsSorted) {
  auto dc = DenialConstraint::Parse(
      "!(t1.loss < t2.loss & t1.gain > t2.gain)", TestSchema()).TakeValue();
  EXPECT_EQ(dc.attributes(), (std::vector<size_t>{2, 3}));
}

TEST(ConstraintTest, EffectiveWeight) {
  WeightedConstraint wc;
  wc.hard = true;
  wc.weight = 1.0;
  EXPECT_DOUBLE_EQ(wc.EffectiveWeight(), 40.0);
  wc.hard = false;
  EXPECT_DOUBLE_EQ(wc.EffectiveWeight(), 1.0);
}

TEST(ConstraintTest, ParseConstraintsBatch) {
  auto r = ParseConstraints({"!(t1.edu == t2.edu & t1.edu_num != t2.edu_num)",
                             "!(t1.age < 10 & t1.gain > 50)"},
                            {true, false}, TestSchema());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value()[0].hard);
  EXPECT_FALSE(r.value()[1].hard);
  EXPECT_FALSE(
      ParseConstraints({"!(t1.edu == t2.edu)"}, {true, false}, TestSchema())
          .ok());
}

using Shape = PredicateDecomposition::Shape;

PredicateDecomposition Decompose(const char* spec) {
  return DenialConstraint::Parse(spec, TestSchema()).TakeValue().Decompose();
}

TEST(PredicateDecompositionTest, ClassifiesCanonicalShapes) {
  // FD shape: equality scope + one inequation residual.
  PredicateDecomposition fd =
      Decompose("!(t1.edu == t2.edu & t1.edu_num != t2.edu_num)");
  EXPECT_EQ(fd.shape, Shape::kComposite);
  EXPECT_EQ(fd.scope_attrs, std::vector<size_t>{0});
  EXPECT_EQ(fd.ne_attrs, std::vector<size_t>{1});
  EXPECT_TRUE(fd.order_residuals.empty());
  EXPECT_TRUE(fd.subquadratic());

  // Grouped order shape: scope + two strict residuals.
  PredicateDecomposition order =
      Decompose("!(t1.edu == t2.edu & t1.gain > t2.gain & t1.loss < t2.loss)");
  EXPECT_EQ(order.shape, Shape::kComposite);
  EXPECT_EQ(order.scope_attrs, std::vector<size_t>{0});
  EXPECT_TRUE(order.ne_attrs.empty());
  ASSERT_EQ(order.order_residuals.size(), 2u);
  EXPECT_EQ(order.order_residuals[0].attr, 2u);
  EXPECT_EQ(order.order_residuals[0].kind, ResidualKind::kStrictOrder);
  EXPECT_EQ(order.order_residuals[0].direction, 1);
  EXPECT_EQ(order.order_residuals[1].attr, 3u);
  EXPECT_EQ(order.order_residuals[1].direction, -1);

  // Mixed: scope + order pair + inequation.
  PredicateDecomposition mixed = Decompose(
      "!(t1.edu == t2.edu & t1.gain > t2.gain & t1.loss < t2.loss & "
      "t1.age != t2.age)");
  EXPECT_EQ(mixed.shape, Shape::kComposite);
  EXPECT_EQ(mixed.ne_attrs, std::vector<size_t>{4});
  EXPECT_EQ(mixed.order_residuals.size(), 2u);

  // Unary DCs have no pair decomposition.
  EXPECT_EQ(Decompose("!(t1.age > 10 & t1.gain > 5)").shape, Shape::kUnary);
}

TEST(PredicateDecompositionTest, NormalizesTupleSwapAndLoneOrders) {
  // t2-on-the-left spellings mirror into the t1 orientation.
  PredicateDecomposition mirrored =
      Decompose("!(t2.gain < t1.gain & t2.loss > t1.loss)");
  EXPECT_EQ(mirrored.shape, Shape::kComposite);
  ASSERT_EQ(mirrored.order_residuals.size(), 2u);
  EXPECT_EQ(mirrored.order_residuals[0].direction, 1);   // gain: t1 > t2
  EXPECT_EQ(mirrored.order_residuals[1].direction, -1);  // loss: t1 < t2

  // A lone strict order residual is an inequation for unordered pairs.
  PredicateDecomposition lone_strict =
      Decompose("!(t1.edu == t2.edu & t1.gain > t2.gain)");
  EXPECT_EQ(lone_strict.shape, Shape::kComposite);
  EXPECT_EQ(lone_strict.ne_attrs, std::vector<size_t>{2});
  EXPECT_TRUE(lone_strict.order_residuals.empty());

  // A lone non-strict order residual is vacuous for unordered pairs.
  PredicateDecomposition lone_soft =
      Decompose("!(t1.edu == t2.edu & t1.gain >= t2.gain)");
  EXPECT_EQ(lone_soft.shape, Shape::kComposite);
  EXPECT_TRUE(lone_soft.ne_attrs.empty());
  EXPECT_TRUE(lone_soft.order_residuals.empty());

  // != plus a strict order on the same attribute keeps only the order
  // (here it stays lone, so it ends as an inequation again).
  PredicateDecomposition redundant =
      Decompose("!(t1.gain != t2.gain & t1.gain > t2.gain)");
  EXPECT_EQ(redundant.shape, Shape::kComposite);
  EXPECT_EQ(redundant.ne_attrs, std::vector<size_t>{2});

  // != plus a non-strict order strictifies: the pair {>=, !=} means >.
  PredicateDecomposition strictified = Decompose(
      "!(t1.gain >= t2.gain & t1.gain != t2.gain & t1.loss < t2.loss)");
  EXPECT_EQ(strictified.shape, Shape::kComposite);
  ASSERT_EQ(strictified.order_residuals.size(), 2u);
  EXPECT_EQ(strictified.order_residuals[0].kind, ResidualKind::kStrictOrder);
  EXPECT_EQ(strictified.order_residuals[1].kind, ResidualKind::kStrictOrder);
}

TEST(PredicateDecompositionTest, ReportsUnsatisfiableAndGeneralShapes) {
  EXPECT_EQ(Decompose("!(t1.gain > t2.gain & t1.gain < t2.gain)").shape,
            Shape::kNeverFires);
  EXPECT_EQ(Decompose("!(t1.edu == t2.edu & t1.edu != t2.edu)").shape,
            Shape::kNeverFires);
  EXPECT_EQ(
      Decompose("!(t1.gain == t2.gain & t1.gain >= t2.gain & "
                "t1.gain != t2.gain)")
          .shape,
      Shape::kNeverFires);
  EXPECT_TRUE(Decompose("!(t1.gain > t2.gain & t1.gain < t2.gain)")
                  .subquadratic());

  // Constants, cross-attribute comparisons, and three order-shaped
  // residuals stay outside the composite class.
  EXPECT_EQ(Decompose("!(t1.age > 10 & t1.gain > t2.gain)").shape,
            Shape::kGeneral);
  EXPECT_EQ(Decompose("!(t1.gain > t2.loss & t1.age != t2.age)").shape,
            Shape::kGeneral);
  EXPECT_EQ(
      Decompose("!(t1.gain > t2.gain & t1.loss > t2.loss & t1.age > t2.age)")
          .shape,
      Shape::kGeneral);
  EXPECT_FALSE(
      Decompose("!(t1.age > 10 & t1.gain > t2.gain)").subquadratic());
}

TEST(ConstraintTest, AsFdRejectsNonFdShapes) {
  const Schema schema = TestSchema();
  // Two inequations: not an FD.
  auto dc1 = DenialConstraint::Parse(
      "!(t1.edu != t2.edu & t1.edu_num != t2.edu_num)", schema).TakeValue();
  EXPECT_FALSE(dc1.AsFd(nullptr, nullptr));
  // Constant predicate: not an FD.
  auto dc2 =
      DenialConstraint::Parse("!(t1.age > 10 & t1.gain > 5)", schema).TakeValue();
  EXPECT_FALSE(dc2.AsFd(nullptr, nullptr));
}

}  // namespace
}  // namespace kamino
