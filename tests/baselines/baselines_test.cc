#include <gtest/gtest.h>

#include <memory>

#include "kamino/baselines/dpvae.h"
#include "kamino/baselines/nist_pgm.h"
#include "kamino/baselines/pategan.h"
#include "kamino/baselines/privbayes.h"
#include "kamino/data/generators.h"
#include "kamino/eval/marginals.h"

namespace kamino {
namespace {

std::vector<std::unique_ptr<Synthesizer>> MakeBaselines(double epsilon) {
  std::vector<std::unique_ptr<Synthesizer>> out;
  PrivBayes::Options pb;
  pb.epsilon = epsilon;
  out.push_back(std::make_unique<PrivBayes>(pb));
  NistPgm::Options np;
  np.epsilon = epsilon;
  out.push_back(std::make_unique<NistPgm>(np));
  DpVae::Options dv;
  dv.epsilon = epsilon;
  dv.iterations = 30;
  out.push_back(std::make_unique<DpVae>(dv));
  PateGan::Options pg;
  pg.epsilon = epsilon;
  pg.train_steps = 30;
  out.push_back(std::make_unique<PateGan>(pg));
  return out;
}

TEST(DiscreteViewTest, EncodeDecodeRoundTrip) {
  BenchmarkDataset ds = MakeAdultLike(50, 1);
  DiscreteView view = DiscreteView::Make(ds.table.schema(), 16);
  Rng rng(1);
  for (size_t a = 0; a < view.num_attrs(); ++a) {
    for (size_t b = 0; b < view.cardinality(a); ++b) {
      Value v = view.Decode(a, static_cast<int>(b), &rng);
      EXPECT_EQ(view.Encode(a, v), static_cast<int>(b));
      EXPECT_TRUE(ds.table.schema().attribute(a).Contains(v));
    }
  }
}

TEST(DiscreteViewTest, NoisyJointDistributionNormalizes) {
  BenchmarkDataset ds = MakeTpchLike(100, 2);
  DiscreteView view = DiscreteView::Make(ds.table.schema(), 8);
  Rng rng(2);
  auto dist = NoisyJointDistribution(ds.table, view, {1, 2}, 1.0, &rng);
  double total = 0.0;
  for (double p : dist) {
    EXPECT_GE(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

class BaselineTest : public ::testing::TestWithParam<int> {};

TEST_P(BaselineTest, ProducesValidRows) {
  BenchmarkDataset ds = MakeBr2000Like(200, 5);
  auto baselines = MakeBaselines(1.0);
  Synthesizer& synth = *baselines[GetParam()];
  Rng rng(3);
  auto out = synth.Synthesize(ds.table, 120, &rng);
  ASSERT_TRUE(out.ok()) << synth.name() << ": " << out.status();
  EXPECT_EQ(out.value().num_rows(), 120u);
  for (size_t r = 0; r < out.value().num_rows(); ++r) {
    for (size_t c = 0; c < out.value().num_columns(); ++c) {
      EXPECT_TRUE(
          ds.table.schema().attribute(c).Contains(out.value().at(r, c)))
          << synth.name() << " row " << r << " col " << c;
    }
  }
}

TEST_P(BaselineTest, RejectsEmptyInput) {
  Schema schema({Attribute::MakeCategorical("a", {"x", "y"})});
  Table empty(schema);
  auto baselines = MakeBaselines(1.0);
  Rng rng(4);
  EXPECT_FALSE(baselines[GetParam()]->Synthesize(empty, 10, &rng).ok());
}

std::string BaselineName(const ::testing::TestParamInfo<int>& info) {
  static const char* const kNames[] = {"privbayes", "nist", "dpvae",
                                       "pategan"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllBaselines, BaselineTest, ::testing::Range(0, 4),
                         BaselineName);

TEST(BaselineQualityTest, PrivBayesMarginalsBeatUniformAtLargeEpsilon) {
  // At a generous budget the learned marginals should be much closer to
  // the truth than a uniform synthesizer's.
  BenchmarkDataset ds = MakeBr2000Like(600, 6);
  PrivBayes::Options options;
  options.epsilon = 8.0;
  PrivBayes pb(options);
  Rng rng(5);
  Table synth = pb.Synthesize(ds.table, 600, &rng).TakeValue();
  const double mean_distance =
      MeanOf(OneWayMarginalDistances(synth, ds.table, 10));
  EXPECT_LT(mean_distance, 0.25);
}

TEST(BaselineQualityTest, NistPgmMarginalsReasonable) {
  BenchmarkDataset ds = MakeBr2000Like(600, 7);
  NistPgm::Options options;
  options.epsilon = 8.0;
  NistPgm pgm(options);
  Rng rng(6);
  Table synth = pgm.Synthesize(ds.table, 600, &rng).TakeValue();
  EXPECT_LT(MeanOf(OneWayMarginalDistances(synth, ds.table, 10)), 0.25);
}

}  // namespace
}  // namespace kamino
