// Tests for the engine's LRU model registry: register/lookup semantics,
// least-recently-used eviction at capacity, the by-id Synthesize/Submit
// entry points and the file-backed LoadModel path, plus the eviction and
// hit/miss metrics.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kamino/common/rng.h"
#include "kamino/core/kamino.h"
#include "kamino/core/sequencing.h"
#include "kamino/data/generators.h"
#include "kamino/obs/metrics.h"
#include "kamino/runtime/thread_pool.h"
#include "kamino/service/engine.h"

namespace kamino {
namespace {

class ScopedNumThreads {
 public:
  explicit ScopedNumThreads(size_t n) { runtime::SetGlobalNumThreads(n); }
  ~ScopedNumThreads() { runtime::SetGlobalNumThreads(0); }
};

/// A small fitted model; `tag` seeds the fit so distinct tags produce
/// distinguishable models.
FittedModel MakeModel(uint64_t tag) {
  Schema schema({Attribute::MakeCategorical("c", {"x", "y", "z"}),
                 Attribute::MakeNumeric("n", 0, 10, 11)});
  Table table(schema);
  for (int i = 0; i < 20; ++i) {
    table.AppendRowUnchecked(
        {Value::Categorical(i % 3), Value::Numeric(i % 11)});
  }
  KaminoOptions options;
  options.non_private = true;
  options.embed_dim = 4;
  options.iterations = 2;
  options.seed = tag;
  auto sequence = SequenceSchema(schema, {});
  Rng rng(tag);
  FitArtifacts fitted;
  fitted.model =
      ProbabilisticDataModel::Train(table, sequence, options, &rng).TakeValue();
  fitted.sequence = fitted.model.sequence();
  fitted.resolved_options = options;
  fitted.input_rows = table.num_rows();
  fitted.sampling_engine = std::mt19937_64(tag);
  return FittedModel::FromArtifacts(std::move(fitted));
}

TEST(ModelRegistryTest, RegisterAndGet) {
  KaminoEngine engine;
  FittedModel model = MakeModel(1);
  ASSERT_TRUE(engine.RegisterModel("adult-v1", model).ok());
  EXPECT_EQ(engine.registry_size(), 1u);
  auto got = engine.GetModel("adult-v1");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().input_rows(), model.input_rows());
  // Re-registering the same id overwrites in place, no growth.
  ASSERT_TRUE(engine.RegisterModel("adult-v1", MakeModel(2)).ok());
  EXPECT_EQ(engine.registry_size(), 1u);
}

TEST(ModelRegistryTest, RejectsBadRegistrations) {
  KaminoEngine engine;
  EXPECT_EQ(engine.RegisterModel("", MakeModel(1)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.RegisterModel("id", FittedModel()).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.registry_size(), 0u);
}

TEST(ModelRegistryTest, MissReturnsNotFound) {
  KaminoEngine engine;
  auto got = engine.GetModel("never-registered");
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kNotFound);
}

TEST(ModelRegistryTest, LruEvictsLeastRecentlyUsed) {
  KaminoEngine::Options options;
  options.model_registry_capacity = 2;
  KaminoEngine engine(options);
  ASSERT_TRUE(engine.RegisterModel("a", MakeModel(1)).ok());
  ASSERT_TRUE(engine.RegisterModel("b", MakeModel(2)).ok());
  // Touch "a" so "b" becomes the least recently used entry.
  ASSERT_TRUE(engine.GetModel("a").ok());
  ASSERT_TRUE(engine.RegisterModel("c", MakeModel(3)).ok());
  EXPECT_EQ(engine.registry_size(), 2u);
  EXPECT_TRUE(engine.GetModel("a").ok());
  EXPECT_TRUE(engine.GetModel("c").ok());
  auto evicted = engine.GetModel("b");
  ASSERT_FALSE(evicted.ok());
  EXPECT_EQ(evicted.status().code(), StatusCode::kNotFound);
}

TEST(ModelRegistryTest, CapacityKnobValidated) {
  KaminoOptions options;
  options.model_registry_capacity = 0;
  const Status s = options.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("model_registry_capacity"), std::string::npos);
  // The engine clamps instead (a constructor cannot return a Status).
  KaminoEngine::Options engine_options;
  engine_options.model_registry_capacity = 0;
  KaminoEngine engine(engine_options);
  ASSERT_TRUE(engine.RegisterModel("only", MakeModel(1)).ok());
  EXPECT_EQ(engine.registry_size(), 1u);
}

TEST(ModelRegistryTest, LoadModelByIdFromFile) {
  ScopedNumThreads threads(1);
  const std::string path =
      ::testing::TempDir() + "/kamino_registry_model.kam";
  ASSERT_TRUE(MakeModel(5).Save(path).ok());
  KaminoEngine engine;
  auto loaded = engine.LoadModel("from-disk", path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(engine.registry_size(), 1u);
  SynthesisRequest request;
  request.num_rows = 12;
  request.seed = 7;
  auto result = engine.Synthesize("from-disk", request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().synthetic.num_rows(), 12u);
  // A bad path surfaces the Load error and registers nothing.
  auto missing = engine.LoadModel("ghost", path + ".missing");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(engine.registry_size(), 1u);
}

TEST(ModelRegistryTest, SynthesizeByUnknownIdIsNotFound) {
  KaminoEngine engine;
  auto result = engine.Synthesize("nope", SynthesisRequest());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ModelRegistryTest, SubmitByModelId) {
  ScopedNumThreads threads(1);
  KaminoEngine engine;
  ASSERT_TRUE(engine.RegisterModel("async", MakeModel(4)).ok());
  SynthesisRequest request;
  request.num_rows = 10;
  request.seed = 3;
  auto submitted = engine.Submit("async", request);
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  auto result = submitted.value()->Wait();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().synthetic.num_rows(), 10u);
  auto unknown = engine.Submit("nope", request);
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
}

TEST(ModelRegistryTest, ByIdSynthesisMatchesHandleSynthesis) {
  ScopedNumThreads threads(1);
  KaminoEngine engine;
  FittedModel model = MakeModel(8);
  ASSERT_TRUE(engine.RegisterModel("m", model).ok());
  SynthesisRequest request;
  request.num_rows = 16;
  request.seed = 9;
  auto by_id = engine.Synthesize("m", request);
  auto by_handle = engine.Synthesize(model, request);
  ASSERT_TRUE(by_id.ok());
  ASSERT_TRUE(by_handle.ok());
  const Table& a = by_id.value().synthetic;
  const Table& b = by_handle.value().synthetic;
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.num_columns(); ++c) {
      ASSERT_TRUE(a.at(r, c) == b.at(r, c));
    }
  }
}

TEST(ModelRegistryTest, EvictionMetrics) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.SetEnabled(true);
  const int64_t evictions_before =
      reg.counter("kamino.registry.evictions")->Value();
  const int64_t hits_before = reg.counter("kamino.registry.hits")->Value();
  const int64_t misses_before = reg.counter("kamino.registry.misses")->Value();
  KaminoEngine::Options options;
  options.model_registry_capacity = 1;
  KaminoEngine engine(options);
  ASSERT_TRUE(engine.RegisterModel("a", MakeModel(1)).ok());
  ASSERT_TRUE(engine.RegisterModel("b", MakeModel(2)).ok());  // evicts "a"
  ASSERT_TRUE(engine.GetModel("b").ok());                     // hit
  ASSERT_FALSE(engine.GetModel("a").ok());                    // miss
  EXPECT_EQ(reg.counter("kamino.registry.evictions")->Value(),
            evictions_before + 1);
  EXPECT_EQ(reg.counter("kamino.registry.hits")->Value(), hits_before + 1);
  EXPECT_EQ(reg.counter("kamino.registry.misses")->Value(), misses_before + 1);
}

}  // namespace
}  // namespace kamino
