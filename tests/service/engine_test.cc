// Tests for the session-based synthesis API (kamino/service/engine.h):
// the fit-once/synthesize-many contract (one fit reproduces any number of
// full runs bit for bit), config validation at the entry points, the
// streaming delivery-order guarantee, cooperative job cancellation at
// shard boundaries, and the overlapping-jobs concurrency contract that
// core/kamino.h promises (two concurrent jobs at different thread budgets
// both reproduce their single-run outputs).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "kamino/common/logging.h"
#include "kamino/core/kamino.h"
#include "kamino/data/generators.h"
#include "kamino/runtime/thread_pool.h"
#include "kamino/service/engine.h"

namespace kamino {
namespace {

/// Restores the global thread budget when a test scope ends.
class ScopedNumThreads {
 public:
  explicit ScopedNumThreads(size_t n) { runtime::SetGlobalNumThreads(n); }
  ~ScopedNumThreads() { runtime::SetGlobalNumThreads(0); }
};

void ExpectSameTable(const Table& a, const Table& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_columns(), b.num_columns());
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.num_columns(); ++c) {
      ASSERT_TRUE(a.at(r, c) == b.at(r, c))
          << "cell (" << r << ", " << c << ") diverged: "
          << a.CellToString(r, c) << " vs " << b.CellToString(r, c);
    }
  }
}

KaminoConfig TestConfig(uint64_t seed) {
  KaminoConfig config;
  config.options.non_private = true;
  config.options.iterations = 8;
  config.options.mcmc_resamples = 40;
  config.options.seed = seed;
  return config;
}

/// Records every delivered chunk, with the value of an external flag at
/// delivery time (the tests set the flag only after Wait() returns, so a
/// true reading would mean a chunk arrived after job completion).
class RecordingSink : public RowSink {
 public:
  explicit RecordingSink(const std::atomic<bool>* completed = nullptr)
      : completed_(completed) {}

  Status OnChunk(const TableChunk& chunk) override {
    std::lock_guard<std::mutex> lock(mu_);
    chunks_.push_back(chunk);
    if (completed_ != nullptr) {
      seen_completed_.push_back(completed_->load());
    }
    return Status::OK();
  }

  std::vector<TableChunk> chunks() const {
    std::lock_guard<std::mutex> lock(mu_);
    return chunks_;
  }
  std::vector<bool> seen_completed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return seen_completed_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<TableChunk> chunks_;
  std::vector<bool> seen_completed_;
  const std::atomic<bool>* completed_;
};

TEST(EngineSessionTest, FitOnceSynthesizeTwiceReproducesTwoFullRuns) {
  ScopedNumThreads threads(1);
  BenchmarkDataset ds = MakeAdultLike(100, 13);
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema()).TakeValue();
  const KaminoConfig config = TestConfig(77);

  // Two independent full runs at the same seed.
  auto full1 = RunKamino(ds.table, constraints, config);
  auto full2 = RunKamino(ds.table, constraints, config);
  ASSERT_TRUE(full1.ok()) << full1.status();
  ASSERT_TRUE(full2.ok()) << full2.status();

  // One fit, two default synthesis requests: each must reproduce a full
  // run bit for bit — sampling is pure post-processing on an immutable
  // artifact, so the second request sees the same model as the first.
  KaminoEngine engine;
  auto model = engine.Fit(ds.table, constraints, config);
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_EQ(model.value().epsilon_spent(), full1.value().epsilon_spent);
  EXPECT_EQ(model.value().input_rows(), ds.table.num_rows());

  auto synth1 = engine.Synthesize(model.value(), {});
  auto synth2 = engine.Synthesize(model.value(), {});
  ASSERT_TRUE(synth1.ok()) << synth1.status();
  ASSERT_TRUE(synth2.ok()) << synth2.status();
  ExpectSameTable(full1.value().synthetic, synth1.value().synthetic);
  ExpectSameTable(full2.value().synthetic, synth2.value().synthetic);
}

TEST(EngineSessionTest, RequestSeedGivesIndependentDeterministicStreams) {
  ScopedNumThreads threads(1);
  BenchmarkDataset ds = MakeAdultLike(80, 13);
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema()).TakeValue();
  KaminoEngine engine;
  auto model = engine.Fit(ds.table, constraints, TestConfig(31));
  ASSERT_TRUE(model.ok()) << model.status();

  SynthesisRequest seeded;
  seeded.seed = 5;
  auto a = engine.Synthesize(model.value(), seeded);
  auto b = engine.Synthesize(model.value(), seeded);
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectSameTable(a.value().synthetic, b.value().synthetic);

  SynthesisRequest other;
  other.seed = 9;
  auto c = engine.Synthesize(model.value(), other);
  ASSERT_TRUE(c.ok());
  bool identical = true;
  for (size_t r = 0; r < a.value().synthetic.num_rows() && identical; ++r) {
    for (size_t col = 0; col < a.value().synthetic.num_columns(); ++col) {
      if (!(a.value().synthetic.at(r, col) ==
            c.value().synthetic.at(r, col))) {
        identical = false;
        break;
      }
    }
  }
  EXPECT_FALSE(identical) << "different request seeds produced equal tables";

  // A shard override is part of the output contract and composes with the
  // request seed deterministically.
  SynthesisRequest sharded = seeded;
  sharded.num_shards = 2;
  auto d = engine.Synthesize(model.value(), sharded);
  auto e = engine.Synthesize(model.value(), sharded);
  ASSERT_TRUE(d.ok() && e.ok());
  EXPECT_EQ(d.value().telemetry.num_shards, 2u);
  ExpectSameTable(d.value().synthetic, e.value().synthetic);
}

TEST(EngineSessionTest, FittedModelOutlivesTheInputTable) {
  ScopedNumThreads threads(1);
  KaminoEngine engine;
  FittedModel model;
  {
    // The private instance lives only in this scope: Fit must copy what
    // it needs (the model owns its schema), because a session hands the
    // artifact around long after the data is gone.
    auto ds = std::make_unique<BenchmarkDataset>(MakeAdultLike(80, 13));
    auto constraints =
        ParseConstraints(ds->dc_specs, ds->hardness, ds->table.schema())
            .TakeValue();
    auto fitted = engine.Fit(ds->table, constraints, TestConfig(31));
    ASSERT_TRUE(fitted.ok()) << fitted.status();
    model = fitted.value();
  }
  SynthesisRequest request;
  request.num_rows = 25;
  auto result = engine.Synthesize(model, request);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().synthetic.num_rows(), 25u);
}

TEST(EngineSessionTest, SynchronousStreamingDeliversOrderedChunks) {
  ScopedNumThreads threads(1);
  BenchmarkDataset ds = MakeAdultLike(100, 13);
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema()).TakeValue();
  KaminoEngine engine;
  auto model = engine.Fit(ds.table, constraints, TestConfig(77));
  ASSERT_TRUE(model.ok()) << model.status();

  RecordingSink sink;
  SynthesisRequest request;
  request.num_shards = 4;
  request.sink = &sink;
  auto result = engine.Synthesize(model.value(), request);
  ASSERT_TRUE(result.ok()) << result.status();

  // The delivery-order contract: one chunk per shard, ascending offsets,
  // tiling [0, n), `last` exactly on the final chunk, and every chunk's
  // rows equal to the final table's slice (rows are delivered only after
  // reconciliation finished with them).
  const Table& out = result.value().synthetic;
  const std::vector<TableChunk> chunks = sink.chunks();
  ASSERT_EQ(chunks.size(), 4u);
  size_t expected_offset = 0;
  for (size_t s = 0; s < chunks.size(); ++s) {
    EXPECT_EQ(chunks[s].shard, s);
    EXPECT_EQ(chunks[s].row_offset, expected_offset);
    EXPECT_EQ(chunks[s].last, s + 1 == chunks.size());
    for (size_t r = 0; r < chunks[s].rows.num_rows(); ++r) {
      for (size_t c = 0; c < out.num_columns(); ++c) {
        ASSERT_TRUE(chunks[s].rows.at(r, c) ==
                    out.at(expected_offset + r, c))
            << "streamed chunk diverged from the final table";
      }
    }
    expected_offset += chunks[s].rows.num_rows();
  }
  EXPECT_EQ(expected_offset, out.num_rows());
}

TEST(ConfigValidateTest, RejectsNonsensicalKnobs) {
  BenchmarkDataset ds = MakeAdultLike(40, 13);
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema()).TakeValue();

  auto expect_invalid = [&](KaminoConfig config, const char* what) {
    auto result = RunKamino(ds.table, constraints, config);
    ASSERT_FALSE(result.ok()) << "accepted " << what;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument) << what;
    runtime::SetGlobalNumThreads(0);
  };

  KaminoConfig config = TestConfig(3);
  config.options.quantize_bins = 0;
  expect_invalid(config, "quantize_bins = 0");

  config = TestConfig(3);
  config.options.accept_reject = true;
  config.options.ar_max_tries = 0;
  expect_invalid(config, "accept_reject with ar_max_tries = 0");

  config = TestConfig(3);
  config.options.non_private = false;
  config.epsilon = 0.0;
  expect_invalid(config, "epsilon = 0 on a private run");

  config = TestConfig(3);
  config.options.non_private = false;
  config.delta = 0.0;
  expect_invalid(config, "delta = 0 on a private run");

  config = TestConfig(3);
  config.options.non_private = false;
  config.options.sigma_d = 0.0;
  expect_invalid(config, "sigma_d = 0 on a private run");

  config = TestConfig(3);
  config.options.embed_dim = 0;
  expect_invalid(config, "embed_dim = 0");

  // epsilon is explicitly ignored (and so not validated) when the run is
  // non-private: the epsilon = infinity ablations set it to anything.
  config = TestConfig(3);
  config.epsilon = -1.0;
  KaminoEngine engine;
  auto ok = engine.Fit(ds.table, constraints, config);
  EXPECT_TRUE(ok.ok()) << ok.status();
  runtime::SetGlobalNumThreads(0);
}

TEST(EngineJobTest, AsyncJobMatchesSynchronousRun) {
  ScopedNumThreads threads(1);
  BenchmarkDataset ds = MakeAdultLike(100, 13);
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema()).TakeValue();
  KaminoEngine engine;
  auto model = engine.Fit(ds.table, constraints, TestConfig(77));
  ASSERT_TRUE(model.ok()) << model.status();

  SynthesisRequest request;
  request.num_shards = 2;
  auto golden = engine.Synthesize(model.value(), request);
  ASSERT_TRUE(golden.ok()) << golden.status();

  auto job = engine.Submit(model.value(), request);
  auto result = job->Wait();
  ASSERT_TRUE(result.ok()) << result.status();
  ExpectSameTable(golden.value().synthetic, result.value().synthetic);

  EXPECT_TRUE(job->finished());
  const SynthesisJob::Progress progress = job->progress();
  EXPECT_EQ(progress.phase, SynthesisJob::Phase::kDone);
  EXPECT_EQ(progress.rows_total, ds.table.num_rows());
  EXPECT_EQ(progress.rows_sampled, ds.table.num_rows());
  EXPECT_EQ(progress.rows_committed, ds.table.num_rows());

  // Wait() is idempotent: a second call returns the same result.
  auto again = job->Wait();
  ASSERT_TRUE(again.ok());
  ExpectSameTable(result.value().synthetic, again.value().synthetic);
}

TEST(EngineJobTest, StreamingSinkDeliversBeforeJobCompletion) {
  ScopedNumThreads threads(1);
  BenchmarkDataset ds = MakeAdultLike(100, 13);
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema()).TakeValue();
  KaminoEngine engine;
  auto model = engine.Fit(ds.table, constraints, TestConfig(77));
  ASSERT_TRUE(model.ok()) << model.status();

  std::atomic<bool> wait_returned{false};
  RecordingSink sink(&wait_returned);
  SynthesisRequest request;
  request.num_shards = 4;
  request.sink = &sink;
  request.collect_table = false;  // rows observable through the sink only
  auto job = engine.Submit(model.value(), request);
  auto result = job->Wait();
  wait_returned.store(true);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().synthetic.num_rows(), 0u);

  // Every chunk was delivered strictly before Wait() returned — i.e.
  // before job completion — and at least one chunk arrived on this
  // multi-shard run (the acceptance criterion).
  const std::vector<bool> seen = sink.seen_completed();
  ASSERT_GE(seen.size(), 1u);
  for (bool completed_at_delivery : seen) {
    EXPECT_FALSE(completed_at_delivery)
        << "a chunk was delivered after job completion";
  }
  EXPECT_EQ(sink.chunks().size(), 4u);
  EXPECT_EQ(job->progress().chunks_delivered, 4u);
  EXPECT_EQ(job->progress().rows_committed, ds.table.num_rows());
}

/// Blocks inside OnChunk until released, so tests can hold a job runner
/// mid-delivery deterministically.
class BlockingSink : public RowSink {
 public:
  Status OnChunk(const TableChunk& chunk) override {
    std::unique_lock<std::mutex> lock(mu_);
    ++delivered_;
    cv_.notify_all();
    cv_.wait(lock, [this] { return released_; });
    (void)chunk;
    return Status::OK();
  }

  void WaitForFirstChunk() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return delivered_ > 0; });
  }

  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t delivered_ = 0;
  bool released_ = false;
};

TEST(EngineJobTest, CancelledQueuedJobIsSkippedWithoutRunning) {
  ScopedNumThreads threads(1);
  BenchmarkDataset ds = MakeAdultLike(80, 13);
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema()).TakeValue();
  KaminoEngine::Options opts;
  opts.max_concurrent_jobs = 1;  // one runner: job B queues behind job A
  KaminoEngine engine(opts);
  auto model = engine.Fit(ds.table, constraints, TestConfig(31));
  ASSERT_TRUE(model.ok()) << model.status();

  BlockingSink blocker;
  SynthesisRequest blocked;
  blocked.num_shards = 2;
  blocked.sink = &blocker;
  auto job_a = engine.Submit(model.value(), blocked);
  blocker.WaitForFirstChunk();  // the single runner is now held by A

  auto job_b = engine.Submit(model.value(), {});
  job_b->Cancel();  // still queued: must be skipped, never run
  blocker.Release();

  auto result_b = job_b->Wait();
  ASSERT_FALSE(result_b.ok());
  EXPECT_EQ(result_b.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(job_b->progress().phase, SynthesisJob::Phase::kCancelled);
  EXPECT_EQ(job_b->progress().rows_sampled, 0u) << "a skipped job ran";

  auto result_a = job_a->Wait();
  EXPECT_TRUE(result_a.ok()) << result_a.status();
}

/// Cancels a job handle from inside its own first chunk delivery, to pin
/// the cancellation point to a shard boundary.
class CancellingSink : public RowSink {
 public:
  Status OnChunk(const TableChunk&) override {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return job_ != nullptr; });
    ++delivered_;
    job_->Cancel();
    return Status::OK();
  }

  void SetJob(std::shared_ptr<SynthesisJob> job) {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = std::move(job);
    cv_.notify_all();
  }

  size_t delivered() const {
    std::lock_guard<std::mutex> lock(mu_);
    return delivered_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::shared_ptr<SynthesisJob> job_;
  size_t delivered_ = 0;
};

TEST(EngineJobTest, CancelStopsARunningJobAtAShardBoundary) {
  ScopedNumThreads threads(1);
  BenchmarkDataset ds = MakeAdultLike(80, 13);
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema()).TakeValue();
  KaminoEngine engine;
  auto model = engine.Fit(ds.table, constraints, TestConfig(31));
  ASSERT_TRUE(model.ok()) << model.status();

  CancellingSink sink;
  SynthesisRequest request;
  request.num_shards = 4;
  request.sink = &sink;
  auto job = engine.Submit(model.value(), request);
  sink.SetJob(job);

  // The sink cancels during the first delivery; the next shard-boundary
  // poll (before chunk 2) must stop the job — no deadlock, no partial
  // delivery beyond the boundary, a clean kCancelled result.
  auto result = job->Wait();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(sink.delivered(), 1u);
  EXPECT_EQ(job->progress().phase, SynthesisJob::Phase::kCancelled);
  EXPECT_EQ(job->progress().chunks_delivered, 1u);
}

TEST(EngineJobTest, ImmediateCancelNeverDeadlocks) {
  ScopedNumThreads threads(1);
  BenchmarkDataset ds = MakeAdultLike(80, 13);
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema()).TakeValue();
  KaminoEngine engine;
  auto model = engine.Fit(ds.table, constraints, TestConfig(31));
  ASSERT_TRUE(model.ok()) << model.status();

  SynthesisRequest request;
  request.num_shards = 4;
  auto job = engine.Submit(model.value(), request);
  job->Cancel();
  // Depending on timing the job is skipped, cancelled at a boundary, or
  // (rarely) already complete — but Wait() must always return.
  auto result = job->Wait();
  if (!result.ok()) {
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  }
  EXPECT_TRUE(job->finished());
}

/// Rendezvous sink: every participating job waits at its first chunk
/// until all parties arrived (with a timeout escape so a test failure
/// surfaces as an assertion, not a hang).
class BarrierSink : public RowSink {
 public:
  struct Barrier {
    std::mutex mu;
    std::condition_variable cv;
    size_t arrived = 0;
    size_t parties = 0;
  };

  BarrierSink(Barrier* barrier) : barrier_(barrier) {}

  Status OnChunk(const TableChunk& chunk) override {
    if (chunk.shard == 0) {
      std::unique_lock<std::mutex> lock(barrier_->mu);
      ++barrier_->arrived;
      barrier_->cv.notify_all();
      barrier_->cv.wait_for(lock, std::chrono::seconds(30), [this] {
        return barrier_->arrived >= barrier_->parties;
      });
    }
    return Status::OK();
  }

 private:
  Barrier* barrier_;
};

TEST(EngineJobTest, OverlappingJobsAtDifferentThreadBudgetsMatchGoldens) {
  // The concurrency contract core/kamino.h promises: concurrent runs are
  // safe even when they resize the global thread budget under each other,
  // because the budget only steers scheduling, never the output. Two
  // overlapping jobs at different budgets must both reproduce the tables
  // their requests produce in isolation.
  BenchmarkDataset ds = MakeAdultLike(100, 13);
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema()).TakeValue();
  KaminoEngine::Options opts;
  opts.max_concurrent_jobs = 2;
  KaminoEngine engine(opts);
  auto model = engine.Fit(ds.table, constraints, TestConfig(77));
  ASSERT_TRUE(model.ok()) << model.status();

  SynthesisRequest req_a;
  req_a.num_shards = 4;
  req_a.num_threads = 1;
  SynthesisRequest req_b;
  req_b.seed = 123;
  req_b.num_shards = 2;
  req_b.num_threads = 4;

  // Single-run goldens, computed in isolation first.
  SynthesisRequest golden_a = req_a;
  SynthesisRequest golden_b = req_b;
  golden_a.sink = nullptr;
  golden_b.sink = nullptr;
  auto want_a = engine.Synthesize(model.value(), golden_a);
  auto want_b = engine.Synthesize(model.value(), golden_b);
  ASSERT_TRUE(want_a.ok() && want_b.ok());

  // Overlap for real: both jobs rendezvous at their first chunk before
  // either may finish delivery.
  BarrierSink::Barrier barrier;
  barrier.parties = 2;
  BarrierSink sink_a(&barrier);
  BarrierSink sink_b(&barrier);
  req_a.sink = &sink_a;
  req_b.sink = &sink_b;
  auto job_a = engine.Submit(model.value(), req_a);
  auto job_b = engine.Submit(model.value(), req_b);
  auto got_a = job_a->Wait();
  auto got_b = job_b->Wait();
  runtime::SetGlobalNumThreads(0);
  ASSERT_TRUE(got_a.ok()) << got_a.status();
  ASSERT_TRUE(got_b.ok()) << got_b.status();
  {
    std::lock_guard<std::mutex> lock(barrier.mu);
    EXPECT_EQ(barrier.arrived, 2u) << "jobs did not actually overlap";
  }

  ExpectSameTable(want_a.value().synthetic, got_a.value().synthetic);
  ExpectSameTable(want_b.value().synthetic, got_b.value().synthetic);
}

TEST(EngineJobTest, EngineDestructorCancelsOutstandingJobs) {
  ScopedNumThreads threads(1);
  BenchmarkDataset ds = MakeAdultLike(80, 13);
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema()).TakeValue();

  std::shared_ptr<SynthesisJob> queued;
  BlockingSink blocker;
  std::atomic<bool> destroying{false};
  // The running job is blocked inside its sink; release it only once the
  // engine destructor is underway (after its cancel sweep), so the runner
  // wakes straight into a cancellation point instead of finishing the
  // delivery and starting the queued job.
  std::thread releaser([&] {
    while (!destroying.load()) std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    blocker.Release();
  });
  {
    KaminoEngine::Options opts;
    opts.max_concurrent_jobs = 1;
    KaminoEngine engine(opts);
    auto model = engine.Fit(ds.table, constraints, TestConfig(31));
    ASSERT_TRUE(model.ok()) << model.status();

    SynthesisRequest blocked;
    blocked.num_shards = 2;
    blocked.sink = &blocker;
    auto running = engine.Submit(model.value(), blocked);
    blocker.WaitForFirstChunk();
    queued = engine.Submit(model.value(), {});
    destroying.store(true);
  }  // ~KaminoEngine cancels both jobs, then drains the queue
  releaser.join();
  // The queued handle outlives the engine and resolves as cancelled
  // (skipped before running) — never deadlocks.
  auto result = queued->Wait();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

}  // namespace
}  // namespace kamino
