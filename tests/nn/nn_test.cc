#include <gtest/gtest.h>

#include <cmath>

#include "kamino/data/table.h"
#include "kamino/nn/discriminative.h"
#include "kamino/nn/dpsgd.h"
#include "kamino/nn/encoders.h"

namespace kamino {
namespace {

Schema TestSchema() {
  return Schema({
      Attribute::MakeCategorical("a", {"x", "y", "z"}),
      Attribute::MakeNumeric("n", 0, 10, 11),
      Attribute::MakeCategorical("b", {"p", "q"}),
  });
}

TEST(EncoderTest, CategoricalEmbeddingShape) {
  Schema schema = TestSchema();
  Rng rng(1);
  AttributeEncoder enc(schema.attribute(0), 8, &rng);
  ForwardContext ctx;
  Var e = enc.Encode(Value::Categorical(2), &ctx);
  EXPECT_EQ(e->value.rows(), 1u);
  EXPECT_EQ(e->value.cols(), 8u);
  EXPECT_EQ(enc.Parameters().size(), 1u);
}

TEST(EncoderTest, NumericEmbeddingShapeAndParams) {
  Schema schema = TestSchema();
  Rng rng(1);
  AttributeEncoder enc(schema.attribute(1), 8, &rng);
  ForwardContext ctx;
  Var e = enc.Encode(Value::Numeric(5.0), &ctx);
  EXPECT_EQ(e->value.cols(), 8u);
  EXPECT_EQ(enc.Parameters().size(), 4u);
}

TEST(EncoderTest, StandardizeRoundTrip) {
  Schema schema = TestSchema();
  Rng rng(1);
  AttributeEncoder enc(schema.attribute(1), 4, &rng);
  for (double v : {0.0, 2.5, 10.0}) {
    EXPECT_NEAR(enc.Destandardize(enc.Standardize(v)), v, 1e-9);
  }
}

TEST(EncoderTest, CopyFromTransfersValues) {
  Schema schema = TestSchema();
  Rng rng1(1), rng2(2);
  AttributeEncoder a(schema.attribute(0), 4, &rng1);
  AttributeEncoder b(schema.attribute(0), 4, &rng2);
  b.CopyFrom(a);
  ForwardContext ctx_a, ctx_b;
  Var ea = a.Encode(Value::Categorical(1), &ctx_a);
  Var eb = b.Encode(Value::Categorical(1), &ctx_b);
  for (size_t i = 0; i < ea->value.size(); ++i) {
    EXPECT_DOUBLE_EQ(ea->value[i], eb->value[i]);
  }
}

TEST(ForwardContextTest, BindReusesSameLeafPerParameter) {
  Parameter p(Tensor::RowVector({1, 2, 3}));
  ForwardContext ctx;
  Var a = ctx.Bind(&p);
  Var b = ctx.Bind(&p);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(ctx.bindings().size(), 1u);
}

TEST(DiscriminativeModelTest, CategoricalPredictionIsDistribution) {
  Schema schema = TestSchema();
  Rng rng(2);
  EncoderStore store(schema, 8, &rng);
  DiscriminativeModel model(schema, {0, 1}, {2}, &store, &rng);
  Row row = {Value::Categorical(1), Value::Numeric(4), Value::Categorical(0)};
  std::vector<double> probs = model.PredictCategorical(row);
  ASSERT_EQ(probs.size(), 2u);
  EXPECT_NEAR(probs[0] + probs[1], 1.0, 1e-12);
  EXPECT_GE(probs[0], 0.0);
}

TEST(DiscriminativeModelTest, JointTargetIndexRoundTrip) {
  Schema schema = TestSchema();
  Rng rng(3);
  EncoderStore store(schema, 8, &rng);
  // Joint target over (a: 3, b: 2) = 6 classes, context n.
  DiscriminativeModel model(schema, {1}, {0, 2}, &store, &rng);
  EXPECT_EQ(model.joint_domain_size(), 6u);
  for (size_t idx = 0; idx < 6; ++idx) {
    std::vector<int32_t> vals = model.DecodeJointIndex(idx);
    Row row = {Value::Categorical(vals[0]), Value::Numeric(0),
               Value::Categorical(vals[1])};
    EXPECT_EQ(model.JointIndex(row), idx);
  }
}

TEST(DiscriminativeModelTest, LossGradientMatchesFiniteDifference) {
  Schema schema = TestSchema();
  Rng rng(4);
  EncoderStore store(schema, 6, &rng);
  DiscriminativeModel model(schema, {0, 1}, {2}, &store, &rng);
  Row row = {Value::Categorical(2), Value::Numeric(7), Value::Categorical(1)};

  std::vector<Parameter*> params = model.Parameters();
  ForwardContext ctx;
  Var loss = model.Loss(row, &ctx);
  Backward(loss);
  std::vector<Tensor> grads = ZeroGradients(params);
  ctx.AccumulateInto(params, &grads);

  auto loss_fn = [&]() {
    ForwardContext c;
    return model.Loss(row, &c)->value[0];
  };
  for (size_t p = 0; p < params.size(); ++p) {
    EXPECT_LT(MaxGradError(&params[p]->value, grads[p], loss_fn), 1e-5)
        << "parameter " << p;
  }
}

TEST(DiscriminativeModelTest, GaussianHeadDestandardizes) {
  Schema schema = TestSchema();
  Rng rng(5);
  EncoderStore store(schema, 6, &rng);
  DiscriminativeModel model(schema, {0}, {1}, &store, &rng);
  Row row = {Value::Categorical(0), Value::Numeric(0), Value::Categorical(0)};
  auto [mean, stddev] = model.PredictGaussian(row);
  EXPECT_TRUE(std::isfinite(mean));
  EXPECT_GT(stddev, 0.0);
}

TEST(DpSgdTest, ClipGradientsScalesToNorm) {
  std::vector<Tensor> grads = {Tensor::RowVector({3.0, 0.0}),
                               Tensor::RowVector({0.0, 4.0})};
  ClipGradients(&grads, 1.0);  // norm was 5
  double norm_sq = grads[0].SquaredL2() + grads[1].SquaredL2();
  EXPECT_NEAR(std::sqrt(norm_sq), 1.0, 1e-12);
  // Already-small gradients are untouched.
  std::vector<Tensor> small = {Tensor::RowVector({0.1, 0.0})};
  ClipGradients(&small, 1.0);
  EXPECT_DOUBLE_EQ(small[0][0], 0.1);
}

TEST(DpSgdTest, NonPrivateTrainingLearnsDeterministicMapping) {
  // b is a deterministic function of a; a non-private run must learn it.
  Schema schema = TestSchema();
  Rng rng(6);
  Table data(schema);
  for (int i = 0; i < 300; ++i) {
    const int a = static_cast<int>(rng.UniformInt(0, 2));
    data.AppendRowUnchecked({Value::Categorical(a), Value::Numeric(5),
                             Value::Categorical(a == 0 ? 0 : 1)});
  }
  EncoderStore store(schema, 8, &rng);
  DiscriminativeModel model(schema, {0, 1}, {2}, &store, &rng);
  DpSgdOptions options;
  options.noise_multiplier = 0.0;
  options.iterations = 300;
  options.batch_size = 16;
  options.learning_rate = 0.3;
  TrainDpSgd(&model, data, options, &rng);

  Row r0 = {Value::Categorical(0), Value::Numeric(5), Value::Categorical(0)};
  Row r1 = {Value::Categorical(2), Value::Numeric(5), Value::Categorical(0)};
  EXPECT_GT(model.PredictCategorical(r0)[0], 0.7);
  EXPECT_GT(model.PredictCategorical(r1)[1], 0.7);
}

TEST(DpSgdTest, NoisyTrainingStillRuns) {
  Schema schema = TestSchema();
  Rng rng(7);
  Table data(schema);
  for (int i = 0; i < 60; ++i) {
    data.AppendRowUnchecked({Value::Categorical(0), Value::Numeric(1),
                             Value::Categorical(0)});
  }
  EncoderStore store(schema, 4, &rng);
  DiscriminativeModel model(schema, {0, 1}, {2}, &store, &rng);
  DpSgdOptions options;
  options.noise_multiplier = 1.1;
  options.iterations = 20;
  const double loss = TrainDpSgd(&model, data, options, &rng);
  EXPECT_TRUE(std::isfinite(loss));
}

TEST(DpSgdTest, EmptyDataIsHandled) {
  Schema schema = TestSchema();
  Rng rng(8);
  EncoderStore store(schema, 4, &rng);
  DiscriminativeModel model(schema, {0}, {2}, &store, &rng);
  Table data(schema);
  DpSgdOptions options;
  EXPECT_DOUBLE_EQ(TrainDpSgd(&model, data, options, &rng), 0.0);
}

}  // namespace
}  // namespace kamino
