#include <gtest/gtest.h>

#include <cmath>

#include "kamino/dp/gaussian.h"
#include "kamino/dp/rdp.h"

namespace kamino {
namespace {

TEST(GaussianMechanismTest, ClassicCalibration) {
  // sigma = sqrt(2 ln(1.25/delta)) / epsilon.
  const double sigma = GaussianSigmaFor(1.0, 1e-6);
  EXPECT_NEAR(sigma, std::sqrt(2.0 * std::log(1.25e6)), 1e-9);
  EXPECT_GT(GaussianSigmaFor(0.5, 1e-6), sigma);
}

TEST(GaussianMechanismTest, NoiseIsUnbiasedAtScale) {
  Rng rng(1);
  std::vector<double> values(5000, 10.0);
  AddGaussianNoise(&values, 2.0, 3.0, &rng);
  double sum = 0.0, sum_sq = 0.0;
  for (double v : values) {
    sum += v;
    sum_sq += (v - 10.0) * (v - 10.0);
  }
  EXPECT_NEAR(sum / values.size(), 10.0, 0.3);
  EXPECT_NEAR(std::sqrt(sum_sq / values.size()), 6.0, 0.3);
}

TEST(GaussianMechanismTest, NoisyHistogramIsDistribution) {
  Rng rng(2);
  std::vector<double> counts = {50, 30, 20, 0};
  std::vector<double> dist = NoisyNormalizedHistogram(counts, 1.0, &rng);
  double total = 0.0;
  for (double p : dist) {
    EXPECT_GE(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(GaussianMechanismTest, ZeroSigmaIsExact) {
  Rng rng(3);
  std::vector<double> counts = {75, 25};
  std::vector<double> dist = NoisyNormalizedHistogram(counts, 0.0, &rng);
  EXPECT_DOUBLE_EQ(dist[0], 0.75);
  EXPECT_DOUBLE_EQ(dist[1], 0.25);
}

TEST(GaussianMechanismTest, ViolationMatrixSensitivityLemma1) {
  // |phi_u| + |phi_b| * sqrt(Lw^2 - Lw).
  EXPECT_NEAR(ViolationMatrixSensitivity(2, 0, 100), 2.0, 1e-12);
  EXPECT_NEAR(ViolationMatrixSensitivity(0, 1, 100),
              std::sqrt(100.0 * 100.0 - 100.0), 1e-9);
  EXPECT_NEAR(ViolationMatrixSensitivity(1, 2, 10),
              1.0 + 2.0 * std::sqrt(90.0), 1e-9);
}

TEST(RdpTest, GaussianRdpClosedForm) {
  EXPECT_DOUBLE_EQ(GaussianRdp(1.0, 2), 1.0);
  EXPECT_DOUBLE_EQ(GaussianRdp(2.0, 8), 1.0);
}

TEST(RdpTest, SgmReducesToGaussianAtFullSampling) {
  for (int alpha : {2, 4, 16}) {
    EXPECT_NEAR(SampledGaussianRdp(1.3, 1.0, alpha), GaussianRdp(1.3, alpha),
                1e-12);
  }
}

TEST(RdpTest, SgmZeroRateIsFree) {
  EXPECT_DOUBLE_EQ(SampledGaussianRdp(1.0, 0.0, 8), 0.0);
}

TEST(RdpTest, SgmMonotoneInSamplingRate) {
  double prev = 0.0;
  for (double q : {0.01, 0.05, 0.2, 0.5, 1.0}) {
    const double eps = SampledGaussianRdp(1.1, q, 8);
    EXPECT_GE(eps, prev);
    prev = eps;
  }
}

TEST(RdpTest, SgmMonotoneDecreasingInSigma) {
  double prev = 1e18;
  for (double sigma : {0.5, 1.0, 2.0, 4.0}) {
    const double eps = SampledGaussianRdp(sigma, 0.1, 8);
    EXPECT_LE(eps, prev);
    prev = eps;
  }
}

TEST(RdpTest, SubsamplingAmplifiesPrivacy) {
  // Small q must cost far less than the unsampled mechanism.
  EXPECT_LT(SampledGaussianRdp(1.0, 0.01, 8),
            0.1 * SampledGaussianRdp(1.0, 1.0, 8));
}

TEST(RdpTest, AccountantComposesLinearly) {
  RdpAccountant one;
  one.AddGaussian(1.0, 1);
  RdpAccountant ten;
  ten.AddGaussian(1.0, 10);
  EXPECT_NEAR(ten.CostAt(8), 10.0 * one.CostAt(8), 1e-12);
}

TEST(RdpTest, EpsilonDecreasesWithLargerDelta) {
  RdpAccountant acc;
  acc.AddGaussian(2.0, 5);
  EXPECT_GT(acc.EpsilonFor(1e-9), acc.EpsilonFor(1e-3));
}

TEST(RdpTest, GaussianTailBoundIsReasonable) {
  // One Gaussian with sigma ~ 4.75 should give roughly epsilon = 1 at
  // delta = 1e-6 (the classic calibration is a bit conservative; RDP can
  // be tighter). Sanity-check the ballpark.
  RdpAccountant acc;
  acc.AddGaussian(GaussianSigmaFor(1.0, 1e-6), 1);
  const double eps = acc.EpsilonFor(1e-6);
  EXPECT_GT(eps, 0.3);
  EXPECT_LT(eps, 1.2);
}

TEST(RdpTest, CalibrationInvertsAccounting) {
  const double sigma = CalibrateGaussianSigma(10, 1.0, 1e-6);
  RdpAccountant acc;
  acc.AddGaussian(sigma, 10);
  const double eps = acc.EpsilonFor(1e-6);
  EXPECT_LE(eps, 1.0 + 1e-6);
  EXPECT_GT(eps, 0.9);  // not wastefully conservative
}

TEST(RdpTest, SgmCalibrationInvertsAccounting) {
  const double sigma = CalibrateSgmSigma(500, 0.05, 1.0, 1e-6);
  RdpAccountant acc;
  acc.AddSampledGaussian(sigma, 0.05, 500);
  EXPECT_LE(acc.EpsilonFor(1e-6), 1.0 + 1e-6);
}

TEST(RdpTest, KaminoEpsilonTheorem1Components) {
  KaminoPrivacyParams params;
  params.sigma_g = 4.0;
  params.sigma_d = 1.1;
  params.batch_size = 16;
  params.iterations = 100;
  params.num_models = 10;
  params.num_rows = 10000;
  params.learn_weights = false;
  const double eps_without = KaminoEpsilon(params, 1e-6);
  EXPECT_GT(eps_without, 0.0);
  params.learn_weights = true;
  params.sigma_w = 1.0;
  params.weight_sample = 100;
  EXPECT_GT(KaminoEpsilon(params, 1e-6), eps_without);
}

TEST(RdpTest, MoreModelsCostMore) {
  KaminoPrivacyParams a;
  a.num_models = 5;
  a.num_rows = 5000;
  a.iterations = 50;
  KaminoPrivacyParams b = a;
  b.num_models = 10;
  EXPECT_GT(KaminoEpsilon(b, 1e-6), KaminoEpsilon(a, 1e-6));
}

}  // namespace
}  // namespace kamino
