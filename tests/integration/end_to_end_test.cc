// Integration tests across the whole stack: generated workload -> Kamino /
// baselines -> evaluation metrics. These assert the paper's *qualitative*
// claims at miniature scale.

#include <gtest/gtest.h>

#include "kamino/baselines/privbayes.h"
#include "kamino/core/kamino.h"
#include "kamino/data/generators.h"
#include "kamino/dc/violations.h"
#include "kamino/eval/classifiers.h"
#include "kamino/eval/marginals.h"

namespace kamino {
namespace {

TEST(EndToEndTest, KaminoPreservesAdultHardDcsBaselineDoesNot) {
  BenchmarkDataset ds = MakeAdultLike(300, 42);
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema()).TakeValue();

  KaminoConfig config;
  config.epsilon = 1.0;
  config.delta = 1e-6;
  config.options.seed = 9;
  config.options.iterations = 30;
  auto kamino_result = RunKamino(ds.table, constraints, config);
  ASSERT_TRUE(kamino_result.ok()) << kamino_result.status();

  PrivBayes::Options pb_options;
  pb_options.epsilon = 1.0;
  PrivBayes privbayes(pb_options);
  Rng rng(10);
  Table pb_synth =
      privbayes.Synthesize(ds.table, ds.table.num_rows(), &rng).TakeValue();

  // The FD edu -> edu_num: Kamino keeps it (near) intact, PrivBayes'
  // i.i.d. tuples violate it broadly (Table 2's headline contrast).
  const DenialConstraint& fd = constraints[0].dc;
  const double kamino_rate =
      ViolationRatePercent(fd, kamino_result.value().synthetic);
  const double privbayes_rate = ViolationRatePercent(fd, pb_synth);
  EXPECT_LT(kamino_rate, 0.5);
  EXPECT_GT(privbayes_rate, 2.0 * (kamino_rate + 0.1));
}

TEST(EndToEndTest, SyntheticDataSupportsDownstreamMetrics) {
  BenchmarkDataset ds = MakeTpchLike(250, 43);
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema()).TakeValue();
  KaminoConfig config;
  config.options.non_private = true;
  config.options.iterations = 30;
  config.options.seed = 2;
  auto result = RunKamino(ds.table, constraints, config);
  ASSERT_TRUE(result.ok());

  // Marginal distances are bounded and finite.
  Rng rng(3);
  const auto one_way =
      OneWayMarginalDistances(result.value().synthetic, ds.table, 16);
  for (double d : one_way) {
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
  }
  // Non-private synthesis should track 1-way marginals quite closely.
  EXPECT_LT(MeanOf(one_way), 0.30);

  // The classification harness runs end-to-end on the synthetic table.
  auto quality =
      EvaluateModelTraining(result.value().synthetic, ds.table, &rng);
  EXPECT_EQ(quality.size(), ds.table.schema().size());
  EXPECT_GT(MeanQuality(quality).accuracy, 0.5);
}

TEST(EndToEndTest, AblationOrderingOnViolations) {
  // Experiment 5's shape: full Kamino <= RandSampling on violations.
  BenchmarkDataset ds = MakeAdultLike(200, 44);
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema()).TakeValue();

  auto run = [&](bool constraint_aware) {
    KaminoConfig config;
    config.options.non_private = true;
    config.options.iterations = 15;
    config.options.seed = 5;
    config.options.constraint_aware_sampling = constraint_aware;
    auto result = RunKamino(ds.table, constraints, config);
    EXPECT_TRUE(result.ok());
    int64_t violations = 0;
    for (const WeightedConstraint& wc : constraints) {
      violations += CountViolations(wc.dc, result.value().synthetic);
    }
    return violations;
  };
  EXPECT_LE(run(true), run(false));
}

TEST(EndToEndTest, EpsilonImprovesMarginals) {
  // Figure 6's direction: much more budget => no worse (usually better)
  // marginals. Compare eps=0.2 against non-private.
  BenchmarkDataset ds = MakeTpchLike(250, 45);
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema()).TakeValue();

  auto mean_distance = [&](double epsilon, bool non_private) {
    KaminoConfig config;
    config.epsilon = epsilon;
    config.options.non_private = non_private;
    config.options.iterations = 30;
    config.options.seed = 11;
    auto result = RunKamino(ds.table, constraints, config);
    EXPECT_TRUE(result.ok());
    return MeanOf(
        OneWayMarginalDistances(result.value().synthetic, ds.table, 16));
  };
  const double low_budget = mean_distance(0.2, false);
  const double infinite = mean_distance(0.0, true);
  EXPECT_LE(infinite, low_budget + 0.05);
}

}  // namespace
}  // namespace kamino
