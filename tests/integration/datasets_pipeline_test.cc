// Parameterized integration sweep: the full private pipeline on each of
// the four generated workloads, checking the invariants every run must
// satisfy regardless of dataset shape.

#include <gtest/gtest.h>

#include "kamino/core/kamino.h"
#include "kamino/data/generators.h"
#include "kamino/dc/violations.h"

namespace kamino {
namespace {

class DatasetPipelineTest : public ::testing::TestWithParam<int> {
 protected:
  BenchmarkDataset Make() const {
    switch (GetParam()) {
      case 0:
        return MakeAdultLike(250, 77);
      case 1:
        return MakeBr2000Like(250, 77);
      case 2:
        return MakeTaxLike(250, 77);
      default:
        return MakeTpchLike(250, 77);
    }
  }

  KaminoResult Run(const BenchmarkDataset& ds, uint64_t seed) const {
    auto constraints =
        ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema())
            .TakeValue();
    KaminoConfig config;
    config.epsilon = 1.0;
    config.delta = 1e-6;
    config.options.seed = seed;
    config.options.iterations = 25;
    auto result = RunKamino(ds.table, constraints, config);
    EXPECT_TRUE(result.ok()) << result.status();
    return std::move(result).TakeValue();
  }
};

TEST_P(DatasetPipelineTest, OutputSchemaAndDomainsValid) {
  BenchmarkDataset ds = Make();
  KaminoResult r = Run(ds, 1);
  EXPECT_EQ(r.synthetic.num_rows(), ds.table.num_rows());
  EXPECT_EQ(r.synthetic.num_columns(), ds.table.num_columns());
  for (size_t row = 0; row < r.synthetic.num_rows(); ++row) {
    for (size_t col = 0; col < r.synthetic.num_columns(); ++col) {
      ASSERT_TRUE(
          ds.table.schema().attribute(col).Contains(r.synthetic.at(row, col)))
          << "row " << row << " col " << col;
    }
  }
}

TEST_P(DatasetPipelineTest, BudgetNeverExceeded) {
  BenchmarkDataset ds = Make();
  KaminoResult r = Run(ds, 2);
  EXPECT_LE(r.epsilon_spent, 1.0 + 1e-9);
  EXPECT_GT(r.epsilon_spent, 0.0);
}

TEST_P(DatasetPipelineTest, HardDcViolationsStayNearTruth) {
  BenchmarkDataset ds = Make();
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema()).TakeValue();
  KaminoResult r = Run(ds, 3);
  for (const WeightedConstraint& wc : constraints) {
    if (!wc.hard) continue;
    // Truth rate is 0 for hard DCs; the synthetic rate must stay tiny
    // even under DP noise (Requirement R1).
    EXPECT_LT(ViolationRatePercent(wc.dc, r.synthetic), 2.0)
        << wc.dc.ToString(ds.table.schema());
  }
}

TEST_P(DatasetPipelineTest, SameSeedIsDeterministic) {
  BenchmarkDataset ds = Make();
  KaminoResult a = Run(ds, 9);
  KaminoResult b = Run(ds, 9);
  ASSERT_EQ(a.synthetic.num_rows(), b.synthetic.num_rows());
  for (size_t row = 0; row < a.synthetic.num_rows(); ++row) {
    for (size_t col = 0; col < a.synthetic.num_columns(); ++col) {
      ASSERT_TRUE(a.synthetic.at(row, col) == b.synthetic.at(row, col))
          << "divergence at " << row << "," << col;
    }
  }
}

TEST_P(DatasetPipelineTest, DifferentSeedsDiffer) {
  BenchmarkDataset ds = Make();
  KaminoResult a = Run(ds, 10);
  KaminoResult b = Run(ds, 11);
  size_t differing = 0;
  for (size_t row = 0; row < a.synthetic.num_rows(); ++row) {
    for (size_t col = 0; col < a.synthetic.num_columns(); ++col) {
      if (!(a.synthetic.at(row, col) == b.synthetic.at(row, col))) {
        ++differing;
      }
    }
  }
  EXPECT_GT(differing, 0u);
}

std::string PipelineDatasetName(const ::testing::TestParamInfo<int>& info) {
  static const char* const kNames[] = {"adult", "br2000", "tax", "tpch"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetPipelineTest,
                         ::testing::Values(0, 1, 2, 3), PipelineDatasetName);

}  // namespace
}  // namespace kamino
