// Tests for the progressive prefix-frozen shard merge
// (KaminoOptions::progressive_merge): the (seed, num_shards) determinism
// contract across thread budgets, hard-DC exactness after *every* prefix
// freeze (checked against the MakeNaiveViolationIndex oracle), frozen-
// prefix immutability (rows already streamed are never rewritten), the
// default-off golden digest, and unit tests of the prefix-frozen FD
// canonicalization + rank alignment passes in core/prefix_merge.h.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "kamino/common/logging.h"
#include "kamino/core/kamino.h"
#include "kamino/core/prefix_merge.h"
#include "kamino/core/sequencing.h"
#include "kamino/data/generators.h"
#include "kamino/dc/violations.h"
#include "kamino/runtime/thread_pool.h"

namespace kamino {
namespace {

/// Restores the global thread budget when a test scope ends.
class ScopedNumThreads {
 public:
  explicit ScopedNumThreads(size_t n) { runtime::SetGlobalNumThreads(n); }
  ~ScopedNumThreads() { runtime::SetGlobalNumThreads(0); }
};

/// FNV-1a over an exact textual rendering of every cell (17 significant
/// digits round-trips doubles), so equal digests mean bit-identical
/// tables.
uint64_t TableDigest(const Table& t) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](const char* s) {
    for (; *s; ++s) {
      h ^= static_cast<unsigned char>(*s);
      h *= 1099511628211ull;
    }
  };
  for (size_t r = 0; r < t.num_rows(); ++r) {
    for (size_t c = 0; c < t.num_columns(); ++c) {
      const Value& v = t.at(r, c);
      char buf[64];
      if (v.is_numeric()) {
        std::snprintf(buf, sizeof(buf), "n:%.17g;", v.numeric());
      } else {
        std::snprintf(buf, sizeof(buf), "c:%d;", v.category());
      }
      mix(buf);
    }
  }
  return h;
}

void ExpectSameTable(const Table& a, const Table& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_columns(), b.num_columns());
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.num_columns(); ++c) {
      ASSERT_TRUE(a.at(r, c) == b.at(r, c))
          << "cell (" << r << ", " << c << ") diverged: "
          << a.CellToString(r, c) << " vs " << b.CellToString(r, c);
    }
  }
}

/// Violation count of `table` under `dc` per the naive prefix-scan oracle
/// (row r pairs against rows < r exactly once).
int64_t NaiveViolations(const DenialConstraint& dc, const Table& table) {
  std::unique_ptr<ViolationIndex> oracle = MakeNaiveViolationIndex(dc);
  int64_t total = 0;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    total += oracle->CountNew(table.row(r));
    oracle->AddRow(table.row(r));
  }
  return total;
}

struct ProgressiveRun {
  Table out;
  SynthesisTelemetry telemetry;
  /// Materialized copy of every delivered chunk, in delivery order.
  std::vector<TableChunk> chunks;
};

/// Trains on `ds` and synthesizes `n` rows through the progressive merge,
/// capturing every chunk. Model training and sampling seeds are fixed so
/// runs are comparable across thread budgets.
ProgressiveRun RunProgressive(const BenchmarkDataset& ds, size_t n,
                              size_t num_threads, size_t num_shards) {
  ScopedNumThreads threads(num_threads);
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema()).TakeValue();
  auto sequence = SequenceSchema(ds.table.schema(), constraints);
  KaminoOptions options;
  options.non_private = true;
  options.iterations = 8;
  options.mcmc_resamples = 40;
  options.seed = 77;
  options.num_shards = num_shards;
  options.progressive_merge = true;
  Rng rng(77);
  auto model = ProbabilisticDataModel::Train(ds.table, sequence, options, &rng)
                   .TakeValue();
  ProgressiveRun run;
  SynthesisHooks hooks;
  hooks.on_chunk = [&run](const TableChunk& chunk) {
    run.chunks.push_back(chunk);
    return Status::OK();
  };
  Rng srng(17);
  run.out = Synthesize(model, constraints, n, options, &srng, &run.telemetry,
                       &hooks)
                .TakeValue();
  return run;
}

TEST(ProgressiveMergeTest, OutputPureFunctionOfSeedAndShardsAcrossThreads) {
  // The acceptance grid: with progressive_merge on at num_shards=4, the
  // thread budget must not change a single bit, and the same
  // (seed, num_shards) twice must reproduce exactly.
  const BenchmarkDataset ds = MakeAdultLike(100, 13);
  const ProgressiveRun t1 = RunProgressive(ds, 120, 1, 4);
  const ProgressiveRun t4 = RunProgressive(ds, 120, 4, 4);
  const ProgressiveRun t4_again = RunProgressive(ds, 120, 4, 4);
  EXPECT_EQ(t1.telemetry.num_shards, 4u);
  ExpectSameTable(t1.out, t4.out);
  ExpectSameTable(t4.out, t4_again.out);
  EXPECT_EQ(TableDigest(t1.out), TableDigest(t4.out));
  EXPECT_EQ(t1.telemetry.merge_cross_violations,
            t4.telemetry.merge_cross_violations);
  EXPECT_EQ(t1.telemetry.merge_resamples, t4.telemetry.merge_resamples);
  EXPECT_EQ(t1.telemetry.merge_fd_rewrites, t4.telemetry.merge_fd_rewrites);
  EXPECT_EQ(t1.telemetry.merge_prefix_freezes, 4);
  EXPECT_EQ(t4.telemetry.merge_prefix_freezes, 4);
  EXPECT_EQ(t1.telemetry.merge_frozen_rows, 120);
}

TEST(ProgressiveMergeTest, ChunksTileTheInstanceInAscendingOrder) {
  const BenchmarkDataset ds = MakeAdultLike(100, 13);
  const ProgressiveRun run = RunProgressive(ds, 110, 1, 4);
  ASSERT_EQ(run.chunks.size(), 4u);
  size_t next_offset = 0;
  for (size_t s = 0; s < run.chunks.size(); ++s) {
    EXPECT_EQ(run.chunks[s].shard, s);
    EXPECT_EQ(run.chunks[s].row_offset, next_offset);
    EXPECT_EQ(run.chunks[s].last, s + 1 == run.chunks.size());
    next_offset += run.chunks[s].num_rows();
  }
  EXPECT_EQ(next_offset, run.out.num_rows());
}

TEST(ProgressiveMergeTest, HardDcsExactAfterEveryPrefixFreeze) {
  // Tax has 6 hard DCs, including two FDs sharing an RHS attribute
  // (areacode -> state, zip -> state: a shard row can bridge two frozen
  // groups, forcing the LHS re-point) and a per-state salary/rate order
  // DC (exercises the prefix-frozen envelope clamp). After every freeze
  // the delivered prefix must be exactly violation-free per the naive
  // oracle — not just at job completion.
  const BenchmarkDataset ds = MakeTaxLike(100, 13);
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema()).TakeValue();
  const ProgressiveRun run = RunProgressive(ds, 100, 1, 4);
  ASSERT_EQ(run.chunks.size(), 4u);
  Table prefix(run.out.schema());
  for (size_t s = 0; s < run.chunks.size(); ++s) {
    prefix.AppendRowsFrom(run.chunks[s].rows, 0, run.chunks[s].num_rows());
    for (size_t l = 0; l < constraints.size(); ++l) {
      if (!constraints[l].hard) continue;
      EXPECT_EQ(NaiveViolations(constraints[l].dc, prefix), 0)
          << "hard DC " << l << " ("
          << constraints[l].dc.ToString(ds.table.schema())
          << ") violated on the frozen prefix after freeze " << s;
    }
  }
  // The freezes actually reconciled cross-prefix conflicts, not luck.
  EXPECT_GT(run.telemetry.merge_cross_violations, 0);
  EXPECT_EQ(run.telemetry.merge_prefix_freezes, 4);
}

TEST(ProgressiveMergeTest, FrozenPrefixNeverRewritten) {
  // Prefix immutability: every row exactly as delivered in its chunk must
  // reappear bit-identical in the final table — later freezes repair only
  // their own shard's rows.
  const BenchmarkDataset ds = MakeTaxLike(100, 13);
  const ProgressiveRun run = RunProgressive(ds, 100, 4, 4);
  ASSERT_FALSE(run.chunks.empty());
  for (const TableChunk& chunk : run.chunks) {
    const Table slice = run.out.Slice(chunk.row_offset, chunk.num_rows());
    ExpectSameTable(chunk.rows, slice);
  }
}

TEST(ProgressiveMergeTest, DefaultOffGoldenDigestUnchanged) {
  // The golden scenario (same as ShardedSamplerTest's digest pin): with
  // the flag off — and with the flag ON at the default num_shards=1,
  // which keeps the sequential paper path — the output digest must stay
  // 0x214d31f811dbdd0f.
  for (const bool progressive : {false, true}) {
    ScopedNumThreads threads(1);
    BenchmarkDataset ds = MakeAdultLike(120, 7);
    auto constraints =
        ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema())
            .TakeValue();
    auto sequence = SequenceSchema(ds.table.schema(), constraints);
    KaminoOptions options;
    options.non_private = true;
    options.iterations = 12;
    options.mcmc_resamples = 48;
    options.seed = 31;
    options.progressive_merge = progressive;
    ASSERT_EQ(options.num_shards, 1u);
    Rng rng(31);
    auto model =
        ProbabilisticDataModel::Train(ds.table, sequence, options, &rng)
            .TakeValue();
    Rng srng(17);
    SynthesisTelemetry telemetry;
    Table out =
        Synthesize(model, constraints, 150, options, &srng, &telemetry)
            .TakeValue();
    EXPECT_EQ(TableDigest(out), 0x214d31f811dbdd0full)
        << "progressive_merge=" << progressive
        << " changed the sequential path";
    EXPECT_EQ(telemetry.merge_prefix_freezes, 0);
  }
}

TEST(ProgressiveMergeTest, GlobalMergeTelemetryHasNoFreezes) {
  const BenchmarkDataset ds = MakeAdultLike(100, 13);
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema()).TakeValue();
  KaminoConfig config;
  config.options.non_private = true;
  config.options.iterations = 8;
  config.options.seed = 77;
  config.options.num_shards = 4;
  auto result = RunKamino(ds.table, constraints, config);
  runtime::SetGlobalNumThreads(0);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().telemetry.merge_prefix_freezes, 0);
  EXPECT_EQ(result.value().telemetry.merge_frozen_rows, 0);
}

// ---------------------------------------------------------------------
// Unit tests of the prefix-frozen passes (core/prefix_merge.h) on
// hand-built tables.
// ---------------------------------------------------------------------

/// Schema of three numeric attributes g, x, y (group, context, dependent).
Table NumericTable(const std::vector<std::vector<double>>& rows) {
  Schema schema({Attribute::MakeNumeric("g", 0.0, 1000.0, 16),
                 Attribute::MakeNumeric("x", 0.0, 1000.0, 16),
                 Attribute::MakeNumeric("y", 0.0, 1000.0, 16)});
  Table t(schema);
  for (const auto& r : rows) {
    Row row;
    for (double v : r) row.push_back(Value::Numeric(v));
    KAMINO_CHECK(t.AppendRow(std::move(row)).ok());
  }
  return t;
}

PrefixAlignSpec GroupedSpec(bool co_monotone) {
  PrefixAlignSpec spec;
  spec.group_attrs = {0};
  spec.ctx_attr = 1;
  spec.dep_attr = 2;
  spec.co_monotone = co_monotone;
  return spec;
}

int64_t AlignViolations(const Table& t, const PrefixAlignSpec& spec) {
  // Strict inversions within each group under the oriented order: the
  // quantity PrefixFrozenRankAlign must zero.
  int64_t violations = 0;
  for (size_t i = 0; i < t.num_rows(); ++i) {
    for (size_t j = 0; j < i; ++j) {
      bool same_group = true;
      for (size_t a : spec.group_attrs) {
        same_group = same_group && t.at(i, a) == t.at(j, a);
      }
      if (!same_group) continue;
      const double xi = t.at(i, spec.ctx_attr).numeric();
      const double xj = t.at(j, spec.ctx_attr).numeric();
      double yi = t.at(i, spec.dep_attr).numeric();
      double yj = t.at(j, spec.dep_attr).numeric();
      if (!spec.co_monotone) {
        yi = -yi;
        yj = -yj;
      }
      if ((xi < xj && yi > yj) || (xj < xi && yj > yi)) ++violations;
    }
  }
  return violations;
}

TEST(PrefixRankAlignTest, SlotsNewRowsIntoFrozenMonotoneRelation) {
  // Frozen rows (group 0): x = 10/20/30 -> y = 1/5/9, weakly monotone.
  // Suffix rows arrive out of order and out of envelope.
  Table t = NumericTable({{0, 10, 1},
                          {0, 20, 5},
                          {0, 30, 9},
                          {0, 25, 0},    // below lo(25) = 5
                          {0, 15, 100},  // above hi(15) = 5
                          {0, 35, 2}});
  const PrefixAlignSpec spec = GroupedSpec(true);
  EXPECT_GT(AlignViolations(t, spec), 0);
  const int64_t moved = PrefixFrozenRankAlign(&t, spec, 3);
  EXPECT_GT(moved, 0);
  EXPECT_EQ(AlignViolations(t, spec), 0);
  // Frozen cells untouched.
  EXPECT_EQ(t.at(0, 2).numeric(), 1.0);
  EXPECT_EQ(t.at(1, 2).numeric(), 5.0);
  EXPECT_EQ(t.at(2, 2).numeric(), 9.0);
}

TEST(PrefixRankAlignTest, AntiMonotoneOrientation) {
  // Anti-monotone: y must weakly *decrease* in x. Frozen: x=10 -> y=9,
  // x=30 -> y=1. A suffix row at x=20 with y=100 must clamp into [1, 9]
  // (oriented), i.e. its y lands between the frozen neighbours.
  Table t = NumericTable({{0, 10, 9}, {0, 30, 1}, {0, 20, 100}});
  const PrefixAlignSpec spec = GroupedSpec(false);
  PrefixFrozenRankAlign(&t, spec, 2);
  EXPECT_EQ(AlignViolations(t, spec), 0);
  const double y = t.at(2, 2).numeric();
  EXPECT_LE(y, 9.0);
  EXPECT_GE(y, 1.0);
}

TEST(PrefixRankAlignTest, GroupsAlignIndependently) {
  // Two groups; group 1's frozen relation must not constrain group 2.
  Table t = NumericTable({{1, 10, 5},
                          {2, 10, 50},
                          {1, 20, 2},     // group 1 suffix, below lo = 5
                          {2, 20, 10}});  // group 2 suffix, below lo = 50
  const PrefixAlignSpec spec = GroupedSpec(true);
  PrefixFrozenRankAlign(&t, spec, 2);
  EXPECT_EQ(AlignViolations(t, spec), 0);
  EXPECT_EQ(t.at(2, 2).numeric(), 5.0);   // clamped to group 1's lo
  EXPECT_EQ(t.at(3, 2).numeric(), 50.0);  // clamped to group 2's lo
}

TEST(PrefixRankAlignTest, EmptyFrozenPrefixIsPlainRankAlignment) {
  // frozen_end = 0 degenerates to the global rank alignment restricted to
  // the suffix: the dependent values are a permutation of the originals.
  Table t = NumericTable({{0, 30, 1}, {0, 10, 9}, {0, 20, 5}});
  const PrefixAlignSpec spec = GroupedSpec(true);
  PrefixFrozenRankAlign(&t, spec, 0);
  EXPECT_EQ(AlignViolations(t, spec), 0);
  EXPECT_EQ(t.at(0, 2).numeric(), 9.0);  // x=30 takes the largest y
  EXPECT_EQ(t.at(1, 2).numeric(), 1.0);
  EXPECT_EQ(t.at(2, 2).numeric(), 5.0);
}

TEST(PrefixRankAlignTest, PreservesSuffixMultisetWhenEnvelopeIsLoose) {
  // Envelope wide open: the suffix keeps its own values, rank-permuted.
  Table t = NumericTable({{0, 10, 0},
                          {0, 50, 100},
                          {0, 30, 40},
                          {0, 20, 60},
                          {0, 40, 20}});
  const PrefixAlignSpec spec = GroupedSpec(true);
  PrefixFrozenRankAlign(&t, spec, 2);
  EXPECT_EQ(AlignViolations(t, spec), 0);
  EXPECT_EQ(t.at(3, 2).numeric(), 20.0);  // x=20 -> smallest suffix y
  EXPECT_EQ(t.at(2, 2).numeric(), 40.0);
  EXPECT_EQ(t.at(4, 2).numeric(), 60.0);
}

TEST(PrefixRankAlignTest, TiedContextsImposeNoConstraint) {
  // A frozen row at the same context as the suffix row bounds nothing:
  // ties never violate an order DC.
  Table t = NumericTable({{0, 10, 5}, {0, 10, 999}});
  const PrefixAlignSpec spec = GroupedSpec(true);
  const int64_t moved = PrefixFrozenRankAlign(&t, spec, 1);
  EXPECT_EQ(moved, 0);
  EXPECT_EQ(t.at(1, 2).numeric(), 999.0);
}

/// Schema of four categorical attributes a, b, c, d for the FD tests.
Table CategoricalTable(const std::vector<std::vector<int32_t>>& rows) {
  // Category dictionaries sized generously; indices are what matter.
  std::vector<Attribute> attrs;
  for (const char* name : {"a", "b", "c", "d"}) {
    std::vector<std::string> cats;
    for (int i = 0; i < 16; ++i) {
      cats.push_back(std::string(name) + "_" + std::to_string(i));
    }
    attrs.push_back(Attribute::MakeCategorical(name, std::move(cats)));
  }
  Table t(Schema(std::move(attrs)));
  for (const auto& r : rows) {
    Row row;
    for (int32_t v : r) row.push_back(Value::Categorical(v));
    KAMINO_CHECK(t.AppendRow(std::move(row)).ok());
  }
  return t;
}

TEST(ProgressiveMergeTest, PrefixFdCanonicalizeAdoptsFrozenValue) {
  // FD a -> c. Frozen: a=0 -> c=1, a=1 -> c=2. A suffix row with a=0 must
  // adopt c=1; a suffix-only key (a=2) canonicalizes internally to its
  // smallest member's value.
  Table t = CategoricalTable({{0, 0, 1, 0},
                              {1, 0, 2, 0},
                              {0, 0, 5, 0},
                              {2, 0, 7, 0},
                              {2, 0, 8, 0}});
  PrefixFdFamily family;
  family.rhs = 2;
  family.lhs_sets = {{0}};
  std::vector<bool> modified(4, false);
  const int64_t rewrites =
      PrefixFrozenFdCanonicalize(&t, {family}, 2, &modified);
  EXPECT_EQ(rewrites, 2);
  EXPECT_TRUE(modified[2]);
  EXPECT_EQ(t.at(2, 2).category(), 1);  // adopted frozen canonical
  EXPECT_EQ(t.at(3, 2).category(), 7);  // suffix-internal canonical
  EXPECT_EQ(t.at(4, 2).category(), 7);
  EXPECT_EQ(t.at(0, 2).category(), 1);  // frozen untouched
  EXPECT_EQ(t.at(1, 2).category(), 2);
}

TEST(ProgressiveMergeTest, BridgingRowRepointsLhsAtAdoptedRepresentative) {
  // Two FDs sharing RHS c: a -> c and b -> c (the tax state shape).
  // Frozen: (a=0, b=0) -> c=1 and (a=1, b=1) -> c=2. The suffix row
  // (a=0, b=1) bridges both frozen groups; since frozen rows cannot move,
  // it must adopt the smaller representative's value (c=1) and re-point
  // its b key at that representative (b=0) so both FDs hold.
  Table t = CategoricalTable({{0, 0, 1, 0}, {1, 1, 2, 0}, {0, 1, 9, 0}});
  PrefixFdFamily family;
  family.rhs = 2;
  family.lhs_sets = {{0}, {1}};
  std::vector<bool> modified(4, false);
  PrefixFrozenFdCanonicalize(&t, {family}, 2, &modified);
  EXPECT_EQ(t.at(2, 2).category(), 1);
  EXPECT_EQ(t.at(2, 1).category(), 0);
  EXPECT_EQ(t.at(2, 0).category(), 0);
  EXPECT_TRUE(modified[1]);
  // Both FDs now exact over the whole table.
  for (size_t lhs : {size_t{0}, size_t{1}}) {
    for (size_t i = 0; i < t.num_rows(); ++i) {
      for (size_t j = 0; j < i; ++j) {
        if (t.at(i, lhs) == t.at(j, lhs)) {
          EXPECT_TRUE(t.at(i, 2) == t.at(j, 2));
        }
      }
    }
  }
  // Frozen rows byte-identical.
  EXPECT_EQ(t.at(0, 2).category(), 1);
  EXPECT_EQ(t.at(1, 2).category(), 2);
}

TEST(ProgressiveMergeTest, FdCanonicalizationCascadesAcrossFamilies) {
  // a -> c and c -> d chained: adopting c's frozen value changes the key
  // of the c -> d family, which the next round must re-canonicalize.
  Table t = CategoricalTable({{0, 0, 1, 5},   // frozen: a=0 -> c=1, c=1 -> d=5
                              {0, 0, 3, 9}});  // suffix: wrong c AND wrong d
  PrefixFdFamily ac;
  ac.rhs = 2;
  ac.lhs_sets = {{0}};
  PrefixFdFamily cd;
  cd.rhs = 3;
  cd.lhs_sets = {{2}};
  PrefixFrozenFdCanonicalize(&t, {ac, cd}, 1, nullptr);
  EXPECT_EQ(t.at(1, 2).category(), 1);
  EXPECT_EQ(t.at(1, 3).category(), 5);
}

}  // namespace
}  // namespace kamino
