// Tests for weight learning (Algorithm 5), parameter search (Algorithm 6)
// and the end-to-end pipeline (Algorithm 1).

#include <gtest/gtest.h>

#include <cmath>

#include "kamino/core/kamino.h"
#include "kamino/core/params.h"
#include "kamino/core/sequencing.h"
#include "kamino/core/weights.h"
#include "kamino/data/generators.h"
#include "kamino/dc/violations.h"

namespace kamino {
namespace {

TEST(WeightLearningTest, ViolatedDcGetsSmallerWeight) {
  // Build data where DC A holds and DC B is heavily violated.
  Schema schema({
      Attribute::MakeCategorical("x", {"a", "b"}),
      Attribute::MakeCategorical("y", {"p", "q"}),
      Attribute::MakeNumeric("u", 0, 9, 10),
      Attribute::MakeNumeric("v", 0, 9, 10),
  });
  Rng data_rng(3);
  Table table(schema);
  for (int i = 0; i < 300; ++i) {
    const int x = static_cast<int>(data_rng.UniformInt(0, 1));
    table.AppendRowUnchecked(
        {Value::Categorical(x), Value::Categorical(x),  // FD x->y holds
         Value::Numeric(static_cast<double>(data_rng.UniformInt(0, 9))),
         Value::Numeric(static_cast<double>(data_rng.UniformInt(0, 9)))});
  }
  auto constraints =
      ParseConstraints({"!(t1.x == t2.x & t1.y != t2.y)",
                        "!(t1.u > t2.u & t1.v < t2.v)"},  // random: violated
                       {false, false}, schema)
          .TakeValue();
  KaminoOptions options;
  options.non_private = true;  // isolate the fitting behaviour from noise
  options.weight_sample = 60;
  options.weight_iterations = 30;
  std::vector<size_t> sequence = SequenceSchema(schema, constraints);
  Rng rng(5);
  auto weights = LearnDcWeights(table, constraints, sequence, options, &rng);
  ASSERT_TRUE(weights.ok()) << weights.status();
  // The satisfied FD keeps a large weight; the violated order DC shrinks.
  EXPECT_GT(weights.value()[0], weights.value()[1]);
  EXPECT_LT(weights.value()[1], 4.0);
}

TEST(WeightLearningTest, HardDcsKeepEffectiveWeight) {
  BenchmarkDataset ds = MakeAdultLike(100, 1);
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema()).TakeValue();
  KaminoOptions options;
  options.weight_sample = 40;
  Rng rng(2);
  std::vector<size_t> sequence =
      SequenceSchema(ds.table.schema(), constraints);
  auto weights =
      LearnDcWeights(ds.table, constraints, sequence, options, &rng);
  ASSERT_TRUE(weights.ok());
  for (size_t l = 0; l < constraints.size(); ++l) {
    if (constraints[l].hard) {
      EXPECT_DOUBLE_EQ(weights.value()[l], constraints[l].EffectiveWeight());
    }
  }
}

TEST(ParamSearchTest, FitsBudget) {
  BenchmarkDataset ds = MakeBr2000Like(500, 2);
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema()).TakeValue();
  std::vector<size_t> sequence =
      SequenceSchema(ds.table.schema(), constraints);
  KaminoOptions base;
  base.iterations = 100;
  for (double epsilon : {0.1, 0.5, 1.0, 2.0}) {
    auto options = SearchDpParameters(epsilon, 1e-6, ds.table.schema(),
                                      sequence, ds.table.num_rows(),
                                      /*learn_weights=*/true, base);
    ASSERT_TRUE(options.ok()) << options.status();
    auto units = ProbabilisticDataModel::PlanUnits(ds.table.schema(), sequence,
                                                   options.value());
    size_t hist = 0;
    for (const auto& u : units) {
      if (u.kind == ModelUnit::Kind::kHistogram) ++hist;
    }
    const double eps = PrivacyCostEpsilon(options.value(), ds.table.num_rows(),
                                          hist, units.size() - hist,
                                          /*learn_weights=*/true, 1e-6);
    EXPECT_LE(eps, epsilon + 1e-9) << "budget " << epsilon;
  }
}

TEST(ParamSearchTest, SmallerBudgetMeansMoreNoiseOrFewerIterations) {
  BenchmarkDataset ds = MakeTpchLike(400, 3);
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema()).TakeValue();
  std::vector<size_t> sequence =
      SequenceSchema(ds.table.schema(), constraints);
  KaminoOptions base;
  base.iterations = 100;
  auto tight = SearchDpParameters(0.1, 1e-6, ds.table.schema(), sequence,
                                  400, false, base).TakeValue();
  auto loose = SearchDpParameters(4.0, 1e-6, ds.table.schema(), sequence,
                                  400, false, base).TakeValue();
  EXPECT_GE(tight.sigma_d, loose.sigma_d);
  EXPECT_LE(tight.iterations, loose.iterations);
}

TEST(ParamSearchTest, RejectsBadBudget) {
  Schema schema({Attribute::MakeCategorical("a", {"x", "y"})});
  KaminoOptions base;
  EXPECT_FALSE(
      SearchDpParameters(-1.0, 1e-6, schema, {0}, 100, false, base).ok());
  EXPECT_FALSE(
      SearchDpParameters(1.0, 0.0, schema, {0}, 100, false, base).ok());
}

TEST(RunKaminoTest, EndToEndPrivateRunRespectsBudget) {
  BenchmarkDataset ds = MakeTpchLike(250, 4);
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema()).TakeValue();
  KaminoConfig config;
  config.epsilon = 1.0;
  config.delta = 1e-6;
  config.options.seed = 7;
  config.options.iterations = 30;
  auto result = RunKamino(ds.table, constraints, config);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().synthetic.num_rows(), ds.table.num_rows());
  EXPECT_LE(result.value().epsilon_spent, 1.0 + 1e-9);
  EXPECT_EQ(result.value().sequence.size(), ds.table.schema().size());
  EXPECT_EQ(result.value().dc_weights.size(), constraints.size());
  EXPECT_GT(result.value().timings.Total(), 0.0);
}

TEST(RunKaminoTest, NonPrivateRunReportsInfiniteEpsilon) {
  BenchmarkDataset ds = MakeTpchLike(150, 5);
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema()).TakeValue();
  KaminoConfig config;
  config.options.non_private = true;
  config.options.iterations = 20;
  auto result = RunKamino(ds.table, constraints, config);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(std::isinf(result.value().epsilon_spent));
}

TEST(RunKaminoTest, OutputRowsOverride) {
  BenchmarkDataset ds = MakeTpchLike(100, 6);
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema()).TakeValue();
  KaminoConfig config;
  config.options.non_private = true;
  config.options.iterations = 10;
  config.output_rows = 37;
  auto result = RunKamino(ds.table, constraints, config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().synthetic.num_rows(), 37u);
}

TEST(RunKaminoTest, RejectsEmptyInput) {
  Schema schema({Attribute::MakeCategorical("a", {"x"})});
  Table empty(schema);
  EXPECT_FALSE(RunKamino(empty, {}, KaminoConfig()).ok());
}

TEST(RunKaminoTest, HardDcsPreservedOnTpch) {
  // The headline behaviour (Table 2): every FK-induced hard FD of the
  // TPC-H-like workload survives synthesis untouched.
  BenchmarkDataset ds = MakeTpchLike(200, 8);
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema()).TakeValue();
  KaminoConfig config;
  config.options.non_private = true;
  config.options.iterations = 40;
  config.options.seed = 3;
  auto result = RunKamino(ds.table, constraints, config);
  ASSERT_TRUE(result.ok());
  for (const WeightedConstraint& wc : constraints) {
    EXPECT_EQ(CountViolations(wc.dc, result.value().synthetic), 0)
        << wc.dc.ToString(ds.table.schema());
  }
}

}  // namespace
}  // namespace kamino
