#include "kamino/core/model.h"

#include <gtest/gtest.h>

#include <numeric>

#include "kamino/data/generators.h"

namespace kamino {
namespace {

Schema SmallSchema() {
  return Schema({
      Attribute::MakeCategorical("b1", {"0", "1"}),
      Attribute::MakeCategorical("b2", {"0", "1"}),
      Attribute::MakeCategorical("b3", {"0", "1"}),
      Attribute::MakeCategorical("huge", []{
        std::vector<std::string> labels;
        for (int i = 0; i < 200; ++i) labels.push_back("v" + std::to_string(i));
        return labels;
      }()),
      Attribute::MakeNumeric("num", 0, 10, 11),
  });
}

std::vector<size_t> Identity(size_t k) {
  std::vector<size_t> seq(k);
  std::iota(seq.begin(), seq.end(), 0);
  return seq;
}

TEST(PlanUnitsTest, GroupsSmallCategoricalsAndFallsBackLargeDomains) {
  Schema schema = SmallSchema();
  KaminoOptions options;
  options.enable_grouping = true;
  options.group_domain_threshold = 8;  // groups the three binaries (2*2*2)
  options.large_domain_threshold = 96;
  auto units = ProbabilisticDataModel::PlanUnits(schema, Identity(5), options);
  ASSERT_EQ(units.size(), 3u);
  // Unit 0: grouped binaries as one histogram (first unit is histogram).
  EXPECT_EQ(units[0].kind, ModelUnit::Kind::kHistogram);
  EXPECT_EQ(units[0].attrs, (std::vector<size_t>{0, 1, 2}));
  // Unit 1: "huge" exceeds the large-domain threshold -> histogram fallback.
  EXPECT_EQ(units[1].kind, ModelUnit::Kind::kHistogram);
  EXPECT_EQ(units[1].attrs, std::vector<size_t>{3});
  // Unit 2: numeric discriminative with all prior attrs as context.
  EXPECT_EQ(units[2].kind, ModelUnit::Kind::kDiscriminative);
  EXPECT_EQ(units[2].context.size(), 4u);
}

TEST(PlanUnitsTest, GroupingDisabledKeepsSingletons) {
  Schema schema = SmallSchema();
  KaminoOptions options;
  options.enable_grouping = false;
  auto units = ProbabilisticDataModel::PlanUnits(schema, Identity(5), options);
  EXPECT_EQ(units.size(), 5u);
  for (const auto& u : units) EXPECT_EQ(u.attrs.size(), 1u);
}

TEST(PlanUnitsTest, PositionsArePackedAndOrdered) {
  Schema schema = SmallSchema();
  KaminoOptions options;
  options.group_domain_threshold = 4;  // groups b1,b2 only
  auto units = ProbabilisticDataModel::PlanUnits(schema, Identity(5), options);
  size_t expected = 0;
  for (const auto& u : units) {
    EXPECT_EQ(u.start_position, expected);
    expected += u.attrs.size();
  }
  EXPECT_EQ(expected, 5u);
}

TEST(ModelUnitTest, DecodeJointIndexRoundTrip) {
  ModelUnit unit;
  unit.radix = {2, 3, 2};
  for (size_t idx = 0; idx < 12; ++idx) {
    std::vector<int32_t> vals = unit.DecodeJointIndex(idx);
    size_t back = 0;
    for (size_t i = 0; i < vals.size(); ++i) {
      back = back * unit.radix[i] + static_cast<size_t>(vals[i]);
    }
    EXPECT_EQ(back, idx);
  }
}

TEST(TrainModelTest, TrainsAllUnitsNonPrivate) {
  BenchmarkDataset ds = MakeBr2000Like(150, 9);
  KaminoOptions options;
  options.non_private = true;
  options.iterations = 10;
  options.seed = 1;
  Rng rng(1);
  auto model = ProbabilisticDataModel::Train(ds.table, Identity(14), options,
                                             &rng);
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_EQ(model.value().num_histogram_units() +
                model.value().num_discriminative_units(),
            model.value().units().size());
  // Histogram distributions normalize.
  for (const ModelUnit& u : model.value().units()) {
    if (u.kind != ModelUnit::Kind::kHistogram) {
      ASSERT_NE(u.model, nullptr);
      continue;
    }
    double total = 0.0;
    for (double p : u.distribution) total += p;
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(TrainModelTest, ParallelTrainingProducesSameUnitStructure) {
  BenchmarkDataset ds = MakeBr2000Like(120, 10);
  KaminoOptions options;
  options.non_private = true;
  options.iterations = 5;
  options.parallel_training = true;
  Rng rng(2);
  auto model =
      ProbabilisticDataModel::Train(ds.table, Identity(14), options, &rng);
  ASSERT_TRUE(model.ok()) << model.status();
  for (const ModelUnit& u : model.value().units()) {
    if (u.kind == ModelUnit::Kind::kDiscriminative) {
      EXPECT_NE(u.private_store, nullptr);
      EXPECT_NE(u.model, nullptr);
    }
  }
}

TEST(TrainModelTest, RejectsEmptyData) {
  Schema schema = SmallSchema();
  Table empty(schema);
  KaminoOptions options;
  Rng rng(1);
  EXPECT_FALSE(
      ProbabilisticDataModel::Train(empty, Identity(5), options, &rng).ok());
}

TEST(TrainModelTest, RejectsBadSequence) {
  BenchmarkDataset ds = MakeTpchLike(50, 2);
  KaminoOptions options;
  Rng rng(1);
  EXPECT_FALSE(
      ProbabilisticDataModel::Train(ds.table, {0, 1}, options, &rng).ok());
}

}  // namespace
}  // namespace kamino
