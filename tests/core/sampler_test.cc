#include "kamino/core/sampler.h"

#include <gtest/gtest.h>

#include "kamino/core/sequencing.h"
#include "kamino/dc/violations.h"

namespace kamino {
namespace {

// A compact FD workload: dept determines floor; truth has zero violations.
struct Workload {
  Table table;
  std::vector<WeightedConstraint> constraints;
  std::vector<size_t> sequence;
};

Workload MakeFdWorkload(size_t n, uint64_t seed) {
  Schema schema({
      Attribute::MakeCategorical("dept", {"d0", "d1", "d2", "d3"}),
      Attribute::MakeCategorical("floor", {"f0", "f1", "f2", "f3"}),
      Attribute::MakeNumeric("salary", 0, 100, 101),
  });
  Rng rng(seed);
  Table table(schema);
  for (size_t i = 0; i < n; ++i) {
    const int dept = static_cast<int>(rng.UniformInt(0, 3));
    table.AppendRowUnchecked(
        {Value::Categorical(dept), Value::Categorical(dept),
         Value::Numeric(20.0 * dept + rng.Uniform(0, 10))});
  }
  Workload w;
  w.table = std::move(table);
  w.constraints =
      ParseConstraints({"!(t1.dept == t2.dept & t1.floor != t2.floor)"},
                       {true}, schema)
          .TakeValue();
  w.sequence = SequenceSchema(schema, w.constraints);
  return w;
}

ProbabilisticDataModel TrainFor(const Workload& w, KaminoOptions options) {
  Rng rng(options.seed);
  auto model =
      ProbabilisticDataModel::Train(w.table, w.sequence, options, &rng);
  EXPECT_TRUE(model.ok()) << model.status();
  return std::move(model).TakeValue();
}

KaminoOptions NonPrivateOptions() {
  KaminoOptions options;
  options.non_private = true;
  options.iterations = 150;
  options.enable_grouping = false;
  options.seed = 3;
  return options;
}

TEST(SamplerTest, ConstraintAwareKeepsHardFdClean) {
  Workload w = MakeFdWorkload(200, 1);
  KaminoOptions options = NonPrivateOptions();
  ProbabilisticDataModel model = TrainFor(w, options);
  Rng rng(11);
  auto out = Synthesize(model, w.constraints, 200, options, &rng);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out.value().num_rows(), 200u);
  EXPECT_EQ(CountViolations(w.constraints[0].dc, out.value()), 0);
}

TEST(SamplerTest, RandSamplingAblationViolatesMore) {
  Workload w = MakeFdWorkload(200, 2);
  KaminoOptions options = NonPrivateOptions();
  // Inject noise by shortening training so the i.i.d. sampler makes
  // mistakes the DC factor would veto.
  options.iterations = 5;
  ProbabilisticDataModel model = TrainFor(w, options);

  Rng rng_aware(7), rng_iid(7);
  KaminoOptions aware = options;
  auto constrained = Synthesize(model, w.constraints, 300, aware, &rng_aware);
  KaminoOptions iid = options;
  iid.constraint_aware_sampling = false;
  auto unconstrained = Synthesize(model, w.constraints, 300, iid, &rng_iid);
  ASSERT_TRUE(constrained.ok());
  ASSERT_TRUE(unconstrained.ok());
  EXPECT_LT(CountViolations(w.constraints[0].dc, constrained.value()),
            CountViolations(w.constraints[0].dc, unconstrained.value()));
  EXPECT_EQ(CountViolations(w.constraints[0].dc, constrained.value()), 0);
}

TEST(SamplerTest, RowsStayInsideDomains) {
  Workload w = MakeFdWorkload(100, 3);
  KaminoOptions options = NonPrivateOptions();
  options.iterations = 20;
  ProbabilisticDataModel model = TrainFor(w, options);
  Rng rng(5);
  Table out = Synthesize(model, w.constraints, 150, options, &rng).TakeValue();
  for (size_t r = 0; r < out.num_rows(); ++r) {
    for (size_t c = 0; c < out.num_columns(); ++c) {
      EXPECT_TRUE(out.schema().attribute(c).Contains(out.at(r, c)));
    }
  }
}

TEST(SamplerTest, FdFastPathMatchesScoring) {
  Workload w = MakeFdWorkload(150, 4);
  KaminoOptions options = NonPrivateOptions();
  ProbabilisticDataModel model = TrainFor(w, options);

  KaminoOptions fast = options;
  fast.enable_fd_fast_path = true;
  Rng rng(9);
  SynthesisTelemetry telemetry;
  auto out = Synthesize(model, w.constraints, 200, fast, &rng, &telemetry);
  ASSERT_TRUE(out.ok());
  EXPECT_GT(telemetry.fd_fast_path_hits, 0);
  EXPECT_EQ(CountViolations(w.constraints[0].dc, out.value()), 0);
}

TEST(SamplerTest, AcceptRejectModeRuns) {
  Workload w = MakeFdWorkload(120, 5);
  KaminoOptions options = NonPrivateOptions();
  options.iterations = 40;
  ProbabilisticDataModel model = TrainFor(w, options);
  KaminoOptions ar = options;
  ar.accept_reject = true;
  ar.ar_max_tries = 50;
  Rng rng(13);
  SynthesisTelemetry telemetry;
  auto out = Synthesize(model, w.constraints, 150, ar, &rng, &telemetry);
  ASSERT_TRUE(out.ok());
  EXPECT_GT(telemetry.ar_proposals, 0);
  EXPECT_EQ(out.value().num_rows(), 150u);
}

TEST(SamplerTest, McmcResamplingRunsAndKeepsConsistency) {
  Workload w = MakeFdWorkload(120, 6);
  KaminoOptions options = NonPrivateOptions();
  ProbabilisticDataModel model = TrainFor(w, options);
  KaminoOptions mcmc = options;
  mcmc.mcmc_resamples = 60;
  Rng rng(15);
  SynthesisTelemetry telemetry;
  auto out = Synthesize(model, w.constraints, 120, mcmc, &rng, &telemetry);
  ASSERT_TRUE(out.ok());
  EXPECT_GT(telemetry.mcmc_resamples, 0);
  EXPECT_EQ(CountViolations(w.constraints[0].dc, out.value()), 0);
}

TEST(SamplerTest, SoftDcWeightControlsViolations) {
  // With weight 0 the DC factor is inert; with a large weight violations
  // are suppressed. Monotonicity in the weight.
  Workload w = MakeFdWorkload(150, 7);
  KaminoOptions options = NonPrivateOptions();
  options.iterations = 5;  // weak model: violations available to suppress
  ProbabilisticDataModel model = TrainFor(w, options);

  auto violations_with_weight = [&](double weight) {
    std::vector<WeightedConstraint> constraints = w.constraints;
    constraints[0].hard = false;
    constraints[0].weight = weight;
    Rng rng(21);
    Table out =
        Synthesize(model, constraints, 300, options, &rng).TakeValue();
    return CountViolations(constraints[0].dc, out);
  };
  const int64_t loose = violations_with_weight(0.0);
  const int64_t tight = violations_with_weight(10.0);
  EXPECT_LE(tight, loose);
}

}  // namespace
}  // namespace kamino
