// Tests for the shard-parallel synthesis engine: the (seed, num_shards)
// determinism contract, exactness of the hard-FD reconciliation, and the
// guarantee that num_shards=1 reproduces the sequential paper-semantics
// sampler bit for bit (asserted against a digest captured from the
// pre-refactor sequential implementation).

#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>
#include <string>

#include "kamino/common/logging.h"
#include "kamino/core/kamino.h"
#include "kamino/core/sequencing.h"
#include "kamino/data/generators.h"
#include "kamino/dc/violations.h"
#include "kamino/obs/metrics.h"
#include "kamino/obs/trace.h"
#include "kamino/runtime/thread_pool.h"

namespace kamino {
namespace {

/// Restores the global thread budget when a test scope ends.
class ScopedNumThreads {
 public:
  explicit ScopedNumThreads(size_t n) { runtime::SetGlobalNumThreads(n); }
  ~ScopedNumThreads() { runtime::SetGlobalNumThreads(0); }
};

/// FNV-1a over an exact textual rendering of every cell (17 significant
/// digits round-trips doubles), so equal digests mean bit-identical
/// tables.
uint64_t TableDigest(const Table& t) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](const char* s) {
    for (; *s; ++s) {
      h ^= static_cast<unsigned char>(*s);
      h *= 1099511628211ull;
    }
  };
  for (size_t r = 0; r < t.num_rows(); ++r) {
    for (size_t c = 0; c < t.num_columns(); ++c) {
      const Value& v = t.at(r, c);
      char buf[64];
      if (v.is_numeric()) {
        std::snprintf(buf, sizeof(buf), "n:%.17g;", v.numeric());
      } else {
        std::snprintf(buf, sizeof(buf), "c:%d;", v.category());
      }
      mix(buf);
    }
  }
  return h;
}

void ExpectSameTable(const Table& a, const Table& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_columns(), b.num_columns());
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.num_columns(); ++c) {
      ASSERT_TRUE(a.at(r, c) == b.at(r, c))
          << "cell (" << r << ", " << c << ") diverged: "
          << a.CellToString(r, c) << " vs " << b.CellToString(r, c);
    }
  }
}

TEST(ShardedSamplerTest, NumShardsOneMatchesPreRefactorSequentialSampler) {
  // Digest of this exact scenario captured from the sequential sampler
  // BEFORE the shard refactor (same compiler/libstdc++ as CI). If this
  // fails after an *intentional* sampler or training change, re-capture:
  // the failure message prints the new digest.
  ScopedNumThreads threads(1);
  BenchmarkDataset ds = MakeAdultLike(120, 7);
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema()).TakeValue();
  auto sequence = SequenceSchema(ds.table.schema(), constraints);
  KaminoOptions options;
  options.non_private = true;
  options.iterations = 12;
  options.mcmc_resamples = 48;
  options.seed = 31;
  ASSERT_EQ(options.num_shards, 1u);  // the default is paper semantics
  Rng rng(31);
  auto model =
      ProbabilisticDataModel::Train(ds.table, sequence, options, &rng)
          .TakeValue();
  Rng srng(17);
  SynthesisTelemetry telemetry;
  Table out = Synthesize(model, constraints, 150, options, &srng, &telemetry)
                  .TakeValue();
  EXPECT_EQ(telemetry.num_shards, 1u);
  EXPECT_EQ(telemetry.merge_resamples, 0);
  EXPECT_EQ(telemetry.merge_fd_rewrites, 0);
  char actual[32];
  std::snprintf(actual, sizeof(actual), "0x%016" PRIx64, TableDigest(out));
  EXPECT_EQ(std::string(actual), "0x214d31f811dbdd0f")
      << "sequential sampler output changed";
}

TEST(ShardedSamplerTest, GoldenDigestUnchangedWithTracingOn) {
  // The observability invariant: recording spans and metrics never
  // influences control flow, so the exact golden scenario above must
  // produce the same digest with tracing + metrics enabled — at one
  // thread and at four (events interleave differently; output must not).
  obs::TraceRecorder::Global().SetEnabled(true);
  obs::MetricsRegistry::Global().SetEnabled(true);
  BenchmarkDataset ds = MakeAdultLike(120, 7);
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema()).TakeValue();
  auto sequence = SequenceSchema(ds.table.schema(), constraints);
  KaminoOptions options;
  options.non_private = true;
  options.iterations = 12;
  options.mcmc_resamples = 48;
  options.seed = 31;
  for (const size_t num_threads : {size_t{1}, size_t{4}}) {
    ScopedNumThreads threads(num_threads);
    Rng rng(31);
    auto model =
        ProbabilisticDataModel::Train(ds.table, sequence, options, &rng)
            .TakeValue();
    Rng srng(17);
    Table out = Synthesize(model, constraints, 150, options, &srng).TakeValue();
    char actual[32];
    std::snprintf(actual, sizeof(actual), "0x%016" PRIx64, TableDigest(out));
    EXPECT_EQ(std::string(actual), "0x214d31f811dbdd0f")
        << "tracing changed the output at num_threads=" << num_threads;
  }
  // The run actually recorded something (the invariant is about output,
  // not about tracing being a no-op).
  EXPECT_FALSE(obs::TraceRecorder::Global().Snapshot().empty());
  EXPECT_GT(
      obs::MetricsRegistry::Global().counter("kamino.sampler.runs")->Value(),
      0);
  obs::TraceRecorder::Global().SetEnabled(false);
  obs::TraceRecorder::Global().Clear();
  obs::MetricsRegistry::Global().SetEnabled(false);
  obs::MetricsRegistry::Global().Reset();
}

TEST(ShardedSamplerTest, GoldenDigestGridAcrossThreadsAndShards) {
  // The columnar-core regression grid: the golden scenario at every
  // num_threads in {1, 4} x num_shards in {1, 2, 4}. Output is a pure
  // function of (seed, num_shards) — the digest may differ per shard
  // count but must be thread-independent within one, and shards=1 must
  // still reproduce the pre-refactor sequential digest exactly.
  BenchmarkDataset ds = MakeAdultLike(120, 7);
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema()).TakeValue();
  auto sequence = SequenceSchema(ds.table.schema(), constraints);
  for (const size_t num_shards : {size_t{1}, size_t{2}, size_t{4}}) {
    std::string baseline;
    for (const size_t num_threads : {size_t{1}, size_t{4}}) {
      ScopedNumThreads threads(num_threads);
      KaminoOptions options;
      options.non_private = true;
      options.iterations = 12;
      options.mcmc_resamples = 48;
      options.seed = 31;
      options.num_shards = num_shards;
      Rng rng(31);
      auto model =
          ProbabilisticDataModel::Train(ds.table, sequence, options, &rng)
              .TakeValue();
      Rng srng(17);
      Table out =
          Synthesize(model, constraints, 150, options, &srng).TakeValue();
      char actual[32];
      std::snprintf(actual, sizeof(actual), "0x%016" PRIx64, TableDigest(out));
      if (num_threads == 1) {
        baseline = actual;
      } else {
        EXPECT_EQ(std::string(actual), baseline)
            << "thread budget changed the output at num_shards="
            << num_shards;
      }
    }
    if (num_shards == 1) {
      EXPECT_EQ(baseline, "0x214d31f811dbdd0f")
          << "sequential golden digest drifted";
    }
  }
}

/// Full pipeline on a mixed hard-DC workload (FD + order DC) at the given
/// thread and shard budget.
KaminoResult RunPipeline(size_t num_threads, size_t num_shards) {
  BenchmarkDataset ds = MakeAdultLike(100, 13);
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema());
  KAMINO_CHECK(constraints.ok());
  KaminoConfig config;
  config.options.non_private = true;
  config.options.iterations = 8;
  config.options.mcmc_resamples = 40;
  config.options.seed = 77;
  config.options.num_threads = num_threads;
  config.options.num_shards = num_shards;
  auto result = RunKamino(ds.table, constraints.value(), config);
  KAMINO_CHECK(result.ok()) << result.status();
  runtime::SetGlobalNumThreads(0);
  return std::move(result).TakeValue();
}

TEST(ShardedSamplerTest, OutputPureFunctionOfSeedAndShardsAcrossThreads) {
  // The acceptance grid: num_shards in {1, 4} x num_threads in {1, 4} —
  // within a shard count, thread budget must not change a single bit.
  const KaminoResult s1_t1 = RunPipeline(1, 1);
  const KaminoResult s1_t4 = RunPipeline(4, 1);
  const KaminoResult s4_t1 = RunPipeline(1, 4);
  const KaminoResult s4_t4 = RunPipeline(4, 4);

  EXPECT_EQ(s1_t1.telemetry.num_shards, 1u);
  EXPECT_EQ(s4_t1.telemetry.num_shards, 4u);
  EXPECT_EQ(s4_t4.timings.num_shards, 4u);
  ExpectSameTable(s1_t1.synthetic, s1_t4.synthetic);
  ExpectSameTable(s4_t1.synthetic, s4_t4.synthetic);
}

TEST(ShardedSamplerTest, MergedOutputSatisfiesHardFdsExactly) {
  const KaminoResult sharded = RunPipeline(4, 4);
  BenchmarkDataset ds = MakeAdultLike(100, 13);
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema()).TakeValue();
  for (const WeightedConstraint& wc : constraints) {
    std::vector<size_t> lhs;
    size_t rhs = 0;
    if (wc.hard && wc.dc.AsFd(&lhs, &rhs)) {
      EXPECT_EQ(CountViolations(wc.dc, sharded.synthetic), 0)
          << "cross-shard FD group maps one LHS to two RHS values";
    }
  }
  // The shard merge actually ran and its timing was surfaced.
  EXPECT_EQ(sharded.telemetry.num_shards, 4u);
  EXPECT_GE(sharded.timings.shard_merge, 0.0);
  EXPECT_LE(sharded.timings.shard_merge, sharded.timings.sampling + 1e-9);
}

TEST(ShardedSamplerTest, TaxWorkloadHardDcsExactAfterMerge) {
  // Tax has 6 hard DCs, including two FDs sharing an RHS attribute
  // (areacode -> state, zip -> state: exercises the joint component
  // canonicalization; per-DC sweeps would oscillate) and a per-state
  // salary/rate order dependency (exercises grouped rank alignment).
  BenchmarkDataset ds = MakeTaxLike(100, 13);
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema()).TakeValue();
  KaminoConfig config;
  config.options.non_private = true;
  config.options.iterations = 8;
  config.options.seed = 77;
  config.options.num_shards = 4;
  auto result = RunKamino(ds.table, constraints, config);
  ASSERT_TRUE(result.ok()) << result.status();
  runtime::SetGlobalNumThreads(0);
  for (size_t l = 0; l < constraints.size(); ++l) {
    EXPECT_EQ(CountViolations(constraints[l].dc, result.value().synthetic), 0)
        << "hard DC " << l << " ("
        << constraints[l].dc.ToString(ds.table.schema())
        << ") violated after the shard merge";
  }
  // The grouped order DC was reconciled by rank alignment, not luck.
  EXPECT_GT(result.value().telemetry.merge_cross_violations, 0);
}

TEST(ShardedSamplerTest, ShardCountZeroUsesOneShardPerWorker) {
  const KaminoResult r = RunPipeline(3, 0);
  EXPECT_EQ(r.telemetry.num_shards, 3u);
  EXPECT_EQ(r.timings.num_shards, 3u);
}

TEST(ShardedSamplerTest, ShardedRunsAreReproducible) {
  // Same (seed, num_shards) twice => identical output (no hidden global
  // state leaks between runs).
  const KaminoResult a = RunPipeline(4, 4);
  const KaminoResult b = RunPipeline(4, 4);
  ExpectSameTable(a.synthetic, b.synthetic);
  EXPECT_EQ(a.telemetry.merge_cross_violations,
            b.telemetry.merge_cross_violations);
  EXPECT_EQ(a.telemetry.merge_resamples, b.telemetry.merge_resamples);
  EXPECT_EQ(a.telemetry.merge_fd_rewrites, b.telemetry.merge_fd_rewrites);
}

TEST(ShardedSamplerTest, AdaptiveMergeBudgetScalesWithConflicts) {
  BenchmarkDataset ds = MakeAdultLike(100, 13);
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema()).TakeValue();
  auto run = [&](bool adaptive, size_t fixed_budget) {
    KaminoConfig config;
    config.options.non_private = true;
    config.options.iterations = 8;
    config.options.mcmc_resamples = 40;
    config.options.seed = 77;
    config.options.num_shards = 4;
    config.options.adaptive_merge_budget = adaptive;
    config.options.shard_merge_resamples = fixed_budget;
    auto result = RunKamino(ds.table, constraints, config);
    KAMINO_CHECK(result.ok()) << result.status();
    runtime::SetGlobalNumThreads(0);
    return std::move(result).TakeValue();
  };
  // Fixed override: the resolved budget is exactly the knob.
  const KaminoResult fixed = run(/*adaptive=*/false, 24);
  EXPECT_EQ(fixed.telemetry.merge_budget, 24);
  EXPECT_EQ(fixed.telemetry.merge_early_stops, 0);
  // Adaptive: the budget is derived from the observed conflict set, and
  // the run stays deterministic (same seed + shards => same table and
  // same resolved budget).
  const KaminoResult a = run(/*adaptive=*/true, 24);
  EXPECT_EQ(a.telemetry.merge_budget,
            16 + 2 * a.telemetry.merge_conflict_rows);
  const KaminoResult b = run(/*adaptive=*/true, 24);
  ExpectSameTable(a.synthetic, b.synthetic);
  EXPECT_EQ(a.telemetry.merge_budget, b.telemetry.merge_budget);
  EXPECT_EQ(a.telemetry.merge_early_stops, b.telemetry.merge_early_stops);
  // Soft-DC merge telemetry is populated (Adult has no soft DCs, so the
  // delta is exactly zero and no measurement time is booked).
  EXPECT_DOUBLE_EQ(fixed.telemetry.merge_soft_penalty_delta, 0.0);
}

TEST(ShardedSamplerTest, SoftDcMergeTelemetryMeasuresPenaltyDelta) {
  // Adult DCs flipped soft: the merge telemetry must report the weighted
  // soft-DC penalty delta of the reconciliation (any sign) and book the
  // measurement time.
  BenchmarkDataset ds = MakeAdultLike(100, 13);
  std::vector<bool> soft(ds.hardness.size(), false);
  auto constraints =
      ParseConstraints(ds.dc_specs, soft, ds.table.schema()).TakeValue();
  KaminoConfig config;
  config.options.non_private = true;
  config.options.iterations = 8;
  config.options.seed = 77;
  config.options.num_shards = 4;
  auto result = RunKamino(ds.table, constraints, config);
  ASSERT_TRUE(result.ok()) << result.status();
  runtime::SetGlobalNumThreads(0);
  EXPECT_GT(result.value().telemetry.merge_soft_seconds, 0.0);
  // Deterministic: the delta is a pure function of (seed, num_shards).
  auto again = RunKamino(ds.table, constraints, config);
  ASSERT_TRUE(again.ok()) << again.status();
  runtime::SetGlobalNumThreads(0);
  EXPECT_DOUBLE_EQ(result.value().telemetry.merge_soft_penalty_delta,
                   again.value().telemetry.merge_soft_penalty_delta);
}

TEST(ShardedSamplerTest, SoftPenaltyMergeOrderIsDeterministicPerFlag) {
  // The reconciliation sweep orders conflict rows by their weighted
  // soft-DC penalty contribution (soft_penalty_merge_order, default on),
  // with the pre-session-API row-order sweep behind the flag. Both
  // orders must be deterministic, spend the same adaptive budget, and
  // coincide exactly when the run has no soft DCs.
  BenchmarkDataset ds = MakeAdultLike(100, 13);
  auto run = [&](bool ordered, bool all_soft) {
    std::vector<bool> hardness = ds.hardness;
    if (all_soft) hardness.assign(ds.hardness.size(), false);
    auto constraints =
        ParseConstraints(ds.dc_specs, hardness, ds.table.schema()).TakeValue();
    KaminoConfig config;
    config.options.non_private = true;
    config.options.iterations = 8;
    config.options.seed = 77;
    config.options.num_shards = 4;
    config.options.soft_penalty_merge_order = ordered;
    auto result = RunKamino(ds.table, constraints, config);
    KAMINO_CHECK(result.ok()) << result.status();
    runtime::SetGlobalNumThreads(0);
    return std::move(result).TakeValue();
  };
  // No soft DCs: the contribution sort is a no-op by construction, so the
  // flag must not change a bit (this is the golden-digest-compatible
  // configuration).
  const KaminoResult hard_on = run(/*ordered=*/true, /*all_soft=*/false);
  const KaminoResult hard_off = run(/*ordered=*/false, /*all_soft=*/false);
  ExpectSameTable(hard_on.synthetic, hard_off.synthetic);

  // All-soft workload: each ordering is individually reproducible and
  // spends the same adaptive budget (the conflict set is order-independent
  // — only the sweep sequence changes).
  const KaminoResult soft_a = run(/*ordered=*/true, /*all_soft=*/true);
  const KaminoResult soft_b = run(/*ordered=*/true, /*all_soft=*/true);
  ExpectSameTable(soft_a.synthetic, soft_b.synthetic);
  const KaminoResult soft_row = run(/*ordered=*/false, /*all_soft=*/true);
  EXPECT_EQ(soft_a.telemetry.merge_budget, soft_row.telemetry.merge_budget);
  EXPECT_EQ(soft_a.telemetry.merge_conflict_rows,
            soft_row.telemetry.merge_conflict_rows);
}

TEST(ShardedSamplerTest, ShardCountIsClampedToRows) {
  BenchmarkDataset ds = MakeTpchLike(60, 21);
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema()).TakeValue();
  KaminoConfig config;
  config.options.non_private = true;
  config.options.iterations = 5;
  config.options.seed = 3;
  config.options.num_shards = 1000;  // far more shards than rows
  config.output_rows = 12;
  auto result = RunKamino(ds.table, constraints, config);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().synthetic.num_rows(), 12u);
  EXPECT_EQ(result.value().telemetry.num_shards, 12u);
}

}  // namespace
}  // namespace kamino
