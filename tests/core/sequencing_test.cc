#include "kamino/core/sequencing.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "kamino/data/generators.h"

namespace kamino {
namespace {

Schema TestSchema() {
  return Schema({
      Attribute::MakeCategorical("big", {"a", "b", "c", "d", "e", "f"}),
      Attribute::MakeCategorical("small", {"x", "y"}),
      Attribute::MakeCategorical("mid", {"1", "2", "3"}),
      Attribute::MakeNumeric("num", 0, 100, 101),
  });
}

std::vector<WeightedConstraint> Parse(const std::vector<std::string>& specs,
                                      const Schema& schema) {
  std::vector<bool> hard(specs.size(), true);
  return ParseConstraints(specs, hard, schema).TakeValue();
}

size_t PositionOf(const std::vector<size_t>& sequence, size_t attr) {
  return std::find(sequence.begin(), sequence.end(), attr) - sequence.begin();
}

TEST(SequencingTest, FdLhsBeforeRhs) {
  Schema schema = TestSchema();
  // FD: big -> mid.
  auto constraints = Parse({"!(t1.big == t2.big & t1.mid != t2.mid)"}, schema);
  std::vector<size_t> seq = SequenceSchema(schema, constraints);
  ASSERT_EQ(seq.size(), 4u);
  EXPECT_LT(PositionOf(seq, 0), PositionOf(seq, 2));  // big before mid
}

TEST(SequencingTest, NoFdsOrdersByDomainSize) {
  Schema schema = TestSchema();
  std::vector<size_t> seq = SequenceSchema(schema, {});
  // small(2) < mid(3) < big(6) < num(101).
  EXPECT_EQ(seq, (std::vector<size_t>{1, 2, 0, 3}));
}

TEST(SequencingTest, NonFdDcsDoNotConstrainOrder) {
  Schema schema = TestSchema();
  auto constraints = Parse({"!(t1.num > t2.num & t1.mid != t2.mid)"}, schema);
  std::vector<size_t> seq = SequenceSchema(schema, constraints);
  EXPECT_EQ(seq.size(), 4u);  // still a valid permutation
}

TEST(SequencingTest, IsAlwaysAPermutation) {
  for (auto& ds : MakeAllBenchmarks(50, 3)) {
    auto constraints =
        ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema())
            .TakeValue();
    std::vector<size_t> seq = SequenceSchema(ds.table.schema(), constraints);
    std::vector<size_t> sorted = seq;
    std::sort(sorted.begin(), sorted.end());
    for (size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
  }
}

TEST(SequencingTest, AdultFdOrdering) {
  BenchmarkDataset ds = MakeAdultLike(50, 1);
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema()).TakeValue();
  std::vector<size_t> seq = SequenceSchema(ds.table.schema(), constraints);
  const size_t edu = ds.table.schema().IndexOf("edu").value();
  const size_t edu_num = ds.table.schema().IndexOf("edu_num").value();
  EXPECT_LT(PositionOf(seq, edu), PositionOf(seq, edu_num));
}

TEST(SequencingTest, RandomSequenceIsPermutation) {
  Schema schema = TestSchema();
  Rng rng(5);
  std::vector<size_t> seq = RandomSequence(schema, &rng);
  std::sort(seq.begin(), seq.end());
  EXPECT_EQ(seq, (std::vector<size_t>{0, 1, 2, 3}));
}

TEST(ActivationTest, DcActivatesAtMaxPosition) {
  Schema schema = TestSchema();
  auto constraints = Parse({"!(t1.big == t2.big & t1.mid != t2.mid)",
                            "!(t1.small == t2.small & t1.num != t2.num)"},
                           schema);
  // Sequence: small, big, mid, num.
  std::vector<size_t> sequence = {1, 0, 2, 3};
  auto active = ActivationPositions(sequence, constraints);
  ASSERT_EQ(active.size(), 4u);
  EXPECT_TRUE(active[0].empty());
  EXPECT_TRUE(active[1].empty());
  EXPECT_EQ(active[2], std::vector<size_t>{0});  // big&mid complete at pos 2
  EXPECT_EQ(active[3], std::vector<size_t>{1});  // small&num complete at pos 3
}

TEST(ActivationTest, UnaryDcActivatesAtItsAttribute) {
  Schema schema = TestSchema();
  auto constraints = Parse({"!(t1.num > 50)"}, schema);
  std::vector<size_t> sequence = {3, 0, 1, 2};
  auto active = ActivationPositions(sequence, constraints);
  EXPECT_EQ(active[0], std::vector<size_t>{0});
}

}  // namespace
}  // namespace kamino
