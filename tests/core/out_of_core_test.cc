// Tests for out-of-core synthesis (KaminoOptions::out_of_core): spilling
// frozen slices through src/kamino/store/ must not change a single
// sampled bit relative to the in-memory progressive merge at any thread
// or shard count, the sequential golden digest must survive the flag,
// hard DCs stay exact after every freeze, frozen rows are never
// re-scanned by the repair penalty kernel (the constant-memory
// contract, asserted by counters), residency stays bounded to ~2 shard
// widths, compressed chunks pass the spilled payload through, and
// cancellation mid-spill leaves no orphaned spill files.

#include <dirent.h>
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "kamino/common/logging.h"
#include "kamino/core/kamino.h"
#include "kamino/core/sequencing.h"
#include "kamino/data/chunk_codec.h"
#include "kamino/data/generators.h"
#include "kamino/dc/violations.h"
#include "kamino/runtime/thread_pool.h"

namespace kamino {
namespace {

class ScopedNumThreads {
 public:
  explicit ScopedNumThreads(size_t n) { runtime::SetGlobalNumThreads(n); }
  ~ScopedNumThreads() { runtime::SetGlobalNumThreads(0); }
};

/// FNV-1a over an exact textual rendering of every cell, so equal digests
/// mean bit-identical tables (same hash as ProgressiveMergeTest).
uint64_t TableDigest(const Table& t) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](const char* s) {
    for (; *s; ++s) {
      h ^= static_cast<unsigned char>(*s);
      h *= 1099511628211ull;
    }
  };
  for (size_t r = 0; r < t.num_rows(); ++r) {
    for (size_t c = 0; c < t.num_columns(); ++c) {
      const Value& v = t.at(r, c);
      char buf[64];
      if (v.is_numeric()) {
        std::snprintf(buf, sizeof(buf), "n:%.17g;", v.numeric());
      } else {
        std::snprintf(buf, sizeof(buf), "c:%d;", v.category());
      }
      mix(buf);
    }
  }
  return h;
}

void ExpectSameTable(const Table& a, const Table& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_columns(), b.num_columns());
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.num_columns(); ++c) {
      ASSERT_TRUE(a.at(r, c) == b.at(r, c))
          << "cell (" << r << ", " << c << ") diverged: "
          << a.CellToString(r, c) << " vs " << b.CellToString(r, c);
    }
  }
}

int64_t NaiveViolations(const DenialConstraint& dc, const Table& table) {
  std::unique_ptr<ViolationIndex> oracle = MakeNaiveViolationIndex(dc);
  int64_t total = 0;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    total += oracle->CountNew(table.row(r));
    oracle->AddRow(table.row(r));
  }
  return total;
}

struct RunConfig {
  size_t num_threads = 1;
  size_t num_shards = 4;
  bool out_of_core = false;
  bool compress_chunks = false;
};

struct RunOutput {
  Table out;
  SynthesisTelemetry telemetry;
  std::vector<TableChunk> chunks;
};

/// Trains on `ds` (fixed seeds, comparable across configs) and
/// synthesizes `n` rows through the progressive merge, in-memory or
/// out-of-core per `config`, capturing every chunk.
RunOutput RunMerge(const BenchmarkDataset& ds, size_t n,
                   const RunConfig& config) {
  ScopedNumThreads threads(config.num_threads);
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema()).TakeValue();
  auto sequence = SequenceSchema(ds.table.schema(), constraints);
  KaminoOptions options;
  options.non_private = true;
  options.iterations = 8;
  options.mcmc_resamples = 40;
  options.seed = 77;
  options.num_shards = config.num_shards;
  options.progressive_merge = true;
  options.out_of_core = config.out_of_core;
  options.compress_chunks = config.compress_chunks;
  Rng rng(77);
  auto model = ProbabilisticDataModel::Train(ds.table, sequence, options, &rng)
                   .TakeValue();
  RunOutput run;
  SynthesisHooks hooks;
  hooks.on_chunk = [&run](const TableChunk& chunk) {
    run.chunks.push_back(chunk);
    return Status::OK();
  };
  Rng srng(17);
  run.out = Synthesize(model, constraints, n, options, &srng, &run.telemetry,
                       &hooks)
                .TakeValue();
  return run;
}

TEST(OutOfCoreTest, BitIdenticalToInMemoryProgressiveAcrossThreadsAndShards) {
  // The acceptance grid: {1, 4} threads x {2, 4} shards, spilling on vs
  // off, must agree on every bit and on the merge telemetry.
  const BenchmarkDataset ds = MakeAdultLike(100, 13);
  for (const size_t num_shards : {size_t{2}, size_t{4}}) {
    RunOutput baseline;
    bool have_baseline = false;
    for (const size_t num_threads : {size_t{1}, size_t{4}}) {
      for (const bool out_of_core : {false, true}) {
        RunConfig config;
        config.num_threads = num_threads;
        config.num_shards = num_shards;
        config.out_of_core = out_of_core;
        RunOutput run = RunMerge(ds, 120, config);
        EXPECT_EQ(run.telemetry.num_shards, num_shards);
        if (!have_baseline) {
          baseline = std::move(run);
          have_baseline = true;
          continue;
        }
        ExpectSameTable(baseline.out, run.out);
        EXPECT_EQ(TableDigest(baseline.out), TableDigest(run.out))
            << "shards=" << num_shards << " threads=" << num_threads
            << " out_of_core=" << out_of_core;
        EXPECT_EQ(baseline.telemetry.merge_cross_violations,
                  run.telemetry.merge_cross_violations);
        EXPECT_EQ(baseline.telemetry.merge_resamples,
                  run.telemetry.merge_resamples);
        EXPECT_EQ(baseline.telemetry.merge_fd_rewrites,
                  run.telemetry.merge_fd_rewrites);
      }
    }
  }
}

TEST(OutOfCoreTest, GoldenDigestUnchangedAtSingleShard) {
  // The golden scenario (same pin as ProgressiveMergeTest): out_of_core
  // on at the default num_shards=1 keeps the sequential paper path and
  // its digest; nothing spills.
  for (const bool out_of_core : {false, true}) {
    ScopedNumThreads threads(1);
    BenchmarkDataset ds = MakeAdultLike(120, 7);
    auto constraints =
        ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema())
            .TakeValue();
    auto sequence = SequenceSchema(ds.table.schema(), constraints);
    KaminoOptions options;
    options.non_private = true;
    options.iterations = 12;
    options.mcmc_resamples = 48;
    options.seed = 31;
    options.out_of_core = out_of_core;
    ASSERT_EQ(options.num_shards, 1u);
    Rng rng(31);
    auto model =
        ProbabilisticDataModel::Train(ds.table, sequence, options, &rng)
            .TakeValue();
    Rng srng(17);
    SynthesisTelemetry telemetry;
    Table out = Synthesize(model, constraints, 150, options, &srng, &telemetry)
                    .TakeValue();
    EXPECT_EQ(TableDigest(out), 0x214d31f811dbdd0full)
        << "out_of_core=" << out_of_core << " changed the sequential path";
    EXPECT_EQ(telemetry.spill_blocks, 0);
    EXPECT_EQ(telemetry.spilled_rows, 0);
  }
}

TEST(OutOfCoreTest, ChunksTileAndMatchTheRebuiltTable) {
  // The final table is rebuilt from the spill file; every chunk must
  // reappear bit-identical in it (the codec + frame round trip is exact),
  // and the chunks must tile [0, n) in ascending order.
  const BenchmarkDataset ds = MakeTaxLike(100, 13);
  RunConfig config;
  config.num_threads = 4;
  config.out_of_core = true;
  const RunOutput run = RunMerge(ds, 110, config);
  ASSERT_EQ(run.chunks.size(), 4u);
  size_t next_offset = 0;
  for (size_t s = 0; s < run.chunks.size(); ++s) {
    EXPECT_EQ(run.chunks[s].shard, s);
    EXPECT_EQ(run.chunks[s].row_offset, next_offset);
    EXPECT_EQ(run.chunks[s].last, s + 1 == run.chunks.size());
    const Table slice = run.out.Slice(run.chunks[s].row_offset,
                                      run.chunks[s].num_rows());
    ExpectSameTable(run.chunks[s].rows, slice);
    next_offset += run.chunks[s].num_rows();
  }
  EXPECT_EQ(next_offset, run.out.num_rows());
}

TEST(OutOfCoreTest, HardDcsExactAfterEveryFreezeWhileSpilling) {
  const BenchmarkDataset ds = MakeTaxLike(100, 13);
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema()).TakeValue();
  RunConfig config;
  config.out_of_core = true;
  const RunOutput run = RunMerge(ds, 100, config);
  ASSERT_EQ(run.chunks.size(), 4u);
  Table prefix(run.out.schema());
  for (size_t s = 0; s < run.chunks.size(); ++s) {
    prefix.AppendRowsFrom(run.chunks[s].rows, 0, run.chunks[s].num_rows());
    for (size_t l = 0; l < constraints.size(); ++l) {
      if (!constraints[l].hard) continue;
      EXPECT_EQ(NaiveViolations(constraints[l].dc, prefix), 0)
          << "hard DC " << l << " violated after freeze " << s;
    }
  }
  EXPECT_GT(run.telemetry.merge_cross_violations, 0);
}

TEST(OutOfCoreTest, FrozenRowsNeverRescannedAndResidencyBounded) {
  // The constant-memory contract, asserted by counters: the repair
  // penalty kernel pair-scans live rows only (frozen partners are index
  // deltas), every row ends up in the spill store, and the resident
  // high-water mark stays within 2 shard widths while the in-memory run
  // grows to n.
  const BenchmarkDataset ds = MakeTaxLike(100, 13);
  const size_t n = 120;
  const size_t num_shards = 4;
  for (const size_t num_threads : {size_t{1}, size_t{4}}) {
    RunConfig config;
    config.num_threads = num_threads;
    config.num_shards = num_shards;
    config.out_of_core = true;
    const RunOutput run = RunMerge(ds, n, config);
    EXPECT_EQ(run.telemetry.merge_penalty_frozen_row_scans, 0);
    EXPECT_GT(run.telemetry.merge_resamples, 0);
    EXPECT_GT(run.telemetry.merge_penalty_live_row_scans, 0);
    EXPECT_EQ(run.telemetry.spill_blocks, static_cast<int64_t>(num_shards));
    EXPECT_EQ(run.telemetry.spilled_rows, static_cast<int64_t>(n));
    EXPECT_GT(run.telemetry.spill_bytes, 0);
    const int64_t shard_width =
        static_cast<int64_t>((n + num_shards - 1) / num_shards);
    EXPECT_LE(run.telemetry.peak_resident_rows, 2 * shard_width)
        << "threads=" << num_threads;
    EXPECT_GT(run.telemetry.peak_resident_rows, 0);
  }
  // In-memory progressive accumulates the full instance.
  RunConfig in_memory;
  in_memory.num_shards = num_shards;
  const RunOutput mem = RunMerge(ds, n, in_memory);
  EXPECT_EQ(mem.telemetry.peak_resident_rows, static_cast<int64_t>(n));
  EXPECT_EQ(mem.telemetry.spill_blocks, 0);
}

TEST(OutOfCoreTest, CompressedChunksPassThroughTheSpilledPayload) {
  // compress_chunks + out_of_core: the chunk carries the exact encoded
  // payload sealed into the spill store; decoding it reproduces the
  // uncompressed run's rows bit for bit.
  const BenchmarkDataset ds = MakeAdultLike(100, 13);
  RunConfig plain;
  plain.out_of_core = true;
  RunConfig compressed = plain;
  compressed.compress_chunks = true;
  const RunOutput a = RunMerge(ds, 110, plain);
  const RunOutput b = RunMerge(ds, 110, compressed);
  ASSERT_EQ(a.chunks.size(), b.chunks.size());
  for (size_t s = 0; s < b.chunks.size(); ++s) {
    ASSERT_TRUE(b.chunks[s].compressed());
    EXPECT_EQ(b.chunks[s].rows.num_rows(), 0u);
    Table decoded =
        DecodeChunkColumns(b.chunks[s].rows.schema(), b.chunks[s].encoded)
            .TakeValue();
    ExpectSameTable(decoded, a.chunks[s].rows);
  }
  ExpectSameTable(a.out, b.out);
}

TEST(OutOfCoreTest, DiscardResultSkipsTheRebuild) {
  // With discard_result the sampler returns a schema-only table — the
  // rows exist solely as delivered chunks (the constant-memory path).
  const BenchmarkDataset ds = MakeAdultLike(100, 13);
  ScopedNumThreads threads(1);
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema()).TakeValue();
  auto sequence = SequenceSchema(ds.table.schema(), constraints);
  KaminoOptions options;
  options.non_private = true;
  options.iterations = 8;
  options.seed = 77;
  options.num_shards = 4;
  options.out_of_core = true;
  Rng rng(77);
  auto model = ProbabilisticDataModel::Train(ds.table, sequence, options, &rng)
                   .TakeValue();
  size_t delivered = 0;
  SynthesisHooks hooks;
  hooks.discard_result = true;
  hooks.on_chunk = [&delivered](const TableChunk& chunk) {
    delivered += chunk.num_rows();
    return Status::OK();
  };
  Rng srng(17);
  SynthesisTelemetry telemetry;
  Table out =
      Synthesize(model, constraints, 120, options, &srng, &telemetry, &hooks)
          .TakeValue();
  EXPECT_EQ(out.num_rows(), 0u);
  EXPECT_EQ(delivered, 120u);
  EXPECT_EQ(telemetry.spilled_rows, 120);
}

/// Entries in `dir` other than "." / "..".
size_t DirEntryCount(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return 0;
  size_t count = 0;
  while (struct dirent* e = ::readdir(d)) {
    if (std::strcmp(e->d_name, ".") == 0 || std::strcmp(e->d_name, "..") == 0) {
      continue;
    }
    ++count;
  }
  ::closedir(d);
  return count;
}

TEST(OutOfCoreTest, CancellationMidSpillLeavesNoOrphanedFiles) {
  // Cancel after the second delivered chunk: blocks are already sealed in
  // the spill file when the run aborts, and the store's unwind must
  // remove the file and its private directory from the parent we point
  // it at.
  char parent_template[] = "/tmp/kamino-ooc-test-XXXXXX";
  char* parent = ::mkdtemp(parent_template);
  ASSERT_NE(parent, nullptr);
  const std::string parent_dir(parent);
  {
    const BenchmarkDataset ds = MakeAdultLike(100, 13);
    ScopedNumThreads threads(1);
    auto constraints =
        ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema())
            .TakeValue();
    auto sequence = SequenceSchema(ds.table.schema(), constraints);
    KaminoOptions options;
    options.non_private = true;
    options.iterations = 8;
    options.seed = 77;
    options.num_shards = 4;
    options.out_of_core = true;
    options.spill_dir = parent_dir;
    Rng rng(77);
    auto model =
        ProbabilisticDataModel::Train(ds.table, sequence, options, &rng)
            .TakeValue();
    std::atomic<size_t> chunks{0};
    SynthesisHooks hooks;
    hooks.keep_going = [&chunks] {
      return chunks.load(std::memory_order_relaxed) < 2;
    };
    hooks.on_chunk = [&chunks](const TableChunk&) {
      chunks.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    };
    Rng srng(17);
    SynthesisTelemetry telemetry;
    const auto result =
        Synthesize(model, constraints, 120, options, &srng, &telemetry, &hooks);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
    EXPECT_GE(telemetry.spill_blocks, 2);  // it really was mid-spill
  }
  EXPECT_EQ(DirEntryCount(parent_dir), 0u)
      << "orphaned spill files under " << parent_dir;
  ::rmdir(parent_dir.c_str());
}

}  // namespace
}  // namespace kamino
