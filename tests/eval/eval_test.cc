#include <gtest/gtest.h>

#include "kamino/data/generators.h"
#include "kamino/dc/violations.h"
#include "kamino/eval/classifiers.h"
#include "kamino/eval/marginals.h"
#include "kamino/eval/repair.h"

namespace kamino {
namespace {

TEST(MarginalsTest, IdenticalTablesHaveZeroDistance) {
  BenchmarkDataset ds = MakeTpchLike(200, 1);
  EXPECT_DOUBLE_EQ(MarginalDistance(ds.table, ds.table, {0, 1}, 8), 0.0);
  for (double d : OneWayMarginalDistances(ds.table, ds.table, 8)) {
    EXPECT_DOUBLE_EQ(d, 0.0);
  }
}

TEST(MarginalsTest, DisjointDistributionsHaveLargeDistance) {
  Schema schema({Attribute::MakeCategorical("c", {"a", "b"})});
  Table all_a(schema), all_b(schema);
  for (int i = 0; i < 50; ++i) {
    all_a.AppendRowUnchecked({Value::Categorical(0)});
    all_b.AppendRowUnchecked({Value::Categorical(1)});
  }
  EXPECT_DOUBLE_EQ(MarginalDistance(all_a, all_b, {0}, 4), 1.0);
}

TEST(MarginalsTest, TwoWayRespectsPairBudget) {
  BenchmarkDataset ds = MakeTpchLike(100, 2);
  Rng rng(1);
  EXPECT_EQ(TwoWayMarginalDistances(ds.table, ds.table, 8, 5, &rng).size(),
            5u);
}

TEST(MarginalsTest, MeanAndMax) {
  std::vector<double> v = {0.1, 0.2, 0.6};
  EXPECT_NEAR(MeanOf(v), 0.3, 1e-12);
  EXPECT_DOUBLE_EQ(MaxOf(v), 0.6);
  EXPECT_DOUBLE_EQ(MeanOf({}), 0.0);
}

TEST(ClassifiersTest, BasketLearnsSeparableTask) {
  // Feature 0 determines the label; every basket member should beat 0.8
  // accuracy on it.
  Rng rng(3);
  LabeledData train, test;
  for (int i = 0; i < 400; ++i) {
    const int y = static_cast<int>(rng.UniformInt(0, 1));
    std::vector<double> x = {static_cast<double>(y), rng.Uniform(),
                             rng.Uniform()};
    if (i < 300) {
      train.x.push_back(x);
      train.y.push_back(y);
    } else {
      test.x.push_back(x);
      test.y.push_back(y);
    }
  }
  for (auto& model : MakeClassifierBasket()) {
    model->Fit(train, &rng);
    const ClassificationQuality q = Score(*model, test);
    EXPECT_GT(q.accuracy, 0.8) << model->name();
    EXPECT_GT(q.f1, 0.8) << model->name();
  }
}

TEST(ClassifiersTest, ScoreComputesF1) {
  // Degenerate all-positive predictor on a balanced set.
  class AlwaysOne : public BinaryClassifier {
   public:
    void Fit(const LabeledData&, Rng*) override {}
    int Predict(const std::vector<double>&) const override { return 1; }
    std::string name() const override { return "one"; }
  };
  LabeledData test;
  test.x = {{0}, {0}, {0}, {0}};
  test.y = {1, 1, 0, 0};
  AlwaysOne model;
  const ClassificationQuality q = Score(model, test);
  EXPECT_DOUBLE_EQ(q.accuracy, 0.5);
  EXPECT_NEAR(q.f1, 2.0 * 0.5 * 1.0 / 1.5, 1e-12);  // p=0.5, r=1
}

TEST(ClassifiersTest, LabelRuleFromTruth) {
  Schema schema({Attribute::MakeCategorical("c", {"a", "b"}),
                 Attribute::MakeNumeric("n", 0, 100, 101)});
  Table t(schema);
  for (int i = 0; i < 10; ++i) {
    t.AppendRowUnchecked({Value::Categorical(i < 7 ? 0 : 1),
                          Value::Numeric(static_cast<double>(i))});
  }
  LabelRule cat_rule = MakeLabelRule(t, 0);
  EXPECT_TRUE(cat_rule.categorical);
  EXPECT_EQ(cat_rule.majority_category, 0);
  EXPECT_EQ(cat_rule.LabelOf(Value::Categorical(0)), 1);
  EXPECT_EQ(cat_rule.LabelOf(Value::Categorical(1)), 0);

  LabelRule num_rule = MakeLabelRule(t, 1);
  EXPECT_FALSE(num_rule.categorical);
  EXPECT_EQ(num_rule.LabelOf(Value::Numeric(99)), 1);
  EXPECT_EQ(num_rule.LabelOf(Value::Numeric(0)), 0);
}

TEST(ClassifiersTest, TrainOnTruthScoresWell) {
  // Sanity anchor for Metric II: training the basket on the truth itself
  // must produce decent accuracy on most attributes.
  BenchmarkDataset ds = MakeAdultLike(500, 4);
  Rng rng(5);
  auto per_attr = EvaluateModelTraining(ds.table, ds.table, &rng);
  ASSERT_EQ(per_attr.size(), ds.table.schema().size());
  EXPECT_GT(MeanQuality(per_attr).accuracy, 0.7);
}

TEST(RepairTest, FixesFdViolations) {
  Schema schema({Attribute::MakeCategorical("x", {"a", "b"}),
                 Attribute::MakeCategorical("y", {"p", "q", "r"})});
  auto constraints =
      ParseConstraints({"!(t1.x == t2.x & t1.y != t2.y)"}, {true}, schema)
          .TakeValue();
  Table dirty(schema);
  dirty.AppendRowUnchecked({Value::Categorical(0), Value::Categorical(0)});
  dirty.AppendRowUnchecked({Value::Categorical(0), Value::Categorical(0)});
  dirty.AppendRowUnchecked({Value::Categorical(0), Value::Categorical(1)});
  dirty.AppendRowUnchecked({Value::Categorical(1), Value::Categorical(2)});
  ASSERT_GT(CountViolations(constraints[0].dc, dirty), 0);
  Table repaired = RepairViolations(dirty, constraints);
  EXPECT_EQ(CountViolations(constraints[0].dc, repaired), 0);
  // Majority repair: group x=a keeps y=p.
  EXPECT_EQ(repaired.at(2, 1).category(), 0);
}

TEST(RepairTest, FixesOrderViolationsPreservingMarginal) {
  Schema schema({Attribute::MakeNumeric("u", 0, 100, 101),
                 Attribute::MakeNumeric("v", 0, 100, 101)});
  auto constraints =
      ParseConstraints({"!(t1.u > t2.u & t1.v < t2.v)"}, {true}, schema)
          .TakeValue();
  Rng rng(6);
  Table dirty(schema);
  for (int i = 0; i < 60; ++i) {
    dirty.AppendRowUnchecked(
        {Value::Numeric(static_cast<double>(rng.UniformInt(0, 100))),
         Value::Numeric(static_cast<double>(rng.UniformInt(0, 100)))});
  }
  ASSERT_GT(CountViolations(constraints[0].dc, dirty), 0);
  Table repaired = RepairViolations(dirty, constraints);
  EXPECT_EQ(CountViolations(constraints[0].dc, repaired), 0);
  // The v marginal is preserved exactly (values were only permuted).
  EXPECT_DOUBLE_EQ(MarginalDistance(repaired, dirty, {1}, 20), 0.0);
}

TEST(RepairTest, CleanDataUnchangedByFdRepair) {
  BenchmarkDataset ds = MakeTpchLike(150, 7);
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema()).TakeValue();
  Table repaired = RepairViolations(ds.table, constraints);
  for (size_t r = 0; r < ds.table.num_rows(); ++r) {
    for (size_t c = 0; c < ds.table.num_columns(); ++c) {
      EXPECT_TRUE(repaired.at(r, c) == ds.table.at(r, c));
    }
  }
}

}  // namespace
}  // namespace kamino
