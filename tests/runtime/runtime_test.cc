// Tests for the parallel execution runtime: ParallelFor correctness under
// contention, Status/exception propagation, deterministic RNG streams, and
// the end-to-end guarantee that RunKamino output is bit-identical at any
// thread count.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "kamino/common/logging.h"
#include "kamino/core/kamino.h"
#include "kamino/data/generators.h"
#include "kamino/dc/constraint.h"
#include "kamino/runtime/parallel_for.h"
#include "kamino/runtime/rng_stream.h"
#include "kamino/runtime/thread_pool.h"

namespace kamino {
namespace {

using runtime::ParallelFor;
using runtime::ParallelForEach;
using runtime::RngStream;
using runtime::SetGlobalNumThreads;
using runtime::ThreadPool;

/// Restores the global thread budget when a test scope ends, so tests do
/// not leak their setting into each other.
class ScopedNumThreads {
 public:
  explicit ScopedNumThreads(size_t n) { SetGlobalNumThreads(n); }
  ~ScopedNumThreads() { SetGlobalNumThreads(0); }
};

TEST(ThreadPoolTest, ExecutesEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  std::mutex mu;
  std::condition_variable cv;
  const int kTasks = 200;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      if (done.fetch_add(1) + 1 == kTasks) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done.load() == kTasks; });
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnceUnderContention) {
  ScopedNumThreads threads(4);
  const size_t n = 100000;
  std::vector<int> hits(n, 0);
  std::atomic<long long> sum{0};
  ParallelForEach(0, n, 97, [&](size_t i) {
    ++hits[i];  // disjoint slots: no synchronization needed
    sum.fetch_add(static_cast<long long>(i), std::memory_order_relaxed);
  });
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i], 1) << "index " << i;
  EXPECT_EQ(sum.load(), static_cast<long long>(n) * (n - 1) / 2);
}

TEST(ParallelForTest, ChunkBoundariesIndependentOfThreadCount) {
  auto chunks_at = [](size_t num_threads) {
    ScopedNumThreads threads(num_threads);
    std::mutex mu;
    std::set<std::pair<size_t, size_t>> chunks;
    Status st = ParallelFor(3, 250, 17, [&](size_t lo, size_t hi) {
      std::lock_guard<std::mutex> lock(mu);
      chunks.emplace(lo, hi);
      return Status::OK();
    });
    EXPECT_TRUE(st.ok());
    return chunks;
  };
  const auto serial = chunks_at(1);
  const auto parallel = chunks_at(4);
  EXPECT_EQ(serial, parallel);
  // Chunks tile [3, 250) without gap or overlap.
  size_t expected_lo = 3;
  for (const auto& [lo, hi] : serial) {
    EXPECT_EQ(lo, expected_lo);
    EXPECT_LE(hi, 250u);
    expected_lo = hi;
  }
  EXPECT_EQ(expected_lo, 250u);
}

TEST(ParallelForTest, PropagatesFirstErrorInSerialOrder) {
  ScopedNumThreads threads(4);
  Status st = ParallelFor(0, 1000, 10, [&](size_t lo, size_t /*hi*/) {
    if (lo >= 500) {
      return Status::InvalidArgument("chunk " + std::to_string(lo));
    }
    return Status::OK();
  });
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  // The failing chunk with the smallest begin index wins, as a serial
  // loop would report, regardless of which thread failed first.
  EXPECT_EQ(st.message(), "chunk 500");
}

TEST(ParallelForTest, ConvertsExceptionsToInternalStatus) {
  ScopedNumThreads threads(4);
  Status st = ParallelFor(0, 64, 8, [&](size_t lo, size_t /*hi*/) -> Status {
    if (lo == 32) throw std::runtime_error("boom");
    return Status::OK();
  });
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_NE(st.message().find("boom"), std::string::npos);
}

TEST(ParallelForTest, NestedLoopsRunInlineWithoutDeadlock) {
  ScopedNumThreads threads(4);
  std::atomic<long long> sum{0};
  ParallelForEach(0, 16, 1, [&](size_t i) {
    // A body that itself fans out must not block on the saturated pool.
    ParallelForEach(0, 100, 7, [&](size_t j) {
      sum.fetch_add(static_cast<long long>(i * 100 + j),
                    std::memory_order_relaxed);
    });
  });
  long long expected = 0;
  for (size_t i = 0; i < 16; ++i) {
    for (size_t j = 0; j < 100; ++j) expected += i * 100 + j;
  }
  EXPECT_EQ(sum.load(), expected);
}

TEST(ParallelForTest, EmptyRangeIsOkAndNeverInvokesBody) {
  ScopedNumThreads threads(4);
  bool invoked = false;
  Status st = ParallelFor(5, 5, 1, [&](size_t, size_t) {
    invoked = true;
    return Status::OK();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_FALSE(invoked);
}

TEST(RngStreamTest, SubSeedsAreDeterministicAndDistinct) {
  RngStream a(42), b(42), c(43);
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.SubSeed(i), b.SubSeed(i));
    seen.insert(a.SubSeed(i));
    EXPECT_NE(a.SubSeed(i), c.SubSeed(i));
  }
  EXPECT_EQ(seen.size(), 1000u);  // no collisions among adjacent streams
  EXPECT_NE(a.SubSeed(0), a.root());
  EXPECT_EQ(a.Fork(7).root(), a.SubSeed(7));
}

TEST(RngStreamTest, StreamsYieldIndependentDrawSequences) {
  RngStream stream(2024);
  Rng r0(stream.SubSeed(0));
  Rng r1(stream.SubSeed(1));
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (r0.UniformInt(0, 1 << 30) == r1.UniformInt(0, 1 << 30)) ++same;
  }
  EXPECT_LT(same, 3);
}

/// Runs the full pipeline on a soft-DC workload (exercising the parallel
/// violation matrix, DP-SGD gradients, candidate scoring and batched MCMC)
/// at the given thread budget.
KaminoResult RunPipelineWithThreads(size_t num_threads) {
  BenchmarkDataset ds = MakeBr2000Like(80, 11);
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema());
  KAMINO_CHECK(constraints.ok());
  KaminoConfig config;
  config.options.non_private = true;  // keep the test fast and focused
  config.options.iterations = 8;
  config.options.weight_iterations = 10;
  config.options.mcmc_resamples = 50;  // spans two MCMC batches
  config.options.seed = 99;
  config.options.num_threads = num_threads;
  auto result = RunKamino(ds.table, constraints.value(), config);
  KAMINO_CHECK(result.ok()) << result.status();
  return std::move(result).TakeValue();
}

TEST(RuntimeDeterminismTest, RunKaminoOutputIdenticalAcrossThreadCounts) {
  const KaminoResult serial = RunPipelineWithThreads(1);
  const KaminoResult parallel = RunPipelineWithThreads(4);
  SetGlobalNumThreads(0);

  EXPECT_EQ(serial.timings.num_threads, 1u);
  EXPECT_EQ(parallel.timings.num_threads, 4u);
  EXPECT_GT(parallel.telemetry.mcmc_batches, 0);

  ASSERT_EQ(serial.synthetic.num_rows(), parallel.synthetic.num_rows());
  ASSERT_EQ(serial.synthetic.num_columns(), parallel.synthetic.num_columns());
  ASSERT_EQ(serial.dc_weights, parallel.dc_weights);
  ASSERT_EQ(serial.sequence, parallel.sequence);
  for (size_t r = 0; r < serial.synthetic.num_rows(); ++r) {
    for (size_t c = 0; c < serial.synthetic.num_columns(); ++c) {
      ASSERT_TRUE(serial.synthetic.at(r, c) == parallel.synthetic.at(r, c))
          << "cell (" << r << ", " << c << ") diverged: "
          << serial.synthetic.CellToString(r, c) << " vs "
          << parallel.synthetic.CellToString(r, c);
    }
  }
}

// --- The cancellable-job queue (the async-serving substrate). ---

using runtime::CancelToken;
using runtime::JobQueue;

TEST(JobQueueTest, RunsJobsInSubmissionOrder) {
  std::mutex mu;
  std::vector<int> order;
  JobQueue queue(1);  // one runner: strict FIFO
  std::vector<std::shared_ptr<JobQueue::Job>> jobs;
  for (int i = 0; i < 4; ++i) {
    jobs.push_back(queue.Submit([&mu, &order, i](const CancelToken&) {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(i);
    }));
  }
  for (const auto& job : jobs) {
    EXPECT_EQ(job->Wait(), JobQueue::JobState::kDone);
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(JobQueueTest, CancelledQueuedJobIsSkippedWithoutRunning) {
  // Declared before the queue so they outlive its runner thread.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  bool first_running = false;
  JobQueue queue(1);
  auto first = queue.Submit([&](const CancelToken&) {
    std::unique_lock<std::mutex> lock(mu);
    first_running = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  });
  {
    // The single runner is now (or will be) held by the first job.
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return first_running; });
  }
  std::atomic<bool> second_ran{false};
  auto second =
      queue.Submit([&](const CancelToken&) { second_ran.store(true); });
  second->Cancel();
  EXPECT_EQ(second->state(), JobQueue::JobState::kQueued);
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  EXPECT_EQ(first->Wait(), JobQueue::JobState::kDone);
  EXPECT_EQ(second->Wait(), JobQueue::JobState::kSkipped);
  EXPECT_FALSE(second_ran.load()) << "a skipped job body ran";
}

TEST(JobQueueTest, RunningJobObservesItsToken) {
  // Declared before the queue so they outlive its runner thread.
  std::mutex mu;
  std::condition_variable cv;
  bool started = false;
  std::atomic<bool> saw_cancel{false};
  JobQueue queue(1);
  auto job = queue.Submit([&](const CancelToken& token) {
    {
      std::lock_guard<std::mutex> lock(mu);
      started = true;
    }
    cv.notify_all();
    while (!token.cancel_requested()) std::this_thread::yield();
    saw_cancel.store(true);
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return started; });
  }
  job->Cancel();
  // A running job completes as kDone — the body decides what a cancelled
  // run produces; the queue only transports the request.
  EXPECT_EQ(job->Wait(), JobQueue::JobState::kDone);
  EXPECT_TRUE(saw_cancel.load());
}

TEST(JobQueueTest, DestructorSkipsQueuedJobsAndJoinsRunners) {
  std::shared_ptr<JobQueue::Job> running;
  std::shared_ptr<JobQueue::Job> waiting;
  std::atomic<bool> waiting_ran{false};
  std::atomic<bool> destroying{false};
  // Declared before the queue scope: the job body uses them, so they must
  // outlive the runner thread (the queue destructor joins it last).
  std::mutex mu;
  std::condition_variable cv;
  bool started = false;
  // The running job spins on its token; release it only once destruction
  // is underway, so the destructor provably orphans the queued job while
  // the runner is still busy (rather than racing it to the queue).
  std::thread releaser([&] {
    while (!destroying.load()) std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    running->Cancel();
  });
  {
    JobQueue queue(1);
    running = queue.Submit([&](const CancelToken& token) {
      {
        std::lock_guard<std::mutex> lock(mu);
        started = true;
      }
      cv.notify_all();
      while (!token.cancel_requested()) std::this_thread::yield();
    });
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return started; });
    }
    waiting = queue.Submit(
        [&](const CancelToken&) { waiting_ran.store(true); });
    destroying.store(true);
  }  // ~JobQueue: skips `waiting`, then joins once `running` winds down
  releaser.join();
  EXPECT_EQ(running->Wait(), JobQueue::JobState::kDone);
  EXPECT_EQ(waiting->Wait(), JobQueue::JobState::kSkipped);
  EXPECT_FALSE(waiting_ran.load());
}

}  // namespace
}  // namespace kamino
