// Tests for the FittedModel artifact format (io/artifact.h): byte-identical
// round trips, the save -> load -> synthesize golden-digest contract, and
// exhaustive corruption coverage — truncation at every interesting length,
// bit flips with and without a resealed digest, digest mismatches and
// future format versions must all surface as a clean Status, never UB.

#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "kamino/common/logging.h"
#include "kamino/common/rng.h"
#include "kamino/core/kamino.h"
#include "kamino/core/sequencing.h"
#include "kamino/data/generators.h"
#include "kamino/io/artifact.h"
#include "kamino/io/bytes.h"
#include "kamino/runtime/thread_pool.h"
#include "kamino/service/engine.h"

namespace kamino {
namespace {

class ScopedNumThreads {
 public:
  explicit ScopedNumThreads(size_t n) { runtime::SetGlobalNumThreads(n); }
  ~ScopedNumThreads() { runtime::SetGlobalNumThreads(0); }
};

/// Same rendering as the sharded-sampler golden test: FNV-1a over an exact
/// textual form of every cell, so equal digests mean bit-identical tables.
uint64_t TableDigest(const Table& t) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](const char* s) {
    for (; *s; ++s) {
      h ^= static_cast<unsigned char>(*s);
      h *= 1099511628211ull;
    }
  };
  for (size_t r = 0; r < t.num_rows(); ++r) {
    for (size_t c = 0; c < t.num_columns(); ++c) {
      const Value& v = t.at(r, c);
      char buf[64];
      if (v.is_numeric()) {
        std::snprintf(buf, sizeof(buf), "n:%.17g;", v.numeric());
      } else {
        std::snprintf(buf, sizeof(buf), "c:%d;", v.category());
      }
      mix(buf);
    }
  }
  return h;
}

/// Fits the exact golden-digest scenario of ShardedSamplerTest and packs
/// the stages into FitArtifacts, with the sampling engine positioned where
/// `Rng srng(17)` starts — so a seed=0 synthesis of 150 rows from these
/// artifacts must reproduce digest 0x214d31f811dbdd0f.
FitArtifacts MakeGoldenArtifacts() {
  BenchmarkDataset ds = MakeAdultLike(120, 7);
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema()).TakeValue();
  auto sequence = SequenceSchema(ds.table.schema(), constraints);
  KaminoOptions options;
  options.non_private = true;
  options.iterations = 12;
  options.mcmc_resamples = 48;
  options.seed = 31;
  Rng rng(31);
  FitArtifacts fitted;
  fitted.model = ProbabilisticDataModel::Train(ds.table, sequence, options,
                                               &rng)
                     .TakeValue();
  fitted.weighted = constraints;
  fitted.sequence = fitted.model.sequence();
  for (const WeightedConstraint& wc : constraints) {
    fitted.dc_weights.push_back(wc.EffectiveWeight());
  }
  fitted.resolved_options = options;
  fitted.epsilon_spent = 0.25;
  fitted.input_rows = ds.table.num_rows();
  fitted.fit_timings.sequencing = 0.5;
  fitted.fit_timings.training = 1.25;
  fitted.fit_timings.num_threads = 1;
  fitted.sampling_engine = std::mt19937_64(17);
  return fitted;
}

/// A deliberately small fitted model (3 attributes, embed_dim 4) so the
/// corruption fuzz loops can afford to attack many offsets.
FitArtifacts MakeTinyArtifacts() {
  Schema schema({Attribute::MakeCategorical("color", {"red", "green", "blue"}),
                 Attribute::MakeCategorical("tone", {"warm", "cool"}),
                 Attribute::MakeNumeric("x", 0, 10, 11)});
  Table table(schema);
  for (int i = 0; i < 24; ++i) {
    table.AppendRowUnchecked({Value::Categorical(i % 3),
                              Value::Categorical((i / 3) % 2),
                              Value::Numeric(i % 11)});
  }
  auto constraints =
      ParseConstraints({"!(t1.color == t2.color & t1.tone != t2.tone)"},
                       {false}, schema)
          .TakeValue();
  KaminoOptions options;
  options.non_private = true;
  options.embed_dim = 4;
  options.iterations = 2;
  options.seed = 3;
  auto sequence = SequenceSchema(schema, constraints);
  Rng rng(3);
  FitArtifacts fitted;
  fitted.model =
      ProbabilisticDataModel::Train(table, sequence, options, &rng).TakeValue();
  fitted.weighted = constraints;
  fitted.sequence = fitted.model.sequence();
  for (const WeightedConstraint& wc : constraints) {
    fitted.dc_weights.push_back(wc.EffectiveWeight());
  }
  fitted.resolved_options = options;
  fitted.input_rows = table.num_rows();
  fitted.sampling_engine = std::mt19937_64(9);
  return fitted;
}

TEST(ArtifactTest, RoundTripIsByteIdentical) {
  ScopedNumThreads threads(1);
  FitArtifacts fitted = MakeTinyArtifacts();
  const std::vector<uint8_t> first = io::SerializeFitArtifacts(fitted);
  auto reloaded = io::DeserializeFitArtifacts(first);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  const std::vector<uint8_t> second =
      io::SerializeFitArtifacts(reloaded.value());
  EXPECT_EQ(first, second) << "save -> load -> save changed the bytes";
}

TEST(ArtifactTest, RoundTripPreservesEveryField) {
  ScopedNumThreads threads(1);
  FitArtifacts fitted = MakeGoldenArtifacts();
  auto reloaded =
      io::DeserializeFitArtifacts(io::SerializeFitArtifacts(fitted));
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  const FitArtifacts& got = reloaded.value();
  EXPECT_EQ(got.sequence, fitted.sequence);
  EXPECT_EQ(got.dc_weights, fitted.dc_weights);
  EXPECT_EQ(got.weighted.size(), fitted.weighted.size());
  for (size_t i = 0; i < got.weighted.size(); ++i) {
    EXPECT_EQ(got.weighted[i].weight, fitted.weighted[i].weight);
    EXPECT_EQ(got.weighted[i].hard, fitted.weighted[i].hard);
    EXPECT_EQ(got.weighted[i].dc.ToString(got.model.schema()),
              fitted.weighted[i].dc.ToString(fitted.model.schema()));
  }
  EXPECT_EQ(got.resolved_options.seed, fitted.resolved_options.seed);
  EXPECT_EQ(got.resolved_options.mcmc_resamples,
            fitted.resolved_options.mcmc_resamples);
  EXPECT_EQ(got.resolved_options.non_private,
            fitted.resolved_options.non_private);
  EXPECT_EQ(got.epsilon_spent, fitted.epsilon_spent);
  EXPECT_EQ(got.input_rows, fitted.input_rows);
  EXPECT_EQ(got.fit_timings.sequencing, fitted.fit_timings.sequencing);
  EXPECT_EQ(got.fit_timings.training, fitted.fit_timings.training);
  EXPECT_EQ(got.fit_timings.num_threads, fitted.fit_timings.num_threads);
  EXPECT_TRUE(got.sampling_engine == fitted.sampling_engine);
}

TEST(ArtifactTest, SaveLoadSynthesizeReproducesGoldenDigest) {
  // The acceptance contract: fit on one engine, save, load in a fresh
  // engine, synthesize with the fit's RNG snapshot (seed = 0) — the
  // output must be bit-identical to the monolithic golden run.
  ScopedNumThreads threads(1);
  const std::string path =
      ::testing::TempDir() + "/kamino_artifact_golden.kam";
  {
    FittedModel model = FittedModel::FromArtifacts(MakeGoldenArtifacts());
    ASSERT_TRUE(model.Save(path).ok());
  }
  KaminoEngine fresh;
  auto loaded = fresh.LoadModel("golden", path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  SynthesisRequest request;
  request.num_rows = 150;
  request.seed = 0;  // resume the fit RNG snapshot
  auto result = fresh.Synthesize("golden", request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  char actual[32];
  std::snprintf(actual, sizeof(actual), "0x%016" PRIx64,
                TableDigest(result.value().synthetic));
  EXPECT_EQ(std::string(actual), "0x214d31f811dbdd0f")
      << "loaded model diverged from the golden sequential run";
}

TEST(ArtifactTest, LoadedModelOwnsAllState) {
  // The ownership contract: a loaded model aliases nothing. Destroying
  // every input (the artifact bytes included) must leave it fully usable.
  ScopedNumThreads threads(1);
  FittedModel model;
  {
    FitArtifacts fitted = MakeTinyArtifacts();
    std::vector<uint8_t> bytes = io::SerializeFitArtifacts(fitted);
    auto loaded = FittedModel::Deserialize(bytes);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    model = loaded.value();
    // Scribble over the source buffer, then drop it and the fit inputs.
    std::fill(bytes.begin(), bytes.end(), 0xAA);
  }
  KaminoEngine engine;
  SynthesisRequest request;
  request.num_rows = 20;
  request.seed = 11;
  auto a = engine.Synthesize(model, request);
  auto b = engine.Synthesize(model, request);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a.value().synthetic.num_rows(), 20u);
  EXPECT_EQ(TableDigest(a.value().synthetic), TableDigest(b.value().synthetic));
}

TEST(ArtifactTest, RejectsTruncation) {
  ScopedNumThreads threads(1);
  const std::vector<uint8_t> bytes =
      io::SerializeFitArtifacts(MakeTinyArtifacts());
  ASSERT_GT(bytes.size(), io::kArtifactEnvelopeBytes);
  // Every prefix through the envelope and the first section headers, then
  // strided prefixes across the rest of the payload.
  std::vector<size_t> lengths;
  for (size_t n = 0; n < std::min<size_t>(bytes.size(), 96); ++n) {
    lengths.push_back(n);
  }
  for (size_t n = 96; n < bytes.size(); n += 61) lengths.push_back(n);
  lengths.push_back(bytes.size() - 1);
  for (const size_t n : lengths) {
    std::vector<uint8_t> cut(bytes.begin(), bytes.begin() + n);
    auto result = io::DeserializeFitArtifacts(cut);
    EXPECT_FALSE(result.ok()) << "accepted a " << n << "-byte truncation";
    // Also with a resealed envelope, so truncation inside a section has
    // to be caught structurally, not just by the digest.
    if (io::ResealArtifact(&cut)) {
      auto resealed = io::DeserializeFitArtifacts(cut);
      EXPECT_FALSE(resealed.ok())
          << "accepted a resealed " << n << "-byte truncation";
    }
  }
}

TEST(ArtifactTest, RejectsBitFlips) {
  ScopedNumThreads threads(1);
  const std::vector<uint8_t> bytes =
      io::SerializeFitArtifacts(MakeTinyArtifacts());
  for (size_t pos = 0; pos < bytes.size(); pos += 13) {
    std::vector<uint8_t> mutated = bytes;
    mutated[pos] ^= 1u << (pos % 8);
    auto result = io::DeserializeFitArtifacts(mutated);
    // Without resealing, the digest (or the header checks, for envelope
    // offsets) must catch every flip.
    EXPECT_FALSE(result.ok()) << "accepted a bit flip at offset " << pos;
  }
}

TEST(ArtifactTest, ResealedBitFlipsNeverCrash) {
  // Behind a valid digest, flipped payload bytes exercise the structural
  // validation: every mutation must come back as either a clean error or
  // a well-formed parse — never UB (the real assertion is running this
  // fuzz under ASan/UBSan in CI).
  ScopedNumThreads threads(1);
  const std::vector<uint8_t> bytes =
      io::SerializeFitArtifacts(MakeTinyArtifacts());
  size_t rejected = 0;
  size_t parsed = 0;
  for (size_t pos = io::kArtifactEnvelopeBytes - 8; pos + 8 < bytes.size();
       pos += 7) {
    std::vector<uint8_t> mutated = bytes;
    mutated[pos] ^= 1u << (pos % 8);
    ASSERT_TRUE(io::ResealArtifact(&mutated));
    auto result = io::DeserializeFitArtifacts(mutated);
    if (result.ok()) {
      ++parsed;
    } else {
      ++rejected;
      EXPECT_FALSE(result.status().message().empty());
    }
  }
  // Most flips land in tensor payloads (harmless value changes), but the
  // structural checks must fire for at least some of them.
  EXPECT_GT(rejected, 0u);
  EXPECT_GT(parsed, 0u);
}

TEST(ArtifactTest, RejectsDigestMismatch) {
  ScopedNumThreads threads(1);
  std::vector<uint8_t> bytes = io::SerializeFitArtifacts(MakeTinyArtifacts());
  bytes.back() ^= 0xFF;  // corrupt the stored digest itself
  auto result = io::DeserializeFitArtifacts(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("digest"), std::string::npos)
      << result.status().ToString();
}

TEST(ArtifactTest, RejectsFutureVersion) {
  ScopedNumThreads threads(1);
  std::vector<uint8_t> bytes = io::SerializeFitArtifacts(MakeTinyArtifacts());
  bytes[8] = 0x7F;  // version little-endian at offset 8: 0x7F = version 127
  auto result = io::DeserializeFitArtifacts(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("version"), std::string::npos)
      << result.status().ToString();
}

TEST(ArtifactTest, RejectsBadMagic) {
  ScopedNumThreads threads(1);
  std::vector<uint8_t> bytes = io::SerializeFitArtifacts(MakeTinyArtifacts());
  bytes[0] = 'X';
  auto result = io::DeserializeFitArtifacts(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("magic"), std::string::npos)
      << result.status().ToString();
}

TEST(ArtifactTest, RejectsEmptyAndEnvelopeOnly) {
  EXPECT_FALSE(io::DeserializeFitArtifacts({}).ok());
  std::vector<uint8_t> envelope(io::kArtifactEnvelopeBytes, 0);
  EXPECT_FALSE(io::DeserializeFitArtifacts(envelope).ok());
}

TEST(ArtifactTest, EmptyHandleSaveFails) {
  FittedModel empty;
  const Status s = empty.Save(::testing::TempDir() + "/never_written.kam");
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(empty.Serialize().ok());
}

TEST(ArtifactTest, LoadMissingFileFails) {
  auto result =
      FittedModel::Load(::testing::TempDir() + "/no_such_artifact.kam");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(ArtifactTest, RngStateRejectsGarbage) {
  std::mt19937_64 engine(42);
  const std::mt19937_64 before = engine;
  RngState bad;
  bad.text = "not an mt19937_64 dump";
  EXPECT_FALSE(RestoreEngine(bad, &engine).ok());
  EXPECT_TRUE(engine == before) << "failed restore mutated the engine";
  // And the snapshot of a used engine round-trips mid-stream.
  engine.discard(37);
  auto snap = SnapshotEngine(engine);
  std::mt19937_64 restored;
  ASSERT_TRUE(RestoreEngine(snap, &restored).ok());
  EXPECT_EQ(engine(), restored());
}

TEST(ArtifactTest, SchemaFromStateValidates) {
  SchemaState state;
  AttributeState attr;
  attr.name = "a";
  attr.type = 7;  // neither categorical (0) nor numeric (1)
  state.attributes.push_back(attr);
  EXPECT_FALSE(Schema::FromState(state).ok());

  state.attributes[0].type = 1;
  state.attributes[0].min_value = 5;
  state.attributes[0].max_value = 1;  // inverted bounds
  EXPECT_FALSE(Schema::FromState(state).ok());

  state.attributes[0].max_value = 9;
  state.attributes.push_back(state.attributes[0]);  // duplicate name
  EXPECT_FALSE(Schema::FromState(state).ok());
}

TEST(ArtifactTest, ConstraintFromStateValidates) {
  Schema schema({Attribute::MakeCategorical("c", {"a", "b"}),
                 Attribute::MakeNumeric("n", 0, 10, 11)});
  DenialConstraintState state;
  PredicateState pred;
  pred.lhs_tuple = 0;
  pred.lhs_attr = 99;  // out of range
  pred.op = 0;
  pred.rhs_is_constant = 0;
  pred.rhs_tuple = 1;
  pred.rhs_attr = 0;
  state.predicates.push_back(pred);
  EXPECT_FALSE(DenialConstraint::FromState(state, schema).ok());

  state.predicates[0].lhs_attr = 0;
  state.predicates[0].rhs_attr = 1;  // categorical vs numeric kind flip
  EXPECT_FALSE(DenialConstraint::FromState(state, schema).ok());

  state.predicates[0].rhs_attr = 0;
  auto ok = DenialConstraint::FromState(state, schema);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
}

}  // namespace
}  // namespace kamino
