// Experiment 10 (section 7.3.6): the two efficiency optimizations -
// parallel sub-model training without embedding reuse, and the hard-FD
// fast path at larger scale.

#include <cstdio>

#include "bench/harness.h"
#include "kamino/dc/violations.h"

int main() {
  using namespace kamino;
  using namespace kamino::bench;
  PrintHeader("Experiment 10: efficiency optimizations");

  // (a) Parallel training (fresh embeddings per sub-model).
  {
    BenchmarkDataset ds = MakeAdultLike(500, kSeed);
    std::printf("(a) parallel training on %s\n", ds.name.c_str());
    std::printf("%-12s %10s %9s %10s\n", "mode", "train(s)", "accuracy",
                "1way-mean");
    for (bool parallel : {false, true}) {
      KaminoConfig config = BenchKaminoConfig(1.0, kSeed);
      config.options.parallel_training = parallel;
      auto result = RunKamino(ds.table, Constraints(ds), config);
      if (!result.ok()) {
        std::fprintf(stderr, "run failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      const QualitySummary q =
          ClassifierQuality(result.value().synthetic, ds.table, 4, kSeed);
      const MarginalSummary m =
          MarginalQuality(result.value().synthetic, ds.table, kSeed);
      std::printf("%-12s %10.2f %9.3f %10.3f\n",
                  parallel ? "parallel" : "sequential",
                  result.value().timings.training, q.accuracy, m.one_way_mean);
    }
  }

  // (b) Hard-FD fast path on a scaled-up TPC-H-like instance.
  {
    BenchmarkDataset ds = MakeTpchLike(2000, kSeed);
    std::printf("\n(b) hard-FD fast path on %s (n=%zu)\n", ds.name.c_str(),
                ds.table.num_rows());
    std::printf("%-12s %10s %12s %14s\n", "mode", "sample(s)", "violations%",
                "fastpath-hits");
    auto constraints = Constraints(ds);
    for (bool fast : {false, true}) {
      KaminoConfig config = BenchKaminoConfig(1.0, kSeed);
      config.options.enable_fd_fast_path = fast;
      auto result = RunKamino(ds.table, constraints, config);
      if (!result.ok()) {
        std::fprintf(stderr, "run failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      double violations = 0.0;
      for (const WeightedConstraint& wc : constraints) {
        violations += ViolationRatePercent(wc.dc, result.value().synthetic);
      }
      std::printf("%-12s %10.2f %11.2f%% %14lld\n",
                  fast ? "fast-path" : "scoring",
                  result.value().timings.sampling, violations,
                  static_cast<long long>(
                      result.value().telemetry.fd_fast_path_hits));
    }
  }
  std::printf("\nShape check: parallel training is faster at a small quality\n"
              "cost; the FD fast path cuts sampling time with 0 violations.\n");
  return 0;
}
