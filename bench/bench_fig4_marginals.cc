// Figure 4 (Experiment 3): total variation distance of 1-way and 2-way
// marginals between synthetic and true data, per dataset per method.

#include <cstdio>

#include "bench/harness.h"

int main() {
  using namespace kamino;
  using namespace kamino::bench;
  PrintHeader("Figure 4: 1-way / 2-way marginal distances (eps=1)");
  std::printf("%-10s %-10s %10s %9s %10s\n", "dataset", "method", "1way-mean",
              "1way-max", "2way-mean");
  for (const BenchmarkDataset& ds : MakeAllBenchmarks(kDefaultRows, kSeed)) {
    for (const MethodRun& run : RunAllMethods(ds, 1.0, kSeed)) {
      const MarginalSummary m = MarginalQuality(run.synthetic, ds.table, kSeed);
      std::printf("%-10s %-10s %10.3f %9.3f %10.3f\n", ds.name.c_str(),
                  run.method.c_str(), m.one_way_mean, m.one_way_max,
                  m.two_way_mean);
    }
  }
  std::printf("\nShape check: kamino among the smallest distances per dataset.\n");
  return 0;
}
