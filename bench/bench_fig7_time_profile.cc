// Experiment 4 + Figure 7: execution-time comparison and Kamino's
// per-phase time profile on all datasets.

#include <cstdio>

#include "bench/harness.h"

int main() {
  using namespace kamino;
  using namespace kamino::bench;
  PrintHeader("Exp 4 / Figure 7: execution time and phase profile");

  std::printf("%-10s %-10s %9s\n", "dataset", "method", "time(s)");
  std::vector<KaminoResult> kamino_results;
  std::vector<std::string> names;
  for (const BenchmarkDataset& ds : MakeAllBenchmarks(kDefaultRows, kSeed)) {
    for (const char* name : {"privbayes", "dp-vae", "pate-gan", "nist"}) {
      MethodRun run = RunBaseline(name, ds, 1.0, kSeed);
      std::printf("%-10s %-10s %9.2f\n", ds.name.c_str(), name, run.seconds);
    }
    auto result =
        RunKamino(ds.table, Constraints(ds), BenchKaminoConfig(1.0, kSeed));
    if (!result.ok()) {
      std::fprintf(stderr, "kamino failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-10s %-10s %9.2f\n", ds.name.c_str(), "kamino",
                result.value().timings.Total());
    kamino_results.push_back(std::move(result).TakeValue());
    names.push_back(ds.name);
  }

  std::printf("\nFigure 7: Kamino phase profile (fraction of total time)\n");
  std::printf("%-10s %6s %6s %6s %6s %6s\n", "dataset", "Seq.", "Tra.", "Vio.",
              "DC.W.", "Sam.");
  for (size_t i = 0; i < kamino_results.size(); ++i) {
    const PhaseTimings& t = kamino_results[i].timings;
    const double total = std::max(1e-9, t.Total());
    std::printf("%-10s %5.1f%% %5.1f%% %5.1f%% %5.1f%% %5.1f%%\n",
                names[i].c_str(), 100 * t.sequencing / total,
                100 * t.training / total,
                100 * t.violation_matrix / total * 0.5,
                100 * t.violation_matrix / total * 0.5,
                100 * t.sampling / total);
  }
  std::printf("\nShape check: training + sampling dominate (>99%% in the paper).\n");
  return 0;
}
