// Figure 3 (Experiment 2): classification accuracy and F1 of models
// trained on synthetic data and tested on held-out truth, per dataset per
// method, plus the train-on-truth anchor.

#include <cstdio>

#include "bench/harness.h"

int main() {
  using namespace kamino;
  using namespace kamino::bench;
  PrintHeader("Figure 3: model training quality (mean accuracy / F1)");
  const size_t kAttrs = 6;  // label attributes evaluated per dataset
  std::printf("%-10s %-10s %9s %7s\n", "dataset", "method", "accuracy", "F1");
  for (const BenchmarkDataset& ds : MakeAllBenchmarks(500, kSeed)) {
    for (const MethodRun& run : RunAllMethods(ds, 1.0, kSeed)) {
      const QualitySummary q =
          ClassifierQuality(run.synthetic, ds.table, kAttrs, kSeed);
      std::printf("%-10s %-10s %9.3f %7.3f\n", ds.name.c_str(),
                  run.method.c_str(), q.accuracy, q.f1);
    }
    const QualitySummary truth_q =
        ClassifierQuality(ds.table, ds.table, kAttrs, kSeed);
    std::printf("%-10s %-10s %9.3f %7.3f\n", ds.name.c_str(), "truth",
                truth_q.accuracy, truth_q.f1);
  }
  std::printf("\nShape check: kamino at or near the top per dataset,\n"
              "below the train-on-truth anchor.\n");
  return 0;
}
