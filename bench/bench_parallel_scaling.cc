// Parallel-runtime scaling: throughput of the three wired hot paths —
// BuildViolationMatrix (Algorithm 5), constraint-aware synthesis
// (Algorithm 3) and DP-SGD training (Algorithm 2) — at 1/2/4/N threads on
// the generated 600-row Adult workload, plus a cross-thread-count
// determinism check, the 1/2/4/8 shard sweep, the sorted order-DC and
// composite mixed-DC engines vs the naive pair scan at growing n, and the
// columnar core (packed-key index build, block shard merge, chunk codec)
// vs the boxed row-oriented equivalents. Emits BENCH_parallel.json for
// the perf trajectory.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench/harness.h"
#include "kamino/data/chunk_codec.h"
#include "kamino/dc/violations.h"
#include "kamino/obs/metrics.h"
#include "kamino/obs/trace.h"
#include "kamino/runtime/thread_pool.h"
#include "kamino/service/engine.h"

namespace kamino::bench {
namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Best-of-`reps` wall-clock seconds for `fn` (best-of damps scheduler
/// noise, which dwarfs variance on loaded CI machines).
template <typename Fn>
double TimeBest(int reps, const Fn& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const double start = Now();
    fn();
    best = std::min(best, Now() - start);
  }
  return best;
}

std::vector<size_t> ThreadCounts() {
  std::vector<size_t> counts = {1, 2, 4};
  const size_t hw = std::max(1u, std::thread::hardware_concurrency());
  if (std::find(counts.begin(), counts.end(), hw) == counts.end()) {
    counts.push_back(hw);
  }
  return counts;
}

bool SameTable(const Table& a, const Table& b) {
  if (a.num_rows() != b.num_rows() || a.num_columns() != b.num_columns()) {
    return false;
  }
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.num_columns(); ++c) {
      if (!(a.at(r, c) == b.at(r, c))) return false;
    }
  }
  return true;
}

int Main() {
  PrintHeader("Parallel runtime scaling (600-row Adult workload)");
  const BenchmarkDataset ds = MakeAdultLike(kDefaultRows, kSeed);
  const std::vector<WeightedConstraint> constraints = Constraints(ds);
  const size_t rows = ds.table.num_rows();
  std::vector<BenchRecord> records;

  // --- Hot path 1: the |D| x |Phi| violation matrix (Algorithm 5). ---
  std::printf("\n%-28s %8s %12s %10s\n", "method", "threads", "seconds",
              "speedup");
  double matrix_serial = 0.0;
  for (size_t t : ThreadCounts()) {
    runtime::SetGlobalNumThreads(t);
    const double secs = TimeBest(
        3, [&] { (void)BuildViolationMatrix(ds.table, constraints); });
    if (t == 1) matrix_serial = secs;
    records.push_back({"build_violation_matrix", rows, t, secs});
    std::printf("%-28s %8zu %12.4f %9.2fx\n", "build_violation_matrix", t,
                secs, matrix_serial / secs);
  }

  // --- Hot path 1b: the naive pair scan (general binary DCs). ---
  const DenialConstraint* binary_dc = nullptr;
  for (const WeightedConstraint& wc : constraints) {
    if (!wc.dc.is_unary()) binary_dc = &wc.dc;
  }
  if (binary_dc != nullptr) {
    double naive_serial = 0.0;
    for (size_t t : ThreadCounts()) {
      runtime::SetGlobalNumThreads(t);
      const double secs = TimeBest(
          3, [&] { (void)CountViolationsNaive(*binary_dc, ds.table); });
      if (t == 1) naive_serial = secs;
      records.push_back({"count_violations_naive", rows, t, secs});
      std::printf("%-28s %8zu %12.4f %9.2fx\n", "count_violations_naive", t,
                  secs, naive_serial / secs);
    }
  }

  // --- Hot paths 2+3: full pipeline (DP-SGD training + sampling), with
  // per-phase timings and the determinism guarantee checked for real. ---
  PhaseTimings serial_timings;
  Table serial_output;
  bool deterministic = true;
  for (size_t t : ThreadCounts()) {
    KaminoConfig config = BenchKaminoConfig(1.0, kSeed);
    config.options.num_threads = t;
    config.options.mcmc_resamples = 64;  // exercise the batched MCMC pass
    const double start = Now();
    auto result = RunKamino(ds.table, constraints, config);
    const double total = Now() - start;
    KAMINO_CHECK(result.ok()) << result.status().ToString();
    const PhaseTimings& ph = result.value().timings;
    if (t == 1) {
      serial_timings = ph;
      serial_output = result.value().synthetic;
    } else if (!SameTable(serial_output, result.value().synthetic)) {
      deterministic = false;
    }
    records.push_back({"pipeline_training", rows, t, ph.training});
    records.push_back({"pipeline_sampling", rows, t, ph.sampling});
    records.push_back({"pipeline_total", rows, t, total});
    std::printf("%-28s %8zu %12.4f %9.2fx\n", "pipeline_training", t,
                ph.training, serial_timings.training / ph.training);
    std::printf("%-28s %8zu %12.4f %9.2fx\n", "pipeline_sampling", t,
                ph.sampling, serial_timings.sampling / ph.sampling);
  }
  std::printf("\nsynthetic output across thread counts: %s\n",
              deterministic ? "IDENTICAL (bit-exact)" : "MISMATCH");

  // --- Hot path 4: shard-parallel synthesis (shard-count sweep). ---
  // Each shard count is its own output contract — (seed, num_shards)
  // determines the instance — so the sweep reports per-configuration
  // sampling time plus the cross-thread-count determinism check at every
  // shard count.
  std::printf("\n%-28s %8s %12s %12s\n", "method", "shards", "seconds",
              "merge-sec");
  bool shards_deterministic = true;
  for (size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    Table reference;
    for (size_t t : {size_t{1}, size_t{4}}) {
      KaminoConfig config = BenchKaminoConfig(1.0, kSeed);
      config.options.num_threads = t;
      config.options.num_shards = shards;
      config.options.mcmc_resamples = 64;
      auto result = RunKamino(ds.table, constraints, config);
      KAMINO_CHECK(result.ok()) << result.status();
      if (t == 1) {
        reference = result.value().synthetic;
      } else if (!SameTable(reference, result.value().synthetic)) {
        shards_deterministic = false;
      }
      const PhaseTimings& ph = result.value().timings;
      records.push_back({"sampling_shards" + std::to_string(shards), rows, t,
                         ph.sampling});
      records.push_back({"shard_merge_shards" + std::to_string(shards), rows,
                         t, ph.shard_merge});
      if (t == 4) {
        std::printf("%-28s %8zu %12.4f %12.4f\n", "sampling_shards", shards,
                    ph.sampling, ph.shard_merge);
      }
    }
  }
  std::printf("\nsharded output across thread counts: %s\n",
              shards_deterministic ? "IDENTICAL (bit-exact)" : "MISMATCH");

  // --- Hot path 5: sorted order-DC violation engine. ---
  // Naive pair scan vs the sorted Fenwick/block-list engine on the Tax
  // workload's grouped order DC (per-state salary/rate), at growing n:
  // full counting and the sampler-shaped incremental CountNew/AddRow
  // commit loop. Single-threaded so the ratio is purely algorithmic.
  runtime::SetGlobalNumThreads(1);
  std::printf("\n%-28s %8s %12s %12s %9s\n", "method", "rows", "naive-sec",
              "sorted-sec", "speedup");
  bool order_counts_agree = true;
  for (size_t n : {size_t{600}, size_t{2400}, size_t{9600}}) {
    const BenchmarkDataset tax = MakeTaxLike(n, kSeed);
    const std::vector<WeightedConstraint> tax_dcs = Constraints(tax);
    const DenialConstraint* order_dc = nullptr;
    for (const WeightedConstraint& wc : tax_dcs) {
      if (wc.dc.AsGroupedOrderSpec().has_value()) order_dc = &wc.dc;
    }
    KAMINO_CHECK(order_dc != nullptr) << "tax workload lost its order DC";
    if (CountViolations(*order_dc, tax.table) !=
        CountViolationsNaive(*order_dc, tax.table)) {
      order_counts_agree = false;
    }
    const double naive_count = TimeBest(
        2, [&] { (void)CountViolationsNaive(*order_dc, tax.table); });
    const double sorted_count =
        TimeBest(2, [&] { (void)CountViolations(*order_dc, tax.table); });
    records.push_back({"order_count_naive", n, 1, naive_count});
    records.push_back({"order_count_sorted", n, 1, sorted_count});
    std::printf("%-28s %8zu %12.4f %12.4f %8.1fx\n", "order_count", n,
                naive_count, sorted_count, naive_count / sorted_count);
    // The incremental commit loop: score every row against the prefix,
    // then add it — the shape of Algorithm 3's per-candidate scoring.
    auto run_index = [&](std::unique_ptr<ViolationIndex> index) {
      int64_t sum = 0;
      for (size_t i = 0; i < tax.table.num_rows(); ++i) {
        sum += index->CountNew(tax.table.row(i));
        index->AddRow(tax.table.row(i));
      }
      return sum;
    };
    int64_t naive_sum = 0;
    int64_t sorted_sum = 0;
    const double naive_index = TimeBest(
        2, [&] { naive_sum = run_index(MakeNaiveViolationIndex(*order_dc)); });
    const double sorted_index = TimeBest(
        2, [&] { sorted_sum = run_index(MakeViolationIndex(*order_dc)); });
    if (naive_sum != sorted_sum) order_counts_agree = false;
    records.push_back({"order_index_naive", n, 1, naive_index});
    records.push_back({"order_index_sorted", n, 1, sorted_index});
    std::printf("%-28s %8zu %12.4f %12.4f %8.1fx\n", "order_index", n,
                naive_index, sorted_index, naive_index / sorted_index);
  }
  std::printf("\norder-DC sorted vs naive counts: %s\n",
              order_counts_agree ? "IDENTICAL (exact)" : "MISMATCH");

  // --- Hot path 6: composite violation engine for mixed-shape DCs. ---
  // Binary DCs combining equality scope, strict/non-strict order
  // predicates, and inequations in one constraint — the residual class
  // that pair-scanned before the predicate decomposition — on the Tax
  // schema at growing n: full counting and the incremental commit loop,
  // composite engine vs the naive reference. Single-threaded so the
  // ratio is purely algorithmic.
  std::printf("\n%-28s %8s %12s %12s %9s\n", "method", "rows", "naive-sec",
              "composite-sec", "speedup");
  bool mixed_counts_agree = true;
  for (size_t n : {size_t{600}, size_t{2400}, size_t{9600}}) {
    const BenchmarkDataset tax = MakeTaxLike(n, kSeed);
    const Schema& schema = tax.table.schema();
    std::vector<DenialConstraint> mixed;
    for (const char* spec : {
             // equality + strict order pair + inequation
             "!(t1.state == t2.state & t1.salary > t2.salary & "
             "t1.rate < t2.rate & t1.marital != t2.marital)",
             // equality + two inequations
             "!(t1.state == t2.state & t1.marital != t2.marital & "
             "t1.single_exemp != t2.single_exemp)",
             // non-strict order pair + inequation
             "!(t1.single_exemp >= t2.single_exemp & "
             "t1.child_exemp <= t2.child_exemp & t1.has_child != t2.has_child)",
         }) {
      auto dc = DenialConstraint::Parse(spec, schema);
      KAMINO_CHECK(dc.ok()) << dc.status();
      KAMINO_CHECK(dc.value().Decompose().shape ==
                   PredicateDecomposition::Shape::kComposite)
          << spec << " left the composite class";
      mixed.push_back(dc.value());
    }
    for (const DenialConstraint& dc : mixed) {
      if (CountViolations(dc, tax.table) !=
          CountViolationsNaive(dc, tax.table)) {
        mixed_counts_agree = false;
      }
    }
    const double naive_count = TimeBest(2, [&] {
      for (const DenialConstraint& dc : mixed) {
        (void)CountViolationsNaive(dc, tax.table);
      }
    });
    const double composite_count = TimeBest(2, [&] {
      for (const DenialConstraint& dc : mixed) {
        (void)CountViolations(dc, tax.table);
      }
    });
    records.push_back({"mixed_count_naive", n, 1, naive_count});
    records.push_back({"mixed_count_composite", n, 1, composite_count});
    std::printf("%-28s %8zu %12.4f %12.4f %8.1fx\n", "mixed_count", n,
                naive_count, composite_count, naive_count / composite_count);
    auto run_indices = [&] (bool naive) {
      int64_t sum = 0;
      for (const DenialConstraint& dc : mixed) {
        auto index = naive ? MakeNaiveViolationIndex(dc)
                           : MakeViolationIndex(dc);
        for (size_t i = 0; i < tax.table.num_rows(); ++i) {
          sum += index->CountNew(tax.table.row(i));
          index->AddRow(tax.table.row(i));
        }
      }
      return sum;
    };
    int64_t naive_sum = 0;
    int64_t composite_sum = 0;
    const double naive_index =
        TimeBest(2, [&] { naive_sum = run_indices(true); });
    const double composite_index =
        TimeBest(2, [&] { composite_sum = run_indices(false); });
    if (naive_sum != composite_sum) mixed_counts_agree = false;
    records.push_back({"mixed_index_naive", n, 1, naive_index});
    records.push_back({"mixed_index_composite", n, 1, composite_index});
    std::printf("%-28s %8zu %12.4f %12.4f %8.1fx\n", "mixed_index", n,
                naive_index, composite_index, naive_index / composite_index);
  }
  std::printf("\nmixed-DC composite vs naive counts: %s\n",
              mixed_counts_agree ? "IDENTICAL (exact)" : "MISMATCH");
  runtime::SetGlobalNumThreads(0);

  // --- Columnar core: packed-key grouping, block shard merge, and the
  // chunk codec, vs the row-oriented equivalents they replaced. The
  // boxed baselines reproduce the pre-columnar semantics inline (Value
  // keys hashed through ValueHash into a node-based map; per-row boxed
  // appends), so the ratio isolates the layout change. Single-threaded.
  runtime::SetGlobalNumThreads(1);
  bool columnar_agree = true;
  std::printf("\n%-28s %8s %12s %12s %9s\n", "method", "rows", "boxed-sec",
              "columnar-sec", "speedup");
  struct BoxedKey {
    std::vector<Value> values;
    bool operator==(const BoxedKey& o) const {
      if (values.size() != o.values.size()) return false;
      for (size_t i = 0; i < values.size(); ++i) {
        if (!(values[i] == o.values[i])) return false;
      }
      return true;
    }
  };
  struct BoxedKeyHash {
    size_t operator()(const BoxedKey& k) const {
      size_t h = 1469598103934665603ull;
      for (const Value& v : k.values) {
        h ^= ValueHash{}(v);
        h *= 1099511628211ull;
      }
      return h;
    }
  };
  for (size_t n : {size_t{600}, size_t{2400}, size_t{9600}}) {
    const BenchmarkDataset tax = MakeTaxLike(n, kSeed);
    const std::vector<WeightedConstraint> tax_dcs = Constraints(tax);
    std::vector<WeightedConstraint> fd_dcs;
    std::vector<std::pair<std::vector<size_t>, size_t>> fds;
    for (const WeightedConstraint& wc : tax_dcs) {
      std::vector<size_t> lhs;
      size_t rhs = 0;
      if (wc.dc.AsFd(&lhs, &rhs)) {
        fd_dcs.push_back(wc);
        fds.emplace_back(std::move(lhs), rhs);
      }
    }
    KAMINO_CHECK(!fd_dcs.empty()) << "tax workload lost its FDs";

    // FD violation-index build: per-row (group_size - cell_size) columns.
    auto boxed_fd_columns = [&] {
      std::vector<std::vector<double>> cols;
      for (const auto& [lhs, rhs] : fds) {
        std::unordered_map<BoxedKey, int64_t, BoxedKeyHash> groups, cells;
        std::vector<BoxedKey> gkeys(n), ckeys(n);
        for (size_t i = 0; i < n; ++i) {
          BoxedKey g;
          g.values.reserve(lhs.size());
          for (size_t a : lhs) g.values.push_back(tax.table.at(i, a));
          BoxedKey cell = g;
          cell.values.push_back(tax.table.at(i, rhs));
          ++groups[g];
          ++cells[cell];
          gkeys[i] = std::move(g);
          ckeys[i] = std::move(cell);
        }
        std::vector<double> col(n);
        for (size_t i = 0; i < n; ++i) {
          col[i] = static_cast<double>(groups[gkeys[i]] - cells[ckeys[i]]);
        }
        cols.push_back(std::move(col));
      }
      return cols;
    };
    std::vector<std::vector<double>> boxed_cols;
    std::vector<std::vector<double>> packed_matrix;
    const double boxed_build =
        TimeBest(3, [&] { boxed_cols = boxed_fd_columns(); });
    const double packed_build = TimeBest(
        3, [&] { packed_matrix = BuildViolationMatrix(tax.table, fd_dcs); });
    for (size_t l = 0; l < fds.size(); ++l) {
      for (size_t i = 0; i < n; ++i) {
        if (packed_matrix[i][l] != boxed_cols[l][i]) columnar_agree = false;
      }
    }
    records.push_back({"boxed_index_build", n, 1, boxed_build});
    records.push_back({"columnar_index_build", n, 1, packed_build});
    std::printf("%-28s %8zu %12.4f %12.4f %8.1fx\n", "columnar_index_build",
                n, boxed_build, packed_build, boxed_build / packed_build);

    // Shard merge: 4 shard slices concatenated into one instance —
    // per-row boxed appends vs the columnar block copy.
    std::vector<Table> shards;
    const size_t per = n / 4;
    for (size_t s = 0; s < 4; ++s) {
      const size_t lo = s * per;
      const size_t len = s + 1 == 4 ? n - lo : per;
      shards.push_back(tax.table.Slice(lo, len));
    }
    Table merged_rowwise(tax.table.schema());
    Table merged_columnar(tax.table.schema());
    const double rowwise_merge = TimeBest(3, [&] {
      Table out(tax.table.schema());
      for (const Table& s : shards) {
        for (size_t i = 0; i < s.num_rows(); ++i) {
          out.AppendRowUnchecked(s.row(i));
        }
      }
      merged_rowwise = std::move(out);
    });
    const double columnar_merge = TimeBest(3, [&] {
      Table out(tax.table.schema());
      for (const Table& s : shards) {
        out.AppendRowsFrom(s, 0, s.num_rows());
      }
      merged_columnar = std::move(out);
    });
    if (!SameTable(merged_rowwise, merged_columnar) ||
        !SameTable(merged_columnar, tax.table)) {
      columnar_agree = false;
    }
    records.push_back({"rowwise_shard_merge", n, 1, rowwise_merge});
    records.push_back({"columnar_shard_merge", n, 1, columnar_merge});
    std::printf("%-28s %8zu %12.4f %12.4f %8.1fx\n", "columnar_shard_merge",
                n, rowwise_merge, columnar_merge,
                rowwise_merge / columnar_merge);

    // Chunk codec: encoded payload vs the raw Value payload it replaces
    // on the wire (bytes recorded in the value slot of the record).
    const std::vector<uint8_t> encoded = EncodeChunkColumns(tax.table);
    auto decoded = DecodeChunkColumns(tax.table.schema(), encoded);
    KAMINO_CHECK(decoded.ok()) << decoded.status();
    if (!SameTable(decoded.value(), tax.table)) columnar_agree = false;
    const size_t raw_bytes = RawChunkBytes(tax.table);
    records.push_back({"chunk_encode_bytes", n, 1,
                       static_cast<double>(encoded.size())});
    records.push_back({"chunk_raw_bytes", n, 1,
                       static_cast<double>(raw_bytes)});
    std::printf("%-28s %8zu %12zu %12zu %8.1fx\n", "chunk_encode_bytes", n,
                raw_bytes, encoded.size(),
                static_cast<double>(raw_bytes) /
                    static_cast<double>(encoded.size()));
  }
  std::printf("\ncolumnar vs boxed results: %s\n",
              columnar_agree ? "IDENTICAL (exact)" : "MISMATCH");
  runtime::SetGlobalNumThreads(0);

  // --- Hot path 7: the session engine (fit-once / synthesize-many). ---
  // One fit amortizes over N synthesis requests: the break-even point vs
  // N full RunKamino calls is fit/(fit_per_run_saved) = 1, i.e. every
  // request past the first gets the entire fit for free. Also measures
  // the streaming time-to-first-chunk on a 4-shard job — the latency a
  // row consumer sees before the job itself completes.
  bool service_deterministic = true;
  bool ooc_resident_bounded = true;
  {
    KaminoEngine engine;
    KaminoConfig config = BenchKaminoConfig(1.0, kSeed);
    const double fit_start = Now();
    auto model = engine.Fit(ds.table, constraints, config);
    const double fit_seconds = Now() - fit_start;
    KAMINO_CHECK(model.ok()) << model.status();
    records.push_back({"service_fit", rows, 1, fit_seconds});

    constexpr int kRequests = 4;
    double synthesize_seconds = 0.0;
    std::printf("\n%-28s %8s %12s\n", "method", "request", "seconds");
    std::printf("%-28s %8s %12.4f\n", "service_fit", "-", fit_seconds);
    for (int i = 0; i < kRequests; ++i) {
      SynthesisRequest request;
      request.seed = 100 + static_cast<uint64_t>(i);
      const double t0 = Now();
      auto result = engine.Synthesize(model.value(), request);
      KAMINO_CHECK(result.ok()) << result.status();
      const double secs = Now() - t0;
      synthesize_seconds += secs;
      records.push_back({"service_synthesize", rows, 1, secs});
      std::printf("%-28s %8d %12.4f\n", "service_synthesize", i, secs);
      // Identical requests must reproduce identical instances.
      auto again = engine.Synthesize(model.value(), request);
      KAMINO_CHECK(again.ok()) << again.status();
      if (!SameTable(result.value().synthetic, again.value().synthetic)) {
        service_deterministic = false;
      }
    }
    std::printf(
        "%-28s %8d %12.4f  (vs %.4f for %d full runs)\n",
        "service_session_total", kRequests, fit_seconds + synthesize_seconds,
        static_cast<double>(kRequests) *
            (fit_seconds + synthesize_seconds / kRequests),
        kRequests);

    // Streaming: time to the first delivered chunk vs job total, global
    // merge vs progressive prefix-frozen merge, across request sizes.
    // Both clocks come from the engine's own telemetry, which starts at
    // job start (after dequeue) — queue wait is excluded, so the numbers
    // measure sampling + merge latency, not Submit-to-dequeue slack.
    struct CountingSink : RowSink {
      size_t chunks = 0;
      Status OnChunk(const TableChunk&) override {
        ++chunks;
        return Status::OK();
      }
    };
    std::printf("\n%-28s %8s %12s %12s\n", "method", "rows", "first_chunk",
                "job_total");
    for (size_t stream_rows : {size_t{600}, size_t{2400}, size_t{9600}}) {
      for (bool progressive : {false, true}) {
        CountingSink sink;
        SynthesisRequest streaming;
        streaming.seed = 7;
        streaming.num_rows = stream_rows;
        streaming.num_shards = 4;
        streaming.progressive_merge = progressive;
        streaming.sink = &sink;
        streaming.collect_table = false;
        auto job = engine.Submit(model.value(), streaming);
        auto job_result = job->Wait();
        KAMINO_CHECK(job_result.ok()) << job_result.status();
        KAMINO_CHECK(sink.chunks == 4u) << "streaming run lost chunks";
        const double first = job_result.value().telemetry.first_chunk_seconds;
        const double total = job_result.value().sampling_seconds;
        records.push_back({progressive ? "stream_first_chunk_shards4"
                                       : "stream_first_chunk_global_shards4",
                           stream_rows, 1, first});
        records.push_back({progressive ? "stream_job_total_shards4"
                                       : "stream_job_total_global_shards4",
                           stream_rows, 1, total});
        std::printf("%-28s %8zu %12.4f %12.4f\n",
                    progressive ? "stream_progressive" : "stream_global",
                    stream_rows, first, total);
      }
    }

    // Out-of-core streaming: the in-memory progressive merge vs the
    // spill-backed one at 4 shards across request sizes. Rows are
    // bit-identical by contract (asserted in OutOfCoreTest); what this
    // sweep measures is the memory/latency trade — the resident-row
    // high-water mark collapsing from n to ~2 shard widths, the bytes
    // the spill store absorbs instead, and what the spill costs in
    // first-chunk / job-total seconds.
    std::printf("\n%-28s %8s %12s %12s %10s %12s\n", "method", "rows",
                "first_chunk", "job_total", "peak_rows", "spill_bytes");
    for (size_t stream_rows : {size_t{600}, size_t{2400}, size_t{9600}}) {
      for (bool out_of_core : {false, true}) {
        CountingSink sink;
        SynthesisRequest streaming;
        streaming.seed = 7;
        streaming.num_rows = stream_rows;
        streaming.num_shards = 4;
        streaming.progressive_merge = true;
        streaming.out_of_core = out_of_core;
        streaming.sink = &sink;
        streaming.collect_table = false;
        auto job = engine.Submit(model.value(), streaming);
        auto job_result = job->Wait();
        KAMINO_CHECK(job_result.ok()) << job_result.status();
        KAMINO_CHECK(sink.chunks == 4u) << "out-of-core run lost chunks";
        const SynthesisTelemetry& tel = job_result.value().telemetry;
        const double first = tel.first_chunk_seconds;
        const double total = job_result.value().sampling_seconds;
        const char* tag = out_of_core ? "ooc" : "inmem";
        records.push_back({std::string(tag) + "_first_chunk_shards4",
                           stream_rows, 1, first});
        records.push_back({std::string(tag) + "_job_total_shards4",
                           stream_rows, 1, total});
        records.push_back({std::string(tag) + "_peak_resident_rows",
                           stream_rows, 1,
                           static_cast<double>(tel.peak_resident_rows)});
        records.push_back({std::string(tag) + "_spill_bytes", stream_rows, 1,
                           static_cast<double>(tel.spill_bytes)});
        if (out_of_core) {
          // The acceptance bound: at 4 shards the spill-backed run's
          // residency must stay within 2 shard widths at every size.
          const int64_t shard_width =
              static_cast<int64_t>((stream_rows + 3) / 4);
          if (tel.peak_resident_rows > 2 * shard_width) {
            ooc_resident_bounded = false;
          }
        }
        std::printf("%-28s %8zu %12.4f %12.4f %10lld %12lld\n",
                    out_of_core ? "stream_out_of_core" : "stream_in_memory",
                    stream_rows, first, total,
                    static_cast<long long>(tel.peak_resident_rows),
                    static_cast<long long>(tel.spill_bytes));
      }
    }
    std::printf("\nout-of-core peak residency <= 2 shard widths: %s\n",
                ooc_resident_bounded ? "OK" : "EXCEEDED");

    // Model artifact serde: the cost of checkpointing a fit to its wire
    // form and rehydrating it (what a load-by-id worker pays per cold
    // model), plus the artifact size (bytes in the value slot, like
    // chunk_encode_bytes).
    auto artifact_bytes = model.value().Serialize();
    KAMINO_CHECK(artifact_bytes.ok()) << artifact_bytes.status();
    const double save_seconds = TimeBest(3, [&] {
      auto bytes = model.value().Serialize();
      KAMINO_CHECK(bytes.ok()) << bytes.status();
    });
    const double load_seconds = TimeBest(3, [&] {
      auto loaded = FittedModel::Deserialize(artifact_bytes.value());
      KAMINO_CHECK(loaded.ok()) << loaded.status();
    });
    auto reloaded = FittedModel::Deserialize(artifact_bytes.value());
    KAMINO_CHECK(reloaded.ok()) << reloaded.status();
    SynthesisRequest artifact_check;
    artifact_check.seed = 100;
    auto from_fit = engine.Synthesize(model.value(), artifact_check);
    auto from_artifact = engine.Synthesize(reloaded.value(), artifact_check);
    KAMINO_CHECK(from_fit.ok() && from_artifact.ok());
    if (!SameTable(from_fit.value().synthetic,
                   from_artifact.value().synthetic)) {
      service_deterministic = false;
    }
    records.push_back({"artifact_save", rows, 1, save_seconds});
    records.push_back({"artifact_load", rows, 1, load_seconds});
    records.push_back({"artifact_bytes", rows, 1,
                       static_cast<double>(artifact_bytes.value().size())});
    std::printf("%-28s %8s %12.4f\n", "artifact_save", "-", save_seconds);
    std::printf("%-28s %8s %12.4f  (%zu bytes)\n", "artifact_load", "-",
                load_seconds, artifact_bytes.value().size());
  }
  runtime::SetGlobalNumThreads(0);

  // --- Observability overhead: the 9600-row order-DC sweep (count + the
  // incremental index commit loop) with tracing + metrics off vs on. The
  // obs layer promises near-zero overhead: recording is one relaxed
  // enabled-check per instrumentation point and the per-row hot loops are
  // untouched, so the on/off delta should disappear into timer noise
  // (acceptance bound: < 5%).
  bool obs_output_identical = true;
  runtime::SetGlobalNumThreads(1);
  {
    const size_t n = 9600;
    const BenchmarkDataset tax = MakeTaxLike(n, kSeed);
    const std::vector<WeightedConstraint> tax_dcs = Constraints(tax);
    const DenialConstraint* order_dc = nullptr;
    for (const WeightedConstraint& wc : tax_dcs) {
      if (wc.dc.AsGroupedOrderSpec().has_value()) order_dc = &wc.dc;
    }
    KAMINO_CHECK(order_dc != nullptr) << "tax workload lost its order DC";
    int64_t sweep_sum = 0;
    auto sweep = [&] {
      obs::TraceSpan span("bench/obs_sweep");
      sweep_sum = CountViolations(*order_dc, tax.table);
      auto index = MakeViolationIndex(*order_dc);
      for (size_t i = 0; i < tax.table.num_rows(); ++i) {
        sweep_sum += index->CountNew(tax.table.row(i));
        index->AddRow(tax.table.row(i));
      }
    };
    sweep();  // warm up caches before either timed variant
    const int64_t expected_sum = sweep_sum;
    const double off_seconds = TimeBest(5, sweep);
    obs::TraceRecorder::Global().SetEnabled(true);
    obs::MetricsRegistry::Global().SetEnabled(true);
    const double on_seconds = TimeBest(5, sweep);
    if (sweep_sum != expected_sum) obs_output_identical = false;
    obs::TraceRecorder::Global().SetEnabled(false);
    obs::TraceRecorder::Global().Clear();
    obs::MetricsRegistry::Global().SetEnabled(false);
    obs::MetricsRegistry::Global().Reset();
    records.push_back({"obs_overhead_off", n, 1, off_seconds});
    records.push_back({"obs_overhead_on", n, 1, on_seconds});
    std::printf("\n%-28s %8s %12s %12s %9s\n", "method", "rows", "off-sec",
                "on-sec", "overhead");
    std::printf("%-28s %8zu %12.4f %12.4f %8.1f%%\n", "obs_overhead", n,
                off_seconds, on_seconds,
                100.0 * (on_seconds - off_seconds) / off_seconds);
  }
  runtime::SetGlobalNumThreads(0);

  WriteBenchJson("BENCH_parallel.json", records);
  return deterministic && shards_deterministic && order_counts_agree &&
                 mixed_counts_agree && columnar_agree &&
                 service_deterministic && obs_output_identical &&
                 ooc_resident_bounded
             ? 0
             : 1;
}

}  // namespace
}  // namespace kamino::bench

int main() { return kamino::bench::Main(); }
