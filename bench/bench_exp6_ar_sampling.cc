// Experiment 6: constraint-aware direct sampling vs accept-reject (AR)
// sampling, on hard DCs (Adult-like) and soft DCs (BR2000-like).

#include <cstdio>

#include "bench/harness.h"
#include "kamino/dc/violations.h"

int main() {
  using namespace kamino;
  using namespace kamino::bench;
  PrintHeader("Experiment 6: direct constraint-aware vs accept-reject sampling");
  std::printf("%-10s %-8s %12s %10s %12s\n", "dataset", "mode", "violations%",
              "time(s)", "AR-proposals");

  for (BenchmarkDataset& ds :
       std::vector<BenchmarkDataset>{MakeAdultLike(400, kSeed),
                                     MakeBr2000Like(400, kSeed)}) {
    auto constraints = Constraints(ds);
    for (bool accept_reject : {false, true}) {
      KaminoConfig config = BenchKaminoConfig(1.0, kSeed);
      config.options.accept_reject = accept_reject;
      config.options.ar_max_tries = 300;
      auto result = RunKamino(ds.table, constraints, config);
      if (!result.ok()) {
        std::fprintf(stderr, "run failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      double violations = 0.0;
      for (const WeightedConstraint& wc : constraints) {
        violations += ViolationRatePercent(wc.dc, result.value().synthetic);
      }
      std::printf("%-10s %-8s %11.2f%% %10.2f %12lld\n", ds.name.c_str(),
                  accept_reject ? "AR" : "direct", violations,
                  result.value().timings.Total(),
                  static_cast<long long>(result.value().telemetry.ar_proposals));
    }
  }
  std::printf("\nShape check: AR produces more violations than direct sampling\n"
              "on the hard-DC dataset (adult); on soft DCs both are similar.\n");
  return 0;
}
