// Micro-benchmarks (google-benchmark) for the hot paths: violation
// counting (naive vs FD fast path), the incremental violation index,
// autograd forward/backward of the discriminative model, and the RDP
// accountant.

#include <benchmark/benchmark.h>

#include "kamino/core/model.h"
#include "kamino/data/generators.h"
#include "kamino/dc/violations.h"
#include "kamino/dp/rdp.h"
#include "kamino/nn/dpsgd.h"

namespace kamino {
namespace {

const BenchmarkDataset& AdultData() {
  static const BenchmarkDataset* ds = new BenchmarkDataset(MakeAdultLike(500, 7));
  return *ds;
}

std::vector<WeightedConstraint> AdultConstraints() {
  const BenchmarkDataset& ds = AdultData();
  return ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema())
      .TakeValue();
}

void BM_CountViolationsNaive(benchmark::State& state) {
  auto constraints = AdultConstraints();
  Table table = AdultData().table.Head(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountViolationsNaive(constraints[0].dc, table));
  }
}
BENCHMARK(BM_CountViolationsNaive)->Arg(100)->Arg(300);

void BM_CountViolationsFdFastPath(benchmark::State& state) {
  auto constraints = AdultConstraints();
  Table table = AdultData().table.Head(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountViolations(constraints[0].dc, table));
  }
}
BENCHMARK(BM_CountViolationsFdFastPath)->Arg(100)->Arg(300);

void BM_ViolationIndexCountNew(benchmark::State& state) {
  auto constraints = AdultConstraints();
  const Table& table = AdultData().table;
  auto index = MakeViolationIndex(constraints[0].dc);
  for (size_t i = 0; i < table.num_rows(); ++i) index->AddRow(table.row(i));
  size_t r = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index->CountNew(table.row(r)));
    r = (r + 1) % table.num_rows();
  }
}
BENCHMARK(BM_ViolationIndexCountNew);

void BM_DiscriminativeForwardBackward(benchmark::State& state) {
  const BenchmarkDataset& ds = AdultData();
  Rng rng(3);
  EncoderStore store(ds.table.schema(), 12, &rng);
  std::vector<size_t> context = {0, 1, 2, 3, 4};
  DiscriminativeModel model(ds.table.schema(), context, {5}, &store, &rng);
  size_t r = 0;
  for (auto _ : state) {
    ForwardContext ctx;
    Var loss = model.Loss(ds.table.row(r), &ctx);
    Backward(loss);
    benchmark::DoNotOptimize(loss->value[0]);
    r = (r + 1) % ds.table.num_rows();
  }
}
BENCHMARK(BM_DiscriminativeForwardBackward);

void BM_RdpAccountantEpsilon(benchmark::State& state) {
  RdpAccountant acc;
  acc.AddGaussian(4.0, 1);
  acc.AddSampledGaussian(1.1, 0.01, 1400);
  for (auto _ : state) {
    benchmark::DoNotOptimize(acc.EpsilonFor(1e-6));
  }
}
BENCHMARK(BM_RdpAccountantEpsilon);

void BM_SgmRdpStep(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(SampledGaussianRdp(1.1, 0.02, 32));
  }
}
BENCHMARK(BM_SgmRdpStep);

}  // namespace
}  // namespace kamino

BENCHMARK_MAIN();
