#ifndef KAMINO_BENCH_HARNESS_H_
#define KAMINO_BENCH_HARNESS_H_

// Shared experiment harness for the per-table/per-figure benchmark
// binaries. Every binary regenerates one artifact of the paper's
// evaluation section on the scaled-down generated workloads (absolute
// numbers are not comparable with the paper's testbed; the *shape* -
// which method wins, by how much, and trends - is).

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "kamino/core/kamino.h"
#include "kamino/data/generators.h"
#include "kamino/dc/constraint.h"

namespace kamino::bench {

/// Default scaled-down workload size used by the experiment binaries.
inline constexpr size_t kDefaultRows = 600;
inline constexpr uint64_t kSeed = 2024;

/// One synthesis output, timed.
struct MethodRun {
  std::string method;
  Table synthetic;
  double seconds = 0.0;
};

/// Kamino config tuned for bench scale: modest training budget so the
/// whole suite completes in minutes.
KaminoConfig BenchKaminoConfig(double epsilon, uint64_t seed);

/// Runs Kamino on the dataset and returns its synthetic instance.
MethodRun RunKaminoMethod(const BenchmarkDataset& ds, double epsilon,
                          uint64_t seed);

/// Runs one of the four baselines ("privbayes", "nist", "dp-vae",
/// "pate-gan").
MethodRun RunBaseline(const std::string& name, const BenchmarkDataset& ds,
                      double epsilon, uint64_t seed);

/// All five methods in the paper's column order:
/// PrivBayes, DP-VAE, PATE-GAN, NIST, Kamino.
std::vector<MethodRun> RunAllMethods(const BenchmarkDataset& ds,
                                     double epsilon, uint64_t seed);

/// Parses the dataset's DCs (never fails for generator output).
std::vector<WeightedConstraint> Constraints(const BenchmarkDataset& ds);

/// Mean classification accuracy/F1 over a subset of attributes (Metric II
/// at bench scale). `max_attrs` limits the label attributes evaluated.
struct QualitySummary {
  double accuracy = 0.0;
  double f1 = 0.0;
};
QualitySummary ClassifierQuality(const Table& synthetic, const Table& truth,
                                 size_t max_attrs, uint64_t seed);

/// Mean 1-way / 2-way marginal distances (Metric III).
struct MarginalSummary {
  double one_way_mean = 0.0;
  double one_way_max = 0.0;
  double two_way_mean = 0.0;
};
MarginalSummary MarginalQuality(const Table& synthetic, const Table& truth,
                                uint64_t seed);

/// Prints a horizontal rule + centered title.
void PrintHeader(const std::string& title);

/// One machine-readable timing record for the perf trajectory.
struct BenchRecord {
  std::string method;
  size_t rows = 0;
  size_t threads = 1;
  double seconds = 0.0;
};

/// Writes `records` as a JSON array of {"method", "rows", "threads",
/// "seconds"} objects (bench_parallel_scaling writes BENCH_parallel.json
/// with it), so future PRs can diff performance mechanically instead of
/// scraping stdout.
void WriteBenchJson(const std::string& path,
                    const std::vector<BenchRecord>& records);

}  // namespace kamino::bench

#endif  // KAMINO_BENCH_HARNESS_H_
