// Figure 6 (Experiment 7): task quality vs privacy budget
// eps in {0.1, 0.2, 0.4, 0.8, 1.6, inf} on the Adult-like workload.

#include <cstdio>

#include "bench/harness.h"

int main() {
  using namespace kamino;
  using namespace kamino::bench;
  PrintHeader("Figure 6: quality vs privacy budget (Adult)");
  BenchmarkDataset ds = MakeAdultLike(500, kSeed);
  std::printf("%-8s %-10s %9s %7s %10s %10s\n", "epsilon", "method",
              "accuracy", "F1", "1way-mean", "2way-mean");
  // Convention: epsilon <= 0 denotes the non-private (eps = inf) runs.
  for (double epsilon : {0.1, 0.2, 0.4, 0.8, 1.6, -1.0}) {
    for (const MethodRun& run : RunAllMethods(ds, epsilon, kSeed)) {
      const QualitySummary q =
          ClassifierQuality(run.synthetic, ds.table, 4, kSeed);
      const MarginalSummary m = MarginalQuality(run.synthetic, ds.table, kSeed);
      if (epsilon > 0) {
        std::printf("%-8.1f %-10s %9.3f %7.3f %10.3f %10.3f\n", epsilon,
                    run.method.c_str(), q.accuracy, q.f1, m.one_way_mean,
                    m.two_way_mean);
      } else {
        std::printf("%-8s %-10s %9.3f %7.3f %10.3f %10.3f\n", "inf",
                    run.method.c_str(), q.accuracy, q.f1, m.one_way_mean,
                    m.two_way_mean);
      }
    }
  }
  std::printf("\nShape check: quality improves with epsilon for every method;\n"
              "kamino stays at/near the best accuracy across budgets.\n");
  return 0;
}
