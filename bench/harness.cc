#include "bench/harness.h"

#include <chrono>
#include <cstdio>
#include <fstream>

#include "kamino/baselines/dpvae.h"
#include "kamino/baselines/nist_pgm.h"
#include "kamino/baselines/pategan.h"
#include "kamino/baselines/privbayes.h"
#include "kamino/common/logging.h"
#include "kamino/eval/classifiers.h"
#include "kamino/eval/marginals.h"

namespace kamino::bench {
namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

KaminoConfig BenchKaminoConfig(double epsilon, uint64_t seed) {
  KaminoConfig config;
  config.epsilon = epsilon;
  config.delta = 1e-6;
  config.options.seed = seed;
  config.options.iterations = 40;
  config.options.embed_dim = 10;
  if (epsilon <= 0.0) {  // convention: non-private run
    config.options.non_private = true;
  }
  return config;
}

std::vector<WeightedConstraint> Constraints(const BenchmarkDataset& ds) {
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema());
  KAMINO_CHECK(constraints.ok()) << constraints.status().ToString();
  return std::move(constraints).TakeValue();
}

MethodRun RunKaminoMethod(const BenchmarkDataset& ds, double epsilon,
                          uint64_t seed) {
  const double start = Now();
  auto result = RunKamino(ds.table, Constraints(ds),
                          BenchKaminoConfig(epsilon, seed));
  KAMINO_CHECK(result.ok()) << result.status().ToString();
  MethodRun run;
  run.method = "kamino";
  run.synthetic = std::move(result.value().synthetic);
  run.seconds = Now() - start;
  return run;
}

MethodRun RunBaseline(const std::string& name, const BenchmarkDataset& ds,
                      double epsilon, uint64_t seed) {
  // Non-private runs approximate epsilon = infinity with a huge budget.
  const double eps = epsilon <= 0.0 ? 1e6 : epsilon;
  Rng rng(seed);
  std::unique_ptr<Synthesizer> synth;
  if (name == "privbayes") {
    PrivBayes::Options o;
    o.epsilon = eps;
    synth = std::make_unique<PrivBayes>(o);
  } else if (name == "nist") {
    NistPgm::Options o;
    o.epsilon = eps;
    synth = std::make_unique<NistPgm>(o);
  } else if (name == "dp-vae") {
    DpVae::Options o;
    o.epsilon = eps;
    o.iterations = 60;
    synth = std::make_unique<DpVae>(o);
  } else if (name == "pate-gan") {
    PateGan::Options o;
    o.epsilon = eps;
    o.train_steps = 80;
    synth = std::make_unique<PateGan>(o);
  } else {
    KAMINO_LOG(Fatal) << "unknown baseline " << name;
  }
  const double start = Now();
  auto out = synth->Synthesize(ds.table, ds.table.num_rows(), &rng);
  KAMINO_CHECK(out.ok()) << name << ": " << out.status().ToString();
  MethodRun run;
  run.method = name;
  run.synthetic = std::move(out).TakeValue();
  run.seconds = Now() - start;
  return run;
}

std::vector<MethodRun> RunAllMethods(const BenchmarkDataset& ds,
                                     double epsilon, uint64_t seed) {
  std::vector<MethodRun> runs;
  runs.push_back(RunBaseline("privbayes", ds, epsilon, seed + 1));
  runs.push_back(RunBaseline("dp-vae", ds, epsilon, seed + 2));
  runs.push_back(RunBaseline("pate-gan", ds, epsilon, seed + 3));
  runs.push_back(RunBaseline("nist", ds, epsilon, seed + 4));
  runs.push_back(RunKaminoMethod(ds, epsilon, seed + 5));
  return runs;
}

QualitySummary ClassifierQuality(const Table& synthetic, const Table& truth,
                                 size_t max_attrs, uint64_t seed) {
  // Metric II on a bounded prefix of label attributes (runtime control at
  // bench scale): train the basket on 70% synthetic, test on 30% truth.
  Rng rng(seed);
  const size_t attrs = std::min(max_attrs, truth.schema().size());
  const size_t train_rows = synthetic.num_rows() * 7 / 10;
  const size_t test_start = truth.num_rows() * 7 / 10;
  Table truth_test(truth.schema());
  for (size_t r = test_start; r < truth.num_rows(); ++r) {
    truth_test.AppendRowUnchecked(truth.row(r));
  }

  QualitySummary q;
  for (size_t a = 0; a < attrs; ++a) {
    const LabelRule rule = MakeLabelRule(truth, a);
    LabeledData train = Encode(synthetic.Head(train_rows), a, rule);
    LabeledData test = Encode(truth_test, a, rule);
    ClassificationQuality mean;
    auto basket = MakeClassifierBasket();
    for (auto& model : basket) {
      model->Fit(train, &rng);
      const ClassificationQuality s = Score(*model, test);
      mean.accuracy += s.accuracy;
      mean.f1 += s.f1;
    }
    q.accuracy += mean.accuracy / basket.size();
    q.f1 += mean.f1 / basket.size();
  }
  q.accuracy /= attrs;
  q.f1 /= attrs;
  return q;
}

MarginalSummary MarginalQuality(const Table& synthetic, const Table& truth,
                                uint64_t seed) {
  Rng rng(seed);
  MarginalSummary m;
  const auto one_way = OneWayMarginalDistances(synthetic, truth, 16);
  m.one_way_mean = MeanOf(one_way);
  m.one_way_max = MaxOf(one_way);
  m.two_way_mean =
      MeanOf(TwoWayMarginalDistances(synthetic, truth, 16, 10, &rng));
  return m;
}

void WriteBenchJson(const std::string& path,
                    const std::vector<BenchRecord>& records) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "WriteBenchJson: cannot open %s\n", path.c_str());
    return;
  }
  out << "[\n";
  for (size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    char seconds[32];
    std::snprintf(seconds, sizeof(seconds), "%.6f", r.seconds);
    out << "  {\"method\": \"" << r.method << "\", \"rows\": " << r.rows
        << ", \"threads\": " << r.threads << ", \"seconds\": " << seconds
        << "}" << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "]\n";
  std::printf("wrote %zu records to %s\n", records.size(), path.c_str());
}

void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

}  // namespace kamino::bench
