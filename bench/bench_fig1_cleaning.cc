// Figure 1 (motivation): baseline synthetic data, with and without a
// post-hoc constraint repair ("standard" vs "cleaned"). Repairing restores
// consistency but hurts both classification accuracy and 2-way marginals.

#include <cstdio>

#include "bench/harness.h"
#include "kamino/dc/violations.h"
#include "kamino/eval/repair.h"

int main() {
  using namespace kamino;
  using namespace kamino::bench;
  PrintHeader(
      "Figure 1: utility of baseline synthetic Adult, standard vs cleaned");
  BenchmarkDataset ds = MakeAdultLike(kDefaultRows, kSeed);
  auto constraints = Constraints(ds);

  std::printf("%-10s %-9s %9s %10s %12s\n", "method", "variant", "accuracy",
              "2way-TVD", "violations%");
  for (const char* name : {"privbayes", "pate-gan", "dp-vae"}) {
    MethodRun run = RunBaseline(name, ds, 1.0, kSeed);
    Table cleaned = RepairViolations(run.synthetic, constraints);
    for (const auto& [variant, table] :
         std::vector<std::pair<std::string, const Table*>>{
             {"standard", &run.synthetic}, {"cleaned", &cleaned}}) {
      const QualitySummary q = ClassifierQuality(*table, ds.table, 6, kSeed);
      const MarginalSummary m = MarginalQuality(*table, ds.table, kSeed);
      double violations = 0.0;
      for (const WeightedConstraint& wc : constraints) {
        violations += ViolationRatePercent(wc.dc, *table);
      }
      std::printf("%-10s %-9s %9.3f %10.3f %11.2f%%\n", name, variant.c_str(),
                  q.accuracy, m.two_way_mean, violations);
    }
  }
  std::printf(
      "\nShape check: 'cleaned' rows should show lower accuracy and/or\n"
      "larger marginal distance than 'standard', at ~0%% violations.\n");
  return 0;
}
