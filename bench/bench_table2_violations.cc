// Table 2 (Experiment 1): percentage of tuple pairs that violate each DC,
// for the truth, the four baselines and Kamino at (eps=1, delta=1e-6).
//
// Expected shape (paper): the truth and Kamino have (near-)zero violations
// on hard DCs and truth-like rates on soft DCs, while the i.i.d. baselines
// violate broadly.

#include <cstdio>

#include "bench/harness.h"
#include "kamino/dc/violations.h"

int main() {
  using namespace kamino;
  using namespace kamino::bench;
  PrintHeader("Table 2: % of tuple pairs violating each DC (eps=1)");
  std::printf("%-10s %-6s %8s %10s %8s %9s %6s %8s\n", "dataset", "DC",
              "truth", "privbayes", "dp-vae", "pate-gan", "nist", "kamino");
  for (const BenchmarkDataset& ds : MakeAllBenchmarks(kDefaultRows, kSeed)) {
    auto constraints = Constraints(ds);
    std::vector<MethodRun> runs = RunAllMethods(ds, 1.0, kSeed);
    for (size_t l = 0; l < constraints.size(); ++l) {
      const DenialConstraint& dc = constraints[l].dc;
      std::printf("%-10s phi_%-3zu %7.2f%%", ds.name.c_str(), l + 1,
                  ViolationRatePercent(dc, ds.table));
      // Column order: privbayes, dp-vae, pate-gan, nist, kamino.
      for (const MethodRun& run : runs) {
        std::printf(" %8.2f%%", ViolationRatePercent(dc, run.synthetic));
      }
      std::printf("\n");
    }
  }
  return 0;
}
