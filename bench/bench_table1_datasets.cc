// Table 1: description of the (generated stand-in) datasets and their DCs.

#include <cstdio>

#include "bench/harness.h"

int main() {
  using namespace kamino;
  using namespace kamino::bench;
  PrintHeader("Table 1: datasets and denial constraints (generated stand-ins)");
  std::printf("%-8s %6s %4s %12s %8s\n", "dataset", "n", "k", "log2(domain)",
              "hardDCs");
  auto all = MakeAllBenchmarks(kDefaultRows, kSeed);
  for (const BenchmarkDataset& ds : all) {
    bool all_hard = true;
    for (bool h : ds.hardness) all_hard = all_hard && h;
    std::printf("%-8s %6zu %4zu %12.1f %8s\n", ds.name.c_str(),
                ds.table.num_rows(), ds.table.schema().size(),
                ds.table.schema().Log2DomainSize(), all_hard ? "yes" : "no");
  }
  std::printf("\nDCs:\n");
  for (const BenchmarkDataset& ds : all) {
    auto constraints = Constraints(ds);
    for (size_t l = 0; l < constraints.size(); ++l) {
      std::printf("  %-8s phi%zu [%s]: %s\n", ds.name.c_str(), l + 1,
                  constraints[l].hard ? "hard" : "soft",
                  constraints[l].dc.ToString(ds.table.schema()).c_str());
    }
  }
  return 0;
}
