// Table 3 + Figure 5 (Experiment 5): ablation of the constraint-aware
// components - RandSequence (random attribute order), RandSampling (i.i.d.
// sampling without the DC factor) and RandBoth.

#include <cstdio>

#include "bench/harness.h"
#include "kamino/dc/violations.h"

int main() {
  using namespace kamino;
  using namespace kamino::bench;
  PrintHeader("Table 3 / Figure 5: constraint-aware component ablation (Adult)");
  BenchmarkDataset ds = MakeAdultLike(500, kSeed);
  auto constraints = Constraints(ds);

  struct Variant {
    const char* name;
    bool constraint_aware;
    bool random_sequence;
  };
  const Variant variants[] = {
      {"Kamino", true, false},
      {"RandSequence", true, true},
      {"RandSampling", false, false},
      {"RandBoth", false, true},
  };

  std::printf("%-14s", "variant");
  for (size_t l = 0; l < constraints.size(); ++l) {
    std::printf("   phi_a%zu%%", l + 1);
  }
  std::printf(" %9s %7s %10s %10s\n", "accuracy", "F1", "1way-mean",
              "2way-mean");

  // Truth row for reference.
  std::printf("%-14s", "Truth");
  for (const WeightedConstraint& wc : constraints) {
    std::printf(" %8.2f", ViolationRatePercent(wc.dc, ds.table));
  }
  std::printf("\n");

  for (const Variant& v : variants) {
    KaminoConfig config = BenchKaminoConfig(1.0, kSeed);
    config.options.constraint_aware_sampling = v.constraint_aware;
    config.options.random_sequence = v.random_sequence;
    auto result = RunKamino(ds.table, constraints, config);
    if (!result.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    const Table& synth = result.value().synthetic;
    std::printf("%-14s", v.name);
    for (const WeightedConstraint& wc : constraints) {
      std::printf(" %8.2f", ViolationRatePercent(wc.dc, synth));
    }
    const QualitySummary q = ClassifierQuality(synth, ds.table, 6, kSeed);
    const MarginalSummary m = MarginalQuality(synth, ds.table, kSeed);
    std::printf(" %9.3f %7.3f %10.3f %10.3f\n", q.accuracy, q.f1,
                m.one_way_mean, m.two_way_mean);
  }
  std::printf("\nShape check: full Kamino has the fewest violations; the\n"
              "ablations (especially RandSampling/RandBoth) violate more.\n");
  return 0;
}
