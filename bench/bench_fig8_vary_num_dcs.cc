// Figure 8 (Experiment 8): task quality and execution time as the number
// of (discovered approximate, soft) DCs grows from 2 to 128.

#include <algorithm>
#include <cstdio>

#include "bench/harness.h"
#include "kamino/dc/discovery.h"

int main() {
  using namespace kamino;
  using namespace kamino::bench;
  PrintHeader("Figure 8: scaling with the number of DCs (Adult, soft DCs)");
  BenchmarkDataset ds = MakeAdultLike(400, kSeed);

  // Discover a large pool of approximate DCs (public-input preparation).
  Rng rng(kSeed);
  DiscoveryOptions discovery;
  discovery.max_constraints = 128;
  discovery.max_violation_rate = 0.02;
  std::vector<std::string> pool = DiscoverApproximateDcs(ds.table, discovery,
                                                         &rng);
  std::printf("discovered %zu approximate DCs\n\n", pool.size());
  std::printf("%-6s %9s %7s %10s %10s %9s\n", "#DCs", "accuracy", "F1",
              "1way-mean", "2way-mean", "time(s)");

  for (size_t count : {2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    const size_t use = std::min(count, pool.size());
    BenchmarkDataset variant = ds;
    variant.dc_specs.assign(pool.begin(), pool.begin() + use);
    variant.hardness.assign(use, false);  // discovered DCs are soft

    KaminoConfig config = BenchKaminoConfig(1.0, kSeed);
    auto result = RunKamino(variant.table, Constraints(variant), config);
    if (!result.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    const QualitySummary q =
        ClassifierQuality(result.value().synthetic, ds.table, 4, kSeed);
    const MarginalSummary m =
        MarginalQuality(result.value().synthetic, ds.table, kSeed);
    std::printf("%-6zu %9.3f %7.3f %10.3f %10.3f %9.2f\n", use, q.accuracy,
                q.f1, m.one_way_mean, m.two_way_mean,
                result.value().timings.Total());
    if (use < count) break;  // pool exhausted
  }
  std::printf("\nShape check: quality degrades only slightly with more DCs;\n"
              "time grows roughly linearly in the number of DCs.\n");
  return 0;
}
