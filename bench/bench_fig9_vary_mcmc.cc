// Figure 9 (Experiment 9): effect of the number of MCMC re-samples per
// attribute (m, expressed as a ratio over n) on quality and time.

#include <cstdio>

#include "bench/harness.h"

int main() {
  using namespace kamino;
  using namespace kamino::bench;
  PrintHeader("Figure 9: MCMC re-sampling m/n sweep (Adult)");
  const size_t n = 300;
  BenchmarkDataset ds = MakeAdultLike(n, kSeed);
  std::printf("%-6s %9s %7s %10s %10s %9s\n", "m/n", "accuracy", "F1",
              "1way-mean", "2way-mean", "time(s)");
  for (double ratio : {0.0, 0.5, 1.0, 2.0, 3.0}) {
    KaminoConfig config = BenchKaminoConfig(1.0, kSeed);
    config.options.mcmc_resamples = static_cast<size_t>(ratio * n);
    auto result = RunKamino(ds.table, Constraints(ds), config);
    if (!result.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    const QualitySummary q =
        ClassifierQuality(result.value().synthetic, ds.table, 4, kSeed);
    const MarginalSummary m =
        MarginalQuality(result.value().synthetic, ds.table, kSeed);
    std::printf("%-6.2f %9.3f %7.3f %10.3f %10.3f %9.2f\n", ratio, q.accuracy,
                q.f1, m.one_way_mean, m.two_way_mean,
                result.value().timings.Total());
  }
  std::printf("\nShape check: modest quality gains from re-sampling at the\n"
              "cost of longer sampling time.\n");
  return 0;
}
