// Privacy accounting walkthrough: how Kamino's Theorem 1 composes the
// Gaussian mechanism, T*(k-1) DP-SGD steps and the weight-learning release
// under Renyi DP, how the tail bound converts to (eps, delta), and what
// Algorithm 6's parameter search picks for different budgets.

#include <cstdio>

#include "kamino/core/params.h"
#include "kamino/core/sequencing.h"
#include "kamino/data/generators.h"
#include "kamino/dc/constraint.h"
#include "kamino/dp/rdp.h"

int main() {
  using namespace kamino;

  std::printf("Renyi-DP accounting in Kamino\n\n");

  // 1. Individual mechanism costs at a few orders alpha.
  std::printf("RDP cost eps(alpha) of one mechanism invocation:\n");
  std::printf("  %-34s %8s %8s %8s\n", "mechanism", "a=2", "a=8", "a=32");
  std::printf("  %-34s %8.4f %8.4f %8.4f\n", "Gaussian (sigma=4)",
              GaussianRdp(4.0, 2), GaussianRdp(4.0, 8), GaussianRdp(4.0, 32));
  std::printf("  %-34s %8.4f %8.4f %8.4f\n", "SGM (sigma=1.1, q=1)",
              SampledGaussianRdp(1.1, 1.0, 2), SampledGaussianRdp(1.1, 1.0, 8),
              SampledGaussianRdp(1.1, 1.0, 32));
  std::printf("  %-34s %8.4f %8.4f %8.4f\n", "SGM (sigma=1.1, q=0.02)",
              SampledGaussianRdp(1.1, 0.02, 2),
              SampledGaussianRdp(1.1, 0.02, 8),
              SampledGaussianRdp(1.1, 0.02, 32));
  std::printf("  (subsampling at q=0.02 amplifies privacy dramatically)\n\n");

  // 2. Theorem 1: the full pipeline on an Adult-like run.
  KaminoPrivacyParams params;
  params.sigma_g = 4.0;
  params.num_histograms = 1;
  params.sigma_d = 1.1;
  params.batch_size = 16;
  params.iterations = 100;
  params.num_models = 13;
  params.num_rows = 32561;
  params.learn_weights = true;
  params.sigma_w = 4.0;
  params.weight_sample = 100;
  std::printf("Theorem 1 total for an Adult-scale run (n=32561, k-1=13,\n"
              "T=100, b=16, sigma_d=1.1, sigma_g=sigma_w=4):\n");
  for (double delta : {1e-5, 1e-6, 1e-7}) {
    std::printf("  epsilon(delta=%.0e) = %.4f\n", delta,
                KaminoEpsilon(params, delta));
  }

  // 3. Algorithm 6: what the search picks for different budgets.
  BenchmarkDataset ds = MakeAdultLike(600, 1);
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema()).TakeValue();
  std::vector<size_t> sequence = SequenceSchema(ds.table.schema(), constraints);
  std::printf("\nAlgorithm 6 parameter search (Adult-like, n=600):\n");
  std::printf("  %-8s %8s %8s %6s %6s\n", "epsilon", "sigma_g", "sigma_d", "T",
              "b");
  KaminoOptions base;
  base.iterations = 100;
  for (double epsilon : {0.1, 0.4, 1.0, 4.0}) {
    auto options = SearchDpParameters(epsilon, 1e-6, ds.table.schema(),
                                      sequence, ds.table.num_rows(),
                                      /*learn_weights=*/false, base);
    if (!options.ok()) {
      std::fprintf(stderr, "%s\n", options.status().ToString().c_str());
      return 1;
    }
    std::printf("  %-8.1f %8.2f %8.2f %6zu %6zu\n", epsilon,
                options.value().sigma_g, options.value().sigma_d,
                options.value().iterations, options.value().batch_size);
  }
  std::printf("\nSmaller budgets force fewer iterations and larger noise.\n");
  return 0;
}
