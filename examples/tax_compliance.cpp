// Tax-records synthesis: exercises the two section-4.3 optimizations that
// the Tax workload was designed around - the Gaussian-mechanism fallback
// for very large domains (zip, city) and the hard-FD fast path during
// sampling - and verifies that all six hard DCs survive synthesis.

#include <cstdio>

#include "kamino/core/kamino.h"
#include "kamino/data/csv.h"
#include "kamino/data/generators.h"
#include "kamino/dc/violations.h"

int main() {
  using namespace kamino;
  const BenchmarkDataset ds = MakeTaxLike(800, /*seed=*/51);
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema());
  if (!constraints.ok()) {
    std::fprintf(stderr, "%s\n", constraints.status().ToString().c_str());
    return 1;
  }

  KaminoConfig config;
  config.epsilon = 1.0;
  config.delta = 1e-6;
  config.options.seed = 4;
  config.options.iterations = 50;
  // zip (300 values) and city (120 values) exceed this threshold, so they
  // are released as noisy histograms and sampled without context.
  config.options.large_domain_threshold = 96;
  // Resolve hard FDs (zip->city, zip->state, ...) by group lookup.
  config.options.enable_fd_fast_path = true;

  auto result = RunKamino(ds.table, constraints.value(), config);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  const KaminoResult& r = result.value();

  std::printf("Tax compliance synthesis (n=%zu)\n", r.synthetic.num_rows());
  std::printf("  epsilon spent      : %.3f\n", r.epsilon_spent);
  std::printf("  FD fast-path hits  : %lld\n",
              static_cast<long long>(r.telemetry.fd_fast_path_hits));
  std::printf("  phases (s)         : train=%.2f sample=%.2f\n",
              r.timings.training, r.timings.sampling);
  std::printf("\n  %-64s %8s %8s\n", "denial constraint", "truth", "synth");
  for (size_t l = 0; l < constraints.value().size(); ++l) {
    const DenialConstraint& dc = constraints.value()[l].dc;
    std::printf("  %-64s %7.2f%% %7.2f%%\n",
                dc.ToString(ds.table.schema()).c_str(),
                ViolationRatePercent(dc, ds.table),
                ViolationRatePercent(dc, r.synthetic));
  }

  // Ship the result as CSV, the way a data owner would publish it.
  const std::string out_path = "/tmp/kamino_tax_synthetic.csv";
  Status st = WriteCsv(r.synthetic, out_path);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("\n  wrote %s\n", out_path.c_str());
  return 0;
}
