// Session API: fit once, synthesize many, stream rows as they finalize.
//
// Builds the quickstart's toy employee table, fits a model through
// `KaminoEngine::Fit` (the only step that spends privacy budget), then
// shows the three ways to sample from it:
//
//   1. synchronous `Synthesize` — three independent instances from one
//      fit, each a pure function of its request seed;
//   2. an async `Submit` job with progress polling;
//   3. a streaming job whose `RowSink` receives `TableChunk`s as shards
//      clear reconciliation, before the job completes — once with the
//      default global merge, once with `progressive_merge`, which
//      freezes and emits each prefix while later shards still sample.
//
// Pass a file path as the first argument to run with tracing + metrics
// enabled: the Chrome trace-event JSON of the whole session is written
// there (load it in Perfetto / chrome://tracing) and the metrics snapshot
// is printed to stdout.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>

#include "kamino/data/chunk_codec.h"
#include "kamino/data/table.h"
#include "kamino/dc/violations.h"
#include "kamino/service/engine.h"

namespace {

kamino::Table MakeEmployees(size_t n, uint64_t seed) {
  using kamino::Attribute;
  using kamino::Value;
  kamino::Rng rng(seed);
  std::vector<Attribute> attrs = {
      Attribute::MakeCategorical("dept", {"eng", "sales", "hr", "ops"}),
      Attribute::MakeCategorical("floor", {"f1", "f2", "f3", "f4"}),
      Attribute::MakeCategorical("level", {"junior", "senior", "staff"}),
      Attribute::MakeNumeric("salary", 40000, 200000, 1000),
      Attribute::MakeNumeric("bonus", 0, 40000, 100),
  };
  kamino::Table table((kamino::Schema(attrs)));
  for (size_t i = 0; i < n; ++i) {
    const int dept = static_cast<int>(rng.UniformInt(0, 3));
    const int level = static_cast<int>(rng.Discrete({0.5, 0.3, 0.2}));
    const double salary =
        50000 + 35000 * level + 8000 * dept + 5000 * rng.Gaussian();
    const double bonus =
        std::clamp(10000.0 * std::floor(salary / 50000.0), 0.0, 40000.0);
    kamino::Row row = {
        Value::Categorical(dept),
        Value::Categorical(dept),  // floor == dept index: hard FD
        Value::Categorical(level),
        Value::Numeric(std::clamp(salary, 40000.0, 200000.0)),
        Value::Numeric(bonus),
    };
    table.AppendRowUnchecked(std::move(row));
  }
  return table;
}

/// Prints each chunk as it arrives — a stand-in for a network writer.
class PrintingSink : public kamino::RowSink {
 public:
  kamino::Status OnChunk(const kamino::TableChunk& chunk) override {
    std::printf("    chunk: shard=%zu rows=[%zu, %zu)%s\n", chunk.shard,
                chunk.row_offset, chunk.row_offset + chunk.num_rows(),
                chunk.last ? "  (last)" : "");
    return kamino::Status::OK();
  }
};

/// Decodes compressed chunks back to rows and re-assembles the instance —
/// the receive side of a compressed stream.
class DecodingSink : public kamino::RowSink {
 public:
  kamino::Status OnChunk(const kamino::TableChunk& chunk) override {
    if (!chunk.compressed()) {
      return kamino::Status::InvalidArgument("expected a compressed chunk");
    }
    encoded_bytes_ += chunk.encoded.size();
    raw_bytes_ +=
        chunk.num_rows() * chunk.rows.schema().size() * sizeof(kamino::Value);
    auto rows =
        kamino::DecodeChunkColumns(chunk.rows.schema(), chunk.encoded);
    if (!rows.ok()) return rows.status();
    if (assembled_.num_rows() == 0) {
      assembled_ = kamino::Table(chunk.rows.schema());
    }
    assembled_.AppendRowsFrom(rows.value(), 0, rows.value().num_rows());
    ++chunks_;
    return kamino::Status::OK();
  }

  const kamino::Table& assembled() const { return assembled_; }
  size_t chunks() const { return chunks_; }
  size_t encoded_bytes() const { return encoded_bytes_; }
  size_t raw_bytes() const { return raw_bytes_; }

 private:
  kamino::Table assembled_;
  size_t chunks_ = 0;
  size_t encoded_bytes_ = 0;
  size_t raw_bytes_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const char* trace_path = argc > 1 ? argv[1] : nullptr;
  const kamino::Table truth = MakeEmployees(400, /*seed=*/7);
  const std::vector<std::string> specs = {
      "!(t1.dept == t2.dept & t1.floor != t2.floor)",
      "!(t1.salary > t2.salary & t1.bonus < t2.bonus)",
  };
  auto constraints =
      kamino::ParseConstraints(specs, {true, true}, truth.schema());
  if (!constraints.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 constraints.status().ToString().c_str());
    return 1;
  }

  kamino::KaminoConfig config;
  config.epsilon = 1.0;
  config.delta = 1e-6;
  config.options.seed = 42;
  config.options.iterations = 150;
  if (trace_path != nullptr) {
    config.options.enable_tracing = true;
    config.options.enable_metrics = true;
  }

  kamino::KaminoEngine engine;

  // --- Fit once: the entire privacy spend. ---
  auto model = engine.Fit(truth, constraints.value(), config);
  if (!model.ok()) {
    std::fprintf(stderr, "fit failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }
  std::printf("Kamino session service\n");
  std::printf("  fit: epsilon spent = %.3f (budget 1.0), train = %.2fs\n",
              model.value().epsilon_spent(),
              model.value().fit_timings().training);

  // --- Synthesize many: three instances, no additional privacy cost. ---
  std::printf("  synthesize-many (one fit, three instances):\n");
  for (uint64_t seed : {0ull, 11ull, 12ull}) {
    kamino::SynthesisRequest request;
    request.seed = seed;
    auto result = engine.Synthesize(model.value(), request);
    if (!result.ok()) {
      std::fprintf(stderr, "synthesize failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    const auto& dc = constraints.value()[0].dc;
    std::printf("    seed=%llu: %zu rows in %.2fs, hard-FD violations %.3f%%\n",
                static_cast<unsigned long long>(seed),
                result.value().synthetic.num_rows(),
                result.value().sampling_seconds,
                kamino::ViolationRatePercent(dc, result.value().synthetic));
  }

  // --- Async job with progress polling. ---
  kamino::SynthesisRequest async_request;
  async_request.seed = 21;
  async_request.num_shards = 4;
  auto job = engine.Submit(model.value(), async_request);
  std::printf("  async job (4 shards): submitted\n");
  while (!job->finished()) {
    const auto p = job->progress();
    std::printf("    progress: phase=%d sampled=%zu/%zu committed=%zu\n",
                static_cast<int>(p.phase), p.rows_sampled, p.rows_total,
                p.rows_committed);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  auto async_result = job->Wait();
  if (!async_result.ok()) {
    std::fprintf(stderr, "job failed: %s\n",
                 async_result.status().ToString().c_str());
    return 1;
  }
  std::printf("    done: %zu rows, %lld cross-shard merge violations\n",
              async_result.value().synthetic.num_rows(),
              static_cast<long long>(
                  async_result.value().telemetry.merge_cross_violations));

  // --- Streaming delivery: chunks arrive before the job completes. ---
  PrintingSink sink;
  kamino::SynthesisRequest streaming;
  streaming.seed = 22;
  streaming.num_shards = 4;
  streaming.sink = &sink;
  streaming.collect_table = false;  // rows leave through the sink only
  std::printf("  streaming job (4 shards):\n");
  auto stream_job = engine.Submit(model.value(), streaming);
  auto stream_result = stream_job->Wait();
  if (!stream_result.ok()) {
    std::fprintf(stderr, "streaming job failed: %s\n",
                 stream_result.status().ToString().c_str());
    return 1;
  }
  std::printf("    delivered %zu chunks / %zu rows through the sink\n",
              stream_job->progress().chunks_delivered,
              stream_job->progress().rows_committed);

  // --- Progressive streaming: each shard's chunk leaves as soon as the
  // prefix through it freezes, instead of after the global merge. The
  // first chunk should arrive well before the job finishes — `bound` is
  // OK when first-chunk latency is under 0.75x the job total. ---
  PrintingSink progressive_sink;
  kamino::SynthesisRequest progressive;
  progressive.seed = 23;
  progressive.num_shards = 4;
  progressive.progressive_merge = true;
  progressive.sink = &progressive_sink;
  progressive.collect_table = false;
  std::printf("  progressive streaming job (4 shards):\n");
  auto progressive_job = engine.Submit(model.value(), progressive);
  auto progressive_result = progressive_job->Wait();
  if (!progressive_result.ok()) {
    std::fprintf(stderr, "progressive streaming job failed: %s\n",
                 progressive_result.status().ToString().c_str());
    return 1;
  }
  {
    const auto& telemetry = progressive_result.value().telemetry;
    const double first = telemetry.first_chunk_seconds;
    const double total = progressive_result.value().sampling_seconds;
    std::printf(
        "    first_chunk=%.4fs job_total=%.4fs ratio=%.2f bound=%s\n",
        first, total, total > 0.0 ? first / total : 0.0,
        first < 0.75 * total ? "OK" : "SLOW");
    std::printf("    prefix freezes=%lld frozen_rows=%lld\n",
                static_cast<long long>(telemetry.merge_prefix_freezes),
                static_cast<long long>(telemetry.merge_frozen_rows));
  }

  // --- Out-of-core streaming: frozen slices spill to disk at each
  // freeze and their in-memory columns are dropped, bounding resident
  // rows to ~2 shard widths while the delivered rows stay bit-identical
  // to the in-memory progressive run (same seed, same shard count). ---
  kamino::SynthesisRequest in_memory_ref;
  in_memory_ref.seed = 23;
  in_memory_ref.num_shards = 4;
  in_memory_ref.progressive_merge = true;
  auto in_memory_out = engine.Synthesize(model.value(), in_memory_ref);
  kamino::SynthesisRequest out_of_core;
  out_of_core.seed = 23;
  out_of_core.num_shards = 4;
  out_of_core.out_of_core = true;  // implies progressive_merge
  std::printf("  out-of-core streaming job (4 shards):\n");
  auto ooc_out = engine.Synthesize(model.value(), out_of_core);
  if (!in_memory_out.ok() || !ooc_out.ok()) {
    std::fprintf(stderr, "out-of-core synthesis failed\n");
    return 1;
  }
  {
    const kamino::Table& mem_rows = in_memory_out.value().synthetic;
    const kamino::Table& ooc_rows = ooc_out.value().synthetic;
    bool identical = mem_rows.num_rows() == ooc_rows.num_rows();
    for (size_t r = 0; identical && r < mem_rows.num_rows(); ++r) {
      for (size_t c = 0; c < mem_rows.num_columns(); ++c) {
        if (!(mem_rows.at(r, c) == ooc_rows.at(r, c))) {
          identical = false;
          break;
        }
      }
    }
    const auto& telemetry = ooc_out.value().telemetry;
    const long long peak = telemetry.peak_resident_rows;
    const long long shard_width =
        static_cast<long long>((mem_rows.num_rows() + 3) / 4);
    const bool bounded = peak > 0 && peak <= 2 * shard_width;
    std::printf(
        "    spilled %lld rows in %lld blocks (%lld bytes), "
        "peak_resident_rows=%lld (bound 2x%lld), out_of_core=%s\n",
        static_cast<long long>(telemetry.spilled_rows),
        static_cast<long long>(telemetry.spill_blocks),
        static_cast<long long>(telemetry.spill_bytes), peak, shard_width,
        identical && bounded ? "OK" : "MISMATCH");
    if (!identical || !bounded) return 1;
  }

  // --- Compressed streaming: same rows, encoded per-column payloads. ---
  // The sink decodes every chunk and re-assembles the instance; a second
  // collect_table run with the same seed verifies the round trip.
  DecodingSink decoder;
  kamino::SynthesisRequest compressed;
  compressed.seed = 22;
  compressed.num_shards = 4;
  compressed.sink = &decoder;
  compressed.collect_table = true;
  compressed.compress_chunks = true;
  std::printf("  compressed streaming job (4 shards):\n");
  auto compressed_result = engine.Synthesize(model.value(), compressed);
  if (!compressed_result.ok()) {
    std::fprintf(stderr, "compressed streaming failed: %s\n",
                 compressed_result.status().ToString().c_str());
    return 1;
  }
  const kamino::Table& direct = compressed_result.value().synthetic;
  const kamino::Table& decoded = decoder.assembled();
  bool round_trip = direct.num_rows() == decoded.num_rows();
  for (size_t r = 0; round_trip && r < direct.num_rows(); ++r) {
    for (size_t c = 0; c < direct.num_columns(); ++c) {
      if (!(direct.at(r, c) == decoded.at(r, c))) {
        round_trip = false;
        break;
      }
    }
  }
  std::printf(
      "    compressed stream: %zu chunks, encoded=%zu bytes raw=%zu bytes "
      "(%.1fx), round_trip=%s\n",
      decoder.chunks(), decoder.encoded_bytes(), decoder.raw_bytes(),
      decoder.encoded_bytes() == 0
          ? 0.0
          : static_cast<double>(decoder.raw_bytes()) /
                static_cast<double>(decoder.encoded_bytes()),
      round_trip ? "OK" : "MISMATCH");
  if (!round_trip) return 1;

  // --- Model artifacts: save the fit, load it in a fresh engine, and
  // check the reloaded model synthesizes the exact same instance. ---
  const std::string artifact_path = "employees_model.kam";
  auto artifact_bytes = model.value().Serialize();
  if (!artifact_bytes.ok()) {
    std::fprintf(stderr, "serialize failed: %s\n",
                 artifact_bytes.status().ToString().c_str());
    return 1;
  }
  if (auto saved = model.value().Save(artifact_path); !saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  kamino::KaminoEngine fresh;  // no fit: the artifact carries everything
  if (auto loaded = fresh.LoadModel("employees", artifact_path);
      !loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  kamino::SynthesisRequest check;
  check.seed = 33;
  auto original_out = engine.Synthesize(model.value(), check);
  auto reloaded_out = fresh.Synthesize("employees", check);
  if (!original_out.ok() || !reloaded_out.ok()) {
    std::fprintf(stderr, "artifact check synthesis failed\n");
    return 1;
  }
  const kamino::Table& from_fit = original_out.value().synthetic;
  const kamino::Table& from_disk = reloaded_out.value().synthetic;
  bool artifact_match = from_fit.num_rows() == from_disk.num_rows();
  for (size_t r = 0; artifact_match && r < from_fit.num_rows(); ++r) {
    for (size_t c = 0; c < from_fit.num_columns(); ++c) {
      if (!(from_fit.at(r, c) == from_disk.at(r, c))) {
        artifact_match = false;
        break;
      }
    }
  }
  std::printf("  artifact: %zu bytes, reloaded synthesis match=%s\n",
              artifact_bytes.value().size(), artifact_match ? "OK" : "MISMATCH");
  if (!artifact_match) return 1;

  // --- Observability dump (only when a trace path was given). ---
  if (trace_path != nullptr) {
    const std::string trace = engine.DumpTrace();
    std::FILE* f = std::fopen(trace_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write trace to %s\n", trace_path);
      return 1;
    }
    std::fwrite(trace.data(), 1, trace.size(), f);
    std::fclose(f);
    std::printf("  trace: %zu bytes written to %s (open in Perfetto)\n",
                trace.size(), trace_path);
    std::printf("  metrics: %s\n", engine.DumpMetrics().c_str());
  }
  return 0;
}
