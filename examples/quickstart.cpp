// Quickstart: synthesize a small constrained table with Kamino.
//
// Builds a toy employee table with a hard FD (dept -> floor) and a salary
// ordering constraint, runs the full private pipeline at (epsilon=1,
// delta=1e-6), and reports DC violations plus a marginal-distance check.

#include <cstdio>

#include "kamino/core/kamino.h"
#include "kamino/data/table.h"
#include "kamino/dc/violations.h"
#include "kamino/eval/marginals.h"

namespace {

kamino::Table MakeEmployees(size_t n, uint64_t seed) {
  using kamino::Attribute;
  using kamino::Value;
  kamino::Rng rng(seed);
  std::vector<Attribute> attrs = {
      Attribute::MakeCategorical("dept", {"eng", "sales", "hr", "ops"}),
      Attribute::MakeCategorical("floor", {"f1", "f2", "f3", "f4"}),
      Attribute::MakeCategorical("level", {"junior", "senior", "staff"}),
      Attribute::MakeNumeric("salary", 40000, 200000, 1000),
      Attribute::MakeNumeric("bonus", 0, 40000, 100),
  };
  kamino::Table table((kamino::Schema(attrs)));
  for (size_t i = 0; i < n; ++i) {
    const int dept = static_cast<int>(rng.UniformInt(0, 3));
    const int level = static_cast<int>(rng.Discrete({0.5, 0.3, 0.2}));
    const double salary =
        50000 + 35000 * level + 8000 * dept + 5000 * rng.Gaussian();
    // bonus is a non-decreasing step function of salary: the order DC
    // holds exactly in the truth.
    const double bonus =
        std::clamp(10000.0 * std::floor(salary / 50000.0), 0.0, 40000.0);
    kamino::Row row = {
        Value::Categorical(dept),
        Value::Categorical(dept),  // floor == dept index: hard FD
        Value::Categorical(level),
        Value::Numeric(std::clamp(salary, 40000.0, 200000.0)),
        Value::Numeric(bonus),
    };
    table.AppendRowUnchecked(std::move(row));
  }
  return table;
}

}  // namespace

int main() {
  const kamino::Table truth = MakeEmployees(400, /*seed=*/7);

  // Two denial constraints: a hard FD and a hard ordering DC.
  const std::vector<std::string> specs = {
      "!(t1.dept == t2.dept & t1.floor != t2.floor)",
      "!(t1.salary > t2.salary & t1.bonus < t2.bonus)",
  };
  auto constraints =
      kamino::ParseConstraints(specs, {true, true}, truth.schema());
  if (!constraints.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 constraints.status().ToString().c_str());
    return 1;
  }

  kamino::KaminoConfig config;
  config.epsilon = 1.0;
  config.delta = 1e-6;
  config.options.seed = 42;
  config.options.iterations = 150;

  auto result = kamino::RunKamino(truth, constraints.value(), config);
  if (!result.ok()) {
    std::fprintf(stderr, "kamino failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const kamino::KaminoResult& r = result.value();

  std::printf("Kamino quickstart\n");
  std::printf("  rows synthesized : %zu\n", r.synthetic.num_rows());
  std::printf("  epsilon spent    : %.3f (budget 1.0)\n", r.epsilon_spent);
  std::printf("  phases (s)       : seq=%.2f train=%.2f weights=%.2f sample=%.2f\n",
              r.timings.sequencing, r.timings.training,
              r.timings.violation_matrix, r.timings.sampling);

  for (size_t l = 0; l < constraints.value().size(); ++l) {
    const auto& dc = constraints.value()[l].dc;
    std::printf("  DC%zu violations  : truth=%.3f%%  synthetic=%.3f%%\n", l + 1,
                kamino::ViolationRatePercent(dc, truth),
                kamino::ViolationRatePercent(dc, r.synthetic));
  }

  const auto one_way =
      kamino::OneWayMarginalDistances(r.synthetic, truth, /*numeric_bins=*/16);
  std::printf("  mean 1-way marginal distance: %.3f\n", kamino::MeanOf(one_way));
  return 0;
}
