// Census synthesis: the paper's motivating scenario. Generates an
// Adult-like census instance, synthesizes it with Kamino at (eps=1,
// delta=1e-6), and contrasts the result with PrivBayes on all three
// metrics of the evaluation: DC violations, classification quality and
// marginal distances.

#include <cstdio>

#include "kamino/baselines/privbayes.h"
#include "kamino/core/kamino.h"
#include "kamino/data/generators.h"
#include "kamino/dc/violations.h"
#include "kamino/eval/classifiers.h"
#include "kamino/eval/marginals.h"

int main() {
  using namespace kamino;
  const BenchmarkDataset ds = MakeAdultLike(600, /*seed=*/31);
  auto constraints =
      ParseConstraints(ds.dc_specs, ds.hardness, ds.table.schema());
  if (!constraints.ok()) {
    std::fprintf(stderr, "%s\n", constraints.status().ToString().c_str());
    return 1;
  }

  std::printf("Census synthesis (Adult-like, n=%zu, eps=1, delta=1e-6)\n\n",
              ds.table.num_rows());

  // Kamino.
  KaminoConfig config;
  config.epsilon = 1.0;
  config.delta = 1e-6;
  config.options.seed = 17;
  config.options.iterations = 60;
  auto kamino = RunKamino(ds.table, constraints.value(), config);
  if (!kamino.ok()) {
    std::fprintf(stderr, "%s\n", kamino.status().ToString().c_str());
    return 1;
  }

  // PrivBayes comparison point.
  PrivBayes::Options pb_options;
  pb_options.epsilon = 1.0;
  PrivBayes privbayes(pb_options);
  Rng rng(18);
  auto pb = privbayes.Synthesize(ds.table, ds.table.num_rows(), &rng);
  if (!pb.ok()) {
    std::fprintf(stderr, "%s\n", pb.status().ToString().c_str());
    return 1;
  }

  std::printf("%-28s %10s %10s\n", "metric", "kamino", "privbayes");
  for (size_t l = 0; l < constraints.value().size(); ++l) {
    const DenialConstraint& dc = constraints.value()[l].dc;
    std::printf("violations phi_a%zu (truth %.2f%%) %8.2f%% %9.2f%%\n", l + 1,
                ViolationRatePercent(dc, ds.table),
                ViolationRatePercent(dc, kamino.value().synthetic),
                ViolationRatePercent(dc, pb.value()));
  }

  Rng eval_rng(19);
  auto kamino_q =
      EvaluateModelTraining(kamino.value().synthetic, ds.table, &eval_rng);
  auto pb_q = EvaluateModelTraining(pb.value(), ds.table, &eval_rng);
  std::printf("%-28s %10.3f %10.3f\n", "mean accuracy",
              MeanQuality(kamino_q).accuracy, MeanQuality(pb_q).accuracy);
  std::printf("%-28s %10.3f %10.3f\n", "mean F1", MeanQuality(kamino_q).f1,
              MeanQuality(pb_q).f1);
  std::printf("%-28s %10.3f %10.3f\n", "mean 1-way marginal dist",
              MeanOf(OneWayMarginalDistances(kamino.value().synthetic,
                                             ds.table, 16)),
              MeanOf(OneWayMarginalDistances(pb.value(), ds.table, 16)));
  std::printf("\nepsilon spent by Kamino: %.3f\n",
              kamino.value().epsilon_spent);
  return 0;
}
