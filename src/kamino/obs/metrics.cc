#include "kamino/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "kamino/common/logging.h"

namespace kamino {
namespace obs {
namespace {

std::atomic<size_t> g_next_stripe{0};

/// Renders a double the way the rest of the JSON emitters do: shortest
/// form that round-trips (17 significant digits), with non-finite values
/// mapped to null-safe strings (JSON has no inf/nan literals).
void AppendDouble(std::string* out, double v) {
  char buf[40];
  if (v == static_cast<int64_t>(v) && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld.0",
                  static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  out->append(buf);
}

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

size_t ThisThreadStripe() {
  thread_local const size_t stripe =
      g_next_stripe.fetch_add(1, std::memory_order_relaxed) % kMetricStripes;
  return stripe;
}

int64_t Counter::Value() const {
  int64_t total = 0;
  for (const internal::Stripe& s : stripes_) {
    total += s.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (internal::Stripe& s : stripes_) {
    s.value.store(0, std::memory_order_relaxed);
  }
}

Histogram::Histogram(const std::atomic<bool>* enabled,
                     std::vector<double> bounds)
    : enabled_(enabled), bounds_(std::move(bounds)) {
  KAMINO_CHECK(!bounds_.empty()) << "histogram needs at least one boundary";
  KAMINO_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram boundaries must be ascending";
  stripes_.reserve(kMetricStripes);
  for (size_t s = 0; s < kMetricStripes; ++s) {
    stripes_.push_back(std::make_unique<HistStripe>(bounds_.size() + 1));
  }
}

void Histogram::Record(double value) {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  // Bucket i holds samples <= bounds_[i]; the final bucket catches the
  // rest (including NaN, which fails every comparison).
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  HistStripe& stripe = *stripes_[ThisThreadStripe()];
  stripe.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  stripe.count.fetch_add(1, std::memory_order_relaxed);
  // C++17 has no atomic<double>::fetch_add; a relaxed CAS loop on an
  // uncontended per-thread slot converges in one iteration in practice.
  double sum = stripe.sum.load(std::memory_order_relaxed);
  while (!stripe.sum.compare_exchange_weak(sum, sum + value,
                                           std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.buckets.assign(bounds_.size() + 1, 0);
  // Fixed stripe order: integer bucket/count sums are exact and
  // order-independent; the double sum is merged in slot order so the same
  // per-slot values always produce the same total.
  for (const std::unique_ptr<HistStripe>& stripe : stripes_) {
    for (size_t b = 0; b < snap.buckets.size(); ++b) {
      snap.buckets[b] += stripe->buckets[b].load(std::memory_order_relaxed);
    }
    snap.count += stripe->count.load(std::memory_order_relaxed);
    snap.sum += stripe->sum.load(std::memory_order_relaxed);
  }
  return snap;
}

void Histogram::Reset() {
  for (const std::unique_ptr<HistStripe>& stripe : stripes_) {
    for (std::atomic<int64_t>& b : stripe->buckets) {
      b.store(0, std::memory_order_relaxed);
    }
    stripe->count.store(0, std::memory_order_relaxed);
    stripe->sum.store(0.0, std::memory_order_relaxed);
  }
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out.push_back(',');
    first = false;
    AppendEscaped(&out, name);
    out.push_back(':');
    out.append(std::to_string(value));
  }
  out.append("},\"gauges\":{");
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out.push_back(',');
    first = false;
    AppendEscaped(&out, name);
    out.push_back(':');
    out.append(std::to_string(value));
  }
  out.append("},\"histograms\":{");
  first = true;
  for (const auto& [name, hist] : histograms) {
    if (!first) out.push_back(',');
    first = false;
    AppendEscaped(&out, name);
    out.append(":{\"bounds\":[");
    for (size_t i = 0; i < hist.bounds.size(); ++i) {
      if (i > 0) out.push_back(',');
      AppendDouble(&out, hist.bounds[i]);
    }
    out.append("],\"buckets\":[");
    for (size_t i = 0; i < hist.buckets.size(); ++i) {
      if (i > 0) out.push_back(',');
      out.append(std::to_string(hist.buckets[i]));
    }
    out.append("],\"count\":");
    out.append(std::to_string(hist.count));
    out.append(",\"sum\":");
    AppendDouble(&out, hist.sum);
    out.push_back('}');
  }
  out.append("}}");
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked intentionally: metric handles cached in static locals across
  // the codebase must stay valid through static destruction.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot.reset(new Counter(&enabled_));
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot.reset(new Gauge(&enabled_));
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) {
    slot.reset(new Histogram(&enabled_, std::move(bounds)));
  }
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->Value();
  }
  for (const auto& [name, hist] : histograms_) {
    snap.histograms[name] = hist->Snapshot();
  }
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& kv : counters_) kv.second->Reset();
  for (const auto& kv : gauges_) kv.second->Reset();
  for (const auto& kv : histograms_) kv.second->Reset();
}

}  // namespace obs
}  // namespace kamino
