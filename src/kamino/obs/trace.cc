#include "kamino/obs/trace.h"

#include <algorithm>
#include <cstdio>

namespace kamino {
namespace obs {
namespace {

/// Innermost live recording span on this thread (0 = none). Spans that
/// are not recording leave it untouched.
thread_local uint64_t t_current_span = 0;

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendMicros(std::string* out, double us) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", us);
  out->append(buf);
}

}  // namespace

/// One thread's event buffer. Appends and exports both take `mu`, but the
/// appender is the owning thread and the exporter is rare, so the lock is
/// effectively uncontended ("lock-light"). Leaked with the recorder so
/// events survive thread exit (pool resizes).
struct TraceRecorder::ThreadBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  uint64_t dropped = 0;
  uint32_t tid = 0;
};

TraceRecorder::TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

TraceRecorder& TraceRecorder::Global() {
  // Leaked intentionally: worker threads may append during static
  // destruction of other objects.
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

void TraceRecorder::SetEnabled(bool enabled) {
  enabled_.store(enabled, std::memory_order_relaxed);
}

void TraceRecorder::SetCapacity(size_t max_events_per_thread) {
  capacity_.store(max_events_per_thread, std::memory_order_relaxed);
}

TraceRecorder::ThreadBuffer* TraceRecorder::LocalBuffer() {
  thread_local ThreadBuffer* buffer = [this] {
    ThreadBuffer* fresh = new ThreadBuffer();
    fresh->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    buffers_.push_back(fresh);
    return fresh;
  }();
  return buffer;
}

void TraceRecorder::Append(TraceEvent event) {
  ThreadBuffer* buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer->mu);
  if (buffer->events.size() >=
      capacity_.load(std::memory_order_relaxed)) {
    ++buffer->dropped;
    return;
  }
  event.tid = buffer->tid;
  buffer->events.push_back(std::move(event));
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  std::vector<TraceEvent> merged;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (ThreadBuffer* buffer : buffers_) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      merged.insert(merged.end(), buffer->events.begin(),
                    buffer->events.end());
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.id < b.id;
            });
  return merged;
}

std::string TraceRecorder::ToJson() const {
  const std::vector<TraceEvent> events = Snapshot();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"name\":");
    AppendEscaped(&out, e.name);
    out.append(",\"cat\":\"kamino\",\"ph\":\"");
    out.push_back(e.ph);
    out.append("\",\"ts\":");
    AppendMicros(&out, e.ts_us);
    if (e.ph == 'X') {
      out.append(",\"dur\":");
      AppendMicros(&out, e.dur_us);
    } else {
      // Instant events need a scope; 't' = thread.
      out.append(",\"s\":\"t\"");
    }
    out.append(",\"pid\":1,\"tid\":");
    out.append(std::to_string(e.tid));
    out.append(",\"args\":{\"id\":");
    out.append(std::to_string(e.id));
    out.append(",\"parent\":");
    out.append(std::to_string(e.parent));
    for (const auto& [key, value] : e.args) {
      out.push_back(',');
      AppendEscaped(&out, key);
      out.push_back(':');
      out.append(std::to_string(value));
    }
    out.append("}}");
  }
  out.append("]}");
  return out;
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (ThreadBuffer* buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->events.clear();
    buffer->dropped = 0;
  }
}

uint64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (ThreadBuffer* buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    total += buffer->dropped;
  }
  return total;
}

TraceSpan::TraceSpan(const char* name)
    : start_(std::chrono::steady_clock::now()) {
  TraceRecorder& recorder = TraceRecorder::Global();
  if (!recorder.enabled()) return;
  recording_ = true;
  id_ = recorder.next_span_id_.fetch_add(1, std::memory_order_relaxed);
  parent_ = t_current_span;
  t_current_span = id_;
  event_.name = name;
  event_.ph = 'X';
  event_.id = id_;
  event_.parent = parent_;
  event_.ts_us = recorder.MicrosSinceEpoch(start_);
}

TraceSpan::~TraceSpan() { Finish(); }

void TraceSpan::AddArg(const char* key, int64_t value) {
  if (!recording_) return;
  event_.args.emplace_back(key, value);
}

double TraceSpan::Finish() {
  if (finished_seconds_ >= 0.0) return finished_seconds_;
  const auto end = std::chrono::steady_clock::now();
  finished_seconds_ =
      std::chrono::duration<double>(end - start_).count();
  if (recording_) {
    event_.dur_us = finished_seconds_ * 1e6;
    t_current_span = parent_;
    TraceRecorder::Global().Append(std::move(event_));
    recording_ = false;
  }
  return finished_seconds_;
}

void TraceInstant(const char* name) {
  TraceRecorder& recorder = TraceRecorder::Global();
  if (!recorder.enabled()) return;
  TraceEvent event;
  event.name = name;
  event.ph = 'i';
  event.id = recorder.next_span_id_.fetch_add(1, std::memory_order_relaxed);
  event.parent = t_current_span;
  event.ts_us =
      recorder.MicrosSinceEpoch(std::chrono::steady_clock::now());
  recorder.Append(std::move(event));
}

}  // namespace obs
}  // namespace kamino
