#ifndef KAMINO_OBS_TRACE_H_
#define KAMINO_OBS_TRACE_H_

// Structured tracing: RAII `TraceSpan`s forming a per-thread hierarchy,
// recorded as (thread id, monotonic begin, duration) into lock-light
// per-thread buffers and exported as Chrome trace-event JSON — load the
// dump in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// The span tree is the single source of truth for phase timing:
// `TraceSpan::Finish()` returns the measured duration whether or not the
// recorder is enabled, so `PhaseTimings` is *derived* from the spans
// instead of being filled by parallel stopwatches. Recording draws no
// randomness and never touches pipeline state — output is bit-identical
// with tracing on or off (asserted by the golden-digest regression in
// tests/core/sharded_sampler_test.cc).
//
// Concurrency: each thread appends to its own buffer under that buffer's
// private mutex (uncontended in steady state — the only other locker is
// an exporting `Snapshot()`/`Clear()`). Buffers register with the global
// recorder once per thread. Per-thread capacity is bounded
// (`SetCapacity`); events past the cap are counted in `dropped()`
// instead of growing without bound.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace kamino {
namespace obs {

/// One recorded event. `ph == 'X'` is a complete span (begin + duration),
/// `ph == 'i'` an instant event (duration 0).
struct TraceEvent {
  std::string name;
  char ph = 'X';
  /// Microseconds since the recorder's epoch (monotonic clock).
  double ts_us = 0.0;
  double dur_us = 0.0;
  /// Small dense id of the recording thread (0 = first thread seen).
  uint32_t tid = 0;
  /// Span id (unique per recording, > 0) and the id of the span that was
  /// open on the same thread when this one began (0 = top level). Instant
  /// events carry the enclosing span as `parent`.
  uint64_t id = 0;
  uint64_t parent = 0;
  /// Optional integer-valued annotations ("shard": 2, "rows": 150, ...).
  std::vector<std::pair<std::string, int64_t>> args;
};

/// The process-wide trace recorder. Disabled by default: spans still
/// measure time (they are the pipeline's stopwatches) but record nothing.
class TraceRecorder {
 public:
  static TraceRecorder& Global();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  void SetEnabled(bool enabled);
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Caps the events retained per thread buffer (default 1 << 20).
  /// Events beyond the cap are dropped and counted, never recorded
  /// partially.
  void SetCapacity(size_t max_events_per_thread);

  /// All recorded events, merged across thread buffers and sorted by
  /// (ts, tid, id) — a deterministic order for tests and diffing.
  std::vector<TraceEvent> Snapshot() const;

  /// Chrome trace-event JSON:
  /// {"traceEvents": [{"name": ..., "ph": "X", "ts": ..., "dur": ...,
  ///  "pid": 1, "tid": ..., "args": {...}}, ...]}.
  /// Perfetto reconstructs the span tree from the nested [ts, ts+dur]
  /// ranges per tid; the explicit id/parent annotations ride along in
  /// "args" for programmatic consumers.
  std::string ToJson() const;

  /// Drops every recorded event and resets the drop counter (buffers and
  /// ids stay registered; the epoch is unchanged).
  void Clear();

  /// Events discarded because a thread buffer hit its capacity.
  uint64_t dropped() const;

 private:
  friend class TraceSpan;
  friend void TraceInstant(const char* name);

  struct ThreadBuffer;

  TraceRecorder();

  /// The calling thread's buffer, registering it on first use.
  ThreadBuffer* LocalBuffer();
  void Append(TraceEvent event);
  double MicrosSinceEpoch(std::chrono::steady_clock::time_point tp) const {
    return std::chrono::duration<double, std::micro>(tp - epoch_).count();
  }

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_span_id_{1};
  std::atomic<uint32_t> next_tid_{0};
  std::atomic<size_t> capacity_{size_t{1} << 20};
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;  // guards buffers_ registration/enumeration
  std::vector<ThreadBuffer*> buffers_;  // leaked with the recorder
};

/// RAII span over the global recorder. Always measures wall clock (the
/// pipeline derives `PhaseTimings` from it); records an 'X' event into
/// the trace only if the recorder is enabled at construction. Spans nest
/// per thread: the innermost live span on this thread becomes the new
/// span's parent.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Finishes the span if `Finish` was not called explicitly.
  ~TraceSpan();

  /// Attaches an integer annotation (kept only when recording).
  void AddArg(const char* key, int64_t value);

  /// Ends the span, records its event (when enabled) and returns the
  /// measured duration in seconds. Idempotent: later calls (and the
  /// destructor) return the first call's duration without re-recording.
  double Finish();

  /// Seconds since construction, without ending the span.
  double elapsed_seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
  double finished_seconds_ = -1.0;
  bool recording_ = false;
  uint64_t id_ = 0;
  uint64_t parent_ = 0;
  TraceEvent event_;  // staged; filled only when recording_
};

/// Records an instant event ('i') on the calling thread, parented to the
/// innermost live span. No-op while the recorder is disabled.
void TraceInstant(const char* name);

}  // namespace obs
}  // namespace kamino

#endif  // KAMINO_OBS_TRACE_H_
