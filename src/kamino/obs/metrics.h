#ifndef KAMINO_OBS_METRICS_H_
#define KAMINO_OBS_METRICS_H_

// Process-wide metrics: named counters, gauges, and fixed-boundary
// histograms, registered by name in a `MetricsRegistry` and exported as a
// consistent `Snapshot()` struct or JSON for the (future) statsz endpoint.
//
// Design constraints, in order:
//   1. Observability never influences control flow: recording draws no
//      randomness, takes no locks on the hot path, and the synthesized
//      output is bit-identical with metrics on or off.
//   2. Near-zero overhead when disabled: every write starts with one
//      relaxed atomic load of the registry's enabled flag and returns.
//   3. Thread-safe recording without contention: each metric's value is
//      sharded into cache-line-padded per-thread slots (threads are
//      assigned a slot round-robin on first use); writes are relaxed
//      fetch_adds on the caller's slot, and the slots are merged only at
//      snapshot time, in fixed slot order, so a snapshot of the same
//      recorded multiset is always the same struct.
//
// Metric handles (`Counter*`, `Gauge*`, `Histogram*`) are stable for the
// registry's lifetime — look them up once and cache the pointer on hot
// paths. The global registry (`MetricsRegistry::Global()`) is never
// destroyed; tests may instantiate private registries.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace kamino {
namespace obs {

/// Slots a metric's value is sharded into. More than the hardware
/// concurrency of the target containers, so concurrent writers virtually
/// never share a cache line.
inline constexpr size_t kMetricStripes = 16;

/// The per-thread slot index: assigned round-robin on a thread's first
/// metric write, fixed for the thread's lifetime.
size_t ThisThreadStripe();

namespace internal {

/// One cache-line-padded shard slot.
struct alignas(64) Stripe {
  std::atomic<int64_t> value{0};
};

}  // namespace internal

/// Monotonically increasing 64-bit counter.
class Counter {
 public:
  /// No-op while the owning registry is disabled. Relaxed add on the
  /// calling thread's slot otherwise.
  void Increment(int64_t delta = 1) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    stripes_[ThisThreadStripe()].value.fetch_add(delta,
                                                 std::memory_order_relaxed);
  }

  /// Sum over the slots (the merged value a snapshot would report).
  int64_t Value() const;

 private:
  friend class MetricsRegistry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  void Reset();

  const std::atomic<bool>* enabled_;
  internal::Stripe stripes_[kMetricStripes];
};

/// Last-written (or delta-adjusted) integer level, e.g. a queue depth.
/// Unlike counters, gauges are a single slot: `Set` is an absolute store,
/// so interleaved writers leave the last written level, not a sum.
class Gauge {
 public:
  /// `Set` is recorded even while the registry is disabled, so a level
  /// written before `SetEnabled(true)` (a queue depth, a pool size) is
  /// correct in the first snapshot rather than stuck at a stale zero.
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }

  /// Relative adjustment; no-op while disabled (a missed +1/-1 pair skews
  /// the level forever, so deltas only count while metrics are on —
  /// prefer absolute `Set` where the true level is at hand).
  void Add(int64_t delta) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  void Reset() { value_.store(0, std::memory_order_relaxed); }

  const std::atomic<bool>* enabled_;
  std::atomic<int64_t> value_{0};
};

/// Point-in-time view of one histogram.
struct HistogramSnapshot {
  /// Ascending upper bounds; bucket i counts samples <= bounds[i], the
  /// final (implicit +inf) bucket counts the rest.
  std::vector<double> bounds;
  /// bounds.size() + 1 entries.
  std::vector<int64_t> buckets;
  int64_t count = 0;
  double sum = 0.0;
};

/// Fixed-boundary histogram. Boundaries are set at registration and never
/// change; each (stripe, bucket) cell is its own relaxed atomic, plus a
/// per-stripe sample count and compare-exchange-merged double sum.
class Histogram {
 public:
  /// Records one sample; no-op while the registry is disabled.
  void Record(double value);

  HistogramSnapshot Snapshot() const;

 private:
  friend class MetricsRegistry;
  Histogram(const std::atomic<bool>* enabled, std::vector<double> bounds);
  void Reset();

  struct alignas(64) HistStripe {
    std::vector<std::atomic<int64_t>> buckets;
    std::atomic<int64_t> count{0};
    std::atomic<double> sum{0.0};

    explicit HistStripe(size_t num_buckets) : buckets(num_buckets) {}
  };

  const std::atomic<bool>* enabled_;
  std::vector<double> bounds_;  // ascending; immutable after construction
  std::vector<std::unique_ptr<HistStripe>> stripes_;
};

/// A consistent point-in-time view of every registered metric, merged
/// from the per-thread slots in fixed order (same recorded values =>
/// same snapshot, regardless of which thread recorded what).
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// {"counters": {...}, "gauges": {...}, "histograms": {name:
  /// {"bounds": [...], "buckets": [...], "count": n, "sum": s}}}.
  std::string ToJson() const;
};

/// Name-keyed registry of counters/gauges/histograms. Registration and
/// snapshotting take the registry mutex; recording through the returned
/// handles never does.
class MetricsRegistry {
 public:
  /// The process-wide registry (never destroyed). Everything in
  /// src/kamino records here.
  static MetricsRegistry& Global();

  /// A private registry, disabled until `SetEnabled(true)`.
  MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter registered under `name`, creating it on first
  /// use. The pointer stays valid for the registry's lifetime.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  /// `bounds` must be strictly ascending and non-empty; the boundaries of
  /// the first registration win (later calls with the same name return
  /// the existing histogram unchanged).
  Histogram* histogram(const std::string& name, std::vector<double> bounds);

  /// Master recording switch, off by default. Flipping it never
  /// invalidates handles; writes made while disabled are simply dropped
  /// (except absolute `Gauge::Set`, see there).
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  MetricsSnapshot Snapshot() const;
  std::string ToJson() const { return Snapshot().ToJson(); }

  /// Zeroes every registered metric (handles stay valid). For tests and
  /// benchmark repetitions.
  void Reset();

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace kamino

#endif  // KAMINO_OBS_METRICS_H_
