#include "kamino/dp/gaussian.h"

#include <cmath>

namespace kamino {

double GaussianSigmaFor(double epsilon, double delta) {
  return std::sqrt(2.0 * std::log(1.25 / delta)) / epsilon;
}

void AddGaussianNoise(std::vector<double>* values, double sigma,
                      double sensitivity, Rng* rng) {
  const double sd = sigma * sensitivity;
  for (double& v : *values) v += rng->Gaussian(0.0, sd);
}

std::vector<double> NoisyNormalizedHistogram(
    const std::vector<double>& counts, double sigma_g, Rng* rng) {
  std::vector<double> noisy = counts;
  // One tuple changing moves one unit between two bins: L2 sensitivity
  // sqrt(2), hence variance 2 * sigma_g^2 as in Algorithm 2 line 3.
  const double sd = std::sqrt(2.0) * sigma_g;
  double total = 0.0;
  for (double& v : noisy) {
    v += rng->Gaussian(0.0, sd);
    if (v < 0.0) v = 0.0;
    total += v;
  }
  if (total <= 0.0) {
    const double uniform = 1.0 / static_cast<double>(noisy.size());
    for (double& v : noisy) v = uniform;
    return noisy;
  }
  for (double& v : noisy) v /= total;
  return noisy;
}

double ViolationMatrixSensitivity(int64_t num_unary, int64_t num_binary,
                                  int64_t sample_size) {
  const double lw = static_cast<double>(sample_size);
  return static_cast<double>(num_unary) +
         static_cast<double>(num_binary) * std::sqrt(lw * lw - lw);
}

}  // namespace kamino
