#ifndef KAMINO_DP_RDP_H_
#define KAMINO_DP_RDP_H_

#include <cstdint>
#include <vector>

#include "kamino/common/status.h"

namespace kamino {

/// The grid of Renyi orders alpha over which privacy costs are tracked and
/// the tail bound is minimized. Integer orders 2..64 (the integer-moment
/// form of Lemma 2 / Mironov et al. 2019).
const std::vector<int>& RdpOrders();

/// RDP cost epsilon(alpha) of one Gaussian mechanism invocation with noise
/// multiplier `sigma` (sampling rate 1): alpha / (2 sigma^2).
double GaussianRdp(double sigma, int alpha);

/// RDP cost epsilon(alpha) of one step of the Sampled Gaussian Mechanism
/// with Poisson sampling rate `q` and noise multiplier `sigma`:
///   1/(alpha-1) * log( sum_{k=0}^{alpha} C(alpha,k) (1-q)^(alpha-k) q^k
///                      * exp((k^2 - k) / (2 sigma^2)) ).
/// (Integer-order upper bound of Mironov-Talwar-Zhang 2019. The paper's
/// Lemma 2 prints the exponent as (alpha^2-alpha)/(2 sigma^2) without the
/// log; we implement the standard, correct bound.)
/// Requires q in [0, 1] and sigma > 0.
double SampledGaussianRdp(double sigma, double q, int alpha);

/// Accumulates RDP costs across adaptively composed mechanisms and
/// converts to (epsilon, delta)-DP via the tail bound
///   epsilon(delta) = min_alpha eps(alpha) + log(1/delta) / (alpha - 1).
class RdpAccountant {
 public:
  RdpAccountant();

  /// Composes `steps` invocations of the Gaussian mechanism (rate 1).
  void AddGaussian(double sigma, int64_t steps = 1);

  /// Composes `steps` invocations of the sampled Gaussian mechanism.
  void AddSampledGaussian(double sigma, double q, int64_t steps = 1);

  /// Current epsilon for the given delta.
  double EpsilonFor(double delta) const;

  /// Accumulated cost at a specific order (test hook).
  double CostAt(int alpha) const;

 private:
  std::vector<double> costs_;  // aligned with RdpOrders()
};

/// The full parameterization Psi of Kamino's private steps (Theorem 1).
struct KaminoPrivacyParams {
  double sigma_g = 1.0;     ///< first-attribute histogram noise
  /// Number of noisy-histogram releases: 1 for the first attribute plus one
  /// per large-domain Gaussian-fallback attribute (section 4.3).
  size_t num_histograms = 1;
  double sigma_d = 1.1;     ///< DP-SGD noise multiplier
  size_t batch_size = 16;   ///< b
  size_t iterations = 100;  ///< T per sub-model
  size_t num_models = 1;    ///< k - 1 discriminative sub-models
  size_t num_rows = 1;      ///< n
  bool learn_weights = false;
  double sigma_w = 1.0;     ///< weight-learning noise multiplier
  size_t weight_sample = 100;  ///< Lw
};

/// Smallest noise multiplier sigma such that `releases` adaptively
/// composed Gaussian mechanism invocations stay within (epsilon, delta)
/// under RDP accounting. Used by the baselines to calibrate their noise.
double CalibrateGaussianSigma(int64_t releases, double epsilon, double delta);

/// Smallest noise multiplier sigma such that `steps` sampled-Gaussian
/// steps at rate q stay within (epsilon, delta).
double CalibrateSgmSigma(int64_t steps, double q, double epsilon,
                         double delta);

/// Total (epsilon, delta)-DP cost of a Kamino run under Theorem 1:
/// one Gaussian mechanism (sigma_g) + T*(k-1) SGM steps (sigma_d, q=b/n)
/// + optionally one SGM release of the violation matrix (sigma_w, q=Lw/n).
double KaminoEpsilon(const KaminoPrivacyParams& params, double delta);

}  // namespace kamino

#endif  // KAMINO_DP_RDP_H_
