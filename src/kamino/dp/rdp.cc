#include "kamino/dp/rdp.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "kamino/common/logging.h"

namespace kamino {
namespace {

double LogBinomial(int n, int k) {
  return std::lgamma(n + 1.0) - std::lgamma(k + 1.0) -
         std::lgamma(n - k + 1.0);
}

double LogSumExp(const std::vector<double>& xs) {
  double mx = -std::numeric_limits<double>::infinity();
  for (double x : xs) mx = std::max(mx, x);
  if (!std::isfinite(mx)) return mx;
  double sum = 0.0;
  for (double x : xs) sum += std::exp(x - mx);
  return mx + std::log(sum);
}

}  // namespace

const std::vector<int>& RdpOrders() {
  static const std::vector<int>* orders = [] {
    auto* v = new std::vector<int>();
    for (int a = 2; a <= 64; ++a) v->push_back(a);
    for (int a : {80, 96, 128, 256, 512}) v->push_back(a);
    return v;
  }();
  return *orders;
}

double GaussianRdp(double sigma, int alpha) {
  KAMINO_CHECK(sigma > 0.0) << "sigma must be positive";
  return static_cast<double>(alpha) / (2.0 * sigma * sigma);
}

double SampledGaussianRdp(double sigma, double q, int alpha) {
  KAMINO_CHECK(sigma > 0.0) << "sigma must be positive";
  KAMINO_CHECK(q >= 0.0 && q <= 1.0) << "q must be a probability";
  KAMINO_CHECK(alpha >= 2) << "alpha must be >= 2";
  if (q == 0.0) return 0.0;
  if (q == 1.0) return GaussianRdp(sigma, alpha);
  const double log_q = std::log(q);
  const double log_1mq = std::log1p(-q);
  std::vector<double> terms;
  terms.reserve(alpha + 1);
  for (int k = 0; k <= alpha; ++k) {
    const double moment =
        static_cast<double>(k) * (k - 1) / (2.0 * sigma * sigma);
    terms.push_back(LogBinomial(alpha, k) + (alpha - k) * log_1mq +
                    k * log_q + moment);
  }
  const double log_a = LogSumExp(terms);
  // The bound can dip below 0 from floating point error; clamp.
  return std::max(0.0, log_a / (alpha - 1));
}

RdpAccountant::RdpAccountant() : costs_(RdpOrders().size(), 0.0) {}

void RdpAccountant::AddGaussian(double sigma, int64_t steps) {
  const auto& orders = RdpOrders();
  for (size_t i = 0; i < orders.size(); ++i) {
    costs_[i] += steps * GaussianRdp(sigma, orders[i]);
  }
}

void RdpAccountant::AddSampledGaussian(double sigma, double q, int64_t steps) {
  const auto& orders = RdpOrders();
  for (size_t i = 0; i < orders.size(); ++i) {
    costs_[i] += steps * SampledGaussianRdp(sigma, q, orders[i]);
  }
}

double RdpAccountant::EpsilonFor(double delta) const {
  KAMINO_CHECK(delta > 0.0 && delta < 1.0) << "delta must be in (0,1)";
  const auto& orders = RdpOrders();
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < orders.size(); ++i) {
    const double eps =
        costs_[i] + std::log(1.0 / delta) / (orders[i] - 1);
    best = std::min(best, eps);
  }
  return best;
}

double RdpAccountant::CostAt(int alpha) const {
  const auto& orders = RdpOrders();
  for (size_t i = 0; i < orders.size(); ++i) {
    if (orders[i] == alpha) return costs_[i];
  }
  KAMINO_LOG(Fatal) << "alpha " << alpha << " not on the tracked grid";
  return 0.0;
}

namespace {

double BinarySearchSigma(const std::function<double(double)>& epsilon_of_sigma,
                         double target_epsilon) {
  double lo = 0.05;
  double hi = 5000.0;
  for (int iter = 0; iter < 80; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (epsilon_of_sigma(mid) > target_epsilon) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

}  // namespace

double CalibrateGaussianSigma(int64_t releases, double epsilon, double delta) {
  return BinarySearchSigma(
      [releases, delta](double sigma) {
        RdpAccountant acc;
        acc.AddGaussian(sigma, releases);
        return acc.EpsilonFor(delta);
      },
      epsilon);
}

double CalibrateSgmSigma(int64_t steps, double q, double epsilon,
                         double delta) {
  return BinarySearchSigma(
      [steps, q, delta](double sigma) {
        RdpAccountant acc;
        acc.AddSampledGaussian(sigma, q, steps);
        return acc.EpsilonFor(delta);
      },
      epsilon);
}

double KaminoEpsilon(const KaminoPrivacyParams& params, double delta) {
  RdpAccountant accountant;
  accountant.AddGaussian(params.sigma_g,
                         static_cast<int64_t>(params.num_histograms));
  const double q_d =
      std::min(1.0, static_cast<double>(params.batch_size) /
                        static_cast<double>(params.num_rows));
  accountant.AddSampledGaussian(
      params.sigma_d, q_d,
      static_cast<int64_t>(params.iterations) *
          static_cast<int64_t>(params.num_models));
  if (params.learn_weights) {
    const double q_w =
        std::min(1.0, static_cast<double>(params.weight_sample) /
                          static_cast<double>(params.num_rows));
    accountant.AddSampledGaussian(params.sigma_w, q_w, 1);
  }
  return accountant.EpsilonFor(delta);
}

}  // namespace kamino
