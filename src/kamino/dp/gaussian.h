#ifndef KAMINO_DP_GAUSSIAN_H_
#define KAMINO_DP_GAUSSIAN_H_

#include <cstdint>
#include <vector>

#include "kamino/common/rng.h"

namespace kamino {

/// Classic calibration of the Gaussian mechanism: the noise scale sigma
/// such that adding N(0, (sigma * sensitivity)^2) noise achieves
/// (epsilon, delta)-DP for epsilon in (0, 1):
///   sigma >= sqrt(2 ln(1.25/delta)) / epsilon.
double GaussianSigmaFor(double epsilon, double delta);

/// Adds i.i.d. N(0, (sigma * sensitivity)^2) noise to every element.
void AddGaussianNoise(std::vector<double>* values, double sigma,
                      double sensitivity, Rng* rng);

/// Releases a noisy histogram: perturbs counts (L2 sensitivity sqrt(2) for
/// one-tuple change between two bins; Algorithm 2 line 3 uses N(0, 2*sigma_g^2)),
/// clamps negatives to zero and normalizes into a probability vector.
/// If all noisy mass vanishes, falls back to uniform.
std::vector<double> NoisyNormalizedHistogram(
    const std::vector<double>& counts, double sigma_g, Rng* rng);

/// L2 sensitivity of the |D| x |Phi| violation matrix of Algorithm 5
/// (Lemma 1): |phi_u| + |phi_b| * sqrt(Lw^2 - Lw), where `num_unary` and
/// `num_binary` count the unary/binary DCs and `sample_size` is Lw.
double ViolationMatrixSensitivity(int64_t num_unary, int64_t num_binary,
                                  int64_t sample_size);

}  // namespace kamino

#endif  // KAMINO_DP_GAUSSIAN_H_
