#ifndef KAMINO_BASELINES_PRIVBAYES_H_
#define KAMINO_BASELINES_PRIVBAYES_H_

#include <string>

#include "kamino/baselines/synthesizer.h"

namespace kamino {

/// PrivBayes (Zhang et al., SIGMOD 2014): learns a Bayesian network over
/// the discretized attributes with noisy marginals and samples tuples
/// i.i.d. by ancestral sampling.
///
/// This reproduction releases every pairwise joint distribution plus one
/// triple joint per 2-parent node under the Gaussian mechanism (noise
/// calibrated for the total number of releases with RDP composition),
/// picks up to `max_parents` parents per attribute greedily by mutual
/// information estimated from the noisy pairwise joints, and derives the
/// conditional probability tables from the noisy joints. Structure search
/// via noisy MI stands in for the original's exponential mechanism.
class PrivBayes : public Synthesizer {
 public:
  struct Options {
    double epsilon = 1.0;
    double delta = 1e-6;
    int numeric_bins = 16;
    int max_parents = 2;
    /// Joints with more cells than this are not released (parent choices
    /// shrink to fit).
    size_t max_joint_cells = 60000;
  };

  explicit PrivBayes(Options options) : options_(options) {}

  Result<Table> Synthesize(const Table& truth, size_t n, Rng* rng) override;

  std::string name() const override { return "privbayes"; }

 private:
  Options options_;
};

}  // namespace kamino

#endif  // KAMINO_BASELINES_PRIVBAYES_H_
