#include "kamino/baselines/dpvae.h"

#include <algorithm>
#include <cmath>

#include "kamino/autograd/ops.h"
#include "kamino/dp/gaussian.h"
#include "kamino/dp/rdp.h"
#include "kamino/nn/dpsgd.h"
#include "kamino/nn/module.h"

namespace kamino {
namespace {

/// How each attribute maps into the dense auto-encoder input/output.
struct Slot {
  size_t attr = 0;
  bool onehot = false;   // categorical block of `width` indicator slots
  size_t offset = 0;     // first input dimension
  size_t width = 1;
  size_t cardinality = 0;  // discrete-view cardinality
};

struct Layout {
  std::vector<Slot> slots;
  size_t total = 0;
};

Layout MakeLayout(const DiscreteView& view, size_t onehot_limit) {
  Layout layout;
  for (size_t a = 0; a < view.num_attrs(); ++a) {
    Slot slot;
    slot.attr = a;
    slot.cardinality = view.cardinality(a);
    slot.offset = layout.total;
    if (slot.cardinality <= onehot_limit) {
      slot.onehot = true;
      slot.width = slot.cardinality;
    } else {
      slot.onehot = false;
      slot.width = 1;
    }
    layout.total += slot.width;
    layout.slots.push_back(slot);
  }
  return layout;
}

Tensor EncodeRow(const Table& table, size_t row, const DiscreteView& view,
                 const Layout& layout) {
  Tensor x(1, layout.total);
  for (const Slot& slot : layout.slots) {
    const int bucket = view.Encode(slot.attr, table.at(row, slot.attr));
    if (slot.onehot) {
      x[slot.offset + static_cast<size_t>(bucket)] = 1.0;
    } else {
      x[slot.offset] = static_cast<double>(bucket) /
                       static_cast<double>(slot.cardinality);
    }
  }
  return x;
}

}  // namespace

Result<Table> DpVae::Synthesize(const Table& truth, size_t n, Rng* rng) {
  const Schema& schema = truth.schema();
  const size_t rows = truth.num_rows();
  if (rows == 0) return Status::InvalidArgument("dp-vae needs data");
  DiscreteView view = DiscreteView::Make(schema, options_.numeric_bins);
  Layout layout = MakeLayout(view, options_.onehot_limit);
  const size_t d_in = layout.total;
  const size_t h = options_.hidden_dim;
  const size_t z_dim = options_.latent_dim;

  // Privacy calibration: 80% of the budget to DP-SGD training, 20% to the
  // two latent-moment releases (deltas split evenly).
  const double q = std::min(
      1.0, static_cast<double>(options_.batch_size) / static_cast<double>(rows));
  const double sigma_train =
      CalibrateSgmSigma(static_cast<int64_t>(options_.iterations), q,
                        0.8 * options_.epsilon, options_.delta / 2);
  const double sigma_latent =
      CalibrateGaussianSigma(2, 0.2 * options_.epsilon, options_.delta / 2);

  // Parameters: encoder (d_in -> z), decoder (z -> h -> d_in).
  const double init = 0.3 / std::sqrt(static_cast<double>(d_in));
  Parameter enc_w(Tensor::Randn(d_in, z_dim, init, rng));
  Parameter enc_b(Tensor(1, z_dim));
  Parameter dec_w1(Tensor::Randn(z_dim, h, 0.4, rng));
  Parameter dec_b1(Tensor(1, h));
  Parameter dec_w2(Tensor::Randn(h, d_in, 0.3, rng));
  Parameter dec_b2(Tensor(1, d_in));
  std::vector<Parameter*> params = {&enc_w,  &enc_b,  &dec_w1,
                                    &dec_b1, &dec_w2, &dec_b2};

  auto decode = [&](const Var& z, ForwardContext* ctx) {
    Var hidden = Relu(Add(MatMul(z, ctx->Bind(&dec_w1)), ctx->Bind(&dec_b1)));
    return Add(MatMul(hidden, ctx->Bind(&dec_w2)), ctx->Bind(&dec_b2));
  };

  auto example_loss = [&](size_t row, ForwardContext* ctx) {
    Tensor x = EncodeRow(truth, row, view, layout);
    Var input = MakeConstant(x);
    Var z = Tanh(Add(MatMul(input, ctx->Bind(&enc_w)), ctx->Bind(&enc_b)));
    Var out = decode(z, ctx);
    // Reconstruction loss: squared error on every slot (cross-entropy on
    // one-hot blocks behaves similarly at this scale and SE keeps the
    // graph small).
    Var diff = Sub(out, input);
    return Mean(Mul(diff, diff));
  };

  // DP-SGD training loop (same per-example clipping scheme as Kamino's).
  for (size_t iter = 0; iter < options_.iterations; ++iter) {
    std::vector<Tensor> grad_sum = ZeroGradients(params);
    for (size_t i = 0; i < rows; ++i) {
      if (!rng->Bernoulli(q)) continue;
      ForwardContext ctx;
      Var loss = example_loss(i, &ctx);
      Backward(loss);
      std::vector<Tensor> grads = ZeroGradients(params);
      ctx.AccumulateInto(params, &grads);
      ClipGradients(&grads, options_.clip_norm);
      for (size_t p = 0; p < params.size(); ++p) grad_sum[p].Add(grads[p]);
    }
    const double noise_sd = sigma_train * options_.clip_norm;
    for (Tensor& g : grad_sum) {
      for (double& v : g.data()) v += rng->Gaussian(0.0, noise_sd);
    }
    for (size_t p = 0; p < params.size(); ++p) {
      params[p]->value.Axpy(
          -options_.learning_rate / static_cast<double>(options_.batch_size),
          grad_sum[p]);
    }
  }

  // Noisy latent moments (latents clipped to [-1, 1] by tanh, so the L2
  // sensitivity of the mean vector is 2*sqrt(z_dim)/n per tuple change).
  std::vector<double> mean(z_dim, 0.0), second(z_dim, 0.0);
  for (size_t i = 0; i < rows; ++i) {
    ForwardContext ctx;
    Tensor x = EncodeRow(truth, i, view, layout);
    Var z = Tanh(Add(MatMul(MakeConstant(x), ctx.Bind(&enc_w)),
                     ctx.Bind(&enc_b)));
    for (size_t j = 0; j < z_dim; ++j) {
      mean[j] += z->value[j];
      second[j] += z->value[j] * z->value[j];
    }
  }
  const double sens =
      2.0 * std::sqrt(static_cast<double>(z_dim)) / static_cast<double>(rows);
  for (size_t j = 0; j < z_dim; ++j) {
    mean[j] /= rows;
    second[j] /= rows;
  }
  AddGaussianNoise(&mean, sigma_latent, sens, rng);
  AddGaussianNoise(&second, sigma_latent, sens, rng);

  std::vector<double> stddev(z_dim, 0.3);
  for (size_t j = 0; j < z_dim; ++j) {
    const double var = second[j] - mean[j] * mean[j];
    stddev[j] = std::sqrt(std::max(0.01, var));
  }

  // Generation: decode Gaussian latents, sampling categorical blocks from
  // the softmax of their logits.
  Table out(schema);
  out.ResizeRows(n);
  for (size_t r = 0; r < n; ++r) {
    Tensor z(1, z_dim);
    for (size_t j = 0; j < z_dim; ++j) {
      z[j] = std::clamp(rng->Gaussian(mean[j], stddev[j]), -1.0, 1.0);
    }
    ForwardContext ctx;
    Var decoded = decode(MakeConstant(z), &ctx);
    for (const Slot& slot : layout.slots) {
      int bucket;
      if (slot.onehot) {
        std::vector<double> weights(slot.width);
        double mx = decoded->value[slot.offset];
        for (size_t c = 1; c < slot.width; ++c) {
          mx = std::max(mx, decoded->value[slot.offset + c]);
        }
        for (size_t c = 0; c < slot.width; ++c) {
          // Sharpened softmax: reconstruction outputs live near {0,1}.
          weights[c] = std::exp(6.0 * (decoded->value[slot.offset + c] - mx));
        }
        bucket = static_cast<int>(rng->Discrete(weights));
      } else {
        const double raw = decoded->value[slot.offset] *
                           static_cast<double>(slot.cardinality);
        bucket = std::clamp(static_cast<int>(std::lround(raw)), 0,
                            static_cast<int>(slot.cardinality) - 1);
      }
      out.set(r, slot.attr, view.Decode(slot.attr, bucket, rng));
    }
  }
  return out;
}

}  // namespace kamino
