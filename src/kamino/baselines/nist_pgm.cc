#include "kamino/baselines/nist_pgm.h"

#include <algorithm>
#include <cmath>

#include "kamino/dp/rdp.h"

namespace kamino {
namespace {

struct MeasuredPair {
  size_t a = 0;
  size_t b = 0;
  std::vector<double> joint;  // |a| x |b| row-major
  double mi = 0.0;
};

double PairMutualInformation(const MeasuredPair& pair, size_t card_a,
                             size_t card_b) {
  std::vector<double> pa(card_a, 0.0), pb(card_b, 0.0);
  for (size_t x = 0; x < card_a; ++x) {
    for (size_t y = 0; y < card_b; ++y) {
      pa[x] += pair.joint[x * card_b + y];
      pb[y] += pair.joint[x * card_b + y];
    }
  }
  double mi = 0.0;
  for (size_t x = 0; x < card_a; ++x) {
    for (size_t y = 0; y < card_b; ++y) {
      const double pxy = pair.joint[x * card_b + y];
      if (pxy > 1e-12 && pa[x] > 1e-12 && pb[y] > 1e-12) {
        mi += pxy * std::log(pxy / (pa[x] * pb[y]));
      }
    }
  }
  return std::max(0.0, mi);
}

/// Union-find for the spanning forest.
struct DisjointSet {
  std::vector<size_t> parent;
  explicit DisjointSet(size_t n) : parent(n) {
    for (size_t i = 0; i < n; ++i) parent[i] = i;
  }
  size_t Find(size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  bool Union(size_t a, size_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    parent[a] = b;
    return true;
  }
};

}  // namespace

Result<Table> NistPgm::Synthesize(const Table& truth, size_t n, Rng* rng) {
  const Schema& schema = truth.schema();
  const size_t k = schema.size();
  if (k == 0 || truth.num_rows() == 0) {
    return Status::InvalidArgument("nist-pgm requires a non-empty instance");
  }
  DiscreteView view = DiscreteView::Make(schema, options_.numeric_bins);

  const int64_t releases = static_cast<int64_t>(k + options_.num_pairs);
  const double sigma =
      CalibrateGaussianSigma(releases, options_.epsilon, options_.delta);

  // All 1-way marginals.
  std::vector<std::vector<double>> one_way(k);
  for (size_t a = 0; a < k; ++a) {
    one_way[a] = NoisyJointDistribution(truth, view, {a}, sigma, rng);
  }

  // num_pairs random tractable 2-way marginals.
  std::vector<std::pair<size_t, size_t>> all_pairs;
  for (size_t a = 0; a < k; ++a) {
    for (size_t b = a + 1; b < k; ++b) {
      if (view.cardinality(a) * view.cardinality(b) <=
          options_.max_joint_cells) {
        all_pairs.emplace_back(a, b);
      }
    }
  }
  rng->Shuffle(&all_pairs);
  if (all_pairs.size() > options_.num_pairs) {
    all_pairs.resize(options_.num_pairs);
  }
  std::vector<MeasuredPair> measured;
  for (const auto& [a, b] : all_pairs) {
    MeasuredPair pair;
    pair.a = a;
    pair.b = b;
    pair.joint = NoisyJointDistribution(truth, view, {a, b}, sigma, rng);
    pair.mi = PairMutualInformation(pair, view.cardinality(a),
                                    view.cardinality(b));
    measured.push_back(std::move(pair));
  }

  // Chow-Liu style spanning forest over the measured pairs: greedily add
  // edges by decreasing noisy MI.
  std::sort(measured.begin(), measured.end(),
            [](const MeasuredPair& x, const MeasuredPair& y) {
              return x.mi > y.mi;
            });
  DisjointSet dsu(k);
  // adjacency: child -> (parent, pair index, parent_is_a)
  struct Edge {
    size_t parent;
    size_t pair_index;
  };
  std::vector<std::vector<std::pair<size_t, size_t>>> adjacency(k);
  std::vector<size_t> forest_edges;
  for (size_t e = 0; e < measured.size(); ++e) {
    if (dsu.Union(measured[e].a, measured[e].b)) {
      adjacency[measured[e].a].emplace_back(measured[e].b, e);
      adjacency[measured[e].b].emplace_back(measured[e].a, e);
      forest_edges.push_back(e);
    }
  }

  // Root each component at its smallest-index attribute and orient edges
  // (BFS), producing a sampling order.
  std::vector<int> parent_pair(k, -1);
  std::vector<size_t> parent_attr(k, 0);
  std::vector<size_t> bfs_order;
  std::vector<bool> visited(k, false);
  for (size_t root = 0; root < k; ++root) {
    if (visited[root]) continue;
    std::vector<size_t> queue = {root};
    visited[root] = true;
    while (!queue.empty()) {
      const size_t node = queue.back();
      queue.pop_back();
      bfs_order.push_back(node);
      for (const auto& [next, pair_index] : adjacency[node]) {
        if (visited[next]) continue;
        visited[next] = true;
        parent_pair[next] = static_cast<int>(pair_index);
        parent_attr[next] = node;
        queue.push_back(next);
      }
    }
  }

  Table out(schema);
  out.ResizeRows(n);
  std::vector<int> buckets(k, 0);
  for (size_t r = 0; r < n; ++r) {
    for (size_t attr : bfs_order) {
      std::vector<double> weights;
      if (parent_pair[attr] < 0) {
        weights = one_way[attr];
      } else {
        const MeasuredPair& pair = measured[parent_pair[attr]];
        const size_t parent = parent_attr[attr];
        const size_t card_b = view.cardinality(pair.b);
        const size_t card = view.cardinality(attr);
        weights.assign(card, 0.0);
        for (size_t v = 0; v < card; ++v) {
          const size_t x = pair.a == attr ? v : buckets[parent];
          const size_t y = pair.a == attr ? buckets[parent] : v;
          weights[v] = pair.joint[x * card_b + y];
        }
      }
      const int bucket = static_cast<int>(rng->Discrete(weights));
      buckets[attr] = bucket;
      out.set(r, attr, view.Decode(attr, bucket, rng));
    }
  }
  return out;
}

}  // namespace kamino
