#ifndef KAMINO_BASELINES_DPVAE_H_
#define KAMINO_BASELINES_DPVAE_H_

#include <string>

#include "kamino/baselines/synthesizer.h"

namespace kamino {

/// DP-VAE (Chen et al. 2018): samples from the latent space of a privately
/// trained auto-encoder.
///
/// This reproduction trains a small auto-encoder (one-hot / standardized
/// encoding -> linear-tanh latent -> relu decoder with per-attribute heads)
/// with DP-SGD on our autograd substrate, privately releases the latent
/// first/second moments with the Gaussian mechanism, and generates rows by
/// decoding Gaussian latent samples. The budget is split 80/20 between
/// training and the latent statistics.
class DpVae : public Synthesizer {
 public:
  struct Options {
    double epsilon = 1.0;
    double delta = 1e-6;
    int numeric_bins = 16;
    size_t latent_dim = 6;
    size_t hidden_dim = 16;
    size_t iterations = 150;
    size_t batch_size = 16;
    double clip_norm = 1.0;
    double learning_rate = 0.05;
    /// One-hot encode categorical attributes up to this cardinality;
    /// larger ones use a single scaled-index slot.
    size_t onehot_limit = 64;
  };

  explicit DpVae(Options options) : options_(options) {}

  Result<Table> Synthesize(const Table& truth, size_t n, Rng* rng) override;

  std::string name() const override { return "dp-vae"; }

 private:
  Options options_;
};

}  // namespace kamino

#endif  // KAMINO_BASELINES_DPVAE_H_
