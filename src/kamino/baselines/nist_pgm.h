#ifndef KAMINO_BASELINES_NIST_PGM_H_
#define KAMINO_BASELINES_NIST_PGM_H_

#include <string>

#include "kamino/baselines/synthesizer.h"

namespace kamino {

/// The NIST DP synthetic-data challenge winner (McKenna et al.):
/// probabilistic-graphical-model inference over noisy marginals.
///
/// As in the paper's setup, it measures every 1-way marginal plus 2-way
/// marginals over `num_pairs` randomly chosen attribute pairs (Gaussian
/// mechanism, noise split by RDP composition), then fits a Chow-Liu-style
/// spanning forest over the measured pairs (edges weighted by the noisy
/// mutual information) and samples tuples i.i.d. from the tree model.
/// Attributes not touched by a selected edge are sampled independently
/// from their noisy 1-way marginal.
class NistPgm : public Synthesizer {
 public:
  struct Options {
    double epsilon = 1.0;
    double delta = 1e-6;
    int numeric_bins = 16;
    size_t num_pairs = 10;
    size_t max_joint_cells = 60000;
  };

  explicit NistPgm(Options options) : options_(options) {}

  Result<Table> Synthesize(const Table& truth, size_t n, Rng* rng) override;

  std::string name() const override { return "nist"; }

 private:
  Options options_;
};

}  // namespace kamino

#endif  // KAMINO_BASELINES_NIST_PGM_H_
