#include "kamino/baselines/privbayes.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "kamino/dp/rdp.h"

namespace kamino {
namespace {

/// Mutual information of a pairwise joint distribution p(x, y) given as a
/// row-major |X| x |Y| table.
double MutualInformation(const std::vector<double>& joint, size_t card_x,
                         size_t card_y) {
  std::vector<double> px(card_x, 0.0), py(card_y, 0.0);
  for (size_t x = 0; x < card_x; ++x) {
    for (size_t y = 0; y < card_y; ++y) {
      px[x] += joint[x * card_y + y];
      py[y] += joint[x * card_y + y];
    }
  }
  double mi = 0.0;
  for (size_t x = 0; x < card_x; ++x) {
    for (size_t y = 0; y < card_y; ++y) {
      const double pxy = joint[x * card_y + y];
      if (pxy > 1e-12 && px[x] > 1e-12 && py[y] > 1e-12) {
        mi += pxy * std::log(pxy / (px[x] * py[y]));
      }
    }
  }
  return std::max(0.0, mi);
}

}  // namespace

Result<Table> PrivBayes::Synthesize(const Table& truth, size_t n, Rng* rng) {
  const Schema& schema = truth.schema();
  const size_t k = schema.size();
  if (k == 0 || truth.num_rows() == 0) {
    return Status::InvalidArgument("privbayes requires a non-empty instance");
  }
  DiscreteView view = DiscreteView::Make(schema, options_.numeric_bins);

  // Budget: k*(k-1)/2 pairwise joints + at most k triple joints.
  const int64_t releases = static_cast<int64_t>(k * (k - 1) / 2 + k);
  const double sigma =
      CalibrateGaussianSigma(releases, options_.epsilon, options_.delta);

  // Release all (tractable) pairwise joints once; reuse for MI and CPTs.
  std::vector<std::vector<std::vector<double>>> pair_joint(
      k, std::vector<std::vector<double>>(k));
  for (size_t a = 0; a < k; ++a) {
    for (size_t b = a + 1; b < k; ++b) {
      if (view.cardinality(a) * view.cardinality(b) > options_.max_joint_cells) {
        continue;
      }
      pair_joint[a][b] = NoisyJointDistribution(truth, view, {a, b}, sigma, rng);
    }
  }

  // Attribute order: ascending domain size (small roots first).
  std::vector<size_t> order(k);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return view.cardinality(a) < view.cardinality(b);
  });

  auto joint_of = [&](size_t a, size_t b) -> const std::vector<double>* {
    const size_t lo = std::min(a, b);
    const size_t hi = std::max(a, b);
    return pair_joint[lo][hi].empty() ? nullptr : &pair_joint[lo][hi];
  };
  auto mi_of = [&](size_t a, size_t b) {
    const std::vector<double>* joint = joint_of(a, b);
    if (joint == nullptr) return 0.0;
    const size_t lo = std::min(a, b);
    const size_t hi = std::max(a, b);
    return MutualInformation(*joint, view.cardinality(lo),
                             view.cardinality(hi));
  };

  // Greedy parent choice: top max_parents predecessors by noisy MI, with a
  // cap on the conditional table size.
  struct NodeModel {
    std::vector<size_t> parents;
    std::vector<double> joint;  // joint over (parents..., attr)
  };
  std::vector<NodeModel> nodes(k);
  for (size_t pos = 1; pos < k; ++pos) {
    const size_t attr = order[pos];
    std::vector<std::pair<double, size_t>> scored;
    for (size_t prev = 0; prev < pos; ++prev) {
      const size_t cand = order[prev];
      if (joint_of(attr, cand) != nullptr) {
        scored.emplace_back(mi_of(attr, cand), cand);
      }
    }
    std::sort(scored.rbegin(), scored.rend());
    std::vector<size_t> parents;
    size_t cells = view.cardinality(attr);
    for (const auto& [mi, cand] : scored) {
      if (parents.size() >= static_cast<size_t>(options_.max_parents)) break;
      if (cells * view.cardinality(cand) > options_.max_joint_cells) continue;
      parents.push_back(cand);
      cells *= view.cardinality(cand);
    }
    nodes[attr].parents = parents;
    if (parents.size() <= 1) {
      // Reuse the pairwise joint (or the 1-way derived from any pair).
      continue;
    }
    std::vector<size_t> attrs = parents;
    attrs.push_back(attr);
    nodes[attr].joint = NoisyJointDistribution(truth, view, attrs, sigma, rng);
  }

  // One-way marginals for roots, derived from noisy pair joints where
  // possible (free post-processing), else released... every attribute has
  // at least one pairwise joint unless k == 1.
  auto one_way = [&](size_t attr) {
    std::vector<double> marginal(view.cardinality(attr), 0.0);
    for (size_t other = 0; other < k; ++other) {
      if (other == attr) continue;
      const std::vector<double>* joint = joint_of(attr, other);
      if (joint == nullptr) continue;
      const size_t lo = std::min(attr, other);
      const size_t hi = std::max(attr, other);
      const size_t card_hi = view.cardinality(hi);
      for (size_t x = 0; x < view.cardinality(lo); ++x) {
        for (size_t y = 0; y < card_hi; ++y) {
          const double p = (*joint)[x * card_hi + y];
          marginal[attr == lo ? x : y] += p;
        }
      }
      return marginal;
    }
    // No pair joint available (huge domains everywhere): uniform.
    std::fill(marginal.begin(), marginal.end(),
              1.0 / static_cast<double>(marginal.size()));
    return marginal;
  };

  // Ancestral sampling, i.i.d. per tuple.
  Table out(schema);
  out.ResizeRows(n);
  std::vector<int> buckets(k, 0);
  for (size_t r = 0; r < n; ++r) {
    for (size_t pos = 0; pos < k; ++pos) {
      const size_t attr = order[pos];
      const NodeModel& node = nodes[attr];
      std::vector<double> weights;
      const size_t card = view.cardinality(attr);
      if (pos == 0 || (node.parents.empty() && node.joint.empty())) {
        weights = one_way(attr);
      } else if (node.parents.size() == 1 && node.joint.empty()) {
        const size_t parent = node.parents[0];
        const std::vector<double>* joint = joint_of(attr, parent);
        weights.assign(card, 0.0);
        if (joint != nullptr) {
          const size_t lo = std::min(attr, parent);
          const size_t hi = std::max(attr, parent);
          const size_t card_hi = view.cardinality(hi);
          for (size_t v = 0; v < card; ++v) {
            const size_t x = attr == lo ? v : buckets[parent];
            const size_t y = attr == lo ? buckets[parent] : v;
            weights[v] = (*joint)[x * card_hi + y];
          }
        }
      } else {
        // Slice the (parents..., attr) joint at the sampled parent values.
        size_t offset = 0;
        for (size_t p : node.parents) {
          offset = offset * view.cardinality(p) +
                   static_cast<size_t>(buckets[p]);
        }
        weights.assign(card, 0.0);
        for (size_t v = 0; v < card; ++v) {
          weights[v] = node.joint[offset * card + v];
        }
      }
      const int bucket = static_cast<int>(rng->Discrete(weights));
      buckets[attr] = bucket;
      out.set(r, attr, view.Decode(attr, bucket, rng));
    }
  }
  return out;
}

}  // namespace kamino
