#include "kamino/baselines/synthesizer.h"

#include "kamino/common/logging.h"
#include "kamino/dp/gaussian.h"

namespace kamino {

DiscreteView DiscreteView::Make(const Schema& schema, int numeric_bins) {
  DiscreteView view;
  for (size_t a = 0; a < schema.size(); ++a) {
    const Attribute& attr = schema.attribute(a);
    if (attr.is_categorical()) {
      view.cardinalities_.push_back(attr.categories().size());
      view.quantizers_.push_back(std::nullopt);
    } else {
      auto q = Quantizer::Make(attr, numeric_bins);
      KAMINO_CHECK(q.ok()) << q.status().ToString();
      view.cardinalities_.push_back(static_cast<size_t>(numeric_bins));
      view.quantizers_.push_back(q.value());
    }
  }
  return view;
}

int DiscreteView::Encode(size_t attr, const Value& v) const {
  if (quantizers_[attr].has_value()) return quantizers_[attr]->BinOf(v.numeric());
  return v.category();
}

Value DiscreteView::Decode(size_t attr, int bucket, Rng* rng) const {
  if (quantizers_[attr].has_value()) {
    return Value::Numeric(quantizers_[attr]->SampleWithin(bucket, rng));
  }
  return Value::Categorical(bucket);
}

std::vector<double> NoisyJointDistribution(const Table& truth,
                                           const DiscreteView& view,
                                           const std::vector<size_t>& attrs,
                                           double sigma, Rng* rng) {
  size_t cells = 1;
  for (size_t a : attrs) cells *= view.cardinality(a);
  std::vector<double> counts(cells, 0.0);
  for (size_t r = 0; r < truth.num_rows(); ++r) {
    size_t cell = 0;
    for (size_t a : attrs) {
      cell = cell * view.cardinality(a) +
             static_cast<size_t>(view.Encode(a, truth.at(r, a)));
    }
    counts[cell] += 1.0;
  }
  return NoisyNormalizedHistogram(counts, sigma, rng);
}

}  // namespace kamino
