#include "kamino/baselines/pategan.h"

#include <algorithm>
#include <cmath>

#include "kamino/autograd/ops.h"
#include "kamino/dp/rdp.h"
#include "kamino/nn/module.h"

namespace kamino {
namespace {

struct PairTarget {
  size_t a = 0;
  size_t b = 0;
  Tensor joint;  // card_a x card_b
};

}  // namespace

Result<Table> PateGan::Synthesize(const Table& truth, size_t n, Rng* rng) {
  const Schema& schema = truth.schema();
  const size_t k = schema.size();
  if (k == 0 || truth.num_rows() == 0) {
    return Status::InvalidArgument("pate-gan needs data");
  }
  DiscreteView view = DiscreteView::Make(schema, options_.numeric_bins);

  // --- Private statistics release (the only data access) ---
  const int64_t releases = static_cast<int64_t>(k + options_.num_pairs);
  const double sigma =
      CalibrateGaussianSigma(releases, options_.epsilon, options_.delta);
  std::vector<Tensor> one_way_target(k);
  for (size_t a = 0; a < k; ++a) {
    one_way_target[a] = Tensor::RowVector(
        NoisyJointDistribution(truth, view, {a}, sigma, rng));
  }
  std::vector<std::pair<size_t, size_t>> candidates;
  for (size_t a = 0; a < k; ++a) {
    for (size_t b = a + 1; b < k; ++b) {
      if (view.cardinality(a) <= options_.pair_cardinality_limit &&
          view.cardinality(b) <= options_.pair_cardinality_limit) {
        candidates.emplace_back(a, b);
      }
    }
  }
  rng->Shuffle(&candidates);
  if (candidates.size() > options_.num_pairs) {
    candidates.resize(options_.num_pairs);
  }
  std::vector<PairTarget> pair_targets;
  for (const auto& [a, b] : candidates) {
    PairTarget t;
    t.a = a;
    t.b = b;
    std::vector<double> joint =
        NoisyJointDistribution(truth, view, {a, b}, sigma, rng);
    t.joint = Tensor(view.cardinality(a), view.cardinality(b));
    t.joint.data() = joint;
    pair_targets.push_back(std::move(t));
  }

  // --- Generator (post-processing on the released statistics) ---
  const size_t z_dim = options_.latent_dim;
  const size_t h = options_.hidden_dim;
  Parameter w1(Tensor::Randn(z_dim, h, 0.5, rng));
  Parameter b1(Tensor(1, h));
  std::vector<std::unique_ptr<Parameter>> head_w, head_b;
  for (size_t a = 0; a < k; ++a) {
    head_w.push_back(std::make_unique<Parameter>(
        Tensor::Randn(h, view.cardinality(a), 0.3, rng)));
    head_b.push_back(
        std::make_unique<Parameter>(Tensor(1, view.cardinality(a))));
  }
  std::vector<Parameter*> params = {&w1, &b1};
  for (size_t a = 0; a < k; ++a) {
    params.push_back(head_w[a].get());
    params.push_back(head_b[a].get());
  }

  auto forward_probs = [&](const Tensor& z, ForwardContext* ctx) {
    Var hidden =
        Tanh(Add(MatMul(MakeConstant(z), ctx->Bind(&w1)), ctx->Bind(&b1)));
    std::vector<Var> probs(k);
    for (size_t a = 0; a < k; ++a) {
      probs[a] = Softmax(Add(MatMul(hidden, ctx->Bind(head_w[a].get())),
                             ctx->Bind(head_b[a].get())));
    }
    return probs;
  };

  // Moment-matching training: make the expected generator marginals match
  // the noisy targets.
  const double batch_inv = 1.0 / static_cast<double>(options_.batch_size);
  for (size_t step = 0; step < options_.train_steps; ++step) {
    ForwardContext ctx;
    // Batch of latent draws; accumulate expected per-attribute probs and
    // expected pair outer products.
    std::vector<Var> expected(k);
    std::vector<Var> expected_pairs(pair_targets.size());
    for (size_t s = 0; s < options_.batch_size; ++s) {
      Tensor z(1, z_dim);
      for (double& v : z.data()) v = rng->Gaussian();
      std::vector<Var> probs = forward_probs(z, &ctx);
      for (size_t a = 0; a < k; ++a) {
        Var scaled = Scale(probs[a], batch_inv);
        expected[a] = expected[a] ? Add(expected[a], scaled) : scaled;
      }
      for (size_t p = 0; p < pair_targets.size(); ++p) {
        Var outer = Scale(MatMul(Transpose(probs[pair_targets[p].a]),
                                 probs[pair_targets[p].b]),
                          batch_inv);
        expected_pairs[p] =
            expected_pairs[p] ? Add(expected_pairs[p], outer) : outer;
      }
    }
    Var loss;
    for (size_t a = 0; a < k; ++a) {
      Var diff = Sub(expected[a], MakeConstant(one_way_target[a]));
      Var se = Sum(Mul(diff, diff));
      loss = loss ? Add(loss, se) : se;
    }
    for (size_t p = 0; p < pair_targets.size(); ++p) {
      Var diff = Sub(expected_pairs[p], MakeConstant(pair_targets[p].joint));
      Var se = Scale(Sum(Mul(diff, diff)), 0.5);
      loss = loss ? Add(loss, se) : se;
    }
    Backward(loss);
    std::vector<Tensor> grads = ZeroGradients(params);
    ctx.AccumulateInto(params, &grads);
    for (size_t p = 0; p < params.size(); ++p) {
      params[p]->value.Axpy(-options_.learning_rate, grads[p]);
    }
  }

  // --- Generation ---
  Table out(schema);
  out.ResizeRows(n);
  for (size_t r = 0; r < n; ++r) {
    Tensor z(1, z_dim);
    for (double& v : z.data()) v = rng->Gaussian();
    ForwardContext ctx;
    std::vector<Var> probs = forward_probs(z, &ctx);
    for (size_t a = 0; a < k; ++a) {
      const int bucket = static_cast<int>(rng->Discrete(probs[a]->value.data()));
      out.set(r, a, view.Decode(a, bucket, rng));
    }
  }
  return out;
}

}  // namespace kamino
