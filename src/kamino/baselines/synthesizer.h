#ifndef KAMINO_BASELINES_SYNTHESIZER_H_
#define KAMINO_BASELINES_SYNTHESIZER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "kamino/common/rng.h"
#include "kamino/common/status.h"
#include "kamino/data/quantizer.h"
#include "kamino/data/table.h"

namespace kamino {

/// Common interface of the differentially private synthetic-data baselines
/// compared against Kamino in section 7 (PrivBayes, NIST-PGM, DP-VAE,
/// PATE-GAN). All baselines sample tuples i.i.d. and are oblivious to
/// denial constraints - which is exactly the failure mode the paper's
/// Table 2 demonstrates.
class Synthesizer {
 public:
  virtual ~Synthesizer() = default;

  /// Generates `n` rows with the synthesizer's (epsilon, delta) guarantee.
  virtual Result<Table> Synthesize(const Table& truth, size_t n,
                                   Rng* rng) = 0;

  virtual std::string name() const = 0;
};

/// A discretized view of a mixed-type schema: categorical attributes keep
/// their categories, numeric attributes are quantized into equal-width
/// bins. All baselines operate on this view and decode buckets back to
/// values (numeric buckets decode to a uniform draw within the bin).
class DiscreteView {
 public:
  static DiscreteView Make(const Schema& schema, int numeric_bins);

  size_t num_attrs() const { return cardinalities_.size(); }
  size_t cardinality(size_t attr) const { return cardinalities_[attr]; }

  /// Bucket index of a value.
  int Encode(size_t attr, const Value& v) const;

  /// Concrete value for a bucket (uniform within numeric bins).
  Value Decode(size_t attr, int bucket, Rng* rng) const;

 private:
  std::vector<size_t> cardinalities_;
  std::vector<std::optional<Quantizer>> quantizers_;
};

/// Noisy (Gaussian) normalized joint histogram over a set of attributes of
/// the discrete view. Shared helper for the marginal-based baselines.
std::vector<double> NoisyJointDistribution(const Table& truth,
                                           const DiscreteView& view,
                                           const std::vector<size_t>& attrs,
                                           double sigma, Rng* rng);

}  // namespace kamino

#endif  // KAMINO_BASELINES_SYNTHESIZER_H_
