#ifndef KAMINO_BASELINES_PATEGAN_H_
#define KAMINO_BASELINES_PATEGAN_H_

#include <string>

#include "kamino/baselines/synthesizer.h"

namespace kamino {

/// PATE-GAN-style deep generator (Jordon et al., ICLR 2019 - simplified).
///
/// The original trains a generator against a student discriminator that is
/// supervised by noisy votes of teacher discriminators. Reproducing the
/// full adversarial loop offline is out of scope, so this stand-in keeps
/// the two properties the evaluation exercises - a deep latent-variable
/// generator and i.i.d., constraint-oblivious samples with a DP guarantee -
/// by fitting the generator to *privately released statistics*: noisy
/// 1-way marginals for every attribute and noisy 2-way marginals for
/// random small-domain pairs (the teachers' aggregate signal). Generator
/// training on those released statistics is pure post-processing.
class PateGan : public Synthesizer {
 public:
  struct Options {
    double epsilon = 1.0;
    double delta = 1e-6;
    int numeric_bins = 16;
    size_t num_pairs = 10;
    /// Only attributes with at most this many buckets join pair moments.
    size_t pair_cardinality_limit = 32;
    size_t latent_dim = 4;
    size_t hidden_dim = 16;
    size_t train_steps = 150;
    size_t batch_size = 16;
    double learning_rate = 0.2;
  };

  explicit PateGan(Options options) : options_(options) {}

  Result<Table> Synthesize(const Table& truth, size_t n, Rng* rng) override;

  std::string name() const override { return "pate-gan"; }

 private:
  Options options_;
};

}  // namespace kamino

#endif  // KAMINO_BASELINES_PATEGAN_H_
