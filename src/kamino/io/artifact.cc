#include "kamino/io/artifact.h"

#include <cstring>
#include <fstream>

#include "kamino/common/logging.h"
#include "kamino/core/weights.h"
#include "kamino/io/bytes.h"

namespace kamino {
namespace io {
namespace {

enum SectionId : uint32_t {
  kSectionOptions = 1,
  kSectionModel = 2,
  kSectionConstraints = 3,
  kSectionSequence = 4,
  kSectionDcWeights = 5,
  kSectionRng = 6,
  kSectionMeta = 7,
};

Status Truncated() { return Status::InvalidArgument("artifact truncated"); }

Status BadFlag() {
  return Status::InvalidArgument("artifact flag byte out of range");
}

bool ReadBool(ByteReader* in, bool* v, bool* flag_ok) {
  uint8_t b = 0;
  if (!in->ReadU8(&b)) return false;
  if (b > 1) {
    *flag_ok = false;
    return true;
  }
  *v = b != 0;
  return true;
}

// --- options section -------------------------------------------------------
// Every knob, in declaration order. Bools travel as 0/1 bytes; signed
// integers as their two's-complement u64/u32 bit patterns.

void SerializeOptions(const KaminoOptions& o, std::vector<uint8_t>* out) {
  AppendU64(out, o.embed_dim);
  AppendU32(out, static_cast<uint32_t>(o.quantize_bins));
  AppendDouble(out, o.learning_rate);
  AppendDouble(out, o.sigma_g);
  AppendDouble(out, o.sigma_d);
  AppendDouble(out, o.clip_norm);
  AppendU64(out, o.batch_size);
  AppendU64(out, o.iterations);
  AppendDouble(out, o.sigma_w);
  AppendU64(out, o.weight_sample);
  AppendU64(out, o.weight_iterations);
  AppendU64(out, o.weight_batch);
  AppendU8(out, o.non_private ? 1 : 0);
  AppendU32(out, static_cast<uint32_t>(o.max_candidates));
  AppendU64(out, o.mcmc_resamples);
  AppendU64(out, static_cast<uint64_t>(o.large_domain_threshold));
  AppendU64(out, static_cast<uint64_t>(o.group_domain_threshold));
  AppendU8(out, o.enable_grouping ? 1 : 0);
  AppendU8(out, o.enable_fd_fast_path ? 1 : 0);
  AppendU8(out, o.parallel_training ? 1 : 0);
  AppendU8(out, o.constraint_aware_sampling ? 1 : 0);
  AppendU8(out, o.random_sequence ? 1 : 0);
  AppendU8(out, o.accept_reject ? 1 : 0);
  AppendU64(out, o.ar_max_tries);
  AppendU64(out, o.num_threads);
  AppendU64(out, o.num_shards);
  AppendU64(out, o.shard_merge_resamples);
  AppendU8(out, o.adaptive_merge_budget ? 1 : 0);
  AppendU8(out, o.soft_penalty_merge_order ? 1 : 0);
  AppendU8(out, o.enable_tracing ? 1 : 0);
  AppendU8(out, o.enable_metrics ? 1 : 0);
  AppendU64(out, o.trace_capacity_events);
  AppendU8(out, o.compress_chunks ? 1 : 0);
  AppendU64(out, o.model_registry_capacity);
  AppendU64(out, o.seed);
}

Result<KaminoOptions> DeserializeOptions(ByteReader* in) {
  KaminoOptions o;
  bool flags_ok = true;
  uint32_t quantize_bins = 0;
  uint32_t max_candidates = 0;
  uint64_t u64 = 0;
  const bool ok =
      in->ReadU64(&u64) && ((o.embed_dim = static_cast<size_t>(u64)), true) &&
      in->ReadU32(&quantize_bins) && in->ReadDouble(&o.learning_rate) &&
      in->ReadDouble(&o.sigma_g) && in->ReadDouble(&o.sigma_d) &&
      in->ReadDouble(&o.clip_norm) && in->ReadU64(&u64) &&
      ((o.batch_size = static_cast<size_t>(u64)), true) && in->ReadU64(&u64) &&
      ((o.iterations = static_cast<size_t>(u64)), true) &&
      in->ReadDouble(&o.sigma_w) && in->ReadU64(&u64) &&
      ((o.weight_sample = static_cast<size_t>(u64)), true) &&
      in->ReadU64(&u64) &&
      ((o.weight_iterations = static_cast<size_t>(u64)), true) &&
      in->ReadU64(&u64) &&
      ((o.weight_batch = static_cast<size_t>(u64)), true) &&
      ReadBool(in, &o.non_private, &flags_ok) && in->ReadU32(&max_candidates) &&
      in->ReadU64(&u64) &&
      ((o.mcmc_resamples = static_cast<size_t>(u64)), true) &&
      in->ReadU64(&u64) &&
      ((o.large_domain_threshold = static_cast<int64_t>(u64)), true) &&
      in->ReadU64(&u64) &&
      ((o.group_domain_threshold = static_cast<int64_t>(u64)), true) &&
      ReadBool(in, &o.enable_grouping, &flags_ok) &&
      ReadBool(in, &o.enable_fd_fast_path, &flags_ok) &&
      ReadBool(in, &o.parallel_training, &flags_ok) &&
      ReadBool(in, &o.constraint_aware_sampling, &flags_ok) &&
      ReadBool(in, &o.random_sequence, &flags_ok) &&
      ReadBool(in, &o.accept_reject, &flags_ok) && in->ReadU64(&u64) &&
      ((o.ar_max_tries = static_cast<size_t>(u64)), true) &&
      in->ReadU64(&u64) && ((o.num_threads = static_cast<size_t>(u64)), true) &&
      in->ReadU64(&u64) && ((o.num_shards = static_cast<size_t>(u64)), true) &&
      in->ReadU64(&u64) &&
      ((o.shard_merge_resamples = static_cast<size_t>(u64)), true) &&
      ReadBool(in, &o.adaptive_merge_budget, &flags_ok) &&
      ReadBool(in, &o.soft_penalty_merge_order, &flags_ok) &&
      ReadBool(in, &o.enable_tracing, &flags_ok) &&
      ReadBool(in, &o.enable_metrics, &flags_ok) && in->ReadU64(&u64) &&
      ((o.trace_capacity_events = static_cast<size_t>(u64)), true) &&
      ReadBool(in, &o.compress_chunks, &flags_ok) && in->ReadU64(&u64) &&
      ((o.model_registry_capacity = static_cast<size_t>(u64)), true) &&
      in->ReadU64(&o.seed);
  if (!ok) return Truncated();
  if (!flags_ok) return BadFlag();
  o.quantize_bins = static_cast<int>(quantize_bins);
  o.max_candidates = static_cast<int>(max_candidates);
  KAMINO_RETURN_IF_ERROR(o.Validate());
  return o;
}

// --- meta section -----------------------------------------------------------

void SerializeMeta(const FitArtifacts& a, std::vector<uint8_t>* out) {
  AppendDouble(out, a.epsilon_spent);
  AppendU64(out, a.input_rows);
  AppendDouble(out, a.fit_timings.sequencing);
  AppendDouble(out, a.fit_timings.parameter_search);
  AppendDouble(out, a.fit_timings.training);
  AppendDouble(out, a.fit_timings.violation_matrix);
  AppendDouble(out, a.fit_timings.sampling);
  AppendDouble(out, a.fit_timings.shard_merge);
  AppendU64(out, a.fit_timings.num_threads);
  AppendU64(out, a.fit_timings.num_shards);
}

Status DeserializeMeta(ByteReader* in, FitArtifacts* a) {
  uint64_t input_rows = 0;
  uint64_t num_threads = 0;
  uint64_t num_shards = 0;
  if (!in->ReadDouble(&a->epsilon_spent) || !in->ReadU64(&input_rows) ||
      !in->ReadDouble(&a->fit_timings.sequencing) ||
      !in->ReadDouble(&a->fit_timings.parameter_search) ||
      !in->ReadDouble(&a->fit_timings.training) ||
      !in->ReadDouble(&a->fit_timings.violation_matrix) ||
      !in->ReadDouble(&a->fit_timings.sampling) ||
      !in->ReadDouble(&a->fit_timings.shard_merge) ||
      !in->ReadU64(&num_threads) || !in->ReadU64(&num_shards)) {
    return Truncated();
  }
  a->input_rows = static_cast<size_t>(input_rows);
  a->fit_timings.num_threads = static_cast<size_t>(num_threads);
  a->fit_timings.num_shards = static_cast<size_t>(num_shards);
  return Status::OK();
}

// --- section framing --------------------------------------------------------

void AppendSection(uint32_t id, const std::vector<uint8_t>& body,
                   std::vector<uint8_t>* out) {
  AppendU32(out, id);
  AppendU64(out, body.size());
  out->insert(out->end(), body.begin(), body.end());
}

/// Opens the next section, requiring its id to be `want`. On success the
/// section body is exposed through `section`.
Status OpenSection(ByteReader* in, uint32_t want, ByteReader* section) {
  uint32_t id = 0;
  uint64_t len = 0;
  if (!in->ReadU32(&id) || !in->ReadU64(&len)) return Truncated();
  if (id != want) {
    return Status::InvalidArgument(
        "artifact section " + std::to_string(id) + " where section " +
        std::to_string(want) + " was expected");
  }
  const uint8_t* body = nullptr;
  if (len > in->remaining() || !in->ReadBytes(&body, static_cast<size_t>(len))) {
    return Truncated();
  }
  *section = ByteReader(body, static_cast<size_t>(len));
  return Status::OK();
}

Status CloseSection(const ByteReader& section, const char* name) {
  if (!section.exhausted()) {
    return Status::InvalidArgument(std::string("trailing bytes in artifact ") +
                                   name + " section");
  }
  return Status::OK();
}

}  // namespace

std::vector<uint8_t> SerializeFitArtifacts(const FitArtifacts& artifacts) {
  std::vector<uint8_t> payload;
  std::vector<uint8_t> body;

  SerializeOptions(artifacts.resolved_options, &body);
  AppendSection(kSectionOptions, body, &payload);
  body.clear();

  artifacts.model.SerializeTo(&body);
  AppendSection(kSectionModel, body, &payload);
  body.clear();

  AppendU32(&body, static_cast<uint32_t>(artifacts.weighted.size()));
  for (const WeightedConstraint& wc : artifacts.weighted) {
    wc.dc.SerializeTo(&body);
    AppendDouble(&body, wc.weight);
    AppendU8(&body, wc.hard ? 1 : 0);
  }
  AppendSection(kSectionConstraints, body, &payload);
  body.clear();

  AppendU64Vec(&body, std::vector<uint64_t>(artifacts.sequence.begin(),
                                            artifacts.sequence.end()));
  AppendSection(kSectionSequence, body, &payload);
  body.clear();

  DcWeightsState weights{artifacts.dc_weights};
  weights.SerializeTo(&body);
  AppendSection(kSectionDcWeights, body, &payload);
  body.clear();

  AppendString(&body, SnapshotEngine(artifacts.sampling_engine).text);
  AppendSection(kSectionRng, body, &payload);
  body.clear();

  SerializeMeta(artifacts, &body);
  AppendSection(kSectionMeta, body, &payload);

  std::vector<uint8_t> out;
  out.reserve(kArtifactEnvelopeBytes + payload.size());
  out.insert(out.end(), kArtifactMagic, kArtifactMagic + 8);
  AppendU32(&out, kArtifactVersion);
  AppendU64(&out, payload.size());
  out.insert(out.end(), payload.begin(), payload.end());
  AppendU64(&out, DigestBytes(payload.data(), payload.size()));
  return out;
}

Result<FitArtifacts> DeserializeFitArtifacts(
    const std::vector<uint8_t>& bytes) {
  if (bytes.size() < kArtifactEnvelopeBytes) return Truncated();
  ByteReader in(bytes.data(), bytes.size());
  const uint8_t* magic = nullptr;
  if (!in.ReadBytes(&magic, 8) || std::memcmp(magic, kArtifactMagic, 8) != 0) {
    return Status::InvalidArgument("bad artifact magic");
  }
  uint32_t version = 0;
  uint64_t payload_len = 0;
  if (!in.ReadU32(&version) || !in.ReadU64(&payload_len)) return Truncated();
  if (version != kArtifactVersion) {
    return Status::InvalidArgument(
        "unsupported artifact format version " + std::to_string(version) +
        " (this build reads version " + std::to_string(kArtifactVersion) +
        ")");
  }
  if (payload_len != bytes.size() - kArtifactEnvelopeBytes) {
    return Status::InvalidArgument("artifact payload length mismatch");
  }
  const uint8_t* payload = nullptr;
  uint64_t stored_digest = 0;
  if (!in.ReadBytes(&payload, static_cast<size_t>(payload_len)) ||
      !in.ReadU64(&stored_digest) || !in.exhausted()) {
    return Truncated();
  }
  if (DigestBytes(payload, static_cast<size_t>(payload_len)) !=
      stored_digest) {
    return Status::InvalidArgument("artifact digest mismatch (corrupt payload)");
  }

  ByteReader body(payload, static_cast<size_t>(payload_len));
  FitArtifacts artifacts;
  ByteReader section(nullptr, 0);

  KAMINO_RETURN_IF_ERROR(OpenSection(&body, kSectionOptions, &section));
  KAMINO_ASSIGN_OR_RETURN(artifacts.resolved_options,
                          DeserializeOptions(&section));
  KAMINO_RETURN_IF_ERROR(CloseSection(section, "options"));

  KAMINO_RETURN_IF_ERROR(OpenSection(&body, kSectionModel, &section));
  KAMINO_ASSIGN_OR_RETURN(artifacts.model,
                          ProbabilisticDataModel::DeserializeFrom(&section));
  KAMINO_RETURN_IF_ERROR(CloseSection(section, "model"));
  const Schema& schema = artifacts.model.schema();

  KAMINO_RETURN_IF_ERROR(OpenSection(&body, kSectionConstraints, &section));
  uint32_t num_constraints = 0;
  if (!section.ReadU32(&num_constraints)) return Truncated();
  if (num_constraints > section.remaining()) return Truncated();
  artifacts.weighted.reserve(num_constraints);
  for (uint32_t i = 0; i < num_constraints; ++i) {
    WeightedConstraint wc;
    KAMINO_ASSIGN_OR_RETURN(wc.dc,
                            DenialConstraint::DeserializeFrom(&section, schema));
    uint8_t hard = 0;
    if (!section.ReadDouble(&wc.weight) || !section.ReadU8(&hard)) {
      return Truncated();
    }
    if (hard > 1) return BadFlag();
    wc.hard = hard != 0;
    artifacts.weighted.push_back(std::move(wc));
  }
  KAMINO_RETURN_IF_ERROR(CloseSection(section, "constraints"));

  KAMINO_RETURN_IF_ERROR(OpenSection(&body, kSectionSequence, &section));
  std::vector<uint64_t> seq_raw;
  if (!ReadU64Vec(&section, &seq_raw)) return Truncated();
  KAMINO_RETURN_IF_ERROR(CloseSection(section, "sequence"));
  if (seq_raw.size() != artifacts.model.sequence().size()) {
    return Status::InvalidArgument(
        "artifact sequence does not match the model's sequence");
  }
  artifacts.sequence.reserve(seq_raw.size());
  for (size_t i = 0; i < seq_raw.size(); ++i) {
    if (seq_raw[i] != artifacts.model.sequence()[i]) {
      return Status::InvalidArgument(
          "artifact sequence does not match the model's sequence");
    }
    artifacts.sequence.push_back(static_cast<size_t>(seq_raw[i]));
  }

  KAMINO_RETURN_IF_ERROR(OpenSection(&body, kSectionDcWeights, &section));
  KAMINO_ASSIGN_OR_RETURN(
      DcWeightsState weights,
      DcWeightsState::DeserializeFrom(&section, artifacts.weighted.size()));
  artifacts.dc_weights = std::move(weights.weights);
  KAMINO_RETURN_IF_ERROR(CloseSection(section, "dc_weights"));

  KAMINO_RETURN_IF_ERROR(OpenSection(&body, kSectionRng, &section));
  RngState rng_state;
  if (!section.ReadString(&rng_state.text)) return Truncated();
  KAMINO_RETURN_IF_ERROR(CloseSection(section, "rng"));
  KAMINO_RETURN_IF_ERROR(RestoreEngine(rng_state, &artifacts.sampling_engine));

  KAMINO_RETURN_IF_ERROR(OpenSection(&body, kSectionMeta, &section));
  KAMINO_RETURN_IF_ERROR(DeserializeMeta(&section, &artifacts));
  KAMINO_RETURN_IF_ERROR(CloseSection(section, "meta"));

  if (!body.exhausted()) {
    return Status::InvalidArgument("trailing bytes after last artifact section");
  }
  return artifacts;
}

Status SaveFitArtifacts(const FitArtifacts& artifacts,
                        const std::string& path) {
  const std::vector<uint8_t> bytes = SerializeFitArtifacts(artifacts);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out.good()) {
    return Status::IoError("failed to write artifact to '" + path + "'");
  }
  return Status::OK();
}

Result<FitArtifacts> LoadFitArtifacts(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  if (in.bad()) {
    return Status::IoError("failed to read artifact from '" + path + "'");
  }
  return DeserializeFitArtifacts(bytes);
}

bool ResealArtifact(std::vector<uint8_t>* bytes) {
  if (bytes->size() < kArtifactEnvelopeBytes) return false;
  const size_t payload_len = bytes->size() - kArtifactEnvelopeBytes;
  uint8_t* data = bytes->data();
  for (int i = 0; i < 8; ++i) {
    data[12 + i] = (static_cast<uint64_t>(payload_len) >> (8 * i)) & 0xff;
  }
  const uint64_t digest = DigestBytes(data + 20, payload_len);
  for (int i = 0; i < 8; ++i) {
    data[bytes->size() - 8 + i] = (digest >> (8 * i)) & 0xff;
  }
  return true;
}

}  // namespace io
}  // namespace kamino
