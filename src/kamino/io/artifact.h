#ifndef KAMINO_IO_ARTIFACT_H_
#define KAMINO_IO_ARTIFACT_H_

// Versioned binary wire format for fitted Kamino models (FitArtifacts):
//
//   [8]  magic  "KAMINOFM"
//   [4]  u32    format version (currently 1; higher versions rejected)
//   [8]  u64    payload length in bytes
//   [..] payload: length-prefixed sections, in this fixed order:
//          1 options      resolved KaminoOptions, every knob
//          2 model        schema, sequence, encoder tensors, units
//          3 constraints  weighted DC set (predicates + weight + hardness)
//          4 sequence     sequencing order (must match the model's)
//          5 dc_weights   learned per-constraint weights
//          6 rng          fit RNG snapshot (mt19937_64 state)
//          7 meta         epsilon_spent, input_rows, fit timings
//        each section is [u32 id][u64 len][len bytes]
//   [8]  u64    splitmix64 integrity digest over the payload
//
// Everything is little-endian (io/bytes.h primitives). Deserialization is
// fully validating: truncation, digest mismatches, unknown versions, and
// structural tampering (arity/kind flips, non-permutation sequences,
// tensor shape mismatches) are rejected with a Status — never undefined
// behavior — and all derived model state is recomputed from the schema
// rather than trusted from the wire. A save -> load -> save round trip is
// byte-identical.

#include <cstdint>
#include <string>
#include <vector>

#include "kamino/common/status.h"
#include "kamino/core/pipeline.h"

namespace kamino {
namespace io {

inline constexpr uint8_t kArtifactMagic[8] = {'K', 'A', 'M', 'I',
                                              'N', 'O', 'F', 'M'};
inline constexpr uint32_t kArtifactVersion = 1;
/// Header (magic + version + payload length) plus trailing digest.
inline constexpr size_t kArtifactEnvelopeBytes = 8 + 4 + 8 + 8;

/// Serializes fitted artifacts to the wire format above. The model must be
/// trained (a default-constructed FitArtifacts is not serializable).
std::vector<uint8_t> SerializeFitArtifacts(const FitArtifacts& artifacts);

/// Parses and validates an artifact. Returns InvalidArgument for any
/// corruption or tampering the format can detect.
Result<FitArtifacts> DeserializeFitArtifacts(const std::vector<uint8_t>& bytes);

/// File forms. I/O failures surface as IoError, format failures as
/// InvalidArgument.
Status SaveFitArtifacts(const FitArtifacts& artifacts, const std::string& path);
Result<FitArtifacts> LoadFitArtifacts(const std::string& path);

/// Test helper: rewrites the header payload length and the trailing digest
/// of `bytes` so they match its current (possibly mutated) payload. Lets
/// corruption tests reach the structural validation *behind* the digest
/// check. Returns false when `bytes` is too short to carry the envelope.
bool ResealArtifact(std::vector<uint8_t>* bytes);

}  // namespace io
}  // namespace kamino

#endif  // KAMINO_IO_ARTIFACT_H_
