#ifndef KAMINO_IO_BYTES_H_
#define KAMINO_IO_BYTES_H_

// Little-endian byte primitives shared by the wire codecs: the streaming
// chunk codec (data/chunk_codec.cc) and the model-artifact codec
// (io/artifact.cc). Everything here is allocation-light and bounds-checked
// on the read side: a `ByteReader` fails (returns false) on truncated or
// overlong reads instead of walking off the buffer, so adversarial input
// surfaces as a Status at the caller, never as undefined behavior.

#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

namespace kamino {
namespace io {

inline void AppendU8(std::vector<uint8_t>* out, uint8_t v) {
  out->push_back(v);
}

inline void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back((v >> (8 * i)) & 0xff);
}

inline void AppendU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back((v >> (8 * i)) & 0xff);
}

inline uint64_t DoubleBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

inline double BitsDouble(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

/// Doubles travel as IEEE-754 bit patterns, so NaN payloads, -0.0 and
/// every finite value round-trip bit-exactly.
inline void AppendDouble(std::vector<uint8_t>* out, double v) {
  AppendU64(out, DoubleBits(v));
}

/// Length-prefixed UTF-8-agnostic byte string.
inline void AppendString(std::vector<uint8_t>* out, const std::string& s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out->insert(out->end(), s.begin(), s.end());
}

/// Bounded little-endian reader. Every read checks the *remaining* length
/// (`count > size - pos`, which cannot overflow) so truncated payloads and
/// absurd adversarial lengths both surface as a clean failure.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool ReadU8(uint8_t* v) {
    if (size_ - pos_ < 1) return false;
    *v = data_[pos_++];
    return true;
  }

  bool ReadU32(uint32_t* v) {
    if (size_ - pos_ < 4) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) *v |= uint32_t{data_[pos_++]} << (8 * i);
    return true;
  }

  bool ReadU64(uint64_t* v) {
    if (size_ - pos_ < 8) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) *v |= uint64_t{data_[pos_++]} << (8 * i);
    return true;
  }

  bool ReadDouble(double* v) {
    uint64_t bits = 0;
    if (!ReadU64(&bits)) return false;
    *v = BitsDouble(bits);
    return true;
  }

  bool ReadBytes(const uint8_t** p, size_t count) {
    if (count > size_ - pos_) return false;
    *p = data_ + pos_;
    pos_ += count;
    return true;
  }

  bool ReadString(std::string* s) {
    uint32_t len = 0;
    const uint8_t* bytes = nullptr;
    if (!ReadU32(&len) || !ReadBytes(&bytes, len)) return false;
    s->assign(reinterpret_cast<const char*>(bytes), len);
    return true;
  }

  bool exhausted() const { return pos_ == size_; }
  size_t remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// Bits needed to represent `range` (>= 1 even for range 0, so packed
/// blocks never claim zero-width cells).
inline uint8_t BitWidthFor(uint64_t range) {
  uint8_t w = 1;
  while (w < 64 && (range >> w) != 0) ++w;
  return w;
}

inline size_t PackedBytes(size_t n, uint8_t width) {
  return (n * width + 7) / 8;
}

/// LSB-first bit packing of `width`-bit values. `width` <= 56 so the
/// accumulator never overflows (56 value bits + 7 carried bits < 64).
inline void PackBits(const std::vector<uint64_t>& vals, uint8_t width,
                     std::vector<uint8_t>* out) {
  uint64_t acc = 0;
  int nbits = 0;
  for (uint64_t v : vals) {
    acc |= v << nbits;
    nbits += width;
    while (nbits >= 8) {
      out->push_back(acc & 0xff);
      acc >>= 8;
      nbits -= 8;
    }
  }
  if (nbits > 0) out->push_back(acc & 0xff);
}

inline bool UnpackBits(ByteReader* in, size_t n, uint8_t width,
                       std::vector<uint64_t>* vals) {
  // The byte-count arithmetic must not overflow for adversarial n: a
  // wrapped `nbytes` would pass the bounds check and then over-read.
  if (width == 0 || width > 56 ||
      n > (std::numeric_limits<size_t>::max() - 7) / width) {
    return false;
  }
  const size_t nbytes = PackedBytes(n, width);
  const uint8_t* bytes = nullptr;
  if (!in->ReadBytes(&bytes, nbytes)) return false;
  const uint64_t mask = (uint64_t{1} << width) - 1;
  vals->resize(n);
  uint64_t acc = 0;
  int nbits = 0;
  size_t pos = 0;
  for (size_t i = 0; i < n; ++i) {
    while (nbits < width) {
      acc |= uint64_t{bytes[pos++]} << nbits;
      nbits += 8;
    }
    (*vals)[i] = acc & mask;
    acc >>= width;
    nbits -= width;
  }
  return true;
}

/// splitmix64 finalizer: every input bit affects every output bit.
inline uint64_t Splitmix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Integrity digest over a byte span: a splitmix64 chain absorbing the
/// payload 8 bytes at a time, length-seeded so payloads that are prefixes
/// of each other never collide trivially.
inline uint64_t DigestBytes(const uint8_t* data, size_t size) {
  uint64_t h = 0x9e3779b97f4a7c15ull ^ size;
  size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    uint64_t word = 0;
    std::memcpy(&word, data + i, 8);
    h = Splitmix64(h ^ word);
  }
  if (i < size) {
    uint64_t tail = 0;
    for (size_t j = 0; i + j < size; ++j) tail |= uint64_t{data[i + j]} << (8 * j);
    h = Splitmix64(h ^ tail);
  }
  return h;
}

/// Column-shaped u64 vector: length prefix, then the chunk codec's
/// frame-of-reference bit packing against base 0 (sequence orders, sizes
/// and attribute indices are tiny, so this is a few bits per entry). Wide
/// values (> 56 bits) fall back to raw words under the 0xFF width tag.
inline void AppendU64Vec(std::vector<uint8_t>* out,
                         const std::vector<uint64_t>& vals) {
  AppendU64(out, vals.size());
  if (vals.empty()) return;
  uint64_t hi = 0;
  for (uint64_t v : vals) hi = v > hi ? v : hi;
  const uint8_t width = BitWidthFor(hi);
  if (width <= 56) {
    AppendU8(out, width);
    PackBits(vals, width, out);
  } else {
    AppendU8(out, 0xff);
    for (uint64_t v : vals) AppendU64(out, v);
  }
}

inline bool ReadU64Vec(ByteReader* in, std::vector<uint64_t>* vals) {
  uint64_t n = 0;
  if (!in->ReadU64(&n)) return false;
  vals->clear();
  if (n == 0) return true;
  // Each entry costs at least one packed bit; anything claiming more
  // entries than the remaining bits could hold is corrupt.
  if (n > in->remaining() * 8ull) return false;
  uint8_t width = 0;
  if (!in->ReadU8(&width)) return false;
  if (width == 0xff) {
    if (n > in->remaining() / 8) return false;
    vals->resize(static_cast<size_t>(n));
    for (uint64_t& v : *vals) {
      if (!in->ReadU64(&v)) return false;
    }
    return true;
  }
  return UnpackBits(in, static_cast<size_t>(n), width, vals);
}

/// Column-shaped double vector: length prefix + raw IEEE-754 bit patterns
/// (model weights and noisy histograms are incompressible, so no scheme
/// selection — exactly the chunk codec's kRawBits block shape).
inline void AppendDoubleVec(std::vector<uint8_t>* out,
                            const std::vector<double>& vals) {
  AppendU64(out, vals.size());
  for (double v : vals) AppendDouble(out, v);
}

inline bool ReadDoubleVec(ByteReader* in, std::vector<double>* vals) {
  uint64_t n = 0;
  if (!in->ReadU64(&n)) return false;
  if (n > in->remaining() / 8) return false;
  vals->resize(static_cast<size_t>(n));
  for (double& v : *vals) {
    if (!in->ReadDouble(&v)) return false;
  }
  return true;
}

}  // namespace io
}  // namespace kamino

#endif  // KAMINO_IO_BYTES_H_
