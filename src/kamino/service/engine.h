#ifndef KAMINO_SERVICE_ENGINE_H_
#define KAMINO_SERVICE_ENGINE_H_

// Session-based synthesis API.
//
// `RunKamino` re-runs sequencing, parameter search, DP-SGD training and
// weight learning on every call, even though sampling (Algorithm 3) is
// pure post-processing with zero privacy cost. `KaminoEngine` splits the
// pipeline at exactly that line:
//
//   KaminoEngine engine;
//   auto model = engine.Fit(data, constraints, config);      // pays epsilon
//   auto a = engine.Synthesize(model.value(), {});           // free
//   SynthesisRequest req;
//   req.seed = 7;
//   req.num_shards = 4;
//   auto job = engine.Submit(model.value(), req);            // async
//   ...
//   auto b = job->Wait();
//
// One fit's privacy budget amortizes over arbitrarily many synthesis
// requests, each a pure function of (model, seed, num_shards). Jobs run
// on a cancellable queue (runtime::JobQueue) with progress snapshots and
// optional streaming row delivery through a `RowSink`.

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "kamino/common/logging.h"
#include "kamino/common/status.h"
#include "kamino/core/kamino.h"
#include "kamino/core/pipeline.h"
#include "kamino/core/sampler.h"
#include "kamino/data/table.h"
#include "kamino/dc/constraint.h"
#include "kamino/runtime/thread_pool.h"

namespace kamino {

/// The immutable artifact of one `KaminoEngine::Fit` call: the trained
/// probabilistic model, the weighted constraint set, the resolved DP
/// parameters and the fit's privacy spend. Cheap to copy (a shared
/// reference), safe to share across threads and engines.
///
/// Ownership: a FittedModel owns ALL of its state. Nothing in the handle
/// aliases the fitted data table (or any other input) — the schema,
/// constraint set, encoder tensors and RNG snapshot are deep copies made
/// during the fit, so the input table may be released (or mutated)
/// immediately after `Fit` returns, and a model loaded from an artifact
/// file is self-contained with no live inputs at all. Synthesis never
/// touches the private instance again.
class FittedModel {
 public:
  /// An empty handle; `valid()` is false until assigned from `Fit`.
  FittedModel() = default;

  bool valid() const { return state_ != nullptr; }

  /// Privacy cost of the fit under Theorem 1 (infinity if non-private).
  /// Synthesis requests add nothing to it.
  double epsilon_spent() const { return state().epsilon_spent; }
  /// The DP parameter set Psi the fit resolved (Algorithm 6).
  const KaminoOptions& resolved_options() const {
    return state().resolved_options;
  }
  /// The schema sequence S chosen by Algorithm 4.
  const std::vector<size_t>& sequence() const { return state().sequence; }
  /// Learned (or hardness-implied) weight per input constraint.
  const std::vector<double>& dc_weights() const {
    return state().dc_weights;
  }
  /// Rows of the fitted instance (the default synthesis size).
  size_t input_rows() const { return state().input_rows; }
  /// Wall clock of the fit phases.
  const PhaseTimings& fit_timings() const { return state().fit_timings; }

  /// The underlying stage artifacts (for callers composing the core
  /// pipeline directly, e.g. the bench harness).
  const FitArtifacts& artifacts() const { return state(); }

  /// Wraps already-computed stage artifacts in a model handle (for
  /// callers that ran the core pipeline stages directly).
  static FittedModel FromArtifacts(FitArtifacts artifacts);

  /// The model's wire form (io/artifact.h): a versioned, digest-sealed
  /// byte string. Serialize -> Deserialize -> Serialize is byte-identical.
  /// Fails with FailedPrecondition on an empty handle.
  Result<std::vector<uint8_t>> Serialize() const;
  /// Parses and validates an artifact byte string. Corruption of any kind
  /// (truncation, bit flips, version/kind/arity tampering) is rejected
  /// with a Status. The returned model owns all of its state.
  static Result<FittedModel> Deserialize(const std::vector<uint8_t>& bytes);

  /// File forms of the above. I/O failures surface as IoError.
  Status Save(const std::string& path) const;
  static Result<FittedModel> Load(const std::string& path);

 private:
  friend class KaminoEngine;
  explicit FittedModel(std::shared_ptr<const FitArtifacts> state)
      : state_(std::move(state)) {}

  /// Every accessor funnels through here so reading an empty handle fails
  /// loudly instead of dereferencing null.
  const FitArtifacts& state() const {
    KAMINO_CHECK(valid()) << "FittedModel accessed before Fit assigned it";
    return *state_;
  }

  std::shared_ptr<const FitArtifacts> state_;
};

/// Receives the synthetic instance incrementally as `TableChunk`s.
///
/// Delivery-order guarantee (the streaming contract): chunks arrive in
/// ascending `row_offset` order, one per shard, exactly once each, tiling
/// [0, num_rows) without gap or overlap; every delivered row is final —
/// the shard has cleared merge reconciliation and no later step rewrites
/// it; all chunks are delivered before the job completes, i.e. `Wait()`
/// returns only after the last `OnChunk` call has returned. `OnChunk` is
/// called serially (never two calls in flight) from the job's runner
/// thread, not from the submitting thread. The sink must outlive the job.
///
/// The contract holds in both merge modes. Under the default global
/// merge, chunks arrive back to back after all shards have sampled and
/// reconciled; under `progressive_merge`, chunk s arrives as soon as
/// shards [0, s] have frozen — typically while later shards are still
/// sampling — which is what makes time-to-first-chunk ~ 1/num_shards of
/// the job instead of ~ all of it.
class RowSink {
 public:
  virtual ~RowSink() = default;

  /// A non-OK return aborts the job with that status (remaining chunks
  /// are not delivered).
  virtual Status OnChunk(const TableChunk& chunk) = 0;
};

/// One synthesis request against a fitted model. Value-semantics; the
/// defaults reproduce the fit config's sampling phase exactly.
struct SynthesisRequest {
  /// Synthetic rows; 0 means "as many as the fitted instance".
  size_t num_rows = 0;
  /// Root seed of the request's sampling randomness. 0 (the default)
  /// resumes the fit's RNG snapshot — the stream the monolithic
  /// `RunKamino` sampling phase drew from, so a default request
  /// reproduces the full run bit for bit. Any other value seeds an
  /// independent stream: the output is then a pure function of
  /// (model, seed, resolved num_shards).
  uint64_t seed = 0;
  /// Shard override for shard-parallel sampling; kUnset keeps the fitted
  /// options' count. Part of the output contract (see KaminoOptions).
  size_t num_shards = SampleSpec::kUnset;
  /// Thread-budget override; kUnset keeps the process-wide budget. Never
  /// changes the output, only wall clock. The budget is global: with
  /// overlapping jobs the last starter wins for newly started parallel
  /// regions (outputs are unaffected by construction).
  size_t num_threads = SampleSpec::kUnset;
  /// Optional streaming delivery (see RowSink for the order guarantee).
  /// Must outlive the job.
  RowSink* sink = nullptr;
  /// Deliver chunks to `sink` as compressed per-column payloads
  /// (`TableChunk::encoded`, decode with `DecodeChunkColumns`) instead of
  /// materialized rows. The delivered rows are unchanged — only their
  /// wire form is. Ignored without a sink.
  bool compress_chunks = false;
  /// Stream through the progressive prefix-frozen merge: each shard is
  /// reconciled against the frozen prefix and its chunk delivered as soon
  /// as it finishes sampling (see `KaminoOptions::progressive_merge` for
  /// the determinism + prefix-immutability contract). Changes the merge,
  /// so the synthesized rows differ from the global-merge output for the
  /// same seed; either mode satisfies the same hard-DC guarantees.
  bool progressive_merge = false;
  /// Spill frozen slices to disk and drop their in-memory columns (see
  /// `KaminoOptions::out_of_core`). Implies `progressive_merge`. Combine
  /// with `collect_table = false` + a sink for the constant-memory
  /// delivery path: rows then exist only as chunks and spill blocks.
  bool out_of_core = false;
  /// When false, the result's `synthetic` table is left empty — rows are
  /// observable through `sink` only. Saves the final copy for consumers
  /// that forward chunks elsewhere anyway (and under `out_of_core` skips
  /// re-reading the spilled slices entirely).
  bool collect_table = true;
};

/// What one synthesis request produced.
struct SynthesisResult {
  /// The synthetic instance (empty when the request said
  /// `collect_table = false`).
  Table synthetic;
  SynthesisTelemetry telemetry;
  /// Wall clock of this request's sampling (merge included).
  double sampling_seconds = 0.0;
};

/// Handle to one asynchronous synthesis job. Obtained from
/// `KaminoEngine::Submit`; shareable across threads.
class SynthesisJob {
 public:
  /// Observable lifecycle. Queued/Sampling/Merging/Delivering are
  /// in-flight; Done/Cancelled/Failed are terminal.
  enum class Phase {
    kQueued,
    kSampling,
    kMerging,
    kDelivering,
    kDone,
    kCancelled,
    kFailed,
  };

  /// A consistent point-in-time snapshot of the job's progress.
  struct Progress {
    Phase phase = Phase::kQueued;
    /// Rows the job will synthesize in total.
    size_t rows_total = 0;
    /// Rows whose shard has finished its sampling loop (pre-merge).
    size_t rows_sampled = 0;
    /// Rows delivered through the sink in final, reconciled form (stays
    /// 0 for sink-less jobs until completion, then jumps to rows_total).
    size_t rows_committed = 0;
    size_t chunks_delivered = 0;
  };

  Progress progress() const;

  /// Engine-wide job sequence number (1, 2, ...), assigned at Submit.
  /// Matches the `job` arg of the job's "service/job" trace span, so a
  /// handle can be correlated with its spans in the exported trace.
  uint64_t id() const;

  /// True once the job reached a terminal phase.
  bool finished() const;

  /// Requests cooperative cancellation: a queued job is skipped without
  /// running; a running job stops at the next shard or column-group
  /// boundary (and between chunk deliveries) and completes as
  /// kCancelled. Idempotent, never blocks, never deadlocks a Wait().
  void Cancel();

  /// Blocks until the job is terminal and returns its result: the
  /// synthesis output, StatusCode::kCancelled for a cancelled/skipped
  /// job, or the failing stage's error. Safe to call from any thread,
  /// multiple times (later calls return a Status-only copy for errors
  /// and the cached result for success).
  Result<SynthesisResult> Wait();

 private:
  friend class KaminoEngine;
  SynthesisJob() = default;

  struct Shared;
  std::shared_ptr<Shared> shared_;
  std::shared_ptr<runtime::JobQueue::Job> queue_job_;
};

/// A long-lived synthesis service: owns (a reference to) the process-wide
/// runtime pool and a cancellable job queue, and exposes the
/// fit-once/synthesize-many session API. Thread-safe: Fit, Synthesize and
/// Submit may be called concurrently from any thread.
class KaminoEngine {
 public:
  struct Options {
    /// Worker-thread budget for the parallel runtime (0 = hardware
    /// concurrency). Applied at construction; per-request
    /// `num_threads` overrides re-apply it per job.
    size_t num_threads = 0;
    /// Jobs executing concurrently; the rest wait queued in submission
    /// order.
    size_t max_concurrent_jobs = 2;
    /// Capacity of the engine's LRU registry of hot models (see
    /// RegisterModel). Values below 1 are clamped to 1. Defaults to the
    /// KaminoOptions knob of the same name.
    size_t model_registry_capacity = KaminoOptions().model_registry_capacity;
  };

  /// Default options: hardware-concurrency thread budget, 2 concurrent
  /// jobs.
  KaminoEngine();
  explicit KaminoEngine(const Options& options);

  /// Cancels every outstanding job, waits for running ones to stop at
  /// their next cancellation point, then tears the queue down. Jobs'
  /// `Wait()` stays valid after the engine is gone.
  ~KaminoEngine();

  KaminoEngine(const KaminoEngine&) = delete;
  KaminoEngine& operator=(const KaminoEngine&) = delete;

  /// Lines 2-5 of Algorithm 1 — the entire privacy spend. Validates
  /// `config` up front. The input table may be released afterwards.
  Result<FittedModel> Fit(const Table& data,
                          const std::vector<WeightedConstraint>& constraints,
                          const KaminoConfig& config);

  /// Synchronous constraint-aware sampling from a fitted model — pure
  /// post-processing, no privacy cost, `model` is not mutated. Identical
  /// (model, request) pairs produce identical tables.
  Result<SynthesisResult> Synthesize(const FittedModel& model,
                                     const SynthesisRequest& request) const;

  /// Queues the request as an asynchronous job. The returned handle's
  /// `Wait()`/`Cancel()`/`progress()` are valid for the life of the
  /// handle, independent of the engine. `request.sink` (when set) must
  /// outlive the job.
  std::shared_ptr<SynthesisJob> Submit(const FittedModel& model,
                                       const SynthesisRequest& request);

  // --- Model registry -------------------------------------------------
  //
  // An LRU cache of hot fitted models keyed by caller-chosen ids, so a
  // long-lived service can address models by name ("adult-v3") instead of
  // threading handles through every call site. Registering past
  // `Options::model_registry_capacity` evicts the least recently used
  // entry (counted as `kamino.registry.evictions` when metrics are on);
  // an evicted model stays alive for anyone still holding its handle —
  // only the registry's reference is dropped.

  /// Inserts (or overwrites) `id` -> `model` and marks it most recently
  /// used. Rejects empty ids and invalid handles with InvalidArgument.
  Status RegisterModel(const std::string& id, const FittedModel& model);

  /// Looks up a registered model and marks it most recently used.
  /// NotFound for unknown (or evicted) ids. Hits and misses are counted
  /// (`kamino.registry.hits` / `kamino.registry.misses`).
  Result<FittedModel> GetModel(const std::string& id) const;

  /// Loads an artifact file (FittedModel::Load) and registers it under
  /// `id` in one step, returning the loaded model.
  Result<FittedModel> LoadModel(const std::string& id,
                                const std::string& path);

  /// Registered model count (for introspection/tests).
  size_t registry_size() const;

  /// Synthesize/Submit against a registered model id; NotFound when the
  /// id is unknown. Equivalent to GetModel + the handle overloads (the
  /// lookup refreshes the id's LRU position).
  Result<SynthesisResult> Synthesize(const std::string& model_id,
                                     const SynthesisRequest& request) const;
  Result<std::shared_ptr<SynthesisJob>> Submit(const std::string& model_id,
                                               const SynthesisRequest& request);

  /// JSON snapshot of the process-wide metrics registry (counters,
  /// gauges, histograms — see README "Observability" for the catalog).
  /// Meaningful after a run with `enable_metrics`; otherwise the
  /// registered metrics are present with zero values.
  std::string DumpMetrics() const;

  /// Chrome trace-event JSON of every span recorded so far (load in
  /// Perfetto / chrome://tracing). Meaningful after a run with
  /// `enable_tracing`; otherwise an empty trace.
  std::string DumpTrace() const;

 private:
  std::shared_ptr<runtime::ThreadPool> pool_;
  std::unique_ptr<runtime::JobQueue> jobs_;
  // Outstanding queue-job handles, so the destructor can cancel every
  // job — including fire-and-forget submissions whose public
  // SynthesisJob handle the caller already dropped (the queue keeps the
  // underlying job alive while it is queued or running). Guarded by mu_;
  // pruned of finished jobs on every Submit.
  mutable std::mutex mu_;
  std::vector<std::weak_ptr<runtime::JobQueue::Job>> submitted_;

  // LRU model registry. The list holds (id, model) pairs ordered from
  // most to least recently used; the index maps ids to list iterators
  // (stable under splice). GetModel refreshes recency, hence the mutable
  // members behind a const API. Guarded by registry_mu_ (separate from
  // mu_ so registry lookups never contend with job submission).
  size_t registry_capacity_ = 1;
  mutable std::mutex registry_mu_;
  mutable std::list<std::pair<std::string, FittedModel>> registry_lru_;
  mutable std::unordered_map<
      std::string, std::list<std::pair<std::string, FittedModel>>::iterator>
      registry_index_;
};

}  // namespace kamino

#endif  // KAMINO_SERVICE_ENGINE_H_
