#include "kamino/service/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <utility>

#include "kamino/io/artifact.h"
#include "kamino/obs/metrics.h"
#include "kamino/obs/trace.h"

namespace kamino {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

SampleSpec SpecOf(const SynthesisRequest& request) {
  SampleSpec spec;
  spec.num_rows = request.num_rows;
  spec.seed = request.seed;
  spec.num_shards = request.num_shards;
  spec.num_threads = request.num_threads;
  spec.compress_chunks = request.compress_chunks;
  spec.progressive_merge = request.progressive_merge;
  spec.out_of_core = request.out_of_core;
  return spec;
}

/// First-chunk latency histogram, recorded per streaming run. Fixed
/// roughly-logarithmic bounds from 1ms to 10s (first registration wins,
/// so every engine in the process shares one layout).
void RecordFirstChunkSeconds(double seconds) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  if (!reg.enabled()) return;
  reg.histogram("kamino.service.first_chunk_seconds",
                {0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
                 5.0, 10.0})
      ->Record(seconds);
}

/// Engine-wide job sequence numbers; process-global so two engines in one
/// process never hand out colliding trace-correlation ids.
std::atomic<uint64_t> g_next_job_id{1};

void BumpServiceCounter(const char* which, int64_t delta = 1) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  if (!reg.enabled()) return;
  reg.counter(std::string("kamino.service.") + which)->Increment(delta);
}

void BumpRegistryCounter(const char* which, int64_t delta = 1) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  if (!reg.enabled()) return;
  reg.counter(std::string("kamino.registry.") + which)->Increment(delta);
}

}  // namespace

FittedModel FittedModel::FromArtifacts(FitArtifacts artifacts) {
  return FittedModel(
      std::make_shared<const FitArtifacts>(std::move(artifacts)));
}

Result<std::vector<uint8_t>> FittedModel::Serialize() const {
  if (!valid()) {
    return Status::FailedPrecondition(
        "cannot serialize an empty FittedModel handle");
  }
  return io::SerializeFitArtifacts(*state_);
}

Result<FittedModel> FittedModel::Deserialize(
    const std::vector<uint8_t>& bytes) {
  KAMINO_ASSIGN_OR_RETURN(FitArtifacts artifacts,
                          io::DeserializeFitArtifacts(bytes));
  return FromArtifacts(std::move(artifacts));
}

Status FittedModel::Save(const std::string& path) const {
  if (!valid()) {
    return Status::FailedPrecondition(
        "cannot save an empty FittedModel handle");
  }
  return io::SaveFitArtifacts(*state_, path);
}

Result<FittedModel> FittedModel::Load(const std::string& path) {
  KAMINO_ASSIGN_OR_RETURN(FitArtifacts artifacts, io::LoadFitArtifacts(path));
  return FromArtifacts(std::move(artifacts));
}

/// Job state shared between the handle, the queue body and the hooks.
/// Progress fields are lock-free atomics (polled from pool workers);
/// the result is guarded by `mu` and written exactly once, when the body
/// finishes.
struct SynthesisJob::Shared {
  uint64_t id = 0;  // assigned once in Submit, read-only afterwards
  std::atomic<Phase> phase{Phase::kQueued};
  std::atomic<size_t> rows_total{0};
  std::atomic<size_t> rows_sampled{0};
  std::atomic<size_t> rows_committed{0};
  std::atomic<size_t> chunks_delivered{0};

  std::mutex mu;
  Status status;  // non-OK for cancelled/failed jobs
  SynthesisResult result;
};

SynthesisJob::Progress SynthesisJob::progress() const {
  Progress p;
  p.phase = shared_->phase.load(std::memory_order_relaxed);
  if (queue_job_->state() == runtime::JobQueue::JobState::kSkipped) {
    p.phase = Phase::kCancelled;  // cancelled before a runner picked it up
  }
  p.rows_total = shared_->rows_total.load(std::memory_order_relaxed);
  p.rows_sampled = shared_->rows_sampled.load(std::memory_order_relaxed);
  p.rows_committed = shared_->rows_committed.load(std::memory_order_relaxed);
  p.chunks_delivered =
      shared_->chunks_delivered.load(std::memory_order_relaxed);
  return p;
}

uint64_t SynthesisJob::id() const { return shared_->id; }

bool SynthesisJob::finished() const {
  const Phase phase = progress().phase;
  return phase == Phase::kDone || phase == Phase::kCancelled ||
         phase == Phase::kFailed;
}

void SynthesisJob::Cancel() { queue_job_->Cancel(); }

Result<SynthesisResult> SynthesisJob::Wait() {
  const runtime::JobQueue::JobState state = queue_job_->Wait();
  if (state == runtime::JobQueue::JobState::kSkipped) {
    return Status::Cancelled("synthesis job cancelled before it started");
  }
  std::lock_guard<std::mutex> lock(shared_->mu);
  if (!shared_->status.ok()) return shared_->status;
  return shared_->result;  // copy: Wait may be called repeatedly
}

KaminoEngine::KaminoEngine() : KaminoEngine(Options()) {}

KaminoEngine::KaminoEngine(const Options& options) {
  runtime::SetGlobalNumThreads(options.num_threads);
  pool_ = runtime::GlobalThreadPool();
  jobs_ = std::make_unique<runtime::JobQueue>(options.max_concurrent_jobs);
  // A constructor cannot return a Status, so an out-of-range capacity is
  // clamped rather than rejected (KaminoOptions::Validate still rejects 0
  // for configs that flow through the pipeline entry points).
  registry_capacity_ = std::max<size_t>(1, options.model_registry_capacity);
}

KaminoEngine::~KaminoEngine() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const std::weak_ptr<runtime::JobQueue::Job>& weak : submitted_) {
      if (std::shared_ptr<runtime::JobQueue::Job> job = weak.lock()) {
        job->Cancel();
      }
    }
  }
  jobs_.reset();  // skips queued jobs, joins runners
}

Result<FittedModel> KaminoEngine::Fit(
    const Table& data, const std::vector<WeightedConstraint>& constraints,
    const KaminoConfig& config) {
  KAMINO_ASSIGN_OR_RETURN(FitArtifacts fitted,
                          FitPipeline(data, constraints, config));
  return FittedModel(
      std::make_shared<const FitArtifacts>(std::move(fitted)));
}

Result<SynthesisResult> KaminoEngine::Synthesize(
    const FittedModel& model, const SynthesisRequest& request) const {
  if (!model.valid()) {
    return Status::InvalidArgument("Synthesize needs a fitted model");
  }
  SynthesisHooks hooks;
  hooks.discard_result = !request.collect_table;
  RowSink* sink = request.sink;
  // First-chunk latency is clocked from run start (no queue on the
  // synchronous path); chunks are delivered serially from this call's
  // stack, so a plain shared double suffices.
  const auto start = std::chrono::steady_clock::now();
  auto first_chunk = std::make_shared<double>(-1.0);
  if (sink != nullptr) {
    hooks.on_chunk = [sink, start, first_chunk](const TableChunk& chunk) {
      if (*first_chunk < 0.0) *first_chunk = SecondsSince(start);
      return sink->OnChunk(chunk);
    };
  }
  SynthesisResult result;
  KAMINO_ASSIGN_OR_RETURN(
      Table out, SamplePipeline(model.artifacts(), SpecOf(request), &hooks,
                                &result.telemetry));
  result.sampling_seconds = SecondsSince(start);
  if (*first_chunk >= 0.0) {
    result.telemetry.first_chunk_seconds = *first_chunk;
    RecordFirstChunkSeconds(*first_chunk);
  }
  if (request.collect_table) result.synthetic = std::move(out);
  return result;
}

std::shared_ptr<SynthesisJob> KaminoEngine::Submit(
    const FittedModel& model, const SynthesisRequest& request) {
  auto job = std::shared_ptr<SynthesisJob>(new SynthesisJob());
  auto shared = std::make_shared<SynthesisJob::Shared>();
  job->shared_ = shared;
  shared->id = g_next_job_id.fetch_add(1, std::memory_order_relaxed);
  const size_t rows_total =
      request.num_rows == 0 && model.valid() ? model.input_rows()
                                             : request.num_rows;
  shared->rows_total.store(rows_total, std::memory_order_relaxed);
  BumpServiceCounter("jobs_submitted");

  job->queue_job_ = jobs_->Submit([shared, model, request](
                                      const runtime::CancelToken& token) {
    using Phase = SynthesisJob::Phase;
    // The per-job trace handle: everything the job does (per-shard
    // sampling, merge, chunk delivery) nests under this span.
    obs::TraceSpan job_span("service/job");
    job_span.AddArg("job", static_cast<int64_t>(shared->id));
    job_span.AddArg(
        "rows_total",
        static_cast<int64_t>(
            shared->rows_total.load(std::memory_order_relaxed)));
    if (!model.valid()) {
      std::lock_guard<std::mutex> lock(shared->mu);
      shared->status = Status::InvalidArgument("Submit needs a fitted model");
      shared->phase.store(Phase::kFailed, std::memory_order_relaxed);
      BumpServiceCounter("jobs_failed");
      return;
    }
    shared->phase.store(Phase::kSampling, std::memory_order_relaxed);

    // The job clock starts here — after dequeue — so first-chunk latency
    // measures sampling + merge, not queue wait.
    const auto start = std::chrono::steady_clock::now();
    auto first_chunk = std::make_shared<double>(-1.0);

    SynthesisHooks hooks;
    hooks.discard_result = !request.collect_table;
    hooks.keep_going = [token] { return !token.cancel_requested(); };
    hooks.on_rows_sampled = [shared](size_t rows) {
      const size_t sampled =
          shared->rows_sampled.fetch_add(rows, std::memory_order_relaxed) +
          rows;
      if (sampled >=
          shared->rows_total.load(std::memory_order_relaxed)) {
        shared->phase.store(SynthesisJob::Phase::kMerging,
                            std::memory_order_relaxed);
      }
    };
    RowSink* sink = request.sink;
    if (sink != nullptr) {
      hooks.on_chunk = [shared, sink, start,
                        first_chunk](const TableChunk& chunk) {
        if (*first_chunk < 0.0) *first_chunk = SecondsSince(start);
        shared->phase.store(SynthesisJob::Phase::kDelivering,
                            std::memory_order_relaxed);
        KAMINO_RETURN_IF_ERROR(sink->OnChunk(chunk));
        // num_rows() covers both representations (materialized rows and
        // compressed payloads carry the same logical slice).
        shared->rows_committed.fetch_add(chunk.num_rows(),
                                         std::memory_order_relaxed);
        shared->chunks_delivered.fetch_add(1, std::memory_order_relaxed);
        BumpServiceCounter("chunks_delivered");
        BumpServiceCounter("rows_delivered",
                           static_cast<int64_t>(chunk.num_rows()));
        return Status::OK();
      };
    }

    SynthesisTelemetry telemetry;
    Result<Table> out =
        SamplePipeline(model.artifacts(), SpecOf(request), &hooks,
                       &telemetry);
    const double seconds = SecondsSince(start);
    if (*first_chunk >= 0.0) {
      telemetry.first_chunk_seconds = *first_chunk;
      RecordFirstChunkSeconds(*first_chunk);
      job_span.AddArg("first_chunk_ms",
                      static_cast<int64_t>(*first_chunk * 1000.0));
    }

    std::lock_guard<std::mutex> lock(shared->mu);
    if (!out.ok()) {
      const bool cancelled = out.status().code() == StatusCode::kCancelled;
      shared->status = out.status();
      shared->phase.store(cancelled ? Phase::kCancelled : Phase::kFailed,
                          std::memory_order_relaxed);
      BumpServiceCounter(cancelled ? "jobs_cancelled" : "jobs_failed");
      return;
    }
    shared->result.telemetry = telemetry;
    shared->result.sampling_seconds = seconds;
    if (request.collect_table) {
      shared->result.synthetic = std::move(out).TakeValue();
    }
    if (sink == nullptr) {
      // No streaming: every row commits at completion.
      shared->rows_committed.store(
          shared->rows_total.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
    shared->phase.store(Phase::kDone, std::memory_order_relaxed);
    BumpServiceCounter("jobs_done");
  });

  std::lock_guard<std::mutex> lock(mu_);
  submitted_.erase(
      std::remove_if(submitted_.begin(), submitted_.end(),
                     [](const std::weak_ptr<runtime::JobQueue::Job>& weak) {
                       return weak.expired();
                     }),
      submitted_.end());
  submitted_.push_back(job->queue_job_);
  return job;
}

Status KaminoEngine::RegisterModel(const std::string& id,
                                   const FittedModel& model) {
  if (id.empty()) {
    return Status::InvalidArgument("model id must be non-empty");
  }
  if (!model.valid()) {
    return Status::InvalidArgument(
        "cannot register an empty FittedModel handle");
  }
  std::lock_guard<std::mutex> lock(registry_mu_);
  auto it = registry_index_.find(id);
  if (it != registry_index_.end()) {
    it->second->second = model;
    registry_lru_.splice(registry_lru_.begin(), registry_lru_, it->second);
    return Status::OK();
  }
  registry_lru_.emplace_front(id, model);
  registry_index_[id] = registry_lru_.begin();
  while (registry_lru_.size() > registry_capacity_) {
    registry_index_.erase(registry_lru_.back().first);
    registry_lru_.pop_back();
    BumpRegistryCounter("evictions");
  }
  return Status::OK();
}

Result<FittedModel> KaminoEngine::GetModel(const std::string& id) const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  auto it = registry_index_.find(id);
  if (it == registry_index_.end()) {
    BumpRegistryCounter("misses");
    return Status::NotFound("no model registered under id '" + id + "'");
  }
  registry_lru_.splice(registry_lru_.begin(), registry_lru_, it->second);
  BumpRegistryCounter("hits");
  return it->second->second;
}

Result<FittedModel> KaminoEngine::LoadModel(const std::string& id,
                                            const std::string& path) {
  KAMINO_ASSIGN_OR_RETURN(FittedModel model, FittedModel::Load(path));
  KAMINO_RETURN_IF_ERROR(RegisterModel(id, model));
  return model;
}

size_t KaminoEngine::registry_size() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  return registry_lru_.size();
}

Result<SynthesisResult> KaminoEngine::Synthesize(
    const std::string& model_id, const SynthesisRequest& request) const {
  KAMINO_ASSIGN_OR_RETURN(FittedModel model, GetModel(model_id));
  return Synthesize(model, request);
}

Result<std::shared_ptr<SynthesisJob>> KaminoEngine::Submit(
    const std::string& model_id, const SynthesisRequest& request) {
  KAMINO_ASSIGN_OR_RETURN(FittedModel model, GetModel(model_id));
  return Submit(model, request);
}

std::string KaminoEngine::DumpMetrics() const {
  return obs::MetricsRegistry::Global().ToJson();
}

std::string KaminoEngine::DumpTrace() const {
  return obs::TraceRecorder::Global().ToJson();
}

}  // namespace kamino
