#ifndef KAMINO_RUNTIME_RNG_STREAM_H_
#define KAMINO_RUNTIME_RNG_STREAM_H_

#include <cstdint>

namespace kamino {
namespace runtime {

/// Splits one root seed into per-task deterministic sub-seeds.
///
/// Parallel regions must not share a mutable `Rng`: the interleaving of
/// draws would depend on scheduling and the output on the thread count.
/// Instead the owner of the region draws ONE seed from the sequential run
/// RNG, wraps it in an `RngStream`, and every task `i` constructs its own
/// `Rng(stream.SubSeed(i))`. Task `i` then sees the same draw sequence no
/// matter which thread runs it or in what order, so results are
/// bit-identical at any `num_threads`.
///
/// Sub-seeds are produced by the SplitMix64 finalizer over
/// `root + (i + 1) * golden_gamma` — the standard seed-sequence
/// construction (cheap, stateless, and avalanche-complete, so streams for
/// adjacent indices are uncorrelated even though mt19937_64 seeding is
/// not cryptographic).
class RngStream {
 public:
  explicit RngStream(uint64_t root_seed) : root_(root_seed) {}

  /// Deterministic seed for task `stream_id`.
  uint64_t SubSeed(uint64_t stream_id) const;

  /// A child stream rooted at `SubSeed(stream_id)`, for hierarchical
  /// splitting (e.g. per-unit, then per-row).
  RngStream Fork(uint64_t stream_id) const {
    return RngStream(SubSeed(stream_id));
  }

  uint64_t root() const { return root_; }

  /// The SplitMix64 finalizer (exposed for tests and ad-hoc mixing).
  static uint64_t Mix(uint64_t x);

 private:
  uint64_t root_;
};

}  // namespace runtime
}  // namespace kamino

#endif  // KAMINO_RUNTIME_RNG_STREAM_H_
