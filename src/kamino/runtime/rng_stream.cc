#include "kamino/runtime/rng_stream.h"

namespace kamino {
namespace runtime {

uint64_t RngStream::Mix(uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

uint64_t RngStream::SubSeed(uint64_t stream_id) const {
  // Weyl-sequence step by the golden gamma, then finalize; stream_id + 1
  // keeps SubSeed(0) distinct from the root itself.
  return Mix(root_ + (stream_id + 1) * 0x9E3779B97F4A7C15ull);
}

}  // namespace runtime
}  // namespace kamino
