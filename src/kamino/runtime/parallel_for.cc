#include "kamino/runtime/parallel_for.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>

#include "kamino/runtime/thread_pool.h"

namespace kamino {
namespace runtime {
namespace {

Status RunChunkGuarded(const ChunkFn& fn, size_t begin, size_t end) {
  try {
    return fn(begin, end);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("ParallelFor body threw: ") +
                            e.what());
  } catch (...) {
    return Status::Internal("ParallelFor body threw a non-std exception");
  }
}

/// State shared between the caller and the pool runners of one loop.
struct LoopState {
  size_t begin = 0;
  size_t end = 0;
  size_t grain = 1;
  size_t num_chunks = 0;
  const ChunkFn* fn = nullptr;

  std::atomic<size_t> next_chunk{0};
  std::atomic<bool> failed{false};

  std::mutex mu;
  std::condition_variable done_cv;
  size_t active_runners = 0;
  // Error of the failing chunk with the smallest index (serial-order
  // first failure), so the reported Status does not depend on timing.
  size_t error_chunk = SIZE_MAX;
  Status error;

  /// Claims and executes chunks until the range (or an error) exhausts it.
  void Drain() {
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      const size_t k = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (k >= num_chunks) return;
      const size_t lo = begin + k * grain;
      const size_t hi = std::min(end, lo + grain);
      Status st = RunChunkGuarded(*fn, lo, hi);
      if (!st.ok()) {
        failed.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(mu);
        if (k < error_chunk) {
          error_chunk = k;
          error = std::move(st);
        }
      }
    }
  }
};

}  // namespace

Status ParallelFor(size_t begin, size_t end, size_t grain, const ChunkFn& fn) {
  if (end <= begin) return Status::OK();
  grain = std::max<size_t>(1, grain);
  const size_t range = end - begin;
  const size_t num_chunks = (range + grain - 1) / grain;
  const size_t budget = GlobalNumThreads();

  if (budget <= 1 || num_chunks == 1 || ThreadPool::InWorkerThread()) {
    for (size_t k = 0; k < num_chunks; ++k) {
      const size_t lo = begin + k * grain;
      const size_t hi = std::min(end, lo + grain);
      KAMINO_RETURN_IF_ERROR(RunChunkGuarded(fn, lo, hi));
    }
    return Status::OK();
  }

  auto state = std::make_shared<LoopState>();
  state->begin = begin;
  state->end = end;
  state->grain = grain;
  state->num_chunks = num_chunks;
  state->fn = &fn;

  // The caller participates, so at most num_chunks - 1 pool runners are
  // useful; each runner pulls chunks until the shared counter runs dry.
  const size_t runners = std::min(budget, num_chunks - 1);
  state->active_runners = runners;
  // The shared_ptr keeps the pool alive even if SetGlobalNumThreads
  // swaps the global reference mid-loop.
  std::shared_ptr<ThreadPool> pool = GlobalThreadPool();
  for (size_t r = 0; r < runners; ++r) {
    pool->Submit([state] {
      state->Drain();
      std::lock_guard<std::mutex> lock(state->mu);
      if (--state->active_runners == 0) state->done_cv.notify_all();
    });
  }

  state->Drain();
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->done_cv.wait(lock, [&] { return state->active_runners == 0; });
    return state->error_chunk == SIZE_MAX ? Status::OK()
                                          : std::move(state->error);
  }
}

void ParallelForEach(size_t begin, size_t end, size_t grain,
                     const std::function<void(size_t)>& fn) {
  // The body is infallible, so the loop's Status is always OK.
  (void)ParallelFor(begin, end, grain, [&fn](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) fn(i);
    return Status::OK();
  });
}

}  // namespace runtime
}  // namespace kamino
