#ifndef KAMINO_RUNTIME_THREAD_POOL_H_
#define KAMINO_RUNTIME_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace kamino {
namespace runtime {

/// A fixed-size pool of worker threads consuming a FIFO task queue.
///
/// This is the execution substrate for `ParallelFor`: the pool is created
/// lazily on first use (single-threaded runs never spawn a thread) and
/// sized by the `num_threads` knob of `KaminoOptions`. Tasks must not
/// block on other pool tasks; `ParallelFor` guards against the one nested
/// case the library produces by running nested loops inline.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains nothing: outstanding tasks are completed, then workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues `fn` for execution on some worker. `fn` must not throw out
  /// of the task (wrap fallible work; `ParallelFor` does).
  void Submit(std::function<void()> fn);

  /// True when the calling thread is one of this process's pool workers
  /// (any pool). Used to run nested parallel regions inline instead of
  /// deadlocking on a saturated queue.
  static bool InWorkerThread();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Sets the process-wide thread budget for the global pool: 0 means "use
/// hardware concurrency". Takes effect on the next `GlobalThreadPool()`
/// call; an existing pool of a different size is detached and destroyed
/// once the last in-flight `ParallelFor` releases its reference, so
/// resizing under concurrent loops is safe (they finish on the old pool).
void SetGlobalNumThreads(size_t num_threads);

/// The thread budget `ParallelFor` plans for: the value set through
/// `SetGlobalNumThreads` with 0 resolved to hardware concurrency.
size_t GlobalNumThreads();

/// The lazily-created process-wide pool, sized per `SetGlobalNumThreads`.
/// Never returns null; callers keep the shared_ptr for as long as they
/// submit to the pool.
std::shared_ptr<ThreadPool> GlobalThreadPool();

}  // namespace runtime
}  // namespace kamino

#endif  // KAMINO_RUNTIME_THREAD_POOL_H_
