#ifndef KAMINO_RUNTIME_THREAD_POOL_H_
#define KAMINO_RUNTIME_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace kamino {
namespace runtime {

/// A fixed-size pool of worker threads consuming a FIFO task queue.
///
/// This is the execution substrate for `ParallelFor`: the pool is created
/// lazily on first use (single-threaded runs never spawn a thread) and
/// sized by the `num_threads` knob of `KaminoOptions`. Tasks must not
/// block on other pool tasks; `ParallelFor` guards against the one nested
/// case the library produces by running nested loops inline.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains nothing: outstanding tasks are completed, then workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues `fn` for execution on some worker. `fn` must not throw out
  /// of the task (wrap fallible work; `ParallelFor` does).
  void Submit(std::function<void()> fn);

  /// True when the calling thread is one of this process's pool workers
  /// (any pool). Used to run nested parallel regions inline instead of
  /// deadlocking on a saturated queue.
  static bool InWorkerThread();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Cooperative cancellation flag shared between a job's owner and the
/// code running it. Copies alias the same flag; reads and writes are
/// lock-free atomics, so the token may be polled from any thread (pool
/// workers included) while the owner cancels from another.
class CancelToken {
 public:
  CancelToken() : cancelled_(std::make_shared<std::atomic<bool>>(false)) {}

  /// Requests cancellation. Idempotent; never blocks. Running work
  /// observes it at its next poll; queued work is skipped at dequeue.
  void RequestCancel() {
    cancelled_->store(true, std::memory_order_relaxed);
  }

  bool cancel_requested() const {
    return cancelled_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> cancelled_;
};

/// A FIFO queue of long-running, cancellable jobs with completion
/// signaling — the substrate of the session engine's async Submit API.
///
/// Unlike `ThreadPool` tasks, queue jobs run on dedicated runner threads
/// (never pool workers), so a job body may block, wait on pool work, and
/// fan parallel regions onto the global pool without deadlocking it.
/// `num_runners` bounds how many jobs execute concurrently; the rest wait
/// queued in submission order.
class JobQueue {
 public:
  /// Lifecycle of one submitted job. Queued -> Running -> Done is the
  /// normal path; Queued -> Skipped happens when the job is cancelled (or
  /// the queue destroyed) before a runner picks it up.
  enum class JobState { kQueued, kRunning, kDone, kSkipped };

  /// The job body; poll `token.cancel_requested()` at convenient
  /// boundaries to honor cancellation of running jobs.
  using JobBody = std::function<void(const CancelToken&)>;

  /// Shared handle to one submitted job.
  class Job {
   public:
    /// Requests cancellation: a still-queued job completes as kSkipped
    /// without running; a running job sees its token at the next poll
    /// (and still completes as kDone — the body decides what a cancelled
    /// run produces). Idempotent, never blocks.
    void Cancel() { token_.RequestCancel(); }

    /// Blocks until the job reaches kDone or kSkipped; returns that state.
    JobState Wait();

    JobState state() const;
    const CancelToken& token() const { return token_; }

   private:
    friend class JobQueue;
    void SetState(JobState next);

    mutable std::mutex mu_;
    std::condition_variable cv_;
    JobState state_ = JobState::kQueued;
    CancelToken token_;
    JobBody body_;
  };

  /// Spawns `num_runners` dedicated runner threads (clamped to >= 1).
  explicit JobQueue(size_t num_runners);

  /// Skips every still-queued job, then joins the runners once running
  /// jobs finish. Running jobs are left to complete — owners wanting a
  /// prompt shutdown should Cancel() their outstanding jobs first (the
  /// session engine's destructor does).
  ~JobQueue();

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Enqueues `body` and returns its handle. Jobs start in submission
  /// order as runners free up.
  std::shared_ptr<Job> Submit(JobBody body);

  size_t num_runners() const { return runners_.size(); }

 private:
  void RunnerLoop();

  std::vector<std::thread> runners_;
  std::deque<std::shared_ptr<Job>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Sets the process-wide thread budget for the global pool: 0 means "use
/// hardware concurrency". Takes effect on the next `GlobalThreadPool()`
/// call; an existing pool of a different size is detached and destroyed
/// once the last in-flight `ParallelFor` releases its reference, so
/// resizing under concurrent loops is safe (they finish on the old pool).
void SetGlobalNumThreads(size_t num_threads);

/// The thread budget `ParallelFor` plans for: the value set through
/// `SetGlobalNumThreads` with 0 resolved to hardware concurrency.
size_t GlobalNumThreads();

/// The lazily-created process-wide pool, sized per `SetGlobalNumThreads`.
/// Never returns null; callers keep the shared_ptr for as long as they
/// submit to the pool.
std::shared_ptr<ThreadPool> GlobalThreadPool();

}  // namespace runtime
}  // namespace kamino

#endif  // KAMINO_RUNTIME_THREAD_POOL_H_
