#ifndef KAMINO_RUNTIME_PARALLEL_FOR_H_
#define KAMINO_RUNTIME_PARALLEL_FOR_H_

#include <cstddef>
#include <functional>

#include "kamino/common/status.h"

namespace kamino {
namespace runtime {

/// The body of one `ParallelFor` chunk: processes indices [begin, end).
/// Returning a non-OK Status cancels the remaining (unstarted) chunks.
using ChunkFn = std::function<Status(size_t begin, size_t end)>;

/// Runs `fn` over [begin, end) in chunks of at most `grain` indices,
/// distributed across the global thread pool. Blocks until every started
/// chunk completes.
///
/// Guarantees:
///  - Chunk boundaries depend only on (begin, end, grain) — never on the
///    thread count — so a body whose chunks write disjoint outputs (and
///    whose per-index work is RNG-free or keyed by index, see `RngStream`)
///    produces bit-identical results at any `num_threads`.
///  - Status propagation: if one or more chunks fail, the error of the
///    failing chunk with the smallest begin index is returned (the same
///    error a serial loop would surface first). Later unstarted chunks are
///    skipped.
///  - Exception propagation: a body that throws is caught at the chunk
///    boundary and reported as `StatusCode::kInternal` (the library is
///    otherwise exception-free).
///  - Runs inline (no pool, no locks) when the budget is one thread, the
///    range fits in one chunk, or the caller is itself a pool worker
///    (nested regions never deadlock).
///
/// `grain` is clamped to at least 1. An empty range returns OK without
/// invoking `fn`.
Status ParallelFor(size_t begin, size_t end, size_t grain, const ChunkFn& fn);

/// Convenience wrapper for infallible per-index bodies.
void ParallelForEach(size_t begin, size_t end, size_t grain,
                     const std::function<void(size_t index)>& fn);

}  // namespace runtime
}  // namespace kamino

#endif  // KAMINO_RUNTIME_PARALLEL_FOR_H_
