#include "kamino/runtime/thread_pool.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace kamino {
namespace runtime {
namespace {

thread_local bool t_in_worker = false;

size_t ResolveNumThreads(size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

std::mutex g_pool_mu;
std::shared_ptr<ThreadPool> g_pool;
size_t g_requested_threads = 0;  // 0 = hardware concurrency

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

bool ThreadPool::InWorkerThread() { return t_in_worker; }

void ThreadPool::WorkerLoop() {
  t_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void SetGlobalNumThreads(size_t num_threads) {
  std::shared_ptr<ThreadPool> doomed;
  {
    std::lock_guard<std::mutex> lock(g_pool_mu);
    g_requested_threads = num_threads;
    if (g_pool != nullptr &&
        g_pool->num_threads() != ResolveNumThreads(num_threads)) {
      doomed = std::move(g_pool);
    }
  }
  // The old pool is destroyed outside the lock, and only once the last
  // in-flight ParallelFor drops its shared reference — a concurrent loop
  // that grabbed the pool before the resize finishes safely on it.
}

size_t GlobalNumThreads() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  return ResolveNumThreads(g_requested_threads);
}

std::shared_ptr<ThreadPool> GlobalThreadPool() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (g_pool == nullptr) {
    g_pool = std::make_shared<ThreadPool>(ResolveNumThreads(g_requested_threads));
  }
  return g_pool;
}

}  // namespace runtime
}  // namespace kamino
