#include "kamino/runtime/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <utility>

#include "kamino/obs/metrics.h"
#include "kamino/obs/trace.h"

namespace kamino {
namespace runtime {
namespace {

thread_local bool t_in_worker = false;

/// Cached handles into the global registry: name lookup happens once, the
/// hot paths touch only the metric's own atomics.
obs::Gauge* QueueDepthGauge() {
  static obs::Gauge* gauge =
      obs::MetricsRegistry::Global().gauge("kamino.runtime.queue_depth");
  return gauge;
}

obs::Histogram* TaskLatencyHistogram() {
  static obs::Histogram* hist = obs::MetricsRegistry::Global().histogram(
      "kamino.runtime.task_seconds",
      {1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0});
  return hist;
}

obs::Counter* JobQueueCounter(const char* which) {
  return obs::MetricsRegistry::Global().counter(
      std::string("kamino.jobqueue.") + which);
}

size_t ResolveNumThreads(size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

std::mutex g_pool_mu;
std::shared_ptr<ThreadPool> g_pool;
size_t g_requested_threads = 0;  // 0 = hardware concurrency

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
    // Absolute depth under the queue mutex: toggling metrics mid-run can
    // never skew the gauge the way a relative +1/-1 pair could.
    QueueDepthGauge()->Set(static_cast<int64_t>(queue_.size()));
  }
  cv_.notify_one();
}

bool ThreadPool::InWorkerThread() { return t_in_worker; }

void ThreadPool::WorkerLoop() {
  t_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      QueueDepthGauge()->Set(static_cast<int64_t>(queue_.size()));
    }
    if (obs::MetricsRegistry::Global().enabled()) {
      const auto t0 = std::chrono::steady_clock::now();
      task();
      TaskLatencyHistogram()->Record(
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count());
    } else {
      task();
    }
  }
}

JobQueue::JobState JobQueue::Job::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] {
    return state_ == JobState::kDone || state_ == JobState::kSkipped;
  });
  return state_;
}

JobQueue::JobState JobQueue::Job::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

void JobQueue::Job::SetState(JobState next) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    state_ = next;
  }
  cv_.notify_all();
}

JobQueue::JobQueue(size_t num_runners) {
  const size_t n = std::max<size_t>(1, num_runners);
  runners_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    runners_.emplace_back([this] { RunnerLoop(); });
  }
}

JobQueue::~JobQueue() {
  std::deque<std::shared_ptr<Job>> orphaned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    orphaned.swap(queue_);
  }
  cv_.notify_all();
  // Queued jobs will never run; release their waiters as skipped. Running
  // jobs are asked to wind down and then joined below.
  for (const std::shared_ptr<Job>& job : orphaned) {
    job->Cancel();
    job->body_ = nullptr;  // the closure's captures die with the queue
    job->SetState(JobState::kSkipped);
  }
  for (std::thread& r : runners_) r.join();
}

std::shared_ptr<JobQueue::Job> JobQueue::Submit(JobBody body) {
  auto job = std::make_shared<Job>();
  job->body_ = std::move(body);
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(job);
  }
  cv_.notify_one();
  obs::TraceInstant("jobqueue/queued");
  if (obs::MetricsRegistry::Global().enabled()) {
    JobQueueCounter("submitted")->Increment();
  }
  return job;
}

void JobQueue::RunnerLoop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    if (job->token().cancel_requested()) {
      // Cancelled while queued: complete as skipped without running.
      // Lifecycle metrics land before the state publishes, so a released
      // Wait() always observes them.
      job->body_ = nullptr;
      obs::TraceInstant("jobqueue/skipped");
      if (obs::MetricsRegistry::Global().enabled()) {
        JobQueueCounter("skipped")->Increment();
      }
      job->SetState(JobState::kSkipped);
      continue;
    }
    job->SetState(JobState::kRunning);
    obs::TraceInstant("jobqueue/running");
    job->body_(job->token());
    // Release the closure before signaling completion: a finished job
    // handle must not pin the body's captures (fitted models, sinks) for
    // however long the caller keeps it around.
    job->body_ = nullptr;
    obs::TraceInstant("jobqueue/done");
    if (obs::MetricsRegistry::Global().enabled()) {
      JobQueueCounter("done")->Increment();
    }
    job->SetState(JobState::kDone);
  }
}

void SetGlobalNumThreads(size_t num_threads) {
  std::shared_ptr<ThreadPool> doomed;
  {
    std::lock_guard<std::mutex> lock(g_pool_mu);
    g_requested_threads = num_threads;
    if (g_pool != nullptr &&
        g_pool->num_threads() != ResolveNumThreads(num_threads)) {
      doomed = std::move(g_pool);
    }
  }
  // The old pool is destroyed outside the lock, and only once the last
  // in-flight ParallelFor drops its shared reference — a concurrent loop
  // that grabbed the pool before the resize finishes safely on it.
}

size_t GlobalNumThreads() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  return ResolveNumThreads(g_requested_threads);
}

std::shared_ptr<ThreadPool> GlobalThreadPool() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (g_pool == nullptr) {
    g_pool = std::make_shared<ThreadPool>(ResolveNumThreads(g_requested_threads));
  }
  return g_pool;
}

}  // namespace runtime
}  // namespace kamino
