#ifndef KAMINO_NN_DISCRIMINATIVE_H_
#define KAMINO_NN_DISCRIMINATIVE_H_

#include <memory>
#include <utility>
#include <vector>

#include "kamino/data/table.h"
#include "kamino/nn/encoders.h"
#include "kamino/nn/module.h"

namespace kamino {

/// The AimNet-style sub-model M_{X,y} (section 2.3 / 4.1): predicts the
/// target attribute(s) from the context attributes X = S_{:j}.
///
/// Architecture per example:
///   e_i     = encode(context value i)                       (1 x d each)
///   E       = stack(e_1..e_m)                               (m x d)
///   alpha   = softmax(q E^T)                                (attention, 1 x m)
///   ctx_vec = alpha E                                       (1 x d)
///   h       = relu(ctx_vec W1 + b1)                         (1 x d)
///   out     = h W2 + b2     (logits, or 1 x 2 (mu, s))
///
/// Targets come in two flavors:
///  - one numeric attribute: a Gaussian regression head (mu, sigma) trained
///    with negative log-likelihood on standardized values;
///  - one or more categorical attributes: a softmax-cross-entropy head over
///    the *joint* domain (the product of the member domains). A multi-
///    attribute target is the hyper-attribute grouping of section 4.3.
class DiscriminativeModel {
 public:
  /// `store` supplies (and shares) the per-attribute encoders; it must
  /// outlive the model. `context` must be non-empty. `targets` is a single
  /// attribute, or several *categorical* attributes to predict jointly.
  DiscriminativeModel(const Schema& schema, std::vector<size_t> context,
                      std::vector<size_t> targets, EncoderStore* store,
                      Rng* rng);

  /// Validating factory for deserialization paths: returns InvalidArgument
  /// (instead of the constructor's KAMINO_CHECK abort) for an empty
  /// context, empty targets, out-of-range indices, or a multi-attribute
  /// target containing a numeric attribute.
  static Result<std::unique_ptr<DiscriminativeModel>> Create(
      const Schema& schema, std::vector<size_t> context,
      std::vector<size_t> targets, EncoderStore* store, Rng* rng);

  /// Builds the per-example loss graph. The returned Var is the scalar
  /// loss; `ctx` records the parameter bindings for gradient extraction.
  Var Loss(const Row& row, ForwardContext* ctx) const;

  /// Conditional distribution over the (joint) categorical target domain
  /// given the row's context attributes. Requires a categorical target.
  std::vector<double> PredictCategorical(const Row& row) const;

  /// Gaussian (mean, stddev) for a numeric target in the original value
  /// space. Requires a numeric target.
  std::pair<double, double> PredictGaussian(const Row& row) const;

  /// Every trainable parameter: shared context encoders plus the
  /// model-private attention query and head weights.
  std::vector<Parameter*> Parameters();

  /// Index of `row`'s target values in the joint categorical domain.
  size_t JointIndex(const Row& row) const;

  /// Inverse of JointIndex: the per-target category values for a joint
  /// domain index.
  std::vector<int32_t> DecodeJointIndex(size_t index) const;

  const std::vector<size_t>& context() const { return context_; }
  const std::vector<size_t>& targets() const { return targets_; }
  bool target_is_categorical() const { return target_is_categorical_; }
  size_t joint_domain_size() const { return out_dim_categorical_; }

  /// Artifact serde for the model-private head only (the context encoders
  /// are serialized with their store): query, w1, b1, w2, b2 in that
  /// order. `ImportHeadTensors` consumes from `values` at `*pos` and fails
  /// with InvalidArgument on shape mismatch, leaving the head unmodified.
  void ExportHeadTensors(std::vector<Tensor>* out) const;
  Status ImportHeadTensors(const std::vector<Tensor>& values, size_t* pos);

 private:
  Var Output(const Row& row, ForwardContext* ctx) const;

  const Schema* schema_;
  std::vector<size_t> context_;
  std::vector<size_t> targets_;
  bool target_is_categorical_;
  size_t out_dim_categorical_ = 0;
  std::vector<size_t> radix_;  // per-target domain sizes, for joint coding
  EncoderStore* store_;

  std::unique_ptr<Parameter> query_;   // 1 x d attention query
  std::unique_ptr<Parameter> w1_;      // d x d
  std::unique_ptr<Parameter> b1_;      // 1 x d
  std::unique_ptr<Parameter> w2_;      // d x out_dim
  std::unique_ptr<Parameter> b2_;      // 1 x out_dim
};

}  // namespace kamino

#endif  // KAMINO_NN_DISCRIMINATIVE_H_
