#ifndef KAMINO_NN_DPSGD_H_
#define KAMINO_NN_DPSGD_H_

#include <functional>
#include <vector>

#include "kamino/common/rng.h"
#include "kamino/data/table.h"
#include "kamino/nn/discriminative.h"
#include "kamino/nn/module.h"

namespace kamino {

/// Hyper-parameters of one DP-SGD training run (Algorithm 2's Psi subset).
struct DpSgdOptions {
  /// L2 clipping bound C for per-example gradients.
  double clip_norm = 1.0;
  /// Gaussian noise multiplier sigma_d; the per-coordinate noise stddev is
  /// sigma_d * C. Set to 0 for non-private SGD (the epsilon = inf runs).
  double noise_multiplier = 1.1;
  /// Expected batch size b; examples are included i.i.d. w.p. b/n
  /// (Poisson subsampling, matching the RDP accounting).
  size_t batch_size = 16;
  /// Number of iterations T.
  size_t iterations = 100;
  /// Learning rate eta.
  double learning_rate = 0.05;
};

/// Differentially private SGD (Abadi et al. 2016), as used by Algorithm 2:
/// at each iteration draws a Poisson subsample of `data`, computes the
/// per-example gradient of `model`'s loss, clips each example's gradient
/// to L2 norm `clip_norm`, sums, perturbs with Gaussian noise of stddev
/// `noise_multiplier * clip_norm`, averages by the *expected* batch size
/// and takes an SGD step.
///
/// Per-example gradients are computed in parallel on the global runtime
/// pool (see kamino/runtime/): the Poisson inclusion draws and the noise
/// stay on the sequential `rng`, and the clipped gradients reduce in
/// example order, so the trained model is bit-identical at any thread
/// count — and to the original serial implementation.
///
/// Returns the average (unnoised) training loss of the final iteration,
/// for diagnostics only — callers must not release it.
double TrainDpSgd(DiscriminativeModel* model, const Table& data,
                  const DpSgdOptions& options, Rng* rng);

/// Clips `grads` (one tensor per parameter, jointly treated as a single
/// vector) to L2 norm at most `clip_norm`, in place. Exposed for tests.
void ClipGradients(std::vector<Tensor>* grads, double clip_norm);

}  // namespace kamino

#endif  // KAMINO_NN_DPSGD_H_
