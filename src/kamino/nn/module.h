#ifndef KAMINO_NN_MODULE_H_
#define KAMINO_NN_MODULE_H_

#include <utility>
#include <vector>

#include "kamino/autograd/ops.h"
#include "kamino/autograd/tensor.h"

namespace kamino {

/// A trainable tensor. Layers own Parameters; optimizers mutate `value`.
struct Parameter {
  Tensor value;

  explicit Parameter(Tensor v) : value(std::move(v)) {}
};

/// Per-forward bookkeeping that ties graph leaves back to the Parameters
/// they were created from.
///
/// Graphs are rebuilt per example (define-by-run); `Bind` snapshots a
/// parameter into a leaf `Var`, and after `Backward` the caller collects
/// d(loss)/d(parameter) for exactly the parameters this forward touched.
class ForwardContext {
 public:
  /// Creates (or reuses, if this parameter was already bound in this
  /// forward) a differentiable leaf holding the parameter's current value.
  Var Bind(Parameter* param) {
    for (auto& [p, var] : bindings_) {
      if (p == param) return var;
    }
    Var var = MakeLeaf(param->value);
    bindings_.emplace_back(param, var);
    return var;
  }

  /// Adds each bound leaf's gradient into the matching slot of `sink`,
  /// where `sink[i]` accumulates the gradient of `params[i]`. Parameters
  /// not bound in this forward contribute nothing.
  void AccumulateInto(const std::vector<Parameter*>& params,
                      std::vector<Tensor>* sink) const {
    for (const auto& [param, var] : bindings_) {
      for (size_t i = 0; i < params.size(); ++i) {
        if (params[i] == param) {
          (*sink)[i].Add(var->grad);
          break;
        }
      }
    }
  }

  const std::vector<std::pair<Parameter*, Var>>& bindings() const {
    return bindings_;
  }

 private:
  std::vector<std::pair<Parameter*, Var>> bindings_;
};

/// Allocates zero tensors shaped like each parameter, for gradient
/// accumulation.
inline std::vector<Tensor> ZeroGradients(
    const std::vector<Parameter*>& params) {
  std::vector<Tensor> out;
  out.reserve(params.size());
  for (const Parameter* p : params) {
    out.emplace_back(p->value.rows(), p->value.cols());
  }
  return out;
}

}  // namespace kamino

#endif  // KAMINO_NN_MODULE_H_
