#include "kamino/nn/discriminative.h"

#include <cmath>

#include "kamino/common/logging.h"

namespace kamino {

DiscriminativeModel::DiscriminativeModel(const Schema& schema,
                                         std::vector<size_t> context,
                                         std::vector<size_t> targets,
                                         EncoderStore* store, Rng* rng)
    : schema_(&schema),
      context_(std::move(context)),
      targets_(std::move(targets)),
      store_(store) {
  KAMINO_CHECK(!context_.empty()) << "discriminative model needs context";
  KAMINO_CHECK(!targets_.empty()) << "discriminative model needs a target";
  if (targets_.size() == 1 && schema.attribute(targets_[0]).is_numeric()) {
    target_is_categorical_ = false;
  } else {
    target_is_categorical_ = true;
    out_dim_categorical_ = 1;
    for (size_t t : targets_) {
      KAMINO_CHECK(schema.attribute(t).is_categorical())
          << "joint targets must all be categorical";
      const size_t size = schema.attribute(t).categories().size();
      radix_.push_back(size);
      out_dim_categorical_ *= size;
    }
  }
  const size_t d = store->embed_dim();
  const size_t out_dim = target_is_categorical_ ? out_dim_categorical_ : 2;
  const double init_sd = 1.0 / std::sqrt(static_cast<double>(d));
  query_ = std::make_unique<Parameter>(Tensor::Randn(1, d, init_sd, rng));
  w1_ = std::make_unique<Parameter>(Tensor::Randn(d, d, init_sd, rng));
  b1_ = std::make_unique<Parameter>(Tensor(1, d));
  w2_ = std::make_unique<Parameter>(Tensor::Randn(d, out_dim, init_sd, rng));
  b2_ = std::make_unique<Parameter>(Tensor(1, out_dim));
}

Result<std::unique_ptr<DiscriminativeModel>> DiscriminativeModel::Create(
    const Schema& schema, std::vector<size_t> context,
    std::vector<size_t> targets, EncoderStore* store, Rng* rng) {
  if (context.empty()) {
    return Status::InvalidArgument("discriminative model needs context");
  }
  if (targets.empty()) {
    return Status::InvalidArgument("discriminative model needs a target");
  }
  for (size_t a : context) {
    if (a >= schema.size()) {
      return Status::InvalidArgument("context attribute index " +
                                     std::to_string(a) +
                                     " out of range for schema arity " +
                                     std::to_string(schema.size()));
    }
  }
  for (size_t t : targets) {
    if (t >= schema.size()) {
      return Status::InvalidArgument("target attribute index " +
                                     std::to_string(t) +
                                     " out of range for schema arity " +
                                     std::to_string(schema.size()));
    }
  }
  const bool numeric_single =
      targets.size() == 1 && schema.attribute(targets[0]).is_numeric();
  if (!numeric_single) {
    for (size_t t : targets) {
      if (!schema.attribute(t).is_categorical()) {
        return Status::InvalidArgument(
            "joint targets must all be categorical");
      }
    }
  }
  return std::make_unique<DiscriminativeModel>(
      schema, std::move(context), std::move(targets), store, rng);
}

void DiscriminativeModel::ExportHeadTensors(std::vector<Tensor>* out) const {
  out->push_back(query_->value);
  out->push_back(w1_->value);
  out->push_back(b1_->value);
  out->push_back(w2_->value);
  out->push_back(b2_->value);
}

Status DiscriminativeModel::ImportHeadTensors(const std::vector<Tensor>& values,
                                              size_t* pos) {
  Parameter* const head[] = {query_.get(), w1_.get(), b1_.get(), w2_.get(),
                             b2_.get()};
  constexpr size_t kHeadCount = sizeof(head) / sizeof(head[0]);
  if (*pos > values.size() || values.size() - *pos < kHeadCount) {
    return Status::InvalidArgument("head tensor list exhausted");
  }
  for (size_t i = 0; i < kHeadCount; ++i) {
    const Tensor& v = values[*pos + i];
    const Tensor& have = head[i]->value;
    if (v.rows() != have.rows() || v.cols() != have.cols()) {
      return Status::InvalidArgument(
          "head tensor " + std::to_string(i) + " shape " +
          std::to_string(v.rows()) + "x" + std::to_string(v.cols()) +
          " != expected " + std::to_string(have.rows()) + "x" +
          std::to_string(have.cols()));
    }
  }
  for (size_t i = 0; i < kHeadCount; ++i) head[i]->value = values[*pos + i];
  *pos += kHeadCount;
  return Status::OK();
}

size_t DiscriminativeModel::JointIndex(const Row& row) const {
  KAMINO_CHECK(target_is_categorical_) << "numeric target has no joint index";
  size_t index = 0;
  for (size_t i = 0; i < targets_.size(); ++i) {
    index = index * radix_[i] + static_cast<size_t>(row[targets_[i]].category());
  }
  return index;
}

std::vector<int32_t> DiscriminativeModel::DecodeJointIndex(
    size_t index) const {
  std::vector<int32_t> values(targets_.size());
  for (size_t i = targets_.size(); i-- > 0;) {
    values[i] = static_cast<int32_t>(index % radix_[i]);
    index /= radix_[i];
  }
  return values;
}

Var DiscriminativeModel::Output(const Row& row, ForwardContext* ctx) const {
  std::vector<Var> embeddings;
  embeddings.reserve(context_.size());
  for (size_t attr : context_) {
    embeddings.push_back(store_->encoder(attr)->Encode(row[attr], ctx));
  }
  Var keys = ConcatRows(embeddings);                      // m x d
  Var q = ctx->Bind(query_.get());                        // 1 x d
  Var scores = MatMul(q, Transpose(keys));                // 1 x m
  Var alpha = Softmax(scores);                            // 1 x m
  Var context_vec = MatMul(alpha, keys);                  // 1 x d
  Var w1 = ctx->Bind(w1_.get());
  Var b1 = ctx->Bind(b1_.get());
  Var h = Relu(Add(MatMul(context_vec, w1), b1));         // 1 x d
  Var w2 = ctx->Bind(w2_.get());
  Var b2 = ctx->Bind(b2_.get());
  return Add(MatMul(h, w2), b2);
}

Var DiscriminativeModel::Loss(const Row& row, ForwardContext* ctx) const {
  Var out = Output(row, ctx);
  if (target_is_categorical_) {
    return CrossEntropyWithLogits(out, JointIndex(row));
  }
  const AttributeEncoder* enc = store_->encoder(targets_[0]);
  return GaussianNll(out, enc->Standardize(row[targets_[0]].numeric()));
}

std::vector<double> DiscriminativeModel::PredictCategorical(
    const Row& row) const {
  KAMINO_CHECK(target_is_categorical_) << "target is numeric";
  ForwardContext ctx;
  Var out = Output(row, &ctx);
  // Softmax over logits (inference only, no gradient machinery needed).
  const Tensor& logits = out->value;
  std::vector<double> probs(logits.cols());
  double mx = logits[0];
  for (size_t i = 1; i < probs.size(); ++i) mx = std::max(mx, logits[i]);
  double sum = 0.0;
  for (size_t i = 0; i < probs.size(); ++i) {
    probs[i] = std::exp(logits[i] - mx);
    sum += probs[i];
  }
  for (double& p : probs) p /= sum;
  return probs;
}

std::pair<double, double> DiscriminativeModel::PredictGaussian(
    const Row& row) const {
  KAMINO_CHECK(!target_is_categorical_) << "target is categorical";
  ForwardContext ctx;
  Var out = Output(row, &ctx);
  const double mu = out->value[0];
  const double s = out->value[1];
  const double sigma = (s > 30.0 ? s : std::log1p(std::exp(s))) + 1e-3;
  const AttributeEncoder* enc = store_->encoder(targets_[0]);
  // Destandardize: shift/scale the mean, scale the stddev.
  const double mean = enc->Destandardize(mu);
  const double stddev =
      sigma * (enc->Destandardize(1.0) - enc->Destandardize(0.0));
  return {mean, std::abs(stddev)};
}

std::vector<Parameter*> DiscriminativeModel::Parameters() {
  std::vector<Parameter*> params;
  for (size_t attr : context_) {
    for (Parameter* p : store_->encoder(attr)->Parameters()) {
      params.push_back(p);
    }
  }
  params.push_back(query_.get());
  params.push_back(w1_.get());
  params.push_back(b1_.get());
  params.push_back(w2_.get());
  params.push_back(b2_.get());
  return params;
}

}  // namespace kamino
