#include "kamino/nn/dpsgd.h"

#include <cmath>

#include "kamino/autograd/ops.h"

namespace kamino {

void ClipGradients(std::vector<Tensor>* grads, double clip_norm) {
  double squared = 0.0;
  for (const Tensor& g : *grads) squared += g.SquaredL2();
  const double norm = std::sqrt(squared);
  if (norm <= clip_norm || norm == 0.0) return;
  const double scale = clip_norm / norm;
  for (Tensor& g : *grads) g.Scale(scale);
}

double TrainDpSgd(DiscriminativeModel* model, const Table& data,
                  const DpSgdOptions& options, Rng* rng) {
  std::vector<Parameter*> params = model->Parameters();
  const size_t n = data.num_rows();
  if (n == 0) return 0.0;
  const double sample_prob =
      std::min(1.0, static_cast<double>(options.batch_size) /
                        static_cast<double>(n));
  double last_loss = 0.0;

  for (size_t iter = 0; iter < options.iterations; ++iter) {
    std::vector<Tensor> grad_sum = ZeroGradients(params);
    double loss_sum = 0.0;
    size_t batch_count = 0;

    for (size_t i = 0; i < n; ++i) {
      if (!rng->Bernoulli(sample_prob)) continue;
      ++batch_count;
      ForwardContext ctx;
      Var loss = model->Loss(data.row(i), &ctx);
      Backward(loss);
      loss_sum += loss->value[0];

      std::vector<Tensor> example_grads = ZeroGradients(params);
      ctx.AccumulateInto(params, &example_grads);
      ClipGradients(&example_grads, options.clip_norm);
      for (size_t p = 0; p < params.size(); ++p) {
        grad_sum[p].Add(example_grads[p]);
      }
    }

    // Perturb the clipped gradient sum: sensitivity is exactly clip_norm.
    const double noise_sd = options.noise_multiplier * options.clip_norm;
    if (noise_sd > 0.0) {
      for (Tensor& g : grad_sum) {
        for (double& v : g.data()) v += rng->Gaussian(0.0, noise_sd);
      }
    }
    // Average by the expected batch size (not the realized one), as in
    // Abadi et al.; this keeps the sensitivity analysis exact.
    const double denom = static_cast<double>(options.batch_size);
    for (size_t p = 0; p < params.size(); ++p) {
      params[p]->value.Axpy(-options.learning_rate / denom, grad_sum[p]);
    }
    last_loss = batch_count > 0 ? loss_sum / batch_count : last_loss;
  }
  return last_loss;
}

}  // namespace kamino
