#include "kamino/nn/dpsgd.h"

#include <algorithm>
#include <cmath>

#include "kamino/autograd/ops.h"
#include "kamino/runtime/parallel_for.h"

namespace kamino {

void ClipGradients(std::vector<Tensor>* grads, double clip_norm) {
  double squared = 0.0;
  for (const Tensor& g : *grads) squared += g.SquaredL2();
  const double norm = std::sqrt(squared);
  if (norm <= clip_norm || norm == 0.0) return;
  const double scale = clip_norm / norm;
  for (Tensor& g : *grads) g.Scale(scale);
}

double TrainDpSgd(DiscriminativeModel* model, const Table& data,
                  const DpSgdOptions& options, Rng* rng) {
  std::vector<Parameter*> params = model->Parameters();
  const size_t n = data.num_rows();
  if (n == 0) return 0.0;
  const double sample_prob =
      std::min(1.0, static_cast<double>(options.batch_size) /
                        static_cast<double>(n));
  double last_loss = 0.0;

  for (size_t iter = 0; iter < options.iterations; ++iter) {
    // Poisson subsampling: the inclusion draws stay on the sequential run
    // RNG (same draw order as a serial loop), producing the batch up
    // front so the per-example work below can fan out.
    std::vector<size_t> batch;
    for (size_t i = 0; i < n; ++i) {
      if (rng->Bernoulli(sample_prob)) batch.push_back(i);
    }

    // Per-example forward/backward/clip is RNG-free and touches only the
    // example's private graph and gradient slot — parameters are read,
    // never written, until the update below — so examples parallelize
    // freely. Waves of kWaveExamples bound peak memory to a constant
    // number of per-example gradient sets (not one per batch member),
    // and the slot-ordered reduction inside each wave keeps the
    // floating-point summation in example order — the trained model is
    // bit-identical at any thread count, and to a serial loop.
    constexpr size_t kWaveExamples = 32;
    std::vector<Tensor> grad_sum = ZeroGradients(params);
    double loss_sum = 0.0;
    for (size_t wave = 0; wave < batch.size(); wave += kWaveExamples) {
      const size_t wave_end = std::min(batch.size(), wave + kWaveExamples);
      std::vector<std::vector<Tensor>> example_grads(wave_end - wave);
      std::vector<double> example_loss(wave_end - wave, 0.0);
      runtime::ParallelForEach(wave, wave_end, 1, [&](size_t k) {
        const size_t slot = k - wave;
        ForwardContext ctx;
        Var loss = model->Loss(data.row(batch[k]), &ctx);
        Backward(loss);
        example_loss[slot] = loss->value[0];
        example_grads[slot] = ZeroGradients(params);
        ctx.AccumulateInto(params, &example_grads[slot]);
        ClipGradients(&example_grads[slot], options.clip_norm);
      });
      for (size_t slot = 0; slot < example_grads.size(); ++slot) {
        loss_sum += example_loss[slot];
        for (size_t p = 0; p < params.size(); ++p) {
          grad_sum[p].Add(example_grads[slot][p]);
        }
      }
    }

    // Perturb the clipped gradient sum: sensitivity is exactly clip_norm.
    const double noise_sd = options.noise_multiplier * options.clip_norm;
    if (noise_sd > 0.0) {
      for (Tensor& g : grad_sum) {
        for (double& v : g.data()) v += rng->Gaussian(0.0, noise_sd);
      }
    }
    // Average by the expected batch size (not the realized one), as in
    // Abadi et al.; this keeps the sensitivity analysis exact.
    const double denom = static_cast<double>(options.batch_size);
    for (size_t p = 0; p < params.size(); ++p) {
      params[p]->value.Axpy(-options.learning_rate / denom, grad_sum[p]);
    }
    last_loss =
        !batch.empty() ? loss_sum / static_cast<double>(batch.size())
                       : last_loss;
  }
  return last_loss;
}

}  // namespace kamino
