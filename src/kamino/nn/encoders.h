#ifndef KAMINO_NN_ENCODERS_H_
#define KAMINO_NN_ENCODERS_H_

#include <map>
#include <memory>
#include <vector>

#include "kamino/data/schema.h"
#include "kamino/nn/module.h"

namespace kamino {

/// Encodes one attribute's value as a d-dimensional embedding (the tuple
/// embedding of section 2.3).
///
/// Categorical attributes use a learnable |domain| x d lookup table;
/// numeric attributes standardize with public domain statistics and apply
/// z = B * relu(A*x + c) + d (AimNet's non-linear transformation).
class AttributeEncoder {
 public:
  AttributeEncoder(const Attribute& attr, size_t embed_dim, Rng* rng);

  /// Embeds `v` as a 1 x d vector, binding parameters through `ctx`.
  Var Encode(const Value& v, ForwardContext* ctx) const;

  /// All trainable tensors of this encoder.
  std::vector<Parameter*> Parameters();

  /// Deep-copies the trained parameter values from `other` (the embedding
  /// reuse of Algorithm 2 lines 7/19).
  void CopyFrom(const AttributeEncoder& other);

  /// Artifact serde: appends the trained tensor values in `Parameters()`
  /// order, and restores them from a flat tensor list. `ImportTensors`
  /// consumes this encoder's tensors starting at `*pos` (advancing it) and
  /// fails with InvalidArgument on a count or shape mismatch, leaving the
  /// encoder unmodified on error.
  void ExportTensors(std::vector<Tensor>* out) const;
  Status ImportTensors(const std::vector<Tensor>& values, size_t* pos);

  size_t embed_dim() const { return embed_dim_; }
  bool is_categorical() const { return is_categorical_; }

  /// Standardizes a numeric value with the public domain statistics.
  double Standardize(double v) const {
    return (v - standardize_mean_) / standardize_std_;
  }

  /// Inverts `Standardize`.
  double Destandardize(double z) const {
    return z * standardize_std_ + standardize_mean_;
  }

 private:
  size_t embed_dim_;
  bool is_categorical_;
  // Categorical: one row per category.
  std::unique_ptr<Parameter> lookup_;
  // Numeric: z = b_(dxd) * relu(a_(1xd) * x + c_(1xd)) + d_(1xd).
  std::unique_ptr<Parameter> num_a_;
  std::unique_ptr<Parameter> num_c_;
  std::unique_ptr<Parameter> num_b_;
  std::unique_ptr<Parameter> num_d_;
  double standardize_mean_ = 0.0;
  double standardize_std_ = 1.0;
};

/// Shared pool of per-attribute encoders, keyed by attribute position in
/// the schema.
///
/// Algorithm 2 trains sub-models in sequence order and *reuses* the
/// embeddings learned so far when a new sub-model starts; sharing one
/// store across sub-models implements exactly that. The parallel-training
/// optimization of section 7.3.6 instead gives each sub-model a private
/// store.
class EncoderStore {
 public:
  EncoderStore(const Schema& schema, size_t embed_dim, Rng* rng);

  AttributeEncoder* encoder(size_t attr_index) {
    return encoders_[attr_index].get();
  }
  const AttributeEncoder* encoder(size_t attr_index) const {
    return encoders_[attr_index].get();
  }

  size_t embed_dim() const { return embed_dim_; }

  /// Artifact serde over every encoder in schema order (see
  /// AttributeEncoder::ExportTensors/ImportTensors).
  void ExportTensors(std::vector<Tensor>* out) const;
  Status ImportTensors(const std::vector<Tensor>& values, size_t* pos);

 private:
  size_t embed_dim_;
  std::vector<std::unique_ptr<AttributeEncoder>> encoders_;
};

}  // namespace kamino

#endif  // KAMINO_NN_ENCODERS_H_
