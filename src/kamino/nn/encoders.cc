#include "kamino/nn/encoders.h"

#include <cmath>

#include "kamino/common/logging.h"

namespace kamino {

AttributeEncoder::AttributeEncoder(const Attribute& attr, size_t embed_dim,
                                   Rng* rng)
    : embed_dim_(embed_dim), is_categorical_(attr.is_categorical()) {
  const double init_sd = 1.0 / std::sqrt(static_cast<double>(embed_dim));
  if (is_categorical_) {
    lookup_ = std::make_unique<Parameter>(
        Tensor::Randn(attr.categories().size(), embed_dim, init_sd, rng));
  } else {
    num_a_ = std::make_unique<Parameter>(Tensor::Randn(1, embed_dim, 1.0, rng));
    num_c_ = std::make_unique<Parameter>(
        Tensor::Randn(1, embed_dim, init_sd, rng));
    num_b_ = std::make_unique<Parameter>(
        Tensor::Randn(embed_dim, embed_dim, init_sd, rng));
    num_d_ = std::make_unique<Parameter>(
        Tensor::Randn(1, embed_dim, init_sd, rng));
    // Standardize with public domain statistics: the midpoint and the
    // uniform-on-[min,max] standard deviation. Using the true data's
    // moments here would leak, so Kamino never does.
    standardize_mean_ = 0.5 * (attr.min_value() + attr.max_value());
    standardize_std_ =
        (attr.max_value() - attr.min_value()) / std::sqrt(12.0);
    if (standardize_std_ <= 0.0) standardize_std_ = 1.0;
  }
}

Var AttributeEncoder::Encode(const Value& v, ForwardContext* ctx) const {
  if (is_categorical_) {
    KAMINO_CHECK(v.is_categorical()) << "categorical encoder got numeric";
    Var table = ctx->Bind(lookup_.get());
    return SelectRow(table, static_cast<size_t>(v.category()));
  }
  KAMINO_CHECK(v.is_numeric()) << "numeric encoder got categorical";
  const double x = Standardize(v.numeric());
  Var a = ctx->Bind(num_a_.get());
  Var c = ctx->Bind(num_c_.get());
  Var b = ctx->Bind(num_b_.get());
  Var d = ctx->Bind(num_d_.get());
  Var hidden = Relu(Add(Scale(a, x), c));          // 1 x d
  return Add(MatMul(hidden, b), d);                // 1 x d
}

std::vector<Parameter*> AttributeEncoder::Parameters() {
  if (is_categorical_) return {lookup_.get()};
  return {num_a_.get(), num_c_.get(), num_b_.get(), num_d_.get()};
}

void AttributeEncoder::CopyFrom(const AttributeEncoder& other) {
  KAMINO_CHECK(is_categorical_ == other.is_categorical_ &&
               embed_dim_ == other.embed_dim_)
      << "encoder shape mismatch in CopyFrom";
  if (is_categorical_) {
    lookup_->value = other.lookup_->value;
  } else {
    num_a_->value = other.num_a_->value;
    num_c_->value = other.num_c_->value;
    num_b_->value = other.num_b_->value;
    num_d_->value = other.num_d_->value;
  }
}

void AttributeEncoder::ExportTensors(std::vector<Tensor>* out) const {
  if (is_categorical_) {
    out->push_back(lookup_->value);
    return;
  }
  out->push_back(num_a_->value);
  out->push_back(num_c_->value);
  out->push_back(num_b_->value);
  out->push_back(num_d_->value);
}

Status AttributeEncoder::ImportTensors(const std::vector<Tensor>& values,
                                       size_t* pos) {
  std::vector<Parameter*> params = Parameters();
  if (*pos > values.size() || values.size() - *pos < params.size()) {
    return Status::InvalidArgument("encoder tensor list exhausted");
  }
  // Validate every shape before assigning anything, so a mismatch leaves
  // the encoder untouched.
  for (size_t i = 0; i < params.size(); ++i) {
    const Tensor& v = values[*pos + i];
    const Tensor& have = params[i]->value;
    if (v.rows() != have.rows() || v.cols() != have.cols()) {
      return Status::InvalidArgument(
          "encoder tensor " + std::to_string(i) + " shape " +
          std::to_string(v.rows()) + "x" + std::to_string(v.cols()) +
          " != expected " + std::to_string(have.rows()) + "x" +
          std::to_string(have.cols()));
    }
  }
  for (size_t i = 0; i < params.size(); ++i) {
    params[i]->value = values[*pos + i];
  }
  *pos += params.size();
  return Status::OK();
}

EncoderStore::EncoderStore(const Schema& schema, size_t embed_dim, Rng* rng)
    : embed_dim_(embed_dim) {
  encoders_.reserve(schema.size());
  for (size_t i = 0; i < schema.size(); ++i) {
    encoders_.push_back(std::make_unique<AttributeEncoder>(
        schema.attribute(i), embed_dim, rng));
  }
}

void EncoderStore::ExportTensors(std::vector<Tensor>* out) const {
  for (const auto& encoder : encoders_) encoder->ExportTensors(out);
}

Status EncoderStore::ImportTensors(const std::vector<Tensor>& values,
                                   size_t* pos) {
  for (auto& encoder : encoders_) {
    KAMINO_RETURN_IF_ERROR(encoder->ImportTensors(values, pos));
  }
  return Status::OK();
}

}  // namespace kamino
