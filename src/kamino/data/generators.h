#ifndef KAMINO_DATA_GENERATORS_H_
#define KAMINO_DATA_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "kamino/common/rng.h"
#include "kamino/data/table.h"

namespace kamino {

/// A benchmark workload: a generated "true" database instance plus the
/// denial constraints that govern it, expressed in the textual DC syntax
/// accepted by `ParseDenialConstraint` (see kamino/dc/constraint.h).
///
/// The real evaluation datasets of the paper (UCI Adult, BR2000, Tax,
/// TPC-H) are not redistributable here, so each generator synthesizes a
/// seeded stand-in with the same schema shape, mixed attribute types and -
/// crucially - the exact DCs of Table 1: hard DCs hold with zero violations
/// in the generated truth, and BR2000's soft DCs hold with a small nonzero
/// violation rate, mirroring the paper's setup.
struct BenchmarkDataset {
  std::string name;
  Table table;
  std::vector<std::string> dc_specs;
  /// hardness[i] is true when dc_specs[i] is a hard constraint (weight = inf).
  std::vector<bool> hardness;
};

/// Adult-like census data: 15 attributes, 2 hard DCs
///   phi_a1: FD edu -> edu_num
///   phi_a2: no pair with higher cap_gain but lower cap_loss
BenchmarkDataset MakeAdultLike(size_t n, uint64_t seed);

/// BR2000-like survey data: 14 small-domain attributes (7 of them binary,
/// exercising the hyper-attribute grouping optimization), 3 soft DCs with
/// small truth violation rates.
BenchmarkDataset MakeBr2000Like(size_t n, uint64_t seed);

/// Tax-like records: 12 attributes including two large-domain columns
/// (zip, city - exercising the Gaussian-mechanism fallback), 6 hard DCs
/// (FDs and a per-state salary/rate order dependency).
BenchmarkDataset MakeTaxLike(size_t n, uint64_t seed);

/// TPC-H-like denormalized Orders x Customer x Nation rows: 9 attributes,
/// 4 hard FDs induced by the key/foreign-key constraints.
BenchmarkDataset MakeTpchLike(size_t n, uint64_t seed);

/// All four workloads at the given scale, in Table 1 order.
std::vector<BenchmarkDataset> MakeAllBenchmarks(size_t n, uint64_t seed);

}  // namespace kamino

#endif  // KAMINO_DATA_GENERATORS_H_
