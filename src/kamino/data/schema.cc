#include "kamino/data/schema.h"

#include <cmath>
#include <utility>

namespace kamino {

Attribute Attribute::MakeCategorical(std::string name,
                                     std::vector<std::string> categories) {
  Attribute a;
  a.name_ = std::move(name);
  a.type_ = AttributeType::kCategorical;
  a.categories_ = std::move(categories);
  for (size_t i = 0; i < a.categories_.size(); ++i) {
    a.category_index_[a.categories_[i]] = static_cast<int32_t>(i);
  }
  return a;
}

Attribute Attribute::MakeNumeric(std::string name, double min_value,
                                 double max_value,
                                 int64_t nominal_cardinality) {
  Attribute a;
  a.name_ = std::move(name);
  a.type_ = AttributeType::kNumeric;
  a.min_value_ = min_value;
  a.max_value_ = max_value;
  a.nominal_cardinality_ = nominal_cardinality;
  return a;
}

int64_t Attribute::DomainSize() const {
  if (is_categorical()) return static_cast<int64_t>(categories_.size());
  return nominal_cardinality_;
}

Result<int32_t> Attribute::CategoryIndex(const std::string& label) const {
  auto it = category_index_.find(label);
  if (it == category_index_.end()) {
    return Status::NotFound("category '" + label + "' not in domain of " +
                            name_);
  }
  return it->second;
}

Result<std::string> Attribute::CategoryLabel(int32_t index) const {
  if (index < 0 || static_cast<size_t>(index) >= categories_.size()) {
    return Status::OutOfRange("category index out of range for " + name_);
  }
  return categories_[static_cast<size_t>(index)];
}

bool Attribute::Contains(const Value& v) const {
  if (is_categorical()) {
    return v.is_categorical() && v.category() >= 0 &&
           static_cast<size_t>(v.category()) < categories_.size();
  }
  return v.is_numeric() && v.numeric() >= min_value_ &&
         v.numeric() <= max_value_;
}

Schema::Schema(std::vector<Attribute> attributes)
    : attributes_(std::move(attributes)) {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    index_[attributes_[i].name()] = i;
  }
}

Result<size_t> Schema::IndexOf(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("attribute '" + name + "' not in schema");
  }
  return it->second;
}

double Schema::Log2DomainSize() const {
  double bits = 0.0;
  for (const Attribute& a : attributes_) {
    int64_t d = a.DomainSize();
    if (d > 1) bits += std::log2(static_cast<double>(d));
  }
  return bits;
}

}  // namespace kamino
