#include "kamino/data/schema.h"

#include <cmath>
#include <set>
#include <utility>

#include "kamino/io/bytes.h"

namespace kamino {

Attribute Attribute::MakeCategorical(std::string name,
                                     std::vector<std::string> categories) {
  Attribute a;
  a.name_ = std::move(name);
  a.type_ = AttributeType::kCategorical;
  a.categories_ = std::move(categories);
  for (size_t i = 0; i < a.categories_.size(); ++i) {
    a.category_index_[a.categories_[i]] = static_cast<int32_t>(i);
  }
  return a;
}

Attribute Attribute::MakeNumeric(std::string name, double min_value,
                                 double max_value,
                                 int64_t nominal_cardinality) {
  Attribute a;
  a.name_ = std::move(name);
  a.type_ = AttributeType::kNumeric;
  a.min_value_ = min_value;
  a.max_value_ = max_value;
  a.nominal_cardinality_ = nominal_cardinality;
  return a;
}

int64_t Attribute::DomainSize() const {
  if (is_categorical()) return static_cast<int64_t>(categories_.size());
  return nominal_cardinality_;
}

Result<int32_t> Attribute::CategoryIndex(const std::string& label) const {
  auto it = category_index_.find(label);
  if (it == category_index_.end()) {
    return Status::NotFound("category '" + label + "' not in domain of " +
                            name_);
  }
  return it->second;
}

Result<std::string> Attribute::CategoryLabel(int32_t index) const {
  if (index < 0 || static_cast<size_t>(index) >= categories_.size()) {
    return Status::OutOfRange("category index out of range for " + name_);
  }
  return categories_[static_cast<size_t>(index)];
}

bool Attribute::Contains(const Value& v) const {
  if (is_categorical()) {
    return v.is_categorical() && v.category() >= 0 &&
           static_cast<size_t>(v.category()) < categories_.size();
  }
  return v.is_numeric() && v.numeric() >= min_value_ &&
         v.numeric() <= max_value_;
}

AttributeState Attribute::ToState() const {
  AttributeState state;
  state.name = name_;
  state.type = is_categorical() ? 0 : 1;
  state.categories = categories_;
  state.min_value = min_value_;
  state.max_value = max_value_;
  state.nominal_cardinality = nominal_cardinality_;
  return state;
}

Result<Attribute> Attribute::FromState(const AttributeState& state) {
  if (state.type > 1) {
    return Status::InvalidArgument("attribute '" + state.name +
                                   "': unknown type byte " +
                                   std::to_string(state.type));
  }
  if (state.type == 0) {
    std::set<std::string> seen;
    for (const std::string& label : state.categories) {
      if (!seen.insert(label).second) {
        return Status::InvalidArgument("attribute '" + state.name +
                                       "': duplicate category '" + label +
                                       "'");
      }
    }
    return MakeCategorical(state.name, state.categories);
  }
  if (std::isnan(state.min_value) || std::isnan(state.max_value) ||
      state.min_value > state.max_value) {
    return Status::InvalidArgument("attribute '" + state.name +
                                   "': invalid numeric domain");
  }
  if (state.nominal_cardinality < 0) {
    return Status::InvalidArgument("attribute '" + state.name +
                                   "': negative nominal cardinality");
  }
  return MakeNumeric(state.name, state.min_value, state.max_value,
                     state.nominal_cardinality);
}

Schema::Schema(std::vector<Attribute> attributes)
    : attributes_(std::move(attributes)) {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    index_[attributes_[i].name()] = i;
  }
}

Result<size_t> Schema::IndexOf(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("attribute '" + name + "' not in schema");
  }
  return it->second;
}

double Schema::Log2DomainSize() const {
  double bits = 0.0;
  for (const Attribute& a : attributes_) {
    int64_t d = a.DomainSize();
    if (d > 1) bits += std::log2(static_cast<double>(d));
  }
  return bits;
}

SchemaState Schema::ToState() const {
  SchemaState state;
  state.attributes.reserve(attributes_.size());
  for (const Attribute& a : attributes_) state.attributes.push_back(a.ToState());
  return state;
}

Result<Schema> Schema::FromState(const SchemaState& state) {
  std::vector<Attribute> attributes;
  attributes.reserve(state.attributes.size());
  std::set<std::string> names;
  for (const AttributeState& as : state.attributes) {
    if (!names.insert(as.name).second) {
      return Status::InvalidArgument("duplicate attribute name '" + as.name +
                                     "' in schema state");
    }
    KAMINO_ASSIGN_OR_RETURN(Attribute a, Attribute::FromState(as));
    attributes.push_back(std::move(a));
  }
  return Schema(std::move(attributes));
}

void Schema::SerializeTo(std::vector<uint8_t>* out) const {
  io::AppendU32(out, static_cast<uint32_t>(attributes_.size()));
  for (const Attribute& a : attributes_) {
    const AttributeState state = a.ToState();
    io::AppendString(out, state.name);
    io::AppendU8(out, state.type);
    if (state.type == 0) {
      io::AppendU32(out, static_cast<uint32_t>(state.categories.size()));
      for (const std::string& label : state.categories) {
        io::AppendString(out, label);
      }
    } else {
      io::AppendDouble(out, state.min_value);
      io::AppendDouble(out, state.max_value);
      io::AppendU64(out, static_cast<uint64_t>(state.nominal_cardinality));
    }
  }
}

Result<Schema> Schema::DeserializeFrom(io::ByteReader* in) {
  Status truncated = Status::InvalidArgument("schema payload truncated");
  uint32_t count = 0;
  if (!in->ReadU32(&count)) return truncated;
  SchemaState state;
  // Every attribute costs at least its type byte + name length prefix.
  if (count > in->remaining()) return truncated;
  state.attributes.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    AttributeState as;
    if (!in->ReadString(&as.name) || !in->ReadU8(&as.type)) return truncated;
    if (as.type == 0) {
      uint32_t num_categories = 0;
      if (!in->ReadU32(&num_categories)) return truncated;
      if (num_categories > in->remaining()) return truncated;
      as.categories.resize(num_categories);
      for (std::string& label : as.categories) {
        if (!in->ReadString(&label)) return truncated;
      }
    } else if (as.type == 1) {
      uint64_t nominal = 0;
      if (!in->ReadDouble(&as.min_value) || !in->ReadDouble(&as.max_value) ||
          !in->ReadU64(&nominal)) {
        return truncated;
      }
      as.nominal_cardinality = static_cast<int64_t>(nominal);
    } else {
      return Status::InvalidArgument("attribute '" + as.name +
                                     "': unknown type byte " +
                                     std::to_string(as.type));
    }
    state.attributes.push_back(std::move(as));
  }
  return FromState(state);
}

}  // namespace kamino
