#ifndef KAMINO_DATA_SCHEMA_H_
#define KAMINO_DATA_SCHEMA_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "kamino/common/status.h"
#include "kamino/data/value.h"

namespace kamino {

namespace io {
class ByteReader;
}  // namespace io

/// The kind of an attribute's domain.
enum class AttributeType { kCategorical, kNumeric };

/// Plain serializable mirror of an `Attribute`, used by the model artifact
/// codec. `type` is 0 for categorical, 1 for numeric; `FromState` validates
/// it together with the kind-specific fields.
struct AttributeState {
  std::string name;
  uint8_t type = 0;
  std::vector<std::string> categories;
  double min_value = 0.0;
  double max_value = 0.0;
  int64_t nominal_cardinality = 0;
};

/// Plain serializable mirror of a `Schema`.
struct SchemaState {
  std::vector<AttributeState> attributes;
};

/// One column of a relation schema, including its (public) domain.
///
/// Kamino treats schema and domain information as public inputs: they are
/// never derived from the private instance, so touching them costs no
/// privacy budget (see paper section 4.3).
class Attribute {
 public:
  /// Creates a categorical attribute whose domain is the given category
  /// list. Category indices follow list order.
  static Attribute MakeCategorical(std::string name,
                                   std::vector<std::string> categories);

  /// Creates a numeric attribute with an inclusive [min, max] domain and a
  /// nominal count of distinct values (used for sequencing heuristics).
  static Attribute MakeNumeric(std::string name, double min_value,
                               double max_value, int64_t nominal_cardinality);

  const std::string& name() const { return name_; }
  AttributeType type() const { return type_; }
  bool is_categorical() const { return type_ == AttributeType::kCategorical; }
  bool is_numeric() const { return type_ == AttributeType::kNumeric; }

  /// Number of categories (categorical) or the nominal distinct-value count
  /// (numeric). Used for the sequencing heuristic and budget planning.
  int64_t DomainSize() const;

  /// Categorical accessors.
  const std::vector<std::string>& categories() const { return categories_; }
  Result<int32_t> CategoryIndex(const std::string& label) const;
  Result<std::string> CategoryLabel(int32_t index) const;

  /// Numeric accessors.
  double min_value() const { return min_value_; }
  double max_value() const { return max_value_; }

  /// True if `v` is of the right kind and inside the domain.
  bool Contains(const Value& v) const;

  /// Artifact serde: a plain state mirror, and reconstruction from one.
  /// `FromState` validates the state (known type byte, no duplicate
  /// category labels, ordered finite numeric bounds) before building the
  /// attribute, so corrupt artifacts surface as a Status.
  AttributeState ToState() const;
  static Result<Attribute> FromState(const AttributeState& state);

 private:
  std::string name_;
  AttributeType type_ = AttributeType::kCategorical;
  std::vector<std::string> categories_;
  std::map<std::string, int32_t> category_index_;
  double min_value_ = 0.0;
  double max_value_ = 0.0;
  int64_t nominal_cardinality_ = 0;
};

/// An ordered list of attributes; the relation schema R = {A1..Ak}.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attributes);

  size_t size() const { return attributes_.size(); }
  const Attribute& attribute(size_t i) const { return attributes_[i]; }
  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Index of the attribute with the given name.
  Result<size_t> IndexOf(const std::string& name) const;

  /// log2 of the product of all attribute domain sizes (the "Domain size"
  /// column of Table 1, reported as ~2^x).
  double Log2DomainSize() const;

  /// Artifact serde. `FromState` rejects duplicate attribute names (the
  /// name index must round-trip losslessly) and any invalid attribute.
  SchemaState ToState() const;
  static Result<Schema> FromState(const SchemaState& state);

  /// Wire form used inside model artifacts: the state struct encoded with
  /// the io/bytes.h primitives. `DeserializeFrom` performs the same
  /// validation as `FromState`.
  void SerializeTo(std::vector<uint8_t>* out) const;
  static Result<Schema> DeserializeFrom(io::ByteReader* in);

 private:
  std::vector<Attribute> attributes_;
  std::map<std::string, size_t> index_;
};

}  // namespace kamino

#endif  // KAMINO_DATA_SCHEMA_H_
