#include "kamino/data/generators.h"

#include <algorithm>
#include <cmath>

#include "kamino/common/logging.h"

namespace kamino {
namespace {

std::vector<std::string> NumberedLabels(const std::string& prefix, int count) {
  std::vector<std::string> out;
  out.reserve(count);
  for (int i = 0; i < count; ++i) out.push_back(prefix + std::to_string(i));
  return out;
}

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

BenchmarkDataset MakeAdultLike(size_t n, uint64_t seed) {
  Rng rng(seed);
  const int kEduLevels = 16;
  std::vector<Attribute> attrs = {
      Attribute::MakeNumeric("age", 17, 90, 74),
      Attribute::MakeCategorical("workclass", NumberedLabels("wc", 8)),
      Attribute::MakeNumeric("fnlwgt", 10000, 1000000, 20000),
      Attribute::MakeCategorical("edu", NumberedLabels("edu", kEduLevels)),
      Attribute::MakeNumeric("edu_num", 1, 16, 16),
      Attribute::MakeCategorical("marital", NumberedLabels("m", 7)),
      Attribute::MakeCategorical("occupation", NumberedLabels("occ", 14)),
      Attribute::MakeCategorical("relationship", NumberedLabels("rel", 6)),
      Attribute::MakeCategorical("race", NumberedLabels("race", 5)),
      Attribute::MakeCategorical("sex", {"female", "male"}),
      Attribute::MakeNumeric("cap_gain", 0, 100000, 120),
      Attribute::MakeNumeric("cap_loss", 0, 4400, 100),
      Attribute::MakeNumeric("hours", 1, 99, 99),
      Attribute::MakeCategorical("country", NumberedLabels("c", 20)),
      Attribute::MakeCategorical("income", {"<=50k", ">50k"}),
  };
  Table table((Schema(attrs)));

  for (size_t i = 0; i < n; ++i) {
    // A latent socioeconomic factor drives the correlated attributes so
    // that downstream classifiers have real signal to find.
    double z = rng.Gaussian();
    double age = std::clamp(38.0 + 13.0 * rng.Gaussian() + 4.0 * z, 17.0, 90.0);
    int edu = std::clamp(
        static_cast<int>(8.0 + 3.5 * z + 1.5 * rng.Gaussian()), 0,
        kEduLevels - 1);
    // phi_a1: edu -> edu_num is a deterministic FD in the truth.
    double edu_num = edu + 1;
    int workclass =
        rng.Bernoulli(0.7) ? 0 : static_cast<int>(rng.UniformInt(1, 7));
    double fnlwgt = std::clamp(190000.0 + 100000.0 * rng.Gaussian(), 10000.0,
                               1000000.0);
    int marital = rng.Bernoulli(Sigmoid(0.05 * (age - 30)))
                      ? 0
                      : static_cast<int>(rng.UniformInt(1, 6));
    int occupation = std::clamp(
        static_cast<int>(edu * 14.0 / kEduLevels + 2.0 * rng.Gaussian()), 0,
        13);
    int relationship = marital == 0 ? static_cast<int>(rng.UniformInt(0, 1))
                                    : static_cast<int>(rng.UniformInt(2, 5));
    int race = rng.Bernoulli(0.82) ? 0 : static_cast<int>(rng.UniformInt(1, 4));
    int sex = rng.Bernoulli(0.67) ? 1 : 0;
    double hours = std::clamp(40.0 + 6.0 * z + 8.0 * rng.Gaussian(), 1.0, 99.0);
    double p_income = Sigmoid(-3.2 + 0.35 * edu_num + 0.03 * (age - 25) +
                              0.04 * (hours - 35) + 0.5 * sex);
    int income = rng.Bernoulli(p_income) ? 1 : 0;
    double cap_gain = 0.0;
    if (rng.Bernoulli(income == 1 ? 0.20 : 0.04)) {
      cap_gain = std::clamp(std::exp(8.0 + 1.2 * rng.Gaussian()), 0.0, 100000.0);
    }
    // phi_a2: cap_loss is a deterministic non-decreasing function of
    // cap_gain, so no tuple pair has higher gain but lower loss.
    double cap_loss = std::floor(cap_gain / 25.0);
    int country =
        rng.Bernoulli(0.9) ? 0 : static_cast<int>(rng.UniformInt(1, 19));

    Row row = {
        Value::Numeric(std::round(age)),
        Value::Categorical(workclass),
        Value::Numeric(std::round(fnlwgt)),
        Value::Categorical(edu),
        Value::Numeric(edu_num),
        Value::Categorical(marital),
        Value::Categorical(occupation),
        Value::Categorical(relationship),
        Value::Categorical(race),
        Value::Categorical(sex),
        Value::Numeric(std::round(cap_gain)),
        Value::Numeric(cap_loss),
        Value::Numeric(std::round(hours)),
        Value::Categorical(country),
        Value::Categorical(income),
    };
    table.AppendRowUnchecked(std::move(row));
  }

  BenchmarkDataset ds;
  ds.name = "adult";
  ds.table = std::move(table);
  ds.dc_specs = {
      "!(t1.edu == t2.edu & t1.edu_num != t2.edu_num)",
      "!(t1.cap_gain > t2.cap_gain & t1.cap_loss < t2.cap_loss)",
  };
  ds.hardness = {true, true};
  return ds;
}

BenchmarkDataset MakeBr2000Like(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Attribute> attrs;
  // Seven binary attributes first (exercises hyper-attribute grouping).
  for (int i = 1; i <= 2; ++i) {
    attrs.push_back(Attribute::MakeCategorical("a" + std::to_string(i),
                                               NumberedLabels("v", 2)));
  }
  attrs.push_back(Attribute::MakeNumeric("a3", 0, 9, 10));
  attrs.push_back(
      Attribute::MakeCategorical("a4", NumberedLabels("v", 2)));
  attrs.push_back(Attribute::MakeNumeric("a5", 0, 9, 10));
  for (int i = 6; i <= 9; ++i) {
    attrs.push_back(Attribute::MakeCategorical("a" + std::to_string(i),
                                               NumberedLabels("v", 2)));
  }
  attrs.push_back(
      Attribute::MakeCategorical("a10", NumberedLabels("v", 4)));
  attrs.push_back(Attribute::MakeNumeric("a11", 0, 9, 10));
  attrs.push_back(
      Attribute::MakeCategorical("a12", NumberedLabels("v", 6)));
  attrs.push_back(Attribute::MakeNumeric("a13", 0, 9, 10));
  attrs.push_back(
      Attribute::MakeCategorical("a14", NumberedLabels("v", 8)));
  Table table((Schema(attrs)));

  for (size_t i = 0; i < n; ++i) {
    // Shared latent makes the ordinal attributes a3/a5/a11/a13 co-monotone
    // up to a little noise, which yields the small (soft) violation rates
    // the BR2000 DCs have in the truth.
    double z = rng.Uniform(0.0, 1.0);
    auto ordinal = [&](double noise_sd) {
      double v = 9.0 * z + noise_sd * rng.Gaussian();
      return std::clamp(std::round(v), 0.0, 9.0);
    };
    double a3 = ordinal(0.5);
    double a5 = ordinal(0.5);
    double a11 = ordinal(0.5);
    double a13 = ordinal(0.5);
    // a12 mostly follows a13 (so phi_b2's "different a12 but tied a13/a5"
    // case is rare), with occasional off-by-one noise keeping it soft.
    int a12 = std::clamp(
        static_cast<int>(a13 * 6.0 / 10.0) + (rng.Bernoulli(0.08) ? 1 : 0), 0,
        5);
    Row row;
    row.push_back(Value::Categorical(rng.Bernoulli(Sigmoid(2 * z - 1)) ? 1 : 0));
    row.push_back(Value::Categorical(rng.Bernoulli(0.5) ? 1 : 0));
    row.push_back(Value::Numeric(a3));
    row.push_back(Value::Categorical(rng.Bernoulli(0.3) ? 1 : 0));
    row.push_back(Value::Numeric(a5));
    for (int b = 0; b < 4; ++b) {
      row.push_back(
          Value::Categorical(rng.Bernoulli(0.2 + 0.15 * b) ? 1 : 0));
    }
    row.push_back(
        Value::Categorical(static_cast<int32_t>(rng.UniformInt(0, 3))));
    row.push_back(Value::Numeric(a11));
    row.push_back(Value::Categorical(a12));
    row.push_back(Value::Numeric(a13));
    row.push_back(
        Value::Categorical(static_cast<int32_t>(rng.UniformInt(0, 7))));
    table.AppendRowUnchecked(std::move(row));
  }

  BenchmarkDataset ds;
  ds.name = "br2000";
  ds.table = std::move(table);
  ds.dc_specs = {
      "!(t1.a13 == t2.a13 & t1.a11 < t2.a11 & t1.a3 > t2.a3)",
      "!(t1.a12 != t2.a12 & t1.a13 <= t2.a13 & t1.a5 >= t2.a5)",
      "!(t1.a5 <= t2.a5 & t1.a3 > t2.a3 & t1.a12 != t2.a12 & t1.a11 > t2.a11)",
  };
  ds.hardness = {false, false, false};
  return ds;
}

BenchmarkDataset MakeTaxLike(size_t n, uint64_t seed) {
  Rng rng(seed);
  const int kZips = 300;     // scaled down from ~18k
  const int kCities = 120;   // scaled down from ~16k
  const int kStates = 50;
  const int kAreaCodes = 100;
  std::vector<Attribute> attrs = {
      Attribute::MakeCategorical("zip", NumberedLabels("z", kZips)),
      Attribute::MakeCategorical("city", NumberedLabels("ct", kCities)),
      Attribute::MakeCategorical("state", NumberedLabels("st", kStates)),
      Attribute::MakeCategorical("areacode", NumberedLabels("ac", kAreaCodes)),
      Attribute::MakeCategorical("has_child", {"no", "yes"}),
      Attribute::MakeNumeric("child_exemp", 0, 3000, 60),
      Attribute::MakeCategorical("marital", NumberedLabels("ms", 4)),
      Attribute::MakeNumeric("single_exemp", 0, 5000, 80),
      Attribute::MakeNumeric("salary", 10000, 200000, 1000),
      Attribute::MakeNumeric("rate", 0, 25, 26),
      Attribute::MakeCategorical("gender", {"f", "m"}),
      Attribute::MakeNumeric("age", 18, 95, 78),
  };
  Table table((Schema(attrs)));

  // Public-style deterministic lookups realize the FDs in the truth.
  auto zip_to_city = [&](int zip) { return zip % kCities; };
  auto zip_to_state = [&](int zip) { return zip % kStates; };
  auto child_exemp_fn = [&](int state, int has_child) {
    return has_child == 0 ? 0.0 : 500.0 + 50.0 * (state % 10);
  };
  auto single_exemp_fn = [&](int state, int marital) {
    return marital == 0 ? 1000.0 + 80.0 * (state % 12) : 0.0;
  };
  // Per-state non-decreasing salary -> rate schedule (phi_t6).
  auto rate_fn = [&](int state, double salary) {
    double base = state % 5;
    return std::min(25.0, base + std::floor(salary / 25000.0) * 2.0);
  };

  for (size_t i = 0; i < n; ++i) {
    int zip = static_cast<int>(rng.UniformInt(0, kZips - 1));
    int state = zip_to_state(zip);
    int city = zip_to_city(zip);
    // Two area-code banks per state; both determine the state, so the FD
    // areacode -> state holds exactly.
    int ac = state + kStates * static_cast<int>(rng.UniformInt(0, 1));
    if (ac >= kAreaCodes) ac = state;
    int has_child = rng.Bernoulli(0.4) ? 1 : 0;
    int marital = static_cast<int>(rng.UniformInt(0, 3));
    double salary =
        std::clamp(55000.0 + 35000.0 * rng.Gaussian(), 10000.0, 200000.0);
    Row row = {
        Value::Categorical(zip),
        Value::Categorical(city),
        Value::Categorical(state),
        Value::Categorical(ac),
        Value::Categorical(has_child),
        Value::Numeric(child_exemp_fn(state, has_child)),
        Value::Categorical(marital),
        Value::Numeric(single_exemp_fn(state, marital)),
        Value::Numeric(std::round(salary)),
        Value::Numeric(rate_fn(state, salary)),
        Value::Categorical(rng.Bernoulli(0.5) ? 1 : 0),
        Value::Numeric(
            std::clamp(std::round(45 + 15 * rng.Gaussian()), 18.0, 95.0)),
    };
    table.AppendRowUnchecked(std::move(row));
  }

  BenchmarkDataset ds;
  ds.name = "tax";
  ds.table = std::move(table);
  ds.dc_specs = {
      "!(t1.zip == t2.zip & t1.city != t2.city)",
      "!(t1.areacode == t2.areacode & t1.state != t2.state)",
      "!(t1.zip == t2.zip & t1.state != t2.state)",
      "!(t1.state == t2.state & t1.has_child == t2.has_child & "
      "t1.child_exemp != t2.child_exemp)",
      "!(t1.state == t2.state & t1.marital == t2.marital & "
      "t1.single_exemp != t2.single_exemp)",
      "!(t1.state == t2.state & t1.salary > t2.salary & t1.rate < t2.rate)",
  };
  ds.hardness = {true, true, true, true, true, true};
  return ds;
}

BenchmarkDataset MakeTpchLike(size_t n, uint64_t seed) {
  Rng rng(seed);
  const int kCustomers = 250;  // scaled down
  const int kNations = 25;
  const int kRegions = 5;
  std::vector<Attribute> attrs = {
      Attribute::MakeCategorical("c_custkey", NumberedLabels("cust", kCustomers)),
      Attribute::MakeCategorical("c_nationkey", NumberedLabels("n", kNations)),
      Attribute::MakeCategorical("c_mktsegment", NumberedLabels("seg", 5)),
      Attribute::MakeCategorical("n_name", NumberedLabels("nation", kNations)),
      Attribute::MakeCategorical("n_regionkey", NumberedLabels("r", kRegions)),
      Attribute::MakeCategorical("o_orderstatus", {"F", "O", "P"}),
      Attribute::MakeNumeric("o_totalprice", 900, 500000, 5000),
      Attribute::MakeCategorical("o_orderpriority", NumberedLabels("p", 5)),
      Attribute::MakeNumeric("o_year", 1992, 1998, 7),
  };
  Table table((Schema(attrs)));

  // Fixed customer dimension rows realize the FK-induced FDs.
  std::vector<int> cust_nation(kCustomers), cust_segment(kCustomers);
  for (int c = 0; c < kCustomers; ++c) {
    cust_nation[c] = static_cast<int>(rng.UniformInt(0, kNations - 1));
    cust_segment[c] = static_cast<int>(rng.UniformInt(0, 4));
  }
  auto nation_region = [&](int nation) { return nation % kRegions; };

  for (size_t i = 0; i < n; ++i) {
    int cust = static_cast<int>(rng.UniformInt(0, kCustomers - 1));
    int nation = cust_nation[cust];
    double price =
        std::clamp(std::exp(10.2 + 0.8 * rng.Gaussian()), 900.0, 500000.0);
    Row row = {
        Value::Categorical(cust),
        Value::Categorical(nation),
        Value::Categorical(cust_segment[cust]),
        Value::Categorical(nation),  // n_name is 1:1 with nationkey
        Value::Categorical(nation_region(nation)),
        Value::Categorical(static_cast<int32_t>(rng.UniformInt(0, 2))),
        Value::Numeric(std::round(price)),
        Value::Categorical(static_cast<int32_t>(rng.UniformInt(0, 4))),
        Value::Numeric(static_cast<double>(rng.UniformInt(1992, 1998))),
    };
    table.AppendRowUnchecked(std::move(row));
  }

  BenchmarkDataset ds;
  ds.name = "tpch";
  ds.table = std::move(table);
  ds.dc_specs = {
      "!(t1.c_custkey == t2.c_custkey & t1.c_nationkey != t2.c_nationkey)",
      "!(t1.c_custkey == t2.c_custkey & t1.c_mktsegment != t2.c_mktsegment)",
      "!(t1.c_custkey == t2.c_custkey & t1.n_name != t2.n_name)",
      "!(t1.n_name == t2.n_name & t1.n_regionkey != t2.n_regionkey)",
  };
  ds.hardness = {true, true, true, true};
  return ds;
}

std::vector<BenchmarkDataset> MakeAllBenchmarks(size_t n, uint64_t seed) {
  std::vector<BenchmarkDataset> out;
  out.push_back(MakeAdultLike(n, seed));
  out.push_back(MakeBr2000Like(n, seed + 1));
  out.push_back(MakeTaxLike(n, seed + 2));
  out.push_back(MakeTpchLike(n, seed + 3));
  return out;
}

}  // namespace kamino
