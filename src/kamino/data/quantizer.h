#ifndef KAMINO_DATA_QUANTIZER_H_
#define KAMINO_DATA_QUANTIZER_H_

#include <cstdint>

#include "kamino/common/rng.h"
#include "kamino/common/status.h"
#include "kamino/data/schema.h"

namespace kamino {

/// Equal-width binning of a numeric attribute's [min, max] domain into `q`
/// bins (the `q` quantization parameter of Algorithm 2).
///
/// The first attribute in the schema sequence is learned as a (noisy)
/// histogram; when it is numeric its domain is quantized with this helper,
/// and sampled values are drawn uniformly within the chosen bin
/// (Algorithm 3 line 2).
class Quantizer {
 public:
  /// Builds a quantizer over the attribute's declared domain. Requires
  /// `attr.is_numeric()` and q >= 1.
  static Result<Quantizer> Make(const Attribute& attr, int q);

  int num_bins() const { return q_; }
  double bin_width() const { return width_; }

  /// Bin index for a value; values outside the domain clamp to the edge bins.
  int BinOf(double value) const;

  /// Inclusive lower edge of the bin.
  double BinLow(int bin) const;

  /// Exclusive upper edge of the bin (inclusive for the last bin).
  double BinHigh(int bin) const;

  /// Midpoint representative of a bin.
  double Midpoint(int bin) const;

  /// Uniform random value within the bin.
  double SampleWithin(int bin, Rng* rng) const;

 private:
  Quantizer(double min, double max, int q);

  double min_;
  double max_;
  int q_;
  double width_;
};

}  // namespace kamino

#endif  // KAMINO_DATA_QUANTIZER_H_
