#ifndef KAMINO_DATA_CHUNK_CODEC_H_
#define KAMINO_DATA_CHUNK_CODEC_H_

#include <cstdint>
#include <vector>

#include "kamino/common/status.h"
#include "kamino/data/table.h"

namespace kamino {

/// Compressed wire encoding of a table chunk's columns, used by the
/// streaming delivery path when `KaminoOptions::compress_chunks` is set.
///
/// The payload is self-contained per chunk: a fixed header (row and column
/// counts) followed by one independently encoded block per column. Each
/// block picks the smallest of a few simple schemes:
///
///  - categorical columns: constant code, frame-of-reference bit-packed
///    codes (offset from the chunk-local minimum, just enough bits for the
///    range), or run-length runs — dictionary codes compress hard because
///    attribute domains are small;
///  - numeric columns: constant, frame-of-reference bit-packed integers
///    (only when every value is integral and the range fits), run-length
///    runs over raw bit patterns, or plain 8-byte bit patterns.
///
/// Round trips are bit-exact: numeric payloads travel as IEEE-754 bit
/// patterns (NaN payloads and -0.0 survive; the integer fast path excludes
/// them), so DecodeChunkColumns reproduces the input table cell for cell.
std::vector<uint8_t> EncodeChunkColumns(const Table& rows);

/// Decodes a buffer produced by `EncodeChunkColumns` into a table over
/// `schema`. Returns InvalidArgument for truncated or mismatched payloads
/// (wrong column count/kind for the schema).
Result<Table> DecodeChunkColumns(const Schema& schema,
                                 const std::vector<uint8_t>& bytes);

/// The fixed header every encoded chunk payload starts with.
struct ChunkHeader {
  uint64_t rows = 0;
  uint32_t columns = 0;
};

/// Validates and returns the header of an encoded chunk payload without
/// decoding the column blocks. The spill store uses this to cross-check a
/// block's framed row count against the payload it seals before the bytes
/// ever reach disk. Returns InvalidArgument on a truncated header or an
/// empty-chunk payload carrying trailing bytes.
Result<ChunkHeader> PeekChunkHeader(const std::vector<uint8_t>& bytes);

/// Bytes the same rows occupy as boxed `Value` cells (the row-oriented
/// in-memory form a raw delivery hands over) — the baseline compression
/// ratios are quoted against.
size_t RawChunkBytes(const Table& rows);

}  // namespace kamino

#endif  // KAMINO_DATA_CHUNK_CODEC_H_
