#ifndef KAMINO_DATA_COLUMN_H_
#define KAMINO_DATA_COLUMN_H_

#include <cassert>
#include <cstdint>
#include <vector>

#include "kamino/data/schema.h"
#include "kamino/data/value.h"

namespace kamino {

/// Typed storage for one attribute of a relation: a packed `double` array
/// for numeric attributes or a packed `int32_t` dictionary-code array for
/// categorical ones (the dictionary itself lives on the `Attribute`, so
/// codes are all a column needs). Fixed width, no per-cell validity or
/// kind tag — the column's type is the single source of truth for every
/// cell, which is what lets the DC engines and the chunk codec read whole
/// columns as contiguous arrays.
class Column {
 public:
  enum class Type : uint8_t { kNumeric, kCategorical };

  Column() = default;
  explicit Column(Type type) : type_(type) {}

  /// The column type matching an attribute's domain kind.
  static Type TypeFor(const Attribute& attr) {
    return attr.is_categorical() ? Type::kCategorical : Type::kNumeric;
  }

  Type type() const { return type_; }
  bool is_categorical() const { return type_ == Type::kCategorical; }
  bool is_numeric() const { return type_ == Type::kNumeric; }

  size_t size() const {
    return is_categorical() ? codes_.size() : nums_.size();
  }

  /// Grows or shrinks to `n` cells; new cells hold the type's zero value
  /// (code 0 / 0.0).
  void Resize(size_t n) {
    if (is_categorical()) {
      codes_.resize(n, 0);
    } else {
      nums_.resize(n, 0.0);
    }
  }

  void Reserve(size_t n) {
    if (is_categorical()) {
      codes_.reserve(n);
    } else {
      nums_.reserve(n);
    }
  }

  /// Appends `v`'s payload. Values are expected to match the column type;
  /// a mismatched kind stores its `OrderKey` fold (index as number /
  /// truncated number as code), mirroring how predicates already compare
  /// across kinds.
  void Append(const Value& v) {
    if (is_categorical()) {
      codes_.push_back(CodeOf(v));
    } else {
      nums_.push_back(v.OrderKey());
    }
  }

  void Set(size_t i, const Value& v) {
    if (is_categorical()) {
      codes_[i] = CodeOf(v);
    } else {
      nums_[i] = v.OrderKey();
    }
  }

  /// Reconstructs the cell as a tagged `Value` of the column's kind.
  Value Get(size_t i) const {
    return is_categorical() ? Value::Categorical(codes_[i])
                            : Value::Numeric(nums_[i]);
  }

  /// Typed spans (valid only for the matching column type).
  const std::vector<double>& nums() const {
    assert(is_numeric());
    return nums_;
  }
  const std::vector<int32_t>& codes() const {
    assert(is_categorical());
    return codes_;
  }

  /// Appends `count` cells of `src` starting at `offset` — a contiguous
  /// block copy, the primitive behind shard concatenation and chunk
  /// slicing. `src` must have the same type.
  void AppendSlice(const Column& src, size_t offset, size_t count);

 private:
  static int32_t CodeOf(const Value& v) {
    return v.is_categorical() ? v.category()
                              : static_cast<int32_t>(v.OrderKey());
  }

  Type type_ = Type::kNumeric;
  std::vector<double> nums_;    // type kNumeric
  std::vector<int32_t> codes_;  // type kCategorical
};

/// The column-major core of a relation instance: one typed `Column` per
/// schema attribute plus an explicit row count (so zero-column schemas
/// still track cardinality). `Table` (data/table.h) wraps this with the
/// row-oriented view API; hot paths read the typed columns directly.
class ColumnTable {
 public:
  ColumnTable() = default;
  explicit ColumnTable(const Schema& schema) {
    columns_.reserve(schema.size());
    for (size_t c = 0; c < schema.size(); ++c) {
      columns_.emplace_back(Column::TypeFor(schema.attribute(c)));
    }
  }

  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const { return num_rows_; }

  Column& column(size_t c) { return columns_[c]; }
  const Column& column(size_t c) const { return columns_[c]; }

  Value at(size_t row, size_t col) const { return columns_[col].Get(row); }
  void set(size_t row, size_t col, const Value& v) {
    columns_[col].Set(row, v);
  }

  /// Re-allocates to `n` rows of typed zero values (code 0 / 0.0),
  /// discarding prior content (same contract as the row-major
  /// `Table::ResizeRows` it backs).
  void ResizeRows(size_t n);

  void Reserve(size_t n) {
    for (Column& c : columns_) c.Reserve(n);
  }

  /// Appends one row across the columns. `row` must match the column
  /// count (checked by the caller; `Table::AppendRow` validates domains).
  void AppendRow(const std::vector<Value>& row);

  /// Appends `count` rows of `src` starting at row `offset`: one block
  /// copy per column, no per-cell dispatch.
  void AppendSlice(const ColumnTable& src, size_t offset, size_t count);

 private:
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

}  // namespace kamino

#endif  // KAMINO_DATA_COLUMN_H_
