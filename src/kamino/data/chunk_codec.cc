#include "kamino/data/chunk_codec.h"

#include <cmath>
#include <string>

#include "kamino/io/bytes.h"

namespace kamino {
namespace {

// The byte-level encoding primitives (append helpers, the bounded
// ByteReader, bit packing) live in io/bytes.h, shared with the
// model-artifact codec. This file keeps only the per-column scheme
// selection and the block tags.
using io::AppendU32;
using io::AppendU64;
using io::AppendU8;
using io::BitsDouble;
using io::BitWidthFor;
using io::ByteReader;
using io::DoubleBits;
using io::PackBits;
using io::PackedBytes;
using io::UnpackBits;

// Per-column block tags. Categorical and numeric tags are disjoint so a
// payload decoded against the wrong schema kind fails loudly.
enum BlockTag : uint8_t {
  kConstCode = 0,   // [i32 code]
  kPackedCodes = 1, // [i32 base][u8 width][bit-packed deltas]
  kRleCodes = 2,    // [u32 runs]([u32 len][i32 code])*
  kConstBits = 3,   // [u64 bits]
  kPackedInts = 4,  // [f64 base][u8 width][bit-packed deltas]
  kRleBits = 5,     // [u32 runs]([u32 len][u64 bits])*
  kRawBits = 6,     // [u64 bits]*
};

template <typename T>
size_t CountRuns(const std::vector<T>& vals) {
  size_t runs = 0;
  for (size_t i = 0; i < vals.size(); ++i) {
    if (i == 0 || !(vals[i] == vals[i - 1])) ++runs;
  }
  return runs;
}

void EncodeCategorical(const std::vector<int32_t>& codes,
                       std::vector<uint8_t>* out) {
  const size_t n = codes.size();
  int32_t lo = codes[0], hi = codes[0];
  for (int32_t c : codes) {
    lo = c < lo ? c : lo;
    hi = c > hi ? c : hi;
  }
  if (lo == hi) {
    AppendU8(out, kConstCode);
    AppendU32(out, static_cast<uint32_t>(lo));
    return;
  }
  const uint8_t width = BitWidthFor(
      static_cast<uint64_t>(static_cast<int64_t>(hi) - static_cast<int64_t>(lo)));
  const size_t packed_size = 4 + 1 + PackedBytes(n, width);
  const size_t rle_size = 4 + 8 * CountRuns(codes);
  if (rle_size < packed_size) {
    AppendU8(out, kRleCodes);
    AppendU32(out, static_cast<uint32_t>(CountRuns(codes)));
    for (size_t i = 0; i < n;) {
      size_t j = i;
      while (j < n && codes[j] == codes[i]) ++j;
      AppendU32(out, static_cast<uint32_t>(j - i));
      AppendU32(out, static_cast<uint32_t>(codes[i]));
      i = j;
    }
    return;
  }
  AppendU8(out, kPackedCodes);
  AppendU32(out, static_cast<uint32_t>(lo));
  AppendU8(out, width);
  std::vector<uint64_t> deltas(n);
  for (size_t i = 0; i < n; ++i) {
    deltas[i] =
        static_cast<uint64_t>(static_cast<int64_t>(codes[i]) - static_cast<int64_t>(lo));
  }
  PackBits(deltas, width, out);
}

void EncodeNumeric(const std::vector<double>& nums,
                   std::vector<uint8_t>* out) {
  const size_t n = nums.size();
  bool all_same_bits = true;
  const uint64_t first_bits = DoubleBits(nums[0]);
  for (double v : nums) {
    if (DoubleBits(v) != first_bits) {
      all_same_bits = false;
      break;
    }
  }
  if (all_same_bits) {
    AppendU8(out, kConstBits);
    AppendU64(out, first_bits);
    return;
  }
  // Frame-of-reference eligibility: every value an exact integer with a
  // modest range. -0.0 and NaN are excluded (base + delta would not
  // reproduce their bit patterns), as are magnitudes past 2^52 (integer
  // spacing > 1) and ranges too wide to pack profitably.
  bool integral = true;
  double lo = nums[0], hi = nums[0];
  for (double v : nums) {
    if (!(std::floor(v) == v) || std::abs(v) > 4503599627370496.0 ||
        (v == 0.0 && std::signbit(v))) {
      integral = false;
      break;
    }
    lo = v < lo ? v : lo;
    hi = v > hi ? v : hi;
  }
  size_t for_size = ~size_t{0};
  uint8_t width = 0;
  if (integral && hi - lo < 72057594037927936.0 /* 2^56 */) {
    width = BitWidthFor(static_cast<uint64_t>(hi - lo));
    if (width <= 56) for_size = 8 + 1 + PackedBytes(n, width);
  }
  std::vector<uint64_t> bits(n);
  for (size_t i = 0; i < n; ++i) bits[i] = DoubleBits(nums[i]);
  const size_t rle_size = 4 + 12 * CountRuns(bits);
  const size_t raw_size = 8 * n;
  if (for_size <= rle_size && for_size <= raw_size) {
    AppendU8(out, kPackedInts);
    AppendU64(out, DoubleBits(lo));
    AppendU8(out, width);
    std::vector<uint64_t> deltas(n);
    for (size_t i = 0; i < n; ++i) {
      deltas[i] = static_cast<uint64_t>(nums[i] - lo);
    }
    PackBits(deltas, width, out);
    return;
  }
  if (rle_size < raw_size) {
    AppendU8(out, kRleBits);
    AppendU32(out, static_cast<uint32_t>(CountRuns(bits)));
    for (size_t i = 0; i < n;) {
      size_t j = i;
      while (j < n && bits[j] == bits[i]) ++j;
      AppendU32(out, static_cast<uint32_t>(j - i));
      AppendU64(out, bits[i]);
      i = j;
    }
    return;
  }
  AppendU8(out, kRawBits);
  for (uint64_t b : bits) AppendU64(out, b);
}

Status Truncated() {
  return Status::InvalidArgument("chunk payload truncated");
}

Status DecodeCategorical(ByteReader* in, size_t n, Column* col) {
  uint8_t tag = 0;
  if (!in->ReadU8(&tag)) return Truncated();
  switch (tag) {
    case kConstCode: {
      uint32_t code = 0;
      if (!in->ReadU32(&code)) return Truncated();
      for (size_t i = 0; i < n; ++i) {
        col->Append(Value::Categorical(static_cast<int32_t>(code)));
      }
      return Status::OK();
    }
    case kPackedCodes: {
      uint32_t base = 0;
      uint8_t width = 0;
      std::vector<uint64_t> deltas;
      if (!in->ReadU32(&base) || !in->ReadU8(&width) ||
          !UnpackBits(in, n, width, &deltas)) {
        return Truncated();
      }
      for (uint64_t d : deltas) {
        col->Append(Value::Categorical(static_cast<int32_t>(
            static_cast<int64_t>(static_cast<int32_t>(base)) +
            static_cast<int64_t>(d))));
      }
      return Status::OK();
    }
    case kRleCodes: {
      uint32_t runs = 0;
      if (!in->ReadU32(&runs)) return Truncated();
      size_t total = 0;
      for (uint32_t r = 0; r < runs; ++r) {
        uint32_t len = 0, code = 0;
        if (!in->ReadU32(&len) || !in->ReadU32(&code)) return Truncated();
        total += len;
        if (total > n) {
          return Status::InvalidArgument("chunk RLE overruns row count");
        }
        for (uint32_t i = 0; i < len; ++i) {
          col->Append(Value::Categorical(static_cast<int32_t>(code)));
        }
      }
      if (total != n) {
        return Status::InvalidArgument("chunk RLE underruns row count");
      }
      return Status::OK();
    }
    default:
      return Status::InvalidArgument(
          "unexpected block tag for categorical column: " +
          std::to_string(tag));
  }
}

Status DecodeNumeric(ByteReader* in, size_t n, Column* col) {
  uint8_t tag = 0;
  if (!in->ReadU8(&tag)) return Truncated();
  switch (tag) {
    case kConstBits: {
      uint64_t bits = 0;
      if (!in->ReadU64(&bits)) return Truncated();
      for (size_t i = 0; i < n; ++i) {
        col->Append(Value::Numeric(BitsDouble(bits)));
      }
      return Status::OK();
    }
    case kPackedInts: {
      uint64_t base_bits = 0;
      uint8_t width = 0;
      std::vector<uint64_t> deltas;
      if (!in->ReadU64(&base_bits) || !in->ReadU8(&width) ||
          !UnpackBits(in, n, width, &deltas)) {
        return Truncated();
      }
      const double base = BitsDouble(base_bits);
      for (uint64_t d : deltas) {
        col->Append(Value::Numeric(base + static_cast<double>(d)));
      }
      return Status::OK();
    }
    case kRleBits: {
      uint32_t runs = 0;
      if (!in->ReadU32(&runs)) return Truncated();
      size_t total = 0;
      for (uint32_t r = 0; r < runs; ++r) {
        uint32_t len = 0;
        uint64_t bits = 0;
        if (!in->ReadU32(&len) || !in->ReadU64(&bits)) return Truncated();
        total += len;
        if (total > n) {
          return Status::InvalidArgument("chunk RLE overruns row count");
        }
        for (uint32_t i = 0; i < len; ++i) {
          col->Append(Value::Numeric(BitsDouble(bits)));
        }
      }
      if (total != n) {
        return Status::InvalidArgument("chunk RLE underruns row count");
      }
      return Status::OK();
    }
    case kRawBits: {
      for (size_t i = 0; i < n; ++i) {
        uint64_t bits = 0;
        if (!in->ReadU64(&bits)) return Truncated();
        col->Append(Value::Numeric(BitsDouble(bits)));
      }
      return Status::OK();
    }
    default:
      return Status::InvalidArgument(
          "unexpected block tag for numeric column: " + std::to_string(tag));
  }
}

}  // namespace

std::vector<uint8_t> EncodeChunkColumns(const Table& rows) {
  std::vector<uint8_t> out;
  const size_t n = rows.num_rows();
  AppendU64(&out, n);
  AppendU32(&out, static_cast<uint32_t>(rows.num_columns()));
  if (n == 0) return out;
  for (size_t c = 0; c < rows.num_columns(); ++c) {
    const Column& col = rows.columns().column(c);
    if (col.is_categorical()) {
      EncodeCategorical(col.codes(), &out);
    } else {
      EncodeNumeric(col.nums(), &out);
    }
  }
  return out;
}

Result<Table> DecodeChunkColumns(const Schema& schema,
                                 const std::vector<uint8_t>& bytes) {
  ByteReader in(bytes.data(), bytes.size());
  uint64_t n = 0;
  uint32_t num_columns = 0;
  if (!in.ReadU64(&n) || !in.ReadU32(&num_columns)) return Truncated();
  if (num_columns != schema.size()) {
    return Status::InvalidArgument(
        "chunk column count " + std::to_string(num_columns) +
        " != schema arity " + std::to_string(schema.size()));
  }
  Table out(schema);
  if (n == 0) {
    if (!in.exhausted()) {
      return Status::InvalidArgument("trailing bytes after empty chunk");
    }
    return out;
  }
  // Decode each block into a scratch column of the schema kind, then copy
  // the cells in. The block tags were already checked against the column
  // kind, so Set never coerces across kinds.
  out.ResizeRows(n);
  for (size_t c = 0; c < schema.size(); ++c) {
    Column scratch(Column::TypeFor(schema.attribute(c)));
    scratch.Reserve(n);
    Status status = schema.attribute(c).is_categorical()
                        ? DecodeCategorical(&in, n, &scratch)
                        : DecodeNumeric(&in, n, &scratch);
    KAMINO_RETURN_IF_ERROR(status);
    for (size_t r = 0; r < n; ++r) {
      out.set(r, c, scratch.Get(r));
    }
  }
  if (!in.exhausted()) {
    return Status::InvalidArgument("trailing bytes after last column");
  }
  return out;
}

Result<ChunkHeader> PeekChunkHeader(const std::vector<uint8_t>& bytes) {
  ByteReader in(bytes.data(), bytes.size());
  ChunkHeader header;
  uint64_t n = 0;
  uint32_t num_columns = 0;
  if (!in.ReadU64(&n) || !in.ReadU32(&num_columns)) return Truncated();
  if (n == 0 && !in.exhausted()) {
    return Status::InvalidArgument("trailing bytes after empty chunk");
  }
  header.rows = n;
  header.columns = num_columns;
  return header;
}

size_t RawChunkBytes(const Table& rows) {
  return rows.num_rows() * rows.num_columns() * sizeof(Value);
}

}  // namespace kamino
