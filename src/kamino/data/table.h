#ifndef KAMINO_DATA_TABLE_H_
#define KAMINO_DATA_TABLE_H_

#include <string>
#include <vector>

#include "kamino/common/rng.h"
#include "kamino/common/status.h"
#include "kamino/data/column.h"
#include "kamino/data/schema.h"
#include "kamino/data/value.h"

namespace kamino {

/// A tuple of the relation; cells are positionally aligned with the schema.
using Row = std::vector<Value>;

/// A database instance: a schema plus a bag of rows.
///
/// Storage is column-major (`ColumnTable`: packed `double` numerics and
/// `int32_t` dictionary codes per attribute). The row-oriented API is kept
/// as a view so callers migrate incrementally: `at`/`set` delegate into the
/// typed columns, and `row(i)` materializes the tuple on demand — bind it
/// to a `const Row&` (lifetime-extended) or reuse a scratch row through
/// `CopyRowInto` in loops. Hot paths should read the typed columns
/// directly via `columns()` / `numeric_data()` / `code_data()`.
///
/// Note on blank rows: `ResizeRows` fills cells with the *column type's*
/// zero value — `Categorical(0)` in categorical columns where the old
/// row-major core produced a default (numeric 0.0) `Value`. Pipeline
/// readers only touch cells after they are written (the activation map
/// guarantees it), so the change is unobservable there.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema)
      : schema_(std::move(schema)), columns_(schema_) {}

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return columns_.num_rows(); }
  size_t num_columns() const { return schema_.size(); }

  /// Materializes row `i` from the columns. Returns by value (the
  /// column-major core has no resident `Row` to reference); binding to
  /// `const Row&` at call sites keeps the temporary alive.
  Row row(size_t i) const {
    Row out;
    out.reserve(schema_.size());
    for (size_t c = 0; c < schema_.size(); ++c) {
      out.push_back(columns_.at(i, c));
    }
    return out;
  }

  /// Re-materializes row `i` into `out` (resized to the arity), reusing
  /// its capacity — the allocation-free form of `row(i)` for loops.
  void CopyRowInto(size_t i, Row* out) const {
    out->resize(schema_.size());
    for (size_t c = 0; c < schema_.size(); ++c) {
      (*out)[c] = columns_.at(i, c);
    }
  }

  Value at(size_t row, size_t col) const { return columns_.at(row, col); }
  void set(size_t row, size_t col, const Value& v) {
    columns_.set(row, col, v);
  }

  /// Appends a row after validating arity and per-cell domain membership.
  Status AppendRow(Row row);

  /// Appends a row without validation (hot path for generators/samplers
  /// that construct values straight from the domain).
  void AppendRowUnchecked(const Row& row) { columns_.AppendRow(row); }

  /// Allocates `n` rows filled with the columns' zero values (code 0 /
  /// 0.0), to be populated column-by-column.
  void ResizeRows(size_t n) { columns_.ResizeRows(n); }

  /// The typed column-major core (contiguous per-attribute arrays).
  const ColumnTable& columns() const { return columns_; }

  /// Contiguous payload of a numeric column (valid while the table is not
  /// resized or appended to).
  const std::vector<double>& numeric_data(size_t col) const {
    return columns_.column(col).nums();
  }

  /// Contiguous dictionary codes of a categorical column.
  const std::vector<int32_t>& code_data(size_t col) const {
    return columns_.column(col).codes();
  }

  /// Appends `count` rows of `src` starting at row `offset` — one block
  /// copy per column. Schemas must have identical column types.
  void AppendRowsFrom(const Table& src, size_t offset, size_t count) {
    columns_.AppendSlice(src.columns_, offset, count);
  }

  /// A new table with the same schema holding rows [offset, offset+count).
  Table Slice(size_t offset, size_t count) const;

  /// Returns a table with the same schema and a Bernoulli(p) subsample of
  /// rows (the Poisson subsampling used by DP-SGD and weight learning).
  Table SampleRows(double p, Rng* rng) const;

  /// Returns a table with the first `n` rows (or all rows if fewer).
  Table Head(size_t n) const;

  /// Renders the cell as a human-readable string (category label or number).
  std::string CellToString(size_t row, size_t col) const;

 private:
  Schema schema_;
  ColumnTable columns_;
};

}  // namespace kamino

#endif  // KAMINO_DATA_TABLE_H_
