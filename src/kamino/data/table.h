#ifndef KAMINO_DATA_TABLE_H_
#define KAMINO_DATA_TABLE_H_

#include <string>
#include <vector>

#include "kamino/common/rng.h"
#include "kamino/common/status.h"
#include "kamino/data/schema.h"
#include "kamino/data/value.h"

namespace kamino {

/// A tuple of the relation; cells are positionally aligned with the schema.
using Row = std::vector<Value>;

/// A database instance: a schema plus a bag of rows.
///
/// Tables are row-major and value cells are validated against the schema on
/// `AppendRow`. The synthesizers construct tables column-by-column, so
/// `Table` also supports allocating `n` blank rows up front and writing
/// individual cells.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }
  size_t num_columns() const { return schema_.size(); }

  const Row& row(size_t i) const { return rows_[i]; }
  const Value& at(size_t row, size_t col) const { return rows_[row][col]; }
  void set(size_t row, size_t col, const Value& v) { rows_[row][col] = v; }

  /// Appends a row after validating arity and per-cell domain membership.
  Status AppendRow(Row row);

  /// Appends a row without validation (hot path for generators/samplers
  /// that construct values straight from the domain).
  void AppendRowUnchecked(Row row) { rows_.push_back(std::move(row)); }

  /// Allocates `n` rows filled with default values, to be populated
  /// column-by-column.
  void ResizeRows(size_t n);

  /// Returns one column as a vector.
  std::vector<Value> Column(size_t col) const;

  /// Returns a table with the same schema and a Bernoulli(p) subsample of
  /// rows (the Poisson subsampling used by DP-SGD and weight learning).
  Table SampleRows(double p, Rng* rng) const;

  /// Returns a table with the first `n` rows (or all rows if fewer).
  Table Head(size_t n) const;

  /// Renders the cell as a human-readable string (category label or number).
  std::string CellToString(size_t row, size_t col) const;

 private:
  Schema schema_;
  std::vector<Row> rows_;
};

}  // namespace kamino

#endif  // KAMINO_DATA_TABLE_H_
