#include "kamino/data/table.h"

#include <sstream>

namespace kamino {

Status Table::AppendRow(Row row) {
  if (row.size() != schema_.size()) {
    return Status::InvalidArgument("row arity " + std::to_string(row.size()) +
                                   " != schema arity " +
                                   std::to_string(schema_.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (!schema_.attribute(i).Contains(row[i])) {
      return Status::InvalidArgument("cell " + std::to_string(i) +
                                     " outside domain of attribute " +
                                     schema_.attribute(i).name());
    }
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

void Table::ResizeRows(size_t n) {
  rows_.assign(n, Row(schema_.size()));
}

std::vector<Value> Table::Column(size_t col) const {
  std::vector<Value> out;
  out.reserve(rows_.size());
  for (const Row& r : rows_) out.push_back(r[col]);
  return out;
}

Table Table::SampleRows(double p, Rng* rng) const {
  Table out(schema_);
  for (const Row& r : rows_) {
    if (rng->Bernoulli(p)) out.AppendRowUnchecked(r);
  }
  return out;
}

Table Table::Head(size_t n) const {
  Table out(schema_);
  for (size_t i = 0; i < rows_.size() && i < n; ++i) {
    out.AppendRowUnchecked(rows_[i]);
  }
  return out;
}

std::string Table::CellToString(size_t row, size_t col) const {
  const Value& v = rows_[row][col];
  const Attribute& a = schema_.attribute(col);
  if (a.is_categorical()) {
    auto label = a.CategoryLabel(v.category());
    return label.ok() ? label.value() : "<bad-category>";
  }
  std::ostringstream os;
  os << v.numeric();
  return os.str();
}

}  // namespace kamino
