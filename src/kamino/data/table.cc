#include "kamino/data/table.h"

#include <sstream>

namespace kamino {

Status Table::AppendRow(Row row) {
  if (row.size() != schema_.size()) {
    return Status::InvalidArgument("row arity " + std::to_string(row.size()) +
                                   " != schema arity " +
                                   std::to_string(schema_.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (!schema_.attribute(i).Contains(row[i])) {
      return Status::InvalidArgument("cell " + std::to_string(i) +
                                     " outside domain of attribute " +
                                     schema_.attribute(i).name());
    }
  }
  columns_.AppendRow(row);
  return Status::OK();
}

Table Table::Slice(size_t offset, size_t count) const {
  Table out(schema_);
  out.columns_.Reserve(count);
  out.columns_.AppendSlice(columns_, offset, count);
  return out;
}

Table Table::SampleRows(double p, Rng* rng) const {
  Table out(schema_);
  for (size_t r = 0; r < num_rows(); ++r) {
    if (rng->Bernoulli(p)) out.columns_.AppendSlice(columns_, r, 1);
  }
  return out;
}

Table Table::Head(size_t n) const {
  const size_t count = n < num_rows() ? n : num_rows();
  return Slice(0, count);
}

std::string Table::CellToString(size_t row, size_t col) const {
  const Attribute& a = schema_.attribute(col);
  if (a.is_categorical()) {
    auto label = a.CategoryLabel(at(row, col).category());
    return label.ok() ? label.value() : "<bad-category>";
  }
  std::ostringstream os;
  os << at(row, col).numeric();
  return os.str();
}

}  // namespace kamino
