#include "kamino/data/column.h"

namespace kamino {
namespace {

/// Block append that tolerates `src` aliasing `dst` (self-append): insert
/// from a range into the same vector is undefined, so the aliased case
/// reserves first (keeping the source indices valid) and copies by index.
template <typename T>
void AppendBlock(std::vector<T>* dst, const std::vector<T>& src,
                 size_t offset, size_t count) {
  if (dst == &src) {
    dst->reserve(dst->size() + count);
    for (size_t i = 0; i < count; ++i) dst->push_back((*dst)[offset + i]);
    return;
  }
  dst->insert(dst->end(), src.begin() + offset, src.begin() + offset + count);
}

}  // namespace

void Column::AppendSlice(const Column& src, size_t offset, size_t count) {
  assert(src.type_ == type_);
  if (is_categorical()) {
    AppendBlock(&codes_, src.codes_, offset, count);
  } else {
    AppendBlock(&nums_, src.nums_, offset, count);
  }
}

void ColumnTable::ResizeRows(size_t n) {
  for (Column& c : columns_) {
    c.Resize(0);  // discard, then grow: assign semantics, not append
    c.Resize(n);
  }
  num_rows_ = n;
}

void ColumnTable::AppendRow(const std::vector<Value>& row) {
  assert(row.size() == columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].Append(row[c]);
  }
  ++num_rows_;
}

void ColumnTable::AppendSlice(const ColumnTable& src, size_t offset,
                              size_t count) {
  assert(src.columns_.size() == columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].AppendSlice(src.columns_[c], offset, count);
  }
  num_rows_ += count;
}

}  // namespace kamino
