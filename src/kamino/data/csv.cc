#include "kamino/data/csv.h"

#include <fstream>
#include <sstream>

#include "kamino/common/strings.h"

namespace kamino {

Status WriteCsv(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  const Schema& schema = table.schema();
  for (size_t c = 0; c < schema.size(); ++c) {
    if (c > 0) out << ',';
    out << schema.attribute(c).name();
  }
  out << '\n';
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < schema.size(); ++c) {
      if (c > 0) out << ',';
      out << table.CellToString(r, c);
    }
    out << '\n';
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<Table> ReadCsv(const Schema& schema, const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::string line;
  if (!std::getline(in, line)) return Status::IoError("empty csv: " + path);
  std::vector<std::string> header = Split(line, ',');
  if (header.size() != schema.size()) {
    return Status::InvalidArgument("csv header arity mismatch in " + path);
  }
  for (size_t c = 0; c < schema.size(); ++c) {
    if (std::string(Trim(header[c])) != schema.attribute(c).name()) {
      return Status::InvalidArgument("csv header column " + std::to_string(c) +
                                     " is '" + header[c] + "', expected '" +
                                     schema.attribute(c).name() + "'");
    }
  }
  Table table(schema);
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (Trim(line).empty()) continue;
    std::vector<std::string> fields = Split(line, ',');
    if (fields.size() != schema.size()) {
      return Status::InvalidArgument("csv line " + std::to_string(line_no) +
                                     " arity mismatch");
    }
    Row row(schema.size());
    for (size_t c = 0; c < schema.size(); ++c) {
      const Attribute& attr = schema.attribute(c);
      std::string field(Trim(fields[c]));
      if (attr.is_categorical()) {
        KAMINO_ASSIGN_OR_RETURN(int32_t idx, attr.CategoryIndex(field));
        row[c] = Value::Categorical(idx);
      } else {
        KAMINO_ASSIGN_OR_RETURN(double v, ParseDouble(field));
        row[c] = Value::Numeric(v);
      }
    }
    KAMINO_RETURN_IF_ERROR(table.AppendRow(std::move(row)));
  }
  return table;
}

}  // namespace kamino
