#include "kamino/data/quantizer.h"

#include <algorithm>

namespace kamino {

Quantizer::Quantizer(double min, double max, int q)
    : min_(min), max_(max), q_(q), width_((max - min) / q) {
  if (width_ <= 0) width_ = 1.0;
}

Result<Quantizer> Quantizer::Make(const Attribute& attr, int q) {
  if (!attr.is_numeric()) {
    return Status::InvalidArgument("quantizer requires a numeric attribute");
  }
  if (q < 1) return Status::InvalidArgument("quantizer requires q >= 1");
  return Quantizer(attr.min_value(), attr.max_value(), q);
}

int Quantizer::BinOf(double value) const {
  int bin = static_cast<int>((value - min_) / width_);
  return std::clamp(bin, 0, q_ - 1);
}

double Quantizer::BinLow(int bin) const { return min_ + bin * width_; }

double Quantizer::BinHigh(int bin) const {
  return bin == q_ - 1 ? max_ : min_ + (bin + 1) * width_;
}

double Quantizer::Midpoint(int bin) const {
  return 0.5 * (BinLow(bin) + BinHigh(bin));
}

double Quantizer::SampleWithin(int bin, Rng* rng) const {
  double lo = BinLow(bin);
  double hi = BinHigh(bin);
  if (hi <= lo) return lo;
  return rng->Uniform(lo, hi);
}

}  // namespace kamino
