#ifndef KAMINO_DATA_VALUE_H_
#define KAMINO_DATA_VALUE_H_

#include <cstdint>
#include <functional>

namespace kamino {

/// A single cell of a relation.
///
/// Categorical values are stored as an index into the attribute's category
/// list (the dictionary lives on the `Attribute`, not on the value), and
/// numeric values as a double. Values are ordered: numeric values by their
/// magnitude, categorical values by index. Comparing values of different
/// kinds is a programmer error; predicates validate kinds at parse time.
class Value {
 public:
  enum class Kind : uint8_t { kCategorical, kNumeric };

  Value() : kind_(Kind::kNumeric), num_(0.0), cat_(0) {}

  static Value Categorical(int32_t index) {
    Value v;
    v.kind_ = Kind::kCategorical;
    v.cat_ = index;
    return v;
  }

  static Value Numeric(double value) {
    Value v;
    v.kind_ = Kind::kNumeric;
    v.num_ = value;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_categorical() const { return kind_ == Kind::kCategorical; }
  bool is_numeric() const { return kind_ == Kind::kNumeric; }

  /// Category index. Only meaningful for categorical values.
  int32_t category() const { return cat_; }

  /// Numeric payload. Only meaningful for numeric values.
  double numeric() const { return num_; }

  /// A single ordering key that works for either kind, used by predicate
  /// evaluation: category index for categorical, payload for numeric.
  double OrderKey() const {
    return kind_ == Kind::kCategorical ? static_cast<double>(cat_) : num_;
  }

  friend bool operator==(const Value& a, const Value& b) {
    if (a.kind_ != b.kind_) return false;
    return a.kind_ == Kind::kCategorical ? a.cat_ == b.cat_
                                         : a.num_ == b.num_;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  friend bool operator<(const Value& a, const Value& b) {
    return a.OrderKey() < b.OrderKey();
  }
  friend bool operator<=(const Value& a, const Value& b) {
    return a.OrderKey() <= b.OrderKey();
  }
  friend bool operator>(const Value& a, const Value& b) { return b < a; }
  friend bool operator>=(const Value& a, const Value& b) { return b <= a; }

 private:
  Kind kind_;
  double num_;
  int32_t cat_;
};

/// Hash functor so values can key unordered containers (e.g. the FD fast
/// path index in the sampler).
///
/// The kind participates through a full avalanche mix, not a low-bit XOR:
/// `Categorical(i)` and `Numeric(double(i))` share an `OrderKey`, and
/// flipping only bit 1 of the payload hash kept them in nearby (often the
/// same, for power-of-two bucket counts masking low bits) hash buckets,
/// degrading FD group lookups on mixed-kind keys to near-chains.
struct ValueHash {
  size_t operator()(const Value& v) const {
    uint64_t h = std::hash<double>()(v.OrderKey());
    if (v.kind() == Value::Kind::kCategorical) {
      // splitmix64 finalizer: every input bit affects every output bit,
      // so the two kinds land in unrelated buckets.
      h += 0x9e3779b97f4a7c15ull;
      h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
      h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
      h ^= h >> 31;
    }
    return static_cast<size_t>(h);
  }
};

}  // namespace kamino

#endif  // KAMINO_DATA_VALUE_H_
