#ifndef KAMINO_DATA_CSV_H_
#define KAMINO_DATA_CSV_H_

#include <string>

#include "kamino/common/status.h"
#include "kamino/data/table.h"

namespace kamino {

/// Writes `table` to `path` as a header-first CSV. Categorical cells are
/// written as their labels, numeric cells as decimal numbers.
Status WriteCsv(const Table& table, const std::string& path);

/// Reads a CSV produced by `WriteCsv` (or any CSV whose header matches the
/// schema's attribute names in order), converting labels back to category
/// indices and validating numeric cells against the domain.
Result<Table> ReadCsv(const Schema& schema, const std::string& path);

}  // namespace kamino

#endif  // KAMINO_DATA_CSV_H_
