#include "kamino/dc/violations.h"

#include <algorithm>
#include <mutex>
#include <unordered_map>

#include "kamino/common/logging.h"
#include "kamino/runtime/parallel_for.h"

namespace kamino {
namespace {

/// Rows per ParallelFor chunk for the pair scans. Fixed (not derived from
/// the thread count) so chunk boundaries — and therefore the partial
/// buffers merged below — are identical at any `num_threads`.
constexpr size_t kPairScanGrain = 64;

/// Hash key for the left-hand-side attribute values of an FD group.
struct FdKey {
  std::vector<Value> values;

  bool operator==(const FdKey& other) const {
    if (values.size() != other.values.size()) return false;
    for (size_t i = 0; i < values.size(); ++i) {
      if (!(values[i] == other.values[i])) return false;
    }
    return true;
  }
};

struct FdKeyHash {
  size_t operator()(const FdKey& k) const {
    size_t h = 1469598103934665603ull;
    ValueHash vh;
    for (const Value& v : k.values) {
      h ^= vh(v);
      h *= 1099511628211ull;
    }
    return h;
  }
};

int64_t PairsOf(int64_t m) { return m * (m - 1) / 2; }

/// Counts violating unordered pairs of an FD-shaped DC by grouping: within
/// an LHS group of size g whose RHS value multiplicities are c_v, the
/// violating pairs are C(g,2) - sum_v C(c_v,2).
int64_t CountFdViolations(const std::vector<size_t>& lhs, size_t rhs,
                          const Table& table) {
  std::unordered_map<FdKey, std::unordered_map<Value, int64_t, ValueHash>,
                     FdKeyHash>
      groups;
  for (size_t i = 0; i < table.num_rows(); ++i) {
    const Row& row = table.row(i);
    FdKey key;
    key.values.reserve(lhs.size());
    for (size_t a : lhs) key.values.push_back(row[a]);
    ++groups[key][row[rhs]];
  }
  int64_t violations = 0;
  for (const auto& [key, rhs_counts] : groups) {
    int64_t group_size = 0;
    int64_t same = 0;
    for (const auto& [value, count] : rhs_counts) {
      group_size += count;
      same += PairsOf(count);
    }
    violations += PairsOf(group_size) - same;
  }
  return violations;
}

/// O(1)-per-candidate index for FD-shaped DCs.
class FdViolationIndex : public ViolationIndex {
 public:
  FdViolationIndex(std::vector<size_t> lhs, size_t rhs)
      : lhs_(std::move(lhs)), rhs_(rhs) {}

  int64_t CountNew(const Row& row) const override {
    auto it = groups_.find(KeyOf(row));
    if (it == groups_.end()) return 0;
    const GroupStats& g = it->second;
    auto same = g.rhs_counts.find(row[rhs_]);
    int64_t matching = same == g.rhs_counts.end() ? 0 : same->second;
    return g.size - matching;
  }

  void AddRow(const Row& row) override {
    GroupStats& g = groups_[KeyOf(row)];
    ++g.size;
    ++g.rhs_counts[row[rhs_]];
    ++num_rows_;
  }

  void Merge(const ViolationIndex& other) override {
    const auto* peer = dynamic_cast<const FdViolationIndex*>(&other);
    KAMINO_CHECK(peer != nullptr) << "Merge across index types";
    for (const auto& [key, stats] : peer->groups_) {
      GroupStats& g = groups_[key];
      g.size += stats.size;
      for (const auto& [value, count] : stats.rhs_counts) {
        g.rhs_counts[value] += count;
      }
    }
    num_rows_ += peer->num_rows_;
  }

  int64_t CountAgainst(const ViolationIndex& other) const override {
    const auto* peer = dynamic_cast<const FdViolationIndex*>(&other);
    KAMINO_CHECK(peer != nullptr) << "CountAgainst across index types";
    // Cross pairs of a shared LHS group violate unless both sides carry the
    // same RHS value: |A| * |B| - sum_v cA(v) * cB(v).
    int64_t violations = 0;
    for (const auto& [key, stats] : groups_) {
      auto it = peer->groups_.find(key);
      if (it == peer->groups_.end()) continue;
      int64_t same = 0;
      for (const auto& [value, count] : stats.rhs_counts) {
        auto jt = it->second.rhs_counts.find(value);
        if (jt != it->second.rhs_counts.end()) same += count * jt->second;
      }
      violations += stats.size * it->second.size - same;
    }
    return violations;
  }

  std::optional<Value> FdForcedValue(const Row& row) const override {
    auto it = groups_.find(KeyOf(row));
    if (it == groups_.end() || it->second.rhs_counts.empty()) {
      return std::nullopt;
    }
    // Report the majority RHS value of the group (in a violation-free
    // instance the group has exactly one value).
    const auto& counts = it->second.rhs_counts;
    auto best = counts.begin();
    for (auto jt = counts.begin(); jt != counts.end(); ++jt) {
      if (jt->second > best->second) best = jt;
    }
    return best->first;
  }

  size_t size() const override { return num_rows_; }

 private:
  struct GroupStats {
    int64_t size = 0;
    std::unordered_map<Value, int64_t, ValueHash> rhs_counts;
  };

  FdKey KeyOf(const Row& row) const {
    FdKey key;
    key.values.reserve(lhs_.size());
    for (size_t a : lhs_) key.values.push_back(row[a]);
    return key;
  }

  std::vector<size_t> lhs_;
  size_t rhs_;
  size_t num_rows_ = 0;
  std::unordered_map<FdKey, GroupStats, FdKeyHash> groups_;
};

/// Unary DCs need no stored state: a tuple either violates or not.
class UnaryViolationIndex : public ViolationIndex {
 public:
  explicit UnaryViolationIndex(const DenialConstraint& dc) : dc_(dc) {}

  int64_t CountNew(const Row& row) const override {
    return dc_.ViolatesUnary(row) ? 1 : 0;
  }

  void AddRow(const Row& row) override {
    (void)row;
    ++num_rows_;
  }

  void Merge(const ViolationIndex& other) override {
    KAMINO_CHECK(dynamic_cast<const UnaryViolationIndex*>(&other) != nullptr)
        << "Merge across index types";
    num_rows_ += other.size();
  }

  int64_t CountAgainst(const ViolationIndex& other) const override {
    (void)other;
    return 0;  // unary DCs have no pairwise violations
  }

  size_t size() const override { return num_rows_; }

 private:
  DenialConstraint dc_;
  size_t num_rows_ = 0;
};

/// Fallback for general binary DCs: scans every committed row. The scan
/// only materializes the attributes mentioned by the DC to keep the rows
/// compact is unnecessary here since rows are shared; we store copies.
class NaiveViolationIndex : public ViolationIndex {
 public:
  explicit NaiveViolationIndex(const DenialConstraint& dc) : dc_(dc) {}

  int64_t CountNew(const Row& row) const override {
    int64_t count = 0;
    for (const Row& old : rows_) {
      if (dc_.ViolatesPair(row, old)) ++count;
    }
    return count;
  }

  void AddRow(const Row& row) override { rows_.push_back(row); }

  void Merge(const ViolationIndex& other) override {
    const auto* peer = dynamic_cast<const NaiveViolationIndex*>(&other);
    KAMINO_CHECK(peer != nullptr) << "Merge across index types";
    rows_.insert(rows_.end(), peer->rows_.begin(), peer->rows_.end());
  }

  int64_t CountAgainst(const ViolationIndex& other) const override {
    const auto* peer = dynamic_cast<const NaiveViolationIndex*>(&other);
    KAMINO_CHECK(peer != nullptr) << "CountAgainst across index types";
    // Each unordered cross pair appears exactly once (one row per side).
    int64_t count = 0;
    for (const Row& a : rows_) {
      for (const Row& b : peer->rows_) {
        if (dc_.ViolatesPair(a, b)) ++count;
      }
    }
    return count;
  }

  size_t size() const override { return rows_.size(); }

 private:
  DenialConstraint dc_;
  std::vector<Row> rows_;
};

}  // namespace

int64_t CountViolationsNaive(const DenialConstraint& dc, const Table& table) {
  const size_t n = table.num_rows();
  if (dc.is_unary()) {
    int64_t count = 0;
    for (size_t i = 0; i < n; ++i) {
      if (dc.ViolatesUnary(table.row(i))) ++count;
    }
    return count;
  }
  // Chunk the outer row of the i < j pair scan; per-chunk counts merge
  // exactly (integer sums), so the total is thread-count independent.
  const size_t num_chunks = n == 0 ? 0 : (n + kPairScanGrain - 1) / kPairScanGrain;
  std::vector<int64_t> partial(num_chunks, 0);
  runtime::ParallelForEach(0, num_chunks, 1, [&](size_t k) {
    const size_t lo = k * kPairScanGrain;
    const size_t hi = std::min(n, lo + kPairScanGrain);
    int64_t count = 0;
    for (size_t i = lo; i < hi; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        if (dc.ViolatesPair(table.row(i), table.row(j))) ++count;
      }
    }
    partial[k] = count;
  });
  int64_t total = 0;
  for (int64_t c : partial) total += c;
  return total;
}

int64_t CountViolations(const DenialConstraint& dc, const Table& table) {
  std::vector<size_t> lhs;
  size_t rhs = 0;
  if (dc.AsFd(&lhs, &rhs)) return CountFdViolations(lhs, rhs, table);
  return CountViolationsNaive(dc, table);
}

double ViolationRatePercent(const DenialConstraint& dc, const Table& table) {
  const int64_t n = static_cast<int64_t>(table.num_rows());
  if (n == 0) return 0.0;
  const int64_t violations = CountViolations(dc, table);
  const double denom =
      dc.is_unary() ? static_cast<double>(n)
                    : static_cast<double>(n) * (n - 1) / 2.0;
  if (denom <= 0) return 0.0;
  return 100.0 * static_cast<double>(violations) / denom;
}

int64_t CountNewViolations(const DenialConstraint& dc, const Row& row,
                           const Table& table, size_t prefix_len) {
  if (dc.is_unary()) return dc.ViolatesUnary(row) ? 1 : 0;
  KAMINO_CHECK(prefix_len <= table.num_rows());
  int64_t count = 0;
  for (size_t j = 0; j < prefix_len; ++j) {
    if (dc.ViolatesPair(row, table.row(j))) ++count;
  }
  return count;
}

std::vector<std::vector<double>> BuildViolationMatrix(
    const Table& table, const std::vector<WeightedConstraint>& constraints) {
  const size_t n = table.num_rows();
  std::vector<std::vector<double>> matrix(
      n, std::vector<double>(constraints.size(), 0.0));
  for (size_t l = 0; l < constraints.size(); ++l) {
    const DenialConstraint& dc = constraints[l].dc;
    if (dc.is_unary()) {
      runtime::ParallelForEach(0, n, kPairScanGrain, [&](size_t i) {
        matrix[i][l] = dc.ViolatesUnary(table.row(i)) ? 1.0 : 0.0;
      });
      continue;
    }
    std::vector<size_t> fd_lhs;
    size_t fd_rhs = 0;
    if (dc.AsFd(&fd_lhs, &fd_rhs)) {
      // Equality-only (FD-shaped) DC: hash-partition instead of the O(n^2)
      // pair scan. One sequential pass builds the LHS group stats, then
      // each row's violation count is |group| - |same (LHS, RHS)| — the
      // committed row cancels itself out of both terms. Exact integer
      // counts, so the column matches the pair scan bit for bit.
      FdViolationIndex groups(fd_lhs, fd_rhs);
      for (size_t i = 0; i < n; ++i) groups.AddRow(table.row(i));
      runtime::ParallelForEach(0, n, kPairScanGrain, [&](size_t i) {
        matrix[i][l] = static_cast<double>(groups.CountNew(table.row(i)));
      });
      continue;
    }
    // Each chunk of outer rows scans its i < j pairs into a private column
    // so rows i and j of a violating pair never race, then folds it into
    // the matrix under a lock and frees it — live memory stays bounded by
    // the executor count, not the chunk count. The fold adds exact
    // integers (commutative in doubles), so the matrix is bit-identical
    // at any thread count and merge order. (Chunks shrink in cost as i
    // grows; the grain keeps them numerous enough for the pool to
    // balance.)
    const size_t num_chunks =
        n == 0 ? 0 : (n + kPairScanGrain - 1) / kPairScanGrain;
    std::mutex merge_mu;
    runtime::ParallelForEach(0, num_chunks, 1, [&](size_t k) {
      const size_t lo = k * kPairScanGrain;
      const size_t hi = std::min(n, lo + kPairScanGrain);
      std::vector<double> column(n, 0.0);
      for (size_t i = lo; i < hi; ++i) {
        for (size_t j = i + 1; j < n; ++j) {
          if (dc.ViolatesPair(table.row(i), table.row(j))) {
            column[i] += 1.0;
            column[j] += 1.0;
          }
        }
      }
      std::lock_guard<std::mutex> lock(merge_mu);
      for (size_t i = 0; i < n; ++i) {
        if (column[i] != 0.0) matrix[i][l] += column[i];
      }
    });
  }
  return matrix;
}

std::unique_ptr<ViolationIndex> MakeViolationIndex(
    const DenialConstraint& dc) {
  if (dc.is_unary()) return std::make_unique<UnaryViolationIndex>(dc);
  std::vector<size_t> lhs;
  size_t rhs = 0;
  if (dc.AsFd(&lhs, &rhs)) {
    return std::make_unique<FdViolationIndex>(std::move(lhs), rhs);
  }
  return std::make_unique<NaiveViolationIndex>(dc);
}

}  // namespace kamino
