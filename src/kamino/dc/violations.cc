#include "kamino/dc/violations.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "kamino/common/logging.h"
#include "kamino/obs/metrics.h"
#include "kamino/runtime/parallel_for.h"

namespace kamino {
namespace {

/// Bumps `kamino.dc.<what>.<kind>` and records the table size into the
/// matching size histogram when metrics are on. `kind` names the dispatch
/// branch (fd / order / composite / naive / ...), so the counters expose
/// how often each specialized engine actually fires.
void RecordDcMetric(const char* what, const char* kind, size_t rows) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  if (!reg.enabled()) return;
  static const std::vector<double> kRowBounds = {100.0, 1000.0, 10000.0,
                                                 100000.0};
  reg.counter(std::string("kamino.dc.") + what + "." + kind)->Increment();
  reg.histogram(std::string("kamino.dc.") + what + ".rows", kRowBounds)
      ->Record(static_cast<double>(rows));
}

/// Counter-only variant for index construction (no table in scope there).
void RecordDcIndexBuilt(const char* kind) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  if (!reg.enabled()) return;
  reg.counter(std::string("kamino.dc.index_built.") + kind)->Increment();
}

/// Rows per ParallelFor chunk for the pair scans. Fixed (not derived from
/// the thread count) so chunk boundaries — and therefore the partial
/// buffers merged below — are identical at any `num_threads`.
constexpr size_t kPairScanGrain = 64;

/// Hash key for the left-hand-side attribute values of an FD group.
struct FdKey {
  std::vector<Value> values;

  bool operator==(const FdKey& other) const {
    if (values.size() != other.values.size()) return false;
    for (size_t i = 0; i < values.size(); ++i) {
      if (!(values[i] == other.values[i])) return false;
    }
    return true;
  }
};

struct FdKeyHash {
  size_t operator()(const FdKey& k) const {
    size_t h = 1469598103934665603ull;
    ValueHash vh;
    for (const Value& v : k.values) {
      h ^= vh(v);
      h *= 1099511628211ull;
    }
    return h;
  }
};

/// Projects `row` onto `attrs` as a hashable group key — the one key
/// construction every grouped index and count in this file shares.
FdKey RowKey(const Row& row, const std::vector<size_t>& attrs) {
  FdKey key;
  key.values.reserve(attrs.size());
  for (size_t a : attrs) key.values.push_back(row[a]);
  return key;
}

// ---------------------------------------------------------------------------
// Packed equality keys over the typed columns.
//
// The whole-table grouped counts below (FD violations, scoped pairs,
// composite scope terms, order-DC grouping) used to project each row into
// a vector<Value> key and hash-group those. The columnar core makes the
// key a flat sequence of u64 words read straight from the typed arrays:
// dictionary codes widen to u64 and numeric cells contribute their bit
// pattern, so word equality coincides with Value equality (-0.0 is
// canonicalized to +0.0 first, the one bit-pattern split inside a Value
// equivalence class). NaN breaks the correspondence the other way
// (NaN != NaN as a Value, but its bit pattern equals itself), so `Build`
// refuses key columns containing NaN and callers fall back to the boxed
// RowKey path.
// ---------------------------------------------------------------------------

/// Row-major packed key words: row i's key is `words_per_row()`
/// consecutive u64s, one per key attribute.
class PackedKeyColumns {
 public:
  static std::optional<PackedKeyColumns> Build(
      const Table& table, const std::vector<size_t>& attrs) {
    PackedKeyColumns out;
    const size_t n = table.num_rows();
    const size_t k = attrs.size();
    out.num_rows_ = n;
    out.words_per_row_ = k;
    out.words_.resize(n * k);
    for (size_t slot = 0; slot < k; ++slot) {
      const Column& col = table.columns().column(attrs[slot]);
      uint64_t* dst = out.words_.data() + slot;
      if (col.is_categorical()) {
        const int32_t* codes = col.codes().data();
        for (size_t i = 0; i < n; ++i, dst += k) {
          *dst = static_cast<uint64_t>(static_cast<int64_t>(codes[i]));
        }
      } else {
        const double* nums = col.nums().data();
        for (size_t i = 0; i < n; ++i, dst += k) {
          const double v = nums[i];
          if (v != v) return std::nullopt;  // NaN: word != Value equality
          const double canonical = v == 0.0 ? 0.0 : v;  // fold -0.0 in
          uint64_t bits;
          std::memcpy(&bits, &canonical, sizeof(bits));
          *dst = bits;
        }
      }
    }
    return out;
  }

  size_t num_rows() const { return num_rows_; }
  size_t words_per_row() const { return words_per_row_; }
  const uint64_t* row(size_t i) const {
    return words_.data() + i * words_per_row_;
  }

 private:
  size_t num_rows_ = 0;
  size_t words_per_row_ = 0;
  std::vector<uint64_t> words_;
};

/// Dense group ids (first-occurrence order) for every row: linear-probing
/// insert-or-find over the packed words, the columnar replacement for
/// `unordered_map<FdKey, ...>` grouping. An empty key (no attributes) puts
/// every row in group 0, matching the single empty RowKey.
std::vector<uint32_t> PackedGroupIds(const PackedKeyColumns& keys,
                                     size_t* num_groups) {
  const size_t n = keys.num_rows();
  const size_t k = keys.words_per_row();
  std::vector<uint32_t> gid(n, 0);
  if (k == 0) {
    *num_groups = n == 0 ? 0 : 1;
    return gid;
  }
  size_t cap = 16;
  while (cap < 2 * n) cap *= 2;
  const size_t mask = cap - 1;
  constexpr uint32_t kEmpty = 0xffffffffu;
  std::vector<uint32_t> slot_group(cap, kEmpty);
  std::vector<uint32_t> reps;  // representative row of each group
  for (size_t i = 0; i < n; ++i) {
    const uint64_t* w = keys.row(i);
    // FNV-1a over the key words, with a final fold so power-of-two
    // masking sees high-entropy low bits.
    uint64_t h = 1469598103934665603ull;
    for (size_t t = 0; t < k; ++t) {
      h ^= w[t];
      h *= 1099511628211ull;
    }
    h ^= h >> 32;
    size_t slot = static_cast<size_t>(h) & mask;
    while (true) {
      const uint32_t g = slot_group[slot];
      if (g == kEmpty) {
        gid[i] = static_cast<uint32_t>(reps.size());
        slot_group[slot] = gid[i];
        reps.push_back(static_cast<uint32_t>(i));
        break;
      }
      const uint64_t* rep = keys.row(reps[g]);
      bool equal = true;
      for (size_t t = 0; t < k; ++t) {
        if (rep[t] != w[t]) {
          equal = false;
          break;
        }
      }
      if (equal) {
        gid[i] = g;
        break;
      }
      slot = (slot + 1) & mask;
    }
  }
  *num_groups = reps.size();
  return gid;
}

/// One attribute's OrderKey sequence as a contiguous double span: numeric
/// columns expose their payload array directly, categorical columns widen
/// their codes once into `scratch`.
const double* OrderKeySpan(const Table& table, size_t attr,
                           std::vector<double>* scratch) {
  const Column& col = table.columns().column(attr);
  if (col.is_numeric()) return col.nums().data();
  scratch->assign(col.codes().begin(), col.codes().end());
  return scratch->data();
}

/// Boxed-key fallback of `CountFdViolations` for key columns with NaN.
int64_t CountFdViolationsRowKeyed(const std::vector<size_t>& lhs, size_t rhs,
                                  const Table& table) {
  std::unordered_map<FdKey, std::unordered_map<Value, int64_t, ValueHash>,
                     FdKeyHash>
      groups;
  for (size_t i = 0; i < table.num_rows(); ++i) {
    const Row& row = table.row(i);
    ++groups[RowKey(row, lhs)][row[rhs]];
  }
  int64_t violations = 0;
  for (const auto& [key, rhs_counts] : groups) {
    int64_t group_size = 0;
    int64_t same = 0;
    for (const auto& [value, count] : rhs_counts) {
      group_size += count;
      same += PairsOf(count);
    }
    violations += PairsOf(group_size) - same;
  }
  return violations;
}

/// Counts violating unordered pairs of an FD-shaped DC by grouping: within
/// an LHS group of size g whose RHS value multiplicities are c_v, the
/// violating pairs are C(g,2) - sum_v C(c_v,2). Grouping runs on packed
/// column words; (LHS, RHS) multiplicities are just a second grouping on
/// the key extended by the RHS attribute.
int64_t CountFdViolations(const std::vector<size_t>& lhs, size_t rhs,
                          const Table& table) {
  std::optional<PackedKeyColumns> lhs_keys =
      PackedKeyColumns::Build(table, lhs);
  std::vector<size_t> both = lhs;
  both.push_back(rhs);
  std::optional<PackedKeyColumns> both_keys =
      PackedKeyColumns::Build(table, both);
  if (!lhs_keys.has_value() || !both_keys.has_value()) {
    return CountFdViolationsRowKeyed(lhs, rhs, table);
  }
  size_t num_groups = 0;
  size_t num_cells = 0;
  const std::vector<uint32_t> gid = PackedGroupIds(*lhs_keys, &num_groups);
  const std::vector<uint32_t> cid = PackedGroupIds(*both_keys, &num_cells);
  std::vector<int64_t> group_size(num_groups, 0);
  std::vector<int64_t> cell_size(num_cells, 0);
  for (size_t i = 0; i < table.num_rows(); ++i) {
    ++group_size[gid[i]];
    ++cell_size[cid[i]];
  }
  int64_t violations = 0;
  for (int64_t g : group_size) violations += PairsOf(g);
  for (int64_t c : cell_size) violations -= PairsOf(c);
  return violations;
}

/// O(1)-per-candidate index for FD-shaped DCs.
class FdViolationIndex : public ViolationIndex {
 public:
  FdViolationIndex(std::vector<size_t> lhs, size_t rhs)
      : lhs_(std::move(lhs)), rhs_(rhs) {}

  int64_t CountNew(const Row& row) const override {
    auto it = groups_.find(KeyOf(row));
    if (it == groups_.end()) return 0;
    const GroupStats& g = it->second;
    auto same = g.rhs_counts.find(row[rhs_]);
    int64_t matching = same == g.rhs_counts.end() ? 0 : same->second;
    return g.size - matching;
  }

  void AddRow(const Row& row) override {
    GroupStats& g = groups_[KeyOf(row)];
    ++g.size;
    ++g.rhs_counts[row[rhs_]];
    ++num_rows_;
  }

  void Merge(const ViolationIndex& other) override {
    const auto* peer = dynamic_cast<const FdViolationIndex*>(&other);
    KAMINO_CHECK(peer != nullptr) << "Merge across index types";
    for (const auto& [key, stats] : peer->groups_) {
      GroupStats& g = groups_[key];
      g.size += stats.size;
      for (const auto& [value, count] : stats.rhs_counts) {
        g.rhs_counts[value] += count;
      }
    }
    num_rows_ += peer->num_rows_;
  }

  int64_t CountAgainst(const ViolationIndex& other) const override {
    const auto* peer = dynamic_cast<const FdViolationIndex*>(&other);
    KAMINO_CHECK(peer != nullptr) << "CountAgainst across index types";
    // Cross pairs of a shared LHS group violate unless both sides carry the
    // same RHS value: |A| * |B| - sum_v cA(v) * cB(v).
    int64_t violations = 0;
    for (const auto& [key, stats] : groups_) {
      auto it = peer->groups_.find(key);
      if (it == peer->groups_.end()) continue;
      int64_t same = 0;
      for (const auto& [value, count] : stats.rhs_counts) {
        auto jt = it->second.rhs_counts.find(value);
        if (jt != it->second.rhs_counts.end()) same += count * jt->second;
      }
      violations += stats.size * it->second.size - same;
    }
    return violations;
  }

  std::optional<Value> FdForcedValue(const Row& row) const override {
    auto it = groups_.find(KeyOf(row));
    if (it == groups_.end() || it->second.rhs_counts.empty()) {
      return std::nullopt;
    }
    // Report the majority RHS value of the group (in a violation-free
    // instance the group has exactly one value). Equal counts tie-break
    // toward the smallest value under the Value ordering — never toward
    // unordered_map iteration order, which differs across standard-library
    // implementations and would make forced-value repair non-portable.
    const auto& counts = it->second.rhs_counts;
    auto best = counts.begin();
    for (auto jt = counts.begin(); jt != counts.end(); ++jt) {
      if (jt->second > best->second ||
          (jt->second == best->second &&
           EvalCompare(jt->first, CompareOp::kLt, best->first))) {
        best = jt;
      }
    }
    return best->first;
  }

  size_t size() const override { return num_rows_; }

 private:
  struct GroupStats {
    int64_t size = 0;
    std::unordered_map<Value, int64_t, ValueHash> rhs_counts;
  };

  FdKey KeyOf(const Row& row) const { return RowKey(row, lhs_); }

  std::vector<size_t> lhs_;
  size_t rhs_;
  size_t num_rows_ = 0;
  std::unordered_map<FdKey, GroupStats, FdKeyHash> groups_;
};

/// Unary DCs need no stored state: a tuple either violates or not.
class UnaryViolationIndex : public ViolationIndex {
 public:
  explicit UnaryViolationIndex(const DenialConstraint& dc) : dc_(dc) {}

  int64_t CountNew(const Row& row) const override {
    return dc_.ViolatesUnary(row) ? 1 : 0;
  }

  void AddRow(const Row& row) override {
    (void)row;
    ++num_rows_;
  }

  void Merge(const ViolationIndex& other) override {
    KAMINO_CHECK(dynamic_cast<const UnaryViolationIndex*>(&other) != nullptr)
        << "Merge across index types";
    num_rows_ += other.size();
  }

  int64_t CountAgainst(const ViolationIndex& other) const override {
    (void)other;
    return 0;  // unary DCs have no pairwise violations
  }

  size_t size() const override { return num_rows_; }

 private:
  DenialConstraint dc_;
  size_t num_rows_ = 0;
};

/// Fallback for general binary DCs: scans every committed row. The scan
/// only materializes the attributes mentioned by the DC to keep the rows
/// compact is unnecessary here since rows are shared; we store copies.
class NaiveViolationIndex : public ViolationIndex {
 public:
  explicit NaiveViolationIndex(const DenialConstraint& dc) : dc_(dc) {}

  int64_t CountNew(const Row& row) const override {
    int64_t count = 0;
    for (const Row& old : rows_) {
      if (dc_.ViolatesPair(row, old)) ++count;
    }
    return count;
  }

  void AddRow(const Row& row) override { rows_.push_back(row); }

  void Merge(const ViolationIndex& other) override {
    const auto* peer = dynamic_cast<const NaiveViolationIndex*>(&other);
    KAMINO_CHECK(peer != nullptr) << "Merge across index types";
    rows_.insert(rows_.end(), peer->rows_.begin(), peer->rows_.end());
  }

  int64_t CountAgainst(const ViolationIndex& other) const override {
    const auto* peer = dynamic_cast<const NaiveViolationIndex*>(&other);
    KAMINO_CHECK(peer != nullptr) << "CountAgainst across index types";
    // Each unordered cross pair appears exactly once (one row per side).
    int64_t count = 0;
    for (const Row& a : rows_) {
      for (const Row& b : peer->rows_) {
        if (dc_.ViolatesPair(a, b)) ++count;
      }
    }
    return count;
  }

  size_t size() const override { return rows_.size(); }

 private:
  DenialConstraint dc_;
  std::vector<Row> rows_;
};

// ---------------------------------------------------------------------------
// Sorted order-DC engine.
//
// A DC matching `AsGroupedOrderPair` partitions the instance into equality
// groups, and within a group an unordered pair violates exactly when it is
// a strict *inversion* between the context axis X and the oriented
// dependent axis Y' (GroupedOrderSpec::OrientedKey folds the co- and
// anti-monotone forms into one geometry; ties on either axis never
// violate). Everything below counts inversions with rank queries instead
// of pair enumeration.
// ---------------------------------------------------------------------------

/// Fenwick (binary indexed) tree counting points by rank.
class Fenwick {
 public:
  explicit Fenwick(size_t num_ranks) : tree_(num_ranks + 1, 0) {}

  void Add(size_t rank) {
    for (size_t i = rank + 1; i < tree_.size(); i += i & (~i + 1)) {
      ++tree_[i];
    }
    ++total_;
  }

  /// Number of added points with rank < `rank`.
  int64_t CountBelowRank(size_t rank) const {
    int64_t sum = 0;
    for (size_t i = rank; i > 0; i -= i & (~i + 1)) sum += tree_[i];
    return sum;
  }

  int64_t total() const { return total_; }

 private:
  std::vector<int64_t> tree_;
  int64_t total_ = 0;
};

/// Rank of `key` in the sorted-unique universe `keys` (lower bound).
size_t RankOf(const std::vector<double>& keys, double key) {
  return static_cast<size_t>(
      std::lower_bound(keys.begin(), keys.end(), key) - keys.begin());
}

/// Added points with key strictly above `key`.
int64_t CountAbove(const Fenwick& bit, const std::vector<double>& keys,
                   double key) {
  const size_t upper = static_cast<size_t>(
      std::upper_bound(keys.begin(), keys.end(), key) - keys.begin());
  return bit.total() - bit.CountBelowRank(upper);
}

/// One row of a grouped order DC, reduced to its two sort keys.
struct OrderPoint {
  double x = 0.0;  // context key
  double y = 0.0;  // oriented dependent key
  size_t row = 0;  // source row (used by the matrix column pass)
};

bool OrderPointByX(const OrderPoint& a, const OrderPoint& b) {
  return a.x < b.x;
}

/// Sorted-unique oriented-y universe of a point set.
std::vector<double> YUniverse(const std::vector<OrderPoint>& points) {
  std::vector<double> keys;
  keys.reserve(points.size());
  for (const OrderPoint& p : points) keys.push_back(p.y);
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

/// Boxed-key fallback of `GroupOrderPoints` for group columns with NaN.
std::vector<std::vector<OrderPoint>> GroupOrderPointsRowKeyed(
    const GroupedOrderSpec& spec, const Table& table) {
  std::unordered_map<FdKey, std::vector<OrderPoint>, FdKeyHash> by_group;
  for (size_t i = 0; i < table.num_rows(); ++i) {
    const Row& row = table.row(i);
    by_group[RowKey(row, spec.group_attrs)].push_back(
        {spec.ContextKey(row[spec.x_attr]), spec.OrientedKey(row[spec.y_attr]),
         i});
  }
  std::vector<std::vector<OrderPoint>> groups;
  groups.reserve(by_group.size());
  for (auto& [key, points] : by_group) {
    std::sort(points.begin(), points.end(), OrderPointByX);
    groups.push_back(std::move(points));
  }
  return groups;
}

/// Partitions `table` into the DC's equality groups, each an x-sorted
/// point vector. Grouping runs on packed column words and the sort keys
/// come straight from the typed x/y arrays; group order in the result is
/// first-occurrence (consumers only sum per-group counts, so the order is
/// immaterial).
std::vector<std::vector<OrderPoint>> GroupOrderPoints(
    const GroupedOrderSpec& spec, const Table& table) {
  std::optional<PackedKeyColumns> keys =
      PackedKeyColumns::Build(table, spec.group_attrs);
  if (!keys.has_value()) return GroupOrderPointsRowKeyed(spec, table);
  const size_t n = table.num_rows();
  size_t num_groups = 0;
  const std::vector<uint32_t> gid = PackedGroupIds(*keys, &num_groups);
  std::vector<double> x_scratch, y_scratch;
  const double* xs = OrderKeySpan(table, spec.x_attr, &x_scratch);
  const double* ys = OrderKeySpan(table, spec.y_attr, &y_scratch);
  std::vector<size_t> sizes(num_groups, 0);
  for (size_t i = 0; i < n; ++i) ++sizes[gid[i]];
  std::vector<std::vector<OrderPoint>> groups(num_groups);
  for (size_t g = 0; g < num_groups; ++g) groups[g].reserve(sizes[g]);
  for (size_t i = 0; i < n; ++i) {
    const double oriented = spec.co_monotone ? ys[i] : -ys[i];
    groups[gid[i]].push_back({xs[i], oriented, i});
  }
  for (auto& points : groups) {
    std::sort(points.begin(), points.end(), OrderPointByX);
  }
  return groups;
}

/// The one Fenwick sweep every order count is built from: walk an
/// x-sorted group in ascending x, and for each point emit the number of
/// already-seen points (strictly smaller x — equal-x batches insert after
/// querying, so x ties never count) with strictly larger oriented y.
/// `keys` is the group's sorted-unique y universe.
template <typename Emit>
void AscendingInversionSweep(const std::vector<OrderPoint>& points,
                             const std::vector<double>& keys,
                             const Emit& emit) {
  Fenwick bit(keys.size());
  for (size_t i = 0; i < points.size();) {
    size_t j = i;
    while (j < points.size() && points[j].x == points[i].x) ++j;
    for (size_t k = i; k < j; ++k) {
      emit(points[k], CountAbove(bit, keys, points[k].y));
    }
    for (size_t k = i; k < j; ++k) bit.Add(RankOf(keys, points[k].y));
    i = j;
  }
}

/// Inversions within one x-sorted group: every violating pair is counted
/// exactly once, at its larger-x member.
int64_t GroupInversions(const std::vector<OrderPoint>& points) {
  int64_t count = 0;
  AscendingInversionSweep(points, YUniverse(points),
                          [&](const OrderPoint&, int64_t c) { count += c; });
  return count;
}

/// O(n log n) violation count of a grouped order DC over a table.
int64_t CountOrderViolations(const GroupedOrderSpec& spec,
                             const Table& table) {
  int64_t count = 0;
  for (const auto& points : GroupOrderPoints(spec, table)) {
    count += GroupInversions(points);
  }
  return count;
}

/// Per-row inversion counts of a grouped order DC (the DC's column of the
/// violation matrix): two Fenwick passes per group — ascending x counts
/// each row's partners with smaller x and larger y', descending x counts
/// partners with larger x and smaller y'. Exact
/// integers, so the column is bit-identical to the pair scan.
void OrderViolationColumn(const GroupedOrderSpec& spec, const Table& table,
                          std::vector<int64_t>* column) {
  column->assign(table.num_rows(), 0);
  for (const auto& points : GroupOrderPoints(spec, table)) {
    const std::vector<double> keys = YUniverse(points);
    auto into_column = [&](const OrderPoint& p, int64_t count) {
      (*column)[p.row] += count;
    };
    // Pass 1 (ascending x): partners with x_j < x_i and y_j > y_i.
    AscendingInversionSweep(points, keys, into_column);
    // Pass 2: partners with x_j > x_i and y_j < y_i — the same sweep on
    // the point-reflected group (both axes negated, order reversed so the
    // reflection is x-sorted again; "seen with larger -y" = smaller y).
    std::vector<OrderPoint> reflected(points.rbegin(), points.rend());
    for (OrderPoint& p : reflected) {
      p.x = -p.x;
      p.y = -p.y;
    }
    std::vector<double> reflected_keys(keys.rbegin(), keys.rend());
    for (double& k : reflected_keys) k = -k;
    AscendingInversionSweep(reflected, reflected_keys, into_column);
  }
}

/// Incremental index for (equality-scoped) order DCs, replacing the
/// O(prefix) pair probe of NaiveViolationIndex for this DC class.
///
/// Per equality group the committed rows live in an x-sorted list of
/// blocks of ~2*sqrt(m) rows, each block carrying its oriented-y values
/// both in x order and sorted. `CountNew` resolves whole blocks strictly
/// left/right of the candidate's x with one binary search each (the rows
/// above/below the candidate's y), and scans only the <= 2 blocks the
/// candidate's x falls into — O(sqrt(m) * log) per candidate instead of
/// O(m). `Merge` rebuilds each group from the two x-sorted sequences in
/// linear-log time, and `CountAgainst` runs a merged ascending-x sweep
/// with one Fenwick tree per side, O((m_a + m_b) log) per group. All
/// counts are exact integers: the index is output-indistinguishable from
/// the naive probe.
class OrderViolationIndex : public ViolationIndex {
 public:
  explicit OrderViolationIndex(GroupedOrderSpec spec)
      : spec_(std::move(spec)) {}

  int64_t CountNew(const Row& row) const override {
    auto it = groups_.find(KeyOf(row));
    if (it == groups_.end()) return 0;
    const double x = spec_.ContextKey(row[spec_.x_attr]);
    const double y = spec_.OrientedKey(row[spec_.y_attr]);
    int64_t count = 0;
    for (const Block& b : it->second.blocks) {
      if (b.xs.back() < x) {
        // Entirely left of the candidate in x: its rows with larger
        // oriented y are inversions.
        count += b.ys_sorted.end() -
                 std::upper_bound(b.ys_sorted.begin(), b.ys_sorted.end(), y);
      } else if (b.xs.front() > x) {
        count += std::lower_bound(b.ys_sorted.begin(), b.ys_sorted.end(), y) -
                 b.ys_sorted.begin();
      } else if (b.xs.front() == x && b.xs.back() == x) {
        // x ties never violate a strict order predicate.
      } else {
        // A block straddling the candidate's x (at most two per query):
        // test its rows individually.
        for (size_t k = 0; k < b.xs.size(); ++k) {
          if ((b.xs[k] < x && b.ys[k] > y) || (b.xs[k] > x && b.ys[k] < y)) {
            ++count;
          }
        }
      }
    }
    return count;
  }

  void AddRow(const Row& row) override {
    groups_[KeyOf(row)].Insert(spec_.ContextKey(row[spec_.x_attr]),
                               spec_.OrientedKey(row[spec_.y_attr]));
    ++num_rows_;
  }

  void Merge(const ViolationIndex& other) override {
    const auto* peer = dynamic_cast<const OrderViolationIndex*>(&other);
    KAMINO_CHECK(peer != nullptr) << "Merge across index types";
    for (const auto& [key, group] : peer->groups_) {
      Group& mine = groups_[key];
      mine = Group::MergeSorted(mine, group);
    }
    num_rows_ += peer->num_rows_;
  }

  int64_t CountAgainst(const ViolationIndex& other) const override {
    const auto* peer = dynamic_cast<const OrderViolationIndex*>(&other);
    KAMINO_CHECK(peer != nullptr) << "CountAgainst across index types";
    int64_t count = 0;
    for (const auto& [key, group] : groups_) {
      auto it = peer->groups_.find(key);
      if (it == peer->groups_.end()) continue;
      count += CrossInversions(group, it->second);
    }
    return count;
  }

  size_t size() const override { return num_rows_; }

 private:
  /// One x-sorted run of committed rows: xs ascending, ys aligned with xs,
  /// ys_sorted an independently sorted copy for the rank queries.
  struct Block {
    std::vector<double> xs;
    std::vector<double> ys;
    std::vector<double> ys_sorted;
  };

  /// The block list of one equality group, globally sorted by x.
  struct Group {
    std::vector<Block> blocks;
    size_t size = 0;

    /// Block capacity ~2*sqrt(m) (power of two, floor 64): queries touch
    /// O(m / cap) blocks plus O(cap) straddled rows, balanced at sqrt.
    static size_t BlockCap(size_t m) {
      size_t cap = 64;
      while (cap * cap < 4 * m) cap *= 2;
      return cap;
    }

    void Insert(double x, double y) {
      ++size;
      if (blocks.empty()) {
        blocks.push_back(Block{{x}, {y}, {y}});
        return;
      }
      // The last block starting at or before x (the first block when x
      // precedes them all).
      auto it = std::upper_bound(
          blocks.begin(), blocks.end(), x,
          [](double v, const Block& b) { return v < b.xs.front(); });
      const size_t idx =
          it == blocks.begin()
              ? 0
              : static_cast<size_t>(it - blocks.begin()) - 1;
      Block& b = blocks[idx];
      const size_t pos = static_cast<size_t>(
          std::upper_bound(b.xs.begin(), b.xs.end(), x) - b.xs.begin());
      b.xs.insert(b.xs.begin() + pos, x);
      b.ys.insert(b.ys.begin() + pos, y);
      b.ys_sorted.insert(
          std::upper_bound(b.ys_sorted.begin(), b.ys_sorted.end(), y), y);
      if (b.xs.size() > BlockCap(size)) Split(idx);
    }

    void Split(size_t idx) {
      Block& left = blocks[idx];
      const size_t half = left.xs.size() / 2;
      Block right;
      right.xs.assign(left.xs.begin() + half, left.xs.end());
      right.ys.assign(left.ys.begin() + half, left.ys.end());
      left.xs.resize(half);
      left.ys.resize(half);
      right.ys_sorted = right.ys;
      std::sort(right.ys_sorted.begin(), right.ys_sorted.end());
      left.ys_sorted = left.ys;
      std::sort(left.ys_sorted.begin(), left.ys_sorted.end());
      blocks.insert(blocks.begin() + idx + 1, std::move(right));
    }

    /// Flattens the blocks back into one x-ascending (x, y) sequence.
    void Flatten(std::vector<double>* xs, std::vector<double>* ys) const {
      xs->reserve(size);
      ys->reserve(size);
      for (const Block& b : blocks) {
        xs->insert(xs->end(), b.xs.begin(), b.xs.end());
        ys->insert(ys->end(), b.ys.begin(), b.ys.end());
      }
    }

    /// Rebuilds a group from two groups' x-sorted sequences (linear merge,
    /// then even re-blocking at the merged size's capacity).
    static Group MergeSorted(const Group& a, const Group& b) {
      std::vector<double> ax, ay, bx, by;
      a.Flatten(&ax, &ay);
      b.Flatten(&bx, &by);
      Group out;
      out.size = a.size + b.size;
      const size_t chunk = BlockCap(out.size) / 2;
      size_t i = 0, j = 0;
      Block current;
      auto flush = [&] {
        if (current.xs.empty()) return;
        current.ys_sorted = current.ys;
        std::sort(current.ys_sorted.begin(), current.ys_sorted.end());
        out.blocks.push_back(std::move(current));
        current = Block();
      };
      while (i < ax.size() || j < bx.size()) {
        const bool take_a = j >= bx.size() || (i < ax.size() && ax[i] <= bx[j]);
        current.xs.push_back(take_a ? ax[i] : bx[j]);
        current.ys.push_back(take_a ? ay[i] : by[j]);
        take_a ? ++i : ++j;
        if (current.xs.size() >= chunk) flush();
      }
      flush();
      return out;
    }
  };

  /// Cross inversions between two groups of the same key: one merged
  /// ascending-x sweep; each side queries the *other* side's already-seen
  /// rows, so every cross pair with strictly different x is counted
  /// exactly once (at its larger-x member) and equal-x batches insert
  /// after querying.
  static int64_t CrossInversions(const Group& a, const Group& b) {
    std::vector<double> ax, ay, bx, by;
    a.Flatten(&ax, &ay);
    b.Flatten(&bx, &by);
    std::vector<double> keys;
    keys.reserve(ay.size() + by.size());
    keys.insert(keys.end(), ay.begin(), ay.end());
    keys.insert(keys.end(), by.begin(), by.end());
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    Fenwick seen_a(keys.size());
    Fenwick seen_b(keys.size());
    int64_t count = 0;
    size_t i = 0, j = 0;
    while (i < ax.size() || j < bx.size()) {
      const double x = (j >= bx.size() || (i < ax.size() && ax[i] <= bx[j]))
                           ? ax[i]
                           : bx[j];
      const size_t i0 = i, j0 = j;
      for (; i < ax.size() && ax[i] == x; ++i) {
        count += CountAbove(seen_b, keys, ay[i]);
      }
      for (; j < bx.size() && bx[j] == x; ++j) {
        count += CountAbove(seen_a, keys, by[j]);
      }
      for (size_t k = i0; k < i; ++k) seen_a.Add(RankOf(keys, ay[k]));
      for (size_t k = j0; k < j; ++k) seen_b.Add(RankOf(keys, by[k]));
    }
    return count;
  }

  FdKey KeyOf(const Row& row) const {
    return RowKey(row, spec_.group_attrs);
  }

  GroupedOrderSpec spec_;
  size_t num_rows_ = 0;
  std::unordered_map<FdKey, Group, FdKeyHash> groups_;
};

// ---------------------------------------------------------------------------
// Composite engine for decomposed binary DCs.
//
// `DenialConstraint::Decompose` reduces a DC to (equality scope) x
// (inequation residuals + at most one order residual pair). The engine
// expands that into a *signed term plan*: inclusion–exclusion over the
// inequation subsets ("equality minus diagonal") turns every count into a
// signed sum of two primitive block kinds — hash-group counts of pairs
// agreeing on a key, and strict-inversion counts within key groups (the
// GroupedOrderSpec geometry above). All blocks are exact integer counters,
// so every composite count is bit-identical to the naive pair scan.
// ---------------------------------------------------------------------------

/// One signed term of the composite plan: a scope block (pairs agreeing
/// on `key_attrs`) or an order block (strict inversions in the
/// `order.group_attrs` groups).
struct CompositeTerm {
  int sign = 1;
  bool is_order = false;
  std::vector<size_t> key_attrs;  // scope-block key (is_order == false)
  GroupedOrderSpec order;         // order-block geometry (is_order == true)
};

/// Expands a `kComposite` decomposition into its signed term plan.
///
/// Within an equality-scope group, write delta_A = sign of (first row's A
/// minus second row's A) for a pair bound in a fixed orientation. The
/// pair violates when some orientation sign s in {+1, -1} satisfies every
/// residual: every inequation attr has delta != 0, and every order
/// residual with direction d has delta = s*d (strict) or delta in
/// {0, s*d} (non-strict). Inequations are eliminated first by
/// inclusion–exclusion over the subsets S of `ne_attrs`, each term
/// extending the scope key by S with sign (-1)^|S|. The remaining order
/// geometry has three cases (with r = d_x * d_y the direction product):
///  - two strict: violation iff delta_y = r * delta_x != 0 — the pair
///    strictly co-moves (r = +1) or strictly anti-moves (r = -1): one
///    order block with co_monotone = (r == -1).
///  - strict x + non-strict y: s is forced by x, so violation iff
///    delta_x != 0 and (delta_y = 0 or delta_y = r * delta_x):
///    agree(key + y) - agree(key + x + y) plus one order block with
///    co_monotone = (r == -1).
///  - two non-strict: some orientation works unless both deltas are
///    nonzero with delta_y = -r * delta_x: agree(key) minus one order
///    block with co_monotone = (r == +1).
std::vector<CompositeTerm> CompositeTermPlan(const PredicateDecomposition& d) {
  std::vector<CompositeTerm> plan;
  auto key_with = [&d](size_t mask, std::initializer_list<size_t> extra) {
    std::vector<size_t> key = d.scope_attrs;
    for (size_t i = 0; i < d.ne_attrs.size(); ++i) {
      if ((mask >> i) & 1) key.push_back(d.ne_attrs[i]);
    }
    key.insert(key.end(), extra);
    std::sort(key.begin(), key.end());
    return key;
  };
  auto scope_term = [&plan](int sign, std::vector<size_t> key) {
    CompositeTerm t;
    t.sign = sign;
    t.key_attrs = std::move(key);
    plan.push_back(std::move(t));
  };
  auto order_term = [&plan](int sign, std::vector<size_t> key, size_t x,
                            size_t y, bool co_monotone) {
    CompositeTerm t;
    t.sign = sign;
    t.is_order = true;
    t.order.group_attrs = std::move(key);
    t.order.x_attr = x;
    t.order.y_attr = y;
    t.order.co_monotone = co_monotone;
    plan.push_back(std::move(t));
  };
  const size_t subsets = size_t{1} << d.ne_attrs.size();
  for (size_t mask = 0; mask < subsets; ++mask) {
    int bits = 0;
    for (size_t i = 0; i < d.ne_attrs.size(); ++i) bits += (mask >> i) & 1;
    const int sign = bits % 2 == 0 ? 1 : -1;
    if (d.order_residuals.empty()) {
      scope_term(sign, key_with(mask, {}));
      continue;
    }
    const OrderResidual& o0 = d.order_residuals[0];
    const OrderResidual& o1 = d.order_residuals[1];
    const int r = o0.direction * o1.direction;
    const bool strict0 = o0.kind == ResidualKind::kStrictOrder;
    const bool strict1 = o1.kind == ResidualKind::kStrictOrder;
    if (strict0 && strict1) {
      order_term(sign, key_with(mask, {}), o0.attr, o1.attr, r == -1);
    } else if (!strict0 && !strict1) {
      scope_term(sign, key_with(mask, {}));
      order_term(-sign, key_with(mask, {}), o0.attr, o1.attr, r == 1);
    } else {
      const OrderResidual& hard = strict0 ? o0 : o1;
      const OrderResidual& soft = strict0 ? o1 : o0;
      scope_term(sign, key_with(mask, {soft.attr}));
      scope_term(-sign, key_with(mask, {hard.attr, soft.attr}));
      order_term(sign, key_with(mask, {}), hard.attr, soft.attr, r == -1);
    }
  }
  return plan;
}

/// Hash-group block of the composite engine: `CountNew` is the number of
/// committed rows agreeing with the probe on `key_attrs` (the whole
/// prefix for an empty key), `CountAgainst` the cross pairs sharing a
/// key.
class ScopeCountIndex : public ViolationIndex {
 public:
  explicit ScopeCountIndex(std::vector<size_t> key_attrs)
      : key_attrs_(std::move(key_attrs)) {}

  int64_t CountNew(const Row& row) const override {
    auto it = counts_.find(KeyOf(row));
    return it == counts_.end() ? 0 : it->second;
  }

  void AddRow(const Row& row) override {
    ++counts_[KeyOf(row)];
    ++num_rows_;
  }

  void Merge(const ViolationIndex& other) override {
    const auto* peer = dynamic_cast<const ScopeCountIndex*>(&other);
    KAMINO_CHECK(peer != nullptr) << "Merge across index types";
    for (const auto& [key, count] : peer->counts_) counts_[key] += count;
    num_rows_ += peer->num_rows_;
  }

  int64_t CountAgainst(const ViolationIndex& other) const override {
    const auto* peer = dynamic_cast<const ScopeCountIndex*>(&other);
    KAMINO_CHECK(peer != nullptr) << "CountAgainst across index types";
    int64_t count = 0;
    for (const auto& [key, mine] : counts_) {
      auto it = peer->counts_.find(key);
      if (it != peer->counts_.end()) count += mine * it->second;
    }
    return count;
  }

  size_t size() const override { return num_rows_; }

 private:
  FdKey KeyOf(const Row& row) const { return RowKey(row, key_attrs_); }

  std::vector<size_t> key_attrs_;
  size_t num_rows_ = 0;
  std::unordered_map<FdKey, int64_t, FdKeyHash> counts_;
};

/// Index for DCs whose decomposed conjunction is unsatisfiable
/// (Shape::kNeverFires): nothing ever violates, only the row count is
/// tracked.
class NeverViolationIndex : public ViolationIndex {
 public:
  int64_t CountNew(const Row& row) const override {
    (void)row;
    return 0;
  }

  void AddRow(const Row& row) override {
    (void)row;
    ++num_rows_;
  }

  void Merge(const ViolationIndex& other) override {
    KAMINO_CHECK(dynamic_cast<const NeverViolationIndex*>(&other) != nullptr)
        << "Merge across index types";
    num_rows_ += other.size();
  }

  int64_t CountAgainst(const ViolationIndex& other) const override {
    (void)other;
    return 0;
  }

  size_t size() const override { return num_rows_; }

 private:
  size_t num_rows_ = 0;
};

/// Incremental index for composite (mixed-shape) binary DCs: the signed
/// sum of scope/order blocks per the inclusion–exclusion term plan.
/// `CountNew`/`CountAgainst` sum the blocks' counts with their signs —
/// individual terms may over-count, but the signed total is exactly the
/// unordered violating-pair count, bit-identical to the naive probe —
/// and `AddRow`/`Merge` feed every block.
class CompositeViolationIndex : public ViolationIndex {
 public:
  explicit CompositeViolationIndex(const PredicateDecomposition& d) {
    for (CompositeTerm& t : CompositeTermPlan(d)) {
      signs_.push_back(t.sign);
      if (t.is_order) {
        blocks_.push_back(
            std::make_unique<OrderViolationIndex>(std::move(t.order)));
      } else {
        blocks_.push_back(
            std::make_unique<ScopeCountIndex>(std::move(t.key_attrs)));
      }
    }
  }

  int64_t CountNew(const Row& row) const override {
    int64_t count = 0;
    for (size_t i = 0; i < blocks_.size(); ++i) {
      count += signs_[i] * blocks_[i]->CountNew(row);
    }
    return count;
  }

  void AddRow(const Row& row) override {
    for (auto& block : blocks_) block->AddRow(row);
    ++num_rows_;
  }

  void Merge(const ViolationIndex& other) override {
    const auto* peer = dynamic_cast<const CompositeViolationIndex*>(&other);
    KAMINO_CHECK(peer != nullptr) << "Merge across index types";
    KAMINO_CHECK(peer->blocks_.size() == blocks_.size())
        << "Merge across different composite plans";
    for (size_t i = 0; i < blocks_.size(); ++i) {
      blocks_[i]->Merge(*peer->blocks_[i]);
    }
    num_rows_ += peer->num_rows_;
  }

  int64_t CountAgainst(const ViolationIndex& other) const override {
    const auto* peer = dynamic_cast<const CompositeViolationIndex*>(&other);
    KAMINO_CHECK(peer != nullptr) << "CountAgainst across index types";
    KAMINO_CHECK(peer->blocks_.size() == blocks_.size())
        << "CountAgainst across different composite plans";
    int64_t count = 0;
    for (size_t i = 0; i < blocks_.size(); ++i) {
      count += signs_[i] * blocks_[i]->CountAgainst(*peer->blocks_[i]);
    }
    return count;
  }

  size_t size() const override { return num_rows_; }

 private:
  std::vector<int> signs_;
  std::vector<std::unique_ptr<ViolationIndex>> blocks_;
  size_t num_rows_ = 0;
};

/// Pairs agreeing on `key_attrs` (all pairs for an empty key): the
/// offline form of a scope block. Grouping runs on packed column words,
/// falling back to boxed keys when a key column holds NaN.
int64_t CountScopedPairs(const std::vector<size_t>& key_attrs,
                         const Table& table) {
  std::optional<PackedKeyColumns> keys =
      PackedKeyColumns::Build(table, key_attrs);
  if (keys.has_value()) {
    size_t num_groups = 0;
    const std::vector<uint32_t> gid = PackedGroupIds(*keys, &num_groups);
    std::vector<int64_t> group_size(num_groups, 0);
    for (uint32_t g : gid) ++group_size[g];
    int64_t pairs = 0;
    for (int64_t g : group_size) pairs += PairsOf(g);
    return pairs;
  }
  std::unordered_map<FdKey, int64_t, FdKeyHash> counts;
  for (size_t i = 0; i < table.num_rows(); ++i) {
    ++counts[RowKey(table.row(i), key_attrs)];
  }
  int64_t pairs = 0;
  for (const auto& [key, count] : counts) pairs += PairsOf(count);
  return pairs;
}

/// O(2^k * n log n) full violation count of a composite DC.
int64_t CountCompositeViolations(const PredicateDecomposition& d,
                                 const Table& table) {
  int64_t total = 0;
  for (const CompositeTerm& t : CompositeTermPlan(d)) {
    total += t.sign * (t.is_order ? CountOrderViolations(t.order, table)
                                  : CountScopedPairs(t.key_attrs, table));
  }
  return total;
}

/// Per-row violation counts of a composite DC (its column of the
/// violation matrix): signed per-term columns — group size minus one
/// (the row itself) for scope terms, the two-pass Fenwick sweep for
/// order terms. Exact integers throughout.
void CompositeViolationColumn(const PredicateDecomposition& d,
                              const Table& table,
                              std::vector<int64_t>* column) {
  const size_t n = table.num_rows();
  column->assign(n, 0);
  std::vector<int64_t> term_column;
  for (const CompositeTerm& t : CompositeTermPlan(d)) {
    if (t.is_order) {
      OrderViolationColumn(t.order, table, &term_column);
      for (size_t i = 0; i < n; ++i) {
        (*column)[i] += t.sign * term_column[i];
      }
      continue;
    }
    // Scope term: each row contributes its group size minus itself.
    std::optional<PackedKeyColumns> keys =
        PackedKeyColumns::Build(table, t.key_attrs);
    if (keys.has_value()) {
      size_t num_groups = 0;
      const std::vector<uint32_t> gid = PackedGroupIds(*keys, &num_groups);
      std::vector<int64_t> group_size(num_groups, 0);
      for (uint32_t g : gid) ++group_size[g];
      for (size_t i = 0; i < n; ++i) {
        (*column)[i] += t.sign * (group_size[gid[i]] - 1);
      }
      continue;
    }
    std::unordered_map<FdKey, int64_t, FdKeyHash> counts;
    for (size_t i = 0; i < n; ++i) ++counts[RowKey(table.row(i), t.key_attrs)];
    for (size_t i = 0; i < n; ++i) {
      (*column)[i] += t.sign * (counts[RowKey(table.row(i), t.key_attrs)] - 1);
    }
  }
}

}  // namespace

int64_t PairsOf(int64_t m) {
  if (m < 2) return 0;
  // Halve the even factor before multiplying: m * (m - 1) would overflow
  // int64 from m ~ 3.04e9 even though the pair count still fits.
  KAMINO_CHECK(m <= (int64_t{1} << 32))
      << "pair count exceeds int64; use PairsOfDouble";
  return (m % 2 == 0) ? (m / 2) * (m - 1) : m * ((m - 1) / 2);
}

double PairsOfDouble(int64_t m) {
  if (m < 2) return 0.0;
  // Deliberately double: exact until the count passes 2^53 (m > ~1.3e8),
  // approximate but overflow-free beyond.
  return 0.5 * static_cast<double>(m) * static_cast<double>(m - 1);
}

int64_t CountViolationsNaive(const DenialConstraint& dc, const Table& table) {
  const size_t n = table.num_rows();
  if (dc.is_unary()) {
    int64_t count = 0;
    for (size_t i = 0; i < n; ++i) {
      if (dc.ViolatesUnaryAt(table, i)) ++count;
    }
    return count;
  }
  // Chunk the outer row of the i < j pair scan; per-chunk counts merge
  // exactly (integer sums), so the total is thread-count independent.
  const size_t num_chunks = n == 0 ? 0 : (n + kPairScanGrain - 1) / kPairScanGrain;
  std::vector<int64_t> partial(num_chunks, 0);
  runtime::ParallelForEach(0, num_chunks, 1, [&](size_t k) {
    const size_t lo = k * kPairScanGrain;
    const size_t hi = std::min(n, lo + kPairScanGrain);
    int64_t count = 0;
    for (size_t i = lo; i < hi; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        if (dc.ViolatesPairRows(table, i, j)) ++count;
      }
    }
    partial[k] = count;
  });
  int64_t total = 0;
  for (int64_t c : partial) total += c;
  return total;
}

int64_t CountViolations(const DenialConstraint& dc, const Table& table) {
  const size_t n = table.num_rows();
  std::vector<size_t> lhs;
  size_t rhs = 0;
  if (dc.AsFd(&lhs, &rhs)) {
    RecordDcMetric("count", "fd", n);
    return CountFdViolations(lhs, rhs, table);
  }
  std::optional<GroupedOrderSpec> order = dc.AsGroupedOrderSpec();
  if (order.has_value()) {
    RecordDcMetric("count", "order", n);
    return CountOrderViolations(*order, table);
  }
  const PredicateDecomposition decomp = dc.Decompose();
  if (decomp.shape == PredicateDecomposition::Shape::kNeverFires) {
    RecordDcMetric("count", "never", n);
    return 0;
  }
  if (decomp.shape == PredicateDecomposition::Shape::kComposite) {
    RecordDcMetric("count", "composite", n);
    return CountCompositeViolations(decomp, table);
  }
  RecordDcMetric("count", "naive", n);
  return CountViolationsNaive(dc, table);
}

double ViolationRatePercent(const DenialConstraint& dc, const Table& table) {
  const int64_t n = static_cast<int64_t>(table.num_rows());
  if (n == 0) return 0.0;
  const int64_t violations = CountViolations(dc, table);
  const double denom =
      dc.is_unary() ? static_cast<double>(n) : PairsOfDouble(n);
  if (denom <= 0) return 0.0;
  return 100.0 * static_cast<double>(violations) / denom;
}

int64_t CountNewViolations(const DenialConstraint& dc, const Row& row,
                           const Table& table, size_t prefix_len) {
  if (dc.is_unary()) return dc.ViolatesUnary(row) ? 1 : 0;
  KAMINO_CHECK(prefix_len <= table.num_rows());
  int64_t count = 0;
  for (size_t j = 0; j < prefix_len; ++j) {
    if (dc.ViolatesPairAt(row, table, j)) ++count;
  }
  return count;
}

std::vector<std::vector<double>> BuildViolationMatrix(
    const Table& table, const std::vector<WeightedConstraint>& constraints) {
  const size_t n = table.num_rows();
  std::vector<std::vector<double>> matrix(
      n, std::vector<double>(constraints.size(), 0.0));
  for (size_t l = 0; l < constraints.size(); ++l) {
    const DenialConstraint& dc = constraints[l].dc;
    if (dc.is_unary()) {
      runtime::ParallelForEach(0, n, kPairScanGrain, [&](size_t i) {
        matrix[i][l] = dc.ViolatesUnaryAt(table, i) ? 1.0 : 0.0;
      });
      continue;
    }
    std::vector<size_t> fd_lhs;
    size_t fd_rhs = 0;
    if (dc.AsFd(&fd_lhs, &fd_rhs)) {
      // Equality-only (FD-shaped) DC: hash-partition instead of the O(n^2)
      // pair scan. Each row's violation count is |LHS group| - |same
      // (LHS, RHS)| — the committed row cancels itself out of both terms.
      // Both groupings run on packed column words (see PackedKeyColumns);
      // exact integer counts, so the column matches the pair scan bit for
      // bit. NaN in a key column falls back to the boxed FD index.
      std::optional<PackedKeyColumns> lhs_keys =
          PackedKeyColumns::Build(table, fd_lhs);
      std::vector<size_t> both = fd_lhs;
      both.push_back(fd_rhs);
      std::optional<PackedKeyColumns> both_keys =
          PackedKeyColumns::Build(table, both);
      if (lhs_keys.has_value() && both_keys.has_value()) {
        size_t num_groups = 0;
        size_t num_cells = 0;
        const std::vector<uint32_t> gid =
            PackedGroupIds(*lhs_keys, &num_groups);
        const std::vector<uint32_t> cid =
            PackedGroupIds(*both_keys, &num_cells);
        std::vector<int64_t> group_size(num_groups, 0);
        std::vector<int64_t> cell_size(num_cells, 0);
        for (size_t i = 0; i < n; ++i) {
          ++group_size[gid[i]];
          ++cell_size[cid[i]];
        }
        runtime::ParallelForEach(0, n, kPairScanGrain, [&](size_t i) {
          matrix[i][l] =
              static_cast<double>(group_size[gid[i]] - cell_size[cid[i]]);
        });
        continue;
      }
      FdViolationIndex groups(fd_lhs, fd_rhs);
      for (size_t i = 0; i < n; ++i) groups.AddRow(table.row(i));
      runtime::ParallelForEach(0, n, kPairScanGrain, [&](size_t i) {
        matrix[i][l] = static_cast<double>(groups.CountNew(table.row(i)));
      });
      continue;
    }
    std::optional<GroupedOrderSpec> order_spec = dc.AsGroupedOrderSpec();
    if (order_spec.has_value()) {
      // (Equality-scoped) order DC: sorted scan instead of the O(n^2)
      // pair scan — per-row inversion counts via two Fenwick passes per
      // group (O(n log n)), exact integers, so the column matches the
      // pair scan bit for bit.
      std::vector<int64_t> column;
      OrderViolationColumn(*order_spec, table, &column);
      runtime::ParallelForEach(0, n, kPairScanGrain, [&](size_t i) {
        matrix[i][l] = static_cast<double>(column[i]);
      });
      continue;
    }
    const PredicateDecomposition decomp = dc.Decompose();
    if (decomp.shape == PredicateDecomposition::Shape::kNeverFires) {
      continue;  // the conjunction is unsatisfiable: the column is zero
    }
    if (decomp.shape == PredicateDecomposition::Shape::kComposite) {
      // Composite (mixed-shape) binary DC — equality scope, inequation
      // residuals, optional order residual pair: signed hash-group and
      // Fenwick sweeps instead of the O(n^2) pair scan. Exact integers,
      // so the column matches the pair scan bit for bit.
      std::vector<int64_t> column;
      CompositeViolationColumn(decomp, table, &column);
      runtime::ParallelForEach(0, n, kPairScanGrain, [&](size_t i) {
        matrix[i][l] = static_cast<double>(column[i]);
      });
      continue;
    }
    // Each chunk of outer rows scans its i < j pairs into a private column
    // so rows i and j of a violating pair never race, then folds it into
    // the matrix under a lock and frees it — live memory stays bounded by
    // the executor count, not the chunk count. The fold adds exact
    // integers (commutative in doubles), so the matrix is bit-identical
    // at any thread count and merge order. (Chunks shrink in cost as i
    // grows; the grain keeps them numerous enough for the pool to
    // balance.)
    const size_t num_chunks =
        n == 0 ? 0 : (n + kPairScanGrain - 1) / kPairScanGrain;
    std::mutex merge_mu;
    runtime::ParallelForEach(0, num_chunks, 1, [&](size_t k) {
      const size_t lo = k * kPairScanGrain;
      const size_t hi = std::min(n, lo + kPairScanGrain);
      std::vector<double> column(n, 0.0);
      for (size_t i = lo; i < hi; ++i) {
        for (size_t j = i + 1; j < n; ++j) {
          if (dc.ViolatesPairRows(table, i, j)) {
            column[i] += 1.0;
            column[j] += 1.0;
          }
        }
      }
      std::lock_guard<std::mutex> lock(merge_mu);
      for (size_t i = 0; i < n; ++i) {
        if (column[i] != 0.0) matrix[i][l] += column[i];
      }
    });
  }
  return matrix;
}

std::unique_ptr<ViolationIndex> MakeViolationIndex(
    const DenialConstraint& dc) {
  if (dc.is_unary()) {
    RecordDcIndexBuilt("unary");
    return std::make_unique<UnaryViolationIndex>(dc);
  }
  std::vector<size_t> lhs;
  size_t rhs = 0;
  if (dc.AsFd(&lhs, &rhs)) {
    RecordDcIndexBuilt("fd");
    return std::make_unique<FdViolationIndex>(std::move(lhs), rhs);
  }
  std::optional<GroupedOrderSpec> order = dc.AsGroupedOrderSpec();
  if (order.has_value()) {
    RecordDcIndexBuilt("order");
    return std::make_unique<OrderViolationIndex>(std::move(*order));
  }
  const PredicateDecomposition decomp = dc.Decompose();
  using Shape = PredicateDecomposition::Shape;
  if (decomp.shape == Shape::kNeverFires) {
    RecordDcIndexBuilt("never");
    return std::make_unique<NeverViolationIndex>();
  }
  if (decomp.shape == Shape::kComposite) {
    if (decomp.order_residuals.empty() && decomp.ne_attrs.size() == 1) {
      // Normalized FD / pure-inequation shape (e.g. a lone strict order
      // turned inequation, or an FD with no syntactic equality LHS): the
      // FD hash index computes exactly scope minus diagonal — an empty
      // scope key is one global group.
      RecordDcIndexBuilt("fd");
      return std::make_unique<FdViolationIndex>(decomp.scope_attrs,
                                                decomp.ne_attrs[0]);
    }
    // Everything else — including normalized grouped-order shapes the
    // syntactic matcher missed — goes through the composite plan (for a
    // pure two-strict-order shape that plan is a single order block, so
    // the direction-to-co_monotone convention lives in one place).
    RecordDcIndexBuilt("composite");
    return std::make_unique<CompositeViolationIndex>(decomp);
  }
  RecordDcIndexBuilt("naive");
  return std::make_unique<NaiveViolationIndex>(dc);
}

std::unique_ptr<ViolationIndex> MakeNaiveViolationIndex(
    const DenialConstraint& dc) {
  KAMINO_CHECK(!dc.is_unary()) << "naive index is for binary DCs";
  return std::make_unique<NaiveViolationIndex>(dc);
}

}  // namespace kamino
