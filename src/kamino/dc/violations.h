#ifndef KAMINO_DC_VIOLATIONS_H_
#define KAMINO_DC_VIOLATIONS_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "kamino/data/table.h"
#include "kamino/dc/constraint.h"

namespace kamino {

/// C(m, 2), the number of unordered pairs of m rows, as an exact 64-bit
/// count. The even factor is halved *before* the multiply, so there is no
/// intermediate overflow: the result is exact for any m <= 2^32 (above
/// that the pair count itself no longer fits in int64 — checked).
int64_t PairsOf(int64_t m);

/// C(m, 2) in double precision: never overflows, but deliberately
/// approximate once the pair count passes 2^53 (m > ~1.3e8 rows), where
/// doubles stop representing every integer. Rates and telemetry use this
/// form; anything that must stay exact (violation counts, digests) uses
/// the integer `PairsOf`.
double PairsOfDouble(int64_t m);

/// Counts the violations of `dc` over the whole instance:
/// - unary DC: the number of violating tuples;
/// - binary DC: the number of violating *unordered* tuple pairs (a pair
///   violates when either binding orientation fires).
/// Uses the FD grouping fast path for FD-shaped DCs, an O(n log n)
/// sort + Fenwick-tree inversion count for (equality-scoped) order DCs,
/// the inclusion–exclusion composite engine for every other DC whose
/// decomposition is `kComposite` (mixed equality + `!=` + order shapes),
/// zero for `kNeverFires`, and the naive O(n^2) scan otherwise.
int64_t CountViolations(const DenialConstraint& dc, const Table& table);

/// Forces the naive scan (reference implementation; used by tests to check
/// the fast path and by benchmarks to measure the speedup).
int64_t CountViolationsNaive(const DenialConstraint& dc, const Table& table);

/// Violations as the percentage used by Table 2 of the paper:
/// 100 * |V| / C(n, 2) for binary DCs, 100 * |V| / n for unary DCs.
/// The pair-count denominator is computed with `PairsOfDouble`, so the
/// rate never overflows but carries double rounding past 2^53 pairs.
double ViolationRatePercent(const DenialConstraint& dc, const Table& table);

/// Number of violations tuple `row` would add against rows [0, prefix_len)
/// of `table` (the incremental count V(phi, t | D_:i) of Eqn. 3).
int64_t CountNewViolations(const DenialConstraint& dc, const Row& row,
                           const Table& table, size_t prefix_len);

/// The |D| x |Phi| violation matrix of Algorithm 5: entry (i, l) is the
/// number of violations of DC l caused by tuple i with respect to all other
/// tuples of `table`.
///
/// FD-shaped DCs hash-partition to O(n), (equality-scoped) order DCs
/// use a sorted scan with two Fenwick-tree passes (O(n log n)), and every
/// other DC with a `kComposite` decomposition gets signed per-term
/// hash-group / Fenwick columns (inclusion–exclusion over its inequation
/// residuals); only `kGeneral` binary DCs still pair-scan on the global
/// runtime pool (kamino/runtime/): chunk-private partial columns merge in
/// fixed order with exact integer sums, so the matrix is bit-identical to
/// the pair scan at any thread count.
std::vector<std::vector<double>> BuildViolationMatrix(
    const Table& table, const std::vector<WeightedConstraint>& constraints);

/// Incremental per-DC index used by the constraint-aware sampler: rows are
/// added as their relevant attributes get filled, and candidate rows can be
/// scored for the number of *new* violations they would introduce.
///
/// Implementations: an O(1) hash-group index for FD-shaped DCs (including
/// decomposition-normalized FD equivalents and pure-`!=` DCs), a trivial
/// evaluator for unary DCs, a sorted block-list index for (equality-
/// scoped) order DCs (sub-linear `CountNew`, Fenwick-tree `Merge`/
/// `CountAgainst` sweeps), a composite index for the remaining DCs with a
/// `kComposite` decomposition (a signed inclusion–exclusion sum of
/// hash-group and order blocks — see `PredicateDecomposition`), a
/// zero-reporting index for `kNeverFires` conjunctions, and a prefix-scan
/// fallback for `kGeneral` binary DCs.
///
/// Indices are *mergeable*: the shard-parallel sampler builds one index per
/// shard and folds them together in fixed shard order with `Merge`, using
/// `CountAgainst` to measure the cross-shard violations the per-shard
/// sampling could not see. Both operations require the two indices to be
/// over the same DC (and therefore the same implementation type).
class ViolationIndex {
 public:
  virtual ~ViolationIndex() = default;

  /// New violations that `row` (with all attributes of the DC filled)
  /// would introduce against the rows added so far.
  virtual int64_t CountNew(const Row& row) const = 0;

  /// Commits `row` to the index.
  virtual void AddRow(const Row& row) = 0;

  /// Folds `other`'s committed rows into this index, equivalent to
  /// re-adding them through `AddRow` one by one (but O(groups) for the FD
  /// index). `other` must index the same DC.
  virtual void Merge(const ViolationIndex& other) = 0;

  /// Number of violating pairs (a, b) with `a` committed to this index and
  /// `b` committed to `other` — cross violations only; pairs within either
  /// index are not counted. Zero for unary DCs (no pairwise semantics).
  /// `other` must index the same DC.
  virtual int64_t CountAgainst(const ViolationIndex& other) const = 0;

  /// For FD-shaped DCs: the unique right-hand-side value already recorded
  /// for this row's left-hand-side group, if any. Enables the hard-FD fast
  /// path of section 7.3.6 (copy the forced value instead of scoring every
  /// candidate). Returns nullopt for non-FD DCs or unseen groups.
  virtual std::optional<Value> FdForcedValue(const Row& row) const {
    (void)row;
    return std::nullopt;
  }

  /// Number of rows committed so far.
  virtual size_t size() const = 0;
};

/// Creates the best index implementation for `dc`.
std::unique_ptr<ViolationIndex> MakeViolationIndex(const DenialConstraint& dc);

/// Forces the prefix-scan fallback regardless of DC shape (the reference
/// implementation: property tests and benchmarks compare the specialized
/// indices against it, mirroring CountViolationsNaive).
std::unique_ptr<ViolationIndex> MakeNaiveViolationIndex(
    const DenialConstraint& dc);

}  // namespace kamino

#endif  // KAMINO_DC_VIOLATIONS_H_
