#ifndef KAMINO_DC_CONSTRAINT_H_
#define KAMINO_DC_CONSTRAINT_H_

#include <optional>
#include <string>
#include <vector>

#include "kamino/common/status.h"
#include "kamino/data/table.h"

namespace kamino {

namespace io {
class ByteReader;
}  // namespace io

/// Comparison operators allowed in denial-constraint predicates.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Renders an operator as its source syntax ("==", "!=", ...).
const char* CompareOpToString(CompareOp op);

/// Evaluates `a op b` under the Value ordering.
bool EvalCompare(const Value& a, CompareOp op, const Value& b);

/// One predicate of a DC: `tX.attr op tY.attr` or `tX.attr op constant`.
///
/// Tuple index 0 refers to `t1` in the source syntax and 1 to `t2`.
struct Predicate {
  int lhs_tuple = 0;
  size_t lhs_attr = 0;
  CompareOp op = CompareOp::kEq;
  bool rhs_is_constant = false;
  int rhs_tuple = 0;
  size_t rhs_attr = 0;
  Value rhs_constant;

  /// Evaluates against a pair of rows bound to (t1, t2).
  bool Eval(const Row& t1, const Row& t2) const {
    const Value& lhs = (lhs_tuple == 0 ? t1 : t2)[lhs_attr];
    if (rhs_is_constant) return EvalCompare(lhs, op, rhs_constant);
    const Value& rhs = (rhs_tuple == 0 ? t1 : t2)[rhs_attr];
    return EvalCompare(lhs, op, rhs);
  }
};

/// Normalized description of an (equality-scoped) order DC, as matched by
/// `DenialConstraint::AsGroupedOrderSpec`: within each group of rows that
/// agree on `group_attrs`, the DC forbids X and Y moving in opposite
/// directions (`co_monotone`, e.g. !(t1.X > t2.X & t1.Y < t2.Y)) or in the
/// same direction (anti-monotone, e.g. !(t1.X > t2.X & t1.Y > t2.Y)).
///
/// The orientation helpers reduce both forms to one geometry: with
/// `ContextKey(x)` on one axis and `OrientedKey(y)` on the other, an
/// unordered pair violates the DC exactly when it is an *inversion* — one
/// row strictly higher in X and strictly lower in oriented Y. Ties on
/// either axis never violate (the order predicates are strict). This is
/// what lets the sorted scans count violations with rank queries instead
/// of pair enumeration.
struct GroupedOrderSpec {
  std::vector<size_t> group_attrs;  // equality scope; empty for plain pairs
  size_t x_attr = 0;
  size_t y_attr = 0;
  bool co_monotone = true;

  /// Sort key of the context axis (plain Value order).
  double ContextKey(const Value& x) const { return x.OrderKey(); }

  /// Sort key of the dependent axis, negated for the anti-monotone form so
  /// that violating pairs are inversions in both cases.
  double OrientedKey(const Value& y) const {
    return co_monotone ? y.OrderKey() : -y.OrderKey();
  }
};

/// Canonical kind of one non-equality residual in a decomposed binary DC
/// (see `PredicateDecomposition`).
enum class ResidualKind {
  kInequation,     // t1.A != t2.A (orientation-free)
  kStrictOrder,    // t1.A > t2.A or t1.A < t2.A, tuple-normalized
  kNonStrictOrder  // t1.A >= t2.A or t1.A <= t2.A, tuple-normalized
};

/// One order-shaped residual of a decomposed binary DC: the *net*
/// comparison constraint on a single attribute after merging every
/// predicate that mentions it. `direction` is +1 when the normalized form
/// is `t1.attr > t2.attr` (or `>=`) and -1 for `<` (`<=`) — predicates
/// written with t2 on the left are mirrored first (tuple-variable swap).
struct OrderResidual {
  size_t attr = 0;
  ResidualKind kind = ResidualKind::kStrictOrder;
  int direction = 1;
};

/// Inequation residuals above this count make the inclusion–exclusion
/// composite engine more expensive than it is worth (2^k signed terms);
/// such DCs fall back to the naive pair scan.
inline constexpr size_t kMaxInequationResiduals = 4;

/// Canonical predicate decomposition of a DC (`DenialConstraint::
/// Decompose`): every binary DC whose predicates are cross-tuple
/// same-attribute comparisons reduces to an *equality scope* (the pair
/// must agree on `scope_attrs`) times a set of residuals — `!=`
/// inequations plus at most one order residual pair. The normalization
/// folds each attribute's predicates into one allowed set of
/// sign(t1.A - t2.A) values, which applies these rules:
///
///  - tuple-variable swap: `t2.A < t1.A` is rewritten as `t1.A > t2.A`
///    (and unordered-pair violation is invariant under swapping t1/t2 in
///    *all* predicates at once, so only relative directions matter);
///  - contradictions (`==` with `!=`, `==` with a strict order, opposite
///    strict orders) make the conjunction unsatisfiable: shape
///    `kNeverFires`, zero violations on any instance;
///  - redundancy: `!=` plus an order on the same attribute keeps only the
///    (strictified) order; duplicated predicates collapse;
///  - symmetric-operator orientation: a *lone* strict order residual is
///    equivalent to an inequation for unordered pairs (some orientation
///    satisfies it exactly when the values differ), and a lone non-strict
///    order residual is vacuous (some orientation always satisfies it) —
///    so `order_residuals` is either empty or exactly a pair.
///
/// The `!=` residual itself counts as "equality minus diagonal": pairs in
/// the scope group minus pairs that also agree on the attribute, which is
/// what lets the composite engine count every shape with hash groups and
/// sorted rank sweeps (see dc/violations.cc).
struct PredicateDecomposition {
  /// Capability report: which violation-counting fast path applies.
  enum class Shape {
    kUnary,       // single-tuple DC; no pair semantics
    kNeverFires,  // unsatisfiable conjunction: never violates anything
    kComposite,   // scope x residuals; subquadratic composite engine
    kGeneral,     // outside the composite class; naive pair scan only
  };

  Shape shape = Shape::kGeneral;
  /// Cross-tuple equality scope, sorted ascending.
  std::vector<size_t> scope_attrs;
  /// Inequation residual attributes, sorted ascending (size <=
  /// kMaxInequationResiduals when shape == kComposite).
  std::vector<size_t> ne_attrs;
  /// Empty or exactly two residuals (strict/non-strict in any mix), in
  /// first-mention predicate order.
  std::vector<OrderResidual> order_residuals;

  /// True when violations are countable without a quadratic pair scan.
  bool subquadratic() const {
    return shape == Shape::kComposite || shape == Shape::kNeverFires;
  }
};

/// Plain serializable mirror of a `Predicate` (artifact serde). Tuple
/// flags and the operator travel as raw bytes; `DenialConstraint::
/// FromState` validates them against the schema.
struct PredicateState {
  uint8_t lhs_tuple = 0;
  uint64_t lhs_attr = 0;
  uint8_t op = 0;
  uint8_t rhs_is_constant = 0;
  uint8_t rhs_tuple = 0;
  uint64_t rhs_attr = 0;
  uint8_t constant_is_categorical = 0;
  int32_t constant_category = 0;
  double constant_numeric = 0.0;
};

/// Plain serializable mirror of a `DenialConstraint`: only the predicate
/// list. The derived fields (`attributes()`, `is_unary()`) are recomputed
/// by `FromState` exactly as `Parse` computes them, so a round-tripped DC
/// is indistinguishable from a freshly parsed one.
struct DenialConstraintState {
  std::vector<PredicateState> predicates;
};

/// A denial constraint phi: "for all t1, t2: NOT (P1 & ... & Pm)".
///
/// Parsed from a compact textual syntax, e.g.
///   `!(t1.edu == t2.edu & t1.edu_num != t2.edu_num)`      (binary FD-shaped)
///   `!(t1.age < 10 & t1.cap_gain > 1000000)`               (unary)
/// Constants are numbers for numeric attributes or 'single-quoted' labels
/// for categorical ones.
class DenialConstraint {
 public:
  /// Parses `spec` against `schema`. Returns InvalidArgument for malformed
  /// syntax, unknown attributes/labels, or kind-mismatched comparisons.
  static Result<DenialConstraint> Parse(const std::string& spec,
                                        const Schema& schema);

  const std::vector<Predicate>& predicates() const { return predicates_; }

  /// True if the DC only mentions tuple t1 (a single-tuple constraint).
  bool is_unary() const { return is_unary_; }

  /// The set A_phi of attribute indices mentioned anywhere in the DC,
  /// sorted ascending.
  const std::vector<size_t>& attributes() const { return attributes_; }

  /// True when all predicates hold for the ordered binding (t1=a, t2=b).
  bool FiresOrdered(const Row& a, const Row& b) const;

  /// True when the unordered pair {a, b} violates the DC (either binding
  /// orientation fires). For unary DCs this must not be used.
  bool ViolatesPair(const Row& a, const Row& b) const;

  /// Columnar form of `ViolatesPair` with the second tuple read straight
  /// from `table`'s typed columns — the scan loops' replacement for
  /// materializing `table.row(j)` per probe.
  bool ViolatesPairAt(const Row& a, const Table& table, size_t j) const;

  /// Columnar form with *both* tuples read from the typed columns (the
  /// pair-scan kernels: no Row materializes at all).
  bool ViolatesPairRows(const Table& table, size_t i, size_t j) const;

  /// True when the single tuple violates a unary DC.
  bool ViolatesUnary(const Row& a) const;

  /// Columnar form of `ViolatesUnary`.
  bool ViolatesUnaryAt(const Table& table, size_t i) const;

  /// If the DC has functional-dependency shape
  ///   !(t1.X1 == t2.X1 & ... & t1.Xm == t2.Xm & t1.Y != t2.Y)
  /// fills `lhs` with the X attribute indices and `rhs` with Y and returns
  /// true. Used by the sequencing heuristic (Algorithm 4) and the FD fast
  /// path in sampling.
  bool AsFd(std::vector<size_t>* lhs, size_t* rhs) const;

  /// If the DC is a two-predicate co-monotonicity ("order") constraint
  ///   !(t1.X > t2.X & t1.Y < t2.Y)   (or mirrored comparison forms)
  /// fills X and Y and returns true. Used by the repair baseline and by
  /// the sampler's DC-aware candidate generation.
  bool AsOrderPair(size_t* x_attr, size_t* y_attr) const;

  /// Generalization of `AsOrderPair` to order constraints scoped by
  /// equality predicates, e.g. the per-state salary/rate dependency
  ///   !(t1.S == t2.S & t1.X > t2.X & t1.Y < t2.Y).
  /// Matches any number of cross-tuple equality predicates (the group;
  /// empty for the plain pair form) plus exactly two strict cross-tuple
  /// order predicates over distinct attributes. `co_monotone` is true when
  /// the two order predicates point in opposite directions once normalized
  /// to the same tuple orientation (the DC forbids X and Y moving in
  /// opposite directions within a group) and false for the anti-monotone
  /// form. Used by the shard-merge rank alignment.
  bool AsGroupedOrderPair(std::vector<size_t>* group_attrs, size_t* x_attr,
                          size_t* y_attr, bool* co_monotone) const;

  /// Struct-valued form of `AsGroupedOrderPair`, bundling the match with
  /// the rank/orientation helpers the sorted violation scans use.
  std::optional<GroupedOrderSpec> AsGroupedOrderSpec() const;

  /// Canonical predicate decomposition (see `PredicateDecomposition`):
  /// normalizes the DC into equality scope x residuals and reports which
  /// violation-counting fast path applies. Every DC whose predicates are
  /// cross-tuple same-attribute comparisons with at most two order-shaped
  /// residual attributes (and at most `kMaxInequationResiduals`
  /// inequations) is `kComposite`; constants, cross-attribute
  /// comparisons, and wider order residuals are `kGeneral`.
  PredicateDecomposition Decompose() const;

  /// Round-trips the DC back to source syntax.
  std::string ToString(const Schema& schema) const;

  /// Artifact serde: a plain state mirror, and validated reconstruction.
  /// `FromState` rejects out-of-range attribute indices (arity flips),
  /// unknown operator/tuple bytes, kind-mismatched comparisons, and
  /// out-of-domain categorical constants with InvalidArgument.
  DenialConstraintState ToState() const;
  static Result<DenialConstraint> FromState(const DenialConstraintState& state,
                                            const Schema& schema);

  /// Wire form used inside model artifacts (io/bytes.h primitives).
  void SerializeTo(std::vector<uint8_t>* out) const;
  static Result<DenialConstraint> DeserializeFrom(io::ByteReader* in,
                                                  const Schema& schema);

 private:
  std::vector<Predicate> predicates_;
  std::vector<size_t> attributes_;
  bool is_unary_ = false;
};

/// A DC together with its hardness/weight (paper: w_phi; hard DCs have
/// effectively infinite weight).
struct WeightedConstraint {
  DenialConstraint dc;
  /// exp(-weight * new_violations) multiplies the sampling probability.
  double weight = 0.0;
  bool hard = false;

  /// The weight used in sampling: a large finite stand-in for infinity
  /// when `hard`, otherwise `weight`.
  double EffectiveWeight() const;
};

/// Parses a batch of DC specs with their hardness flags.
Result<std::vector<WeightedConstraint>> ParseConstraints(
    const std::vector<std::string>& specs, const std::vector<bool>& hardness,
    const Schema& schema);

}  // namespace kamino

#endif  // KAMINO_DC_CONSTRAINT_H_
