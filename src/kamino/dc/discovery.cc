#include "kamino/dc/discovery.h"

#include <algorithm>

#include "kamino/dc/constraint.h"
#include "kamino/dc/violations.h"

namespace kamino {
namespace {

double CandidateViolationRate(const DenialConstraint& dc, const Table& sample) {
  return ViolationRatePercent(dc, sample) / 100.0;
}

}  // namespace

std::vector<std::string> DiscoverApproximateDcs(const Table& table,
                                                const DiscoveryOptions& options,
                                                Rng* rng) {
  const Schema& schema = table.schema();
  Table sample = table.Head(options.sample_rows);
  std::vector<std::string> found;

  // Enumerate attribute pairs in a randomized order so that truncation at
  // max_constraints yields a diverse set.
  std::vector<std::pair<size_t, size_t>> pairs;
  for (size_t x = 0; x < schema.size(); ++x) {
    for (size_t y = 0; y < schema.size(); ++y) {
      if (x != y) pairs.emplace_back(x, y);
    }
  }
  rng->Shuffle(&pairs);

  for (const auto& [x, y] : pairs) {
    if (found.size() >= options.max_constraints) break;
    const std::string& xn = schema.attribute(x).name();
    const std::string& yn = schema.attribute(y).name();

    // FD-shaped candidate X -> Y.
    {
      std::string spec =
          "!(t1." + xn + " == t2." + xn + " & t1." + yn + " != t2." + yn + ")";
      auto dc = DenialConstraint::Parse(spec, schema);
      if (dc.ok() &&
          CandidateViolationRate(dc.value(), sample) <=
              options.max_violation_rate) {
        found.push_back(spec);
        continue;
      }
    }

    // Order-shaped candidate: X and Y co-monotone (both numeric only).
    if (schema.attribute(x).is_numeric() && schema.attribute(y).is_numeric()) {
      std::string spec =
          "!(t1." + xn + " > t2." + xn + " & t1." + yn + " < t2." + yn + ")";
      auto dc = DenialConstraint::Parse(spec, schema);
      if (dc.ok() &&
          CandidateViolationRate(dc.value(), sample) <=
              options.max_violation_rate) {
        found.push_back(spec);
      }
    }
  }
  return found;
}

}  // namespace kamino
