#include "kamino/dc/constraint.h"

#include <algorithm>
#include <optional>
#include <set>
#include <sstream>

#include "kamino/common/strings.h"
#include "kamino/io/bytes.h"

namespace kamino {

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "==";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

bool EvalCompare(const Value& a, CompareOp op, const Value& b) {
  switch (op) {
    case CompareOp::kEq:
      return a == b;
    case CompareOp::kNe:
      return a != b;
    case CompareOp::kLt:
      return a < b;
    case CompareOp::kLe:
      return a <= b;
    case CompareOp::kGt:
      return a > b;
    case CompareOp::kGe:
      return a >= b;
  }
  return false;
}

namespace {

/// Parses "t1.attr" / "t2.attr" into (tuple, attr index). Returns NotFound
/// for anything else so the caller can fall back to constant parsing.
Result<std::pair<int, size_t>> ParseTupleRef(std::string_view token,
                                             const Schema& schema) {
  std::string_view t = Trim(token);
  int tuple;
  if (StartsWith(t, "t1.")) {
    tuple = 0;
  } else if (StartsWith(t, "t2.")) {
    tuple = 1;
  } else {
    return Status::NotFound("not a tuple reference");
  }
  std::string attr_name(t.substr(3));
  KAMINO_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(attr_name));
  return std::make_pair(tuple, idx);
}

/// Splits the DC body on '&' outside 'quoted' label constants (the same
/// quote rule as FindOperator below: quotes toggle, no escapes), so a
/// label like 'R&D' does not end its predicate early. Keeps empty fields,
/// like Split, so empty-predicate diagnostics are unchanged.
std::vector<std::string> SplitPredicates(std::string_view text) {
  std::vector<std::string> parts;
  std::string current;
  bool in_quote = false;
  for (char c : text) {
    if (c == '\'') in_quote = !in_quote;
    if (c == '&' && !in_quote) {
      parts.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  parts.push_back(current);
  return parts;
}

/// Finds the leftmost comparison operator outside 'quoted' label
/// constants. A single left-to-right scan (two-character operators matched
/// before their one-character prefixes at each position) rather than a
/// per-operator search of the whole text: the latter picked whichever
/// candidate operator came first in *priority* order, so a predicate like
/// `t1.occ != 'a==b'` split at the `==` inside the quoted label and parsed
/// as kEq with garbage operands.
Result<CompareOp> FindOperator(std::string_view text, size_t* pos,
                               size_t* len) {
  bool in_quote = false;
  for (size_t p = 0; p < text.size(); ++p) {
    const char c = text[p];
    if (c == '\'') {
      in_quote = !in_quote;
      continue;
    }
    if (in_quote) continue;
    const bool eq_next = p + 1 < text.size() && text[p + 1] == '=';
    if (eq_next) {
      std::optional<CompareOp> two;
      switch (c) {
        case '=':
          two = CompareOp::kEq;
          break;
        case '!':
          two = CompareOp::kNe;
          break;
        case '<':
          two = CompareOp::kLe;
          break;
        case '>':
          two = CompareOp::kGe;
          break;
        default:
          break;
      }
      if (two.has_value()) {
        *pos = p;
        *len = 2;
        return *two;
      }
    }
    if (c == '<' || c == '>') {
      *pos = p;
      *len = 1;
      return c == '<' ? CompareOp::kLt : CompareOp::kGt;
    }
  }
  return Status::InvalidArgument("no comparison operator in predicate: '" +
                                 std::string(text) + "'");
}

Result<Predicate> ParsePredicate(std::string_view text, const Schema& schema) {
  size_t op_pos = 0;
  size_t op_len = 0;
  KAMINO_ASSIGN_OR_RETURN(CompareOp op, FindOperator(text, &op_pos, &op_len));
  std::string_view lhs_text = Trim(text.substr(0, op_pos));
  std::string_view rhs_text = Trim(text.substr(op_pos + op_len));

  Predicate pred;
  pred.op = op;
  auto lhs = ParseTupleRef(lhs_text, schema);
  if (!lhs.ok()) {
    return Status::InvalidArgument("predicate lhs must be tN.attr: '" +
                                   std::string(lhs_text) + "'");
  }
  pred.lhs_tuple = lhs.value().first;
  pred.lhs_attr = lhs.value().second;
  const Attribute& lhs_attr = schema.attribute(pred.lhs_attr);

  auto rhs = ParseTupleRef(rhs_text, schema);
  if (rhs.ok()) {
    pred.rhs_is_constant = false;
    pred.rhs_tuple = rhs.value().first;
    pred.rhs_attr = rhs.value().second;
    const Attribute& rhs_attr = schema.attribute(pred.rhs_attr);
    if (lhs_attr.is_categorical() != rhs_attr.is_categorical()) {
      return Status::InvalidArgument(
          "predicate compares categorical with numeric attribute");
    }
    return pred;
  }

  // Constant operand: 'label' for categorical, number for numeric.
  pred.rhs_is_constant = true;
  if (!rhs_text.empty() && rhs_text.front() == '\'') {
    if (rhs_text.size() < 2 || rhs_text.back() != '\'') {
      return Status::InvalidArgument("unterminated label constant");
    }
    if (!lhs_attr.is_categorical()) {
      return Status::InvalidArgument(
          "label constant compared against numeric attribute " +
          lhs_attr.name());
    }
    std::string label(rhs_text.substr(1, rhs_text.size() - 2));
    KAMINO_ASSIGN_OR_RETURN(int32_t idx, lhs_attr.CategoryIndex(label));
    pred.rhs_constant = Value::Categorical(idx);
    return pred;
  }
  if (lhs_attr.is_categorical()) {
    return Status::InvalidArgument(
        "categorical attribute " + lhs_attr.name() +
        " must be compared against a 'label' constant");
  }
  KAMINO_ASSIGN_OR_RETURN(double num, ParseDouble(rhs_text));
  pred.rhs_constant = Value::Numeric(num);
  return pred;
}

}  // namespace

Result<DenialConstraint> DenialConstraint::Parse(const std::string& spec,
                                                 const Schema& schema) {
  std::string_view text = Trim(spec);
  if (!StartsWith(text, "!(") || text.back() != ')') {
    return Status::InvalidArgument("DC must have the form !(P1 & ... & Pm): " +
                                   spec);
  }
  text = text.substr(2, text.size() - 3);
  DenialConstraint dc;
  std::set<size_t> attrs;
  bool mentions_t2 = false;
  for (const std::string& part : SplitPredicates(text)) {
    if (Trim(part).empty()) {
      return Status::InvalidArgument("empty predicate in DC: " + spec);
    }
    KAMINO_ASSIGN_OR_RETURN(Predicate pred, ParsePredicate(part, schema));
    attrs.insert(pred.lhs_attr);
    if (pred.lhs_tuple == 1) mentions_t2 = true;
    if (!pred.rhs_is_constant) {
      attrs.insert(pred.rhs_attr);
      if (pred.rhs_tuple == 1) mentions_t2 = true;
    }
    dc.predicates_.push_back(pred);
  }
  if (dc.predicates_.empty()) {
    return Status::InvalidArgument("DC has no predicates: " + spec);
  }
  dc.is_unary_ = !mentions_t2;
  dc.attributes_.assign(attrs.begin(), attrs.end());
  return dc;
}

DenialConstraintState DenialConstraint::ToState() const {
  DenialConstraintState state;
  state.predicates.reserve(predicates_.size());
  for (const Predicate& p : predicates_) {
    PredicateState ps;
    ps.lhs_tuple = static_cast<uint8_t>(p.lhs_tuple);
    ps.lhs_attr = p.lhs_attr;
    ps.op = static_cast<uint8_t>(p.op);
    ps.rhs_is_constant = p.rhs_is_constant ? 1 : 0;
    ps.rhs_tuple = static_cast<uint8_t>(p.rhs_tuple);
    ps.rhs_attr = p.rhs_attr;
    if (p.rhs_is_constant) {
      if (p.rhs_constant.is_categorical()) {
        ps.constant_is_categorical = 1;
        ps.constant_category = p.rhs_constant.category();
      } else {
        ps.constant_numeric = p.rhs_constant.numeric();
      }
    }
    state.predicates.push_back(ps);
  }
  return state;
}

Result<DenialConstraint> DenialConstraint::FromState(
    const DenialConstraintState& state, const Schema& schema) {
  if (state.predicates.empty()) {
    return Status::InvalidArgument("DC state has no predicates");
  }
  // Mirrors the tail of Parse: predicates are validated one by one, and
  // the derived fields (attribute set, unary flag) are recomputed rather
  // than trusted from the wire.
  DenialConstraint dc;
  std::set<size_t> attrs;
  bool mentions_t2 = false;
  for (const PredicateState& ps : state.predicates) {
    if (ps.lhs_tuple > 1 || ps.rhs_tuple > 1 || ps.rhs_is_constant > 1 ||
        ps.constant_is_categorical > 1) {
      return Status::InvalidArgument("DC state: flag byte out of range");
    }
    if (ps.op > static_cast<uint8_t>(CompareOp::kGe)) {
      return Status::InvalidArgument("DC state: unknown comparison op byte " +
                                     std::to_string(ps.op));
    }
    if (ps.lhs_attr >= schema.size()) {
      return Status::InvalidArgument(
          "DC state: attribute index " + std::to_string(ps.lhs_attr) +
          " out of range for schema arity " + std::to_string(schema.size()));
    }
    Predicate pred;
    pred.lhs_tuple = ps.lhs_tuple;
    pred.lhs_attr = static_cast<size_t>(ps.lhs_attr);
    pred.op = static_cast<CompareOp>(ps.op);
    const Attribute& lhs_attr = schema.attribute(pred.lhs_attr);
    if (ps.rhs_is_constant != 0) {
      pred.rhs_is_constant = true;
      if (ps.constant_is_categorical != 0) {
        if (!lhs_attr.is_categorical()) {
          return Status::InvalidArgument(
              "DC state: label constant compared against numeric attribute " +
              lhs_attr.name());
        }
        if (ps.constant_category < 0 ||
            static_cast<size_t>(ps.constant_category) >=
                lhs_attr.categories().size()) {
          return Status::InvalidArgument(
              "DC state: category constant out of domain of " +
              lhs_attr.name());
        }
        pred.rhs_constant = Value::Categorical(ps.constant_category);
      } else {
        if (lhs_attr.is_categorical()) {
          return Status::InvalidArgument(
              "DC state: numeric constant compared against categorical "
              "attribute " +
              lhs_attr.name());
        }
        pred.rhs_constant = Value::Numeric(ps.constant_numeric);
      }
    } else {
      if (ps.rhs_attr >= schema.size()) {
        return Status::InvalidArgument(
            "DC state: attribute index " + std::to_string(ps.rhs_attr) +
            " out of range for schema arity " + std::to_string(schema.size()));
      }
      pred.rhs_tuple = ps.rhs_tuple;
      pred.rhs_attr = static_cast<size_t>(ps.rhs_attr);
      if (lhs_attr.is_categorical() !=
          schema.attribute(pred.rhs_attr).is_categorical()) {
        return Status::InvalidArgument(
            "DC state: predicate compares categorical with numeric attribute");
      }
    }
    attrs.insert(pred.lhs_attr);
    if (pred.lhs_tuple == 1) mentions_t2 = true;
    if (!pred.rhs_is_constant) {
      attrs.insert(pred.rhs_attr);
      if (pred.rhs_tuple == 1) mentions_t2 = true;
    }
    dc.predicates_.push_back(pred);
  }
  dc.is_unary_ = !mentions_t2;
  dc.attributes_.assign(attrs.begin(), attrs.end());
  return dc;
}

void DenialConstraint::SerializeTo(std::vector<uint8_t>* out) const {
  const DenialConstraintState state = ToState();
  io::AppendU32(out, static_cast<uint32_t>(state.predicates.size()));
  for (const PredicateState& ps : state.predicates) {
    io::AppendU8(out, ps.lhs_tuple);
    io::AppendU64(out, ps.lhs_attr);
    io::AppendU8(out, ps.op);
    io::AppendU8(out, ps.rhs_is_constant);
    if (ps.rhs_is_constant != 0) {
      io::AppendU8(out, ps.constant_is_categorical);
      if (ps.constant_is_categorical != 0) {
        io::AppendU32(out, static_cast<uint32_t>(ps.constant_category));
      } else {
        io::AppendDouble(out, ps.constant_numeric);
      }
    } else {
      io::AppendU8(out, ps.rhs_tuple);
      io::AppendU64(out, ps.rhs_attr);
    }
  }
}

Result<DenialConstraint> DenialConstraint::DeserializeFrom(
    io::ByteReader* in, const Schema& schema) {
  Status truncated = Status::InvalidArgument("DC payload truncated");
  uint32_t count = 0;
  if (!in->ReadU32(&count)) return truncated;
  if (count > in->remaining()) return truncated;
  DenialConstraintState state;
  state.predicates.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    PredicateState ps;
    if (!in->ReadU8(&ps.lhs_tuple) || !in->ReadU64(&ps.lhs_attr) ||
        !in->ReadU8(&ps.op) || !in->ReadU8(&ps.rhs_is_constant)) {
      return truncated;
    }
    if (ps.rhs_is_constant == 1) {
      if (!in->ReadU8(&ps.constant_is_categorical)) return truncated;
      if (ps.constant_is_categorical == 1) {
        uint32_t category = 0;
        if (!in->ReadU32(&category)) return truncated;
        ps.constant_category = static_cast<int32_t>(category);
      } else if (ps.constant_is_categorical == 0) {
        if (!in->ReadDouble(&ps.constant_numeric)) return truncated;
      } else {
        return Status::InvalidArgument("DC state: flag byte out of range");
      }
    } else if (ps.rhs_is_constant == 0) {
      if (!in->ReadU8(&ps.rhs_tuple) || !in->ReadU64(&ps.rhs_attr)) {
        return truncated;
      }
    } else {
      return Status::InvalidArgument("DC state: flag byte out of range");
    }
    state.predicates.push_back(ps);
  }
  return FromState(state, schema);
}

bool DenialConstraint::FiresOrdered(const Row& a, const Row& b) const {
  for (const Predicate& p : predicates_) {
    if (!p.Eval(a, b)) return false;
  }
  return true;
}

namespace {

/// Shared predicate-conjunction kernel over two cell accessors — the
/// binding logic mirrors Predicate::Eval exactly (tuple 0 reads from `a`,
/// tuple 1 from `b`) but lets each side come from a Row or straight from
/// the typed columns without materializing the other tuple.
template <typename GetA, typename GetB>
bool FiresOrderedOn(const std::vector<Predicate>& predicates, const GetA& a,
                    const GetB& b) {
  for (const Predicate& p : predicates) {
    const Value lhs = p.lhs_tuple == 0 ? a(p.lhs_attr) : b(p.lhs_attr);
    bool holds;
    if (p.rhs_is_constant) {
      holds = EvalCompare(lhs, p.op, p.rhs_constant);
    } else {
      const Value rhs = p.rhs_tuple == 0 ? a(p.rhs_attr) : b(p.rhs_attr);
      holds = EvalCompare(lhs, p.op, rhs);
    }
    if (!holds) return false;
  }
  return true;
}

}  // namespace

bool DenialConstraint::ViolatesPair(const Row& a, const Row& b) const {
  return FiresOrdered(a, b) || FiresOrdered(b, a);
}

bool DenialConstraint::ViolatesPairAt(const Row& a, const Table& table,
                                      size_t j) const {
  const auto get_a = [&a](size_t attr) { return a[attr]; };
  const auto get_j = [&table, j](size_t attr) { return table.at(j, attr); };
  return FiresOrderedOn(predicates_, get_a, get_j) ||
         FiresOrderedOn(predicates_, get_j, get_a);
}

bool DenialConstraint::ViolatesPairRows(const Table& table, size_t i,
                                        size_t j) const {
  const auto get_i = [&table, i](size_t attr) { return table.at(i, attr); };
  const auto get_j = [&table, j](size_t attr) { return table.at(j, attr); };
  return FiresOrderedOn(predicates_, get_i, get_j) ||
         FiresOrderedOn(predicates_, get_j, get_i);
}

bool DenialConstraint::ViolatesUnary(const Row& a) const {
  return FiresOrdered(a, a);
}

bool DenialConstraint::ViolatesUnaryAt(const Table& table, size_t i) const {
  const auto get = [&table, i](size_t attr) { return table.at(i, attr); };
  return FiresOrderedOn(predicates_, get, get);
}

bool DenialConstraint::AsFd(std::vector<size_t>* lhs, size_t* rhs) const {
  if (is_unary_) return false;
  std::vector<size_t> eq_attrs;
  std::vector<size_t> ne_attrs;
  for (const Predicate& p : predicates_) {
    // FD shape requires every predicate to compare the same attribute
    // across the two tuples.
    if (p.rhs_is_constant || p.lhs_attr != p.rhs_attr ||
        p.lhs_tuple == p.rhs_tuple) {
      return false;
    }
    if (p.op == CompareOp::kEq) {
      eq_attrs.push_back(p.lhs_attr);
    } else if (p.op == CompareOp::kNe) {
      ne_attrs.push_back(p.lhs_attr);
    } else {
      return false;
    }
  }
  if (eq_attrs.empty() || ne_attrs.size() != 1) return false;
  if (lhs != nullptr) *lhs = eq_attrs;
  if (rhs != nullptr) *rhs = ne_attrs[0];
  return true;
}

bool DenialConstraint::AsOrderPair(size_t* x_attr, size_t* y_attr) const {
  if (predicates_.size() != 2) return false;
  std::vector<size_t> group;
  size_t x = 0, y = 0;
  if (!AsGroupedOrderPair(&group, &x, &y, nullptr) || !group.empty()) {
    return false;
  }
  if (x_attr != nullptr) *x_attr = x;
  if (y_attr != nullptr) *y_attr = y;
  return true;
}

bool DenialConstraint::AsGroupedOrderPair(std::vector<size_t>* group_attrs,
                                          size_t* x_attr, size_t* y_attr,
                                          bool* co_monotone) const {
  std::optional<GroupedOrderSpec> spec = AsGroupedOrderSpec();
  if (!spec.has_value()) return false;
  if (group_attrs != nullptr) *group_attrs = spec->group_attrs;
  if (x_attr != nullptr) *x_attr = spec->x_attr;
  if (y_attr != nullptr) *y_attr = spec->y_attr;
  if (co_monotone != nullptr) *co_monotone = spec->co_monotone;
  return true;
}

std::optional<GroupedOrderSpec> DenialConstraint::AsGroupedOrderSpec() const {
  if (is_unary_) return std::nullopt;
  GroupedOrderSpec spec;
  std::vector<const Predicate*> order;
  for (const Predicate& p : predicates_) {
    // Every predicate must compare the same attribute across the two
    // tuples (no constants, no mixed-attribute comparisons).
    if (p.rhs_is_constant || p.lhs_attr != p.rhs_attr ||
        p.lhs_tuple == p.rhs_tuple) {
      return std::nullopt;
    }
    if (p.op == CompareOp::kEq) {
      spec.group_attrs.push_back(p.lhs_attr);
    } else if (p.op == CompareOp::kLt || p.op == CompareOp::kGt) {
      order.push_back(&p);
    } else {
      return std::nullopt;
    }
  }
  if (order.size() != 2 || order[0]->lhs_attr == order[1]->lhs_attr) {
    return std::nullopt;
  }
  // Normalize each order predicate to the (t1, t2) orientation; opposite
  // normalized directions = the co-monotone form !(X up & Y down).
  auto normalized_gt = [](const Predicate& p) {
    const bool gt = p.op == CompareOp::kGt;
    return p.lhs_tuple == 0 ? gt : !gt;
  };
  spec.x_attr = order[0]->lhs_attr;
  spec.y_attr = order[1]->lhs_attr;
  spec.co_monotone = normalized_gt(*order[0]) != normalized_gt(*order[1]);
  return spec;
}

PredicateDecomposition DenialConstraint::Decompose() const {
  using Shape = PredicateDecomposition::Shape;
  PredicateDecomposition d;
  if (is_unary_) {
    d.shape = Shape::kUnary;
    return d;
  }
  // Fold every predicate into a per-attribute allowed set for
  // delta = sign(t1.A - t2.A), as a 3-bit mask (bit 0: delta = -1,
  // bit 1: delta = 0, bit 2: delta = +1). Predicates with t2 on the left
  // are mirrored into the t1 orientation first. First-mention order is
  // kept so the decomposition is deterministic.
  std::vector<std::pair<size_t, uint8_t>> per_attr;
  auto slot = [&per_attr](size_t attr) -> uint8_t& {
    for (auto& [a, mask] : per_attr) {
      if (a == attr) return mask;
    }
    per_attr.emplace_back(attr, uint8_t{0b111});
    return per_attr.back().second;
  };
  for (const Predicate& p : predicates_) {
    if (p.rhs_is_constant || p.lhs_attr != p.rhs_attr ||
        p.lhs_tuple == p.rhs_tuple) {
      return d;  // constants / cross-attribute / same-tuple: kGeneral
    }
    const bool t1_lhs = p.lhs_tuple == 0;
    uint8_t mask = 0;
    switch (p.op) {
      case CompareOp::kEq:
        mask = 0b010;
        break;
      case CompareOp::kNe:
        mask = 0b101;
        break;
      case CompareOp::kLt:
        mask = t1_lhs ? 0b001 : 0b100;
        break;
      case CompareOp::kGt:
        mask = t1_lhs ? 0b100 : 0b001;
        break;
      case CompareOp::kLe:
        mask = t1_lhs ? 0b011 : 0b110;
        break;
      case CompareOp::kGe:
        mask = t1_lhs ? 0b110 : 0b011;
        break;
    }
    slot(p.lhs_attr) &= mask;
  }
  std::vector<OrderResidual> orders;
  for (const auto& [attr, mask] : per_attr) {
    switch (mask) {
      case 0b000:  // e.g. == with !=, or opposite strict orders
        d.shape = Shape::kNeverFires;
        return d;
      case 0b010:
        d.scope_attrs.push_back(attr);
        break;
      case 0b101:
        d.ne_attrs.push_back(attr);
        break;
      case 0b100:
        orders.push_back({attr, ResidualKind::kStrictOrder, +1});
        break;
      case 0b001:
        orders.push_back({attr, ResidualKind::kStrictOrder, -1});
        break;
      case 0b110:
        orders.push_back({attr, ResidualKind::kNonStrictOrder, +1});
        break;
      case 0b011:
        orders.push_back({attr, ResidualKind::kNonStrictOrder, -1});
        break;
      default:  // 0b111 cannot occur: the attr was touched by a predicate
        break;
    }
  }
  if (orders.size() == 1) {
    // Symmetric-operator orientation: for an unordered pair, a lone
    // strict order residual holds in some orientation exactly when the
    // values differ (== an inequation), and a lone non-strict residual
    // holds in some orientation always (vacuous): drop it.
    if (orders[0].kind == ResidualKind::kStrictOrder) {
      d.ne_attrs.push_back(orders[0].attr);
    }
    orders.clear();
  }
  if (orders.size() > 2) {
    // >= 3 order-shaped residuals would need multi-dimensional dominance
    // counting; out of the composite class.
    d.scope_attrs.clear();
    d.ne_attrs.clear();
    return d;
  }
  std::sort(d.scope_attrs.begin(), d.scope_attrs.end());
  std::sort(d.ne_attrs.begin(), d.ne_attrs.end());
  if (d.ne_attrs.size() > kMaxInequationResiduals) {
    d.scope_attrs.clear();
    d.ne_attrs.clear();
    return d;
  }
  d.order_residuals = std::move(orders);
  d.shape = Shape::kComposite;
  return d;
}

std::string DenialConstraint::ToString(const Schema& schema) const {
  std::ostringstream os;
  os << "!(";
  for (size_t i = 0; i < predicates_.size(); ++i) {
    const Predicate& p = predicates_[i];
    if (i > 0) os << " & ";
    os << "t" << (p.lhs_tuple + 1) << "."
       << schema.attribute(p.lhs_attr).name() << " " << CompareOpToString(p.op)
       << " ";
    if (p.rhs_is_constant) {
      const Attribute& attr = schema.attribute(p.lhs_attr);
      if (attr.is_categorical()) {
        auto label = attr.CategoryLabel(p.rhs_constant.category());
        os << "'" << (label.ok() ? label.value() : "?") << "'";
      } else {
        os << p.rhs_constant.numeric();
      }
    } else {
      os << "t" << (p.rhs_tuple + 1) << "."
         << schema.attribute(p.rhs_attr).name();
    }
  }
  os << ")";
  return os.str();
}

double WeightedConstraint::EffectiveWeight() const {
  // exp(-40) ~ 4e-18 zeroes out any candidate that introduces a violation
  // while staying finite for numerical safety.
  return hard ? 40.0 : weight;
}

Result<std::vector<WeightedConstraint>> ParseConstraints(
    const std::vector<std::string>& specs, const std::vector<bool>& hardness,
    const Schema& schema) {
  if (specs.size() != hardness.size()) {
    return Status::InvalidArgument("specs/hardness size mismatch");
  }
  std::vector<WeightedConstraint> out;
  out.reserve(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    KAMINO_ASSIGN_OR_RETURN(DenialConstraint dc,
                            DenialConstraint::Parse(specs[i], schema));
    WeightedConstraint wc;
    wc.dc = std::move(dc);
    wc.hard = hardness[i];
    wc.weight = hardness[i] ? 40.0 : 1.0;
    out.push_back(std::move(wc));
  }
  return out;
}

}  // namespace kamino
