#ifndef KAMINO_DC_DISCOVERY_H_
#define KAMINO_DC_DISCOVERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "kamino/common/rng.h"
#include "kamino/data/table.h"

namespace kamino {

/// Options for approximate denial-constraint discovery.
struct DiscoveryOptions {
  /// Keep a candidate DC when its violating-pair rate on the sample is at
  /// most this fraction (approximate DCs, Pena et al. 2019).
  double max_violation_rate = 0.01;
  /// Evaluate candidates on at most this many sampled rows.
  size_t sample_rows = 400;
  /// Stop after this many constraints.
  size_t max_constraints = 128;
};

/// Discovers approximate DCs from a (non-private) instance by enumerating
/// two-predicate binary candidates over attribute pairs - FD-shaped
/// (t1.X == t2.X & t1.Y != t2.Y) and order-shaped
/// (t1.X > t2.X & t1.Y < t2.Y) - and keeping those that approximately hold.
///
/// This mirrors how Experiment 8 of the paper obtains large DC sets "to
/// simulate the knowledge from the domain expert": discovery is treated as
/// public input preparation, not as part of the private mechanism.
std::vector<std::string> DiscoverApproximateDcs(const Table& table,
                                                const DiscoveryOptions& options,
                                                Rng* rng);

}  // namespace kamino

#endif  // KAMINO_DC_DISCOVERY_H_
