#include "kamino/store/spill_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "kamino/data/chunk_codec.h"
#include "kamino/io/bytes.h"

namespace kamino::store {
namespace {

std::string SpillParentDir(const std::string& dir_hint) {
  if (!dir_hint.empty()) return dir_hint;
  const char* tmpdir = std::getenv("TMPDIR");
  if (tmpdir != nullptr && tmpdir[0] != '\0') return tmpdir;
  return "/tmp";
}

Status BlockCorrupt(size_t index, const std::string& why) {
  return Status::InvalidArgument("spill block " + std::to_string(index) +
                                 ": " + why);
}

}  // namespace

SpillStore::SpillStore(int fd, std::string dir_path, std::string file_path)
    : fd_(fd),
      dir_path_(std::move(dir_path)),
      file_path_(std::move(file_path)) {
  writer_ = std::make_unique<SpillWriter>(fd_, file_path_);
}

Result<std::unique_ptr<SpillStore>> SpillStore::Create(
    const std::string& dir_hint) {
  // mkdtemp gives the store a unique private directory, so concurrent jobs
  // (or a crashed predecessor's leftovers) can never collide on names.
  std::string tmpl = SpillParentDir(dir_hint) + "/kamino-spill-XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) {
    return Status::IoError("cannot create spill directory under " +
                           SpillParentDir(dir_hint) + ": " +
                           std::strerror(errno));
  }
  std::string dir(buf.data());
  std::string file = dir + "/frozen.spill";
  const int fd = ::open(file.c_str(), O_CREAT | O_RDWR | O_TRUNC | O_CLOEXEC,
                        0600);
  if (fd < 0) {
    const std::string detail = std::strerror(errno);
    ::rmdir(dir.c_str());
    return Status::IoError("cannot create spill file " + file + ": " +
                           detail);
  }
  return std::unique_ptr<SpillStore>(
      new SpillStore(fd, std::move(dir), std::move(file)));
}

SpillStore::~SpillStore() {
  if (fd_ >= 0) ::close(fd_);
  // Best effort: a failed unlink (already gone, permissions yanked) must
  // not turn teardown into a crash.
  ::unlink(file_path_.c_str());
  ::rmdir(dir_path_.c_str());
}

Status SpillStore::AppendBlock(const std::vector<uint8_t>& payload,
                               uint64_t rows) {
  KAMINO_ASSIGN_OR_RETURN(const ChunkHeader header, PeekChunkHeader(payload));
  if (header.rows != rows) {
    return Status::Internal(
        "spill block payload carries " + std::to_string(header.rows) +
        " rows, caller framed " + std::to_string(rows));
  }
  std::vector<uint8_t> frame;
  frame.reserve(payload.size() + kSpillBlockFramingBytes);
  frame.insert(frame.end(), kSpillBlockMagic, kSpillBlockMagic + 4);
  io::AppendU32(&frame, kSpillFormatVersion);
  io::AppendU64(&frame, rows);
  io::AppendU64(&frame, static_cast<uint64_t>(payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());
  io::AppendU64(&frame, io::DigestBytes(frame.data(), frame.size()));

  BlockMeta meta;
  meta.offset = writer_->offset();
  meta.length = frame.size();
  meta.rows = rows;
  KAMINO_RETURN_IF_ERROR(writer_->Append(frame));
  blocks_.push_back(meta);
  spilled_rows_ += rows;
  return Status::OK();
}

Status SpillStore::ReadExact(uint64_t offset, uint64_t length,
                             std::vector<uint8_t>* out) const {
  out->resize(length);
  size_t done = 0;
  while (done < length) {
    const ssize_t n =
        ::pread(fd_, out->data() + done, length - done,
                static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("spill read from " + file_path_ +
                             " failed: " + std::strerror(errno));
    }
    if (n == 0) {
      return Status::IoError("spill file " + file_path_ +
                             " truncated: short read at offset " +
                             std::to_string(offset + done));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> SpillStore::ReadValidatedPayload(size_t index) {
  if (index >= blocks_.size()) {
    return Status::InvalidArgument("spill block index " +
                                   std::to_string(index) + " out of range");
  }
  KAMINO_RETURN_IF_ERROR(writer_->Flush());
  const BlockMeta& meta = blocks_[index];
  std::vector<uint8_t> frame;
  KAMINO_RETURN_IF_ERROR(ReadExact(meta.offset, meta.length, &frame));
  if (frame.size() < kSpillBlockFramingBytes) {
    return BlockCorrupt(index, "frame shorter than fixed framing");
  }
  const uint64_t stored_digest =
      [&frame] {
        io::ByteReader tail(frame.data() + frame.size() - 8, 8);
        uint64_t d = 0;
        tail.ReadU64(&d);
        return d;
      }();
  if (io::DigestBytes(frame.data(), frame.size() - 8) != stored_digest) {
    return BlockCorrupt(index, "digest mismatch (bit flip or torn write)");
  }
  io::ByteReader in(frame.data(), frame.size() - 8);
  const uint8_t* magic = nullptr;
  if (!in.ReadBytes(&magic, 4) ||
      std::memcmp(magic, kSpillBlockMagic, 4) != 0) {
    return BlockCorrupt(index, "bad magic");
  }
  uint32_t version = 0;
  if (!in.ReadU32(&version) || version != kSpillFormatVersion) {
    return BlockCorrupt(index,
                        "unsupported format version " +
                            std::to_string(version));
  }
  uint64_t rows = 0, payload_len = 0;
  if (!in.ReadU64(&rows) || !in.ReadU64(&payload_len)) {
    return BlockCorrupt(index, "truncated header");
  }
  if (rows != meta.rows) {
    return BlockCorrupt(index, "framed row count does not match metadata");
  }
  if (payload_len != in.remaining()) {
    return BlockCorrupt(index, "payload length does not match frame");
  }
  const uint8_t* payload_bytes = nullptr;
  if (!in.ReadBytes(&payload_bytes, payload_len)) {
    return BlockCorrupt(index, "truncated payload");
  }
  return std::vector<uint8_t>(payload_bytes, payload_bytes + payload_len);
}

Result<std::vector<uint8_t>> SpillStore::ReadBlockPayload(size_t index) {
  return ReadValidatedPayload(index);
}

Result<Table> SpillStore::ReadBlock(size_t index, const Schema& schema) {
  KAMINO_ASSIGN_OR_RETURN(const std::vector<uint8_t> payload,
                          ReadValidatedPayload(index));
  KAMINO_ASSIGN_OR_RETURN(Table rows, DecodeChunkColumns(schema, payload));
  if (rows.num_rows() != blocks_[index].rows) {
    return BlockCorrupt(index, "decoded row count does not match frame");
  }
  return rows;
}

}  // namespace kamino::store
