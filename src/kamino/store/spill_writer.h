#ifndef KAMINO_STORE_SPILL_WRITER_H_
#define KAMINO_STORE_SPILL_WRITER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "kamino/common/status.h"

namespace kamino::store {

/// Size of the writer's accumulation buffer. Blocks smaller than this
/// coalesce into one write(); larger appends drain through it in aligned
/// slabs.
inline constexpr size_t kSpillBufferBytes = 256 * 1024;

/// Mid-stream write() calls are issued in multiples of this, so every
/// syscall except the final tail flush lands on an aligned file offset.
inline constexpr size_t kSpillWriteAlignment = 4096;

/// Buffered append-only writer over a POSIX file descriptor, used by the
/// spill store to lay frozen-slice blocks onto disk with few large
/// alignment-friendly write() calls instead of one syscall per field.
///
/// Append copies into an internal buffer and drains it in
/// `kSpillWriteAlignment`-multiples once it holds at least
/// `kSpillBufferBytes`, carrying the unaligned tail over; Flush writes
/// whatever remains (the only write allowed to end unaligned). ENOSPC and
/// short writes surface as `Status::IoError` carrying the errno detail —
/// never a crash — and latch the writer into a failed state that rejects
/// further appends with the same status.
///
/// The writer borrows the descriptor; the owner (SpillStore) closes it.
/// Not thread-safe: the progressive-merge coordinator is the only writer.
class SpillWriter {
 public:
  SpillWriter(int fd, std::string path_for_errors);

  SpillWriter(const SpillWriter&) = delete;
  SpillWriter& operator=(const SpillWriter&) = delete;

  /// Appends `size` bytes. May issue zero or more aligned write() calls.
  Status Append(const uint8_t* data, size_t size);
  Status Append(const std::vector<uint8_t>& bytes) {
    return Append(bytes.data(), bytes.size());
  }

  /// Drains the buffered tail to the file. Idempotent.
  Status Flush();

  /// Logical bytes appended so far (buffered or written).
  uint64_t offset() const { return offset_; }

 private:
  /// write()-until-done loop; latches `failed_` on error.
  Status WriteAll(const uint8_t* data, size_t size);

  int fd_;
  std::string path_;
  std::vector<uint8_t> buffer_;
  uint64_t offset_ = 0;
  Status failed_;
};

}  // namespace kamino::store

#endif  // KAMINO_STORE_SPILL_WRITER_H_
