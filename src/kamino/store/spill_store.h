#ifndef KAMINO_STORE_SPILL_STORE_H_
#define KAMINO_STORE_SPILL_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "kamino/common/status.h"
#include "kamino/data/table.h"
#include "kamino/store/spill_writer.h"

namespace kamino::store {

/// On-disk spill format version. Bump on any layout change; readers reject
/// versions they do not understand.
inline constexpr uint32_t kSpillFormatVersion = 1;

/// Per-block frame magic ("Kamino SPill Block").
inline constexpr uint8_t kSpillBlockMagic[4] = {'K', 'S', 'P', 'B'};

/// Fixed framing bytes around each block's payload:
/// 4 magic + 4 version + 8 rows + 8 payload length before it, 8 digest after.
inline constexpr size_t kSpillBlockFramingBytes = 4 + 4 + 8 + 8 + 8;

/// Append-only store of frozen-slice spill blocks under progressive merge.
///
/// Each block is one frozen shard slice, already encoded by the chunk codec
/// (`EncodeChunkColumns`), sealed into a self-validating frame:
///
/// | bytes | field                                             |
/// |-------|---------------------------------------------------|
/// | 4     | magic "KSPB"                                      |
/// | 4     | u32 format version                                |
/// | 8     | u64 row count of the slice                        |
/// | 8     | u64 payload length                                |
/// | ...   | chunk-codec payload                               |
/// | 8     | u64 digest over everything above (io::DigestBytes)|
///
/// Blocks live in a single append-only file inside a store-private temp
/// directory (`mkdtemp` under the caller's hint, else $TMPDIR, else /tmp),
/// written through `SpillWriter`'s aligned buffered appends. Reads are
/// fully validating — magic, version, framed row count, length, digest,
/// then the codec's own checks — so truncation or bit flips surface as a
/// `Status`, never as silently wrong rows.
///
/// The destructor closes the descriptor and best-effort unlinks the file
/// and directory, which covers job completion, cancellation (the store
/// lives on the synthesis stack and unwinds with it), and engine
/// destruction (joining a cancelled job unwinds the same stack).
///
/// Not thread-safe: the progressive-merge coordinator thread is the only
/// caller.
class SpillStore {
 public:
  /// Location and shape of one sealed block inside the spill file.
  struct BlockMeta {
    uint64_t offset = 0;  // file offset of the frame's first byte
    uint64_t length = 0;  // framed length, payload + kSpillBlockFramingBytes
    uint64_t rows = 0;    // rows carried by the payload
  };

  /// Creates the temp directory and the spill file. `dir_hint` is the
  /// parent for the store's private directory; empty means $TMPDIR or
  /// /tmp. Fails with IoError if the directory or file cannot be created.
  static Result<std::unique_ptr<SpillStore>> Create(
      const std::string& dir_hint);

  ~SpillStore();

  SpillStore(const SpillStore&) = delete;
  SpillStore& operator=(const SpillStore&) = delete;

  /// Seals `payload` (an `EncodeChunkColumns` buffer carrying `rows` rows)
  /// into a framed block and appends it. The payload header's row count is
  /// cross-checked against `rows` before anything is written.
  Status AppendBlock(const std::vector<uint8_t>& payload, uint64_t rows);

  /// Reads block `index` back, validating the full frame (magic, version,
  /// row count, length, digest) before decoding the payload against
  /// `schema`. Flushes pending buffered writes first.
  Result<Table> ReadBlock(size_t index, const Schema& schema);

  /// Reads block `index`'s raw codec payload (frame validated, payload not
  /// decoded) — the pass-through source for compressed chunk delivery.
  Result<std::vector<uint8_t>> ReadBlockPayload(size_t index);

  size_t block_count() const { return blocks_.size(); }
  const BlockMeta& block(size_t index) const { return blocks_[index]; }

  /// Total rows across all sealed blocks.
  uint64_t spilled_rows() const { return spilled_rows_; }
  /// Total file bytes appended (payloads + framing).
  uint64_t spilled_bytes() const { return writer_->offset(); }

  const std::string& file_path() const { return file_path_; }
  const std::string& dir_path() const { return dir_path_; }

 private:
  SpillStore(int fd, std::string dir_path, std::string file_path);

  /// pread()-until-done of `length` bytes at `offset`.
  Status ReadExact(uint64_t offset, uint64_t length,
                   std::vector<uint8_t>* out) const;

  /// Validates block `index`'s frame and returns its payload bytes.
  Result<std::vector<uint8_t>> ReadValidatedPayload(size_t index);

  int fd_;
  std::string dir_path_;
  std::string file_path_;
  std::unique_ptr<SpillWriter> writer_;
  std::vector<BlockMeta> blocks_;
  uint64_t spilled_rows_ = 0;
};

}  // namespace kamino::store

#endif  // KAMINO_STORE_SPILL_STORE_H_
