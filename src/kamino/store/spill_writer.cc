#include "kamino/store/spill_writer.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace kamino::store {

SpillWriter::SpillWriter(int fd, std::string path_for_errors)
    : fd_(fd), path_(std::move(path_for_errors)) {
  buffer_.reserve(kSpillBufferBytes + kSpillWriteAlignment);
}

Status SpillWriter::WriteAll(const uint8_t* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd_, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      failed_ = Status::IoError("spill write to " + path_ +
                                " failed: " + std::strerror(errno));
      return failed_;
    }
    if (n == 0) {
      // A regular file reporting zero progress means the device cannot
      // take the bytes (out of space without errno on some filesystems).
      failed_ = Status::IoError("spill write to " + path_ +
                                " made no progress (device full?)");
      return failed_;
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status SpillWriter::Append(const uint8_t* data, size_t size) {
  if (!failed_.ok()) return failed_;
  offset_ += size;
  while (size > 0) {
    const size_t room = kSpillBufferBytes + kSpillWriteAlignment -
                        buffer_.size();
    const size_t take = size < room ? size : room;
    buffer_.insert(buffer_.end(), data, data + take);
    data += take;
    size -= take;
    if (buffer_.size() >= kSpillBufferBytes) {
      // Drain the largest aligned multiple; the tail carries over so the
      // next write() starts on an aligned file offset again.
      const size_t drain =
          buffer_.size() - (buffer_.size() % kSpillWriteAlignment);
      KAMINO_RETURN_IF_ERROR(WriteAll(buffer_.data(), drain));
      buffer_.erase(buffer_.begin(),
                    buffer_.begin() + static_cast<ptrdiff_t>(drain));
    }
  }
  return Status::OK();
}

Status SpillWriter::Flush() {
  if (!failed_.ok()) return failed_;
  if (buffer_.empty()) return Status::OK();
  KAMINO_RETURN_IF_ERROR(WriteAll(buffer_.data(), buffer_.size()));
  buffer_.clear();
  return Status::OK();
}

}  // namespace kamino::store
