#ifndef KAMINO_CORE_OPTIONS_H_
#define KAMINO_CORE_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "kamino/common/status.h"

namespace kamino {

/// Every knob of the Kamino pipeline: learning hyper-parameters, the DP
/// parameter set Psi (Algorithm 6 output), and the ablation/optimization
/// switches exercised by the evaluation section.
struct KaminoOptions {
  // --- Model hyper-parameters ---
  /// Embedding dimension d of the tuple embedding.
  size_t embed_dim = 12;
  /// Quantization bins q for numeric histogram attributes.
  int quantize_bins = 16;
  /// DP-SGD learning rate eta.
  double learning_rate = 0.05;

  // --- DP parameter set Psi (Algorithm 6 / Theorem 1) ---
  /// Noise scale for the first-attribute histogram (and any large-domain
  /// Gaussian-fallback histograms).
  double sigma_g = 2.0;
  /// DP-SGD noise multiplier.
  double sigma_d = 1.1;
  /// L2 gradient clipping bound C.
  double clip_norm = 1.0;
  /// Expected DP-SGD batch size b.
  size_t batch_size = 16;
  /// DP-SGD iterations T per sub-model.
  size_t iterations = 100;
  /// Noise multiplier for the violation matrix (weight learning).
  double sigma_w = 1.0;
  /// Expected weight-learning sample size Lw.
  size_t weight_sample = 100;
  /// Weight-fitting iterations Tw (post-processing; no privacy cost).
  size_t weight_iterations = 100;
  /// Weight-fitting batch size bw (post-processing).
  size_t weight_batch = 1;
  /// When true, skip all noise injection (the epsilon = infinity runs).
  bool non_private = false;

  // --- Sampling ---
  /// Candidate set size d for continuous / very large domains.
  int max_candidates = 12;
  /// MCMC re-samples m per attribute after the column is synthesized.
  size_t mcmc_resamples = 0;

  // --- Optimizations (section 4.3 / 7.3.6) ---
  /// Categorical attributes with more categories than this are learned via
  /// a noisy histogram and sampled without context (Gaussian fallback).
  int64_t large_domain_threshold = 96;
  /// Adjacent small categorical attributes are grouped into one hyper
  /// attribute while the joint domain stays at or below this.
  int64_t group_domain_threshold = 64;
  /// Master switch for hyper-attribute grouping.
  bool enable_grouping = true;
  /// Resolve hard FDs by group lookup instead of candidate scoring.
  bool enable_fd_fast_path = false;
  /// Train sub-models with fresh (unshared) embeddings, allowing parallel
  /// training across threads.
  bool parallel_training = false;

  // --- Ablations (Experiment 5/6) ---
  /// RandSampling: drop the exp(-w * violations) factor during sampling.
  bool constraint_aware_sampling = true;
  /// RandSequence: replace Algorithm 4 with a random permutation.
  bool random_sequence = false;
  /// Use accept-reject sampling instead of direct reweighted sampling.
  bool accept_reject = false;
  /// Maximum AR proposals per cell before keeping the last sample.
  size_t ar_max_tries = 300;

  // --- Execution runtime ---
  /// Worker threads for the parallel runtime (violation matrix, candidate
  /// scoring, batched MCMC, per-example DP-SGD gradients). 0 means "use
  /// hardware concurrency". Synthetic output is bit-identical for every
  /// value: parallel regions draw randomness from per-task `RngStream`
  /// sub-seeds and reduce in a fixed order, never from thread timing.
  size_t num_threads = 0;

  /// Shards for shard-parallel synthesis (core/sampler.cc): the output rows
  /// are partitioned into `num_shards` contiguous shards, each sampled
  /// concurrently from its own `RngStream` sub-seed with its own per-shard
  /// violation indices, then merged with a bounded reconciliation pass
  /// that repairs cross-shard DC conflicts. 1 = exact sequential paper
  /// semantics (the default); 0 = one shard per worker thread. Synthetic
  /// output is a pure function of (seed, resolved num_shards): changing
  /// `num_threads` never changes it, changing the shard count does. Note
  /// that 0 resolves the shard count *from* the thread budget, so for
  /// machine-independent output pick an explicit shard count.
  size_t num_shards = 1;

  /// Re-sample budget of the shard-merge reconciliation pass: at most this
  /// many rows with remaining cross-shard violations are re-scored (and
  /// possibly re-valued) against the merged instance. Hard FDs are always
  /// canonicalized exactly afterwards, regardless of the budget. Only
  /// consulted when `adaptive_merge_budget` is false (the fixed
  /// override); the adaptive mode derives its own budget.
  size_t shard_merge_resamples = 64;

  /// When true (the default), the reconciliation budget scales with the
  /// observed cross-shard conflict count (a couple of unit repairs per
  /// conflicted row) instead of the fixed `shard_merge_resamples` knob,
  /// and the repair sweep stops early once consecutive repairs stop
  /// reducing the weighted violation penalty. Deterministic: the conflict
  /// set and penalties are pure functions of (seed, num_shards), so the
  /// output contract is unchanged. Set to false to restore the fixed
  /// budget.
  bool adaptive_merge_budget = true;

  /// When true (the default), the shard-merge reconciliation sweep repairs
  /// conflict rows in descending order of their weighted soft-DC penalty
  /// contribution (ties and soft-free runs fall back to row order), so the
  /// bounded budget is spent where it lowers the measured penalty most.
  /// Set to false for the pre-session-API row-order sweep. Deterministic
  /// either way: the ordering is a pure function of the merged instance,
  /// which is itself a pure function of (seed, num_shards).
  bool soft_penalty_merge_order = true;

  // --- Observability (src/kamino/obs/) ---
  /// Record pipeline/sampler/runtime spans into the process-wide
  /// `obs::TraceRecorder` (exportable as Chrome trace-event JSON via
  /// `KaminoEngine::DumpTrace`). Off by default. Applied at the pipeline
  /// entry points as a monotone enable — a run asking for tracing turns
  /// the global recorder on; runs that don't leave it alone (so
  /// concurrent traced and untraced jobs compose; last-enabler semantics
  /// mirror `num_threads`). Never changes the synthesized output: spans
  /// observe the run, they do not steer it.
  bool enable_tracing = false;
  /// Record counters/gauges/histograms into the process-wide
  /// `obs::MetricsRegistry` (export via `KaminoEngine::DumpMetrics`).
  /// Off by default; monotone enable like `enable_tracing`. Never
  /// changes the synthesized output.
  bool enable_metrics = false;
  /// Per-thread cap on retained trace events; events past it are dropped
  /// and counted, never unbounded. Must be >= 1 when `enable_tracing` is
  /// set (Validate rejects the combination that could record nothing).
  size_t trace_capacity_events = size_t{1} << 20;

  // --- Streaming delivery (src/kamino/data/chunk_codec.h) ---
  /// Deliver `TableChunk`s as compressed per-column payloads (dictionary
  /// codes bit-packed against the chunk-local range, numeric columns
  /// frame-of-reference / run-length / raw bit patterns, smallest wins)
  /// instead of materialized rows. Sinks decode with
  /// `DecodeChunkColumns`; round trips are bit-exact, so the delivered
  /// rows are unchanged — only their wire form is. Off by default.
  bool compress_chunks = false;
  /// Reconcile each shard against the already-frozen prefix [0, s) as
  /// soon as it finishes sampling, freeze the grown prefix, and emit its
  /// chunk immediately — while later shards are still sampling — instead
  /// of running one global merge after all shards complete. Cuts
  /// time-to-first-chunk from ~= job total to ~ 1/num_shards of it.
  /// Contract: output is a pure function of (seed, num_shards),
  /// bit-identical at any num_threads; rows already emitted are never
  /// rewritten (prefix immutability); hard DCs are exact over the frozen
  /// prefix after every freeze. The freeze may only rewrite the incoming
  /// shard's rows, so the result generally differs from the global
  /// merge's joint choices (and soft-DC repair sweeps run in row order;
  /// `merge_soft_penalty_delta` is not measured). No effect at
  /// num_shards <= 1, which keeps the paper-semantics sequential sampler
  /// (golden digest) regardless of this flag. Off by default.
  bool progressive_merge = false;
  /// Spill each frozen slice to disk (`src/kamino/store/`) at its freeze
  /// and drop the in-memory columns, keeping only the live shards, the
  /// merged violation-index state, and the persisted frozen FD/envelope
  /// lookups — turning "n rows" from a RAM limit into a disk limit.
  /// Implies `progressive_merge`; like it, synthesized rows are a pure
  /// function of (seed, num_shards): a run with this flag on is
  /// bit-identical to the in-memory progressive run at any num_threads.
  /// No effect at num_shards <= 1 (golden digest unchanged). Off by
  /// default.
  bool out_of_core = false;
  /// Parent directory for the out-of-core spill store's private
  /// `mkdtemp` directory. Empty (the default) means $TMPDIR, else /tmp.
  std::string spill_dir;

  // --- Model registry (src/kamino/service/engine.h) ---
  /// Capacity of the engine's LRU registry of hot fitted models
  /// (`KaminoEngine::RegisterModel/GetModel/LoadModel`): registering past
  /// it evicts the least recently used model (counted in the obs metrics
  /// as `kamino.registry.evictions`). Must be >= 1.
  size_t model_registry_capacity = 8;

  /// Root seed for all randomness in the run.
  uint64_t seed = 1;

  /// Rejects nonsensical knob combinations (non-positive quantize_bins,
  /// zero-try accept-reject budgets, non-positive noise scales on a
  /// private run, ...) with InvalidArgument instead of letting the
  /// pipeline silently misbehave. Checked at the RunKamino / engine Fit
  /// entry points; lower-level stages trust their inputs.
  Status Validate() const;
};

}  // namespace kamino

#endif  // KAMINO_CORE_OPTIONS_H_
