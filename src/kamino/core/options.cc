#include "kamino/core/options.h"

#include <string>

namespace kamino {
namespace {

Status Bad(const std::string& knob, const std::string& why) {
  return Status::InvalidArgument("KaminoOptions." + knob + " " + why);
}

}  // namespace

Status KaminoOptions::Validate() const {
  if (embed_dim == 0) return Bad("embed_dim", "must be >= 1");
  if (quantize_bins <= 0) return Bad("quantize_bins", "must be >= 1");
  if (!(learning_rate > 0.0)) return Bad("learning_rate", "must be > 0");
  if (batch_size == 0) return Bad("batch_size", "must be >= 1");
  if (iterations == 0) return Bad("iterations", "must be >= 1");
  if (!non_private) {
    // The DP parameter set only makes sense with positive noise scales and
    // a positive clipping bound; zero noise on a "private" run would claim
    // a finite epsilon it does not provide.
    if (!(sigma_g > 0.0)) return Bad("sigma_g", "must be > 0 on a private run");
    if (!(sigma_d > 0.0)) return Bad("sigma_d", "must be > 0 on a private run");
    if (!(sigma_w > 0.0)) return Bad("sigma_w", "must be > 0 on a private run");
    if (!(clip_norm > 0.0)) {
      return Bad("clip_norm", "must be > 0 on a private run");
    }
  }
  if (weight_sample == 0) return Bad("weight_sample", "must be >= 1");
  if (weight_batch == 0) return Bad("weight_batch", "must be >= 1");
  if (max_candidates <= 0) return Bad("max_candidates", "must be >= 1");
  if (accept_reject && ar_max_tries == 0) {
    return Bad("ar_max_tries", "must be >= 1 when accept_reject is set");
  }
  if (large_domain_threshold < 1) {
    return Bad("large_domain_threshold", "must be >= 1");
  }
  if (enable_grouping && group_domain_threshold < 1) {
    return Bad("group_domain_threshold",
               "must be >= 1 when enable_grouping is set");
  }
  if (enable_tracing && trace_capacity_events == 0) {
    return Bad("trace_capacity_events",
               "must be >= 1 when enable_tracing is set");
  }
  if (model_registry_capacity == 0) {
    return Bad("model_registry_capacity", "must be >= 1");
  }
  return Status::OK();
}

}  // namespace kamino
