#ifndef KAMINO_CORE_KAMINO_H_
#define KAMINO_CORE_KAMINO_H_

#include <string>
#include <vector>

#include "kamino/common/status.h"
#include "kamino/core/options.h"
#include "kamino/core/sampler.h"
#include "kamino/data/table.h"
#include "kamino/dc/constraint.h"

namespace kamino {

/// Wall-clock seconds spent in each phase of a run (Figure 7's profile).
struct PhaseTimings {
  double sequencing = 0.0;
  double parameter_search = 0.0;
  double training = 0.0;
  double violation_matrix = 0.0;  ///< violation matrix + weight learning
  double sampling = 0.0;
  /// Seconds of the shard-merge reconciliation pass. A sub-phase of
  /// `sampling` (already counted there), surfaced separately so the merge
  /// overhead of shard-parallel synthesis is visible; 0 when the run used
  /// a single shard.
  double shard_merge = 0.0;
  /// Thread budget the phases above ran with (resolved; >= 1). Compare
  /// the same phase across runs at different budgets for the realized
  /// per-phase speedup (bench_parallel_scaling automates this).
  size_t num_threads = 1;
  /// Shards the sampling phase was partitioned into (resolved; >= 1).
  size_t num_shards = 1;

  double Total() const {
    // shard_merge is inside sampling; do not double-count it.
    return sequencing + parameter_search + training + violation_matrix +
           sampling;
  }
};

/// Everything a Kamino run produces.
struct KaminoResult {
  Table synthetic;
  /// The schema sequence S chosen by Algorithm 4 (or the random ablation).
  std::vector<size_t> sequence;
  /// Learned (or hardness-implied) weight per input constraint.
  std::vector<double> dc_weights;
  /// The DP parameter set Psi actually used.
  KaminoOptions resolved_options;
  /// Privacy cost of the run under Theorem 1 (infinity if non-private).
  double epsilon_spent = 0.0;
  PhaseTimings timings;
  SynthesisTelemetry telemetry;
};

/// Kamino: constraint-aware differentially private data synthesis
/// (Algorithm 1).
///
/// Typical use:
///   KaminoConfig config;
///   config.epsilon = 1.0;
///   config.delta = 1e-6;
///   auto result = RunKamino(true_table, constraints, config);
///   if (result.ok()) { /* use result.value().synthetic */ }
struct KaminoConfig {
  /// Total privacy budget (epsilon, delta). Ignored when
  /// `options.non_private` is set.
  double epsilon = 1.0;
  double delta = 1e-6;
  /// Learn weights for non-hard constraints with Algorithm 5. When false,
  /// the weights provided on the constraints are used as-is.
  bool learn_weights = true;
  /// Number of synthetic rows; 0 means "same as the input instance".
  size_t output_rows = 0;
  /// Base hyper-parameters; the DP subset is overridden by the parameter
  /// search unless `options.non_private` is set.
  KaminoOptions options;

  /// Rejects nonsensical configurations — a non-positive privacy budget
  /// on a private run, `delta` outside (0, 1), or any `options` knob that
  /// fails `KaminoOptions::Validate()` — with InvalidArgument instead of
  /// silently misbehaving. `RunKamino` and `KaminoEngine::Fit` check this
  /// on entry.
  Status Validate() const;
};

/// Runs the full pipeline: sequencing (Algorithm 4), parameter search
/// (Algorithm 6), model training (Algorithm 2), weight learning
/// (Algorithm 5, when requested and soft DCs are present) and
/// constraint-aware sampling (Algorithm 3).
///
/// A thin composition of the two pipeline stages (core/pipeline.h):
/// `FitPipeline` + `SamplePipeline` with the default `SampleSpec`,
/// bit-identical to the pre-split monolithic implementation. Callers that
/// synthesize more than one instance from the same data should use the
/// session API (`kamino/service/engine.h`) instead — sampling is pure
/// post-processing, so a single fit's privacy budget amortizes over every
/// additional synthesis request.
///
/// `options.num_threads` configures the process-wide parallel runtime
/// (kamino/runtime/). Concurrent RunKamino calls are safe — an in-flight
/// run keeps a reference to the pool it started on even if another run
/// resizes the budget — but the budget itself is global: the last caller
/// to set it wins for subsequently started parallel regions. This
/// contract is exercised for real by the overlapping-jobs test in
/// tests/service/engine_test.cc: two concurrent jobs at different
/// budgets must both reproduce their single-run outputs bit for bit.
///
/// `options.num_shards` partitions the sampling phase into shard-parallel
/// slices (see core/sampler.h). The synthetic instance is a pure function
/// of (options.seed, resolved num_shards); at a fixed shard count
/// `num_threads` only changes wall clock (num_shards = 0 derives the
/// shard count from the thread budget, so there the resolved worker count
/// picks the output contract).
Result<KaminoResult> RunKamino(const Table& data,
                               const std::vector<WeightedConstraint>& constraints,
                               const KaminoConfig& config);

}  // namespace kamino

#endif  // KAMINO_CORE_KAMINO_H_
