#include "kamino/core/sequencing.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "kamino/common/logging.h"

namespace kamino {
namespace {

struct Fd {
  std::vector<size_t> lhs;
  size_t rhs;
};

int64_t MinLhsDomain(const Schema& schema, const Fd& fd) {
  int64_t best = std::numeric_limits<int64_t>::max();
  for (size_t a : fd.lhs) {
    best = std::min(best, schema.attribute(a).DomainSize());
  }
  return best;
}

}  // namespace

std::vector<size_t> SequenceSchema(
    const Schema& schema, const std::vector<WeightedConstraint>& constraints) {
  // Line 2: collect FD-shaped DCs, sorted by increasing minimal LHS domain.
  std::vector<Fd> fds;
  for (const WeightedConstraint& wc : constraints) {
    Fd fd;
    if (wc.dc.AsFd(&fd.lhs, &fd.rhs)) fds.push_back(std::move(fd));
  }
  std::stable_sort(fds.begin(), fds.end(), [&](const Fd& a, const Fd& b) {
    return MinLhsDomain(schema, a) < MinLhsDomain(schema, b);
  });

  std::vector<size_t> sequence;
  std::vector<bool> placed(schema.size(), false);
  auto append = [&](size_t attr) {
    if (!placed[attr]) {
      placed[attr] = true;
      sequence.push_back(attr);
    }
  };

  // Lines 4-7: for each FD append its LHS (sorted by domain size) then RHS.
  for (const Fd& fd : fds) {
    std::vector<size_t> lhs = fd.lhs;
    std::stable_sort(lhs.begin(), lhs.end(), [&](size_t a, size_t b) {
      return schema.attribute(a).DomainSize() < schema.attribute(b).DomainSize();
    });
    for (size_t a : lhs) append(a);
    append(fd.rhs);
  }

  // Line 8: remaining attributes by ascending domain size.
  std::vector<size_t> rest;
  for (size_t a = 0; a < schema.size(); ++a) {
    if (!placed[a]) rest.push_back(a);
  }
  std::stable_sort(rest.begin(), rest.end(), [&](size_t a, size_t b) {
    return schema.attribute(a).DomainSize() < schema.attribute(b).DomainSize();
  });
  for (size_t a : rest) append(a);

  KAMINO_CHECK(sequence.size() == schema.size()) << "sequence lost attributes";
  return sequence;
}

std::vector<size_t> RandomSequence(const Schema& schema, Rng* rng) {
  std::vector<size_t> sequence(schema.size());
  std::iota(sequence.begin(), sequence.end(), 0);
  rng->Shuffle(&sequence);
  return sequence;
}

std::vector<std::vector<size_t>> ActivationPositions(
    const std::vector<size_t>& sequence,
    const std::vector<WeightedConstraint>& constraints) {
  std::vector<size_t> position_of(sequence.size());
  for (size_t p = 0; p < sequence.size(); ++p) position_of[sequence[p]] = p;

  std::vector<std::vector<size_t>> active(sequence.size());
  for (size_t l = 0; l < constraints.size(); ++l) {
    size_t max_pos = 0;
    for (size_t attr : constraints[l].dc.attributes()) {
      KAMINO_CHECK(attr < position_of.size()) << "DC attribute out of schema";
      max_pos = std::max(max_pos, position_of[attr]);
    }
    active[max_pos].push_back(l);
  }
  return active;
}

}  // namespace kamino
