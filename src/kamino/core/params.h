#ifndef KAMINO_CORE_PARAMS_H_
#define KAMINO_CORE_PARAMS_H_

#include <vector>

#include "kamino/common/status.h"
#include "kamino/core/options.h"
#include "kamino/data/schema.h"

namespace kamino {

/// Computes the end-to-end (epsilon, delta) privacy cost of running Kamino
/// with the given options on an instance of `num_rows` rows, using the RDP
/// composition of Theorem 1. `num_histograms` and `num_models` count the
/// planned histogram and discriminative units; `learn_weights` adds the
/// violation-matrix release of Algorithm 5.
double PrivacyCostEpsilon(const KaminoOptions& options, size_t num_rows,
                          size_t num_histograms, size_t num_models,
                          bool learn_weights, double delta);

/// Algorithm 6: searches a DP parameter set Psi whose total privacy cost
/// fits within (epsilon, delta).
///
/// Starts from the most accurate configuration (minimal noise, maximal
/// iterations/batch from `base`) and repeatedly backs off in priority
/// order - fewer iterations T, larger sigma_d, larger sigma_g, smaller
/// batch b - until the RDP bound of Theorem 1 is within budget. If the
/// bounded ranges cannot fit the budget, sigma_d and sigma_g keep growing
/// without bound (very small epsilon simply means very noisy training).
///
/// `sequence` must already be chosen (Algorithm 4) because the number of
/// sub-models and histogram releases depends on the unit plan.
Result<KaminoOptions> SearchDpParameters(double epsilon, double delta,
                                         const Schema& schema,
                                         const std::vector<size_t>& sequence,
                                         size_t num_rows, bool learn_weights,
                                         const KaminoOptions& base);

}  // namespace kamino

#endif  // KAMINO_CORE_PARAMS_H_
