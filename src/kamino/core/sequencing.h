#ifndef KAMINO_CORE_SEQUENCING_H_
#define KAMINO_CORE_SEQUENCING_H_

#include <cstddef>
#include <vector>

#include "kamino/common/rng.h"
#include "kamino/data/schema.h"
#include "kamino/dc/constraint.h"

namespace kamino {

/// Algorithm 4: constraint-aware attribute sequencing.
///
/// Returns a permutation of attribute indices such that for every
/// FD-shaped DC X -> Y in `constraints`, the attributes of X appear before
/// Y; FDs are processed by increasing minimal LHS domain size and their
/// attributes appended LHS (sorted by domain size) before RHS. Attributes
/// not touched by any FD are appended by ascending domain size. The true
/// instance is never consulted, so sequencing costs no privacy budget.
std::vector<size_t> SequenceSchema(
    const Schema& schema, const std::vector<WeightedConstraint>& constraints);

/// Ablation baseline ("RandSequence" of Experiment 5): a uniformly random
/// permutation of the attributes.
std::vector<size_t> RandomSequence(const Schema& schema, Rng* rng);

/// Assigns every DC to its activation position: the largest sequence
/// position among the DC's attributes (the position at which all of its
/// attributes have been sampled). `result[p]` lists the indices into
/// `constraints` of the DCs activated at sequence position p (the set
/// Phi_{A_j} of section 3.2).
std::vector<std::vector<size_t>> ActivationPositions(
    const std::vector<size_t>& sequence,
    const std::vector<WeightedConstraint>& constraints);

}  // namespace kamino

#endif  // KAMINO_CORE_SEQUENCING_H_
