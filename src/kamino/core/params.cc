#include "kamino/core/params.h"

#include <algorithm>
#include <cmath>

#include "kamino/core/model.h"
#include "kamino/dp/rdp.h"

namespace kamino {

double PrivacyCostEpsilon(const KaminoOptions& options, size_t num_rows,
                          size_t num_histograms, size_t num_models,
                          bool learn_weights, double delta) {
  KaminoPrivacyParams params;
  params.sigma_g = options.sigma_g;
  params.num_histograms = std::max<size_t>(1, num_histograms);
  params.sigma_d = options.sigma_d;
  params.batch_size = options.batch_size;
  params.iterations = options.iterations;
  params.num_models = num_models;
  params.num_rows = num_rows;
  params.learn_weights = learn_weights;
  params.sigma_w = options.sigma_w;
  params.weight_sample = options.weight_sample;
  return KaminoEpsilon(params, delta);
}

Result<KaminoOptions> SearchDpParameters(double epsilon, double delta,
                                         const Schema& schema,
                                         const std::vector<size_t>& sequence,
                                         size_t num_rows, bool learn_weights,
                                         const KaminoOptions& base) {
  if (epsilon <= 0.0 || delta <= 0.0 || delta >= 1.0) {
    return Status::InvalidArgument("privacy budget must have eps>0, 0<delta<1");
  }
  KaminoOptions options = base;
  // Count the planned units for Theorem 1 before touching any data.
  const std::vector<ModelUnit> units =
      ProbabilisticDataModel::PlanUnits(schema, sequence, options);
  size_t num_histograms = 0;
  for (const ModelUnit& u : units) {
    if (u.kind == ModelUnit::Kind::kHistogram) ++num_histograms;
  }
  const size_t num_models = units.size() - num_histograms;

  // Line 2-5: optimistic initialization - minimal noise, maximal T and b.
  const double sigma_g_max =
      4.0 * std::sqrt(std::log(1.25 / delta)) / epsilon;
  const double sigma_d_max = 1.5;
  const size_t t_min = std::max<size_t>(10, base.iterations / 5);
  const size_t b_min = 16;
  options.sigma_g = std::max(0.5, base.sigma_g * 0.25);
  options.sigma_d = 1.0;
  options.iterations = base.iterations;
  options.batch_size = std::max<size_t>(b_min, base.batch_size);

  auto cost = [&]() {
    return PrivacyCostEpsilon(options, num_rows, num_histograms, num_models,
                              learn_weights, delta);
  };

  // Lines 10-15: priority-ordered back-off until the budget fits.
  int guard = 0;
  while (cost() > epsilon && guard++ < 10000) {
    bool changed = false;
    if (options.iterations > t_min) {
      options.iterations =
          std::max(t_min, static_cast<size_t>(options.iterations * 0.8));
      changed = true;
    }
    if (cost() <= epsilon) break;
    if (options.sigma_d < sigma_d_max) {
      options.sigma_d = std::min(sigma_d_max, options.sigma_d + 0.05);
      changed = true;
    }
    if (cost() <= epsilon) break;
    if (options.sigma_g < sigma_g_max) {
      options.sigma_g = std::min(sigma_g_max, options.sigma_g * 1.3);
      changed = true;
    }
    if (cost() <= epsilon) break;
    if (options.batch_size > b_min) {
      options.batch_size = std::max(
          b_min, static_cast<size_t>(options.batch_size / 2));
      changed = true;
    }
    if (!changed) {
      // All bounded knobs exhausted: grow the noise scales unboundedly.
      options.sigma_d *= 1.2;
      options.sigma_g *= 1.2;
      options.sigma_w *= 1.2;
    }
  }
  if (cost() > epsilon) {
    return Status::Internal("parameter search failed to fit privacy budget");
  }
  return options;
}

}  // namespace kamino
