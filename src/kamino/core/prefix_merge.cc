#include "kamino/core/prefix_merge.h"

#include <algorithm>
#include <map>
#include <utility>

#include "kamino/dc/constraint.h"

namespace kamino {
namespace {

bool ValueLt(const Value& a, const Value& b) {
  return EvalCompare(a, CompareOp::kLt, b);
}

using ValueVectorLess = PrefixKeyLess;

std::vector<Value> KeyOf(const Table& table, size_t row,
                         const std::vector<size_t>& attrs) {
  std::vector<Value> key;
  key.reserve(attrs.size());
  for (size_t a : attrs) key.push_back(table.at(row, a));
  return key;
}

/// Key -> (canonical RHS value, smallest frozen row holding the key).
using FrozenLookup =
    std::map<std::vector<Value>, std::pair<Value, size_t>, ValueVectorLess>;

size_t Find(std::vector<size_t>& parent, size_t i) {
  while (parent[i] != i) {
    parent[i] = parent[parent[i]];  // path halving
    i = parent[i];
  }
  return i;
}

}  // namespace

bool PrefixKeyLess::operator()(const std::vector<Value>& a,
                               const std::vector<Value>& b) const {
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    if (ValueLt(a[i], b[i])) return true;
    if (ValueLt(b[i], a[i])) return false;
  }
  return a.size() < b.size();
}

int64_t PrefixFrozenFdCanonicalize(Table* table,
                                   const std::vector<PrefixFdFamily>& families,
                                   size_t frozen_end,
                                   std::vector<bool>* attr_modified) {
  const size_t n = table->num_rows();
  if (frozen_end >= n || families.empty()) return 0;
  const size_t suffix = n - frozen_end;

  // Frozen lookups are invariant across rounds (frozen cells are never
  // written): build them once, one per (family, FD).
  std::vector<std::vector<FrozenLookup>> frozen(families.size());
  for (size_t f = 0; f < families.size(); ++f) {
    frozen[f].resize(families[f].lhs_sets.size());
    for (size_t d = 0; d < families[f].lhs_sets.size(); ++d) {
      for (size_t r = 0; r < frozen_end; ++r) {
        frozen[f][d].try_emplace(
            KeyOf(*table, r, families[f].lhs_sets[d]),
            std::make_pair(table->at(r, families[f].rhs), r));
      }
    }
  }

  auto mark = [&](size_t attr) {
    if (attr_modified != nullptr) (*attr_modified)[attr] = true;
  };

  int64_t total_rewrites = 0;
  // Rewrites can land on another family's LHS or RHS attributes; rounds
  // repeat until a fixpoint, bounded by the schema width like the global
  // canonicalization's sweep.
  for (size_t round = 0; round < table->num_columns() + 1; ++round) {
    int64_t rewrites = 0;
    for (size_t f = 0; f < families.size(); ++f) {
      const PrefixFdFamily& family = families[f];
      // Union suffix rows that any family FD forces to agree.
      std::vector<size_t> parent(suffix);
      for (size_t i = 0; i < suffix; ++i) parent[i] = i;
      for (size_t d = 0; d < family.lhs_sets.size(); ++d) {
        std::map<std::vector<Value>, size_t, ValueVectorLess> first_member;
        for (size_t i = 0; i < suffix; ++i) {
          auto [it, inserted] = first_member.try_emplace(
              KeyOf(*table, frozen_end + i, family.lhs_sets[d]), i);
          if (!inserted) parent[Find(parent, i)] = Find(parent, it->second);
        }
      }
      std::map<size_t, std::vector<size_t>> components;
      for (size_t i = 0; i < suffix; ++i) {
        components[Find(parent, i)].push_back(i);
      }

      for (const auto& [root, members] : components) {
        (void)root;
        // Adopt the frozen match with the smallest representative row;
        // with no frozen match, the smallest member's value (the global
        // rule, suffix-internal).
        size_t best_rep = static_cast<size_t>(-1);
        Value canonical = table->at(frozen_end + members[0], family.rhs);
        for (size_t i : members) {
          for (size_t d = 0; d < family.lhs_sets.size(); ++d) {
            const auto it = frozen[f][d].find(
                KeyOf(*table, frozen_end + i, family.lhs_sets[d]));
            if (it != frozen[f][d].end() && it->second.second < best_rep) {
              best_rep = it->second.second;
              canonical = it->second.first;
            }
          }
        }
        const bool has_frozen = best_rep != static_cast<size_t>(-1);

        for (size_t i : members) {
          const size_t r = frozen_end + i;
          if (!(table->at(r, family.rhs) == canonical)) {
            table->set(r, family.rhs, canonical);
            mark(family.rhs);
            ++rewrites;
          }
          if (!has_frozen) continue;
          for (size_t d = 0; d < family.lhs_sets.size(); ++d) {
            const auto it = frozen[f][d].find(
                KeyOf(*table, r, family.lhs_sets[d]));
            if (it == frozen[f][d].end() || it->second.first == canonical) {
              continue;
            }
            // The member bridges into a frozen group with a different
            // canonical value; the frozen side cannot move, so re-point
            // the member's key at the adopted representative's.
            for (size_t a : family.lhs_sets[d]) {
              const Value v = table->at(best_rep, a);
              if (!(table->at(r, a) == v)) {
                table->set(r, a, v);
                mark(a);
                ++rewrites;
              }
            }
          }
        }
      }
    }
    total_rewrites += rewrites;
    if (rewrites == 0) break;
  }
  return total_rewrites;
}

int64_t PrefixFrozenRankAlign(Table* table, const PrefixAlignSpec& spec,
                              size_t frozen_end) {
  const size_t n = table->num_rows();
  if (frozen_end >= n) return 0;
  auto oriented_lt = [&spec](const Value& a, const Value& b) {
    return spec.co_monotone ? ValueLt(a, b) : ValueLt(b, a);
  };
  // Context order with row-index tie-break: the deterministic walk both
  // the frozen envelope and the suffix assignment use.
  auto ctx_row_less = [&](size_t i, size_t j) {
    const Value& a = table->at(i, spec.ctx_attr);
    const Value& b = table->at(j, spec.ctx_attr);
    if (ValueLt(a, b)) return true;
    if (ValueLt(b, a)) return false;
    return i < j;
  };

  // Group rows by scope key, frozen and suffix separately.
  std::map<std::vector<Value>, std::pair<std::vector<size_t>, std::vector<size_t>>,
           ValueVectorLess>
      groups;
  for (size_t r = 0; r < n; ++r) {
    auto& lists = groups[KeyOf(*table, r, spec.group_attrs)];
    (r < frozen_end ? lists.first : lists.second).push_back(r);
  }

  int64_t rewrites = 0;
  for (auto& [key, lists] : groups) {
    (void)key;
    std::vector<size_t>& fsorted = lists.first;
    std::vector<size_t>& fresh = lists.second;
    if (fresh.empty()) continue;
    std::sort(fsorted.begin(), fsorted.end(), ctx_row_less);
    const size_t m = fsorted.size();

    // prefix_max[i] / suffix_min[i]: oriented running extrema of the
    // frozen dependent values along the context walk.
    std::vector<Value> prefix_max(m), suffix_min(m);
    for (size_t i = 0; i < m; ++i) {
      const Value& dep = table->at(fsorted[i], spec.dep_attr);
      prefix_max[i] =
          (i > 0 && oriented_lt(dep, prefix_max[i - 1])) ? prefix_max[i - 1]
                                                         : dep;
    }
    for (size_t i = m; i-- > 0;) {
      const Value& dep = table->at(fsorted[i], spec.dep_attr);
      suffix_min[i] =
          (i + 1 < m && oriented_lt(suffix_min[i + 1], dep)) ? suffix_min[i + 1]
                                                             : dep;
    }

    // Rank-align the suffix rows among themselves: walked in context
    // order, they receive their own dependent values in oriented sorted
    // order (the shard's value multiset, permuted)...
    std::sort(fresh.begin(), fresh.end(), ctx_row_less);
    std::vector<Value> targets;
    targets.reserve(fresh.size());
    for (size_t r : fresh) targets.push_back(table->at(r, spec.dep_attr));
    std::sort(targets.begin(), targets.end(), oriented_lt);

    for (size_t k = 0; k < fresh.size(); ++k) {
      const size_t r = fresh[k];
      const Value x = table->at(r, spec.ctx_attr);
      Value v = targets[k];
      // ...then clamp each into the frozen envelope at its context.
      // Applying `lo` before `hi` makes the upper bound win should the
      // envelope invert (non-monotone frozen prefix).
      const size_t lt =
          static_cast<size_t>(std::partition_point(
                                  fsorted.begin(), fsorted.end(),
                                  [&](size_t i) {
                                    return ValueLt(table->at(i, spec.ctx_attr),
                                                   x);
                                  }) -
                              fsorted.begin());
      const size_t le =
          static_cast<size_t>(std::partition_point(
                                  fsorted.begin(), fsorted.end(),
                                  [&](size_t i) {
                                    return !ValueLt(x,
                                                    table->at(i, spec.ctx_attr));
                                  }) -
                              fsorted.begin());
      if (lt > 0 && oriented_lt(v, prefix_max[lt - 1])) v = prefix_max[lt - 1];
      if (le < m && oriented_lt(suffix_min[le], v)) v = suffix_min[le];
      if (!(table->at(r, spec.dep_attr) == v)) {
        table->set(r, spec.dep_attr, v);
        ++rewrites;
      }
    }
  }
  return rewrites;
}

FrozenFdLookups::FrozenFdLookups(std::vector<PrefixFdFamily> families)
    : families_(std::move(families)) {
  keys_.resize(families_.size());
  lhs_union_.resize(families_.size());
  lhs_pos_.resize(families_.size());
  rep_values_.resize(families_.size());
  for (size_t f = 0; f < families_.size(); ++f) {
    keys_[f].resize(families_[f].lhs_sets.size());
    for (const std::vector<size_t>& lhs : families_[f].lhs_sets) {
      lhs_union_[f].insert(lhs_union_[f].end(), lhs.begin(), lhs.end());
    }
    std::sort(lhs_union_[f].begin(), lhs_union_[f].end());
    lhs_union_[f].erase(
        std::unique(lhs_union_[f].begin(), lhs_union_[f].end()),
        lhs_union_[f].end());
    lhs_pos_[f].resize(families_[f].lhs_sets.size());
    for (size_t d = 0; d < families_[f].lhs_sets.size(); ++d) {
      for (size_t a : families_[f].lhs_sets[d]) {
        lhs_pos_[f][d].push_back(static_cast<size_t>(
            std::lower_bound(lhs_union_[f].begin(), lhs_union_[f].end(), a) -
            lhs_union_[f].begin()));
      }
    }
  }
}

void FrozenFdLookups::Absorb(const Table& slice, size_t global_begin) {
  const size_t n = slice.num_rows();
  for (size_t f = 0; f < families_.size(); ++f) {
    const PrefixFdFamily& family = families_[f];
    for (size_t r = 0; r < n; ++r) {
      const size_t global_row = global_begin + r;
      bool first_insert = false;
      for (size_t d = 0; d < family.lhs_sets.size(); ++d) {
        auto [it, inserted] = keys_[f][d].try_emplace(
            KeyOf(slice, r, family.lhs_sets[d]),
            FrozenEntry{slice.at(r, family.rhs), global_row});
        (void)it;
        first_insert |= inserted;
      }
      if (first_insert) {
        std::vector<Value> vals;
        vals.reserve(lhs_union_[f].size());
        for (size_t a : lhs_union_[f]) vals.push_back(slice.at(r, a));
        rep_values_[f].emplace(global_row, std::move(vals));
      }
    }
  }
}

int64_t FrozenFdLookups::Canonicalize(Table* live,
                                      std::vector<bool>* attr_modified) const {
  const size_t suffix = live->num_rows();
  if (suffix == 0 || families_.empty()) return 0;

  auto mark = [&](size_t attr) {
    if (attr_modified != nullptr) (*attr_modified)[attr] = true;
  };

  int64_t total_rewrites = 0;
  // Same fixpoint sweep as PrefixFrozenFdCanonicalize, with the frozen
  // lookups read from the absorbed state instead of the prefix rows.
  for (size_t round = 0; round < live->num_columns() + 1; ++round) {
    int64_t rewrites = 0;
    for (size_t f = 0; f < families_.size(); ++f) {
      const PrefixFdFamily& family = families_[f];
      std::vector<size_t> parent(suffix);
      for (size_t i = 0; i < suffix; ++i) parent[i] = i;
      for (size_t d = 0; d < family.lhs_sets.size(); ++d) {
        std::map<std::vector<Value>, size_t, ValueVectorLess> first_member;
        for (size_t i = 0; i < suffix; ++i) {
          auto [it, inserted] = first_member.try_emplace(
              KeyOf(*live, i, family.lhs_sets[d]), i);
          if (!inserted) parent[Find(parent, i)] = Find(parent, it->second);
        }
      }
      std::map<size_t, std::vector<size_t>> components;
      for (size_t i = 0; i < suffix; ++i) {
        components[Find(parent, i)].push_back(i);
      }

      for (const auto& [root, members] : components) {
        (void)root;
        size_t best_rep = static_cast<size_t>(-1);
        Value canonical = live->at(members[0], family.rhs);
        for (size_t i : members) {
          for (size_t d = 0; d < family.lhs_sets.size(); ++d) {
            const auto it =
                keys_[f][d].find(KeyOf(*live, i, family.lhs_sets[d]));
            if (it != keys_[f][d].end() && it->second.rep_row < best_rep) {
              best_rep = it->second.rep_row;
              canonical = it->second.canonical;
            }
          }
        }
        const bool has_frozen = best_rep != static_cast<size_t>(-1);

        for (size_t i : members) {
          if (!(live->at(i, family.rhs) == canonical)) {
            live->set(i, family.rhs, canonical);
            mark(family.rhs);
            ++rewrites;
          }
          if (!has_frozen) continue;
          for (size_t d = 0; d < family.lhs_sets.size(); ++d) {
            const auto it =
                keys_[f][d].find(KeyOf(*live, i, family.lhs_sets[d]));
            if (it == keys_[f][d].end() ||
                it->second.canonical == canonical) {
              continue;
            }
            const std::vector<Value>& rep = rep_values_[f].at(best_rep);
            for (size_t k = 0; k < family.lhs_sets[d].size(); ++k) {
              const size_t a = family.lhs_sets[d][k];
              const Value& v = rep[lhs_pos_[f][d][k]];
              if (!(live->at(i, a) == v)) {
                live->set(i, a, v);
                mark(a);
                ++rewrites;
              }
            }
          }
        }
      }
    }
    total_rewrites += rewrites;
    if (rewrites == 0) break;
  }
  return total_rewrites;
}

FrozenAlignLookups::FrozenAlignLookups(PrefixAlignSpec spec)
    : spec_(std::move(spec)) {}

void FrozenAlignLookups::Absorb(const Table& slice) {
  auto oriented_lt = [this](const Value& a, const Value& b) {
    return spec_.co_monotone ? ValueLt(a, b) : ValueLt(b, a);
  };
  const size_t n = slice.num_rows();
  for (size_t r = 0; r < n; ++r) {
    Envelope& env = groups_[KeyOf(slice, r, spec_.group_attrs)];
    const Value x = slice.at(r, spec_.ctx_attr);
    const Value dep = slice.at(r, spec_.dep_attr);
    const auto it = std::lower_bound(
        env.ctx.begin(), env.ctx.end(), x,
        [](const Value& a, const Value& b) { return ValueLt(a, b); });
    const size_t i = static_cast<size_t>(it - env.ctx.begin());
    if (it != env.ctx.end() && !ValueLt(x, *it)) {
      // Existing context run. Tie rules mirror the per-element folds in
      // PrefixFrozenRankAlign: the later row wins the running max, the
      // earlier row keeps the running min.
      if (!oriented_lt(dep, env.mx[i])) env.mx[i] = dep;
      if (oriented_lt(dep, env.mn[i])) env.mn[i] = dep;
    } else {
      env.ctx.insert(it, x);
      env.mx.insert(env.mx.begin() + static_cast<ptrdiff_t>(i), dep);
      env.mn.insert(env.mn.begin() + static_cast<ptrdiff_t>(i), dep);
    }
  }
  // Rebuild the running envelopes. Folding per-context extrema is
  // grouping-invariant (the folds always return one operand), so these
  // equal the per-element prefix_max / suffix_min at context boundaries.
  for (auto& [key, env] : groups_) {
    (void)key;
    const size_t m = env.ctx.size();
    env.pmax.resize(m);
    env.smin.resize(m);
    for (size_t i = 0; i < m; ++i) {
      env.pmax[i] = (i > 0 && oriented_lt(env.mx[i], env.pmax[i - 1]))
                        ? env.pmax[i - 1]
                        : env.mx[i];
    }
    for (size_t i = m; i-- > 0;) {
      env.smin[i] = (i + 1 < m && oriented_lt(env.smin[i + 1], env.mn[i]))
                        ? env.smin[i + 1]
                        : env.mn[i];
    }
  }
}

int64_t FrozenAlignLookups::Align(Table* live) const {
  const size_t n = live->num_rows();
  if (n == 0) return 0;
  auto oriented_lt = [this](const Value& a, const Value& b) {
    return spec_.co_monotone ? ValueLt(a, b) : ValueLt(b, a);
  };
  auto ctx_row_less = [&](size_t i, size_t j) {
    const Value& a = live->at(i, spec_.ctx_attr);
    const Value& b = live->at(j, spec_.ctx_attr);
    if (ValueLt(a, b)) return true;
    if (ValueLt(b, a)) return false;
    return i < j;
  };

  std::map<std::vector<Value>, std::vector<size_t>, ValueVectorLess> groups;
  for (size_t r = 0; r < n; ++r) {
    groups[KeyOf(*live, r, spec_.group_attrs)].push_back(r);
  }

  int64_t rewrites = 0;
  for (auto& [key, fresh] : groups) {
    const auto git = groups_.find(key);
    const Envelope* env = git == groups_.end() ? nullptr : &git->second;
    const size_t runs = env == nullptr ? 0 : env->ctx.size();

    std::sort(fresh.begin(), fresh.end(), ctx_row_less);
    std::vector<Value> targets;
    targets.reserve(fresh.size());
    for (size_t r : fresh) targets.push_back(live->at(r, spec_.dep_attr));
    std::sort(targets.begin(), targets.end(), oriented_lt);

    for (size_t k = 0; k < fresh.size(); ++k) {
      const size_t r = fresh[k];
      const Value x = live->at(r, spec_.ctx_attr);
      Value v = targets[k];
      if (env != nullptr) {
        const size_t idx = static_cast<size_t>(
            std::lower_bound(
                env->ctx.begin(), env->ctx.end(), x,
                [](const Value& a, const Value& b) { return ValueLt(a, b); }) -
            env->ctx.begin());
        const size_t jdx = static_cast<size_t>(
            std::upper_bound(
                env->ctx.begin(), env->ctx.end(), x,
                [](const Value& a, const Value& b) { return ValueLt(a, b); }) -
            env->ctx.begin());
        // Lower clamp before upper: the upper bound wins should the
        // envelope invert, exactly as in PrefixFrozenRankAlign.
        if (idx > 0 && oriented_lt(v, env->pmax[idx - 1])) {
          v = env->pmax[idx - 1];
        }
        if (jdx < runs && oriented_lt(env->smin[jdx], v)) {
          v = env->smin[jdx];
        }
      }
      if (!(live->at(r, spec_.dep_attr) == v)) {
        live->set(r, spec_.dep_attr, v);
        ++rewrites;
      }
    }
  }
  return rewrites;
}

}  // namespace kamino
