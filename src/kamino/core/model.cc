#include "kamino/core/model.h"

#include "kamino/common/logging.h"
#include "kamino/dp/gaussian.h"
#include "kamino/io/bytes.h"
#include "kamino/nn/dpsgd.h"
#include "kamino/runtime/parallel_for.h"

namespace kamino {

std::vector<int32_t> ModelUnit::DecodeJointIndex(size_t index) const {
  std::vector<int32_t> values(radix.size());
  for (size_t i = radix.size(); i-- > 0;) {
    values[i] = static_cast<int32_t>(index % radix[i]);
    index /= radix[i];
  }
  return values;
}

namespace {

/// Joint index of a row's values over the unit's categorical attributes.
size_t JointIndexOf(const ModelUnit& unit, const Row& row) {
  size_t index = 0;
  for (size_t i = 0; i < unit.attrs.size(); ++i) {
    index = index * unit.radix[i] +
            static_cast<size_t>(row[unit.attrs[i]].category());
  }
  return index;
}

size_t JointDomainSize(const ModelUnit& unit) {
  size_t product = 1;
  for (size_t r : unit.radix) product *= r;
  return product;
}

void FillRadix(const Schema& schema, ModelUnit* unit) {
  unit->radix.clear();
  for (size_t a : unit->attrs) {
    unit->radix.push_back(schema.attribute(a).categories().size());
  }
}

/// Fits a (possibly joint) noisy histogram for the unit.
Status TrainHistogramUnit(const Table& data, const KaminoOptions& options,
                          ModelUnit* unit, Rng* rng) {
  const Schema& schema = data.schema();
  std::vector<double> counts;
  if (unit->attrs.size() == 1 && schema.attribute(unit->attrs[0]).is_numeric()) {
    KAMINO_ASSIGN_OR_RETURN(
        Quantizer quantizer,
        Quantizer::Make(schema.attribute(unit->attrs[0]), options.quantize_bins));
    counts.assign(quantizer.num_bins(), 0.0);
    for (size_t i = 0; i < data.num_rows(); ++i) {
      counts[quantizer.BinOf(data.at(i, unit->attrs[0]).numeric())] += 1.0;
    }
    unit->quantizer = quantizer;
  } else {
    FillRadix(schema, unit);
    counts.assign(JointDomainSize(*unit), 0.0);
    for (size_t i = 0; i < data.num_rows(); ++i) {
      counts[JointIndexOf(*unit, data.row(i))] += 1.0;
    }
  }
  const double sigma = options.non_private ? 0.0 : options.sigma_g;
  unit->distribution = NoisyNormalizedHistogram(counts, sigma, rng);
  return Status::OK();
}

void TrainDiscriminativeUnit(const Table& data, const Schema& schema,
                             const KaminoOptions& options, EncoderStore* store,
                             ModelUnit* unit, uint64_t seed) {
  Rng rng(seed);
  FillRadix(schema, unit);
  unit->model = std::make_unique<DiscriminativeModel>(
      schema, unit->context, unit->attrs, store, &rng);
  DpSgdOptions sgd;
  sgd.clip_norm = options.clip_norm;
  sgd.noise_multiplier = options.non_private ? 0.0 : options.sigma_d;
  sgd.batch_size = options.batch_size;
  sgd.iterations = options.iterations;
  sgd.learning_rate = options.learning_rate;
  TrainDpSgd(unit->model.get(), data, sgd, &rng);
}

}  // namespace

std::vector<ModelUnit> ProbabilisticDataModel::PlanUnits(
    const Schema& schema, const std::vector<size_t>& sequence,
    const KaminoOptions& options) {
  std::vector<ModelUnit> units;
  size_t pos = 0;
  const size_t k = sequence.size();

  auto is_small_categorical = [&](size_t attr) {
    const Attribute& a = schema.attribute(attr);
    return a.is_categorical() &&
           a.DomainSize() <= options.large_domain_threshold;
  };

  while (pos < k) {
    ModelUnit unit;
    unit.start_position = pos;
    const size_t attr = sequence[pos];
    const Attribute& a = schema.attribute(attr);
    const bool first = pos == 0;

    // Greedy hyper-attribute grouping over adjacent small categoricals.
    std::vector<size_t> group = {attr};
    if (options.enable_grouping && is_small_categorical(attr)) {
      int64_t product = a.DomainSize();
      size_t next = pos + 1;
      while (next < k && is_small_categorical(sequence[next]) &&
             product * schema.attribute(sequence[next]).DomainSize() <=
                 options.group_domain_threshold) {
        product *= schema.attribute(sequence[next]).DomainSize();
        group.push_back(sequence[next]);
        ++next;
      }
      // Grouping a single attribute is a no-op; keep it only when it
      // actually merges attributes.
      if (group.size() == 1) group = {attr};
    }
    unit.attrs = group;

    const bool large_domain =
        a.is_categorical() && a.DomainSize() > options.large_domain_threshold;
    if (first || large_domain) {
      unit.kind = ModelUnit::Kind::kHistogram;
      // Large-domain fallbacks are never grouped.
      if (large_domain) unit.attrs = {attr};
    } else {
      unit.kind = ModelUnit::Kind::kDiscriminative;
      for (size_t p = 0; p < pos; ++p) unit.context.push_back(sequence[p]);
    }
    for (size_t a2 : unit.attrs) {
      if (schema.attribute(a2).is_categorical()) {
        unit.radix.push_back(schema.attribute(a2).categories().size());
      }
    }
    pos += unit.attrs.size();
    units.push_back(std::move(unit));
  }
  return units;
}

Result<ProbabilisticDataModel> ProbabilisticDataModel::Train(
    const Table& data, const std::vector<size_t>& sequence,
    const KaminoOptions& options, Rng* rng) {
  if (data.num_rows() == 0) {
    return Status::InvalidArgument("cannot train on an empty instance");
  }
  if (sequence.size() != data.schema().size()) {
    return Status::InvalidArgument("sequence arity != schema arity");
  }
  ProbabilisticDataModel model;
  model.schema_ = std::make_shared<const Schema>(data.schema());
  const Schema& schema = *model.schema_;
  model.sequence_ = sequence;
  model.shared_store_ =
      std::make_unique<EncoderStore>(schema, options.embed_dim, rng);
  model.units_ = PlanUnits(schema, sequence, options);

  // Histogram units (Gaussian mechanism) always train on this thread.
  for (ModelUnit& unit : model.units_) {
    if (unit.kind == ModelUnit::Kind::kHistogram) {
      unit.radix.clear();
      KAMINO_RETURN_IF_ERROR(TrainHistogramUnit(data, options, &unit, rng));
    }
  }

  if (!options.parallel_training) {
    // Sequential (Algorithm 2): sub-models share the encoder store, so
    // embeddings trained for earlier context re-seed later sub-models.
    for (ModelUnit& unit : model.units_) {
      if (unit.kind != ModelUnit::Kind::kDiscriminative) continue;
      TrainDiscriminativeUnit(data, schema, options,
                              model.shared_store_.get(), &unit,
                              rng->NextSeed());
    }
  } else {
    // Section 7.3.6: train sub-models in parallel with private, freshly
    // initialized encoder stores (no embedding reuse). Seeds and stores
    // are drawn sequentially in unit order first, then whole units are
    // dispatched onto the runtime pool (one task per unit) — each task
    // trains from its own seed, so the learned model is identical at any
    // thread count and matches the former thread-per-unit dispatch.
    std::vector<ModelUnit*> discriminative;
    std::vector<uint64_t> seeds;
    for (ModelUnit& unit : model.units_) {
      if (unit.kind != ModelUnit::Kind::kDiscriminative) continue;
      const uint64_t seed = rng->NextSeed();
      Rng init_rng(seed);
      unit.private_store = std::make_unique<EncoderStore>(
          schema, options.embed_dim, &init_rng);
      discriminative.push_back(&unit);
      seeds.push_back(seed);
    }
    runtime::ParallelForEach(0, discriminative.size(), 1, [&](size_t u) {
      TrainDiscriminativeUnit(data, schema, options,
                              discriminative[u]->private_store.get(),
                              discriminative[u], seeds[u] ^ 0x9e3779b9);
    });
  }
  return model;
}

namespace {

/// [u32 count] then per tensor [u32 rows][u32 cols][f64 bits]* — the
/// column-shaped raw-bits block of the chunk codec, with a shape header.
void AppendTensorList(const std::vector<Tensor>& tensors,
                      std::vector<uint8_t>* out) {
  io::AppendU32(out, static_cast<uint32_t>(tensors.size()));
  for (const Tensor& t : tensors) {
    io::AppendU32(out, static_cast<uint32_t>(t.rows()));
    io::AppendU32(out, static_cast<uint32_t>(t.cols()));
    for (double v : t.data()) io::AppendDouble(out, v);
  }
}

Status ReadTensorList(io::ByteReader* in, std::vector<Tensor>* tensors) {
  Status truncated = Status::InvalidArgument("model tensor payload truncated");
  uint32_t count = 0;
  if (!in->ReadU32(&count)) return truncated;
  if (count > in->remaining()) return truncated;
  tensors->clear();
  tensors->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t rows = 0, cols = 0;
    if (!in->ReadU32(&rows) || !in->ReadU32(&cols)) return truncated;
    // Bound the allocation by the bytes actually present.
    if (uint64_t{rows} * cols > in->remaining() / 8) return truncated;
    Tensor t(rows, cols);
    for (double& v : t.data()) {
      if (!in->ReadDouble(&v)) return truncated;
    }
    tensors->push_back(std::move(t));
  }
  return Status::OK();
}

/// Keeps a corrupted artifact from requesting multi-gigabyte encoder
/// stores before the tensor shape checks can reject it.
constexpr uint32_t kMaxEmbedDim = 4096;
constexpr uint32_t kMaxQuantizerBins = 1u << 20;
constexpr uint64_t kMaxJointDomain = uint64_t{1} << 32;

}  // namespace

void ProbabilisticDataModel::SerializeTo(std::vector<uint8_t>* out) const {
  KAMINO_CHECK(schema_ != nullptr && shared_store_ != nullptr)
      << "cannot serialize an untrained model";
  schema_->SerializeTo(out);
  io::AppendU64Vec(out,
                   std::vector<uint64_t>(sequence_.begin(), sequence_.end()));
  io::AppendU32(out, static_cast<uint32_t>(shared_store_->embed_dim()));
  std::vector<Tensor> shared_tensors;
  shared_store_->ExportTensors(&shared_tensors);
  AppendTensorList(shared_tensors, out);
  io::AppendU32(out, static_cast<uint32_t>(units_.size()));
  for (const ModelUnit& unit : units_) {
    io::AppendU8(out, unit.kind == ModelUnit::Kind::kHistogram ? 0 : 1);
    io::AppendU64Vec(
        out, std::vector<uint64_t>(unit.attrs.begin(), unit.attrs.end()));
    io::AppendU64Vec(
        out, std::vector<uint64_t>(unit.context.begin(), unit.context.end()));
    io::AppendU64(out, unit.start_position);
    if (unit.kind == ModelUnit::Kind::kHistogram) {
      io::AppendU8(out, unit.quantizer.has_value() ? 1 : 0);
      if (unit.quantizer.has_value()) {
        io::AppendU32(out, static_cast<uint32_t>(unit.quantizer->num_bins()));
      }
      io::AppendDoubleVec(out, unit.distribution);
    } else {
      io::AppendU8(out, unit.private_store != nullptr ? 1 : 0);
      if (unit.private_store != nullptr) {
        std::vector<Tensor> store_tensors;
        unit.private_store->ExportTensors(&store_tensors);
        AppendTensorList(store_tensors, out);
      }
      std::vector<Tensor> head;
      unit.model->ExportHeadTensors(&head);
      AppendTensorList(head, out);
    }
  }
}

Result<ProbabilisticDataModel> ProbabilisticDataModel::DeserializeFrom(
    io::ByteReader* in) {
  Status truncated = Status::InvalidArgument("model payload truncated");
  KAMINO_ASSIGN_OR_RETURN(Schema parsed_schema, Schema::DeserializeFrom(in));
  const size_t k = parsed_schema.size();

  std::vector<uint64_t> seq_raw;
  if (!io::ReadU64Vec(in, &seq_raw)) return truncated;
  if (seq_raw.size() != k) {
    return Status::InvalidArgument("sequence length != schema arity");
  }
  std::vector<bool> seen(k, false);
  std::vector<size_t> sequence(k);
  for (size_t i = 0; i < k; ++i) {
    if (seq_raw[i] >= k || seen[static_cast<size_t>(seq_raw[i])]) {
      return Status::InvalidArgument(
          "sequence is not a permutation of the schema attributes");
    }
    seen[static_cast<size_t>(seq_raw[i])] = true;
    sequence[i] = static_cast<size_t>(seq_raw[i]);
  }

  uint32_t embed_dim = 0;
  if (!in->ReadU32(&embed_dim)) return truncated;
  if (embed_dim == 0 || embed_dim > kMaxEmbedDim) {
    return Status::InvalidArgument("implausible embedding dimension " +
                                   std::to_string(embed_dim));
  }
  std::vector<Tensor> shared_tensors;
  KAMINO_RETURN_IF_ERROR(ReadTensorList(in, &shared_tensors));

  ProbabilisticDataModel model;
  model.schema_ = std::make_shared<const Schema>(std::move(parsed_schema));
  const Schema& schema = *model.schema_;
  model.sequence_ = sequence;
  // Every parameter value is overwritten by the imports below, so the
  // construction-time random init is irrelevant; a fixed seed keeps
  // deserialization deterministic regardless.
  Rng dummy(0);
  model.shared_store_ =
      std::make_unique<EncoderStore>(schema, embed_dim, &dummy);
  size_t cursor = 0;
  KAMINO_RETURN_IF_ERROR(
      model.shared_store_->ImportTensors(shared_tensors, &cursor));
  if (cursor != shared_tensors.size()) {
    return Status::InvalidArgument("trailing tensors in shared encoder store");
  }

  uint32_t unit_count = 0;
  if (!in->ReadU32(&unit_count)) return truncated;
  if (unit_count > k) {
    return Status::InvalidArgument("more model units than schema attributes");
  }
  size_t pos = 0;
  for (uint32_t u = 0; u < unit_count; ++u) {
    ModelUnit unit;
    uint8_t kind = 0;
    std::vector<uint64_t> attrs_raw;
    std::vector<uint64_t> context_raw;
    uint64_t start = 0;
    if (!in->ReadU8(&kind) || !io::ReadU64Vec(in, &attrs_raw) ||
        !io::ReadU64Vec(in, &context_raw) || !in->ReadU64(&start)) {
      return truncated;
    }
    if (kind > 1) {
      return Status::InvalidArgument("unknown model unit kind byte " +
                                     std::to_string(kind));
    }
    unit.kind = kind == 0 ? ModelUnit::Kind::kHistogram
                          : ModelUnit::Kind::kDiscriminative;
    if (attrs_raw.empty()) {
      return Status::InvalidArgument("model unit has no attributes");
    }
    // Units must tile the sequence in order: unit u owns sequence
    // positions [pos, pos + |attrs|), exactly as Train partitioned it.
    if (start != pos || attrs_raw.size() > k - pos) {
      return Status::InvalidArgument("model units do not tile the sequence");
    }
    for (size_t i = 0; i < attrs_raw.size(); ++i) {
      if (attrs_raw[i] != sequence[pos + i]) {
        return Status::InvalidArgument(
            "model unit attributes do not match the sequence");
      }
      unit.attrs.push_back(static_cast<size_t>(attrs_raw[i]));
    }
    unit.start_position = static_cast<size_t>(start);
    if (unit.kind == ModelUnit::Kind::kHistogram) {
      if (!context_raw.empty()) {
        return Status::InvalidArgument("histogram unit with context");
      }
    } else {
      // Discriminative context is the full sequence prefix.
      if (context_raw.size() != pos) {
        return Status::InvalidArgument(
            "discriminative context != sequence prefix");
      }
      for (size_t i = 0; i < pos; ++i) {
        if (context_raw[i] != sequence[i]) {
          return Status::InvalidArgument(
              "discriminative context != sequence prefix");
        }
        unit.context.push_back(static_cast<size_t>(context_raw[i]));
      }
    }
    pos += unit.attrs.size();

    if (unit.kind == ModelUnit::Kind::kHistogram) {
      uint8_t has_quantizer = 0;
      if (!in->ReadU8(&has_quantizer)) return truncated;
      if (has_quantizer > 1) {
        return Status::InvalidArgument("flag byte out of range");
      }
      uint64_t expected = 0;
      if (has_quantizer != 0) {
        if (unit.attrs.size() != 1 ||
            !schema.attribute(unit.attrs[0]).is_numeric()) {
          return Status::InvalidArgument(
              "quantized histogram requires a single numeric attribute");
        }
        uint32_t bins = 0;
        if (!in->ReadU32(&bins)) return truncated;
        if (bins == 0 || bins > kMaxQuantizerBins) {
          return Status::InvalidArgument("implausible quantizer bin count " +
                                         std::to_string(bins));
        }
        KAMINO_ASSIGN_OR_RETURN(
            Quantizer quantizer,
            Quantizer::Make(schema.attribute(unit.attrs[0]),
                            static_cast<int>(bins)));
        expected = static_cast<uint64_t>(quantizer.num_bins());
        unit.quantizer = quantizer;
      } else {
        expected = 1;
        for (size_t a : unit.attrs) {
          if (!schema.attribute(a).is_categorical()) {
            return Status::InvalidArgument(
                "joint histogram over a numeric attribute");
          }
          const size_t r = schema.attribute(a).categories().size();
          if (r == 0) {
            return Status::InvalidArgument(
                "histogram attribute with empty domain");
          }
          unit.radix.push_back(r);
          expected *= r;
          if (expected > kMaxJointDomain) {
            return Status::InvalidArgument("joint histogram domain too large");
          }
        }
      }
      if (!io::ReadDoubleVec(in, &unit.distribution)) return truncated;
      if (unit.distribution.size() != expected) {
        return Status::InvalidArgument(
            "histogram size " + std::to_string(unit.distribution.size()) +
            " != domain size " + std::to_string(expected));
      }
    } else {
      // Radix exactly as FillRadix computes it post-training (a numeric
      // single target contributes 0; it is never joint-decoded).
      for (size_t a : unit.attrs) {
        unit.radix.push_back(schema.attribute(a).categories().size());
      }
      uint8_t has_private_store = 0;
      if (!in->ReadU8(&has_private_store)) return truncated;
      if (has_private_store > 1) {
        return Status::InvalidArgument("flag byte out of range");
      }
      EncoderStore* store = model.shared_store_.get();
      if (has_private_store != 0) {
        std::vector<Tensor> store_tensors;
        KAMINO_RETURN_IF_ERROR(ReadTensorList(in, &store_tensors));
        unit.private_store =
            std::make_unique<EncoderStore>(schema, embed_dim, &dummy);
        size_t store_cursor = 0;
        KAMINO_RETURN_IF_ERROR(
            unit.private_store->ImportTensors(store_tensors, &store_cursor));
        if (store_cursor != store_tensors.size()) {
          return Status::InvalidArgument(
              "trailing tensors in private encoder store");
        }
        store = unit.private_store.get();
      }
      std::vector<Tensor> head;
      KAMINO_RETURN_IF_ERROR(ReadTensorList(in, &head));
      KAMINO_ASSIGN_OR_RETURN(
          unit.model, DiscriminativeModel::Create(schema, unit.context,
                                                  unit.attrs, store, &dummy));
      size_t head_cursor = 0;
      KAMINO_RETURN_IF_ERROR(unit.model->ImportHeadTensors(head, &head_cursor));
      if (head_cursor != head.size()) {
        return Status::InvalidArgument("trailing head tensors in model unit");
      }
    }
    model.units_.push_back(std::move(unit));
  }
  if (pos != k) {
    return Status::InvalidArgument("model units do not cover the sequence");
  }
  return model;
}

size_t ProbabilisticDataModel::num_histogram_units() const {
  size_t count = 0;
  for (const ModelUnit& u : units_) {
    if (u.kind == ModelUnit::Kind::kHistogram) ++count;
  }
  return count;
}

size_t ProbabilisticDataModel::num_discriminative_units() const {
  return units_.size() - num_histogram_units();
}

}  // namespace kamino
