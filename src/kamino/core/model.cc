#include "kamino/core/model.h"

#include "kamino/common/logging.h"
#include "kamino/dp/gaussian.h"
#include "kamino/nn/dpsgd.h"
#include "kamino/runtime/parallel_for.h"

namespace kamino {

std::vector<int32_t> ModelUnit::DecodeJointIndex(size_t index) const {
  std::vector<int32_t> values(radix.size());
  for (size_t i = radix.size(); i-- > 0;) {
    values[i] = static_cast<int32_t>(index % radix[i]);
    index /= radix[i];
  }
  return values;
}

namespace {

/// Joint index of a row's values over the unit's categorical attributes.
size_t JointIndexOf(const ModelUnit& unit, const Row& row) {
  size_t index = 0;
  for (size_t i = 0; i < unit.attrs.size(); ++i) {
    index = index * unit.radix[i] +
            static_cast<size_t>(row[unit.attrs[i]].category());
  }
  return index;
}

size_t JointDomainSize(const ModelUnit& unit) {
  size_t product = 1;
  for (size_t r : unit.radix) product *= r;
  return product;
}

void FillRadix(const Schema& schema, ModelUnit* unit) {
  unit->radix.clear();
  for (size_t a : unit->attrs) {
    unit->radix.push_back(schema.attribute(a).categories().size());
  }
}

/// Fits a (possibly joint) noisy histogram for the unit.
Status TrainHistogramUnit(const Table& data, const KaminoOptions& options,
                          ModelUnit* unit, Rng* rng) {
  const Schema& schema = data.schema();
  std::vector<double> counts;
  if (unit->attrs.size() == 1 && schema.attribute(unit->attrs[0]).is_numeric()) {
    KAMINO_ASSIGN_OR_RETURN(
        Quantizer quantizer,
        Quantizer::Make(schema.attribute(unit->attrs[0]), options.quantize_bins));
    counts.assign(quantizer.num_bins(), 0.0);
    for (size_t i = 0; i < data.num_rows(); ++i) {
      counts[quantizer.BinOf(data.at(i, unit->attrs[0]).numeric())] += 1.0;
    }
    unit->quantizer = quantizer;
  } else {
    FillRadix(schema, unit);
    counts.assign(JointDomainSize(*unit), 0.0);
    for (size_t i = 0; i < data.num_rows(); ++i) {
      counts[JointIndexOf(*unit, data.row(i))] += 1.0;
    }
  }
  const double sigma = options.non_private ? 0.0 : options.sigma_g;
  unit->distribution = NoisyNormalizedHistogram(counts, sigma, rng);
  return Status::OK();
}

void TrainDiscriminativeUnit(const Table& data, const Schema& schema,
                             const KaminoOptions& options, EncoderStore* store,
                             ModelUnit* unit, uint64_t seed) {
  Rng rng(seed);
  FillRadix(schema, unit);
  unit->model = std::make_unique<DiscriminativeModel>(
      schema, unit->context, unit->attrs, store, &rng);
  DpSgdOptions sgd;
  sgd.clip_norm = options.clip_norm;
  sgd.noise_multiplier = options.non_private ? 0.0 : options.sigma_d;
  sgd.batch_size = options.batch_size;
  sgd.iterations = options.iterations;
  sgd.learning_rate = options.learning_rate;
  TrainDpSgd(unit->model.get(), data, sgd, &rng);
}

}  // namespace

std::vector<ModelUnit> ProbabilisticDataModel::PlanUnits(
    const Schema& schema, const std::vector<size_t>& sequence,
    const KaminoOptions& options) {
  std::vector<ModelUnit> units;
  size_t pos = 0;
  const size_t k = sequence.size();

  auto is_small_categorical = [&](size_t attr) {
    const Attribute& a = schema.attribute(attr);
    return a.is_categorical() &&
           a.DomainSize() <= options.large_domain_threshold;
  };

  while (pos < k) {
    ModelUnit unit;
    unit.start_position = pos;
    const size_t attr = sequence[pos];
    const Attribute& a = schema.attribute(attr);
    const bool first = pos == 0;

    // Greedy hyper-attribute grouping over adjacent small categoricals.
    std::vector<size_t> group = {attr};
    if (options.enable_grouping && is_small_categorical(attr)) {
      int64_t product = a.DomainSize();
      size_t next = pos + 1;
      while (next < k && is_small_categorical(sequence[next]) &&
             product * schema.attribute(sequence[next]).DomainSize() <=
                 options.group_domain_threshold) {
        product *= schema.attribute(sequence[next]).DomainSize();
        group.push_back(sequence[next]);
        ++next;
      }
      // Grouping a single attribute is a no-op; keep it only when it
      // actually merges attributes.
      if (group.size() == 1) group = {attr};
    }
    unit.attrs = group;

    const bool large_domain =
        a.is_categorical() && a.DomainSize() > options.large_domain_threshold;
    if (first || large_domain) {
      unit.kind = ModelUnit::Kind::kHistogram;
      // Large-domain fallbacks are never grouped.
      if (large_domain) unit.attrs = {attr};
    } else {
      unit.kind = ModelUnit::Kind::kDiscriminative;
      for (size_t p = 0; p < pos; ++p) unit.context.push_back(sequence[p]);
    }
    for (size_t a2 : unit.attrs) {
      if (schema.attribute(a2).is_categorical()) {
        unit.radix.push_back(schema.attribute(a2).categories().size());
      }
    }
    pos += unit.attrs.size();
    units.push_back(std::move(unit));
  }
  return units;
}

Result<ProbabilisticDataModel> ProbabilisticDataModel::Train(
    const Table& data, const std::vector<size_t>& sequence,
    const KaminoOptions& options, Rng* rng) {
  if (data.num_rows() == 0) {
    return Status::InvalidArgument("cannot train on an empty instance");
  }
  if (sequence.size() != data.schema().size()) {
    return Status::InvalidArgument("sequence arity != schema arity");
  }
  ProbabilisticDataModel model;
  model.schema_ = std::make_shared<const Schema>(data.schema());
  const Schema& schema = *model.schema_;
  model.sequence_ = sequence;
  model.shared_store_ =
      std::make_unique<EncoderStore>(schema, options.embed_dim, rng);
  model.units_ = PlanUnits(schema, sequence, options);

  // Histogram units (Gaussian mechanism) always train on this thread.
  for (ModelUnit& unit : model.units_) {
    if (unit.kind == ModelUnit::Kind::kHistogram) {
      unit.radix.clear();
      KAMINO_RETURN_IF_ERROR(TrainHistogramUnit(data, options, &unit, rng));
    }
  }

  if (!options.parallel_training) {
    // Sequential (Algorithm 2): sub-models share the encoder store, so
    // embeddings trained for earlier context re-seed later sub-models.
    for (ModelUnit& unit : model.units_) {
      if (unit.kind != ModelUnit::Kind::kDiscriminative) continue;
      TrainDiscriminativeUnit(data, schema, options,
                              model.shared_store_.get(), &unit,
                              rng->NextSeed());
    }
  } else {
    // Section 7.3.6: train sub-models in parallel with private, freshly
    // initialized encoder stores (no embedding reuse). Seeds and stores
    // are drawn sequentially in unit order first, then whole units are
    // dispatched onto the runtime pool (one task per unit) — each task
    // trains from its own seed, so the learned model is identical at any
    // thread count and matches the former thread-per-unit dispatch.
    std::vector<ModelUnit*> discriminative;
    std::vector<uint64_t> seeds;
    for (ModelUnit& unit : model.units_) {
      if (unit.kind != ModelUnit::Kind::kDiscriminative) continue;
      const uint64_t seed = rng->NextSeed();
      Rng init_rng(seed);
      unit.private_store = std::make_unique<EncoderStore>(
          schema, options.embed_dim, &init_rng);
      discriminative.push_back(&unit);
      seeds.push_back(seed);
    }
    runtime::ParallelForEach(0, discriminative.size(), 1, [&](size_t u) {
      TrainDiscriminativeUnit(data, schema, options,
                              discriminative[u]->private_store.get(),
                              discriminative[u], seeds[u] ^ 0x9e3779b9);
    });
  }
  return model;
}

size_t ProbabilisticDataModel::num_histogram_units() const {
  size_t count = 0;
  for (const ModelUnit& u : units_) {
    if (u.kind == ModelUnit::Kind::kHistogram) ++count;
  }
  return count;
}

size_t ProbabilisticDataModel::num_discriminative_units() const {
  return units_.size() - num_histogram_units();
}

}  // namespace kamino
