#include "kamino/core/weights.h"

#include <algorithm>
#include <cmath>

#include "kamino/core/sequencing.h"
#include "kamino/dc/violations.h"
#include "kamino/dp/gaussian.h"
#include "kamino/io/bytes.h"

namespace kamino {
namespace {

constexpr double kInitialWeight = 5.0;
constexpr double kWeightLearningRate = 0.5;
constexpr double kMaxWeight = 10.0;

}  // namespace

void DcWeightsState::SerializeTo(std::vector<uint8_t>* out) const {
  io::AppendDoubleVec(out, weights);
}

Result<DcWeightsState> DcWeightsState::DeserializeFrom(io::ByteReader* in,
                                                       size_t expected_count) {
  DcWeightsState state;
  if (!io::ReadDoubleVec(in, &state.weights)) {
    return Status::InvalidArgument("DC weights payload truncated");
  }
  if (state.weights.size() != expected_count) {
    return Status::InvalidArgument(
        "DC weight count " + std::to_string(state.weights.size()) +
        " != constraint count " + std::to_string(expected_count));
  }
  return state;
}

Result<std::vector<double>> LearnDcWeights(
    const Table& data, const std::vector<WeightedConstraint>& constraints,
    const std::vector<size_t>& sequence, const KaminoOptions& options,
    Rng* rng) {
  const size_t n = data.num_rows();
  if (n == 0) return Status::InvalidArgument("empty instance");

  // Line 2: initial weights. Hard DCs are never re-fitted.
  std::vector<double> weights(constraints.size(), kInitialWeight);
  for (size_t l = 0; l < constraints.size(); ++l) {
    if (constraints[l].hard) weights[l] = constraints[l].EffectiveWeight();
  }

  // Lines 3-4: Bernoulli sample of expected size Lw, cropped to Lw so the
  // violation-matrix sensitivity bound (Lemma 1) holds.
  const double sample_prob =
      std::min(1.0, static_cast<double>(options.weight_sample) /
                        static_cast<double>(n));
  Table sample = data.SampleRows(sample_prob, rng);
  if (sample.num_rows() > options.weight_sample) {
    sample = sample.Head(options.weight_sample);
  }
  if (sample.num_rows() == 0) return weights;

  // Lines 5-7: noisy violation matrix, clamped at zero.
  std::vector<std::vector<double>> matrix =
      BuildViolationMatrix(sample, constraints);
  int64_t num_unary = 0;
  int64_t num_binary = 0;
  for (const WeightedConstraint& wc : constraints) {
    if (wc.dc.is_unary()) {
      ++num_unary;
    } else {
      ++num_binary;
    }
  }
  if (!options.non_private) {
    const double sensitivity = ViolationMatrixSensitivity(
        num_unary, num_binary,
        static_cast<int64_t>(options.weight_sample));
    for (auto& row : matrix) {
      AddGaussianNoise(&row, options.sigma_w, sensitivity, rng);
    }
  }
  for (auto& row : matrix) {
    for (double& v : row) v = std::max(0.0, v);
  }
  // Normalize binary-DC columns to per-partner violation *rates* so the
  // exp(-W . V) objective keeps usable gradients (raw counts grow with the
  // sample size and saturate the exponential).
  const double partners =
      std::max<double>(1.0, static_cast<double>(sample.num_rows()) - 1.0);
  for (auto& row : matrix) {
    for (size_t l = 0; l < constraints.size(); ++l) {
      if (!constraints[l].dc.is_unary()) row[l] /= partners;
    }
  }

  // Lines 8-14 (post-processing): per active-DC gradient steps that
  // maximize O = exp(-sum_l W[l] * V[i][l]); dO/dW[l] = -V[i][l] * O.
  std::vector<std::vector<size_t>> active_by_pos =
      ActivationPositions(sequence, constraints);
  const size_t rows = sample.num_rows();
  for (size_t pos = 0; pos < sequence.size(); ++pos) {
    const std::vector<size_t>& active = active_by_pos[pos];
    if (active.empty()) continue;
    for (size_t e = 0; e < options.weight_iterations; ++e) {
      const double batch_prob =
          std::min(1.0, static_cast<double>(options.weight_batch) /
                            static_cast<double>(rows));
      for (size_t i = 0; i < rows; ++i) {
        if (!rng->Bernoulli(batch_prob)) continue;
        double exponent = 0.0;
        for (size_t l : active) exponent += weights[l] * matrix[i][l];
        const double objective = std::exp(-exponent);
        for (size_t l : active) {
          if (constraints[l].hard) continue;
          weights[l] -= kWeightLearningRate * matrix[i][l] * objective;
          weights[l] = std::clamp(weights[l], 0.0, kMaxWeight);
        }
      }
    }
  }
  return weights;
}

}  // namespace kamino
