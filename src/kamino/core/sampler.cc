#include "kamino/core/sampler.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "kamino/common/logging.h"
#include "kamino/core/sequencing.h"
#include "kamino/dc/violations.h"
#include "kamino/runtime/parallel_for.h"
#include "kamino/runtime/rng_stream.h"
#include "kamino/runtime/thread_pool.h"

namespace kamino {
namespace {

/// Rows re-sampled per parallel MCMC batch. Fixed (not thread-derived) so
/// the batch boundaries — and thus which table snapshot each re-sample
/// scores against — are identical at any `num_threads`.
constexpr size_t kMcmcBatchRows = 32;

/// Minimum candidates x committed-prefix product before candidate scoring
/// is dispatched to the pool; below it the loop runs inline. Affects only
/// scheduling: scores are RNG-free and land in per-candidate slots, so the
/// choice never changes the output.
constexpr size_t kMinParallelScoreWork = 4096;

/// One joint assignment for a unit's attributes, with its model
/// probability p_{v|c}.
struct Candidate {
  std::vector<Value> values;  // aligned with unit.attrs
  double prob = 0.0;
};

double GaussianPdf(double x, double mu, double sigma) {
  const double z = (x - mu) / sigma;
  return std::exp(-0.5 * z * z) / (sigma * std::sqrt(2.0 * M_PI));
}

/// Converts per-candidate log-scores into sampling weights, shifting by
/// the max so that large DC penalties (hard weights * many violations)
/// never underflow every weight to zero at once - the *relative* penalty
/// is what matters for line 10 of Algorithm 3.
std::vector<double> LogScoresToWeights(const std::vector<double>& log_scores) {
  double mx = -std::numeric_limits<double>::infinity();
  for (double s : log_scores) mx = std::max(mx, s);
  if (!std::isfinite(mx)) {
    // Every candidate collapsed to zero mass (all log-scores -inf, e.g.
    // hard-DC penalties on every value): make the uniform fallback
    // explicit instead of handing a zero-mass distribution to Rng.
    return std::vector<double>(log_scores.size(), 1.0);
  }
  std::vector<double> weights(log_scores.size(), 0.0);
  for (size_t i = 0; i < log_scores.size(); ++i) {
    weights[i] = std::exp(log_scores[i] - mx);
  }
  return weights;
}

/// Enumerates the candidate set D(S[j]) with conditional probabilities
/// (Algorithm 3 line 6, plus the continuous-domain candidate sampling).
std::vector<Candidate> GenerateCandidates(const ModelUnit& unit,
                                          const Schema& schema, const Row& row,
                                          const KaminoOptions& options,
                                          const std::vector<double>& prior_values,
                                          Rng* rng) {
  std::vector<Candidate> out;
  if (unit.kind == ModelUnit::Kind::kHistogram) {
    if (unit.quantizer.has_value()) {
      // Numeric histogram: one candidate per bin, valued uniformly within.
      out.reserve(unit.distribution.size());
      for (size_t b = 0; b < unit.distribution.size(); ++b) {
        Candidate c;
        c.values = {Value::Numeric(
            unit.quantizer->SampleWithin(static_cast<int>(b), rng))};
        c.prob = unit.distribution[b];
        out.push_back(std::move(c));
      }
    } else {
      out.reserve(unit.distribution.size());
      for (size_t idx = 0; idx < unit.distribution.size(); ++idx) {
        Candidate c;
        for (int32_t v : unit.DecodeJointIndex(idx)) {
          c.values.push_back(Value::Categorical(v));
        }
        c.prob = unit.distribution[idx];
        out.push_back(std::move(c));
      }
    }
    return out;
  }

  // Discriminative unit.
  const DiscriminativeModel& model = *unit.model;
  if (model.target_is_categorical()) {
    std::vector<double> probs = model.PredictCategorical(row);
    out.reserve(probs.size());
    for (size_t idx = 0; idx < probs.size(); ++idx) {
      Candidate c;
      for (int32_t v : model.DecodeJointIndex(idx)) {
        c.values.push_back(Value::Categorical(v));
      }
      c.prob = probs[idx];
      out.push_back(std::move(c));
    }
    return out;
  }

  // Numeric target: draw d candidates from the predicted Gaussian, each
  // weighted by its density (section 4.2). A few deterministic quantile
  // points (mu, mu +- {0.5, 1, 2} sigma) are added so that at least some
  // candidates cover the distribution's bulk even for small d, which gives
  // the DC factor feasible values to choose from.
  auto [mu, sigma] = model.PredictGaussian(row);
  const Attribute& attr = schema.attribute(unit.attrs[0]);
  if (sigma <= 0.0) sigma = 1e-3;
  auto add_candidate = [&](double v) {
    v = std::min(attr.max_value(), std::max(attr.min_value(), v));
    Candidate cand;
    cand.values = {Value::Numeric(v)};
    cand.prob = GaussianPdf(v, mu, sigma);
    out.push_back(std::move(cand));
  };
  out.reserve(options.max_candidates + 13);
  for (double offset : {0.0, 0.5, -0.5, 1.0, -1.0, 2.0, -2.0}) {
    add_candidate(mu + offset * sigma);
  }
  for (int c = 0; c < options.max_candidates; ++c) {
    add_candidate(rng->Gaussian(mu, sigma));
  }
  // When DCs constrain this attribute, values already synthesized for it
  // are strong candidates: order DCs treat equal values as consistent, so
  // reusing them keeps the feasible set reachable even when it collapses
  // to exact points. They still carry their model density, so improbable
  // reuse stays improbable. The caller curates this list (nearest
  // neighbours under active order DCs plus a few random recycled values).
  for (double v : prior_values) add_candidate(v);
  return out;
}

/// Installs a candidate's values into the row.
void ApplyCandidate(const ModelUnit& unit, const Candidate& candidate,
                    Table* table, size_t row_index) {
  for (size_t i = 0; i < unit.attrs.size(); ++i) {
    table->set(row_index, unit.attrs[i], candidate.values[i]);
  }
}

/// Weighted violation penalty sum_phi w_phi * new_violations for the row
/// as currently materialized.
double ViolationPenalty(
    const Row& row, const std::vector<size_t>& active,
    const std::vector<WeightedConstraint>& constraints,
    const std::vector<std::unique_ptr<ViolationIndex>>& indices) {
  double penalty = 0.0;
  for (size_t dc_index : active) {
    const int64_t vio = indices[dc_index]->CountNew(row);
    if (vio > 0) {
      penalty += constraints[dc_index].EffectiveWeight() *
                 static_cast<double>(vio);
    }
  }
  return penalty;
}

/// Violation count of `row` (bound as row `self`) against every other row
/// of the partially synthesized table, for the DCs in `active`. Used by the
/// constrained MCMC pass, which must look at all rows, not just a prefix.
double FullTablePenalty(const Row& row, size_t self, const Table& table,
                        const std::vector<size_t>& active,
                        const std::vector<WeightedConstraint>& constraints) {
  double penalty = 0.0;
  for (size_t dc_index : active) {
    const DenialConstraint& dc = constraints[dc_index].dc;
    int64_t vio = 0;
    if (dc.is_unary()) {
      vio = dc.ViolatesUnary(row) ? 1 : 0;
    } else {
      for (size_t j = 0; j < table.num_rows(); ++j) {
        if (j == self) continue;
        if (dc.ViolatesPair(row, table.row(j))) ++vio;
      }
    }
    if (vio > 0) {
      penalty += constraints[dc_index].EffectiveWeight() *
                 static_cast<double>(vio);
    }
  }
  return penalty;
}

/// Writes a candidate's values into a detached scratch row (the parallel
/// scoring paths must not touch the shared table).
void ApplyCandidateToRow(const ModelUnit& unit, const Candidate& candidate,
                         Row* row) {
  for (size_t i = 0; i < unit.attrs.size(); ++i) {
    (*row)[unit.attrs[i]] = candidate.values[i];
  }
}

/// Fills `log_scores` with log p_{v|c} - weighted-violation penalty for
/// every candidate, scored against the committed prefix held by `indices`
/// (Algorithm 3 line 10 in log space). Dispatches candidates to the pool
/// when the candidate-set x prefix product is large; scoring draws no
/// randomness and each candidate writes its own slot, so parallel and
/// inline execution produce the same vector bit for bit. A failed chunk
/// (the pool converts thrown exceptions to Status) fails the whole
/// scoring — callers must not sample from a partially scored vector.
Status ScoreCandidatesAgainstPrefix(
    const ModelUnit& unit, const std::vector<Candidate>& candidates,
    const Row& base_row, const std::vector<size_t>& active,
    const std::vector<WeightedConstraint>& constraints,
    const std::vector<std::unique_ptr<ViolationIndex>>& indices,
    SynthesisTelemetry* telemetry, std::vector<double>* log_scores) {
  log_scores->assign(candidates.size(), 0.0);
  auto score_range = [&](size_t lo, size_t hi) {
    Row scratch = base_row;
    for (size_t c = lo; c < hi; ++c) {
      ApplyCandidateToRow(unit, candidates[c], &scratch);
      const double penalty =
          ViolationPenalty(scratch, active, constraints, indices);
      (*log_scores)[c] = std::log(candidates[c].prob + 1e-300) - penalty;
    }
    return Status::OK();
  };
  size_t prefix = 0;
  for (size_t dc_index : active) prefix += indices[dc_index]->size();
  if (runtime::GlobalNumThreads() > 1 &&
      candidates.size() * std::max<size_t>(prefix, 1) >=
          kMinParallelScoreWork) {
    ++telemetry->parallel_score_dispatches;
    const size_t grain = std::max<size_t>(1, candidates.size() / 16);
    return runtime::ParallelFor(0, candidates.size(), grain, score_range);
  }
  return score_range(0, candidates.size());
}

/// True when the FD fast path may resolve this unit: single attribute and
/// every active DC is a hard FD whose right-hand side is that attribute.
bool FdFastPathApplies(const ModelUnit& unit, const std::vector<size_t>& active,
                       const std::vector<WeightedConstraint>& constraints) {
  if (unit.attrs.size() != 1 || active.empty()) return false;
  for (size_t dc_index : active) {
    const WeightedConstraint& wc = constraints[dc_index];
    std::vector<size_t> lhs;
    size_t rhs = 0;
    if (!wc.hard || !wc.dc.AsFd(&lhs, &rhs) || rhs != unit.attrs[0]) {
      return false;
    }
  }
  return true;
}

}  // namespace

Result<Table> Synthesize(const ProbabilisticDataModel& model,
                         const std::vector<WeightedConstraint>& constraints,
                         size_t n, const KaminoOptions& options, Rng* rng,
                         SynthesisTelemetry* telemetry) {
  SynthesisTelemetry local_telemetry;
  if (telemetry == nullptr) telemetry = &local_telemetry;
  telemetry->num_threads = runtime::GlobalNumThreads();

  const Schema& schema = model.schema();
  Table out(schema);
  out.ResizeRows(n);

  std::vector<std::vector<size_t>> active_by_pos =
      ActivationPositions(model.sequence(), constraints);
  std::vector<std::unique_ptr<ViolationIndex>> indices(constraints.size());

  for (const ModelUnit& unit : model.units()) {
    // Phi_{A_j}: the DCs whose attributes complete within this unit.
    std::vector<size_t> active;
    for (size_t p = unit.start_position;
         p < unit.start_position + unit.attrs.size(); ++p) {
      for (size_t dc_index : active_by_pos[p]) active.push_back(dc_index);
    }
    const bool use_dc_factor =
        options.constraint_aware_sampling && !active.empty();
    if (use_dc_factor) {
      for (size_t dc_index : active) {
        indices[dc_index] = MakeViolationIndex(constraints[dc_index].dc);
      }
    }
    const bool fast_path = options.enable_fd_fast_path && use_dc_factor &&
                           FdFastPathApplies(unit, active, constraints);

    // Previously synthesized values of a DC-constrained numeric attribute
    // are recycled as candidates (see GenerateCandidates).
    const bool track_prior_values =
        use_dc_factor && unit.attrs.size() == 1 &&
        schema.attribute(unit.attrs[0]).is_numeric();
    std::vector<double> prior_values;

    // For active order DCs !(t1.X > t2.X & t1.Y < t2.Y) whose Y is this
    // unit's attribute, keep (x, y) pairs of the prefix rows sorted by x:
    // the y values of the x-nearest neighbours are (usually) feasible for
    // a co-monotone relation and make excellent candidates.
    struct OrderDcTracker {
      size_t x_attr = 0;
      std::vector<std::pair<double, double>> points;  // sorted by x
    };
    std::vector<OrderDcTracker> order_trackers;
    if (track_prior_values) {
      for (size_t dc_index : active) {
        size_t x = 0, y = 0;
        if (!constraints[dc_index].dc.AsOrderPair(&x, &y)) continue;
        // Either side of the co-monotone pair may be the attribute being
        // sampled; track against the other (already filled) side.
        size_t other;
        if (y == unit.attrs[0]) {
          other = x;
        } else if (x == unit.attrs[0]) {
          other = y;
        } else {
          continue;
        }
        if (schema.attribute(other).is_numeric()) {
          OrderDcTracker tracker;
          tracker.x_attr = other;
          order_trackers.push_back(tracker);
        }
      }
    }
    // For active hard FDs whose right-hand side is this *numeric*
    // attribute, the group's established value is the only feasible
    // candidate; surface it through the FD index.
    std::vector<size_t> numeric_fd_dcs;
    if (track_prior_values) {
      for (size_t dc_index : active) {
        std::vector<size_t> lhs;
        size_t rhs = 0;
        if (constraints[dc_index].dc.AsFd(&lhs, &rhs) && rhs == unit.attrs[0]) {
          numeric_fd_dcs.push_back(dc_index);
        }
      }
    }
    auto nearest_y_values = [&](const Row& row) {
      std::vector<double> values;
      for (size_t dc_index : numeric_fd_dcs) {
        if (indices[dc_index] == nullptr) continue;
        std::optional<Value> forced = indices[dc_index]->FdForcedValue(row);
        if (forced.has_value() && forced->is_numeric()) {
          values.push_back(forced->numeric());
        }
      }
      for (const OrderDcTracker& tracker : order_trackers) {
        const double x = row[tracker.x_attr].numeric();
        auto it = std::lower_bound(
            tracker.points.begin(), tracker.points.end(),
            std::make_pair(x, -std::numeric_limits<double>::infinity()));
        for (int step = -2; step <= 2; ++step) {
          auto jt = it + step;
          if (jt >= tracker.points.begin() && jt < tracker.points.end()) {
            values.push_back(jt->second);
          }
        }
      }
      return values;
    };

    for (size_t i = 0; i < n; ++i) {
      // Hard-FD fast path (section 7.3.6): copy the forced value from the
      // previously synthesized rows of the same group, if one exists.
      if (fast_path) {
        std::optional<Value> forced;
        for (size_t dc_index : active) {
          forced = indices[dc_index]->FdForcedValue(out.row(i));
          if (forced.has_value()) break;
        }
        if (forced.has_value()) {
          out.set(i, unit.attrs[0], *forced);
          ++telemetry->fd_fast_path_hits;
          for (size_t dc_index : active) {
            indices[dc_index]->AddRow(out.row(i));
          }
          continue;
        }
      }

      std::vector<double> extra_values;
      if (track_prior_values) {
        extra_values = nearest_y_values(out.row(i));
        for (int c = 0; c < 4 && !prior_values.empty(); ++c) {
          extra_values.push_back(prior_values[static_cast<size_t>(
              rng->UniformInt(0, static_cast<int64_t>(prior_values.size()) - 1))]);
        }
      }
      std::vector<Candidate> candidates = GenerateCandidates(
          unit, schema, out.row(i), options, extra_values, rng);
      if (candidates.empty()) {
        return Status::Internal("no candidates generated for attribute unit");
      }

      size_t chosen;
      if (!use_dc_factor) {
        // RandSampling ablation / no active DCs: i.i.d. tuple sampling.
        std::vector<double> weights(candidates.size());
        for (size_t c = 0; c < candidates.size(); ++c) {
          weights[c] = candidates[c].prob;
        }
        chosen = rng->Discrete(weights);
      } else if (options.accept_reject) {
        // Experiment 6: accept-reject sampling. Draw from p_{v|c}; accept
        // with probability exp(-penalty); keep the last draw on exhaustion.
        std::vector<double> proposal(candidates.size());
        for (size_t c = 0; c < candidates.size(); ++c) {
          proposal[c] = candidates[c].prob;
        }
        chosen = candidates.size() - 1;
        for (size_t attempt = 0; attempt < options.ar_max_tries; ++attempt) {
          const size_t pick = rng->Discrete(proposal);
          ++telemetry->ar_proposals;
          ApplyCandidate(unit, candidates[pick], &out, i);
          const double penalty =
              ViolationPenalty(out.row(i), active, constraints, indices);
          if (penalty <= 0.0 || rng->Bernoulli(std::exp(-penalty))) {
            chosen = pick;
            break;
          }
          chosen = pick;  // last sampled value if we never accept
        }
      } else {
        // Constraint-aware direct sampling (Algorithm 3 line 10):
        // P[v] proportional to p_{v|c} * exp(-sum w_phi * new_violations),
        // computed in log space so hard-DC penalties stay comparable.
        // Candidates are scored on scratch rows (in parallel when the set
        // and prefix are large); only the winner touches the table.
        std::vector<double> log_scores;
        KAMINO_RETURN_IF_ERROR(ScoreCandidatesAgainstPrefix(
            unit, candidates, out.row(i), active, constraints, indices,
            telemetry, &log_scores));
        chosen = rng->Discrete(LogScoresToWeights(log_scores));
      }

      ApplyCandidate(unit, candidates[chosen], &out, i);
      if (use_dc_factor) {
        for (size_t dc_index : active) {
          indices[dc_index]->AddRow(out.row(i));
        }
      }
      if (track_prior_values) {
        const double y = out.at(i, unit.attrs[0]).numeric();
        prior_values.push_back(y);
        for (OrderDcTracker& tracker : order_trackers) {
          const double x = out.at(i, tracker.x_attr).numeric();
          tracker.points.insert(
              std::lower_bound(tracker.points.begin(), tracker.points.end(),
                               std::make_pair(x, y)),
              {x, y});
        }
      }
    }

    // Constrained MCMC (Algorithm 3 line 12), row-batched: each batch
    // freezes the table, re-scores its rows concurrently — every row on a
    // scratch copy, drawing from its own RngStream sub-stream keyed by
    // resample index — then applies the winners in batch order. Within a
    // batch, re-samples condition on the pre-batch snapshot instead of on
    // each other (the price of parallelism); across thread counts the
    // output is bit-identical because randomness is keyed by index, never
    // by thread or schedule.
    if (options.mcmc_resamples > 0) {
      const runtime::RngStream streams(rng->NextSeed());
      struct Resample {
        size_t row = 0;
        std::vector<Value> values;  // winning candidate, aligned with attrs
        bool accepted = false;
      };
      size_t done = 0;
      while (done < options.mcmc_resamples) {
        const size_t batch =
            std::min(kMcmcBatchRows, options.mcmc_resamples - done);
        std::vector<Resample> resamples(batch);
        // Row picks come from the sequential run RNG, before the batch
        // executes, so they are schedule-independent.
        for (size_t k = 0; k < batch; ++k) {
          resamples[k].row = static_cast<size_t>(
              rng->UniformInt(0, static_cast<int64_t>(n) - 1));
        }
        KAMINO_RETURN_IF_ERROR(runtime::ParallelFor(
            0, batch, 1, [&](size_t lo, size_t hi) {
              for (size_t k = lo; k < hi; ++k) {
                Rng task_rng(streams.SubSeed(done + k));
                const size_t i = resamples[k].row;
                Row scratch = out.row(i);
                std::vector<double> extra_values;
                if (track_prior_values) {
                  extra_values = nearest_y_values(scratch);
                }
                std::vector<Candidate> candidates = GenerateCandidates(
                    unit, schema, scratch, options, extra_values, &task_rng);
                if (candidates.empty()) continue;
                std::vector<double> log_scores(candidates.size());
                for (size_t c = 0; c < candidates.size(); ++c) {
                  ApplyCandidateToRow(unit, candidates[c], &scratch);
                  double penalty = 0.0;
                  if (use_dc_factor) {
                    penalty =
                        FullTablePenalty(scratch, i, out, active, constraints);
                  }
                  log_scores[c] =
                      std::log(candidates[c].prob + 1e-300) - penalty;
                }
                const size_t pick =
                    task_rng.Discrete(LogScoresToWeights(log_scores));
                resamples[k].values = std::move(candidates[pick].values);
                resamples[k].accepted = true;
              }
              return Status::OK();
            }));
        for (Resample& r : resamples) {
          if (!r.accepted) continue;
          for (size_t a = 0; a < unit.attrs.size(); ++a) {
            out.set(r.row, unit.attrs[a], r.values[a]);
          }
          ++telemetry->mcmc_resamples;
        }
        ++telemetry->mcmc_batches;
        done += batch;
      }
    }
  }
  return out;
}

}  // namespace kamino
