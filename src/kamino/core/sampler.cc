#include "kamino/core/sampler.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <exception>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>

#include "kamino/common/logging.h"
#include "kamino/core/prefix_merge.h"
#include "kamino/core/sequencing.h"
#include "kamino/data/chunk_codec.h"
#include "kamino/dc/violations.h"
#include "kamino/obs/metrics.h"
#include "kamino/obs/trace.h"
#include "kamino/runtime/parallel_for.h"
#include "kamino/runtime/rng_stream.h"
#include "kamino/runtime/thread_pool.h"
#include "kamino/store/spill_store.h"

namespace kamino {
namespace {

/// Rows re-sampled per parallel MCMC batch. Fixed (not thread-derived) so
/// the batch boundaries — and thus which table snapshot each re-sample
/// scores against — are identical at any `num_threads`.
constexpr size_t kMcmcBatchRows = 32;

/// Minimum candidates x committed-prefix product before candidate scoring
/// is dispatched to the pool; below it the loop runs inline. Affects only
/// scheduling: scores are RNG-free and land in per-candidate slots, so the
/// choice never changes the output.
constexpr size_t kMinParallelScoreWork = 4096;

/// True unless the hooks carry a cancellation predicate that fired.
bool KeepGoing(const SynthesisHooks* hooks) {
  return hooks == nullptr || !hooks->keep_going || hooks->keep_going();
}

Status CancelledStatus() {
  return Status::Cancelled("synthesis cancelled by caller");
}

/// One joint assignment for a unit's attributes, with its model
/// probability p_{v|c}.
struct Candidate {
  std::vector<Value> values;  // aligned with unit.attrs
  double prob = 0.0;
};

double GaussianPdf(double x, double mu, double sigma) {
  const double z = (x - mu) / sigma;
  return std::exp(-0.5 * z * z) / (sigma * std::sqrt(2.0 * M_PI));
}

/// Converts per-candidate log-scores into sampling weights, shifting by
/// the max so that large DC penalties (hard weights * many violations)
/// never underflow every weight to zero at once - the *relative* penalty
/// is what matters for line 10 of Algorithm 3.
std::vector<double> LogScoresToWeights(const std::vector<double>& log_scores) {
  double mx = -std::numeric_limits<double>::infinity();
  for (double s : log_scores) mx = std::max(mx, s);
  if (!std::isfinite(mx)) {
    // Every candidate collapsed to zero mass (all log-scores -inf, e.g.
    // hard-DC penalties on every value): make the uniform fallback
    // explicit instead of handing a zero-mass distribution to Rng.
    return std::vector<double>(log_scores.size(), 1.0);
  }
  std::vector<double> weights(log_scores.size(), 0.0);
  for (size_t i = 0; i < log_scores.size(); ++i) {
    weights[i] = std::exp(log_scores[i] - mx);
  }
  return weights;
}

/// Enumerates the candidate set D(S[j]) with conditional probabilities
/// (Algorithm 3 line 6, plus the continuous-domain candidate sampling).
std::vector<Candidate> GenerateCandidates(const ModelUnit& unit,
                                          const Schema& schema, const Row& row,
                                          const KaminoOptions& options,
                                          const std::vector<double>& prior_values,
                                          Rng* rng) {
  std::vector<Candidate> out;
  if (unit.kind == ModelUnit::Kind::kHistogram) {
    if (unit.quantizer.has_value()) {
      // Numeric histogram: one candidate per bin, valued uniformly within.
      out.reserve(unit.distribution.size());
      for (size_t b = 0; b < unit.distribution.size(); ++b) {
        Candidate c;
        c.values = {Value::Numeric(
            unit.quantizer->SampleWithin(static_cast<int>(b), rng))};
        c.prob = unit.distribution[b];
        out.push_back(std::move(c));
      }
    } else {
      out.reserve(unit.distribution.size());
      for (size_t idx = 0; idx < unit.distribution.size(); ++idx) {
        Candidate c;
        for (int32_t v : unit.DecodeJointIndex(idx)) {
          c.values.push_back(Value::Categorical(v));
        }
        c.prob = unit.distribution[idx];
        out.push_back(std::move(c));
      }
    }
    return out;
  }

  // Discriminative unit.
  const DiscriminativeModel& model = *unit.model;
  if (model.target_is_categorical()) {
    std::vector<double> probs = model.PredictCategorical(row);
    out.reserve(probs.size());
    for (size_t idx = 0; idx < probs.size(); ++idx) {
      Candidate c;
      for (int32_t v : model.DecodeJointIndex(idx)) {
        c.values.push_back(Value::Categorical(v));
      }
      c.prob = probs[idx];
      out.push_back(std::move(c));
    }
    return out;
  }

  // Numeric target: draw d candidates from the predicted Gaussian, each
  // weighted by its density (section 4.2). A few deterministic quantile
  // points (mu, mu +- {0.5, 1, 2} sigma) are added so that at least some
  // candidates cover the distribution's bulk even for small d, which gives
  // the DC factor feasible values to choose from.
  auto [mu, sigma] = model.PredictGaussian(row);
  const Attribute& attr = schema.attribute(unit.attrs[0]);
  if (sigma <= 0.0) sigma = 1e-3;
  auto add_candidate = [&](double v) {
    v = std::min(attr.max_value(), std::max(attr.min_value(), v));
    Candidate cand;
    cand.values = {Value::Numeric(v)};
    cand.prob = GaussianPdf(v, mu, sigma);
    out.push_back(std::move(cand));
  };
  out.reserve(options.max_candidates + 13);
  for (double offset : {0.0, 0.5, -0.5, 1.0, -1.0, 2.0, -2.0}) {
    add_candidate(mu + offset * sigma);
  }
  for (int c = 0; c < options.max_candidates; ++c) {
    add_candidate(rng->Gaussian(mu, sigma));
  }
  // When DCs constrain this attribute, values already synthesized for it
  // are strong candidates: order DCs treat equal values as consistent, so
  // reusing them keeps the feasible set reachable even when it collapses
  // to exact points. They still carry their model density, so improbable
  // reuse stays improbable. The caller curates this list (nearest
  // neighbours under active order DCs plus a few random recycled values).
  for (double v : prior_values) add_candidate(v);
  return out;
}

/// Installs a candidate's values into the row.
void ApplyCandidate(const ModelUnit& unit, const Candidate& candidate,
                    Table* table, size_t row_index) {
  for (size_t i = 0; i < unit.attrs.size(); ++i) {
    table->set(row_index, unit.attrs[i], candidate.values[i]);
  }
}

/// Weighted violation penalty sum_phi w_phi * new_violations for the row
/// as currently materialized.
double ViolationPenalty(
    const Row& row, const std::vector<size_t>& active,
    const std::vector<WeightedConstraint>& constraints,
    const std::vector<std::unique_ptr<ViolationIndex>>& indices) {
  double penalty = 0.0;
  for (size_t dc_index : active) {
    const int64_t vio = indices[dc_index]->CountNew(row);
    if (vio > 0) {
      penalty += constraints[dc_index].EffectiveWeight() *
                 static_cast<double>(vio);
    }
  }
  return penalty;
}

/// Violation count of `row` (bound as row `self`) against every other row
/// of the partially synthesized table, for the DCs in `active`. Used by the
/// constrained MCMC pass, which must look at all rows, not just a prefix.
double FullTablePenalty(const Row& row, size_t self, const Table& table,
                        const std::vector<size_t>& active,
                        const std::vector<WeightedConstraint>& constraints) {
  double penalty = 0.0;
  for (size_t dc_index : active) {
    const DenialConstraint& dc = constraints[dc_index].dc;
    int64_t vio = 0;
    if (dc.is_unary()) {
      vio = dc.ViolatesUnary(row) ? 1 : 0;
    } else {
      // Columnar probe: the partner tuple reads straight from the typed
      // columns instead of materializing table.row(j) per comparison —
      // this loop dominates MCMC resampling cost.
      for (size_t j = 0; j < table.num_rows(); ++j) {
        if (j == self) continue;
        if (dc.ViolatesPairAt(row, table, j)) ++vio;
      }
    }
    if (vio > 0) {
      penalty += constraints[dc_index].EffectiveWeight() *
                 static_cast<double>(vio);
    }
  }
  return penalty;
}

/// Freeze-repair penalty under progressive merge: index delta against the
/// merged indices (which hold exactly the frozen prefix) plus a pair scan
/// restricted to the live shard's rows. Equals `FullTablePenalty` over the
/// concatenated prefix+shard table — `CountNew` is an exact count for
/// every index class — without reading a single frozen row; the
/// live/frozen scan counters let tests assert that. (Every non-unary DC
/// reachable from the repair has a merged index: they are built for
/// exactly the DCs the shards indexed, and repair only triggers on index
/// conflicts.)
double FrozenRestrictedPenalty(
    const Row& row, size_t self, const Table& live,
    const std::vector<size_t>& active,
    const std::vector<WeightedConstraint>& constraints,
    const std::vector<std::unique_ptr<ViolationIndex>>& merged,
    SynthesisTelemetry* telemetry) {
  double penalty = 0.0;
  for (size_t dc_index : active) {
    const DenialConstraint& dc = constraints[dc_index].dc;
    int64_t vio = 0;
    if (dc.is_unary()) {
      vio = dc.ViolatesUnary(row) ? 1 : 0;
    } else {
      if (merged[dc_index] != nullptr) vio = merged[dc_index]->CountNew(row);
      for (size_t j = 0; j < live.num_rows(); ++j) {
        if (j == self) continue;
        if (dc.ViolatesPairAt(row, live, j)) ++vio;
      }
      if (live.num_rows() > 0) {
        telemetry->merge_penalty_live_row_scans +=
            static_cast<int64_t>(live.num_rows() - 1);
      }
    }
    if (vio > 0) {
      penalty += constraints[dc_index].EffectiveWeight() *
                 static_cast<double>(vio);
    }
  }
  return penalty;
}

/// Writes a candidate's values into a detached scratch row (the parallel
/// scoring paths must not touch the shared table).
void ApplyCandidateToRow(const ModelUnit& unit, const Candidate& candidate,
                         Row* row) {
  for (size_t i = 0; i < unit.attrs.size(); ++i) {
    (*row)[unit.attrs[i]] = candidate.values[i];
  }
}

/// Fills `log_scores` with log p_{v|c} - weighted-violation penalty for
/// every candidate, scored against the committed prefix held by `indices`
/// (Algorithm 3 line 10 in log space). Dispatches candidates to the pool
/// when the candidate-set x prefix product is large; scoring draws no
/// randomness and each candidate writes its own slot, so parallel and
/// inline execution produce the same vector bit for bit. A failed chunk
/// (the pool converts thrown exceptions to Status) fails the whole
/// scoring — callers must not sample from a partially scored vector.
Status ScoreCandidatesAgainstPrefix(
    const ModelUnit& unit, const std::vector<Candidate>& candidates,
    const Row& base_row, const std::vector<size_t>& active,
    const std::vector<WeightedConstraint>& constraints,
    const std::vector<std::unique_ptr<ViolationIndex>>& indices,
    bool allow_nested_parallel, SynthesisTelemetry* telemetry,
    std::vector<double>* log_scores) {
  log_scores->assign(candidates.size(), 0.0);
  auto score_range = [&](size_t lo, size_t hi) {
    Row scratch = base_row;
    for (size_t c = lo; c < hi; ++c) {
      ApplyCandidateToRow(unit, candidates[c], &scratch);
      const double penalty =
          ViolationPenalty(scratch, active, constraints, indices);
      (*log_scores)[c] = std::log(candidates[c].prob + 1e-300) - penalty;
    }
    return Status::OK();
  };
  size_t prefix = 0;
  for (size_t dc_index : active) prefix += indices[dc_index]->size();
  if (allow_nested_parallel && runtime::GlobalNumThreads() > 1 &&
      candidates.size() * std::max<size_t>(prefix, 1) >=
          kMinParallelScoreWork) {
    ++telemetry->parallel_score_dispatches;
    const size_t grain = std::max<size_t>(1, candidates.size() / 16);
    return runtime::ParallelFor(0, candidates.size(), grain, score_range);
  }
  return score_range(0, candidates.size());
}

/// True when the FD fast path may resolve this unit: single attribute and
/// every active DC is a hard FD whose right-hand side is that attribute.
bool FdFastPathApplies(const ModelUnit& unit, const std::vector<size_t>& active,
                       const std::vector<WeightedConstraint>& constraints) {
  if (unit.attrs.size() != 1 || active.empty()) return false;
  for (size_t dc_index : active) {
    const WeightedConstraint& wc = constraints[dc_index];
    std::vector<size_t> lhs;
    size_t rhs = 0;
    if (!wc.hard || !wc.dc.AsFd(&lhs, &rhs) || rhs != unit.attrs[0]) {
      return false;
    }
  }
  return true;
}

/// Maps every DC to the model unit at which it activates (the unit whose
/// attributes complete it) and every unit to its active DC set Phi_{A_j}.
/// Computed once per run; the per-shard sampling loop and the merge pass
/// must agree on this mapping.
struct ActivationMap {
  std::vector<std::vector<size_t>> unit_active;  // unit -> active DC indices
  std::vector<size_t> dc_unit;                   // DC -> unit (or SIZE_MAX)
};

ActivationMap BuildActivationMap(
    const ProbabilisticDataModel& model,
    const std::vector<WeightedConstraint>& constraints) {
  ActivationMap map;
  const std::vector<std::vector<size_t>> active_by_pos =
      ActivationPositions(model.sequence(), constraints);
  map.unit_active.resize(model.units().size());
  map.dc_unit.assign(constraints.size(), SIZE_MAX);
  for (size_t u = 0; u < model.units().size(); ++u) {
    const ModelUnit& unit = model.units()[u];
    for (size_t p = unit.start_position;
         p < unit.start_position + unit.attrs.size(); ++p) {
      for (size_t dc_index : active_by_pos[p]) {
        map.unit_active[u].push_back(dc_index);
        map.dc_unit[dc_index] = u;
      }
    }
  }
  return map;
}

/// The per-shard sampling loop: the sequential Algorithm 3 body over
/// `n` rows, writing into `out` (resized here) and leaving the final
/// per-DC violation indices in `indices` for the shard merge. With
/// `allow_nested_parallel` the candidate scoring and MCMC batches may fan
/// out onto the pool (the single-shard configuration); shard-parallel
/// callers pass false so each shard stays a serial unit of work and the
/// pool is fed whole shards instead. `mcmc_resamples` is this shard's
/// slice of the run-wide `options.mcmc_resamples` budget, so total MCMC
/// work stays the same at every shard count. `hooks` cancellation is
/// polled at every column-group boundary; the per-shard progress callback
/// fires once all rows of the shard are sampled.
Status SampleShardRows(const ProbabilisticDataModel& model,
                       const std::vector<WeightedConstraint>& constraints,
                       const ActivationMap& activation, size_t n,
                       const KaminoOptions& options, size_t mcmc_resamples,
                       bool allow_nested_parallel, const SynthesisHooks* hooks,
                       Rng* rng, SynthesisTelemetry* telemetry,
                       Table* out_table,
                       std::vector<std::unique_ptr<ViolationIndex>>* indices_out) {
  const Schema& schema = model.schema();
  Table& out = *out_table;
  out.ResizeRows(n);

  std::vector<std::unique_ptr<ViolationIndex>>& indices = *indices_out;
  indices.clear();
  indices.resize(constraints.size());

  for (size_t unit_index = 0; unit_index < model.units().size(); ++unit_index) {
    if (!KeepGoing(hooks)) return CancelledStatus();
    const ModelUnit& unit = model.units()[unit_index];
    // Phi_{A_j}: the DCs whose attributes complete within this unit.
    const std::vector<size_t>& active = activation.unit_active[unit_index];
    const bool use_dc_factor =
        options.constraint_aware_sampling && !active.empty();
    if (use_dc_factor) {
      for (size_t dc_index : active) {
        indices[dc_index] = MakeViolationIndex(constraints[dc_index].dc);
      }
    }
    const bool fast_path = options.enable_fd_fast_path && use_dc_factor &&
                           FdFastPathApplies(unit, active, constraints);

    // Previously synthesized values of a DC-constrained numeric attribute
    // are recycled as candidates (see GenerateCandidates).
    const bool track_prior_values =
        use_dc_factor && unit.attrs.size() == 1 &&
        schema.attribute(unit.attrs[0]).is_numeric();
    std::vector<double> prior_values;

    // For active order DCs !(t1.X > t2.X & t1.Y < t2.Y) whose Y is this
    // unit's attribute, keep (x, y) pairs of the prefix rows sorted by x:
    // the y values of the x-nearest neighbours are (usually) feasible for
    // a co-monotone relation and make excellent candidates.
    struct OrderDcTracker {
      size_t x_attr = 0;
      std::vector<std::pair<double, double>> points;  // sorted by x
    };
    std::vector<OrderDcTracker> order_trackers;
    if (track_prior_values) {
      for (size_t dc_index : active) {
        size_t x = 0, y = 0;
        if (!constraints[dc_index].dc.AsOrderPair(&x, &y)) continue;
        // Either side of the co-monotone pair may be the attribute being
        // sampled; track against the other (already filled) side.
        size_t other;
        if (y == unit.attrs[0]) {
          other = x;
        } else if (x == unit.attrs[0]) {
          other = y;
        } else {
          continue;
        }
        if (schema.attribute(other).is_numeric()) {
          OrderDcTracker tracker;
          tracker.x_attr = other;
          order_trackers.push_back(tracker);
        }
      }
    }
    // For active hard FDs whose right-hand side is this *numeric*
    // attribute, the group's established value is the only feasible
    // candidate; surface it through the FD index.
    std::vector<size_t> numeric_fd_dcs;
    if (track_prior_values) {
      for (size_t dc_index : active) {
        std::vector<size_t> lhs;
        size_t rhs = 0;
        if (constraints[dc_index].dc.AsFd(&lhs, &rhs) && rhs == unit.attrs[0]) {
          numeric_fd_dcs.push_back(dc_index);
        }
      }
    }
    auto nearest_y_values = [&](const Row& row) {
      std::vector<double> values;
      for (size_t dc_index : numeric_fd_dcs) {
        if (indices[dc_index] == nullptr) continue;
        std::optional<Value> forced = indices[dc_index]->FdForcedValue(row);
        if (forced.has_value() && forced->is_numeric()) {
          values.push_back(forced->numeric());
        }
      }
      for (const OrderDcTracker& tracker : order_trackers) {
        const double x = row[tracker.x_attr].numeric();
        auto it = std::lower_bound(
            tracker.points.begin(), tracker.points.end(),
            std::make_pair(x, -std::numeric_limits<double>::infinity()));
        // Index arithmetic: `it + step` would be UB for out-of-range
        // steps (and on the null iterator of an empty vector).
        const ptrdiff_t base = it - tracker.points.begin();
        const ptrdiff_t size =
            static_cast<ptrdiff_t>(tracker.points.size());
        for (ptrdiff_t step = -2; step <= 2; ++step) {
          const ptrdiff_t j = base + step;
          if (j >= 0 && j < size) {
            values.push_back(tracker.points[static_cast<size_t>(j)].second);
          }
        }
      }
      return values;
    };

    for (size_t i = 0; i < n; ++i) {
      // Hard-FD fast path (section 7.3.6): copy the forced value from the
      // previously synthesized rows of the same group, if one exists.
      if (fast_path) {
        std::optional<Value> forced;
        for (size_t dc_index : active) {
          forced = indices[dc_index]->FdForcedValue(out.row(i));
          if (forced.has_value()) break;
        }
        if (forced.has_value()) {
          out.set(i, unit.attrs[0], *forced);
          ++telemetry->fd_fast_path_hits;
          for (size_t dc_index : active) {
            indices[dc_index]->AddRow(out.row(i));
          }
          continue;
        }
      }

      std::vector<double> extra_values;
      if (track_prior_values) {
        extra_values = nearest_y_values(out.row(i));
        for (int c = 0; c < 4 && !prior_values.empty(); ++c) {
          extra_values.push_back(prior_values[static_cast<size_t>(
              rng->UniformInt(0, static_cast<int64_t>(prior_values.size()) - 1))]);
        }
      }
      std::vector<Candidate> candidates = GenerateCandidates(
          unit, schema, out.row(i), options, extra_values, rng);
      if (candidates.empty()) {
        return Status::Internal("no candidates generated for attribute unit");
      }

      size_t chosen;
      if (!use_dc_factor) {
        // RandSampling ablation / no active DCs: i.i.d. tuple sampling.
        std::vector<double> weights(candidates.size());
        for (size_t c = 0; c < candidates.size(); ++c) {
          weights[c] = candidates[c].prob;
        }
        chosen = rng->Discrete(weights);
      } else if (options.accept_reject) {
        // Experiment 6: accept-reject sampling. Draw from p_{v|c}; accept
        // with probability exp(-penalty); keep the last draw on exhaustion.
        std::vector<double> proposal(candidates.size());
        for (size_t c = 0; c < candidates.size(); ++c) {
          proposal[c] = candidates[c].prob;
        }
        chosen = candidates.size() - 1;
        for (size_t attempt = 0; attempt < options.ar_max_tries; ++attempt) {
          const size_t pick = rng->Discrete(proposal);
          ++telemetry->ar_proposals;
          ApplyCandidate(unit, candidates[pick], &out, i);
          const double penalty =
              ViolationPenalty(out.row(i), active, constraints, indices);
          if (penalty <= 0.0 || rng->Bernoulli(std::exp(-penalty))) {
            chosen = pick;
            break;
          }
          chosen = pick;  // last sampled value if we never accept
        }
      } else {
        // Constraint-aware direct sampling (Algorithm 3 line 10):
        // P[v] proportional to p_{v|c} * exp(-sum w_phi * new_violations),
        // computed in log space so hard-DC penalties stay comparable.
        // Candidates are scored on scratch rows (in parallel when the set
        // and prefix are large); only the winner touches the table.
        std::vector<double> log_scores;
        KAMINO_RETURN_IF_ERROR(ScoreCandidatesAgainstPrefix(
            unit, candidates, out.row(i), active, constraints, indices,
            allow_nested_parallel, telemetry, &log_scores));
        chosen = rng->Discrete(LogScoresToWeights(log_scores));
      }

      ApplyCandidate(unit, candidates[chosen], &out, i);
      if (use_dc_factor) {
        for (size_t dc_index : active) {
          indices[dc_index]->AddRow(out.row(i));
        }
      }
      if (track_prior_values) {
        const double y = out.at(i, unit.attrs[0]).numeric();
        prior_values.push_back(y);
        for (OrderDcTracker& tracker : order_trackers) {
          const double x = out.at(i, tracker.x_attr).numeric();
          tracker.points.insert(
              std::lower_bound(tracker.points.begin(), tracker.points.end(),
                               std::make_pair(x, y)),
              {x, y});
        }
      }
    }

    // Constrained MCMC (Algorithm 3 line 12), row-batched: each batch
    // freezes the table, re-scores its rows concurrently — every row on a
    // scratch copy, drawing from its own RngStream sub-stream keyed by
    // resample index — then applies the winners in batch order. Within a
    // batch, re-samples condition on the pre-batch snapshot instead of on
    // each other (the price of parallelism); across thread counts the
    // output is bit-identical because randomness is keyed by index, never
    // by thread or schedule. In shard-parallel mode the batch runs inline
    // (the shard itself is the unit of parallelism) — same result, since
    // randomness is keyed by resample index either way.
    if (mcmc_resamples > 0) {
      const runtime::RngStream streams(rng->NextSeed());
      struct Resample {
        size_t row = 0;
        std::vector<Value> values;  // winning candidate, aligned with attrs
        bool accepted = false;
      };
      size_t done = 0;
      while (done < mcmc_resamples) {
        const size_t batch = std::min(kMcmcBatchRows, mcmc_resamples - done);
        std::vector<Resample> resamples(batch);
        // Row picks come from the sequential run RNG, before the batch
        // executes, so they are schedule-independent.
        for (size_t k = 0; k < batch; ++k) {
          resamples[k].row = static_cast<size_t>(
              rng->UniformInt(0, static_cast<int64_t>(n) - 1));
        }
        auto resample_range = [&](size_t lo, size_t hi) {
          for (size_t k = lo; k < hi; ++k) {
            Rng task_rng(streams.SubSeed(done + k));
            const size_t i = resamples[k].row;
            Row scratch = out.row(i);
            std::vector<double> extra_values;
            if (track_prior_values) {
              extra_values = nearest_y_values(scratch);
            }
            std::vector<Candidate> candidates = GenerateCandidates(
                unit, schema, scratch, options, extra_values, &task_rng);
            if (candidates.empty()) continue;
            std::vector<double> log_scores(candidates.size());
            for (size_t c = 0; c < candidates.size(); ++c) {
              ApplyCandidateToRow(unit, candidates[c], &scratch);
              double penalty = 0.0;
              if (use_dc_factor) {
                penalty =
                    FullTablePenalty(scratch, i, out, active, constraints);
              }
              log_scores[c] =
                  std::log(candidates[c].prob + 1e-300) - penalty;
            }
            const size_t pick =
                task_rng.Discrete(LogScoresToWeights(log_scores));
            resamples[k].values = std::move(candidates[pick].values);
            resamples[k].accepted = true;
          }
          return Status::OK();
        };
        if (allow_nested_parallel) {
          KAMINO_RETURN_IF_ERROR(
              runtime::ParallelFor(0, batch, 1, resample_range));
        } else {
          KAMINO_RETURN_IF_ERROR(resample_range(0, batch));
        }
        for (Resample& r : resamples) {
          if (!r.accepted) continue;
          for (size_t a = 0; a < unit.attrs.size(); ++a) {
            out.set(r.row, unit.attrs[a], r.values[a]);
          }
          ++telemetry->mcmc_resamples;
        }
        ++telemetry->mcmc_batches;
        done += batch;
      }
    }
  }
  if (hooks != nullptr && hooks->on_rows_sampled) hooks->on_rows_sampled(n);
  return Status::OK();
}

/// Strict weak ordering on cells under the Value ordering, for the
/// deterministic sorts and map keys of the shard merge.
struct ValueLess {
  bool operator()(const Value& a, const Value& b) const {
    return EvalCompare(a, CompareOp::kLt, b);
  }
};

/// Lexicographic ordering on row keys (e.g. FD LHS tuples or order-DC
/// group scopes).
struct ValueVectorLess {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    const size_t common = std::min(a.size(), b.size());
    for (size_t i = 0; i < common; ++i) {
      if (EvalCompare(a[i], CompareOp::kLt, b[i])) return true;
      if (EvalCompare(b[i], CompareOp::kLt, a[i])) return false;
    }
    return a.size() < b.size();
  }
};

/// Everything one shard produces: its slice of the instance, its final
/// per-DC violation indices, and its telemetry counters.
struct ShardState {
  Table table;
  std::vector<std::unique_ptr<ViolationIndex>> indices;
  SynthesisTelemetry telemetry;
};

/// Shard planner: contiguous row ranges whose sizes are a pure function of
/// (n, num_shards) — the first n % num_shards shards take one extra row —
/// so shard boundaries never depend on the thread count.
std::vector<size_t> ShardSizes(size_t n, size_t num_shards) {
  std::vector<size_t> sizes(num_shards, n / num_shards);
  for (size_t s = 0; s < n % num_shards; ++s) ++sizes[s];
  return sizes;
}

/// Resolves the `num_shards` knob: 0 = one shard per worker thread, and
/// never more shards than rows.
size_t ResolveNumShards(const KaminoOptions& options, size_t n) {
  size_t shards = options.num_shards == 0 ? runtime::GlobalNumThreads()
                                          : options.num_shards;
  if (shards < 1) shards = 1;
  if (n > 0 && shards > n) shards = n;
  return shards;
}

/// A hard order DC reconciled by rank alignment instead of per-row
/// re-sampling (see BuildAlignTasks).
struct AlignTask {
  size_t dc = 0;              // index into `constraints`
  std::vector<size_t> group;  // equality scope (empty for the pair form)
  size_t ctx = 0;             // sort context attribute
  size_t dep = 0;             // attribute whose values get reassigned
  bool co_monotone = true;
};

/// Hard (possibly equality-scoped) order DCs are reconciled by rank
/// alignment instead of per-row re-sampling: each shard's internally
/// monotone relation disagrees with the others', and no sequence of
/// single-row repairs can make disagreeing monotone maps agree. Identify
/// them up front so the repair budget is not wasted there. `probe_indices`
/// (any completed shard's index vector) tells which DCs actually built
/// indices this run; `alignable` is sized to `constraints` and flags the
/// accepted tasks' DCs.
std::vector<AlignTask> BuildAlignTasks(
    const ProbabilisticDataModel& model,
    const std::vector<WeightedConstraint>& constraints,
    const ActivationMap& activation,
    const std::vector<std::unique_ptr<ViolationIndex>>& probe_indices,
    std::vector<bool>* alignable) {
  alignable->assign(constraints.size(), false);
  std::vector<AlignTask> alignments;
  // Attributes an accepted task's correctness depends on: a later task
  // whose dep would rewrite one of them would silently re-break the
  // earlier task's zeroed DC, so such a task falls back to repair instead.
  std::vector<size_t> locked_attrs;
  for (size_t l = 0; l < constraints.size(); ++l) {
    if (probe_indices[l] == nullptr || !constraints[l].hard) continue;
    std::optional<GroupedOrderSpec> spec =
        constraints[l].dc.AsGroupedOrderSpec();
    if (!spec.has_value()) continue;
    AlignTask task;
    task.dc = l;
    task.group = spec->group_attrs;
    task.co_monotone = spec->co_monotone;
    const size_t x = spec->x_attr;
    const size_t y = spec->y_attr;
    const size_t u = activation.dc_unit[l];
    if (u == SIZE_MAX || model.units()[u].attrs.size() != 1) continue;
    // The dependent side is the attribute sampled last (the activating
    // unit's attribute); its values get reassigned, the other side is the
    // sort context.
    const size_t a = model.units()[u].attrs[0];
    if (a == y) {
      task.dep = y;
      task.ctx = x;
    } else if (a == x) {
      task.dep = x;
      task.ctx = y;
    } else {
      continue;  // the unit samples a group attribute; fall back to repair
    }
    if (std::find(locked_attrs.begin(), locked_attrs.end(), task.dep) !=
        locked_attrs.end()) {
      continue;  // would rewrite an earlier task's attribute
    }
    locked_attrs.push_back(task.dep);
    locked_attrs.push_back(task.ctx);
    locked_attrs.insert(locked_attrs.end(), task.group.begin(),
                        task.group.end());
    (*alignable)[l] = true;
    alignments.push_back(std::move(task));
  }
  return alignments;
}

/// Indexed hard FDs grouped by RHS attribute, in the joint-canonicalization
/// form the prefix-frozen pass consumes (ascending RHS, so deterministic).
std::vector<PrefixFdFamily> BuildFdFamilies(
    const std::vector<WeightedConstraint>& constraints,
    const std::vector<std::unique_ptr<ViolationIndex>>& probe_indices) {
  std::map<size_t, PrefixFdFamily> by_rhs;
  for (size_t l = 0; l < constraints.size(); ++l) {
    if (!constraints[l].hard || probe_indices[l] == nullptr) continue;
    std::vector<size_t> lhs;
    size_t rhs = 0;
    if (!constraints[l].dc.AsFd(&lhs, &rhs)) continue;
    PrefixFdFamily& family = by_rhs[rhs];
    family.rhs = rhs;
    family.lhs_sets.push_back(std::move(lhs));
  }
  std::vector<PrefixFdFamily> families;
  families.reserve(by_rhs.size());
  for (auto& [rhs, family] : by_rhs) {
    (void)rhs;
    families.push_back(std::move(family));
  }
  return families;
}

/// The shard-boundary reconciliation pass, run after the per-shard tables
/// are concatenated into `out` (global row r of shard s lives at
/// offsets[s] + r):
///
///  1. Per DC, fold the per-shard indices together in fixed shard order;
///     `CountAgainst` on the running merge exposes exactly the cross-shard
///     violating pairs the per-shard sampling could not see, and the rows
///     involved become the conflict set. Every mergeable index class is
///     subquadratic here — hash-group sweeps for FDs, Fenwick-tree
///     inversion sweeps for (equality-scoped) order DCs — so only the
///     residual general binary DCs still pay a cross pair scan.
///  2. Over a bounded budget, re-score each conflicted row's activating
///     unit against the *merged* instance (the same kernel as the MCMC
///     pass, with randomness keyed by (row, unit) so the result is
///     schedule-independent) and commit the greedy winner.
///  3. Canonicalize hard FDs exactly via per-RHS-attribute connected
///     components: after this no FD group maps one LHS to two RHS values,
///     whatever the budget of step 2 left behind.
///  4. Reconcile hard order DCs globally by rank alignment — the
///     per-shard monotone relations are merged into one by reassigning
///     the dependent attribute's sampled values in context rank order
///     (per equality-scope group), which zeroes the DC's violations while
///     permuting (not changing) the sampled value multiset.
///  5. If step 4 touched an attribute a hard FD mentions, re-run step 3:
///     the hard-FD guarantee always wins.
Status ReconcileShards(const ProbabilisticDataModel& model,
                       const std::vector<WeightedConstraint>& constraints,
                       const KaminoOptions& options,
                       const ActivationMap& activation,
                       const std::vector<ShardState>& shards,
                       const std::vector<size_t>& offsets, uint64_t merge_seed,
                       Table* out, SynthesisTelemetry* telemetry) {
  const Schema& schema = model.schema();
  const size_t n = out->num_rows();

  // Soft-DC merge telemetry: the weighted penalty sum_soft w * violations
  // over the concatenated instance, measured before and after the
  // reconciliation. Only soft DCs with subquadratic counting paths (FD
  // grouping, sorted order scans, the composite engine, unary) are
  // measured — a kGeneral-shaped soft DC would pay two O(n^2) pair scans
  // just to fill a telemetry field, which could dominate the merge it is
  // measuring. The measurement itself is surfaced in merge_soft_seconds.
  auto soft_measurable = [](const WeightedConstraint& wc) {
    // Decompose() classifies unary DCs as kUnary, so they stay measurable.
    return !wc.hard && wc.dc.Decompose().shape !=
                           PredicateDecomposition::Shape::kGeneral;
  };
  const bool any_soft =
      std::any_of(constraints.begin(), constraints.end(), soft_measurable);
  auto soft_penalty = [&]() {
    double penalty = 0.0;
    for (const WeightedConstraint& wc : constraints) {
      if (!soft_measurable(wc)) continue;
      penalty +=
          wc.weight * static_cast<double>(CountViolations(wc.dc, *out));
    }
    return penalty;
  };
  double soft_before = 0.0;
  if (any_soft) {
    const auto t0 = std::chrono::steady_clock::now();
    soft_before = soft_penalty();
    telemetry->merge_soft_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }

  // Hard order DCs whose reconciliation is step 4's rank alignment; step
  // 2's repair budget skips their conflicts.
  std::vector<bool> alignable;
  const std::vector<AlignTask> alignments = BuildAlignTasks(
      model, constraints, activation, shards[0].indices, &alignable);

  // --- Step 1: deterministic fixed-order merge + conflict detection. ---
  // merged[l] ends up indexing the whole instance for DC l; offenders maps
  // each conflicted global row to the DCs it crosses shards on (std::map
  // for a deterministic row-order walk in step 2).
  std::vector<std::unique_ptr<ViolationIndex>> merged(constraints.size());
  std::vector<int64_t> cross_by_dc(constraints.size(), 0);
  std::map<size_t, std::vector<size_t>> offenders;
  for (size_t l = 0; l < constraints.size(); ++l) {
    if (shards[0].indices[l] == nullptr) continue;
    if (constraints[l].dc.is_unary()) continue;  // no cross-shard pairs
    merged[l] = MakeViolationIndex(constraints[l].dc);
    for (size_t s = 0; s < shards.size(); ++s) {
      const ViolationIndex& shard_index = *shards[s].indices[l];
      if (s > 0) {
        const int64_t cross = merged[l]->CountAgainst(shard_index);
        cross_by_dc[l] += cross;
        telemetry->merge_cross_violations += cross;
        if (cross > 0 && !alignable[l]) {
          const Table& shard = shards[s].table;
          for (size_t r = 0; r < shard.num_rows(); ++r) {
            if (merged[l]->CountNew(shard.row(r)) > 0) {
              offenders[offsets[s] + r].push_back(l);
            }
          }
        }
      }
      merged[l]->Merge(shard_index);
    }
  }
  telemetry->merge_conflict_rows =
      static_cast<int64_t>(offenders.size());

  // Attributes modified after step 1's cross counts were taken (by step
  // 2 repairs or step 3 rewrites). An alignment task whose attributes are
  // untouched and whose DC saw no cross-shard violations can skip step 4.
  std::vector<bool> attr_modified(schema.size(), false);

  // --- Step 2: bounded re-sample repair against the merged instance. ---
  // Adaptive mode scales the budget with the observed conflict set (a
  // couple of unit repairs per conflicted row, floored so tiny conflict
  // sets still get a useful sweep) and additionally cuts the sweep short
  // once consecutive repairs stop reducing the weighted violation
  // penalty; the fixed knob is kept as the non-adaptive override.
  constexpr size_t kMergeNoGainStreak = 8;
  size_t budget = options.adaptive_merge_budget
                      ? 16 + 2 * offenders.size()
                      : options.shard_merge_resamples;
  telemetry->merge_budget = static_cast<int64_t>(budget);
  size_t no_gain_streak = 0;
  bool swept_dry = false;
  const runtime::RngStream merge_stream(merge_seed);
  // Repair order: by default, conflict rows are swept in descending order
  // of their weighted soft-DC penalty contribution against the merged
  // instance (ties, and runs without measurable soft DCs, keep ascending
  // row order), so the bounded budget is spent where it can lower the
  // penalty most. `soft_penalty_merge_order = false` restores the plain
  // row-order sweep. Both orders are pure functions of the merged
  // instance, so the (seed, num_shards) output contract is unchanged.
  std::vector<std::pair<size_t, const std::vector<size_t>*>> repair_order;
  repair_order.reserve(offenders.size());
  for (const auto& [row, dcs] : offenders) {
    repair_order.emplace_back(row, &dcs);
  }
  if (options.soft_penalty_merge_order && any_soft && !repair_order.empty()) {
    std::vector<double> contribution(repair_order.size(), 0.0);
    for (size_t k = 0; k < repair_order.size(); ++k) {
      const Row& conflicted = out->row(repair_order[k].first);
      for (size_t l = 0; l < constraints.size(); ++l) {
        if (merged[l] == nullptr || !soft_measurable(constraints[l])) continue;
        contribution[k] += constraints[l].weight *
                           static_cast<double>(merged[l]->CountNew(conflicted));
      }
    }
    std::vector<size_t> perm(repair_order.size());
    for (size_t k = 0; k < perm.size(); ++k) perm[k] = k;
    std::stable_sort(perm.begin(), perm.end(), [&](size_t a, size_t b) {
      return contribution[a] > contribution[b];
    });
    std::vector<std::pair<size_t, const std::vector<size_t>*>> sorted;
    sorted.reserve(repair_order.size());
    for (size_t k : perm) sorted.push_back(repair_order[k]);
    repair_order.swap(sorted);
  }
  for (const auto& [row, dcs_ptr] : repair_order) {
    const std::vector<size_t>& dcs = *dcs_ptr;
    if (budget == 0 || swept_dry) break;
    // The units at which the conflicted DCs activate, ascending.
    std::vector<size_t> units;
    for (size_t l : dcs) {
      const size_t u = activation.dc_unit[l];
      if (u != SIZE_MAX &&
          std::find(units.begin(), units.end(), u) == units.end()) {
        units.push_back(u);
      }
    }
    std::sort(units.begin(), units.end());
    for (size_t u : units) {
      if (budget == 0) break;
      const ModelUnit& unit = model.units()[u];
      const std::vector<size_t>& active = activation.unit_active[u];
      Rng task_rng(merge_stream.Fork(row).SubSeed(u));
      Row scratch = out->row(row);

      // Merged-instance candidate seeding for numeric attributes: the FD
      // group's established value and the order-DC neighbours' values are
      // often the only feasible points.
      std::vector<double> extra_values;
      if (unit.attrs.size() == 1 &&
          schema.attribute(unit.attrs[0]).is_numeric()) {
        for (size_t l : active) {
          std::vector<size_t> lhs;
          size_t rhs = 0, x = 0, y = 0;
          if (merged[l] != nullptr && constraints[l].dc.AsFd(&lhs, &rhs) &&
              rhs == unit.attrs[0]) {
            std::optional<Value> forced = merged[l]->FdForcedValue(scratch);
            if (forced.has_value() && forced->is_numeric()) {
              extra_values.push_back(forced->numeric());
            }
          } else if (constraints[l].dc.AsOrderPair(&x, &y)) {
            const size_t other =
                y == unit.attrs[0] ? x : (x == unit.attrs[0] ? y : SIZE_MAX);
            if (other != SIZE_MAX && schema.attribute(other).is_numeric()) {
              // Unit-attribute values of the 4 rows nearest in the other
              // attribute (deterministic tie-break on row index).
              const double x0 = scratch[other].numeric();
              std::vector<std::pair<double, size_t>> nearest;
              for (size_t j = 0; j < n; ++j) {
                if (j == row) continue;
                nearest.emplace_back(
                    std::abs(out->at(j, other).numeric() - x0), j);
              }
              const size_t keep = std::min<size_t>(4, nearest.size());
              std::partial_sort(nearest.begin(), nearest.begin() + keep,
                                nearest.end());
              for (size_t k = 0; k < keep; ++k) {
                extra_values.push_back(
                    out->at(nearest[k].second, unit.attrs[0]).numeric());
              }
            }
          }
        }
      }

      std::vector<Candidate> candidates = GenerateCandidates(
          unit, schema, scratch, options, extra_values, &task_rng);
      if (candidates.empty()) continue;
      // Repair is greedy: commit the best-scoring candidate (first index
      // wins ties, so the choice is deterministic) instead of sampling —
      // the row already went through its shard's sampled draw; this pass
      // only exists to undo cross-shard damage.
      const double penalty_before =
          FullTablePenalty(out->row(row), row, *out, active, constraints);
      size_t pick = 0;
      double best = -std::numeric_limits<double>::infinity();
      double best_penalty = penalty_before;
      for (size_t c = 0; c < candidates.size(); ++c) {
        ApplyCandidateToRow(unit, candidates[c], &scratch);
        const double penalty =
            FullTablePenalty(scratch, row, *out, active, constraints);
        const double score = std::log(candidates[c].prob + 1e-300) - penalty;
        if (score > best) {
          best = score;
          best_penalty = penalty;
          pick = c;
        }
      }
      for (size_t a = 0; a < unit.attrs.size(); ++a) {
        out->set(row, unit.attrs[a], candidates[pick].values[a]);
        attr_modified[unit.attrs[a]] = true;
      }
      ++telemetry->merge_resamples;
      --budget;
      if (options.adaptive_merge_budget) {
        // Early stop: a long run of repairs that leave the weighted
        // penalty where it was means the remaining conflicts are not
        // single-row-repairable (steps 3/4 handle the hard ones exactly).
        if (best_penalty < penalty_before - 1e-12) {
          no_gain_streak = 0;
        } else if (++no_gain_streak >= kMergeNoGainStreak) {
          ++telemetry->merge_early_stops;
          swept_dry = true;
          break;
        }
      }
    }
  }

  // --- Step 3: exact hard-FD canonicalization. ---
  // Hard FDs sharing an RHS attribute must be canonicalized *jointly*
  // (alternating per-DC sweeps can oscillate forever when two FDs pull the
  // same cell toward different group values): for each RHS attribute, rows
  // connected by sharing any of its FDs' LHS keys form a component, and
  // the whole component takes the value of its smallest-index row. One
  // round makes every FD of that RHS exact; extra rounds only run when an
  // RHS attribute feeds another FD's LHS (a dependency chain, bounded by
  // the schema width).
  std::map<size_t, std::vector<size_t>> fds_by_rhs;  // rhs attr -> DCs
  for (size_t l = 0; l < constraints.size(); ++l) {
    if (!constraints[l].hard || shards[0].indices[l] == nullptr) continue;
    std::vector<size_t> lhs;
    size_t rhs = 0;
    if (constraints[l].dc.AsFd(&lhs, &rhs)) fds_by_rhs[rhs].push_back(l);
  }
  auto canonicalize_hard_fds = [&]() {
    for (size_t round = 0; round < schema.size() + 1; ++round) {
      int64_t rewrites = 0;
      for (const auto& [rhs, dcs] : fds_by_rhs) {
        // Union rows that any FD of this RHS forces to agree.
        std::vector<size_t> parent(n);
        for (size_t r = 0; r < n; ++r) parent[r] = r;
        auto find = [&parent](size_t r) {
          while (parent[r] != r) {
            parent[r] = parent[parent[r]];
            r = parent[r];
          }
          return r;
        };
        for (size_t l : dcs) {
          std::vector<size_t> lhs;
          size_t rhs_attr = 0;
          constraints[l].dc.AsFd(&lhs, &rhs_attr);
          std::map<std::vector<Value>, size_t, ValueVectorLess> first_row;
          for (size_t r = 0; r < n; ++r) {
            std::vector<Value> key;
            key.reserve(lhs.size());
            for (size_t a : lhs) key.push_back(out->at(r, a));
            auto [it, inserted] = first_row.try_emplace(std::move(key), r);
            if (!inserted) parent[find(r)] = find(it->second);
          }
        }
        // The component's canonical value is that of its first row (rows
        // walked in ascending order, so the choice is deterministic).
        std::vector<std::optional<Value>> canonical(n);
        for (size_t r = 0; r < n; ++r) {
          const size_t root = find(r);
          if (!canonical[root].has_value()) {
            canonical[root] = out->at(r, rhs);
          } else if (!(out->at(r, rhs) == *canonical[root])) {
            out->set(r, rhs, *canonical[root]);
            attr_modified[rhs] = true;
            ++rewrites;
          }
        }
      }
      telemetry->merge_fd_rewrites += rewrites;
      if (rewrites == 0) break;
    }
  };
  canonicalize_hard_fds();

  // --- Step 4: rank alignment for hard order DCs. ---
  // Within each equality-scope group, sort rows by the context attribute
  // (ties broken by global row index) and reassign the dependent
  // attribute's sampled values in rank order — ascending for the
  // co-monotone form, descending for the anti-monotone one. The result is
  // a permutation of the values the shards sampled, so every per-value
  // marginal is preserved exactly, and the DC's violation count drops to
  // zero. Deterministic: no randomness, fixed tie-breaks. Runs after the
  // FD canonicalization so the groups it scopes by are already final.
  bool realigned_fd_attr = false;
  for (const AlignTask& task : alignments) {
    // A DC that is already violation-free needs no alignment: skip rather
    // than permute values (and sever row-level correlations) to repair
    // nothing. Cheap path first: no cross-shard violations and no
    // attribute of the DC touched by steps 2/3; otherwise count for real.
    bool touched = attr_modified[task.dep] || attr_modified[task.ctx];
    for (size_t a : task.group) touched = touched || attr_modified[a];
    if (cross_by_dc[task.dc] == 0 && !touched) continue;
    if (CountViolations(constraints[task.dc].dc, *out) == 0) continue;
    std::map<std::vector<Value>, std::vector<size_t>, ValueVectorLess> groups;
    for (size_t r = 0; r < n; ++r) {
      std::vector<Value> key;
      key.reserve(task.group.size());
      for (size_t a : task.group) key.push_back(out->at(r, a));
      groups[std::move(key)].push_back(r);  // ascending rows per group
    }
    for (auto& [key, rows] : groups) {
      if (rows.size() < 2) continue;
      std::vector<size_t> order = rows;
      std::sort(order.begin(), order.end(), [&](size_t i, size_t j) {
        const Value& a = out->at(i, task.ctx);
        const Value& b = out->at(j, task.ctx);
        if (EvalCompare(a, CompareOp::kLt, b)) return true;
        if (EvalCompare(b, CompareOp::kLt, a)) return false;
        return i < j;
      });
      std::vector<Value> values;
      values.reserve(rows.size());
      for (size_t r : rows) values.push_back(out->at(r, task.dep));
      std::sort(values.begin(), values.end(), ValueLess());
      if (!task.co_monotone) std::reverse(values.begin(), values.end());
      for (size_t k = 0; k < order.size(); ++k) {
        const size_t r = order[k];
        if (!(out->at(r, task.dep) == values[k])) {
          out->set(r, task.dep, values[k]);
          // Mirror steps 2/3: a later alignment task reading this
          // attribute must not take the cheap "untouched" skip.
          attr_modified[task.dep] = true;
          ++telemetry->merge_order_alignments;
        }
      }
    }
    // If the realigned attribute participates in a hard FD, that FD's
    // exactness guarantee must be restored below.
    for (const auto& [rhs, dcs] : fds_by_rhs) {
      for (size_t l : dcs) {
        const std::vector<size_t>& attrs = constraints[l].dc.attributes();
        if (std::find(attrs.begin(), attrs.end(), task.dep) != attrs.end()) {
          realigned_fd_attr = true;
        }
      }
    }
  }

  // --- Step 5: hard FDs win. ---
  // Rank alignment touching an FD attribute is the one way step 4 can
  // undo step 3; re-canonicalize so the hard-FD contract holds
  // unconditionally (the affected order DC then stays best-effort).
  if (realigned_fd_attr) canonicalize_hard_fds();

  if (any_soft) {
    const auto t0 = std::chrono::steady_clock::now();
    telemetry->merge_soft_penalty_delta = soft_before - soft_penalty();
    telemetry->merge_soft_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }
  return Status::OK();
}

/// Delivers one shard's slice of `out` to `hooks->on_chunk`. The chunk
/// slices its rows out as per-column block copies, so the sink may keep
/// them alive past the call; under `options.compress_chunks` the slice
/// travels as an encoded per-column payload instead of materialized rows.
Status EmitOneChunk(const Table& out, size_t shard, size_t offset, size_t rows,
                    bool last, const KaminoOptions& options,
                    const SynthesisHooks* hooks) {
  if (hooks == nullptr || !hooks->on_chunk) return Status::OK();
  if (!KeepGoing(hooks)) return CancelledStatus();
  obs::TraceSpan span("sampler/chunk");
  span.AddArg("shard", static_cast<int64_t>(shard));
  span.AddArg("row_offset", static_cast<int64_t>(offset));
  span.AddArg("rows", static_cast<int64_t>(rows));
  TableChunk chunk;
  chunk.shard = shard;
  chunk.row_offset = offset;
  chunk.last = last;
  Table slice = out.Slice(offset, rows);
  if (options.compress_chunks) {
    chunk.encoded = EncodeChunkColumns(slice);
    chunk.encoded_rows = slice.num_rows();
    chunk.rows = Table(out.schema());  // schema-only carrier
    span.AddArg("encoded_bytes", static_cast<int64_t>(chunk.encoded.size()));
  } else {
    chunk.rows = std::move(slice);
  }
  return hooks->on_chunk(chunk);
}

/// Streams the instance shard by shard: ascending row offsets, each shard
/// exactly once, tiling [0, n). The global path's delivery loop; the
/// progressive path emits each chunk at its freeze instead.
Status EmitChunks(const Table& out, const std::vector<size_t>& sizes,
                  const std::vector<size_t>& offsets,
                  const KaminoOptions& options, const SynthesisHooks* hooks) {
  if (hooks == nullptr || !hooks->on_chunk) return Status::OK();
  for (size_t s = 0; s < sizes.size(); ++s) {
    KAMINO_RETURN_IF_ERROR(EmitOneChunk(out, s, offsets[s], sizes[s],
                                        s + 1 == sizes.size(), options, hooks));
  }
  return Status::OK();
}

/// Frozen-slice chunk delivery for the out-of-core path: the slice is
/// already materialized (it *is* the chunk — no slicing a big table) and,
/// under `compress_chunks`, already encoded for the spill store, so the
/// same payload passes straight through to the sink instead of being
/// re-encoded or re-read from disk.
Status EmitOneChunk(Table slice, std::vector<uint8_t> encoded, size_t shard,
                    size_t offset, bool last, const KaminoOptions& options,
                    const SynthesisHooks* hooks) {
  if (hooks == nullptr || !hooks->on_chunk) return Status::OK();
  if (!KeepGoing(hooks)) return CancelledStatus();
  obs::TraceSpan span("sampler/chunk");
  span.AddArg("shard", static_cast<int64_t>(shard));
  span.AddArg("row_offset", static_cast<int64_t>(offset));
  span.AddArg("rows", static_cast<int64_t>(slice.num_rows()));
  TableChunk chunk;
  chunk.shard = shard;
  chunk.row_offset = offset;
  chunk.last = last;
  if (options.compress_chunks) {
    chunk.encoded = std::move(encoded);
    chunk.encoded_rows = slice.num_rows();
    chunk.rows = Table(slice.schema());  // schema-only carrier
    span.AddArg("encoded_bytes", static_cast<int64_t>(chunk.encoded.size()));
  } else {
    chunk.rows = std::move(slice);
  }
  return hooks->on_chunk(chunk);
}

/// Frozen-side source for the freeze repair's order-DC nearest-neighbour
/// candidate seeding. Per order-pair constraint it keeps one
/// (context value, unit value, global row) triple per frozen row, sorted
/// by (value, row); `SeedNearest` merges the frozen candidates with a
/// scan of the live rows, reproducing a partial_sort over the whole
/// prefix-plus-shard range — nearest `keep` by (|value - x0|, global
/// row), ascending — without re-reading a frozen row. The values are
/// captured at freeze time; frozen rows are immutable, so the copies
/// never go stale.
struct FrozenNeighborStore {
  struct Entry {
    double other = 0.0;  // the scanned (non-unit) attribute's value
    double unit = 0.0;   // the repaired unit attribute's value
    size_t row = 0;      // global row, the distance tie-break
  };

  FrozenNeighborStore(size_t other_attr, size_t unit_attr)
      : other_attr(other_attr), unit_attr(unit_attr) {}

  void Absorb(const Table& slice, size_t global_begin) {
    const size_t n = slice.num_rows();
    entries.reserve(entries.size() + n);
    for (size_t r = 0; r < n; ++r) {
      entries.push_back(Entry{slice.at(r, other_attr).numeric(),
                              slice.at(r, unit_attr).numeric(),
                              global_begin + r});
    }
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) {
                if (a.other != b.other) return a.other < b.other;
                return a.row < b.row;
              });
  }

  /// Appends the unit values of the `keep` nearest rows to `x0` — over
  /// frozen and live rows jointly, excluding live row `self` — in
  /// (distance, global row) order.
  void SeedNearest(double x0, size_t keep, size_t global_begin, size_t self,
                   const Table& live, std::vector<double>* out_values) const {
    struct Cand {
      double dist = 0.0;
      size_t row = 0;
      double unit = 0.0;
    };
    std::vector<Cand> cands;
    // Frozen side: walk equal-value runs outward from x0. Successive runs
    // on one side have strictly increasing distance, so once a side has
    // contributed `keep` candidates no farther run can reach the top-k;
    // within a run (equal distance) the smallest `keep` rows suffice.
    const auto mid = std::lower_bound(
        entries.begin(), entries.end(), x0,
        [](const Entry& e, double v) { return e.other < v; });
    size_t taken = 0;
    for (auto it = mid; it != entries.end() && taken < keep;) {
      auto run_end = it;
      size_t in_run = 0;
      while (run_end != entries.end() && run_end->other == it->other) {
        if (in_run < keep) {
          cands.push_back(Cand{std::abs(run_end->other - x0), run_end->row,
                               run_end->unit});
          ++in_run;
        }
        ++run_end;
      }
      taken += in_run;
      it = run_end;
    }
    taken = 0;
    for (auto it = mid; it != entries.begin() && taken < keep;) {
      auto run_last = std::prev(it);
      auto run_first = run_last;
      while (run_first != entries.begin() &&
             std::prev(run_first)->other == run_last->other) {
        --run_first;
      }
      size_t in_run = 0;
      for (auto e = run_first; in_run < keep; ++e) {
        cands.push_back(Cand{std::abs(e->other - x0), e->row, e->unit});
        ++in_run;
        if (e == run_last) break;
      }
      taken += in_run;
      it = run_first;
    }
    // Live side: every row is a candidate, read directly (their values
    // can still change under repair).
    for (size_t j = 0; j < live.num_rows(); ++j) {
      if (j == self) continue;
      cands.push_back(Cand{
          std::abs(live.at(j, other_attr).numeric() - x0), global_begin + j,
          live.at(j, unit_attr).numeric()});
    }
    std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
      if (a.dist != b.dist) return a.dist < b.dist;
      return a.row < b.row;
    });
    const size_t take = std::min(keep, cands.size());
    for (size_t k = 0; k < take; ++k) out_values->push_back(cands[k].unit);
  }

  size_t other_attr = 0;
  size_t unit_attr = 0;
  std::vector<Entry> entries;
};

/// The progressive prefix-frozen merge (`options.progressive_merge`):
/// shard s is reconciled against the already-frozen prefix [0, s) as soon
/// as its sampling completes, the grown prefix freezes, and shard s's
/// chunk is emitted immediately — while later shards are still sampling
/// on the pool. The first chunk therefore leaves after ~1/num_shards of
/// the work instead of after the global merge.
///
/// Each freeze mirrors the global pass restricted to shard s's rows
/// (frozen cells are never written):
///  1. Conflict detection: `CountAgainst` between the running merged
///     indices (exactly the frozen prefix) and shard s's fresh index.
///  2. Bounded greedy re-sample repair over the conflicted shard rows,
///     with a per-freeze adaptive budget and randomness keyed by
///     (global row, unit) off the same merge stream as the global path.
///     Conflicts sweep in ascending row order (the soft-penalty ordering
///     and `merge_soft_penalty_delta` are global-merge-only: measuring
///     the soft penalty at every freeze would dominate the freezes).
///  3. Prefix-frozen hard-FD canonicalization: shard rows adopt the
///     frozen prefix's canonical RHS values, never the reverse.
///  4. Prefix-frozen rank alignment: shard rows slot into the frozen
///     monotone relation (envelope clamp) instead of re-ranking the
///     union. Run whenever the DC actually has violations.
///  5. Hard FDs win: re-run 3 if 4 touched an FD attribute.
/// Shard 0's freeze runs 3/4 with an empty prefix — the global semantics
/// restricted to one shard — so hard DCs are exact after *every* freeze.
///
/// Determinism: shard content comes from per-shard sub-seeds, and every
/// freeze is a pure function of (frozen prefix, shard s, merge_seed)
/// applied in fixed shard order by this one coordinator thread — so the
/// output is a pure function of (seed, num_shards), bit-identical at any
/// num_threads. It generally differs from the global merge's output: the
/// freeze may only rewrite shard-s rows, never revisit the prefix.
Result<Table> ProgressiveShardSynthesis(
    const ProbabilisticDataModel& model,
    const std::vector<WeightedConstraint>& constraints,
    const KaminoOptions& options, const ActivationMap& activation,
    const std::vector<size_t>& sizes, const std::vector<size_t>& offsets,
    const std::vector<size_t>& mcmc_budgets, const runtime::RngStream& root,
    uint64_t merge_seed, const SynthesisHooks* hooks,
    SynthesisTelemetry* telemetry) {
  const Schema& schema = model.schema();
  const size_t num_shards = sizes.size();
  Table out(schema);

  // Out-of-core: frozen slices leave memory for the spill store at their
  // freeze. The store lives on this stack frame, so its destructor —
  // which unlinks the spill file and temp dir — runs on every exit path:
  // completion, error, cancellation, and engine teardown (the drain
  // below unwinds through here).
  const bool out_of_core = options.out_of_core;
  std::unique_ptr<store::SpillStore> spill;
  if (out_of_core) {
    KAMINO_ASSIGN_OR_RETURN(spill, store::SpillStore::Create(options.spill_dir));
  }

  std::vector<ShardState> shards(num_shards);
  for (ShardState& shard : shards) shard.table = Table(schema);

  auto run_shard = [&](size_t s) -> Status {
    if (!KeepGoing(hooks)) return CancelledStatus();
    obs::TraceSpan span("sampler/shard");
    span.AddArg("shard", static_cast<int64_t>(s));
    span.AddArg("rows", static_cast<int64_t>(sizes[s]));
    Rng shard_rng(root.SubSeed(s));
    return SampleShardRows(model, constraints, activation, sizes[s], options,
                           mcmc_budgets[s], /*allow_nested_parallel=*/false,
                           hooks, &shard_rng, &shards[s].telemetry,
                           &shards[s].table, &shards[s].indices);
  };

  // Scheduling: shards go onto the pool as independent tasks while this
  // (coordinator) thread freezes them strictly in ascending order. With a
  // single-thread budget — or when the caller is itself a pool worker and
  // must not block on pool tasks — shards run inline between freezes
  // instead: the same sample -> freeze -> emit order, so the same output
  // and the same early first chunk, just without sampling/freeze overlap.
  const bool inline_shards =
      runtime::GlobalNumThreads() <= 1 || runtime::ThreadPool::InWorkerThread();
  std::mutex mu;
  std::condition_variable cv;
  std::vector<char> done(num_shards, 0);
  std::vector<Status> shard_status(num_shards, Status::OK());
  std::shared_ptr<runtime::ThreadPool> pool;
  size_t dispatched = 0;
  auto dispatch_shard = [&](size_t s) {
    pool->Submit([&, s] {
      Status st;
      try {
        st = run_shard(s);
      } catch (const std::exception& e) {
        st = Status::Internal(std::string("shard sampling threw: ") +
                              e.what());
      } catch (...) {
        st = Status::Internal("shard sampling threw a non-std exception");
      }
      std::lock_guard<std::mutex> lock(mu);
      shard_status[s] = std::move(st);
      done[s] = 1;
      cv.notify_all();
    });
  };
  if (!inline_shards) {
    pool = runtime::GlobalThreadPool();
    // In-memory runs dispatch everything up front for maximum overlap.
    // Out-of-core runs window the dispatch to two shards — the one being
    // frozen plus the one sampling behind it — and release the next only
    // after a freeze retires its slice to disk; that, not the spill, is
    // what bounds peak residency to ~2 shard widths.
    const size_t window =
        out_of_core ? std::min<size_t>(2, num_shards) : num_shards;
    for (; dispatched < window; ++dispatched) dispatch_shard(dispatched);
  }

  // Filled once shard 0 completes (its index vector is the probe for
  // which DCs built indices this run).
  std::vector<bool> alignable;
  std::vector<AlignTask> alignments;
  std::vector<PrefixFdFamily> families;
  // merged[l] indexes exactly the frozen prefix, growing at each freeze.
  std::vector<std::unique_ptr<ViolationIndex>> merged(constraints.size());
  // Persistent frozen-prefix lookups: everything a freeze needs from the
  // rows frozen before it, absorbed slice by slice so no frozen row is
  // ever re-read for reconciliation (the out-of-core contract; in-memory
  // progressive runs share the exact same code path).
  std::unique_ptr<FrozenFdLookups> fd_lookups;
  std::vector<FrozenAlignLookups> align_lookups;
  std::vector<std::unique_ptr<FrozenNeighborStore>> neighbors(
      constraints.size());
  // Running count of violating pairs wholly inside the frozen prefix,
  // per alignment DC — the frozen-side term of the align-pass gate.
  std::vector<int64_t> frozen_violations(constraints.size(), 0);
  std::vector<char> is_align_dc(constraints.size(), 0);
  const runtime::RngStream merge_stream(merge_seed);
  constexpr size_t kMergeNoGainStreak = 8;

  // Resident-row high-water mark, computed analytically (never by reading
  // a table a pool worker may be filling): the slice being frozen + the
  // accumulated in-memory output + every dispatched-but-unfrozen shard at
  // its full width.
  int64_t peak_resident = 0;
  auto note_resident = [&](size_t s, size_t live_rows) {
    int64_t resident =
        static_cast<int64_t>(live_rows) + static_cast<int64_t>(out.num_rows());
    const size_t hi = inline_shards ? s + 1 : dispatched;
    for (size_t j = s + 1; j < hi; ++j) {
      resident += static_cast<int64_t>(sizes[j]);
    }
    peak_resident = std::max(peak_resident, resident);
  };

  auto freeze_shard = [&](size_t s, obs::TraceSpan& span) -> Status {
    const size_t begin = offsets[s];
    // The freeze works on the shard's own table ("live"): local row r is
    // global row begin + r. The frozen prefix is consulted only through
    // the merged indices and the persistent lookups above — never by
    // reading prefix rows — which is what lets the out-of-core path drop
    // them from memory without changing a single sampled bit.
    Table live = std::move(shards[s].table);
    shards[s].table = Table(schema);
    note_resident(s, live.num_rows());
    telemetry->ar_proposals += shards[s].telemetry.ar_proposals;
    telemetry->fd_fast_path_hits += shards[s].telemetry.fd_fast_path_hits;
    telemetry->mcmc_resamples += shards[s].telemetry.mcmc_resamples;
    telemetry->parallel_score_dispatches +=
        shards[s].telemetry.parallel_score_dispatches;
    telemetry->mcmc_batches += shards[s].telemetry.mcmc_batches;

    // Conflict detection against the frozen prefix.
    std::map<size_t, std::vector<size_t>> offenders;
    int64_t freeze_cross = 0;
    if (s > 0) {
      for (size_t l = 0; l < constraints.size(); ++l) {
        if (merged[l] == nullptr || shards[s].indices[l] == nullptr) continue;
        const int64_t cross = merged[l]->CountAgainst(*shards[s].indices[l]);
        if (cross == 0) continue;
        freeze_cross += cross;
        telemetry->merge_cross_violations += cross;
        if (!alignable[l]) {
          for (size_t r = 0; r < live.num_rows(); ++r) {
            if (merged[l]->CountNew(live.row(r)) > 0) {
              offenders[begin + r].push_back(l);
            }
          }
        }
      }
    }
    telemetry->merge_conflict_rows += static_cast<int64_t>(offenders.size());

    // Bounded greedy repair, restricted to shard s's rows. Candidates are
    // scored by the frozen-restricted penalty kernel: index delta against
    // the merged indices (exactly the frozen prefix) plus a pair scan of
    // the live rows only — equal to the full-table penalty over [0, end)
    // without touching a frozen row.
    if (!offenders.empty()) {
      size_t budget = options.adaptive_merge_budget
                          ? 16 + 2 * offenders.size()
                          : options.shard_merge_resamples;
      telemetry->merge_budget += static_cast<int64_t>(budget);
      size_t no_gain_streak = 0;
      bool swept_dry = false;
      for (const auto& [row, dcs] : offenders) {
        if (budget == 0 || swept_dry) break;
        std::vector<size_t> units;
        for (size_t l : dcs) {
          const size_t u = activation.dc_unit[l];
          if (u != SIZE_MAX &&
              std::find(units.begin(), units.end(), u) == units.end()) {
            units.push_back(u);
          }
        }
        std::sort(units.begin(), units.end());
        for (size_t u : units) {
          if (budget == 0) break;
          const ModelUnit& unit = model.units()[u];
          const std::vector<size_t>& active = activation.unit_active[u];
          // RNG keying stays on the GLOBAL row: identical draws whether
          // the repair runs over `out` (old layout) or `live` (this one).
          Rng task_rng(merge_stream.Fork(row).SubSeed(u));
          const size_t local = row - begin;
          Row scratch = live.row(local);

          // Frozen-instance candidate seeding for numeric attributes: the
          // prefix's established FD value and the order-DC neighbours'
          // values are often the only feasible points.
          std::vector<double> extra_values;
          if (unit.attrs.size() == 1 &&
              schema.attribute(unit.attrs[0]).is_numeric()) {
            for (size_t l : active) {
              std::vector<size_t> lhs;
              size_t rhs = 0, x = 0, y = 0;
              if (merged[l] != nullptr && constraints[l].dc.AsFd(&lhs, &rhs) &&
                  rhs == unit.attrs[0]) {
                std::optional<Value> forced = merged[l]->FdForcedValue(scratch);
                if (forced.has_value() && forced->is_numeric()) {
                  extra_values.push_back(forced->numeric());
                }
              } else if (constraints[l].dc.AsOrderPair(&x, &y)) {
                const size_t other =
                    y == unit.attrs[0] ? x
                                       : (x == unit.attrs[0] ? y : SIZE_MAX);
                if (other != SIZE_MAX && schema.attribute(other).is_numeric() &&
                    neighbors[l] != nullptr) {
                  const double x0 = scratch[other].numeric();
                  neighbors[l]->SeedNearest(x0, /*keep=*/4, begin, local, live,
                                            &extra_values);
                }
              }
            }
          }

          std::vector<Candidate> candidates = GenerateCandidates(
              unit, schema, scratch, options, extra_values, &task_rng);
          if (candidates.empty()) continue;
          const double penalty_before = FrozenRestrictedPenalty(
              live.row(local), local, live, active, constraints, merged,
              telemetry);
          size_t pick = 0;
          double best = -std::numeric_limits<double>::infinity();
          double best_penalty = penalty_before;
          for (size_t c = 0; c < candidates.size(); ++c) {
            ApplyCandidateToRow(unit, candidates[c], &scratch);
            const double penalty = FrozenRestrictedPenalty(
                scratch, local, live, active, constraints, merged, telemetry);
            const double score =
                std::log(candidates[c].prob + 1e-300) - penalty;
            if (score > best) {
              best = score;
              best_penalty = penalty;
              pick = c;
            }
          }
          for (size_t a = 0; a < unit.attrs.size(); ++a) {
            live.set(local, unit.attrs[a], candidates[pick].values[a]);
          }
          ++telemetry->merge_resamples;
          --budget;
          if (options.adaptive_merge_budget) {
            if (best_penalty < penalty_before - 1e-12) {
              no_gain_streak = 0;
            } else if (++no_gain_streak >= kMergeNoGainStreak) {
              ++telemetry->merge_early_stops;
              swept_dry = true;
              break;
            }
          }
        }
      }
    }

    // Exact hard-DC passes against the persistent frozen lookups; frozen
    // rows are neither written nor read.
    std::vector<bool> attr_modified(schema.size(), false);
    telemetry->merge_fd_rewrites +=
        fd_lookups->Canonicalize(&live, &attr_modified);

    bool realigned_fd_attr = false;
    for (size_t k = 0; k < alignments.size(); ++k) {
      const AlignTask& task = alignments[k];
      // Count for real every freeze (intra-shard residuals must also be
      // caught before the rows freeze) — but without re-reading frozen
      // rows: total = pairs wholly inside the prefix (the running
      // `frozen_violations` fold) + pairs inside the live slice + frozen
      // x live pairs via the merged index delta.
      int64_t total = frozen_violations[task.dc] +
                      CountViolations(constraints[task.dc].dc, live);
      if (merged[task.dc] != nullptr) {
        for (size_t r = 0; r < live.num_rows(); ++r) {
          total += merged[task.dc]->CountNew(live.row(r));
        }
      }
      if (total == 0) continue;
      const int64_t moved = align_lookups[k].Align(&live);
      telemetry->merge_order_alignments += moved;
      if (moved == 0) continue;
      attr_modified[task.dep] = true;
      for (const PrefixFdFamily& family : families) {
        if (family.rhs == task.dep) realigned_fd_attr = true;
        for (const std::vector<size_t>& lhs : family.lhs_sets) {
          if (std::find(lhs.begin(), lhs.end(), task.dep) != lhs.end()) {
            realigned_fd_attr = true;
          }
        }
      }
    }
    if (realigned_fd_attr) {
      telemetry->merge_fd_rewrites +=
          fd_lookups->Canonicalize(&live, &attr_modified);
    }

    // Freeze: index the shard's *final* rows into the running merged
    // indices (the stale pre-repair shard index is discarded). For
    // alignment DCs, fold the new intra-prefix pairs into the running
    // count first — CountNew before AddRow sees each pair exactly once.
    for (size_t l = 0; l < constraints.size(); ++l) {
      if (merged[l] == nullptr) continue;
      for (size_t r = 0; r < live.num_rows(); ++r) {
        if (is_align_dc[l]) {
          frozen_violations[l] += merged[l]->CountNew(live.row(r));
        }
        merged[l]->AddRow(live.row(r));
      }
    }
    // Absorb the now-final slice into the persistent frozen lookups — the
    // last read of these rows for reconciliation purposes, ever.
    fd_lookups->Absorb(live, begin);
    for (size_t k = 0; k < alignments.size(); ++k) {
      align_lookups[k].Absorb(live);
    }
    for (size_t l = 0; l < constraints.size(); ++l) {
      if (neighbors[l] != nullptr) neighbors[l]->Absorb(live, begin);
    }
    ++telemetry->merge_prefix_freezes;
    telemetry->merge_frozen_rows += static_cast<int64_t>(sizes[s]);
    span.AddArg("cross_violations", freeze_cross);
    span.AddArg("conflict_rows", static_cast<int64_t>(offenders.size()));

    // Emit immediately: these rows are frozen and never rewritten.
    if (out_of_core) {
      // Seal the slice into the spill store and hand the encoded payload
      // (or the materialized slice) straight to the chunk sink — the
      // in-memory copy dies with `live` at the end of this freeze.
      std::vector<uint8_t> encoded;
      {
        obs::TraceSpan spill_span("sampler/spill");
        spill_span.AddArg("shard", static_cast<int64_t>(s));
        spill_span.AddArg("rows", static_cast<int64_t>(live.num_rows()));
        encoded = EncodeChunkColumns(live);
        const uint64_t before = spill->spilled_bytes();
        KAMINO_RETURN_IF_ERROR(spill->AppendBlock(encoded, live.num_rows()));
        const int64_t delta =
            static_cast<int64_t>(spill->spilled_bytes() - before);
        spill_span.AddArg("bytes", delta);
        telemetry->spill_blocks += 1;
        telemetry->spill_bytes += delta;
        telemetry->spilled_rows += static_cast<int64_t>(live.num_rows());
      }
      return EmitOneChunk(std::move(live), std::move(encoded), s, begin,
                          s + 1 == num_shards, options, hooks);
    }
    out.AppendRowsFrom(live, 0, live.num_rows());
    return EmitOneChunk(out, s, begin, sizes[s], s + 1 == num_shards, options,
                        hooks);
  };

  Status status = Status::OK();
  for (size_t s = 0; s < num_shards; ++s) {
    if (!KeepGoing(hooks)) {
      status = CancelledStatus();
      break;
    }
    if (inline_shards) {
      dispatched = s + 1;  // for note_resident's dispatched-shard window
      status = run_shard(s);
    } else {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return done[s] != 0; });
      status = shard_status[s];
    }
    if (!status.ok()) break;
    if (s == 0) {
      alignments = BuildAlignTasks(model, constraints, activation,
                                   shards[0].indices, &alignable);
      families = BuildFdFamilies(constraints, shards[0].indices);
      for (size_t l = 0; l < constraints.size(); ++l) {
        if (shards[0].indices[l] == nullptr) continue;
        if (constraints[l].dc.is_unary()) continue;  // no cross pairs
        merged[l] = MakeViolationIndex(constraints[l].dc);
      }
      fd_lookups = std::make_unique<FrozenFdLookups>(families);
      for (const AlignTask& task : alignments) {
        PrefixAlignSpec spec;
        spec.group_attrs = task.group;
        spec.ctx_attr = task.ctx;
        spec.dep_attr = task.dep;
        spec.co_monotone = task.co_monotone;
        align_lookups.emplace_back(std::move(spec));
        is_align_dc[task.dc] = 1;
      }
      // Frozen-neighbour stores for the repair's order-DC candidate
      // seeding: one per indexed order-pair DC whose activation unit is a
      // single numeric attribute on one side of the pair.
      for (size_t l = 0; l < constraints.size(); ++l) {
        size_t x = 0, y = 0;
        if (!constraints[l].dc.AsOrderPair(&x, &y)) continue;
        if (shards[0].indices[l] == nullptr) continue;
        const size_t u = activation.dc_unit[l];
        if (u == SIZE_MAX || model.units()[u].attrs.size() != 1) continue;
        const size_t unit_attr = model.units()[u].attrs[0];
        if (!schema.attribute(unit_attr).is_numeric()) continue;
        const size_t other =
            y == unit_attr ? x : (x == unit_attr ? y : SIZE_MAX);
        if (other == SIZE_MAX || !schema.attribute(other).is_numeric()) {
          continue;
        }
        neighbors[l] = std::make_unique<FrozenNeighborStore>(other, unit_attr);
      }
    }
    obs::TraceSpan span("sampler/prefix_merge");
    span.AddArg("shard", static_cast<int64_t>(s));
    span.AddArg("rows", static_cast<int64_t>(sizes[s]));
    span.AddArg("frozen_rows", static_cast<int64_t>(offsets[s]));
    status = freeze_shard(s, span);
    telemetry->merge_seconds += span.Finish();
    if (!status.ok()) break;
    // Out-of-core windowed dispatch: the freeze just retired a slice to
    // disk, so there is room for the next shard's table.
    if (!inline_shards && out_of_core && dispatched < num_shards) {
      dispatch_shard(dispatched);
      ++dispatched;
    }
  }

  if (!inline_shards) {
    // Drain: shard tasks reference this frame's state, so never return
    // while one may still run (an error or cancellation above only stops
    // the freezes; sampling tasks finish on their own, polling
    // `keep_going` at their internal boundaries).
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] {
      for (size_t j = 0; j < dispatched; ++j) {
        if (done[j] == 0) return false;
      }
      return true;
    });
  }
  KAMINO_RETURN_IF_ERROR(status);
  telemetry->peak_resident_rows = peak_resident;
  if (out_of_core) {
    // The full table only ever existed on disk. Callers consuming the run
    // through chunks skip the rebuild entirely (the constant-memory
    // path); otherwise reassemble by bounded re-read — one validated
    // block resident at a time, bit-exact by the codec's round-trip
    // contract.
    if (hooks != nullptr && hooks->discard_result) return out;
    for (size_t b = 0; b < spill->block_count(); ++b) {
      KAMINO_ASSIGN_OR_RETURN(Table slice, spill->ReadBlock(b, schema));
      out.AppendRowsFrom(slice, 0, slice.num_rows());
    }
  }
  return out;
}

/// Folds the run's telemetry into the global metrics registry once per
/// Synthesize call (no per-row metric traffic on the hot path). Observing
/// only: reads telemetry, never steers the run.
void RecordSamplerMetrics(const SynthesisTelemetry& t, size_t rows) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  if (!reg.enabled()) return;
  reg.counter("kamino.sampler.runs")->Increment();
  reg.counter("kamino.sampler.rows_sampled")
      ->Increment(static_cast<int64_t>(rows));
  reg.counter("kamino.sampler.shards_sampled")
      ->Increment(static_cast<int64_t>(t.num_shards));
  reg.counter("kamino.sampler.ar_proposals")->Increment(t.ar_proposals);
  reg.counter("kamino.sampler.fd_fast_path_hits")
      ->Increment(t.fd_fast_path_hits);
  reg.counter("kamino.sampler.mcmc_resamples")->Increment(t.mcmc_resamples);
  reg.counter("kamino.sampler.merge_cross_violations")
      ->Increment(t.merge_cross_violations);
  reg.counter("kamino.sampler.merge_conflict_rows")
      ->Increment(t.merge_conflict_rows);
  reg.counter("kamino.sampler.merge_resamples")->Increment(t.merge_resamples);
  reg.counter("kamino.sampler.merge_prefix_freezes")
      ->Increment(t.merge_prefix_freezes);
  reg.counter("kamino.sampler.merge_frozen_rows")
      ->Increment(t.merge_frozen_rows);
  reg.counter("kamino.sampler.merge_penalty_live_row_scans")
      ->Increment(t.merge_penalty_live_row_scans);
  reg.counter("kamino.sampler.merge_penalty_frozen_row_scans")
      ->Increment(t.merge_penalty_frozen_row_scans);
  reg.counter("kamino.store.spill_blocks")->Increment(t.spill_blocks);
  reg.counter("kamino.store.spill_bytes")->Increment(t.spill_bytes);
  reg.counter("kamino.store.spilled_rows")->Increment(t.spilled_rows);
  reg.gauge("kamino.store.peak_resident_rows")
      ->Set(static_cast<double>(t.peak_resident_rows));
}

}  // namespace

Result<Table> Synthesize(const ProbabilisticDataModel& model,
                         const std::vector<WeightedConstraint>& constraints,
                         size_t n, const KaminoOptions& options, Rng* rng,
                         SynthesisTelemetry* telemetry,
                         const SynthesisHooks* hooks) {
  SynthesisTelemetry local_telemetry;
  if (telemetry == nullptr) telemetry = &local_telemetry;
  telemetry->num_threads = runtime::GlobalNumThreads();

  const Schema& schema = model.schema();
  const ActivationMap activation = BuildActivationMap(model, constraints);
  const size_t num_shards = ResolveNumShards(options, n);
  telemetry->num_shards = num_shards;

  if (num_shards <= 1) {
    // Exact sequential paper semantics: one shard spanning every row,
    // driven directly by the run RNG (no sub-seeding), with nested
    // parallelism for candidate scoring and MCMC batches.
    Table out(schema);
    std::vector<std::unique_ptr<ViolationIndex>> indices;
    {
      obs::TraceSpan span("sampler/shard");
      span.AddArg("shard", 0);
      span.AddArg("rows", static_cast<int64_t>(n));
      KAMINO_RETURN_IF_ERROR(SampleShardRows(
          model, constraints, activation, n, options, options.mcmc_resamples,
          /*allow_nested_parallel=*/true, hooks, rng, telemetry, &out,
          &indices));
    }
    KAMINO_RETURN_IF_ERROR(EmitChunks(out, {n}, {0}, options, hooks));
    RecordSamplerMetrics(*telemetry, n);
    return out;
  }

  // --- Shard plan: contiguous slices, one RngStream sub-seed per shard.
  // Everything below is a pure function of (root seed, num_shards): shard
  // randomness is keyed by shard index and the merge walks shards in fixed
  // order, so the output is bit-identical at any thread count.
  const std::vector<size_t> sizes = ShardSizes(n, num_shards);
  // The run-wide MCMC budget splits across shards the same way rows do,
  // so `mcmc_resamples` means the same total work at every shard count.
  const std::vector<size_t> mcmc_budgets =
      ShardSizes(options.mcmc_resamples, num_shards);
  std::vector<size_t> offsets(num_shards, 0);
  for (size_t s = 1; s < num_shards; ++s) {
    offsets[s] = offsets[s - 1] + sizes[s - 1];
  }
  const runtime::RngStream root(rng->NextSeed());
  const uint64_t merge_seed = root.SubSeed(num_shards);  // distinct stream

  if (options.progressive_merge || options.out_of_core) {
    // Same shard plan, same sub-seeds, different merge: reconcile + freeze
    // + emit each shard as it completes instead of one global pass.
    // `out_of_core` implies the progressive freeze order — spilling only
    // makes sense for slices that are final at their freeze.
    KAMINO_ASSIGN_OR_RETURN(
        Table out, ProgressiveShardSynthesis(model, constraints, options,
                                             activation, sizes, offsets,
                                             mcmc_budgets, root, merge_seed,
                                             hooks, telemetry));
    RecordSamplerMetrics(*telemetry, n);
    return out;
  }

  std::vector<ShardState> shards(num_shards);
  for (ShardState& shard : shards) shard.table = Table(schema);
  KAMINO_RETURN_IF_ERROR(
      runtime::ParallelFor(0, num_shards, 1, [&](size_t lo, size_t hi) {
        for (size_t s = lo; s < hi; ++s) {
          // Shard boundary: a cancelled job never starts another shard.
          if (!KeepGoing(hooks)) return CancelledStatus();
          obs::TraceSpan span("sampler/shard");
          span.AddArg("shard", static_cast<int64_t>(s));
          span.AddArg("rows", static_cast<int64_t>(sizes[s]));
          Rng shard_rng(root.SubSeed(s));
          KAMINO_RETURN_IF_ERROR(SampleShardRows(
              model, constraints, activation, sizes[s], options,
              mcmc_budgets[s], /*allow_nested_parallel=*/false, hooks,
              &shard_rng, &shards[s].telemetry, &shards[s].table,
              &shards[s].indices));
        }
        return Status::OK();
      }));
  if (!KeepGoing(hooks)) return CancelledStatus();

  // Fixed-order aggregation of rows and telemetry. Shard concatenation is
  // one block copy per column (no per-row Value boxing).
  Table out(schema);
  for (const ShardState& shard : shards) {
    out.AppendRowsFrom(shard.table, 0, shard.table.num_rows());
    telemetry->ar_proposals += shard.telemetry.ar_proposals;
    telemetry->fd_fast_path_hits += shard.telemetry.fd_fast_path_hits;
    telemetry->mcmc_resamples += shard.telemetry.mcmc_resamples;
    telemetry->parallel_score_dispatches +=
        shard.telemetry.parallel_score_dispatches;
    telemetry->mcmc_batches += shard.telemetry.mcmc_batches;
  }

  {
    // The merge span is the stopwatch for `merge_seconds` (and thus
    // PhaseTimings.shard_merge): one measurement, one source of truth.
    obs::TraceSpan span("sampler/shard_merge");
    span.AddArg("shards", static_cast<int64_t>(num_shards));
    KAMINO_RETURN_IF_ERROR(ReconcileShards(model, constraints, options,
                                           activation, shards, offsets,
                                           merge_seed, &out, telemetry));
    span.AddArg("cross_violations", telemetry->merge_cross_violations);
    span.AddArg("conflict_rows", telemetry->merge_conflict_rows);
    telemetry->merge_seconds = span.Finish();
  }
  // Every row is final once reconciliation returns; stream the shards out
  // in ascending row-offset order before handing back the full table.
  KAMINO_RETURN_IF_ERROR(EmitChunks(out, sizes, offsets, options, hooks));
  RecordSamplerMetrics(*telemetry, n);
  return out;
}

}  // namespace kamino
