#ifndef KAMINO_CORE_PIPELINE_H_
#define KAMINO_CORE_PIPELINE_H_

// The Kamino pipeline (Algorithm 1) split into its two privacy-relevant
// halves:
//
//   FitPipeline    — lines 2-5: sequencing, DP parameter search, model
//                    training, DC weight learning. Everything that touches
//                    the private instance and spends privacy budget.
//   SamplePipeline — line 6: constraint-aware sampling. Pure
//                    post-processing on the fitted artifacts with zero
//                    additional privacy cost, so one fit amortizes over
//                    arbitrarily many sampling runs.
//
// `RunKamino` (core/kamino.h) is a thin composition of the two stages and
// stays bit-identical to the pre-split pipeline; the session engine
// (kamino/service/engine.h) wraps the same stages behind a
// fit-once/synthesize-many API with async jobs and streaming delivery.

#include <cstdint>
#include <random>
#include <vector>

#include "kamino/common/status.h"
#include "kamino/core/kamino.h"
#include "kamino/core/model.h"
#include "kamino/core/options.h"
#include "kamino/core/sampler.h"
#include "kamino/data/table.h"
#include "kamino/dc/constraint.h"

namespace kamino {

/// Everything `FitPipeline` produces. Immutable by convention: sampling
/// stages take it by const reference and copy the RNG snapshot, so any
/// number of `SamplePipeline` calls — concurrent ones included — see the
/// same artifacts. Self-contained: the model owns a copy of the training
/// schema, so the artifacts stay valid after the input table is released.
struct FitArtifacts {
  ProbabilisticDataModel model;
  /// The input constraints with learned (or hardness-implied) weights
  /// applied — the constraint set sampling runs against.
  std::vector<WeightedConstraint> weighted;
  /// The schema sequence S chosen by Algorithm 4 (or the random ablation).
  std::vector<size_t> sequence;
  /// Learned (or hardness-implied) weight per input constraint.
  std::vector<double> dc_weights;
  /// The DP parameter set Psi actually used.
  KaminoOptions resolved_options;
  /// Privacy cost of the fit under Theorem 1 (infinity if non-private).
  /// Sampling adds nothing to it.
  double epsilon_spent = 0.0;
  /// Rows of the fitted instance (the default synthesis size).
  size_t input_rows = 0;
  /// Wall clock of the fit phases (`sampling`/`shard_merge` stay zero).
  PhaseTimings fit_timings;
  /// State of the run RNG after the fit consumed its draws. A
  /// `SampleSpec` with `seed == 0` resumes from this snapshot, which is
  /// exactly the stream the monolithic `RunKamino` sampling phase drew
  /// from — the bit-identity bridge between the split and the original.
  std::mt19937_64 sampling_engine;
};

/// Lines 2-5 of Algorithm 1. Validates `config`, configures the parallel
/// runtime (`config.options.num_threads`), and spends the entire privacy
/// budget of the run. Fails on an empty instance or invalid config.
Result<FitArtifacts> FitPipeline(
    const Table& data, const std::vector<WeightedConstraint>& constraints,
    const KaminoConfig& config);

/// One sampling run's parameters. The defaults reproduce the monolithic
/// `RunKamino` sampling phase for the fit's config.
struct SampleSpec {
  /// Synthetic rows to generate; 0 means "as many as the fitted instance".
  size_t num_rows = 0;
  /// Root seed of the sampling run. 0 (the default) resumes the fit's RNG
  /// snapshot — the `RunKamino`-identical stream; any other value seeds a
  /// fresh independent stream, making the output a pure function of
  /// (model, seed, resolved num_shards).
  uint64_t seed = 0;
  /// Shard override; kUnset keeps the fitted options' shard count.
  size_t num_shards = kUnset;
  /// Thread-budget override; kUnset keeps the process-wide budget as the
  /// fit configured it. Never changes the output, only wall clock.
  size_t num_threads = kUnset;
  /// Deliver streamed `TableChunk`s as compressed per-column payloads
  /// (see `KaminoOptions::compress_chunks`). Never changes the rows,
  /// only their wire form.
  bool compress_chunks = false;
  /// Stream through the progressive prefix-frozen merge: each shard is
  /// reconciled against the frozen prefix and its chunk emitted as soon
  /// as it finishes sampling (see `KaminoOptions::progressive_merge`).
  bool progressive_merge = false;
  /// Spill each frozen slice to disk and drop its in-memory columns (see
  /// `KaminoOptions::out_of_core`). Implies `progressive_merge`;
  /// bit-identical rows, bounded resident memory.
  bool out_of_core = false;

  static constexpr size_t kUnset = static_cast<size_t>(-1);
};

/// Line 6 of Algorithm 1: constraint-aware sampling from fitted
/// artifacts. Pure post-processing — no privacy cost, `fitted` is not
/// mutated, and identical (spec, fitted) pairs produce identical tables.
/// `hooks` (optional) adds cancellation, progress and streaming delivery;
/// `timings`/`telemetry` (optional) receive the sampling-phase numbers.
Result<Table> SamplePipeline(const FitArtifacts& fitted,
                             const SampleSpec& spec,
                             const SynthesisHooks* hooks = nullptr,
                             SynthesisTelemetry* telemetry = nullptr,
                             PhaseTimings* timings = nullptr);

}  // namespace kamino

#endif  // KAMINO_CORE_PIPELINE_H_
