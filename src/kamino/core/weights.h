#ifndef KAMINO_CORE_WEIGHTS_H_
#define KAMINO_CORE_WEIGHTS_H_

#include <vector>

#include "kamino/common/status.h"
#include "kamino/core/options.h"
#include "kamino/data/table.h"
#include "kamino/dc/constraint.h"

namespace kamino {

namespace io {
class ByteReader;
}  // namespace io

/// Learned DC weights as an explicit serializable state (artifact serde).
/// Weights travel as raw IEEE-754 bit patterns, so the sampler's
/// exp(-W . V) scoring is bit-identical after a round trip.
struct DcWeightsState {
  std::vector<double> weights;

  void SerializeTo(std::vector<uint8_t>* out) const;
  /// Fails with InvalidArgument on truncation or when the weight count
  /// does not match `expected_count` (the artifact's constraint count).
  static Result<DcWeightsState> DeserializeFrom(io::ByteReader* in,
                                                size_t expected_count);
};

/// Algorithm 5: private learning of DC weights.
///
/// Releases a noisy violation matrix over a small Bernoulli sample of at
/// most `options.weight_sample` (Lw) tuples - the only private step - then
/// fits weights as post-processing: starting from a large initial weight,
/// each observed violation multiplicatively pulls the DC's weight toward
/// zero by gradient steps on maximizing exp(-W . V[i]). DCs with no
/// violations in the (noisy) sample keep a large weight; heavily violated
/// DCs end up with small weights.
///
/// Returns one weight per constraint. Hard constraints keep their
/// effectively-infinite weight and are not fitted.
Result<std::vector<double>> LearnDcWeights(
    const Table& data, const std::vector<WeightedConstraint>& constraints,
    const std::vector<size_t>& sequence, const KaminoOptions& options,
    Rng* rng);

}  // namespace kamino

#endif  // KAMINO_CORE_WEIGHTS_H_
