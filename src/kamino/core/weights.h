#ifndef KAMINO_CORE_WEIGHTS_H_
#define KAMINO_CORE_WEIGHTS_H_

#include <vector>

#include "kamino/common/status.h"
#include "kamino/core/options.h"
#include "kamino/data/table.h"
#include "kamino/dc/constraint.h"

namespace kamino {

/// Algorithm 5: private learning of DC weights.
///
/// Releases a noisy violation matrix over a small Bernoulli sample of at
/// most `options.weight_sample` (Lw) tuples - the only private step - then
/// fits weights as post-processing: starting from a large initial weight,
/// each observed violation multiplicatively pulls the DC's weight toward
/// zero by gradient steps on maximizing exp(-W . V[i]). DCs with no
/// violations in the (noisy) sample keep a large weight; heavily violated
/// DCs end up with small weights.
///
/// Returns one weight per constraint. Hard constraints keep their
/// effectively-infinite weight and are not fitted.
Result<std::vector<double>> LearnDcWeights(
    const Table& data, const std::vector<WeightedConstraint>& constraints,
    const std::vector<size_t>& sequence, const KaminoOptions& options,
    Rng* rng);

}  // namespace kamino

#endif  // KAMINO_CORE_WEIGHTS_H_
