#ifndef KAMINO_CORE_MODEL_H_
#define KAMINO_CORE_MODEL_H_

#include <memory>
#include <optional>
#include <vector>

#include "kamino/common/status.h"
#include "kamino/core/options.h"
#include "kamino/data/quantizer.h"
#include "kamino/data/table.h"
#include "kamino/nn/discriminative.h"

namespace kamino {

/// One link of the conditional chain of Eqn. (2)/(6): either a noisy
/// histogram (the first attribute, hyper-grouped first attributes, or a
/// large-domain Gaussian-fallback attribute) or a DP-SGD-trained
/// discriminative sub-model M_{X,y}.
struct ModelUnit {
  enum class Kind { kHistogram, kDiscriminative };

  Kind kind = Kind::kHistogram;
  /// Schema attribute indices this unit fills (more than one = hyper
  /// attribute group; then all are categorical).
  std::vector<size_t> attrs;
  /// Schema attribute indices available as context (everything earlier in
  /// the sequence). Empty for histogram units.
  std::vector<size_t> context;
  /// Sequence positions [start_position, start_position + attrs.size()).
  size_t start_position = 0;

  // --- Histogram state (kind == kHistogram) ---
  /// Normalized noisy distribution over the joint categorical domain, or
  /// over quantizer bins for a numeric attribute.
  std::vector<double> distribution;
  /// Set when the (single) histogram attribute is numeric.
  std::optional<Quantizer> quantizer;
  /// Per-attribute category counts, for joint index decoding.
  std::vector<size_t> radix;

  // --- Discriminative state (kind == kDiscriminative) ---
  std::unique_ptr<DiscriminativeModel> model;
  /// Private encoder store when trained without sharing (parallel mode);
  /// null when the shared store is used.
  std::unique_ptr<EncoderStore> private_store;

  /// Decodes a joint histogram index into per-attribute category values.
  std::vector<int32_t> DecodeJointIndex(size_t index) const;
};

/// The privately learned probabilistic data model M of Algorithm 2: the
/// chain of units in schema-sequence order, plus the shared encoder store.
class ProbabilisticDataModel {
 public:
  /// An empty, untrained model (no units). Exists so fitted-artifact
  /// aggregates can be declared before `Train` fills them in.
  ProbabilisticDataModel() = default;

  /// Algorithm 2 (TrainModel): partitions the sequence into units (applying
  /// the grouping and large-domain optimizations per `options`), releases
  /// noisy histograms with the Gaussian mechanism and trains each
  /// discriminative sub-model with DP-SGD.
  static Result<ProbabilisticDataModel> Train(
      const Table& data, const std::vector<size_t>& sequence,
      const KaminoOptions& options, Rng* rng);

  /// Splits the sequence into model units without training (exposed so the
  /// privacy parameter search can count sub-models and histograms before
  /// spending any budget).
  static std::vector<ModelUnit> PlanUnits(const Schema& schema,
                                          const std::vector<size_t>& sequence,
                                          const KaminoOptions& options);

  const Schema& schema() const { return *schema_; }
  const std::vector<size_t>& sequence() const { return sequence_; }
  const std::vector<ModelUnit>& units() const { return units_; }
  std::vector<ModelUnit>& units() { return units_; }

  /// Number of histogram releases (for accounting).
  size_t num_histogram_units() const;
  /// Number of DP-SGD-trained sub-models (for accounting).
  size_t num_discriminative_units() const;

  /// Artifact serde. `SerializeTo` writes the full trained state (schema,
  /// sequence, encoder-store tensors, per-unit histogram tables / net head
  /// weights); it requires a trained model. `DeserializeFrom` validates
  /// everything before constructing — the sequence must be a permutation
  /// tiled exactly by the units, kind/arity flips and shape mismatches are
  /// rejected with InvalidArgument, and derived state (radix, quantizer,
  /// standardization stats) is recomputed from the schema rather than
  /// trusted from the wire.
  void SerializeTo(std::vector<uint8_t>* out) const;
  static Result<ProbabilisticDataModel> DeserializeFrom(io::ByteReader* in);

 private:
  /// The model owns a heap copy of the training schema (stable address
  /// under moves), so a fitted model never dangles into the input table —
  /// sessions may release the private instance right after `Train`.
  std::shared_ptr<const Schema> schema_;
  std::vector<size_t> sequence_;
  std::vector<ModelUnit> units_;
  std::unique_ptr<EncoderStore> shared_store_;
};

}  // namespace kamino

#endif  // KAMINO_CORE_MODEL_H_
