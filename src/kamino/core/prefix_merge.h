#ifndef KAMINO_CORE_PREFIX_MERGE_H_
#define KAMINO_CORE_PREFIX_MERGE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "kamino/data/table.h"

namespace kamino {

/// Prefix-frozen reconciliation primitives for the progressive shard
/// merge (`KaminoOptions::progressive_merge`).
///
/// Both passes bring the suffix rows [frozen_end, num_rows) of a table —
/// a freshly sampled shard appended behind the already-delivered prefix —
/// into agreement with the frozen prefix [0, frozen_end) while NEVER
/// writing a frozen cell. They are the prefix-respecting counterparts of
/// the global merge's joint hard-FD canonicalization and rank alignment
/// (core/sampler.cc), which are free to rewrite any row of the union and
/// therefore cannot run after chunks have left the process.
///
/// Both are pure deterministic functions of the table contents: no RNG,
/// no iteration-order dependence (groups and components are walked in
/// value / smallest-row order).

/// All hard FDs sharing one right-hand-side attribute. FDs with a common
/// RHS must be canonicalized jointly — fixing them one at a time lets a
/// row satisfy one FD by breaking another (see the tax workload, where
/// `zip -> state` and `areacode -> state` share `state`).
struct PrefixFdFamily {
  /// The shared RHS attribute.
  size_t rhs = 0;
  /// One LHS attribute set per FD in the family.
  std::vector<std::vector<size_t>> lhs_sets;
};

/// Forces the suffix rows onto the frozen prefix's canonical FD values.
///
/// Suffix rows that any family FD transitively forces to agree are
/// unioned into components. A component with at least one frozen LHS-key
/// match adopts the value of the match with the smallest frozen
/// representative row; a component with none canonicalizes to its
/// smallest member's value (the global merge's rule, applied
/// suffix-internally). When a member's key under some FD is frozen with a
/// *different* value than the adopted one — the row bridges two frozen
/// groups, which the global pass would resolve by rewriting one of them —
/// the member's LHS attributes for that FD are overwritten with the
/// adopted representative's, re-pointing the key at a frozen group that
/// already agrees. Rounds repeat until a fixpoint (bounded by the schema
/// width) so rewrites cascading into other families' keys settle.
///
/// Returns the number of cells rewritten; flags every touched attribute
/// in `attr_modified` (schema-width vector, may be null). Frozen rows are
/// never written, so if the prefix was FD-exact before the call it still
/// is, and afterwards the whole table is.
int64_t PrefixFrozenFdCanonicalize(Table* table,
                                   const std::vector<PrefixFdFamily>& families,
                                   size_t frozen_end,
                                   std::vector<bool>* attr_modified);

/// One equality-scoped hard order DC in alignment form (the shape
/// `DenialConstraint::AsGroupedOrderSpec` recognizes): within each
/// `group_attrs` value group, `dep_attr` must be weakly monotone in
/// `ctx_attr` — co-monotone or anti-monotone; ties never violate.
struct PrefixAlignSpec {
  std::vector<size_t> group_attrs;
  size_t ctx_attr = 0;
  size_t dep_attr = 0;
  bool co_monotone = true;
};

/// Slots the suffix rows of each group into the frozen rows' monotone
/// relation without moving a frozen cell.
///
/// Per group, the frozen rows (sorted by context) define an envelope for
/// a new row at context x: its oriented dependent value must be >= the
/// greatest frozen dependent at contexts strictly below x (`lo`) and
/// <= the least frozen dependent at contexts strictly above x (`hi`).
/// Frozen ties at x impose nothing, and a violation-free frozen prefix
/// guarantees lo <= hi. The suffix rows are first rank-aligned among
/// themselves — walked in (context, row) order, they receive their own
/// dependent values in oriented sorted order, preserving the shard's
/// value multiset exactly as the global alignment does — and then each is
/// clamped into its envelope (the only step that can substitute a frozen
/// value for a sampled one). Since `lo`, `hi`, and the rank-aligned
/// targets are all non-decreasing along the walk, the clamped sequence is
/// too: the group ends with zero violations, intra-suffix and
/// cross-prefix. If the frozen prefix itself is non-monotone (possible
/// only after a hard-FDs-win re-canonicalization broke an earlier
/// alignment) the envelope can invert; the upper bound wins,
/// deterministically.
///
/// Returns the number of cells rewritten.
int64_t PrefixFrozenRankAlign(Table* table, const PrefixAlignSpec& spec,
                              size_t frozen_end);

/// Strict weak order over value vectors (group / FD keys), shared by the
/// prefix-frozen passes and the persistent lookup state below.
struct PrefixKeyLess {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const;
};

/// Persistent form of the frozen FD lookups that
/// `PrefixFrozenFdCanonicalize` rebuilds from the prefix rows on every
/// call. Out-of-core synthesis drops frozen columns from memory, so the
/// lookups are absorbed incrementally at each freeze instead — after
/// which no frozen row is ever read again for FD reconciliation.
///
/// `Absorb` must be called once per frozen slice, in ascending global row
/// order; `Canonicalize` then brings a live (suffix) table into agreement
/// with everything absorbed so far, bit-identically to
/// `PrefixFrozenFdCanonicalize` run over the concatenated table. The
/// representative's LHS attribute values needed for bridge re-pointing
/// are captured at absorb time (frozen rows are immutable by contract).
class FrozenFdLookups {
 public:
  explicit FrozenFdLookups(std::vector<PrefixFdFamily> families);

  /// Folds the rows of a newly frozen slice (global rows
  /// [global_begin, global_begin + slice.num_rows())) into the lookups.
  void Absorb(const Table& slice, size_t global_begin);

  /// Canonicalizes all rows of `live` against the absorbed prefix.
  /// Returns cells rewritten; flags touched attributes in `attr_modified`
  /// (schema-width vector, may be null). Never reads a frozen row.
  int64_t Canonicalize(Table* live, std::vector<bool>* attr_modified) const;

  const std::vector<PrefixFdFamily>& families() const { return families_; }

 private:
  struct FrozenEntry {
    Value canonical;       // the key's frozen RHS value (first row wins)
    size_t rep_row = 0;    // smallest global frozen row holding the key
  };
  using KeyMap = std::map<std::vector<Value>, FrozenEntry, PrefixKeyLess>;

  std::vector<PrefixFdFamily> families_;
  /// keys_[f][d]: lookup for family f's FD d.
  std::vector<std::vector<KeyMap>> keys_;
  /// lhs_union_[f]: sorted distinct LHS attributes across family f's FDs.
  std::vector<std::vector<size_t>> lhs_union_;
  /// lhs_pos_[f][d][k]: index of lhs_sets[d][k] within lhs_union_[f].
  std::vector<std::vector<std::vector<size_t>>> lhs_pos_;
  /// rep_values_[f]: global row -> captured values of lhs_union_[f], for
  /// every frozen row that first-inserted a key (the only best_rep
  /// candidates).
  std::vector<std::map<size_t, std::vector<Value>>> rep_values_;
};

/// Persistent form of the frozen order envelopes `PrefixFrozenRankAlign`
/// rebuilds by sorting the prefix rows on every call. Per group key the
/// state keeps the distinct frozen context values with their oriented
/// dependent extrema, from which the running envelope (greatest dependent
/// strictly below a context, least strictly above) is answered without
/// touching a frozen row. `Absorb` per frozen slice in ascending global
/// row order; `Align` then equals `PrefixFrozenRankAlign` over the
/// concatenated table, restricted to the live rows.
class FrozenAlignLookups {
 public:
  explicit FrozenAlignLookups(PrefixAlignSpec spec);

  /// Folds a newly frozen slice's (context, dependent) pairs in.
  void Absorb(const Table& slice);

  /// Rank-aligns `live`'s rows among themselves and clamps them into the
  /// absorbed frozen envelope. Returns cells rewritten.
  int64_t Align(Table* live) const;

  const PrefixAlignSpec& spec() const { return spec_; }

 private:
  struct Envelope {
    std::vector<Value> ctx;   // distinct frozen contexts, ascending
    std::vector<Value> mx;    // per-context oriented max dependent
    std::vector<Value> mn;    // per-context oriented min dependent
    std::vector<Value> pmax;  // running prefix max of mx
    std::vector<Value> smin;  // running suffix min of mn
  };

  PrefixAlignSpec spec_;
  std::map<std::vector<Value>, Envelope, PrefixKeyLess> groups_;
};

}  // namespace kamino

#endif  // KAMINO_CORE_PREFIX_MERGE_H_
