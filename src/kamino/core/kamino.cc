#include "kamino/core/kamino.h"

#include <chrono>
#include <limits>

#include "kamino/core/model.h"
#include "kamino/core/params.h"
#include "kamino/core/sequencing.h"
#include "kamino/core/weights.h"
#include "kamino/runtime/thread_pool.h"

namespace kamino {
namespace {

class PhaseTimer {
 public:
  PhaseTimer() : start_(std::chrono::steady_clock::now()) {}

  /// Seconds since construction or the last Lap call.
  double Lap() {
    const auto now = std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration<double>(now - start_).count();
    start_ = now;
    return seconds;
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

Result<KaminoResult> RunKamino(
    const Table& data, const std::vector<WeightedConstraint>& constraints,
    const KaminoConfig& config) {
  if (data.num_rows() == 0) {
    return Status::InvalidArgument("input instance is empty");
  }
  // Configure the parallel runtime for this run. Output is bit-identical
  // at any budget (parallel regions key randomness by task index and
  // reduce in fixed order), so the knob trades wall clock only.
  runtime::SetGlobalNumThreads(config.options.num_threads);

  Rng rng(config.options.seed);
  KaminoResult result;
  PhaseTimer timer;
  result.timings.num_threads = runtime::GlobalNumThreads();

  // Line 2: schema sequencing (Algorithm 4) - no privacy cost.
  result.sequence = config.options.random_sequence
                        ? RandomSequence(data.schema(), &rng)
                        : SequenceSchema(data.schema(), constraints);
  result.timings.sequencing = timer.Lap();

  // Decide whether weight learning will run: only when requested and some
  // constraint is soft.
  bool learn_weights = false;
  if (config.learn_weights) {
    for (const WeightedConstraint& wc : constraints) {
      if (!wc.hard) learn_weights = true;
    }
  }

  // Line 3: parameter search (Algorithm 6) - no privacy cost (schema and
  // domain are public).
  KaminoOptions options = config.options;
  if (!options.non_private) {
    KAMINO_ASSIGN_OR_RETURN(
        options, SearchDpParameters(config.epsilon, config.delta,
                                    data.schema(), result.sequence,
                                    data.num_rows(), learn_weights,
                                    config.options));
  }
  result.resolved_options = options;
  result.timings.parameter_search = timer.Lap();

  // Line 4: model training (Algorithm 2) - Gaussian mechanism + DP-SGD.
  KAMINO_ASSIGN_OR_RETURN(
      ProbabilisticDataModel model,
      ProbabilisticDataModel::Train(data, result.sequence, options, &rng));
  result.timings.training = timer.Lap();

  // Line 5: DC weight learning (Algorithm 5) - sampled Gaussian mechanism.
  std::vector<WeightedConstraint> weighted = constraints;
  if (learn_weights) {
    KAMINO_ASSIGN_OR_RETURN(
        result.dc_weights,
        LearnDcWeights(data, constraints, result.sequence, options, &rng));
    for (size_t l = 0; l < weighted.size(); ++l) {
      if (!weighted[l].hard) weighted[l].weight = result.dc_weights[l];
    }
  } else {
    result.dc_weights.reserve(constraints.size());
    for (const WeightedConstraint& wc : constraints) {
      result.dc_weights.push_back(wc.EffectiveWeight());
    }
  }
  result.timings.violation_matrix = timer.Lap();

  // Line 6: constraint-aware sampling (Algorithm 3) - post-processing.
  const size_t n =
      config.output_rows == 0 ? data.num_rows() : config.output_rows;
  KAMINO_ASSIGN_OR_RETURN(
      result.synthetic,
      Synthesize(model, weighted, n, options, &rng, &result.telemetry));
  result.timings.sampling = timer.Lap();
  result.timings.shard_merge = result.telemetry.merge_seconds;
  result.timings.num_shards = result.telemetry.num_shards;

  result.epsilon_spent =
      options.non_private
          ? std::numeric_limits<double>::infinity()
          : PrivacyCostEpsilon(options, data.num_rows(),
                               model.num_histogram_units(),
                               model.num_discriminative_units(),
                               learn_weights, config.delta);
  return result;
}

}  // namespace kamino
