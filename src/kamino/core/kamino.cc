#include "kamino/core/kamino.h"

#include <utility>

#include "kamino/core/pipeline.h"

namespace kamino {

Status KaminoConfig::Validate() const {
  if (!options.non_private) {
    if (!(epsilon > 0.0)) {
      return Status::InvalidArgument(
          "KaminoConfig.epsilon must be > 0 on a private run (set "
          "options.non_private for the epsilon = infinity ablation)");
    }
    if (!(delta > 0.0) || delta >= 1.0) {
      return Status::InvalidArgument(
          "KaminoConfig.delta must be in (0, 1) on a private run");
    }
  }
  return options.Validate();
}

Result<KaminoResult> RunKamino(
    const Table& data, const std::vector<WeightedConstraint>& constraints,
    const KaminoConfig& config) {
  // Fit (lines 2-5: all the privacy spend) ...
  KAMINO_ASSIGN_OR_RETURN(FitArtifacts fitted,
                          FitPipeline(data, constraints, config));

  KaminoResult result;
  result.sequence = fitted.sequence;
  result.dc_weights = fitted.dc_weights;
  result.resolved_options = fitted.resolved_options;
  result.epsilon_spent = fitted.epsilon_spent;
  result.timings = fitted.fit_timings;

  // ... then sample (line 6: pure post-processing) with the default spec,
  // which resumes the fit's RNG snapshot — together bit-identical to the
  // monolithic pre-split pipeline.
  SampleSpec spec;
  spec.num_rows = config.output_rows;
  KAMINO_ASSIGN_OR_RETURN(
      result.synthetic,
      SamplePipeline(fitted, spec, /*hooks=*/nullptr, &result.telemetry,
                     &result.timings));
  return result;
}

}  // namespace kamino
